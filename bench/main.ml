(* Bechamel benchmark harness.

   One benchmark per experiment (E1..E10) measuring the computational core
   that regenerates it (table rendering excluded), plus microbenchmarks of
   the hot primitives (request-bound functions, fragmentation, event
   queue, stride dispatch).

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Gmf_util

(* ------------------------------------------------------------------ *)
(* Experiment-level benchmarks                                        *)
(* ------------------------------------------------------------------ *)

let fig1 = Workload.Scenarios.fig1_videoconf ()

let bench_e1 =
  Test.make ~name:"e1:worked-example"
    (Staged.stage (fun () -> ignore (Experiments.E1_worked_example.compute ())))

let bench_e2 =
  Test.make ~name:"e2:holistic-fig1"
    (Staged.stage (fun () -> ignore (Analysis.Holistic.analyze fig1)))

let e3_scenario =
  let model = Click.Switch_model.make ~ninterfaces:48 ~processors:16 () in
  let topo = Traffic.Scenario.topo fig1 in
  Traffic.Scenario.make
    ~switches:(List.map (fun n -> (n, model)) (Traffic.Scenario.switch_nodes fig1))
    ~topo ~flows:(Traffic.Scenario.flows fig1) ()

let bench_e3 =
  Test.make ~name:"e3:multiprocessor-switch"
    (Staged.stage (fun () -> ignore (Analysis.Holistic.analyze e3_scenario)))

let e4_candidates, e4_topo =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:2 ()
  in
  ( List.init 5 (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "video%d" id)
          ~spec:(Workload.Mpeg.spec ~deadline:(Timeunit.ms 260) ())
          ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
          ~priority:5),
    topo )

let bench_e4 =
  Test.make ~name:"e4:greedy-admission"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Admission.admit_greedily ~topo:e4_topo ~switches:[]
              e4_candidates)))

let bench_e5 =
  Test.make ~name:"e5:analyze+simulate-fig1"
    (Staged.stage (fun () ->
         ignore
           (Experiments.E5_validation.validate ~duration:(Timeunit.ms 300)
              ~name:"bench" fig1)))

let bench_e6 =
  Test.make ~name:"e6:convergence-sweep"
    (Staged.stage (fun () -> ignore (Experiments.E6_convergence.sweep ())))

let e7_star_scenario =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:1_000_000_000 ~hosts:16 ()
  in
  let flows =
    List.init 8 (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "v%d" id)
          ~spec:(Workload.Mpeg.spec ~deadline:(Timeunit.ms 260) ())
          ~encap:Ethernet.Encap.Udp
          ~route:
            (Network.Route.make topo [ hosts.(2 * id); sw; hosts.((2 * id) + 1) ])
          ~priority:(id mod 8))
  in
  Traffic.Scenario.make ~topo ~flows ()

let bench_e7_flows =
  Test.make ~name:"e7:scaling-8-flows"
    (Staged.stage (fun () -> ignore (Analysis.Holistic.analyze e7_star_scenario)))

let e7_chain = Workload.Scenarios.multihop_chain ~switches:8 ()

let bench_e7_chain =
  Test.make ~name:"e7:scaling-8-switch-chain"
    (Staged.stage (fun () -> ignore (Analysis.Holistic.analyze e7_chain)))

let bench_e8_faithful =
  Test.make ~name:"e8:faithful-fig1"
    (Staged.stage (fun () ->
         ignore (Analysis.Holistic.analyze ~config:Analysis.Config.faithful fig1)))

let bench_e8_repaired =
  Test.make ~name:"e8:repaired-fig1"
    (Staged.stage (fun () -> ignore (Analysis.Holistic.analyze fig1)))

let bench_e9 =
  Test.make ~name:"e9:stride-600-quanta"
    (Staged.stage (fun () ->
         ignore (Experiments.E9_stride.allocation_table ~steps:600 [ 3; 2; 1 ])))

let e10_scenario =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:9 ()
  in
  let flows =
    List.init 8 (fun rank ->
        Traffic.Flow.make ~id:rank
          ~name:(Printf.sprintf "rank%d" rank)
          ~spec:
            (Workload.Mpeg.spec
               ~sizes:
                 { Workload.Mpeg.i_plus_p_bytes = 11_000; p_bytes = 5_000;
                   b_bytes = 2_000 }
               ~deadline:(Timeunit.ms 260) ())
          ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(rank); sw; hosts.(8) ])
          ~priority:rank)
  in
  Traffic.Scenario.make ~topo ~flows ()

let bench_e10 =
  Test.make ~name:"e10:8-priority-analysis"
    (Staged.stage (fun () -> ignore (Analysis.Holistic.analyze e10_scenario)))

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                    *)
(* ------------------------------------------------------------------ *)

let demand =
  let flow = Traffic.Scenario.flow fig1 Workload.Scenarios.video_flow_id in
  Traffic.Link_params.time_demand
    (Traffic.Scenario.params fig1 flow ~src:0 ~dst:4)

let bench_mx =
  Test.make ~name:"micro:MX-request-bound"
    (Staged.stage (fun () ->
         ignore (Gmf.Demand.bound demand ~capped:false (Timeunit.ms 137))))

let bench_fragment =
  Test.make ~name:"micro:fragmentation-64kB"
    (Staged.stage (fun () ->
         ignore (Ethernet.Fragment.fragment_wire_bits ~nbits:524_288)))

let bench_heap =
  Test.make ~name:"micro:heap-push-pop-256"
    (Staged.stage (fun () ->
         let h = Heap.create ~cmp:compare () in
         for i = 255 downto 0 do
           Heap.push h i
         done;
         while not (Heap.is_empty h) do
           ignore (Heap.pop h)
         done))

let bench_engine =
  Test.make ~name:"micro:engine-1k-events"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 1_000 do
           Sim.Engine.schedule_at e ~at:i (fun () -> ())
         done;
         Sim.Engine.run e))

let stride_state = Stride.Scheduler.round_robin ~ntasks:8

let bench_stride =
  Test.make ~name:"micro:stride-select"
    (Staged.stage (fun () -> ignore (Stride.Scheduler.select stride_state)))

let bench_sim_100ms =
  Test.make ~name:"micro:netsim-fig1-100ms"
    (Staged.stage (fun () ->
         ignore
           (Sim.Netsim.run
              ~config:
                { Sim.Sim_config.default with duration = Timeunit.ms 100 }
              fig1)))

(* ------------------------------------------------------------------ *)
(* Benchmarks of the extensions                                       *)
(* ------------------------------------------------------------------ *)

let bench_pathfind =
  let topo = Traffic.Scenario.topo fig1 in
  Test.make ~name:"ext:pathfind-all-routes"
    (Staged.stage (fun () ->
         ignore (Network.Pathfind.all_routes topo ~src:0 ~dst:3)))

let bench_backlog =
  let ctx = Analysis.Ctx.create fig1 in
  let report = Analysis.Holistic.run ctx in
  Test.make ~name:"ext:backlog-bounds"
    (Staged.stage (fun () ->
         ignore (Analysis.Backlog.egress_bounds ctx report)))

let bench_dbf =
  let task =
    Gmf.Dbf.of_spec Workload.Mpeg.fig3_spec ~cost_of:(fun f ->
        Ethernet.Fragment.tx_time
          ~nbits:
            (Ethernet.Encap.nbits Ethernet.Encap.Udp
               ~payload_bits:f.Gmf.Frame_spec.payload_bits)
          ~rate_bps:100_000_000)
  in
  Test.make ~name:"ext:dbf-one-second"
    (Staged.stage (fun () -> ignore (Gmf.Dbf.dbf task (Timeunit.s 1))))

let bench_contract =
  let trace =
    Workload.Contract.synthetic_mpeg_trace (Rng.create ~seed:3) ~packets:120 ()
  in
  Test.make ~name:"ext:contract-extraction"
    (Staged.stage (fun () ->
         ignore
           (Workload.Contract.of_trace ~cycle:9 ~deadline:(Timeunit.ms 150)
              trace)))

let bench_scenario_io =
  let text = Scenario_io.Print.to_string fig1 in
  Test.make ~name:"ext:scenario-parse"
    (Staged.stage (fun () ->
         match Scenario_io.Parse.scenario_of_string text with
         | Ok _ -> ()
         | Error _ -> assert false))

let bench_priority_assign =
  let flows = Traffic.Scenario.flows fig1 in
  Test.make ~name:"ext:priority-assignment"
    (Staged.stage (fun () ->
         ignore
           (Analysis.Priority_assign.assign
              Analysis.Priority_assign.Deadline_monotonic flows)))

let bench_e17 =
  Test.make ~name:"ext:tight-jitter-fig1"
    (Staged.stage (fun () ->
         ignore (Analysis.Holistic.analyze ~config:Analysis.Config.tight fig1)))

let bench_e18 =
  Test.make ~name:"ext:stage-validation-rows"
    (Staged.stage (fun () ->
         ignore (Experiments.E18_stage_validation.rows ())))

let bench_rerouting =
  let topo = Traffic.Scenario.topo fig1 in
  let candidate =
    Traffic.Flow.make ~id:90 ~name:"candidate" ~spec:Workload.Mpeg.fig3_spec
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ 1; 4; 6; 3 ])
      ~priority:5
  in
  Test.make ~name:"ext:rerouting-admit"
    (Staged.stage (fun () ->
         ignore (Analysis.Rerouting.admit fig1 ~candidate)))

(* ------------------------------------------------------------------ *)
(* Admission-control churn (Gmf_admctl)                               *)
(* ------------------------------------------------------------------ *)

(* A 50-event trace of interleaved admits and removals over a 4-switch
   line.  Long-haul flows make cold fixpoints propagate jitter across
   several rounds, which is exactly what warm starts amortize.  Replayed
   three ways: warm (the session default), cold (every event from
   scratch) and an instrumented shadow pass that feeds the admctl.*
   counters, including the rounds the warm starts saved. *)
module Admctl_churn = struct
  module Session = Gmf_admctl.Session

  let hosts_per_switch = 3
  let nswitches = 4

  let topo, hosts, switches =
    Workload.Topologies.line ~rate_bps:100_000_000 ~hosts_per_switch
      ~switches:nswitches ()

  let route_between (s1, h1) (s2, h2) =
    let lo = min s1 s2 and hi = max s1 s2 in
    let mids = Array.to_list (Array.sub switches lo (hi - lo + 1)) in
    let mids = if s1 <= s2 then mids else List.rev mids in
    Network.Route.make topo ((hosts.(s1).(h1) :: mids) @ [ hosts.(s2).(h2) ])

  let mk_flow ~id ~prio ~src ~dst kind =
    let spec =
      match kind with
      | `Voip -> Workload.Voip.g711_spec ()
      | `Video ->
          Workload.Mpeg.spec ~deadline:(Timeunit.ms 260)
            ~jitter:(Timeunit.ms 1) ()
    in
    Traffic.Flow.make ~id
      ~name:(Printf.sprintf "f%d" id)
      ~spec ~encap:Ethernet.Encap.Udp ~route:(route_between src dst)
      ~priority:prio

  (* Build-up of 20 flows, then 30 churn events: remove the oldest
     admitted flow, admit a fresh replacement elsewhere.  Deterministic
     (fixed seed) so warm, cold and shadow replays see the same trace. *)
  let events =
    let rng = Rng.create ~seed:42 in
    let next_id = ref 0 in
    let live = Queue.create () in
    let admit () =
      let id = !next_id in
      incr next_id;
      let s1 = Rng.int rng nswitches in
      let s2 = (s1 + 1 + Rng.int rng (nswitches - 1)) mod nswitches in
      let h1 = Rng.int rng hosts_per_switch
      and h2 = Rng.int rng hosts_per_switch in
      let kind = if Rng.int rng 5 = 0 then `Video else `Voip in
      let flow =
        mk_flow ~id ~prio:(Rng.int rng 8) ~src:(s1, h1) ~dst:(s2, h2) kind
      in
      Queue.add id live;
      Session.Admit flow
    in
    let evs = ref [] in
    for _ = 1 to 20 do
      evs := admit () :: !evs
    done;
    for i = 1 to 30 do
      if i mod 2 = 0 then evs := admit () :: !evs
      else evs := Session.Remove (Queue.take live) :: !evs
    done;
    List.rev !evs

  let replay_events ~warm ~shadow events =
    let session = Session.create ~warm ~shadow ~topo () in
    List.iter (fun ev -> ignore (Session.apply session ev)) events;
    Session.summary session

  let replay ~warm ~shadow () = replay_events ~warm ~shadow events

  (* The timed table uses a short prefix so bechamel gets enough runs for
     a meaningful estimate; the JSON report replays the full trace. *)
  let bench =
    let prefix = List.filteri (fun i _ -> i < 8) events in
    Test.make ~name:"ext:admctl-churn8"
      (Staged.stage (fun () ->
           ignore (replay_events ~warm:true ~shadow:false prefix)))

  let json_report () =
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let warm, warm_s = time (replay ~warm:true ~shadow:false) in
    let cold, cold_s = time (replay ~warm:false ~shadow:false) in
    (* Instrumented shadow pass: every warm fixpoint is compared against
       its cold reference, accumulating admctl.rounds_saved. *)
    let reg = Gmf_obs.Metrics.default in
    Gmf_obs.Metrics.set_enabled reg true;
    Gmf_obs.Metrics.reset reg;
    let shadow = replay ~warm:true ~shadow:true () in
    Gmf_obs.Metrics.set_enabled reg false;
    let counter name =
      Gmf_obs.Metrics.counter_value (Gmf_obs.Metrics.counter reg name)
    in
    let buf = Buffer.create 512 in
    let rate events seconds =
      if seconds <= 0. then 0. else float_of_int events /. seconds
    in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"benchmark\": \"admctl-churn\",\n\
                      \  \"events\": %d,\n\
                      \  \"final_flows\": %d,\n"
         warm.Session.events warm.Session.flow_count);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"warm\": {\"seconds\": %.6f, \"events_per_sec\": %.1f, \
          \"rounds_total\": %d, \"warm_hits\": %d, \"cold_resets\": %d},\n"
         warm_s
         (rate warm.Session.events warm_s)
         warm.Session.rounds_total warm.Session.warm_hits
         warm.Session.cold_resets);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"cold\": {\"seconds\": %.6f, \"events_per_sec\": %.1f, \
          \"rounds_total\": %d},\n"
         cold_s
         (rate cold.Session.events cold_s)
         cold.Session.rounds_total);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"rounds_saved\": %d,\n\
          \  \"counters\": {\"admctl.events\": %d, \"admctl.warm_hits\": \
          %d, \"admctl.cold_resets\": %d, \"admctl.rounds_saved\": %d}\n"
         shadow.Session.rounds_saved (counter "admctl.events")
         (counter "admctl.warm_hits")
         (counter "admctl.cold_resets")
         (counter "admctl.rounds_saved"));
    Buffer.add_string buf "}\n";
    let path = "BENCH_admctl.json" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf));
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" path
end

(* ------------------------------------------------------------------ *)
(* Fault recovery (Gmf_faults)                                        *)
(* ------------------------------------------------------------------ *)

(* Two costs of a link failure: the degraded-mode session fixpoint that
   reroutes the affected flows (warm-started from the unaffected
   remainder vs recomputed cold), and the static k=1 survivability sweep
   of the fig1 scenario.  The session trace is a diamond carrying the
   faulted traffic plus a disconnected multihop line whose long-haul
   flows take several rounds to converge cold but stay outside the
   interference closure of the failure — the state the warm start
   preserves. *)
module Survive_bench = struct
  module Session = Gmf_admctl.Session
  module Replay = Gmf_admctl.Replay

  let line_switches = 4
  let line_flows = 8

  let trace_text =
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      "node src endhost\nnode dst endhost\n\
       node sw1 switch\nnode sw2 switch\nnode sw3 switch\nnode sw4 switch\n\
       duplex src sw1 rate=100M prop=2us\nduplex sw4 dst rate=100M prop=2us\n\
       duplex sw1 sw2 rate=100M prop=2us\nduplex sw1 sw3 rate=100M prop=2us\n\
       duplex sw2 sw4 rate=100M prop=2us\nduplex sw3 sw4 rate=100M prop=2us\n\
       switch sw1 ports=3 cpus=1 croute=2.7us csend=1us\n\
       switch sw2 ports=2 cpus=1 croute=2.7us csend=1us\n\
       switch sw3 ports=2 cpus=1 croute=2.7us csend=1us\n\
       switch sw4 ports=3 cpus=1 croute=2.7us csend=1us\n";
    for s = 0 to line_switches - 1 do
      Buffer.add_string buf
        (Printf.sprintf
           "node l%d endhost\nnode ls%d switch\nduplex l%d ls%d rate=10M\n"
           s s s s);
      if s > 0 then
        Buffer.add_string buf
          (Printf.sprintf "duplex ls%d ls%d rate=10M\n" (s - 1) s)
    done;
    for s = 0 to line_switches - 1 do
      Buffer.add_string buf
        (Printf.sprintf "switch ls%d ports=3 cpus=1 croute=2.7us csend=1us\n"
           s)
    done;
    Buffer.add_string buf
      "admit flow video from=src to=dst route=src,sw1,sw2,sw4,dst prio=5 \
       encap=rtp\n\
      \  frame period=33ms deadline=100ms jitter=1ms payload=25000B\n\
      \  frame period=33ms deadline=100ms payload=5000B\nend\n\
       admit flow voice from=src to=dst route=src,sw1,sw2,sw4,dst prio=7 \
       encap=rtp\n\
      \  frame period=20ms deadline=150ms payload=160B\nend\n";
    (* Long-haul flows spanning the whole line, half of them reversed,
       with source jitter so each round moves the downstream bounds. *)
    for f = 0 to line_flows - 1 do
      let src, dst =
        if f mod 2 = 0 then (0, line_switches - 1) else (line_switches - 1, 0)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "admit flow lh%d from=l%d to=l%d prio=%d encap=udp\n\
           \  frame period=%dms deadline=900ms jitter=2ms payload=%dB\nend\n"
           f src dst (f mod 8)
           (33 + (5 * f))
           (8_000 + (2_000 * f)))
    done;
    Buffer.add_string buf "fail link sw1 sw2\n";
    Buffer.contents buf

  let trace =
    match Scenario_io.Admtrace.of_string trace_text with
    | Ok t -> t
    | Error e ->
        failwith (Format.asprintf "%a" Scenario_io.Parse.pp_error e)

  let fail_outcome outcomes =
    match
      List.find_opt
        (fun (o : Session.outcome) -> o.Session.degradation <> None)
        outcomes
    with
    | Some o -> o
    | None -> failwith "trace has no fault event"

  let replay ~warm ~shadow () = Replay.run ~warm ~shadow trace

  let bench =
    Test.make ~name:"ext:survive-fig1-k1"
      (Staged.stage (fun () ->
           ignore
             (Gmf_faults.Survive.run ~k:1
                (Workload.Scenarios.fig1_videoconf ()))))

  (* A 6x6 software-switch mesh for the k>=2 sweeps, tiled: every flow
     stays inside a 2-cell tile of the grid (its own access switches and
     the fabric link between them), so the interference graph fragments
     into one component per tile — the regime the delta engine exists
     for.  A failure case only perturbs its tiles (plus whatever tiles
     the reroute detours borrow switches from); every other component is
     certified untouched and carried over from the shared base, while
     the cold engine re-analyzes all of them per case.  The failure
     domain is the intra-tile fabric links, which keeps the k=2/k=3
     case counts a bench, not a soak test. *)
  let mesh_rows = 18
  let mesh_cols = 6

  (* Light frames with generous deadlines: almost every tile certifies
     statically, so per-case cost is dominated by the full-scenario scans
     (precheck, lint, digest) the cold engine repeats for every failure
     case — exactly the O(N)-per-case work the delta engine's closure
     restriction avoids.  The detour-merged components of a failed tile
     still fall back to real fixpoints, and both engines pay those. *)
  let mesh_profile =
    {
      Workload.Random_gen.default_profile with
      Workload.Random_gen.payload_bytes = (2_000, 6_000);
      deadline_factor = (1.5, 2.2);
      jitter = (0, 50_000);
    }

  let mesh_scenario_and_domain =
    lazy
      (let built =
         Gmf_topogen.Builders.build ~rate_bps:100_000_000
           ~prop:Gmf_topogen.Gen_spec.default.Gmf_topogen.Gen_spec.prop
           ~hosts_per_switch:4
           (Gmf_topogen.Gen_spec.Mesh
              { rows = mesh_rows; cols = mesh_cols; planes = 1 })
       in
       let topo = built.Gmf_topogen.Builders.topo in
       let hosts_of = Hashtbl.create 64 in
       Array.iteri
         (fun i h ->
           let c = built.Gmf_topogen.Builders.host_region.(i) in
           Hashtbl.replace hosts_of c
             (h :: (Option.value ~default:[] (Hashtbl.find_opt hosts_of c))))
         built.Gmf_topogen.Builders.hosts;
       let switch_of h = List.hd (Network.Topology.out_neighbors topo h) in
       let rng = Gmf_util.Rng.create ~seed:42 in
       let pairs = ref [] and domain = ref [] in
       (* Tiles pair horizontally adjacent cells (r, 2t)-(r, 2t+1). *)
       for r = 0 to mesh_rows - 1 do
         for t = 0 to (mesh_cols / 2) - 1 do
           let ca = (r * mesh_cols) + (2 * t)
           and cb = (r * mesh_cols) + (2 * t) + 1 in
           match (Hashtbl.find_opt hosts_of ca, Hashtbl.find_opt hosts_of cb)
           with
           | Some (a0 :: a1 :: a2 :: a3 :: _), Some (b0 :: b1 :: b2 :: b3 :: _)
             ->
               pairs :=
                 (b0, a3) :: (a2, b3) :: (b2, a2) :: (a1, b1) :: (b1, a0)
                 :: (a0, b0) :: !pairs;
               let sa = switch_of a0 and sb = switch_of b0 in
               domain :=
                 Gmf_faults.Survive.Link (min sa sb, max sa sb) :: !domain
           | _ -> failwith "survive bench: mesh tile missing hosts"
         done
       done;
       let flows =
         Workload.Random_gen.flows_between rng ~profile:mesh_profile ~topo
           ~pairs:(List.rev !pairs) ()
       in
       (Traffic.Scenario.make ~topo ~flows (), List.rev !domain))

  let mesh_domain domain n =
    let rec take k = function
      | x :: tl when k > 0 -> x :: take (k - 1) tl
      | _ -> []
    in
    take n domain

  (* Engine equivalence is part of the bench contract: render the
     observable part of both reports (fates, matrix, shed set — not the
     engine-dependent rounds or delta stats) and require byte equality. *)
  let sweep_signature scenario (r : Gmf_faults.Survive.report) =
    let buf = Buffer.create 4096 in
    List.iter
      (fun (c : Gmf_faults.Survive.case_result) ->
        List.iter
          (fun comp ->
            Buffer.add_string buf
              (Gmf_faults.Survive.component_name scenario comp);
            Buffer.add_char buf '+')
          c.Gmf_faults.Survive.case;
        Buffer.add_char buf '|';
        List.iter
          (fun ((f : Traffic.Flow.t), fate) ->
            Buffer.add_string buf
              (Printf.sprintf "%d=%s;" f.Traffic.Flow.id
                 (match fate with
                 | Gmf_faults.Survive.Unaffected -> "u"
                 | Gmf_faults.Survive.Rerouted _ -> "r"
                 | Gmf_faults.Survive.Shed -> "s")))
          c.Gmf_faults.Survive.fates;
        Buffer.add_char buf '\n')
      r.Gmf_faults.Survive.cases;
    List.iter
      (fun ((f : Traffic.Flow.t), v) ->
        Buffer.add_string buf
          (Printf.sprintf "%d:%s;" f.Traffic.Flow.id
             (match v with
             | Gmf_faults.Survive.Survives -> "ok"
             | Gmf_faults.Survive.Survives_with_reroute -> "rr"
             | Gmf_faults.Survive.Must_shed -> "shed")))
      r.Gmf_faults.Survive.matrix;
    List.iter
      (fun (f : Traffic.Flow.t) ->
        Buffer.add_string buf (Printf.sprintf "!%d" f.Traffic.Flow.id))
      r.Gmf_faults.Survive.shed_set;
    Buffer.contents buf

  let json_report () =
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let warm, warm_s = time (replay ~warm:true ~shadow:false) in
    let cold, cold_s = time (replay ~warm:false ~shadow:false) in
    let warm_fail = fail_outcome warm.Replay.outcomes in
    let cold_fail = fail_outcome cold.Replay.outcomes in
    let degradation o =
      match o.Session.degradation with
      | Some { Session.rerouted; shed } ->
          (List.length rerouted, List.length shed)
      | None -> (0, 0)
    in
    let rerouted, shed = degradation warm_fail in
    let static, static_s =
      time (fun () ->
          Gmf_faults.Survive.run ~k:1 (Workload.Scenarios.fig1_videoconf ()))
    in
    let static_rounds =
      List.fold_left
        (fun acc c -> acc + c.Gmf_faults.Survive.rounds)
        0 static.Gmf_faults.Survive.cases
    in
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"benchmark\": \"survive\",\n\
         \  \"session\": {\"events\": %d, \"flows\": %d, \"rerouted\": %d, \
          \"shed\": %d,\n\
         \    \"fail_rounds_warm\": %d, \"fail_rounds_cold\": %d, \
          \"rounds_saved_on_failure\": %d,\n\
         \    \"warm_seconds\": %.6f, \"cold_seconds\": %.6f},\n"
         (Session.summary warm.Replay.session).Session.events
         warm_fail.Session.flow_count rerouted shed warm_fail.Session.rounds
         cold_fail.Session.rounds
         (cold_fail.Session.rounds - warm_fail.Session.rounds)
         warm_s cold_s);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"static\": {\"scenario\": \"fig1\", \"k\": 1, \"cases\": %d, \
          \"rounds_total\": %d, \"shed_flows\": %d, \"seconds\": %.6f},\n"
         (List.length static.Gmf_faults.Survive.cases)
         static_rounds
         (List.length static.Gmf_faults.Survive.shed_set)
         static_s);
    (* k=2 delta vs cold on the mesh, same domain: the headline number
       of the delta engine.  The memo is cleared before every timed run
       so neither engine sees the other's cases. *)
    let scenario, full_domain = Lazy.force mesh_scenario_and_domain in
    let domain = mesh_domain full_domain 12 in
    let clear_memos () =
      Gmf_faults.Survive.clear_memo ();
      Gmf_exec.Memo.clear Analysis.Case.shared_memo
    in
    clear_memos ();
    let d2, d2_s =
      time (fun () ->
          Gmf_faults.Survive.run ~k:2 ~domain ~delta:true scenario)
    in
    clear_memos ();
    let c2, c2_s =
      time (fun () ->
          Gmf_faults.Survive.run ~k:2 ~domain ~delta:false scenario)
    in
    if
      not
        (String.equal (sweep_signature scenario d2)
           (sweep_signature scenario c2))
    then failwith "survive bench: delta sweep diverges from the cold one";
    clear_memos ();
    let d3, d3_s =
      time (fun () ->
          Gmf_faults.Survive.run ~k:3 ~domain:(mesh_domain full_domain 8)
            ~delta:true scenario)
    in
    let totals r =
      match r.Gmf_faults.Survive.delta_totals with
      | Some t ->
          (t.Gmf_faults.Survive.d_closure, t.Gmf_faults.Survive.d_skipped,
           t.Gmf_faults.Survive.d_saved)
      | None -> (0, 0, 0)
    in
    let d2_closure, d2_skipped, d2_saved = totals d2 in
    Buffer.add_string buf
      (Printf.sprintf
         "  \"mesh\": {\"family\": \"mesh:%dx%d\", \"flows\": %d,\n\
         \    \"k2\": {\"cases\": %d, \"delta_seconds\": %.6f, \
          \"cold_seconds\": %.6f, \"speedup\": %.2f,\n\
         \      \"closure_flows\": %d, \"skipped_flows\": %d, \
          \"rounds_saved\": %d},\n\
         \    \"k3\": {\"cases\": %d, \"delta_seconds\": %.6f}}\n"
         mesh_rows mesh_cols
         (List.length (Traffic.Scenario.flows scenario))
         (List.length d2.Gmf_faults.Survive.cases)
         d2_s c2_s
         (c2_s /. Float.max 1e-9 d2_s)
         d2_closure d2_skipped d2_saved
         (List.length d3.Gmf_faults.Survive.cases)
         d3_s);
    Buffer.add_string buf "}\n";
    let path = "BENCH_survive.json" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf));
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" path
end

(* ------------------------------------------------------------------ *)
(* Case-evaluation backends (Gmf_exec)                                *)
(* ------------------------------------------------------------------ *)

(* The k=2 survivability sweep of fig1 — 60+ independent holistic
   fixpoints — evaluated sequentially and through the fork pool.  The
   reported speedup only means something on a multicore runner (the CI
   machines); on a single core the pool pays fork/marshal overhead for
   nothing.  What holds everywhere, and is asserted here, is that the
   rendered reports are byte-identical across backends. *)
module Exec_bench = struct
  let scenario = Workload.Scenarios.fig1_videoconf ()
  let k = 2
  let jobs = 4

  let sweep exec = Gmf_faults.Survive.run ~exec ~k scenario

  let json_report () =
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let seq, seq_s = time (fun () -> sweep Gmf_exec.seq) in
    let pool, pool_s = time (fun () -> sweep (Gmf_exec.pool jobs)) in
    let seq_json = Gmf_faults.Survive.to_json scenario seq in
    let pool_json = Gmf_faults.Survive.to_json scenario pool in
    if not (String.equal seq_json pool_json) then
      failwith "exec bench: pool report diverges from the sequential one";
    (* Second sequential pass against a shared memo pre-filled by the
       first: every case should come back as a hit. *)
    let memo = Gmf_exec.Memo.create () in
    let reg = Gmf_obs.Metrics.default in
    Gmf_obs.Metrics.set_enabled reg true;
    Gmf_obs.Metrics.reset reg;
    ignore
      (Gmf_exec.map_cases ~memo
         ~key:(fun i -> string_of_int i)
         ~f:(fun i -> i * i)
         (List.init 64 Fun.id));
    ignore
      (Gmf_exec.map_cases ~memo
         ~key:(fun i -> string_of_int i)
         ~f:(fun i -> i * i)
         (List.init 64 Fun.id));
    Gmf_obs.Metrics.set_enabled reg false;
    let counter name =
      Gmf_obs.Metrics.counter_value (Gmf_obs.Metrics.counter reg name)
    in
    let speedup = if pool_s <= 0. then 0. else seq_s /. pool_s in
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"benchmark\": \"exec\",\n\
         \  \"workload\": {\"scenario\": \"fig1\", \"k\": %d, \"cases\": %d},\n"
         k
         (List.length seq.Gmf_faults.Survive.cases));
    Buffer.add_string buf
      (Printf.sprintf
         "  \"seq\": {\"seconds\": %.6f},\n\
         \  \"pool\": {\"jobs\": %d, \"seconds\": %.6f},\n\
         \  \"speedup\": %.2f,\n\
         \  \"identical_output\": true,\n"
         seq_s jobs pool_s speedup);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"memo\": {\"cases\": %d, \"hits\": %d}\n"
         (counter "exec.cases") (counter "exec.memo_hits"));
    Buffer.add_string buf "}\n";
    let path = "BENCH_exec.json" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf));
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" path
end

(* ------------------------------------------------------------------ *)
(* Static precheck (Gmf_precheck + Analysis.Sharded)                  *)
(* ------------------------------------------------------------------ *)

(* How much of each workload the static pre-analysis decides without any
   fixpoint, and what the per-component sharded driver saves over the
   monolithic holistic run.  The per-scenario leaves (flows, components,
   decided, rounds) are deterministic; the timing leaves feed the
   regression gate with the usual generous tolerance. *)
module Precheck_bench = struct
  (* Four switch-local clusters on one fabric: the flows of different
     switches share no node, so the interference graph falls apart into
     four components — the sharding setting fig1 (one dense component)
     cannot show. *)
  let clusters =
    let topo, hosts, _sw =
      Workload.Topologies.line ~hosts_per_switch:4 ~switches:4 ()
    in
    let rng = Gmf_util.Rng.create ~seed:7 in
    let pairs =
      List.concat_map
        (fun s ->
          [
            (hosts.(s).(0), hosts.(s).(1));
            (hosts.(s).(1), hosts.(s).(2));
            (hosts.(s).(2), hosts.(s).(3));
          ])
        [ 0; 1; 2; 3 ]
    in
    let flows = Workload.Random_gen.flows_between rng ~topo ~pairs () in
    Traffic.Scenario.make ~topo ~flows ()

  let workloads =
    [
      ("fig1", Workload.Scenarios.fig1_videoconf ());
      ("voip", Workload.Scenarios.single_switch_voip ());
      ("chain", Workload.Scenarios.multihop_chain ());
      ("enterprise", Workload.Scenarios.enterprise ());
      ("clusters", clusters);
    ]

  let json_report () =
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let rows =
      List.map
        (fun (name, scenario) ->
          let mono, mono_s =
            time (fun () -> Analysis.Holistic.analyze scenario)
          in
          let (sharded, pre, stats), sharded_s =
            time (fun () -> Analysis.Sharded.analyze scenario)
          in
          if
            Analysis.Holistic.is_schedulable mono
            <> Analysis.Holistic.is_schedulable sharded
          then
            failwith
              (Printf.sprintf
                 "precheck bench: sharded verdict diverges on %s" name);
          let st = pre.Gmf_precheck.Precheck.stats in
          let flows = st.Gmf_precheck.Igraph.flows in
          let decided = Gmf_precheck.Precheck.decided pre in
          Printf.sprintf
            "    {\"scenario\": \"%s\", \"flows\": %d, \"components\": %d,\n\
            \     \"decided\": %d, \"decided_pct\": %.1f,\n\
            \     \"infeasible\": %d, \"certified\": %d,\n\
            \     \"mono_rounds\": %d, \"sharded_rounds\": %d, \"rounds_saved\": %d,\n\
            \     \"mono\": {\"seconds\": %.6f}, \"sharded\": {\"seconds\": %.6f}}"
            name flows st.Gmf_precheck.Igraph.components decided
            (if flows = 0 then 0.
             else 100. *. float_of_int decided /. float_of_int flows)
            stats.Analysis.Sharded.flows_infeasible
            stats.Analysis.Sharded.flows_certified
            mono.Analysis.Holistic.rounds sharded.Analysis.Holistic.rounds
            (max 0
               (mono.Analysis.Holistic.rounds
              - sharded.Analysis.Holistic.rounds))
            mono_s sharded_s)
        workloads
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"benchmark\": \"precheck\",\n  \"scenarios\": [\n";
    Buffer.add_string buf (String.concat ",\n" rows);
    Buffer.add_string buf "\n  ]\n}\n";
    let path = "BENCH_precheck.json" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf));
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" path
end

(* ------------------------------------------------------------------ *)
(* Scale benchmark: generate a TSN-class mesh and admit it            *)
(* ------------------------------------------------------------------ *)

(* End-to-end admission of a generated population: 1,000 flows on a
   25x20 mesh (500 switches, 1,000 dual-attached hosts) at 1 Gbit/s.
   The figure of merit is flows/sec over generation + lint + precheck +
   sharded fixpoints — the whole path an operator would run to admit a
   fleet, and the path the per-link flow indexes and distance-pruned
   route search keep out of quadratic territory. *)
module Scale_bench = struct
  let spec =
    {
      Gmf_topogen.Gen_spec.default with
      Gmf_topogen.Gen_spec.family =
        Gmf_topogen.Gen_spec.Mesh { rows = 25; cols = 20; planes = 1 };
      hosts_per_switch = 2;
      rate_bps = 1_000_000_000;
      flows = 1_000;
      seed = 42;
    }

  let json_report () =
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let result, gen_s =
      time (fun () -> Gmf_topogen.Topogen.generate spec)
    in
    let scenario = result.Gmf_topogen.Topogen.scenario in
    let lint, lint_s = time (fun () -> Gmf_lint.Lint.run scenario) in
    (if Gmf_lint.Lint.fatal ~deny:Gmf_diag.Warning lint then
       failwith "scale bench: generated scenario is not lint-clean");
    let (report, pre, stats), analyze_s =
      time (fun () -> Analysis.Sharded.analyze scenario)
    in
    let placed = result.Gmf_topogen.Topogen.placed in
    if placed < spec.Gmf_topogen.Gen_spec.flows then
      failwith
        (Printf.sprintf "scale bench: placed only %d/%d flows" placed
           spec.Gmf_topogen.Gen_spec.flows);
    let total_s = gen_s +. lint_s +. analyze_s in
    let st = pre.Gmf_precheck.Precheck.stats in
    let buf = Buffer.create 1024 in
    Printf.bprintf buf
      "{\n\
      \  \"benchmark\": \"scale\",\n\
      \  \"family\": \"%s\",\n\
      \  \"switches\": %d,\n\
      \  \"links\": %d,\n\
      \  \"flows\": %d,\n\
      \  \"igraph\": {\"edges\": %d, \"components\": %d, \"largest\": %d,\n\
      \             \"singletons\": %d, \"density\": %.4f},\n\
      \  \"decided\": %d,\n\
      \  \"components_run\": %d,\n\
      \  \"schedulable\": %b,\n\
      \  \"gen\": {\"seconds\": %.3f},\n\
      \  \"lint\": {\"seconds\": %.3f},\n\
      \  \"analyze\": {\"seconds\": %.3f},\n\
      \  \"total\": {\"seconds\": %.3f, \"flows_per_sec\": %.1f}\n\
       }\n"
      (Gmf_topogen.Gen_spec.family_to_string spec.Gmf_topogen.Gen_spec.family)
      result.Gmf_topogen.Topogen.built.Gmf_topogen.Builders.switch_count
      result.Gmf_topogen.Topogen.built.Gmf_topogen.Builders.link_count
      placed st.Gmf_precheck.Igraph.edges st.Gmf_precheck.Igraph.components
      st.Gmf_precheck.Igraph.largest st.Gmf_precheck.Igraph.singletons
      st.Gmf_precheck.Igraph.density
      (Gmf_precheck.Precheck.decided pre)
      stats.Analysis.Sharded.components_run
      (Analysis.Holistic.is_schedulable report)
      gen_s lint_s analyze_s total_s
      (float_of_int placed /. total_s);
    let path = "BENCH_scale.json" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf));
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" path
end

(* ------------------------------------------------------------------ *)
(* gmfnetd round-trip (Gmf_daemon)                                    *)
(* ------------------------------------------------------------------ *)

(* The daemon tax: one churn trace replayed in-process (Replay.run) and
   through a live gmfnetd — fork, Unix socket, supervised worker
   process, one fsync'd journal append per committed event.  The gated
   leaves are the two events_per_sec figures; transcript equality with
   the in-process run is recorded as an informational 0/1 leaf. *)
module Daemon_bench = struct
  module Replay = Gmf_admctl.Replay

  let nhosts = 6
  let nflows = 10
  let churn = 20

  let trace_text =
    let buf = Buffer.create 2048 in
    for h = 0 to nhosts - 1 do
      Printf.bprintf buf "node h%d endhost\n" h
    done;
    Buffer.add_string buf "node sw switch\n";
    for h = 0 to nhosts - 1 do
      Printf.bprintf buf "duplex h%d sw rate=100M prop=2us\n" h
    done;
    Printf.bprintf buf "switch sw ports=%d cpus=1 croute=2.7us csend=1us\n"
      nhosts;
    let admit id =
      let src = id mod nhosts in
      let dst = (src + 1 + (id mod (nhosts - 1))) mod nhosts in
      let dst = if dst = src then (src + 1) mod nhosts else dst in
      Printf.sprintf
        "admit flow v%d from=h%d to=h%d route=h%d,sw,h%d prio=%d encap=udp\n\
        \  frame period=20ms deadline=150ms payload=160B\nend\n"
        id src dst src dst (id mod 8)
    in
    for id = 0 to nflows - 1 do
      Buffer.add_string buf (admit id)
    done;
    let next = ref nflows and oldest = ref 0 in
    for i = 1 to churn do
      if i mod 2 = 1 then begin
        Printf.bprintf buf "remove v%d\n" !oldest;
        incr oldest
      end
      else begin
        Buffer.add_string buf (admit !next);
        incr next
      end
    done;
    Buffer.contents buf

  let events = nflows + churn

  let with_daemon f =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gmfnetd-bench-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let socket = Filename.concat dir "gmfnetd.sock" in
    let journal_dir = Filename.concat dir "journal" in
    match Unix.fork () with
    | 0 ->
        (try
           Gmf_daemon.Server.run
             {
               Gmf_daemon.Server.default_config with
               socket_path = socket;
               journal_dir;
             }
         with _ -> ());
        Unix._exit 0
    | pid ->
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill pid Sys.sigterm with _ -> ());
            ignore (Unix.waitpid [] pid))
          (fun () ->
            let rec wait n =
              if Sys.file_exists socket then ()
              else if n <= 0 then failwith "gmfnetd did not come up"
              else begin
                Unix.sleepf 0.02;
                wait (n - 1)
              end
            in
            wait 250;
            f socket)

  let json_report () =
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let trace =
      match Scenario_io.Admtrace.of_string trace_text with
      | Ok t -> t
      | Error e ->
          failwith
            (Format.asprintf "daemon bench trace: %a" Scenario_io.Parse.pp_error
               e)
    in
    let inproc, inproc_s = time (fun () -> Replay.run trace) in
    let inproc_text =
      Replay.transcript inproc.Replay.outcomes
      ^ "\nsummary:\n"
      ^ Format.asprintf "%a" Replay.pp_summary
          (Gmf_admctl.Session.summary inproc.Replay.session)
    in
    let daemon_r, daemon_s =
      with_daemon (fun socket ->
          time (fun () ->
              match
                Gmf_daemon.Client.run_trace ~socket ~session:"bench" trace_text
              with
              | Ok r -> r
              | Error msg -> failwith ("daemon bench: " ^ msg)))
    in
    let rate n s = if s <= 0. then 0. else float_of_int n /. s in
    let buf = Buffer.create 512 in
    Printf.bprintf buf
      "{\n\
      \  \"benchmark\": \"daemon\",\n\
      \  \"events\": %d,\n\
      \  \"inprocess\": {\"seconds\": %.6f, \"events_per_sec\": %.1f},\n\
      \  \"daemon\": {\"seconds\": %.6f, \"events_per_sec\": %.1f},\n\
      \  \"transcript_match\": %d,\n\
      \  \"rejected\": %d\n\
       }\n"
      events inproc_s (rate events inproc_s) daemon_s (rate events daemon_s)
      (if daemon_r.Gmf_daemon.Client.output = inproc_text then 1 else 0)
      (List.length daemon_r.Gmf_daemon.Client.rejected);
    let path = "BENCH_daemon.json" in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf));
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" path
end

(* ------------------------------------------------------------------ *)
(* Baseline regression check                                          *)
(* ------------------------------------------------------------------ *)

(* Diff a freshly-written BENCH_*.json report against a committed
   baseline.  Wall-time leaves (path contains "seconds") regress when the
   current value exceeds baseline * (1 + max_regress/100); throughput
   leaves ("events_per_sec", "speedup") regress when the current value
   falls below baseline / (1 + max_regress/100).  Every other numeric
   leaf (event counts, rounds, memo hits) is informational — those are
   deterministic, so a drift shows up in the table without failing the
   run.  The generous default tolerates the noise of shared CI runners;
   what the gate actually catches is an accidental O(n)->O(n^2) slip. *)
module Baseline = struct
  module Json = Gmf_obs.Export.Json

  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    nl = 0 || go 0

  let kind path =
    if contains ~needle:"seconds" path then `Lower_is_better
    else if contains ~needle:"per_sec" path || contains ~needle:"speedup" path
    then `Higher_is_better
    else `Informational

  let leaves_of_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | text -> (
        match Json.parse text with
        | Error e -> Error (Printf.sprintf "%s: %s" path e)
        | Ok v -> Ok (Json.number_leaves v))

  (* 0 = within tolerance, 1 = regression, 2 = unreadable input. *)
  let check ~current ~baseline ~max_regress =
    match (leaves_of_file baseline, leaves_of_file current) with
    | Error msg, _ | _, Error msg ->
        Printf.eprintf "bench: baseline check: %s\n" msg;
        2
    | Ok base_leaves, Ok cur_leaves ->
        let slack = 1. +. (max_regress /. 100.) in
        let table =
          Tablefmt.create
            ~columns:
              [
                ("metric", Tablefmt.Left); ("baseline", Tablefmt.Right);
                ("current", Tablefmt.Right); ("delta", Tablefmt.Right);
                ("verdict", Tablefmt.Left);
              ]
        in
        let regressions = ref 0 in
        List.iter
          (fun (path, base) ->
            let kind = kind path in
            match List.assoc_opt path cur_leaves with
            | None ->
                if kind <> `Informational then incr regressions;
                Tablefmt.add_row table
                  [ path; Printf.sprintf "%g" base; "-"; "-"; "MISSING" ]
            | Some cur ->
                let delta =
                  if base = 0. then "-"
                  else Printf.sprintf "%+.1f%%" ((cur -. base) /. base *. 100.)
                in
                let verdict =
                  match kind with
                  | `Informational -> ""
                  | `Lower_is_better ->
                      if cur > base *. slack then "REGRESSED" else "ok"
                  | `Higher_is_better ->
                      if cur < base /. slack then "REGRESSED" else "ok"
                in
                if verdict = "REGRESSED" then incr regressions;
                Tablefmt.add_row table
                  [
                    path; Printf.sprintf "%g" base; Printf.sprintf "%g" cur;
                    delta; verdict;
                  ])
          base_leaves;
        Printf.printf "\nbaseline check against %s (max regress %.0f%%):\n"
          baseline max_regress;
        Tablefmt.print table;
        if !regressions > 0 then begin
          Printf.printf "%d metric(s) regressed\n" !regressions;
          1
        end
        else begin
          print_endline "no regressions";
          0
        end
end

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let tests =
  [
    bench_e1; bench_e2; bench_e3; bench_e4; bench_e5; bench_e6;
    bench_e7_flows; bench_e7_chain; bench_e8_faithful; bench_e8_repaired;
    bench_e9; bench_e10; bench_mx; bench_fragment; bench_heap; bench_engine;
    bench_stride; bench_sim_100ms; bench_pathfind; bench_backlog; bench_dbf;
    bench_contract; bench_scenario_io; bench_priority_assign; bench_rerouting;
    bench_e17; bench_e18; Admctl_churn.bench; Survive_bench.bench;
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"gmfnet" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

(* [bench <report> [--baseline FILE] [--max-regress PCT]]: write the
   BENCH_*.json report, then optionally diff it against a committed
   baseline; exit 1 on a regression, 2 on an unreadable file. *)
let flag_value name =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 2

let run_report json_report current =
  json_report ();
  match flag_value "--baseline" with
  | None -> exit 0
  | Some baseline ->
      let max_regress =
        match flag_value "--max-regress" with
        | None -> 100.
        | Some s -> (
            match float_of_string_opt s with
            | Some v when v >= 0. -> v
            | _ ->
                Printf.eprintf "bench: bad --max-regress %S\n" s;
                exit 2)
      in
      exit (Baseline.check ~current ~baseline ~max_regress)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "admctl" then
    run_report Admctl_churn.json_report "BENCH_admctl.json";
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "survive" then
    run_report Survive_bench.json_report "BENCH_survive.json";
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "exec" then
    run_report Exec_bench.json_report "BENCH_exec.json";
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "precheck" then
    run_report Precheck_bench.json_report "BENCH_precheck.json";
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "scale" then
    run_report Scale_bench.json_report "BENCH_scale.json";
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "daemon" then
    run_report Daemon_bench.json_report "BENCH_daemon.json";
  let results = benchmark () in
  let table =
    Tablefmt.create
      ~columns:
        [ ("benchmark", Tablefmt.Left); ("time/run", Tablefmt.Right);
          ("r^2", Tablefmt.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure per_test ->
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Timeunit.to_string (int_of_float e)
            | _ -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "n/a"
          in
          rows := (name, estimate, r2) :: !rows)
        per_test)
    results;
  List.iter
    (fun (name, estimate, r2) -> Tablefmt.add_row table [ name; estimate; r2 ])
    (List.sort compare !rows);
  Tablefmt.print table;
  (* One instrumented pass of the e2 workload after timing: a convergence
     telemetry snapshot per bench run (the timed loops above run with
     observability off, so the numbers are unperturbed). *)
  let reg = Gmf_obs.Metrics.default in
  Gmf_obs.Metrics.set_enabled reg true;
  Gmf_obs.Metrics.reset reg;
  ignore (Analysis.Holistic.analyze fig1);
  ignore
    (Sim.Netsim.run
       ~config:{ Sim.Sim_config.default with duration = Timeunit.ms 100 }
       fig1);
  Gmf_obs.Metrics.set_enabled reg false;
  print_newline ();
  print_endline "telemetry of one instrumented holistic + 100ms sim pass:";
  print_newline ();
  print_string (Gmf_obs.Export.metrics_tables (Gmf_obs.Metrics.snapshot reg))
