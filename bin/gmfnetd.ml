(* gmfnetd: the admission-control daemon and its command-line client.

   [gmfnetd serve] runs the crash-safe daemon: concurrent admtrace
   sessions over a Unix-domain socket, each in a supervised worker
   process, every committed event fsync'd to a per-session journal
   before its decision is released, bounded queues shedding with
   explicit "overloaded" responses.

   [gmfnetd client] streams a .admtrace file through a session and
   prints output byte-identical to [gmfnet session] — the CI smoke job
   diffs it against the committed golden transcript.

   [gmfnetd fingerprint] fetches a session's state digest, queued
   behind any journal-recovery replay — the hook the kill -9 recovery
   tests use. *)

open Cmdliner

let exit_of_result = function
  | Ok () -> 0
  | Error msg ->
      prerr_endline ("gmfnetd: " ^ msg);
      1

let socket_arg =
  let doc = "Unix-domain socket path." in
  Arg.(
    value
    & opt string Gmf_daemon.Server.default_config.socket_path
    & info [ "socket" ] ~docv:"PATH" ~doc)

let session_arg =
  let doc = "Session name (also the journal file name)." in
  Arg.(value & opt string "default" & info [ "session" ] ~docv:"NAME" ~doc)

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let journal_dir_arg =
    let doc = "Directory for per-session write-ahead journals." in
    Arg.(
      value
      & opt string Gmf_daemon.Server.default_config.journal_dir
      & info [ "journal-dir" ] ~docv:"DIR" ~doc)
  in
  let max_sessions_arg =
    let doc = "Maximum concurrently live sessions (worker processes)." in
    Arg.(
      value
      & opt int Gmf_daemon.Server.default_config.max_sessions
      & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let queue_cap_arg =
    let doc =
      "Per-session pending-request bound; arrivals beyond it are shed \
       with an explicit $(b,overloaded) response."
    in
    Arg.(
      value
      & opt int Gmf_daemon.Server.default_config.queue_cap
      & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-request worker deadline in seconds; an overrun kills the \
       worker (the event is rejected, the worker respawned and \
       journal-replayed)."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let jobs_arg =
    let doc = "Executor width inside each session worker." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run socket journal_dir max_sessions queue_cap deadline jobs =
    exit_of_result
      (try
         Gmf_daemon.Server.run
           ~on_ready:(fun () ->
             Printf.printf "gmfnetd: listening on %s\n%!" socket)
           {
             Gmf_daemon.Server.default_config with
             socket_path = socket;
             journal_dir;
             max_sessions;
             queue_cap;
             deadline_s = deadline;
             exec_jobs = jobs;
           };
         Ok ()
       with
      | Invalid_argument msg -> Error msg
      | Unix.Unix_error (e, fn, arg) ->
          Error
            (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the admission-control daemon: concurrent $(b,.admtrace) \
          sessions over a Unix-domain socket, supervised worker \
          processes, fsync'd per-session event journals, bounded queues \
          with explicit overload shedding.  SIGTERM drains and exits.")
    Term.(
      const run $ socket_arg $ journal_dir_arg $ max_sessions_arg
      $ queue_cap_arg $ deadline_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* client                                                             *)
(* ------------------------------------------------------------------ *)

let client_cmd =
  let file_arg =
    let doc = "Admission trace ($(b,.admtrace)) to stream." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let verify_arg =
    let doc = "Shadow mode, as $(b,gmfnet session --verify)." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let explain_arg =
    Arg.(value & flag & info [ "explain" ] ~doc:"Attribute fixpoint events.")
  in
  let cold_arg =
    Arg.(value & flag & info [ "cold" ] ~doc:"Disable warm starts.")
  in
  let survivable_arg =
    let doc = "Arm the survivable-admission gate with budget $(docv)." in
    Arg.(value & opt (some int) None & info [ "survivable" ] ~docv:"K" ~doc)
  in
  let throttle_arg =
    let doc =
      "Ask the worker to spend at least $(docv) seconds per event — \
       overload-test pacing."
    in
    Arg.(value & opt float 0. & info [ "throttle" ] ~docv:"S" ~doc)
  in
  let run socket session file verify explain cold survivable throttle =
    exit_of_result
      (match In_channel.with_open_text file In_channel.input_all with
      | exception Sys_error msg -> Error msg
      | text -> (
          match
            Gmf_daemon.Client.run_trace ~socket ~session ~verify ~explain
              ~cold ?survivable ~throttle_s:throttle text
          with
          | Error _ as e -> e
          | Ok r ->
              print_string r.Gmf_daemon.Client.output;
              List.iter
                (fun (code, message) ->
                  Printf.eprintf "gmfnetd: event rejected [%s]: %s\n" code
                    message)
                r.Gmf_daemon.Client.rejected;
              if r.Gmf_daemon.Client.mismatches > 0 then
                Error
                  (Printf.sprintf
                     "%d event(s) where the warm-started fixpoint disagreed \
                      with the cold analysis"
                     r.Gmf_daemon.Client.mismatches)
              else if r.Gmf_daemon.Client.rejected <> [] then
                Error
                  (Printf.sprintf "%d event(s) rejected by the daemon"
                     (List.length r.Gmf_daemon.Client.rejected))
              else Ok ()))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Stream an admission trace through a daemon session and print \
          the transcript and summary, byte-identical to \
          $(b,gmfnet session) on the same trace.")
    Term.(
      const run $ socket_arg $ session_arg $ file_arg $ verify_arg
      $ explain_arg $ cold_arg $ survivable_arg $ throttle_arg)

(* ------------------------------------------------------------------ *)
(* fingerprint                                                        *)
(* ------------------------------------------------------------------ *)

let fingerprint_cmd =
  let run socket session =
    exit_of_result
      (match Gmf_daemon.Client.fingerprint ~socket ~session with
      | Ok (digest, events) ->
          Printf.printf "%s %d\n" digest events;
          Ok ()
      | Error _ as e -> e)
  in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:
         "Print a session's state digest and event count.  The request \
          queues behind any journal-recovery replay, so the digest \
          reflects fully recovered state — the hook crash-recovery \
          checks diff.")
    Term.(const run $ socket_arg $ session_arg)

(* ------------------------------------------------------------------ *)

let main =
  let doc =
    "crash-safe admission-control daemon for generalized multiframe \
     traffic on multihop networks"
  in
  Cmd.group
    (Cmd.info "gmfnetd" ~version:"1.0.0" ~doc)
    [ serve_cmd; client_cmd; fingerprint_cmd ]

let () = exit (Cmd.eval' main)
