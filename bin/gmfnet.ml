(* gmfnet - command-line front end.

   Subcommands:
     list        named scenarios and experiments
     lint        static diagnostics over a scenario, no fixpoint involved
     analyze     holistic schedulability analysis of a named scenario
     simulate    discrete-event simulation of a named scenario
     admission   admission check with per-stage utilization conditions
     experiment  run one experiment (E1..E10) or all of them *)

open Cmdliner
open Gmf_util

(* ------------------------------------------------------------------ *)
(* Named scenarios                                                    *)
(* ------------------------------------------------------------------ *)

let scenarios =
  [
    ("fig1",
     "the paper's Figure 1 network with video conferencing + VoIP + bulk",
     fun rate -> Workload.Scenarios.fig1_videoconf ?rate_bps:rate ());
    ("voip",
     "G.711 calls crossing a single software switch",
     fun rate -> Workload.Scenarios.single_switch_voip ?rate_bps:rate ());
    ("chain",
     "an MPEG flow over a chain of switches with VoIP cross traffic",
     fun rate -> Workload.Scenarios.multihop_chain ?rate_bps:rate ());
    ("enterprise",
     "an access/core tree: VoIP + video + backups converging on a server",
     fun rate -> Workload.Scenarios.enterprise ?rate_bps:rate ());
  ]

(* Named scenarios carry no fault schedule; files may declare one with
   [fault] directives.  Only [simulate] consumes the schedule. *)
let build_scenario_faults ?file name rate =
  match file with
  | Some path -> (
      match Scenario_io.Parse.scenario_faults_of_file path with
      | Ok parsed ->
          Ok
            ( parsed.Scenario_io.Parse.scenario,
              parsed.Scenario_io.Parse.faults )
      | Error e ->
          Error (Format.asprintf "%s: %a" path Scenario_io.Parse.pp_error e))
  | None -> (
      match List.find_opt (fun (n, _, _) -> n = name) scenarios with
      | Some (_, _, f) -> Ok (f rate, Gmf_faults.Fault.empty)
      | None ->
          Error
            (Printf.sprintf "unknown scenario %S (try: %s)" name
               (String.concat ", " (List.map (fun (n, _, _) -> n) scenarios))))

let build_scenario ?file name rate =
  Result.map fst (build_scenario_faults ?file name rate)

(* ------------------------------------------------------------------ *)
(* Common arguments                                                   *)
(* ------------------------------------------------------------------ *)

let scenario_arg =
  let doc = "Named scenario to operate on (see $(b,gmfnet list))." in
  Arg.(value & opt string "fig1" & info [ "s"; "scenario" ] ~docv:"NAME" ~doc)

let file_arg =
  let doc =
    "Load the scenario from a description file instead of a named scenario      (see lib/scenario_io/parse.mli for the grammar)."
  in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"PATH" ~doc)

let rate_arg =
  let doc = "Override every link's bit rate (bits per second)." in
  Arg.(value & opt (some int) None & info [ "rate" ] ~docv:"BPS" ~doc)

let variant_arg =
  let doc =
    "Analysis variant: $(b,repaired) (default), $(b,faithful) \
     (paper-literal equations; see DESIGN.md repairs R1/R2/R7), or \
     $(b,tight) (repaired + tight jitter propagation)."
  in
  let variant =
    Arg.enum
      [
        ("repaired", Analysis.Config.default);
        ("faithful", Analysis.Config.faithful);
        ("tight", Analysis.Config.tight);
      ]
  in
  Arg.(value & opt variant Analysis.Config.default & info [ "variant" ] ~doc)

let jobs_arg =
  let doc =
    "Evaluate independent analysis cases on $(docv) forked worker \
     processes.  Default: sequential; when the flag is absent the \
     $(b,GMFNET_JOBS) environment variable is consulted.  The results \
     are byte-identical to a sequential run."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let exec_of_jobs jobs = Gmf_exec.of_jobs (Gmf_exec.resolve_jobs jobs)

let exit_of_result = function
  | Ok () -> 0
  | Error msg ->
      prerr_endline ("gmfnet: " ^ msg);
      1

(* ------------------------------------------------------------------ *)
(* Observability flags                                                *)
(* ------------------------------------------------------------------ *)

let metrics_arg =
  let doc =
    "Collect runtime metrics.  With no $(docv), print them as tables after \
     the run; with $(docv), write them as JSON-lines instead."
  in
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Record spans and write them to $(docv) in Chrome trace_event format \
     (open with chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

(* Runs [f] with the process-wide registry/tracer switched on as requested,
   then emits the collected telemetry.  Output happens even when [f] fails
   so a diverging analysis still leaves its partial metrics behind; an
   unwritable output path surfaces as an ordinary CLI error. *)
let with_obs ?metrics ?trace_out f =
  let reg = Gmf_obs.Metrics.default and tr = Gmf_obs.Tracer.default in
  if metrics <> None then begin
    Gmf_obs.Metrics.set_enabled reg true;
    Gmf_obs.Metrics.reset reg
  end;
  if trace_out <> None then begin
    Gmf_obs.Tracer.set_enabled tr true;
    Gmf_obs.Tracer.reset tr
  end;
  let emit () =
    (match metrics with
    | None -> ()
    | Some "-" ->
        let tables = Gmf_obs.Export.metrics_tables (Gmf_obs.Metrics.snapshot reg) in
        if tables <> "" then Printf.printf "\n%s\n" tables
    | Some path ->
        Gmf_obs.Export.write_file ~path
          (Gmf_obs.Export.metrics_to_jsonl (Gmf_obs.Metrics.snapshot reg)));
    match trace_out with
    | None -> ()
    | Some path ->
        Gmf_obs.Export.write_file ~path
          (Gmf_obs.Export.chrome_trace (Gmf_obs.Tracer.spans tr))
  in
  match f () with
  | () -> ( try Ok (emit ()) with Sys_error msg -> Error msg)
  | exception e ->
      (try emit () with Sys_error _ -> ());
      raise e

(* ------------------------------------------------------------------ *)
(* list                                                               *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "scenarios:";
    List.iter
      (fun (n, d, _) -> Printf.printf "  %-8s %s\n" n d)
      scenarios;
    print_endline "\nexperiments:";
    List.iter
      (fun e ->
        Printf.printf "  %-4s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.description)
      Experiments.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List named scenarios and experiments.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let file_pos_arg =
    let doc =
      "Scenario description file to lint (equivalent to $(b,--file))."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc = "Emit diagnostics as JSON-lines (one object per line)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let deny_arg =
    let doc =
      "Exit non-zero when any diagnostic at or above $(docv) fires: \
       $(b,error) (default), $(b,warning) or $(b,hint)."
    in
    let level =
      Arg.enum
        [
          ("error", Gmf_diag.Error);
          ("warning", Gmf_diag.Warning);
          ("hint", Gmf_diag.Hint);
        ]
    in
    Arg.(value & opt level Gmf_diag.Error & info [ "deny" ] ~docv:"LEVEL" ~doc)
  in
  let rules_arg =
    let doc = "List every rule code of the catalog and exit." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let run pos_file name file rate config json deny rules =
    if rules then begin
      let table =
        Tablefmt.create
          ~columns:
            [
              ("code", Tablefmt.Left); ("category", Tablefmt.Left);
              ("severity", Tablefmt.Left); ("title", Tablefmt.Left);
            ]
      in
      List.iter
        (fun (r : Gmf_lint.Rules.rule) ->
          Tablefmt.add_row table
            [
              r.Gmf_lint.Rules.code;
              Gmf_lint.Rules.category_to_string r.Gmf_lint.Rules.category;
              Gmf_diag.severity_to_string r.Gmf_lint.Rules.default_severity;
              r.Gmf_lint.Rules.title;
            ])
        Gmf_lint.Rules.catalog;
      Tablefmt.print table;
      0
    end
    else
      let file = match pos_file with Some _ -> pos_file | None -> file in
      match build_scenario ?file name rate with
      | Error msg ->
          prerr_endline ("gmfnet: " ^ msg);
          1
      | Ok scenario ->
          let report = Gmf_lint.Lint.run ~config scenario in
          if json then
            print_string
              (Gmf_lint.Lint_json.to_jsonl
                 report.Gmf_lint.Lint.diagnostics)
          else Format.printf "%a@." Gmf_lint.Lint.pp_report report;
          if Gmf_lint.Lint.fatal ~deny report then 1 else 0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static diagnostics over a scenario: structural problems           (GMF0xx), paper model preconditions (GMF1xx) and utilization           impossibilities (GMF2xx) — without running any fixpoint.")
    Term.(
      const run $ file_pos_arg $ scenario_arg $ file_arg $ rate_arg
      $ variant_arg $ json_arg $ deny_arg $ rules_arg)

(* ------------------------------------------------------------------ *)
(* precheck                                                           *)
(* ------------------------------------------------------------------ *)

let precheck_cmd =
  let file_pos_arg =
    let doc =
      "Scenario description file to precheck (equivalent to $(b,--file))."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc = "Emit the deterministic JSON report (golden-file format)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let max_component_arg =
    let doc =
      "Interference-component size above which GMF019 warns that the \
       per-component fixpoint will be large."
    in
    Arg.(
      value
      & opt int Gmf_precheck.Precheck.default_max_component
      & info [ "max-component" ] ~docv:"N" ~doc)
  in
  let run pos_file name file rate config json max_component jobs =
    let file = match pos_file with Some _ -> pos_file | None -> file in
    match build_scenario ?file name rate with
    | Error msg ->
        prerr_endline ("gmfnet: " ^ msg);
        1
    | Ok scenario ->
        let report =
          Gmf_precheck.Precheck.run ~exec:(exec_of_jobs jobs) ~config scenario
        in
        let diags = Gmf_precheck.Precheck.diagnostics ~max_component report in
        if json then print_string (Gmf_precheck.Precheck.to_json report)
        else begin
          Format.printf "%a@." Gmf_precheck.Precheck.pp report;
          if diags <> [] then Format.printf "%a@." Gmf_diag.pp_list diags
        end;
        if Gmf_precheck.Precheck.infeasible report <> [] then 1 else 0
  in
  Cmd.v
    (Cmd.info "precheck"
       ~doc:
         "Static schedulability pre-analysis: interference-graph \
          decomposition plus certified per-flow verdicts (infeasible / \
          schedulable / needs-fixpoint) without running any fixpoint.  \
          Exits non-zero when a flow is certified infeasible.")
    Term.(
      const run $ file_pos_arg $ scenario_arg $ file_arg $ rate_arg
      $ variant_arg $ json_arg $ max_component_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                            *)
(* ------------------------------------------------------------------ *)

let print_report report =
  Experiments.Exp_common.kv "verdict" (Experiments.Exp_common.verdict_string report);
  Experiments.Exp_common.kv "holistic rounds"
    (string_of_int report.Analysis.Holistic.rounds);
  let table =
    Tablefmt.create
      ~columns:
        [
          ("flow", Tablefmt.Left); ("prio", Tablefmt.Right);
          ("frame", Tablefmt.Right); ("R bound", Tablefmt.Right);
          ("deadline", Tablefmt.Right); ("slack", Tablefmt.Right);
          ("meets", Tablefmt.Left);
        ]
  in
  List.iter
    (fun res ->
      Array.iter
        (fun (fr : Analysis.Result_types.frame_result) ->
          Tablefmt.add_row table
            [
              res.Analysis.Result_types.flow.Traffic.Flow.name;
              string_of_int res.Analysis.Result_types.flow.Traffic.Flow.priority;
              string_of_int fr.Analysis.Result_types.frame;
              Timeunit.to_string fr.Analysis.Result_types.total;
              Timeunit.to_string fr.Analysis.Result_types.deadline;
              Timeunit.to_string (Analysis.Result_types.slack fr);
              (if Analysis.Result_types.meets_deadline fr then "yes" else "NO");
            ])
        res.Analysis.Result_types.frames)
    report.Analysis.Holistic.results;
  Tablefmt.print table

let csv_arg =
  let doc = "Emit machine-readable CSV (frames, or stages with $(b,--csv stages))." in
  Arg.(
    value
    & opt ~vopt:(Some "frames") (some (enum [ ("frames", "frames"); ("stages", "stages") ])) None
    & info [ "csv" ] ~docv:"WHAT" ~doc)

let analyze_cmd =
  let run name file rate config csv jobs metrics trace_out =
    exit_of_result
      (Result.bind (build_scenario ?file name rate) (fun scenario ->
           with_obs ?metrics ?trace_out (fun () ->
               (* With jobs > 1 the fixpoints run per interference
                  component on the worker pool; the merged report is
                  structurally identical to the monolithic one (the
                  sharded property tests enforce it). *)
               let report =
                 if Gmf_exec.resolve_jobs jobs > 1 then
                   let report, _pre, _stats =
                     Analysis.Sharded.analyze ~exec:(exec_of_jobs jobs)
                       ~skip_decided:false ~config scenario
                   in
                   report
                 else Analysis.Holistic.analyze ~config scenario
               in
               match csv with
               | Some "stages" ->
                   print_string (Analysis.Report_io.stage_csv report)
               | Some _ -> print_string (Analysis.Report_io.frame_csv report)
               | None -> print_report report)))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Upper-bound every flow's end-to-end response time.")
    Term.(const run $ scenario_arg $ file_arg $ rate_arg $ variant_arg
          $ csv_arg $ jobs_arg $ metrics_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                           *)
(* ------------------------------------------------------------------ *)

let duration_arg =
  let doc = "Traffic-generation duration in milliseconds." in
  Arg.(value & opt int 1_000 & info [ "d"; "duration" ] ~docv:"MS" ~doc)

let seed_arg =
  let doc = "Deterministic master seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let jitter_mode_arg =
  let doc = "Sub-packet release pattern: $(b,spread), $(b,bunched) or $(b,random)." in
  let mode =
    Arg.enum
      [
        ("spread", Sim.Sim_config.Spread);
        ("bunched", Sim.Sim_config.Bunched);
        ("random", Sim.Sim_config.Random);
      ]
  in
  Arg.(value & opt mode Sim.Sim_config.Spread & info [ "jitter-mode" ] ~doc)

let slack_arg =
  let doc =
    "Mean extra inter-arrival spacing as a fraction of the period \
     (0 = strictly periodic sources)."
  in
  Arg.(value & opt float 0. & info [ "slack" ] ~docv:"FRAC" ~doc)

let capacity_arg =
  let doc =
    "Finite switch-queue capacity in Ethernet frames (default: unbounded); \
     overflows are dropped and counted."
  in
  Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"FRAMES" ~doc)

let phasing_arg =
  let doc = "Start each flow at a random offset within its cycle." in
  Arg.(value & flag & info [ "random-phasing" ] ~doc)

let busy_poll_arg =
  let doc =
    "Adversarial switch-CPU model: idle tasks burn their full quantum \
     (the CIRC worst case of the analysis)."
  in
  Arg.(value & flag & info [ "busy-poll" ] ~doc)

let trace_arg =
  let doc = "Print the full journey of the first N completed packets." in
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N" ~doc)

let fault_policy_arg =
  let doc =
    "What happens to Ethernet frames queued behind a link a $(b,fault) \
     directive took down: $(b,hold) (default; they wait for the link to \
     come back) or $(b,drop) (discarded and counted as fault drops)."
  in
  let policy =
    Arg.enum
      [ ("hold", Gmf_faults.Fault.Hold); ("drop", Gmf_faults.Fault.Drop) ]
  in
  Arg.(
    value
    & opt policy Gmf_faults.Fault.Hold
    & info [ "fault-policy" ] ~docv:"POLICY" ~doc)

let simulate_cmd =
  let run name file rate duration seed jitter_mode slack capacity phasing
      busy_poll trace_limit fault_policy metrics trace_out =
    exit_of_result
      (Result.bind (build_scenario_faults ?file name rate)
         (fun (scenario, faults) ->
           with_obs ?metrics ?trace_out @@ fun () ->
           let faults = { faults with Gmf_faults.Fault.policy = fault_policy } in
           let release =
             if slack <= 0. then Sim.Sim_config.Periodic
             else Sim.Sim_config.Random_slack slack
           in
           let config =
             {
               Sim.Sim_config.duration = Timeunit.ms duration;
               seed;
               release;
               jitter = jitter_mode;
               random_phasing = phasing;
               queue_capacity = capacity;
               busy_poll;
               trace_limit;
             }
           in
           let report = Sim.Netsim.run ~config ~faults scenario in
           if not (Gmf_faults.Fault.is_empty faults) then
             Experiments.Exp_common.kv "faults injected"
               (string_of_int
                  (List.length faults.Gmf_faults.Fault.events));
           Experiments.Exp_common.kv "packets released"
             (string_of_int report.Sim.Netsim.packets_released);
           Experiments.Exp_common.kv "packets completed"
             (string_of_int report.Sim.Netsim.packets_completed);
           Experiments.Exp_common.kv "simulated span"
             (Timeunit.to_string report.Sim.Netsim.sim_end);
           Experiments.Exp_common.kv "fragments dropped"
             (string_of_int report.Sim.Netsim.fragments_dropped);
           List.iter
             (fun ((sw, peer), n) ->
               Experiments.Exp_common.kv
                 (Printf.sprintf "drops at %d->%d" sw peer)
                 (Printf.sprintf "%d frames" n))
             report.Sim.Netsim.dropped_by_port;
           if report.Sim.Netsim.fault_drops > 0 then
             Experiments.Exp_common.kv "fault drops"
               (string_of_int report.Sim.Netsim.fault_drops);
           if report.Sim.Netsim.tainted_completions > 0 then
             Experiments.Exp_common.kv "tainted completions"
               (string_of_int report.Sim.Netsim.tainted_completions);
           List.iter
             (fun (sw, u) ->
               Experiments.Exp_common.kv
                 (Printf.sprintf "switch %d CPU utilization" sw)
                 (Printf.sprintf "%.4f" u))
             report.Sim.Netsim.cpu_utilization;
           List.iter
             (fun ((sw, peer), frames) ->
               if frames > 1 then
                 Experiments.Exp_common.kv
                   (Printf.sprintf "queue high-water out %d->%d" sw peer)
                   (Printf.sprintf "%d frames" frames))
             report.Sim.Netsim.egress_backlog;
           let table =
             Tablefmt.create
               ~columns:
                 [
                   ("flow", Tablefmt.Left); ("frame", Tablefmt.Right);
                   ("samples", Tablefmt.Right); ("max R", Tablefmt.Right);
                   ("mean R", Tablefmt.Right); ("p99 R", Tablefmt.Right);
                 ]
           in
           List.iter
             (fun flow ->
               let id = flow.Traffic.Flow.id in
               for frame = 0 to Traffic.Flow.n flow - 1 do
                 match
                   Sim.Collector.responses report.Sim.Netsim.collector
                     ~flow:id ~frame
                 with
                 | None -> ()
                 | Some stats ->
                     Tablefmt.add_row table
                       [
                         flow.Traffic.Flow.name; string_of_int frame;
                         string_of_int (Stats.count stats);
                         Timeunit.to_string (Stats.max stats);
                         Timeunit.to_string
                           (int_of_float (Stats.mean stats));
                         Timeunit.to_string (Stats.percentile stats 99.);
                       ]
               done)
             (Traffic.Scenario.flows scenario);
           Tablefmt.print table;
           List.iter
             (fun (j : Sim.Collector.journey) ->
               Printf.printf "packet flow=%d frame=%d seq=%d:\n" j.Sim.Collector.j_flow
                 j.Sim.Collector.j_frame j.Sim.Collector.j_seq;
               List.iter
                 (fun (t, what) ->
                   Printf.printf "  %-12s %s\n" (Timeunit.to_string t) what)
                 j.Sim.Collector.j_events)
             (Sim.Collector.journeys report.Sim.Netsim.collector)))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate the scenario on the Figure 5 switch model.")
    Term.(
      const run $ scenario_arg $ file_arg $ rate_arg $ duration_arg $ seed_arg
      $ jitter_mode_arg $ slack_arg $ capacity_arg $ phasing_arg
      $ busy_poll_arg $ trace_arg $ fault_policy_arg $ metrics_arg
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* gen                                                                *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let conv_of parse print =
    Arg.conv ((fun s -> Result.map_error (fun e -> `Msg e) (parse s)), print)
  in
  let topology_arg =
    let doc =
      "Topology family: $(b,mesh:RxC) (2-D switch grid), \
       $(b,mesh:RxCx2) (two disjoint planes, dual-homed hosts), \
       $(b,fat-tree:K) (k-ary fat tree) or $(b,rings:NxS) (N local \
       rings of S switches on a global ring)."
    in
    let family =
      conv_of Gmf_topogen.Gen_spec.family_of_string (fun ppf f ->
          Format.pp_print_string ppf
            (Gmf_topogen.Gen_spec.family_to_string f))
    in
    Arg.(
      value
      & opt family Gmf_topogen.Gen_spec.default.Gmf_topogen.Gen_spec.family
      & info [ "t"; "topology" ] ~docv:"FAMILY" ~doc)
  in
  let hosts_arg =
    let doc = "End hosts attached to each edge switch." in
    Arg.(value & opt int 2 & info [ "hosts-per-switch" ] ~docv:"N" ~doc)
  in
  let flows_arg =
    let doc = "Flows to place (each slot retries up to 20 draws)." in
    Arg.(value & opt int 40 & info [ "n"; "flows" ] ~docv:"N" ~doc)
  in
  let mix_arg =
    let doc =
      "Traffic mix as weighted kinds, e.g. $(b,voip=3,mpeg=1,sensor=2)."
    in
    let mix =
      conv_of Gmf_topogen.Gen_spec.mix_of_string (fun ppf m ->
          Format.pp_print_string ppf (Gmf_topogen.Gen_spec.mix_to_string m))
    in
    Arg.(
      value
      & opt mix Gmf_topogen.Gen_spec.default.Gmf_topogen.Gen_spec.mix
      & info [ "mix" ] ~docv:"KIND=W,.." ~doc)
  in
  let locality_arg =
    let doc =
      "Probability that a flow's destination is drawn from the source's \
       neighborhood (mesh: cells within Manhattan distance 2; fat-tree: \
       same pod; rings: same ring)."
    in
    Arg.(value & opt float 0.8 & info [ "locality" ] ~docv:"P" ~doc)
  in
  let max_util_arg =
    let doc =
      "Utilization ceiling per link and per ingress rotation; candidate \
       flows that would cross it are re-drawn."
    in
    Arg.(value & opt float 0.7 & info [ "max-util" ] ~docv:"U" ~doc)
  in
  let prio_lo_arg =
    let doc = "Lowest 802.1p priority of the band (sensors)." in
    Arg.(value & opt int 1 & info [ "prio-lo" ] ~docv:"P" ~doc)
  in
  let prio_hi_arg =
    let doc = "Highest 802.1p priority of the band (VoIP)." in
    Arg.(value & opt int 6 & info [ "prio-hi" ] ~docv:"P" ~doc)
  in
  let seed_arg =
    let doc =
      "Generator seed.  Equal parameters and seed produce byte-identical \
       output on every platform."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let gen_rate_arg =
    let doc = "Bit rate of every generated link (bits per second)." in
    Arg.(value & opt int 100_000_000 & info [ "rate" ] ~docv:"BPS" ~doc)
  in
  let prop_arg =
    let doc = "Propagation delay of every generated link (nanoseconds)." in
    Arg.(value & opt int 0 & info [ "prop" ] ~docv:"NS" ~doc)
  in
  let out_arg =
    let doc = "Write the scenario to $(docv) instead of standard output." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress the generation summary on standard error." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run family hosts_per_switch flows mix locality max_util prio_lo prio_hi
      seed rate_bps prop out quiet =
    let spec =
      {
        Gmf_topogen.Gen_spec.family;
        hosts_per_switch;
        rate_bps;
        prop;
        flows;
        mix;
        locality;
        max_util;
        prio_lo;
        prio_hi;
        seed;
      }
    in
    match Gmf_topogen.Gen_spec.validate spec with
    | Error msg ->
        prerr_endline ("gmfnet: " ^ msg);
        1
    | Ok () -> (
        let result = Gmf_topogen.Topogen.generate spec in
        if not quiet then
          List.iter
            (fun (k, v) -> Printf.eprintf "%-16s %s\n" k v)
            (Gmf_topogen.Topogen.summary result);
        let scenario = result.Gmf_topogen.Topogen.scenario in
        match out with
        | None ->
            print_string (Gmf_topogen.Topogen.to_string scenario);
            0
        | Some path -> (
            try
              Gmf_topogen.Topogen.to_file path scenario;
              0
            with Sys_error msg ->
              prerr_endline ("gmfnet: " ^ msg);
              1))
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a synthetic scenario: a parametric topology (mesh / \
          fat-tree / ring-of-rings) with a seeded flow population drawn \
          from the workload catalog.  The output passes $(b,gmfnet lint \
          --deny warning) by construction and is deterministic for a \
          fixed seed.")
    Term.(
      const run $ topology_arg $ hosts_arg $ flows_arg $ mix_arg
      $ locality_arg $ max_util_arg $ prio_lo_arg $ prio_hi_arg $ seed_arg
      $ gen_rate_arg $ prop_arg $ out_arg $ quiet_arg)

(* ------------------------------------------------------------------ *)
(* admission                                                          *)
(* ------------------------------------------------------------------ *)

let admission_cmd =
  let run name file rate config jobs =
    exit_of_result
      (Result.map
         (fun scenario ->
           let decision =
             Analysis.Admission.check ~exec:(exec_of_jobs jobs) ~config
               scenario
           in
           Experiments.Exp_common.kv "admitted"
             (if decision.Analysis.Admission.admitted then "yes" else "no");
           Experiments.Exp_common.kv "verdict"
             (Experiments.Exp_common.verdict_string decision.Analysis.Admission.report);
           let ctx = Analysis.Ctx.create ~config scenario in
           let checks = Analysis.Conditions.check_all ctx in
           print_endline "per-stage utilization conditions (eqs 20/34-35):";
           List.iter
             (fun c ->
               Format.printf "  %a@." Analysis.Conditions.pp_check c)
             checks)
         (build_scenario ?file name rate))
  in
  Cmd.v
    (Cmd.info "admission"
       ~doc:"Admission-control decision with utilization conditions.")
    Term.(
      const run $ scenario_arg $ file_arg $ rate_arg $ variant_arg
      $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* validate                                                           *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let duration_arg =
    let doc = "Simulated traffic duration in milliseconds." in
    Arg.(value & opt int 2_000 & info [ "d"; "duration" ] ~docv:"MS" ~doc)
  in
  let run name file rate duration =
    exit_of_result
      (Result.bind (build_scenario ?file name rate) (fun scenario ->
           let row =
             Experiments.E5_validation.validate
               ~duration:(Timeunit.ms duration) ~name:"scenario" scenario
           in
           let kv = Experiments.Exp_common.kv in
           if not row.Experiments.E5_validation.schedulable then begin
             kv "schedulable" "no (nothing to validate)";
             Ok ()
           end
           else begin
             kv "schedulable" "yes";
             kv "worst analytic bound"
               (Timeunit.to_string row.Experiments.E5_validation.worst_bound);
             kv "worst simulated response"
               (Timeunit.to_string row.Experiments.E5_validation.worst_observed);
             kv "tightness (observed/bound)"
               (Printf.sprintf "%.3f" row.Experiments.E5_validation.tightness);
             if row.Experiments.E5_validation.sound then begin
               kv "bounds dominate the simulation" "yes";
               Ok ()
             end
             else Error "SOUNDNESS VIOLATION: the simulator exceeded a bound"
           end))
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Cross-check the analysis against the discrete-event simulator           for a scenario (bounds must dominate all observations).")
    Term.(const run $ scenario_arg $ file_arg $ rate_arg $ duration_arg)

(* ------------------------------------------------------------------ *)
(* plan                                                               *)
(* ------------------------------------------------------------------ *)

let plan_cmd =
  let run name file rate config jobs =
    exit_of_result
      (Result.map
         (fun scenario ->
           let kv = Experiments.Exp_common.kv in
           let exec = exec_of_jobs jobs in
           (* Traffic headroom: scale every flow's payloads. *)
           let headroom =
             Analysis.Sensitivity.max_payload_scale ~exec ~config
               ~build:(fun ~scale ->
                 Traffic.Scenario.map_flows scenario ~f:(fun f ->
                     Traffic.Flow.scale_payloads f scale))
               ()
           in
           kv "traffic headroom (payload scale)"
             (match headroom with
             | Some h -> Printf.sprintf "%.2fx" h
             | None -> "none (already unschedulable)");
           (* Switch-CPU slack: scale every switch model's task costs. *)
           let with_cpu_scale circ_scale =
             let scale_cost c =
               max 0 (int_of_float (circ_scale *. float_of_int c))
             in
             let switches =
               List.map
                 (fun n ->
                   let m = Traffic.Scenario.switch_model scenario n in
                   ( n,
                     Click.Switch_model.make
                       ~croute:(scale_cost m.Click.Switch_model.croute)
                       ~csend:(scale_cost m.Click.Switch_model.csend)
                       ~processors:m.Click.Switch_model.processors
                       ~ninterfaces:m.Click.Switch_model.ninterfaces () ))
                 (Traffic.Scenario.switch_nodes scenario)
             in
             Traffic.Scenario.make ~switches
               ~topo:(Traffic.Scenario.topo scenario)
               ~flows:(Traffic.Scenario.flows scenario)
               ()
           in
           let cpu_slack =
             Analysis.Sensitivity.max_circ ~exec ~config
               ~build:(fun ~circ_scale -> with_cpu_scale circ_scale)
               ()
           in
           kv "switch-CPU slack (CROUTE/CSEND scale)"
             (match cpu_slack with
             | Some s -> Printf.sprintf "%.1fx" s
             | None -> "none");
           (* Worst per-flow slack today. *)
           let report = Analysis.Holistic.analyze ~config scenario in
           kv "verdict" (Experiments.Exp_common.verdict_string report);
           List.iter
             (fun res ->
               let worst = Analysis.Result_types.worst_frame res in
               kv
                 (Printf.sprintf "slack of %s"
                    res.Analysis.Result_types.flow.Traffic.Flow.name)
                 (Timeunit.to_string (Analysis.Result_types.slack worst)))
             report.Analysis.Holistic.results)
         (build_scenario ?file name rate))
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Capacity planning: traffic headroom, switch-CPU slack and           per-flow deadline slack for a scenario.")
    Term.(
      const run $ scenario_arg $ file_arg $ rate_arg $ variant_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* backlog                                                            *)
(* ------------------------------------------------------------------ *)

let backlog_cmd =
  let run name file rate config =
    exit_of_result
      (Result.bind (build_scenario ?file name rate) (fun scenario ->
           let ctx = Analysis.Ctx.create ~config scenario in
           let report = Analysis.Holistic.run ctx in
           match
             ( Analysis.Backlog.egress_bounds ctx report,
               Analysis.Backlog.ingress_bounds ctx report )
           with
           | Ok egress, Ok ingress ->
               let table =
                 Tablefmt.create
                   ~columns:
                     [
                       ("queue", Tablefmt.Left);
                       ("max frames", Tablefmt.Right);
                       ("memory", Tablefmt.Right);
                     ]
               in
               let add kind (b : Analysis.Backlog.queue_bound) =
                 Tablefmt.add_row table
                   [
                     Printf.sprintf "%s %d%s%d" kind b.Analysis.Backlog.node
                       (if kind = "out" then "->" else "<-")
                       b.Analysis.Backlog.peer;
                     string_of_int b.Analysis.Backlog.frames;
                     Printf.sprintf "%d B" (b.Analysis.Backlog.bits / 8);
                   ]
               in
               List.iter (add "out") egress;
               List.iter (add "in") ingress;
               Tablefmt.print table;
               Ok ()
           | Error msg, _ | _, Error msg -> Error msg))
  in
  Cmd.v
    (Cmd.info "backlog"
       ~doc:
         "Buffer requirements per switch queue derived from the           response-time analysis (safe memory sizing).")
    Term.(const run $ scenario_arg $ file_arg $ rate_arg $ variant_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                            *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let scenario_pos_arg =
    let doc =
      "Scenario to explain: a description file when $(docv) names an \
       existing file, a named scenario otherwise (see $(b,gmfnet list))."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)
  in
  let flow_arg =
    let doc = "Restrict the per-hop detail to flow $(docv) (default: the \
               worst flow)."
    in
    Arg.(value & opt (some int) None & info [ "flow" ] ~docv:"ID" ~doc)
  in
  let json_arg =
    let doc =
      "Emit the full attribution as one JSON document instead of tables."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let convergence_arg =
    let doc =
      "Write per-round convergence telemetry of the holistic fixpoint to \
       $(docv) as JSON-lines; with $(b,--trace-out) the rounds also appear \
       as a synthetic convergence lane in the Chrome trace."
    in
    Arg.(
      value & opt (some string) None & info [ "convergence" ] ~docv:"FILE" ~doc)
  in
  let run pos name file rate config flow_id json convergence metrics
      trace_out =
    let name, file =
      match pos with
      | Some s when Sys.file_exists s -> (name, Some s)
      | Some s -> (s, file)
      | None -> (name, file)
    in
    exit_of_result
      (Result.bind (build_scenario ?file name rate) (fun scenario ->
           let known id =
             List.exists
               (fun f -> f.Traffic.Flow.id = id)
               (Traffic.Scenario.flows scenario)
           in
           match flow_id with
           | Some id when not (known id) ->
               Error (Printf.sprintf "no flow with id %d" id)
           | _ ->
               let recorded = ref None in
               let obs =
                 with_obs ?metrics ?trace_out (fun () ->
                     let (attr, _report), conv =
                       Gmf_explain.Convergence.record (fun () ->
                           Gmf_explain.Attribution.analyze ~config scenario)
                     in
                     recorded := Some conv;
                     if trace_out <> None then
                       Gmf_explain.Convergence.emit_spans
                         Gmf_obs.Tracer.default conv;
                     (* Nearest-feasible probes only make sense for a
                        converged rejection, against its worst flow. *)
                     let hints =
                       match
                         ( attr.Gmf_explain.Attribution.verdict,
                           Gmf_explain.Attribution.summarize attr )
                       with
                       | Analysis.Holistic.Deadline_miss _, Some s ->
                           Gmf_explain.Hints.for_flow ~config scenario
                             ~flow_id:s.Gmf_explain.Attribution.s_flow_id ()
                       | _ -> []
                     in
                     if json then
                       print_string
                         (Gmf_explain.Render.to_json ?flow:flow_id ~hints
                            attr)
                     else begin
                       print_endline (Gmf_explain.Render.verdict_line attr);
                       print_endline (Gmf_explain.Render.summary_table attr);
                       let detail =
                         Gmf_explain.Render.detail ?flow:flow_id attr
                       in
                       if detail <> "" then print_endline detail;
                       let rejection =
                         Gmf_explain.Render.rejection ~hints attr
                       in
                       if rejection <> "" then print_string rejection
                     end)
               in
               Result.bind obs (fun () ->
                   match (convergence, !recorded) with
                   | Some path, Some conv -> (
                       try
                         Ok
                           (Gmf_obs.Export.write_file ~path
                              (Gmf_explain.Convergence.to_jsonl conv))
                       with Sys_error msg -> Error msg)
                   | _ -> Ok ())))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Attribute every response-time bound: per-hop transmission /           switch-software / blocking / interference terms summing to the           holistic bound exactly, the binding hop and interferer per flow,           and nearest-feasible hints on a rejection.")
    Term.(
      const run $ scenario_pos_arg $ scenario_arg $ file_arg $ rate_arg
      $ variant_arg $ flow_arg $ json_arg $ convergence_arg $ metrics_arg
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                            *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let run name file rate config metrics trace_out =
    exit_of_result
      (Result.bind (build_scenario ?file name rate) (fun scenario ->
           (* [profile] always collects: both the registry and the tracer
              are on for the run regardless of the output flags. *)
           let reg = Gmf_obs.Metrics.default and tr = Gmf_obs.Tracer.default in
           Gmf_obs.Metrics.set_enabled reg true;
           Gmf_obs.Metrics.reset reg;
           Gmf_obs.Tracer.set_enabled tr true;
           Gmf_obs.Tracer.reset tr;
           let pre = Gmf_precheck.Precheck.run ~config scenario in
           let report = Analysis.Holistic.analyze ~config scenario in
           let kv = Experiments.Exp_common.kv in
           kv "verdict" (Experiments.Exp_common.verdict_string report);
           kv "precheck components"
             (string_of_int
                pre.Gmf_precheck.Precheck.stats.Gmf_precheck.Igraph.components);
           kv "precheck decided"
             (Printf.sprintf "%d/%d" (Gmf_precheck.Precheck.decided pre)
                pre.Gmf_precheck.Precheck.stats.Gmf_precheck.Igraph.flows);
           kv "precheck largest component"
             (string_of_int
                pre.Gmf_precheck.Precheck.stats.Gmf_precheck.Igraph.largest);
           kv "igraph edges"
             (string_of_int
                pre.Gmf_precheck.Precheck.stats.Gmf_precheck.Igraph.edges);
           kv "igraph density"
             (Printf.sprintf "%.4f"
                pre.Gmf_precheck.Precheck.stats.Gmf_precheck.Igraph.density);
           kv "igraph singletons"
             (string_of_int
                pre.Gmf_precheck.Precheck.stats.Gmf_precheck.Igraph.singletons);
           kv "holistic rounds"
             (string_of_int report.Analysis.Holistic.rounds);
           kv "fixpoint calls"
             (string_of_int
                (Gmf_obs.Metrics.counter_value
                   (Gmf_obs.Metrics.counter reg "fixpoint.calls")));
           kv "fixpoint iterations"
             (string_of_int
                (Gmf_obs.Metrics.counter_value
                   (Gmf_obs.Metrics.counter reg "fixpoint.iters.total")));
           (* Run the lint pass under the enabled registry so the
              per-rule lint.hits.* counters appear in the tables. *)
           let lint = Gmf_lint.Lint.run ~config scenario in
           kv "lint diagnostics"
             (Printf.sprintf "%d error(s), %d warning(s), %d hint(s)"
                (List.length (Gmf_lint.Lint.errors lint))
                (List.length (Gmf_lint.Lint.warnings lint))
                (List.length (Gmf_lint.Lint.hints lint)));
           (* Delta probe: re-analyze the scenario minus its last flow
              against the full fixpoint, so the delta.* counters (closure
              size, flows skipped, rounds saved) appear in the tables and
              the probe's own numbers print as kv lines. *)
           (match List.rev (Traffic.Scenario.flows scenario) with
           | [] -> ()
           | last :: _ ->
               let dbase = Analysis.Delta.compute_base ~config scenario in
               let switches =
                 List.map
                   (fun n -> (n, Traffic.Scenario.switch_model scenario n))
                   (Traffic.Scenario.switch_nodes scenario)
               in
               let edited =
                 Traffic.Scenario.make ~switches
                   ~topo:(Traffic.Scenario.topo scenario)
                   ~flows:
                     (List.filter
                        (fun (f : Traffic.Flow.t) ->
                          f.Traffic.Flow.id <> last.Traffic.Flow.id)
                        (Traffic.Scenario.flows scenario))
                   ()
               in
               let d = Analysis.Delta.analyze dbase edited in
               let s = d.Analysis.Delta.d_stats in
               kv "delta probe"
                 (Printf.sprintf "remove %s" last.Traffic.Flow.name);
               kv "delta closure"
                 (Printf.sprintf "%d/%d flow(s)"
                    s.Analysis.Delta.closure_flows
                    s.Analysis.Delta.total_flows);
               kv "delta skipped"
                 (string_of_int s.Analysis.Delta.skipped_flows);
               kv "delta rounds saved"
                 (string_of_int s.Analysis.Delta.rounds_saved));
           let snap = Gmf_obs.Metrics.snapshot reg in
           let tables = Gmf_obs.Export.metrics_tables snap in
           if tables <> "" then Printf.printf "\n%s\n" tables;
           let phases = Gmf_obs.Export.phase_table (Gmf_obs.Tracer.aggregate tr) in
           if phases <> "" then Printf.printf "\n%s\n" phases;
           (* A pool that ran out of respawn budget failed its remaining
              cases with [Crashed] instead of analyzing them — that must
              not hide in the tables. *)
           let exhausted =
             Gmf_obs.Metrics.counter_value
               (Gmf_obs.Metrics.counter reg "exec.pool_exhausted")
           in
           if exhausted > 0 then
             Printf.printf
               "\nWARNING: worker pool exhausted %d time(s) after %d \
                respawn(s); affected cases failed with 'worker pool \
                exhausted' instead of a verdict.\n"
               exhausted
               (Gmf_obs.Metrics.counter_value
                  (Gmf_obs.Metrics.counter reg "exec.respawns"));
           try
             (match metrics with
             | Some path when path <> "-" ->
                 Gmf_obs.Export.write_file ~path
                   (Gmf_obs.Export.metrics_to_jsonl snap)
             | Some _ | None -> ());
             (match trace_out with
             | Some path ->
                 Gmf_obs.Export.write_file ~path
                   (Gmf_obs.Export.chrome_trace (Gmf_obs.Tracer.spans tr))
             | None -> ());
             Ok ()
           with Sys_error msg -> Error msg))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Analyze a scenario with full telemetry: convergence counters,           per-stage iteration histograms and wall-clock per analysis phase.")
    Term.(
      const run $ scenario_arg $ file_arg $ rate_arg $ variant_arg
      $ metrics_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* survive                                                            *)
(* ------------------------------------------------------------------ *)

let survive_cmd =
  let k_arg =
    let doc = "Maximum number of simultaneously failed components." in
    Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc)
  in
  let json_arg =
    let doc = "Emit the deterministic JSON report (golden-file format)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let max_routes_arg =
    let doc = "Alternate routes to consider per affected flow." in
    Arg.(value & opt int 4 & info [ "max-routes" ] ~docv:"N" ~doc)
  in
  let cold_arg =
    let doc =
      "Force the cold per-case engine instead of the incremental delta \
       engine (identical fates and matrix; per-case rounds differ)."
    in
    Arg.(value & flag & info [ "cold" ] ~doc)
  in
  let run name file rate config k json max_routes cold jobs metrics trace_out
      =
    exit_of_result
      (Result.bind (build_scenario ?file name rate) (fun scenario ->
           with_obs ?metrics ?trace_out (fun () ->
               let report =
                 Gmf_faults.Survive.run ~exec:(exec_of_jobs jobs) ~config ~k
                   ~max_routes ~delta:(not cold) scenario
               in
               if json then
                 print_string (Gmf_faults.Survive.to_json scenario report)
               else
                 Format.printf "%a"
                   (Gmf_faults.Survive.pp_report scenario)
                   report)))
  in
  Cmd.v
    (Cmd.info "survive"
       ~doc:
         "Enumerate every failure of at most K links or switches, reroute           the affected flows around each failure and re-run the holistic           analysis, reporting which flows survive, survive only via a           reroute, or must be shed.")
    Term.(
      const run $ scenario_arg $ file_arg $ rate_arg $ variant_arg $ k_arg
      $ json_arg $ max_routes_arg $ cold_arg $ jobs_arg $ metrics_arg
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* assign                                                             *)
(* ------------------------------------------------------------------ *)

let assign_cmd =
  let policy_arg =
    let doc =
      "Priority policy: $(b,dm) (deadline-monotonic), $(b,rm) \
       (rate-monotonic), $(b,light) (lightest-first), $(b,uniform) \
       (every flow in class 0), or $(b,best) (exhaustive search for the \
       schedulable assignment minimizing the largest bound — flow sets \
       of about 6 flows at most)."
    in
    Arg.(
      value
      & pos 0
          (enum
             [
               ("dm", `Dm); ("rm", `Rm); ("light", `Light);
               ("uniform", `Uniform); ("best", `Best);
             ])
          `Dm
      & info [] ~docv:"POLICY" ~doc)
  in
  let levels_arg =
    let doc = "Number of 802.1p classes the switches support (1..8)." in
    Arg.(value & opt int 8 & info [ "levels" ] ~docv:"N" ~doc)
  in
  let run name file rate config policy levels jobs metrics trace_out =
    exit_of_result
      (Result.bind (build_scenario ?file name rate) (fun scenario ->
           with_obs ?metrics ?trace_out @@ fun () ->
           let kv = Experiments.Exp_common.kv in
           let topo = Traffic.Scenario.topo scenario in
           let switches =
             List.map
               (fun n -> (n, Traffic.Scenario.switch_model scenario n))
               (Traffic.Scenario.switch_nodes scenario)
           in
           let flows = Traffic.Scenario.flows scenario in
           let assigned =
             match policy with
             | `Dm ->
                 Some
                   (Analysis.Priority_assign.assign ~levels
                      Analysis.Priority_assign.Deadline_monotonic flows)
             | `Rm ->
                 Some
                   (Analysis.Priority_assign.assign ~levels
                      Analysis.Priority_assign.Rate_monotonic flows)
             | `Light ->
                 Some
                   (Analysis.Priority_assign.assign ~levels
                      Analysis.Priority_assign.Lightest_first flows)
             | `Uniform ->
                 Some
                   (Analysis.Priority_assign.assign ~levels
                      (Analysis.Priority_assign.Uniform 0) flows)
             | `Best ->
                 Option.map fst
                   (Analysis.Priority_assign.best_exhaustive
                      ~exec:(exec_of_jobs jobs) ~config ~levels ~topo
                      ~switches flows)
           in
           match assigned with
           | None -> kv "result" "no schedulable assignment"
           | Some assigned ->
               let table =
                 Tablefmt.create
                   ~columns:
                     [
                       ("flow", Tablefmt.Left); ("old prio", Tablefmt.Right);
                       ("new prio", Tablefmt.Right);
                     ]
               in
               List.iter2
                 (fun (old : Traffic.Flow.t) (f : Traffic.Flow.t) ->
                   Tablefmt.add_row table
                     [
                       f.Traffic.Flow.name;
                       string_of_int old.Traffic.Flow.priority;
                       string_of_int f.Traffic.Flow.priority;
                     ])
                 flows assigned;
               Tablefmt.print table;
               let report =
                 Analysis.Holistic.analyze ~config
                   (Traffic.Scenario.make ~switches ~topo ~flows:assigned ())
               in
               kv "verdict" (Experiments.Exp_common.verdict_string report)))
  in
  Cmd.v
    (Cmd.info "assign"
       ~doc:
         "Rewrite every flow's 802.1p class with a priority-assignment           policy, or search exhaustively for the best schedulable           assignment, and report the resulting verdict.")
    Term.(
      const run $ scenario_arg $ file_arg $ rate_arg $ variant_arg
      $ policy_arg $ levels_arg $ jobs_arg $ metrics_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* session                                                            *)
(* ------------------------------------------------------------------ *)

let session_cmd =
  let file_pos_arg =
    let doc = "Admission trace to replay (see docs/ADMCTL.md)." in
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE.admtrace" ~doc)
  in
  let json_arg =
    let doc = "Emit one JSON object per event instead of transcript lines." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let cold_arg =
    let doc =
      "Disable warm starts: every event re-runs the holistic fixpoint from \
       scratch (the baseline the churn benchmark measures against)."
    in
    Arg.(value & flag & info [ "cold" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Shadow mode: after every fixpoint event also run the cold batch \
       analysis and compare verdicts and bounds.  Exit non-zero on any \
       mismatch."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let survivable_arg =
    let doc =
      "Survivable admission: additionally reject an admit or update whose \
       candidate flow would have to be shed under some failure of at most \
       $(docv) links or switches ($(b,GMF017))."
    in
    Arg.(
      value & opt (some int) None & info [ "survivable" ] ~docv:"K" ~doc)
  in
  let explain_arg =
    let doc =
      "Attribute every fixpoint event: append the worst frame's binding \
       hop and interferer to each transcript line (or JSON object)."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run file config json cold verify explain survivable jobs metrics
      trace_out =
    exit_of_result
      (match Scenario_io.Admtrace.of_file file with
      | Error e ->
          Error (Format.asprintf "%s: %a" file Scenario_io.Parse.pp_error e)
      | Ok trace ->
          let mismatched = ref 0 in
          let obs =
            with_obs ?metrics ?trace_out (fun () ->
                let result =
                  Gmf_admctl.Replay.run ~config ~warm:(not cold)
                    ~shadow:verify ~explain ?survivable
                    ~exec:(exec_of_jobs jobs)
                    ~on_outcome:(fun o ->
                      if json then
                        print_endline (Gmf_admctl.Replay.outcome_jsonl o)
                      else print_endline (Gmf_admctl.Replay.outcome_line o))
                    trace
                in
                mismatched :=
                  Gmf_admctl.Replay.mismatches result.Gmf_admctl.Replay.outcomes;
                if not json then
                  Format.printf "@.summary:@.%a"
                    Gmf_admctl.Replay.pp_summary
                    (Gmf_admctl.Session.summary
                       result.Gmf_admctl.Replay.session))
          in
          match obs with
          | Error _ as e -> e
          | Ok () ->
              if !mismatched > 0 then
                Error
                  (Printf.sprintf
                     "%d event(s) where the warm-started fixpoint disagreed \
                      with the cold analysis"
                     !mismatched)
              else Ok ())
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:
         "Replay an admission trace ($(b,.admtrace)) through a long-lived           admission-control session: admits, removals and updates re-run           the holistic fixpoint warm-started from the previous converged           jitter state.")
    Term.(
      const run $ file_pos_arg $ variant_arg $ json_arg $ cold_arg
      $ verify_arg $ explain_arg $ survivable_arg $ jobs_arg $ metrics_arg
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* experiment                                                         *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (E1..E10) or $(b,all)." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let run id =
    if String.lowercase_ascii id = "all" then begin
      Experiments.Registry.run_all ();
      0
    end
    else
      match Experiments.Registry.find id with
      | Some e ->
          e.Experiments.Registry.run ();
          0
      | None ->
          prerr_endline ("gmfnet: unknown experiment " ^ id);
          1
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a paper experiment (see EXPERIMENTS.md).")
    Term.(const run $ id_arg)

(* ------------------------------------------------------------------ *)

let main =
  let doc =
    "schedulability analysis of generalized multiframe traffic on multihop \
     networks of software-implemented Ethernet switches"
  in
  Cmd.group
    (Cmd.info "gmfnet" ~version:"1.0.0" ~doc)
    [
      list_cmd; lint_cmd; precheck_cmd; analyze_cmd; simulate_cmd; gen_cmd;
      admission_cmd; explain_cmd; backlog_cmd; plan_cmd; validate_cmd; profile_cmd;
      session_cmd; survive_cmd; assign_cmd; experiment_cmd;
    ]

let () = exit (Cmd.eval' main)
