(* Tests of the analysis plumbing: fixed points, stages, jitter state. *)
open Gmf_util
open Analysis

let test_fixpoint_converges () =
  (* f(t) = 100 for all t: converges in one step. *)
  match Fixpoint.iterate ~f:(fun _ -> 100) ~seed:0 ~max_iters:10 ~horizon:1_000 with
  | Fixpoint.Converged { value; iters } ->
      Alcotest.(check int) "value" 100 value;
      (* Two evaluations: seed -> 100, then 100 -> 100 confirms. *)
      Alcotest.(check int) "iters" 2 iters
  | Fixpoint.Diverged m -> Alcotest.fail m

let test_fixpoint_identity_seed () =
  (* The seed itself can be the fixed point. *)
  match Fixpoint.iterate ~f:(fun t -> t) ~seed:7 ~max_iters:10 ~horizon:100 with
  | Fixpoint.Converged { value; iters } ->
      Alcotest.(check int) "seed is fixpoint" 7 value;
      Alcotest.(check int) "one evaluation" 1 iters
  | Fixpoint.Diverged m -> Alcotest.fail m

let test_fixpoint_horizon () =
  match
    Fixpoint.iterate ~f:(fun t -> t + 10) ~seed:0 ~max_iters:1_000 ~horizon:50
  with
  | Fixpoint.Converged _ -> Alcotest.fail "should diverge"
  | Fixpoint.Diverged msg ->
      Alcotest.(check bool) "mentions horizon" true
        (String.length msg > 0
        && String.sub msg 0 8 = "exceeded")

let test_fixpoint_iteration_cap () =
  (* Oscillation-free but slow growth hits the iteration cap. *)
  match
    Fixpoint.iterate ~f:(fun t -> t + 1) ~seed:0 ~max_iters:5
      ~horizon:1_000_000
  with
  | Fixpoint.Converged _ -> Alcotest.fail "should hit cap"
  | Fixpoint.Diverged msg ->
      Alcotest.(check bool) "mentions iterations" true
        (String.length msg > 0 && msg.[0] = 'n')

let test_fixpoint_validation () =
  Alcotest.check_raises "bad cap"
    (Invalid_argument "Fixpoint.iterate: non-positive cap") (fun () ->
      ignore (Fixpoint.iterate ~f:Fun.id ~seed:0 ~max_iters:0 ~horizon:1));
  Alcotest.check_raises "bad seed"
    (Invalid_argument "Fixpoint.iterate: negative seed") (fun () ->
      ignore (Fixpoint.iterate ~f:Fun.id ~seed:(-1) ~max_iters:1 ~horizon:1))

let test_stage_list () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let flow = Traffic.Scenario.flow scenario Workload.Scenarios.video_flow_id in
  let stages = Stage.stages_of_route flow.Traffic.Flow.route in
  Alcotest.(check int) "5 stages on 0->4->6->3" 5 (List.length stages);
  match stages with
  | [ Stage.First_link (0, 4); Stage.Ingress 4; Stage.Egress (4, 6);
      Stage.Ingress 6; Stage.Egress (6, 3) ] ->
      ()
  | _ -> Alcotest.fail "unexpected stage sequence"

let test_stage_direct_route () =
  let topo = Network.Topology.create () in
  let a = Network.Topology.add_node topo ~name:"a" ~kind:Network.Node.Endhost in
  let b = Network.Topology.add_node topo ~name:"b" ~kind:Network.Node.Endhost in
  Network.Topology.add_duplex_link topo ~a ~b ~rate_bps:10_000_000 ~prop:0;
  let route = Network.Route.make topo [ a; b ] in
  match Stage.stages_of_route route with
  | [ Stage.First_link (x, y) ] ->
      Alcotest.(check (pair int int)) "only first link" (a, b) (x, y)
  | _ -> Alcotest.fail "direct route must have exactly the first-link stage"

let test_jitter_state () =
  let js = Jitter_state.create () in
  let stage = Stage.Ingress 4 in
  Alcotest.(check int) "unset reads 0" 0
    (Jitter_state.get js ~flow:0 ~stage ~frame:0);
  Jitter_state.set js ~flow:0 ~stage ~frame:0 500;
  Jitter_state.set js ~flow:0 ~stage ~frame:2 900;
  Alcotest.(check int) "get" 500 (Jitter_state.get js ~flow:0 ~stage ~frame:0);
  Alcotest.(check int) "extra = max over frames" 900
    (Jitter_state.extra js ~flow:0 ~n_frames:3 ~stage);
  Alcotest.(check int) "other flow unaffected" 0
    (Jitter_state.extra js ~flow:1 ~n_frames:3 ~stage);
  Alcotest.(check int) "max_value" 900 (Jitter_state.max_value js);
  (* copy/equal *)
  let snapshot = Jitter_state.copy js in
  Alcotest.(check bool) "copy equal" true (Jitter_state.equal js snapshot);
  Jitter_state.set js ~flow:0 ~stage ~frame:1 100;
  Alcotest.(check bool) "mutation detected" false
    (Jitter_state.equal js snapshot);
  (* zero set = unset *)
  Jitter_state.set js ~flow:0 ~stage ~frame:1 0;
  Alcotest.(check bool) "explicit zero equals unset" true
    (Jitter_state.equal js snapshot);
  Alcotest.check_raises "negative jitter"
    (Invalid_argument "Jitter_state.set: negative jitter") (fun () ->
      Jitter_state.set js ~flow:0 ~stage ~frame:0 (-1))

let test_ctx_initial_jitters () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario Workload.Scenarios.video_flow_id in
  (* The video flow's source jitter (1 ms) is installed at its first link. *)
  Alcotest.(check int) "source jitter installed" (Timeunit.ms 1)
    (Ctx.get_jitter ctx flow ~frame:0 ~stage:(Stage.First_link (0, 4)));
  Alcotest.(check int) "extra at first link" (Timeunit.ms 1)
    (Ctx.extra ctx flow ~stage:(Stage.First_link (0, 4)));
  Alcotest.(check int) "zero downstream" 0
    (Ctx.extra ctx flow ~stage:(Stage.Ingress 4));
  (* reset restores after mutation *)
  Ctx.set_jitter ctx flow ~frame:0 ~stage:(Stage.Ingress 4) 777;
  Ctx.reset_jitters ctx;
  Alcotest.(check int) "reset clears" 0
    (Ctx.extra ctx flow ~stage:(Stage.Ingress 4))

let test_ctx_mx_nx () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario Workload.Scenarios.video_flow_id in
  let p = Ctx.params ctx flow ~src:0 ~dst:4 in
  let csum = Traffic.Link_params.csum p in
  let c_max = Array.fold_left max 0 p.Traffic.Link_params.c in
  (* Repaired (uncapped, request-bound): a closed one-cycle window can hold
     n+1 releases, so MX(TSUM) = CSUM + C_max and MX(0) = C_max. *)
  Alcotest.(check int) "MX(TSUM) = CSUM + C_max (repaired)" (csum + c_max)
    (Ctx.mx ctx flow ~src:0 ~dst:4 ~dt:(Timeunit.ms 270));
  Alcotest.(check int) "MX(0) = C_max (repaired)" c_max
    (Ctx.mx ctx flow ~src:0 ~dst:4 ~dt:0);
  (* NX is uncapped in both variants (eqs 12-13). *)
  Alcotest.(check int) "NX(TSUM) = NSUM + biggest frame" (94 + 30)
    (Ctx.nx ctx flow ~src:0 ~dst:4 ~dt:(Timeunit.ms 270));
  Alcotest.(check int) "NX(0) = biggest single frame" 30
    (Ctx.nx ctx flow ~src:0 ~dst:4 ~dt:0);
  (* Faithful (paper-literal MXS clamp, eq 10): MX(TSUM) = CSUM, MX(0) = 0. *)
  let ctx_f = Ctx.create ~config:Config.faithful scenario in
  Alcotest.(check int) "MX(TSUM) = CSUM (faithful)" csum
    (Ctx.mx ctx_f flow ~src:0 ~dst:4 ~dt:(Timeunit.ms 270));
  Alcotest.(check int) "MX(0) = 0 (faithful)" 0
    (Ctx.mx ctx_f flow ~src:0 ~dst:4 ~dt:0)

let test_config () =
  Alcotest.(check string) "variant names" "faithful"
    (Config.variant_to_string Config.Faithful);
  Alcotest.(check string) "variant names" "repaired"
    (Config.variant_to_string Config.Repaired);
  Alcotest.(check bool) "default is repaired" true
    (Config.default.Config.variant = Config.Repaired);
  Alcotest.(check bool) "faithful preset" true
    (Config.faithful.Config.variant = Config.Faithful)

let tests =
  [
    Alcotest.test_case "fixpoint converges" `Quick test_fixpoint_converges;
    Alcotest.test_case "fixpoint seed" `Quick test_fixpoint_identity_seed;
    Alcotest.test_case "fixpoint horizon" `Quick test_fixpoint_horizon;
    Alcotest.test_case "fixpoint cap" `Quick test_fixpoint_iteration_cap;
    Alcotest.test_case "fixpoint validation" `Quick test_fixpoint_validation;
    Alcotest.test_case "stages of route" `Quick test_stage_list;
    Alcotest.test_case "stages of direct route" `Quick test_stage_direct_route;
    Alcotest.test_case "jitter state" `Quick test_jitter_state;
    Alcotest.test_case "ctx initial jitters" `Quick test_ctx_initial_jitters;
    Alcotest.test_case "ctx MX/NX" `Quick test_ctx_mx_nx;
    Alcotest.test_case "config" `Quick test_config;
  ]
