(* Analysis.Ctx snapshot/restore and Jitter_state.filter_flows — the
   state plumbing a warm-started admission session leans on.  A snapshot
   must be an isolated deep copy, restore must re-install source jitters
   on top, and filter_flows must behave at both edges (keep nothing /
   keep everything). *)

module Ctx = Analysis.Ctx
module Jitter_state = Analysis.Jitter_state
module Stage = Analysis.Stage

let scenario () = Workload.Scenarios.fig1_videoconf ()

let stage_of (flow : Traffic.Flow.t) =
  List.hd (Stage.stages_of_route flow.Traffic.Flow.route)

(* ------------------------------------------------------------------ *)
(* Ctx.snapshot / Ctx.restore                                         *)
(* ------------------------------------------------------------------ *)

let test_snapshot_is_isolated () =
  let ctx = Ctx.create (scenario ()) in
  let flow = List.hd (Traffic.Scenario.flows (Ctx.scenario ctx)) in
  let stage = Stage.Ingress 4 in
  Ctx.set_jitter ctx flow ~frame:0 ~stage 700;
  let snap = Ctx.snapshot ctx in
  Alcotest.(check int) "snapshot sees the value" 700
    (Jitter_state.get snap ~flow:flow.Traffic.Flow.id ~stage ~frame:0);
  (* Later context mutations must not leak into the snapshot... *)
  Ctx.set_jitter ctx flow ~frame:0 ~stage 1_300;
  Alcotest.(check int) "snapshot unchanged by ctx writes" 700
    (Jitter_state.get snap ~flow:flow.Traffic.Flow.id ~stage ~frame:0);
  (* ...and mutating the snapshot must not leak back. *)
  Jitter_state.set snap ~flow:flow.Traffic.Flow.id ~stage ~frame:0 9_999;
  Alcotest.(check int) "ctx unchanged by snapshot writes" 1_300
    (Ctx.get_jitter ctx flow ~frame:0 ~stage)

let test_snapshot_restore_round_trip () =
  let ctx = Ctx.create (scenario ()) in
  let flows = Traffic.Scenario.flows (Ctx.scenario ctx) in
  let fa = List.nth flows 0 and fb = List.nth flows 1 in
  Ctx.set_jitter ctx fa ~frame:0 ~stage:(Stage.Ingress 4) 111;
  Ctx.set_jitter ctx fb ~frame:1 ~stage:(Stage.Ingress 4) 222;
  let snap = Ctx.snapshot ctx in
  (* Scribble over everything, then restore. *)
  Ctx.set_jitter ctx fa ~frame:0 ~stage:(Stage.Ingress 4) 5_000;
  Ctx.set_jitter ctx fb ~frame:1 ~stage:(Stage.Ingress 4) 6_000;
  Ctx.set_jitter ctx fa ~frame:0 ~stage:(Stage.Ingress 6) 7_000;
  Ctx.restore ctx snap;
  Alcotest.(check int) "fa restored" 111
    (Ctx.get_jitter ctx fa ~frame:0 ~stage:(Stage.Ingress 4));
  Alcotest.(check int) "fb restored" 222
    (Ctx.get_jitter ctx fb ~frame:1 ~stage:(Stage.Ingress 4));
  Alcotest.(check int) "scribble gone" 0
    (Ctx.get_jitter ctx fa ~frame:0 ~stage:(Stage.Ingress 6));
  (* The restore argument is copied, not aliased. *)
  Ctx.set_jitter ctx fa ~frame:0 ~stage:(Stage.Ingress 4) 8_000;
  Alcotest.(check int) "restore argument not aliased" 111
    (Jitter_state.get snap ~flow:fa.Traffic.Flow.id
       ~stage:(Stage.Ingress 4) ~frame:0)

let test_restore_reinstalls_source_jitters () =
  (* fig1's video flow carries a 1 ms source jitter on its first frame;
     restoring from an empty state must still re-install it at the
     first-link stage, exactly as Ctx.create does. *)
  let ctx = Ctx.create (scenario ()) in
  let flows = Traffic.Scenario.flows (Ctx.scenario ctx) in
  let expectations =
    List.concat_map
      (fun (f : Traffic.Flow.t) ->
        let stage = stage_of f in
        List.mapi
          (fun k (fs : Gmf.Frame_spec.t) ->
            (f, k, stage, fs.Gmf.Frame_spec.jitter))
          (Array.to_list (Gmf.Spec.frames f.Traffic.Flow.spec)))
      flows
  in
  Alcotest.(check bool) "fig1 has a jittered frame" true
    (List.exists (fun (_, _, _, j) -> j > 0) expectations);
  Ctx.restore ctx (Jitter_state.create ());
  List.iter
    (fun (f, k, stage, jitter) ->
      Alcotest.(check int)
        (Printf.sprintf "%s frame %d source jitter" f.Traffic.Flow.name k)
        jitter
        (Ctx.get_jitter ctx f ~frame:k ~stage))
    expectations

let test_restore_completes_unseen_flows () =
  (* A state captured on a smaller flow set: the session admits a new
     flow and warm-starts from the old fixpoint.  The unseen flow must
     enter at its source jitters, the old entries must survive. *)
  let ctx = Ctx.create (scenario ()) in
  let flows = Traffic.Scenario.flows (Ctx.scenario ctx) in
  let newcomer = List.hd flows in
  let veteran = List.nth flows 1 in
  Ctx.set_jitter ctx veteran ~frame:0 ~stage:(Stage.Ingress 4) 333;
  let partial =
    Jitter_state.filter_flows (Ctx.snapshot ctx)
      ~keep:(fun id -> id <> newcomer.Traffic.Flow.id)
  in
  Ctx.restore ctx partial;
  Alcotest.(check int) "veteran entry carried over" 333
    (Ctx.get_jitter ctx veteran ~frame:0 ~stage:(Stage.Ingress 4));
  let first_spec = (Gmf.Spec.frames newcomer.Traffic.Flow.spec).(0) in
  Alcotest.(check int) "newcomer starts from its source jitter"
    first_spec.Gmf.Frame_spec.jitter
    (Ctx.get_jitter ctx newcomer ~frame:0 ~stage:(stage_of newcomer))

(* ------------------------------------------------------------------ *)
(* Jitter_state.filter_flows edges                                    *)
(* ------------------------------------------------------------------ *)

let populated () =
  let js = Jitter_state.create () in
  Jitter_state.set js ~flow:0 ~stage:(Stage.Ingress 4) ~frame:0 10;
  Jitter_state.set js ~flow:0 ~stage:(Stage.Egress (4, 6)) ~frame:2 20;
  Jitter_state.set js ~flow:1 ~stage:(Stage.Ingress 4) ~frame:0 30;
  Jitter_state.set js ~flow:2 ~stage:(Stage.Ingress 5) ~frame:1 40;
  js

let test_filter_flows_edges () =
  let js = populated () in
  let none = Jitter_state.filter_flows js ~keep:(fun _ -> false) in
  Alcotest.(check bool) "keep nothing = empty state" true
    (Jitter_state.equal none (Jitter_state.create ()));
  Alcotest.(check int) "empty max_value" 0 (Jitter_state.max_value none);
  let all = Jitter_state.filter_flows js ~keep:(fun _ -> true) in
  Alcotest.(check bool) "keep everything = same state" true
    (Jitter_state.equal all js);
  (* The full copy is fresh, not an alias. *)
  Jitter_state.set all ~flow:0 ~stage:(Stage.Ingress 4) ~frame:0 99;
  Alcotest.(check int) "filter returns a fresh state" 10
    (Jitter_state.get js ~flow:0 ~stage:(Stage.Ingress 4) ~frame:0)

let test_filter_flows_partial () =
  let js = populated () in
  let kept = Jitter_state.filter_flows js ~keep:(fun id -> id <> 0) in
  Alcotest.(check int) "dropped flow reads as unset" 0
    (Jitter_state.get kept ~flow:0 ~stage:(Stage.Ingress 4) ~frame:0);
  Alcotest.(check int) "dropped flow extra is 0" 0
    (Jitter_state.extra kept ~flow:0 ~n_frames:3 ~stage:(Stage.Egress (4, 6)));
  Alcotest.(check int) "kept flow survives" 30
    (Jitter_state.get kept ~flow:1 ~stage:(Stage.Ingress 4) ~frame:0);
  Alcotest.(check int) "other kept flow survives" 40
    (Jitter_state.get kept ~flow:2 ~stage:(Stage.Ingress 5) ~frame:1);
  Alcotest.(check int) "max over the remainder" 40
    (Jitter_state.max_value kept);
  (* Filtering is idempotent on the survivors. *)
  let again = Jitter_state.filter_flows kept ~keep:(fun id -> id <> 0) in
  Alcotest.(check bool) "idempotent" true (Jitter_state.equal kept again)

let tests =
  [
    Alcotest.test_case "snapshot is isolated" `Quick test_snapshot_is_isolated;
    Alcotest.test_case "snapshot/restore round trip" `Quick
      test_snapshot_restore_round_trip;
    Alcotest.test_case "restore re-installs source jitters" `Quick
      test_restore_reinstalls_source_jitters;
    Alcotest.test_case "restore completes unseen flows" `Quick
      test_restore_completes_unseen_flows;
    Alcotest.test_case "filter_flows: keep none / keep all" `Quick
      test_filter_flows_edges;
    Alcotest.test_case "filter_flows: partial" `Quick
      test_filter_flows_partial;
  ]
