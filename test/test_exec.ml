(* Gmf_exec: backend equivalence, memo accounting, worker crashes and
   per-case timeouts.

   The pool tests fork real worker processes; every [f] below allocates
   (so SIGALRM timeouts are delivered) and the case lists stay small
   enough that a full run is fast even at one hardware thread. *)

let outcome_str = function
  | Ok n -> Printf.sprintf "ok:%d" n
  | Error e -> "err:" ^ Gmf_exec.error_to_string e

let check_outcomes = Alcotest.(check (list string))

let strs os = List.map outcome_str os

(* A deterministic case function with both success and failure paths. *)
let eval x =
  ignore (Array.make 16 x);
  if x < 0 then failwith (Printf.sprintf "negative %d" x) else (x * 7) + 1

(* --- seq == pool determinism ---------------------------------------- *)

let prop_map_seq_eq_pool =
  QCheck.Test.make ~name:"map_cases: pool results equal seq" ~count:30
    QCheck.(pair (small_list (int_range (-3) 50)) (int_range 2 4))
    (fun (cases, jobs) ->
      let s = Gmf_exec.map_cases ~exec:Gmf_exec.seq ~f:eval cases in
      let p = Gmf_exec.map_cases ~exec:(Gmf_exec.pool jobs) ~f:eval cases in
      strs s = strs p)

let prop_search_seq_eq_pool =
  QCheck.Test.make ~name:"search_first: pool result equals seq" ~count:30
    QCheck.(pair (small_list (int_range (-3) 50)) (int_range 2 4))
    (fun (cases, jobs) ->
      let accept v = v mod 3 = 0 in
      let run exec =
        let r = Gmf_exec.search_first ~exec ~f:eval ~accept cases in
        ( r.Gmf_exec.found,
          Option.map outcome_str r.Gmf_exec.last,
          r.Gmf_exec.evaluated )
      in
      run Gmf_exec.seq = run (Gmf_exec.pool jobs))

(* --- combinator semantics (seq) ------------------------------------- *)

let test_map_order () =
  let r = Gmf_exec.map_cases ~f:eval [ 3; -1; 0 ] in
  check_outcomes "ordered outcomes"
    [ "ok:22"; "err:exception: Failure(\"negative -1\")"; "ok:1" ]
    (strs r)

let test_search_semantics () =
  let r =
    Gmf_exec.search_first ~f:eval
      ~accept:(fun v -> v > 20)
      [ 1; 2; 3; 4; 5 ]
  in
  (match r.Gmf_exec.found with
  | Some (2, 22) -> ()
  | _ -> Alcotest.fail "expected first accepted case at index 2");
  Alcotest.(check int) "evaluated up to the hit" 3 r.Gmf_exec.evaluated;
  let none =
    Gmf_exec.search_first ~f:eval ~accept:(fun _ -> false) [ 1; 2 ]
  in
  Alcotest.(check bool) "no hit" true (none.Gmf_exec.found = None);
  Alcotest.(check int) "all evaluated" 2 none.Gmf_exec.evaluated;
  let empty = Gmf_exec.search_first ~f:eval ~accept:(fun _ -> true) [] in
  Alcotest.(check bool) "empty list" true
    (empty.Gmf_exec.found = None && empty.Gmf_exec.last = None)

(* --- memo ------------------------------------------------------------ *)

let test_memo_hits () =
  let memo = Gmf_exec.Memo.create () in
  let evals = ref 0 in
  let f x =
    incr evals;
    x * 2
  in
  let key = string_of_int in
  let r1 = Gmf_exec.map_cases ~memo ~key ~f [ 1; 2; 1; 3; 2 ] in
  check_outcomes "memoized run" [ "ok:2"; "ok:4"; "ok:2"; "ok:6"; "ok:4" ]
    (strs r1);
  Alcotest.(check int) "distinct cases evaluated once" 3 !evals;
  Alcotest.(check int) "hits within one run" 2 (Gmf_exec.Memo.hits memo);
  let r2 = Gmf_exec.map_cases ~memo ~key ~f [ 3; 1 ] in
  check_outcomes "second run all hits" [ "ok:6"; "ok:2" ] (strs r2);
  Alcotest.(check int) "no new evaluations" 3 !evals;
  Alcotest.(check int) "hits accumulate" 4 (Gmf_exec.Memo.hits memo);
  Alcotest.(check int) "table size" 3 (Gmf_exec.Memo.size memo)

let test_memo_counter () =
  let reg = Gmf_obs.Metrics.default in
  let was = Gmf_obs.Metrics.enabled reg in
  Gmf_obs.Metrics.set_enabled reg true;
  let hits = Gmf_obs.Metrics.counter reg "exec.memo_hits" in
  let cases = Gmf_obs.Metrics.counter reg "exec.cases" in
  let h0 = Gmf_obs.Metrics.counter_value hits in
  let c0 = Gmf_obs.Metrics.counter_value cases in
  let memo = Gmf_exec.Memo.create () in
  ignore
    (Gmf_exec.map_cases ~memo ~key:string_of_int
       ~f:(fun x -> x)
       [ 5; 5; 6 ]);
  Gmf_obs.Metrics.set_enabled reg was;
  Alcotest.(check int) "exec.memo_hits"
    1
    (Gmf_obs.Metrics.counter_value hits - h0);
  Alcotest.(check int) "exec.cases" 2 (Gmf_obs.Metrics.counter_value cases - c0)

(* Telemetry recorded inside a worker must survive the fork: the worker
   dumps its registry with each result and the parent absorbs it, so the
   pooled totals equal the sequential ones — except [exec.workers],
   which only a pool spawn increments. *)
let test_pool_metrics_merge () =
  let reg = Gmf_obs.Metrics.default in
  let was = Gmf_obs.Metrics.enabled reg in
  let f x =
    ignore (Array.make 16 x);
    Gmf_obs.Metrics.incr ~by:x (Gmf_obs.Metrics.counter reg "test.pool.work");
    Gmf_obs.Metrics.observe
      (Gmf_obs.Metrics.histogram ~bounds:[| 4; 16 |] reg "test.pool.size")
      x;
    x * 3
  in
  let cases = [ 1; 2; 3; 5; 8; 13; 21 ] in
  let run exec =
    Gmf_obs.Metrics.set_enabled reg true;
    Gmf_obs.Metrics.reset reg;
    let r = Gmf_exec.map_cases ~exec ~f cases in
    let s = Gmf_obs.Metrics.snapshot reg in
    Gmf_obs.Metrics.set_enabled reg was;
    (strs r, s)
  in
  let rs, s_seq = run Gmf_exec.seq in
  let rp, s_pool = run (Gmf_exec.pool 2) in
  check_outcomes "pool results equal seq" rs rp;
  let drop_workers (s : Gmf_obs.Metrics.snapshot) =
    {
      s with
      Gmf_obs.Metrics.counters =
        List.filter (fun (n, _) -> n <> "exec.workers") s.Gmf_obs.Metrics.counters;
    }
  in
  Alcotest.(check bool) "pool metrics equal seq (modulo exec.workers)" true
    (drop_workers s_seq = drop_workers s_pool);
  (* Sanity: the workload really reached the registry both times. *)
  Alcotest.(check bool) "workload counter present" true
    (List.mem_assoc "test.pool.work" s_pool.Gmf_obs.Metrics.counters)

(* --- pool failure modes ---------------------------------------------- *)

let test_worker_crash () =
  let f x =
    ignore (Array.make 16 x);
    if x = 2 then exit 7 else x + 100
  in
  let r = Gmf_exec.map_cases ~exec:(Gmf_exec.pool 2) ~f [ 0; 1; 2; 3; 4 ] in
  let ok, err =
    List.partition (function Ok _ -> true | Error _ -> false) r
  in
  Alcotest.(check int) "other cases complete" 4 (List.length ok);
  (match err with
  | [ Error (Gmf_exec.Crashed _) ] -> ()
  | _ -> Alcotest.fail "expected exactly one crash error");
  (* The crash lands on the case that called exit. *)
  match List.nth r 2 with
  | Error (Gmf_exec.Crashed _) -> ()
  | _ -> Alcotest.fail "crash not attributed to the crashing case"

let spin_allocating () =
  (* Burn wall-clock while allocating so SIGALRM gets delivered. *)
  let deadline = Unix.gettimeofday () +. 30. in
  let rec spin acc =
    if Unix.gettimeofday () > deadline then acc
    else spin (ignore (Array.make 64 0) :: acc)
  in
  List.length (spin [])

let test_timeout_seq () =
  let f x = if x = 1 then spin_allocating () else x in
  let exec = { Gmf_exec.backend = Gmf_exec.Seq; timeout_s = Some 0.2 } in
  let r = Gmf_exec.map_cases ~exec ~f [ 0; 1; 2 ] in
  check_outcomes "timeout is per-case" [ "ok:0"; "err:timeout"; "ok:2" ]
    (strs r)

let test_timeout_pool () =
  let f x = if x = 1 then spin_allocating () else x in
  let exec = Gmf_exec.pool ~timeout_s:0.2 2 in
  let r = Gmf_exec.map_cases ~exec ~f [ 0; 1; 2 ] in
  check_outcomes "worker survives the killed case"
    [ "ok:0"; "err:timeout"; "ok:2" ] (strs r)

(* A per-case timeout must nest: an inner scoped timer (a nested
   map_cases with its own budget) restores the outer alarm on exit, so
   the outer deadline — the daemon's per-request deadline wrapping a
   per-case timeout — keeps ticking instead of being clobbered. *)
let test_timeout_nesting () =
  let inner_fast = { Gmf_exec.backend = Gmf_exec.Seq; timeout_s = Some 10. } in
  let outer = { Gmf_exec.backend = Gmf_exec.Seq; timeout_s = Some 0.4 } in
  let f _ =
    (* The inner scope completes quickly; if its restore dropped the
       outer alarm, the spin below would run its full 30s guard. *)
    let inner =
      Gmf_exec.map_cases ~exec:inner_fast ~f:(fun x -> x + 1) [ 1; 2 ]
    in
    assert (strs inner = [ "ok:2"; "ok:3" ]);
    spin_allocating ()
  in
  let t0 = Unix.gettimeofday () in
  let r = Gmf_exec.map_cases ~exec:outer ~f [ 0 ] in
  check_outcomes "outer deadline survives the inner scope" [ "err:timeout" ]
    (strs r);
  Alcotest.(check bool) "outer fired on its own budget" true
    (Unix.gettimeofday () -. t0 < 10.);
  (* Converse nesting: the inner budget expires while the outer keeps
     ticking — the inner case fails, the outer case completes. *)
  let inner_slow = { Gmf_exec.backend = Gmf_exec.Seq; timeout_s = Some 0.2 } in
  let outer_wide = { Gmf_exec.backend = Gmf_exec.Seq; timeout_s = Some 30. } in
  let g _ =
    let inner =
      Gmf_exec.map_cases ~exec:inner_slow
        ~f:(fun x -> if x = 1 then spin_allocating () else x)
        [ 0; 1 ]
    in
    match strs inner with
    | [ "ok:0"; "err:timeout" ] -> 42
    | other -> failwith (String.concat "," other)
  in
  let r2 = Gmf_exec.map_cases ~exec:outer_wide ~f:g [ 0 ] in
  check_outcomes "inner timeout inside a live outer scope" [ "ok:42" ]
    (strs r2)

(* exec.respawns counts replacement forks — here via the supervised
   persistent worker the daemon uses. *)
let test_respawn_counter () =
  let reg = Gmf_obs.Metrics.default in
  let was = Gmf_obs.Metrics.enabled reg in
  Gmf_obs.Metrics.set_enabled reg true;
  let respawns = Gmf_obs.Metrics.counter reg "exec.respawns" in
  let r0 = Gmf_obs.Metrics.counter_value respawns in
  let w =
    Gmf_exec.Persistent.spawn
      ~init:(fun () -> ())
      ~handle:(fun () x ->
        if x = 0 then Unix._exit 5;
        x * 2)
      ()
  in
  (match Gmf_exec.Persistent.call w 0 with
  | Error (Gmf_exec.Crashed _) -> ()
  | o -> Alcotest.fail ("expected a crash, got " ^ outcome_str o));
  Alcotest.(check int) "crash alone is not a respawn" 0
    (Gmf_obs.Metrics.counter_value respawns - r0);
  Gmf_exec.Persistent.respawn w;
  Alcotest.(check bool) "replacement works" true
    (Gmf_exec.Persistent.call w 3 = Ok 6);
  Gmf_exec.Persistent.stop w;
  Gmf_obs.Metrics.set_enabled reg was;
  Alcotest.(check int) "exec.respawns counts the replacement" 1
    (Gmf_obs.Metrics.counter_value respawns - r0);
  Alcotest.(check int) "respawn_count agrees" 1
    (Gmf_exec.Persistent.respawn_count w)

(* --- knobs ----------------------------------------------------------- *)

let test_jobs_resolution () =
  Alcotest.(check bool) "jobs<=1 is Seq" true
    (Gmf_exec.of_jobs 1 = Gmf_exec.seq);
  (match (Gmf_exec.of_jobs 4).Gmf_exec.backend with
  | Gmf_exec.Pool { jobs = 4 } -> ()
  | _ -> Alcotest.fail "of_jobs 4");
  Unix.putenv "GMFNET_JOBS" "3";
  Alcotest.(check int) "env fallback" 3 (Gmf_exec.resolve_jobs None);
  Alcotest.(check int) "cli wins" 2 (Gmf_exec.resolve_jobs (Some 2));
  Unix.putenv "GMFNET_JOBS" "bogus";
  Alcotest.(check int) "bogus env ignored" 1 (Gmf_exec.resolve_jobs None);
  Unix.putenv "GMFNET_JOBS" ""

let tests =
  [
    Alcotest.test_case "map order and error capture" `Quick test_map_order;
    Alcotest.test_case "search semantics" `Quick test_search_semantics;
    Alcotest.test_case "memo hits" `Quick test_memo_hits;
    Alcotest.test_case "memo counters" `Quick test_memo_counter;
    Alcotest.test_case "pool merges worker telemetry" `Quick
      test_pool_metrics_merge;
    Alcotest.test_case "worker crash is per-case" `Quick test_worker_crash;
    Alcotest.test_case "timeout kills the case (seq)" `Quick test_timeout_seq;
    Alcotest.test_case "timeout kills the case (pool)" `Quick
      test_timeout_pool;
    Alcotest.test_case "timeouts nest" `Quick test_timeout_nesting;
    Alcotest.test_case "respawn counter" `Quick test_respawn_counter;
    Alcotest.test_case "jobs knob" `Quick test_jobs_resolution;
    QCheck_alcotest.to_alcotest prop_map_seq_eq_pool;
    QCheck_alcotest.to_alcotest prop_search_seq_eq_pool;
  ]
