(* Route enumeration (Network.Pathfind). *)

let example () = Workload.Topologies.example ()

let test_all_routes_fig1 () =
  let net = example () in
  let topo = net.Workload.Topologies.topo in
  let routes = Network.Pathfind.all_routes topo ~src:0 ~dst:3 in
  let node_lists = List.map Network.Route.nodes routes in
  (* 0->4->6->3 (the Figure 2 route) and 0->4->5->6->3. *)
  Alcotest.(check int) "two routes" 2 (List.length routes);
  Alcotest.(check bool) "figure 2 route found" true
    (List.mem [ 0; 4; 6; 3 ] node_lists);
  Alcotest.(check bool) "detour found" true
    (List.mem [ 0; 4; 5; 6; 3 ] node_lists);
  (* Shortest first. *)
  Alcotest.(check (list int)) "ordered by hops" [ 0; 4; 6; 3 ]
    (List.hd node_lists)

let test_max_hops_filter () =
  let net = example () in
  let topo = net.Workload.Topologies.topo in
  let short = Network.Pathfind.all_routes ~max_hops:3 topo ~src:0 ~dst:3 in
  Alcotest.(check int) "only the direct route" 1 (List.length short);
  let none = Network.Pathfind.all_routes ~max_hops:2 topo ~src:0 ~dst:3 in
  Alcotest.(check int) "none within two hops" 0 (List.length none)

let test_k_shortest () =
  let net = example () in
  let topo = net.Workload.Topologies.topo in
  Alcotest.(check int) "k=1" 1
    (List.length (Network.Pathfind.k_shortest ~k:1 topo ~src:0 ~dst:3));
  Alcotest.(check int) "k larger than available" 2
    (List.length (Network.Pathfind.k_shortest ~k:10 topo ~src:0 ~dst:3))

let test_endpoints_and_reachability () =
  let net = example () in
  let topo = net.Workload.Topologies.topo in
  (* A switch cannot terminate a flow. *)
  Alcotest.(check int) "switch destination rejected" 0
    (List.length (Network.Pathfind.all_routes topo ~src:0 ~dst:4));
  (* Router node 7 is a valid endpoint. *)
  Alcotest.(check bool) "router endpoint ok" true
    (List.length (Network.Pathfind.all_routes topo ~src:7 ~dst:0) >= 1);
  (* Unreachable node. *)
  let lonely =
    Network.Topology.add_node topo ~name:"lonely" ~kind:Network.Node.Endhost
  in
  Alcotest.(check int) "unreachable" 0
    (List.length (Network.Pathfind.all_routes topo ~src:0 ~dst:lonely))

let test_route_capacity () =
  let topo = Network.Topology.create () in
  let a = Network.Topology.add_node topo ~name:"a" ~kind:Network.Node.Endhost in
  let s = Network.Topology.add_node topo ~name:"s" ~kind:Network.Node.Switch in
  let b = Network.Topology.add_node topo ~name:"b" ~kind:Network.Node.Endhost in
  Network.Topology.add_duplex_link topo ~a ~b:s ~rate_bps:1_000_000_000 ~prop:0;
  Network.Topology.add_duplex_link topo ~a:s ~b ~rate_bps:10_000_000 ~prop:0;
  let route = Network.Route.make topo [ a; s; b ] in
  Alcotest.(check int) "bottleneck rate" 10_000_000
    (Network.Pathfind.route_capacity topo route)

let test_routes_are_valid () =
  (* Every enumerated route passes Route.make's validation by construction;
     double-check interior switch-ness on a richer topology. *)
  let topo, hosts, _sw =
    Workload.Topologies.line ~hosts_per_switch:2 ~switches:4 ()
  in
  let routes =
    Network.Pathfind.all_routes topo ~src:hosts.(0).(0) ~dst:hosts.(3).(1)
  in
  Alcotest.(check bool) "at least one route" true (List.length routes >= 1);
  List.iter
    (fun route ->
      List.iter
        (fun n ->
          Alcotest.(check bool) "interior is a switch" true
            (Network.Node.is_switch (Network.Topology.node topo n)))
        (Network.Route.intermediate_switches route))
    routes

let test_has_at_least () =
  let net = example () in
  let topo = net.Workload.Topologies.topo in
  (* Figure 1 has exactly two 0->3 routes. *)
  Alcotest.(check bool) "at least 1" true
    (Network.Pathfind.has_at_least topo ~src:0 ~dst:3 1);
  Alcotest.(check bool) "at least 2" true
    (Network.Pathfind.has_at_least topo ~src:0 ~dst:3 2);
  Alcotest.(check bool) "not 3" false
    (Network.Pathfind.has_at_least topo ~src:0 ~dst:3 3);
  Alcotest.(check bool) "0 is trivially true" true
    (Network.Pathfind.has_at_least topo ~src:0 ~dst:3 0)

let test_cache_equals_uncached () =
  let topo, hosts, sw =
    Workload.Topologies.line ~hosts_per_switch:2 ~switches:4 ()
  in
  let cache = Network.Pathfind.Cache.create topo in
  let queries =
    [
      (hosts.(0).(0), hosts.(3).(1), [], []);
      (hosts.(0).(0), hosts.(3).(1), [ (sw.(1), sw.(2)) ], []);
      (hosts.(1).(0), hosts.(2).(0), [], [ sw.(0) ]);
      (* Repeated: must come from the memo without changing the answer. *)
      (hosts.(0).(0), hosts.(3).(1), [], []);
    ]
  in
  List.iter
    (fun (src, dst, avoid_links, avoid_nodes) ->
      let plain =
        Network.Pathfind.k_shortest ~k:3 ~avoid_links ~avoid_nodes topo ~src
          ~dst
      in
      let cached =
        Network.Pathfind.Cache.k_shortest ~k:3 ~avoid_links ~avoid_nodes
          cache ~src ~dst
      in
      Alcotest.(check (list (list int)))
        "cached = uncached"
        (List.map Network.Route.nodes plain)
        (List.map Network.Route.nodes cached))
    queries;
  Alcotest.(check bool) "memo actually hit" true
    (Network.Pathfind.Cache.hits cache > 0)

let tests =
  [
    Alcotest.test_case "all routes on Figure 1" `Quick test_all_routes_fig1;
    Alcotest.test_case "has_at_least early-exit" `Quick test_has_at_least;
    Alcotest.test_case "route cache equals uncached" `Quick
      test_cache_equals_uncached;
    Alcotest.test_case "max hops" `Quick test_max_hops_filter;
    Alcotest.test_case "k shortest" `Quick test_k_shortest;
    Alcotest.test_case "endpoints/reachability" `Quick
      test_endpoints_and_reachability;
    Alcotest.test_case "route capacity" `Quick test_route_capacity;
    Alcotest.test_case "routes are valid" `Quick test_routes_are_valid;
  ]
