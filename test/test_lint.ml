(* Golden tests for Gmf_lint: one scenario per diagnostic code, the JSON
   round-trip, and the admission gate that must reject lint errors without
   entering the holistic fixpoint. *)

let parse text =
  match Scenario_io.Parse.scenario_of_string text with
  | Ok s -> s
  | Error e ->
      Alcotest.failf "test scenario does not parse: %a"
        Scenario_io.Parse.pp_error e

let lint ?config text =
  (Gmf_lint.Lint.run ?config (parse text)).Gmf_lint.Lint.diagnostics

let codes ds =
  List.sort_uniq compare (List.map (fun d -> d.Gmf_diag.code) ds)

let find_code code ds = List.find_opt (fun d -> d.Gmf_diag.code = code) ds

let check_fires ?config ~code ~severity text =
  let ds = lint ?config text in
  match find_code code ds with
  | None ->
      Alcotest.failf "expected %s, got {%s}" code
        (String.concat ", " (codes ds))
  | Some d ->
      Alcotest.(check string)
        (code ^ " severity")
        (Gmf_diag.severity_to_string severity)
        (Gmf_diag.severity_to_string d.Gmf_diag.severity);
      (* every emitted code must exist in the rule catalog, at the
         catalog's default severity *)
      (match Gmf_lint.Rules.find code with
      | None -> Alcotest.failf "%s missing from Rules.catalog" code
      | Some _ -> ())

let clean =
  "node a endhost\nnode b endhost\nlink a b rate=100M\n\
   flow f from=a to=b\n  frame period=1ms deadline=1ms payload=100B\nend"

let frame1 = "  frame period=1ms deadline=1ms payload=100B\n"

(* ---------------- GMF0xx: structural ---------------- *)

let test_clean_scenario () =
  let ds = lint clean in
  Alcotest.(check (list string)) "no diagnostics" [] (codes ds);
  Alcotest.(check bool) "not fatal" false
    (Gmf_lint.Lint.fatal ~deny:Gmf_diag.Hint
       (Gmf_lint.Lint.run (parse clean)))

let test_gmf001_duplicate_flow_name () =
  check_fires ~code:"GMF001" ~severity:Gmf_diag.Error
    ("node a endhost\nnode b endhost\nlink a b rate=100M\n\
      flow f from=a to=b\n" ^ frame1 ^ "end\nflow f from=a to=b\n" ^ frame1
   ^ "end")

let test_gmf002_redundant_remark () =
  check_fires ~code:"GMF002" ~severity:Gmf_diag.Hint
    ("node a endhost\nnode b endhost\nlink a b rate=100M\n\
      flow f from=a to=b prio=3 remark=a/b:3\n" ^ frame1 ^ "end")

let test_gmf003_isolated_node () =
  check_fires ~code:"GMF003" ~severity:Gmf_diag.Warning
    ("node a endhost\nnode b endhost\nnode c endhost\nlink a b rate=100M\n\
      flow f from=a to=b\n" ^ frame1 ^ "end")

let test_gmf004_unused_link () =
  check_fires ~code:"GMF004" ~severity:Gmf_diag.Hint
    ("node a endhost\nnode b endhost\nlink a b rate=100M\n\
      link b a rate=100M\nflow f from=a to=b\n" ^ frame1 ^ "end")

let test_gmf005_detour_route () =
  check_fires ~code:"GMF005" ~severity:Gmf_diag.Hint
    ("node a endhost\nnode b endhost\nnode c switch\nlink a b rate=100M\n\
      link a c rate=100M\nlink c b rate=100M\n\
      flow f from=a to=b route=a,c,b\n" ^ frame1 ^ "end")

let test_gmf006_unused_switch () =
  check_fires ~code:"GMF006" ~severity:Gmf_diag.Hint
    ("node a endhost\nnode b endhost\nnode sw switch\nlink a b rate=100M\n\
      duplex a sw rate=100M\nswitch sw\nflow f from=a to=b\n" ^ frame1 ^ "end")

(* GMF010-013 come from the checked constructors of Traffic.Flow: the DSL
   rejects them before a scenario exists, so exercise the API directly. *)

let mini_flow () =
  let topo = Network.Topology.create () in
  let a = Network.Topology.add_node topo ~name:"a" ~kind:Network.Node.Endhost in
  let b = Network.Topology.add_node topo ~name:"b" ~kind:Network.Node.Endhost in
  Network.Topology.add_link topo ~src:a ~dst:b ~rate_bps:100_000_000 ~prop:0;
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make
          ~period:(Gmf_util.Timeunit.ms 1)
          ~deadline:(Gmf_util.Timeunit.ms 1) ~jitter:0 ~payload_bits:800;
      ]
  in
  let route = Network.Route.make topo [ a; b ] in
  let make priority =
    Traffic.Flow.make_checked ~id:0 ~name:"f" ~spec ~encap:Ethernet.Encap.Udp
      ~route ~priority
  in
  let make_raising priority =
    ignore
      (Traffic.Flow.make ~id:0 ~name:"f" ~spec ~encap:Ethernet.Encap.Udp
         ~route ~priority)
  in
  (make, make_raising, a, b)

let expect_diag ~code = function
  | Ok _ -> Alcotest.failf "expected Error %s, got Ok" code
  | Error d ->
      Alcotest.(check string) "code" code d.Gmf_diag.code;
      Alcotest.(check string) "severity" "error"
        (Gmf_diag.severity_to_string d.Gmf_diag.severity)

let test_gmf010_priority_range () =
  let make, make_raising, _, _ = mini_flow () in
  expect_diag ~code:"GMF010" (make 9);
  expect_diag ~code:"GMF010" (make (-1));
  (* the raising variant preserves the historical exception string *)
  Alcotest.check_raises "legacy exception"
    (Invalid_argument "Flow.make: priority outside the 802.1p range 0..7")
    (fun () -> make_raising 9)

let test_gmf011_remark_off_route () =
  let make, _, a, b = mini_flow () in
  match make 5 with
  | Error d -> Alcotest.failf "flow should build: %s" d.Gmf_diag.message
  | Ok f -> expect_diag ~code:"GMF011"
      (Traffic.Flow.with_remarks_checked f [ ((b, a), 3) ])

let test_gmf012_hop_remarked_twice () =
  let make, _, a, b = mini_flow () in
  match make 5 with
  | Error d -> Alcotest.failf "flow should build: %s" d.Gmf_diag.message
  | Ok f ->
      expect_diag ~code:"GMF012"
        (Traffic.Flow.with_remarks_checked f [ ((a, b), 3); ((a, b), 2) ]);
      (* a remark with an out-of-range priority is GMF010 again *)
      expect_diag ~code:"GMF010"
        (Traffic.Flow.with_remarks_checked f [ ((a, b), 99) ])

let test_gmf013_scale_factor () =
  let make, _, _, _ = mini_flow () in
  match make 5 with
  | Error d -> Alcotest.failf "flow should build: %s" d.Gmf_diag.message
  | Ok f ->
      expect_diag ~code:"GMF013" (Traffic.Flow.scale_payloads_checked f 0.);
      Alcotest.check_raises "legacy exception"
        (Invalid_argument "Flow.scale_payloads: non-positive factor")
        (fun () -> ignore (Traffic.Flow.scale_payloads f (-1.)))

(* ---------------- GMF1xx: model preconditions ---------------- *)

let test_gmf101_deadline_over_period () =
  check_fires ~code:"GMF101" ~severity:Gmf_diag.Hint
    "node a endhost\nnode b endhost\nlink a b rate=100M\n\
     flow f from=a to=b\n  frame period=1ms deadline=2ms payload=100B\nend"

let test_gmf102_jitter_over_period () =
  check_fires ~code:"GMF102" ~severity:Gmf_diag.Warning
    "node a endhost\nnode b endhost\nlink a b rate=100M\n\
     flow f from=a to=b\n\
    \  frame period=1ms deadline=1ms jitter=1ms payload=100B\nend"

let fragmented =
  "node a endhost\nnode b endhost\nlink a b rate=100M\n\
   flow f from=a to=b\n  frame period=1ms deadline=1ms payload=3000B\nend"

let test_gmf103_fragmentation () =
  (* severity depends on the analysis variant: the Faithful analysis
     under-charges rotations for fragmented frames (DESIGN.md R2-R3) *)
  check_fires ~code:"GMF103" ~severity:Gmf_diag.Hint fragmented;
  check_fires ~config:Analysis.Config.faithful ~code:"GMF103"
    ~severity:Gmf_diag.Warning fragmented

let test_gmf104_priority_tie () =
  check_fires ~code:"GMF104" ~severity:Gmf_diag.Hint
    ("node a endhost\nnode b endhost\nlink a b rate=100M\n\
      flow f from=a to=b prio=3\n" ^ frame1
   ^ "end\nflow g from=a to=b prio=3\n" ^ frame1 ^ "end")

let test_gmf105_overprovisioned_switch () =
  check_fires ~code:"GMF105" ~severity:Gmf_diag.Hint
    ("node a endhost\nnode b endhost\nnode sw switch\nlink a sw rate=100M\n\
      link sw b rate=100M\nswitch sw ports=8\nflow f from=a to=b\n" ^ frame1
   ^ "end")

(* ---------------- GMF2xx: utilization / config ---------------- *)

let test_gmf201_link_overload () =
  check_fires ~code:"GMF201" ~severity:Gmf_diag.Error
    "node a endhost\nnode b endhost\nlink a b rate=1M\n\
     flow f from=a to=b\n  frame period=1ms deadline=1ms payload=1000B\nend"

let test_gmf202_impossible_deadline () =
  (* C of a 1000 B datagram at 1 Mbit/s is ~8.5 ms, far above 10 us, but
     the 1 s period keeps the link utilization negligible. *)
  check_fires ~code:"GMF202" ~severity:Gmf_diag.Error
    "node a endhost\nnode b endhost\nlink a b rate=1M\n\
     flow f from=a to=b\n  frame period=1s deadline=10us payload=1000B\nend"

let test_gmf203_ingress_overload () =
  (* circ = (2 ports / 1 cpu) * (croute + csend) > 2 ms per frame, one
     frame per 1 ms period: rotation utilization > 1 (eqs 34-35). *)
  check_fires ~code:"GMF203" ~severity:Gmf_diag.Error
    "node a endhost\nnode b endhost\nnode sw switch\nlink a sw rate=100M\n\
     link sw b rate=100M\nswitch sw cpus=1 croute=1ms\n\
     flow f from=a to=b\n  frame period=1ms deadline=100ms payload=100B\nend"

let test_gmf204_near_saturation () =
  let text =
    "node a endhost\nnode b endhost\nlink a b rate=10M\n\
     flow f from=a to=b\n  frame period=1ms deadline=1ms payload=1100B\nend"
  in
  let scenario = parse text in
  let u = Traffic.Scenario.link_utilization scenario ~src:0 ~dst:1 in
  if not (u >= 0.9 && u < 1.) then
    Alcotest.failf "fixture drifted: utilization %.3f not in [0.9, 1)" u;
  check_fires ~code:"GMF204" ~severity:Gmf_diag.Hint text

let test_gmf205_short_horizon () =
  let config =
    { Analysis.Config.default with
      Analysis.Config.horizon = Gmf_util.Timeunit.ms 1 }
  in
  check_fires ~config ~code:"GMF205" ~severity:Gmf_diag.Warning
    "node a endhost\nnode b endhost\nlink a b rate=100M\n\
     flow f from=a to=b\n  frame period=20ms deadline=10ms payload=100B\nend"

let test_gmf206_nonpositive_caps () =
  let config =
    { Analysis.Config.default with Analysis.Config.max_busy_iters = 0 }
  in
  check_fires ~config ~code:"GMF206" ~severity:Gmf_diag.Error clean

(* ---------------- catalog invariants ---------------- *)

let test_catalog () =
  let cs = List.map (fun r -> r.Gmf_lint.Rules.code) Gmf_lint.Rules.catalog in
  Alcotest.(check int) "codes are unique" (List.length cs)
    (List.length (List.sort_uniq compare cs));
  Alcotest.(check bool) "at least 12 rules" true (List.length cs >= 12);
  List.iter
    (fun c ->
      match Gmf_lint.Rules.find c with
      | Some r -> Alcotest.(check string) "find" c r.Gmf_lint.Rules.code
      | None -> Alcotest.failf "find %s = None" c)
    cs;
  (* all three categories are populated *)
  List.iter
    (fun cat ->
      Alcotest.(check bool)
        (Gmf_lint.Rules.category_to_string cat ^ " populated")
        true
        (List.exists
           (fun r -> r.Gmf_lint.Rules.category = cat)
           Gmf_lint.Rules.catalog))
    [ Gmf_lint.Rules.Structural; Gmf_lint.Rules.Model;
      Gmf_lint.Rules.Utilization ]

(* ---------------- JSON round-trip ---------------- *)

let diag = Alcotest.testable Gmf_diag.pp ( = )

let test_json_roundtrip () =
  let ds =
    [
      Gmf_diag.error ~code:"GMF201"
        ~subject:(Gmf_diag.Link { src = 0; dst = 1 })
        ~suggestion:"shed flows" "utilization %.3f" 1.25;
      Gmf_diag.warning ~code:"GMF205" ~subject:Gmf_diag.Config
        "horizon too short";
      Gmf_diag.hint ~code:"GMF002"
        ~subject:(Gmf_diag.Flow { id = 3; name = "voip \"a\"\\b" })
        "tricky\nmessage\twith\rescapes";
      Gmf_diag.error ~code:"GMF202"
        ~subject:(Gmf_diag.Frame { id = 1; name = "f"; frame = 2 })
        ~suggestion:"relax the deadline" "floor above deadline";
      Gmf_diag.warning ~code:"GMF003"
        ~subject:(Gmf_diag.Node { id = 7; name = "sw0" })
        "node has no links";
      Gmf_diag.hint ~code:"GMF999" ~subject:Gmf_diag.Scenario "whole-set note";
    ]
  in
  match Gmf_lint.Lint_json.of_jsonl (Gmf_lint.Lint_json.to_jsonl ds) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok ds' -> Alcotest.(check (list diag)) "round-trip" ds ds'

let test_json_rejects_garbage () =
  (match Gmf_lint.Lint_json.of_jsonl_line "{\"code\":}" with
  | Ok _ -> Alcotest.fail "accepted malformed JSON"
  | Error _ -> ());
  match Gmf_lint.Lint_json.of_jsonl_line "{\"code\":\"GMF001\"}" with
  | Ok _ -> Alcotest.fail "accepted incomplete diagnostic"
  | Error _ -> ()

let test_json_of_real_run () =
  let report =
    Gmf_lint.Lint.run
      (parse
         ("node a endhost\nnode b endhost\nlink a b rate=100M\n\
           flow f from=a to=b\n" ^ frame1 ^ "end\nflow f from=a to=b\n"
        ^ frame1 ^ "end"))
  in
  let ds = report.Gmf_lint.Lint.diagnostics in
  Alcotest.(check bool) "run has diagnostics" true (ds <> []);
  match Gmf_lint.Lint_json.of_jsonl (Gmf_lint.Lint_json.to_jsonl ds) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok ds' -> Alcotest.(check (list diag)) "round-trip" ds ds'

(* ---------------- the admission gate ---------------- *)

let with_metrics f =
  let reg = Gmf_obs.Metrics.default in
  let was = Gmf_obs.Metrics.enabled reg in
  Gmf_obs.Metrics.set_enabled reg true;
  Gmf_obs.Metrics.reset reg;
  Fun.protect
    ~finally:(fun () ->
      Gmf_obs.Metrics.reset reg;
      Gmf_obs.Metrics.set_enabled reg was)
    f

let test_admission_rejects_without_fixpoint () =
  with_metrics @@ fun () ->
  let fixpoint_calls =
    Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "fixpoint.calls"
  in
  let bad =
    parse
      ("node a endhost\nnode b endhost\nlink a b rate=100M\n\
        flow f from=a to=b\n" ^ frame1 ^ "end\nflow f from=a to=b\n" ^ frame1
     ^ "end")
  in
  let d = Analysis.Admission.check bad in
  Alcotest.(check bool) "rejected" false d.Analysis.Admission.admitted;
  Alcotest.(check int) "no holistic rounds" 0
    d.Analysis.Admission.report.Analysis.Holistic.rounds;
  (match d.Analysis.Admission.report.Analysis.Holistic.verdict with
  | Analysis.Holistic.Analysis_failed (_ :: _) -> ()
  | v ->
      Alcotest.failf "expected Analysis_failed, got %a"
        Analysis.Holistic.pp_verdict v);
  Alcotest.(check bool) "lint diagnostics attached" true
    (Gmf_diag.has_errors d.Analysis.Admission.diagnostics);
  Alcotest.(check int) "fixpoint never entered" 0
    (Gmf_obs.Metrics.counter_value fixpoint_calls);
  (* lint rule counters are visible on the default registry *)
  Alcotest.(check bool) "lint.runs counted" true
    (Gmf_obs.Metrics.counter_value
       (Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "lint.runs")
    > 0);
  Alcotest.(check bool) "lint.hits.GMF001 counted" true
    (Gmf_obs.Metrics.counter_value
       (Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "lint.hits.GMF001")
    > 0);
  (* control: a clean scenario is actually analyzed — the precheck either
     certifies every flow statically (no fixpoint at all) or the fixpoint
     runs; both produce per-flow results. *)
  let d2 = Analysis.Admission.check (parse clean) in
  Alcotest.(check bool) "clean scenario admitted" true
    d2.Analysis.Admission.admitted;
  let certified_statically =
    d2.Analysis.Admission.report.Analysis.Holistic.rounds = 0
    && d2.Analysis.Admission.report.Analysis.Holistic.results <> []
  in
  Alcotest.(check bool) "clean scenario analyzed" true
    (certified_statically || Gmf_obs.Metrics.counter_value fixpoint_calls > 0)

let tests =
  [
    Alcotest.test_case "clean scenario is diagnostic-free" `Quick
      test_clean_scenario;
    Alcotest.test_case "GMF001 duplicate flow name" `Quick
      test_gmf001_duplicate_flow_name;
    Alcotest.test_case "GMF002 redundant remark" `Quick
      test_gmf002_redundant_remark;
    Alcotest.test_case "GMF003 isolated node" `Quick test_gmf003_isolated_node;
    Alcotest.test_case "GMF004 unused link" `Quick test_gmf004_unused_link;
    Alcotest.test_case "GMF005 detour route" `Quick test_gmf005_detour_route;
    Alcotest.test_case "GMF006 unused switch" `Quick test_gmf006_unused_switch;
    Alcotest.test_case "GMF010 priority range" `Quick test_gmf010_priority_range;
    Alcotest.test_case "GMF011 remark off route" `Quick
      test_gmf011_remark_off_route;
    Alcotest.test_case "GMF012 hop remarked twice" `Quick
      test_gmf012_hop_remarked_twice;
    Alcotest.test_case "GMF013 scale factor" `Quick test_gmf013_scale_factor;
    Alcotest.test_case "GMF101 deadline over period" `Quick
      test_gmf101_deadline_over_period;
    Alcotest.test_case "GMF102 jitter over period" `Quick
      test_gmf102_jitter_over_period;
    Alcotest.test_case "GMF103 fragmentation by variant" `Quick
      test_gmf103_fragmentation;
    Alcotest.test_case "GMF104 priority tie" `Quick test_gmf104_priority_tie;
    Alcotest.test_case "GMF105 overprovisioned switch" `Quick
      test_gmf105_overprovisioned_switch;
    Alcotest.test_case "GMF201 link overload" `Quick test_gmf201_link_overload;
    Alcotest.test_case "GMF202 impossible deadline" `Quick
      test_gmf202_impossible_deadline;
    Alcotest.test_case "GMF203 ingress overload" `Quick
      test_gmf203_ingress_overload;
    Alcotest.test_case "GMF204 near saturation" `Quick
      test_gmf204_near_saturation;
    Alcotest.test_case "GMF205 short horizon" `Quick test_gmf205_short_horizon;
    Alcotest.test_case "GMF206 non-positive caps" `Quick
      test_gmf206_nonpositive_caps;
    Alcotest.test_case "rule catalog invariants" `Quick test_catalog;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "JSON rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "JSON round-trip of a real run" `Quick
      test_json_of_real_run;
    Alcotest.test_case "admission rejects without fixpoint" `Quick
      test_admission_rejects_without_fixpoint;
  ]
