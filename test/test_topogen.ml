(* Properties of the scenario generator (Gmf_topogen). *)

module Gen_spec = Gmf_topogen.Gen_spec
module Topogen = Gmf_topogen.Topogen

let specs =
  [
    ("mesh", Gen_spec.default);
    ( "dual-mesh",
      {
        Gen_spec.default with
        Gen_spec.family = Gen_spec.Mesh { rows = 3; cols = 3; planes = 2 };
        flows = 25;
        seed = 7;
      } );
    ( "fat-tree",
      {
        Gen_spec.default with
        Gen_spec.family = Gen_spec.Fat_tree { k = 4 };
        flows = 30;
        seed = 11;
      } );
    ( "rings",
      {
        Gen_spec.default with
        Gen_spec.family = Gen_spec.Ring_of_rings { rings = 4; ring_size = 3 };
        flows = 30;
        seed = 13;
      } );
  ]

let each f () = List.iter (fun (name, spec) -> f name spec) specs

(* Every generated topology is connected: an undirected reachability sweep
   from any node covers all of them. *)
let test_connected =
  each (fun name spec ->
      let r = Topogen.generate spec in
      let topo = Traffic.Scenario.topo r.Topogen.scenario in
      let n = Network.Topology.node_count topo in
      let seen = Array.make n false in
      let rec visit id =
        if not seen.(id) then begin
          seen.(id) <- true;
          List.iter visit (Network.Topology.out_neighbors topo id)
        end
      in
      visit 0;
      Alcotest.(check bool)
        (name ^ " connected") true
        (Array.for_all Fun.id seen))

(* Every flow's route runs host-to-host over existing links with only
   switches in between. *)
let test_routes_valid =
  each (fun name spec ->
      let r = Topogen.generate spec in
      let topo = Traffic.Scenario.topo r.Topogen.scenario in
      let kind id = (Network.Topology.node topo id).Network.Node.kind in
      List.iter
        (fun flow ->
          let route = flow.Traffic.Flow.route in
          Alcotest.(check bool)
            (name ^ " source is a host") true
            (kind (Network.Route.source route) = Network.Node.Endhost);
          Alcotest.(check bool)
            (name ^ " destination is a host") true
            (kind (Network.Route.destination route) = Network.Node.Endhost);
          List.iter
            (fun sw ->
              Alcotest.(check bool)
                (name ^ " interior is a switch") true
                (kind sw = Network.Node.Switch))
            (Network.Route.intermediate_switches route);
          List.iter
            (fun (src, dst) ->
              Alcotest.(check bool)
                (name ^ " hop is a link") true
                (Network.Topology.find_link topo ~src ~dst <> None))
            (Network.Route.hops route))
        (Traffic.Scenario.flows r.Topogen.scenario))

(* Fixed seed => byte-identical output; the stream is splitmix64, so this
   holds on any platform or backend, not just across two calls here. *)
let test_deterministic =
  each (fun name spec ->
      let a = Topogen.generate spec and b = Topogen.generate spec in
      Alcotest.(check string)
        (name ^ " byte-deterministic")
        (Topogen.to_string a.Topogen.scenario)
        (Topogen.to_string b.Topogen.scenario))

let test_seed_matters () =
  let a = Topogen.generate Gen_spec.default in
  let b =
    Topogen.generate { Gen_spec.default with Gen_spec.seed = 43 }
  in
  Alcotest.(check bool)
    "different seeds differ" false
    (String.equal
       (Topogen.to_string a.Topogen.scenario)
       (Topogen.to_string b.Topogen.scenario))

(* The generator's incremental utilization and response-floor tracking
   mirrors the lint rules, so the output passes --deny warning. *)
let test_lint_clean =
  each (fun name spec ->
      let r = Topogen.generate spec in
      let report = Gmf_lint.Lint.run r.Topogen.scenario in
      Alcotest.(check int)
        (name ^ " no lint errors") 0
        (List.length (Gmf_lint.Lint.errors report));
      Alcotest.(check int)
        (name ^ " no lint warnings") 0
        (List.length (Gmf_lint.Lint.warnings report));
      Alcotest.(check bool)
        (name ^ " passes --deny warning") false
        (Gmf_lint.Lint.fatal ~deny:Gmf_diag.Warning report))

(* Printed output reparses to the same population. *)
let test_roundtrip =
  each (fun name spec ->
      let r = Topogen.generate spec in
      let printed = Topogen.to_string r.Topogen.scenario in
      match Scenario_io.Parse.scenario_of_string printed with
      | Error e ->
          Alcotest.failf "%s does not reparse: %a" name
            Scenario_io.Parse.pp_error e
      | Ok reparsed ->
          let sig_of s =
            ( List.length (Network.Topology.links (Traffic.Scenario.topo s)),
              List.map
                (fun f ->
                  ( f.Traffic.Flow.name,
                    f.Traffic.Flow.priority,
                    Network.Route.hop_count f.Traffic.Flow.route,
                    Gmf.Spec.tsum f.Traffic.Flow.spec ))
                (Traffic.Scenario.flows s) )
          in
          Alcotest.(check bool)
            (name ^ " round-trips") true
            (sig_of r.Topogen.scenario = sig_of reparsed))

(* All requested flows are actually placed for the default parameters —
   the ceilings are loose enough that rejection is the exception. *)
let test_placement_fills () =
  let r = Topogen.generate Gen_spec.default in
  Alcotest.(check int) "all slots placed" Gen_spec.default.Gen_spec.flows
    r.Topogen.placed;
  Alcotest.(check int) "scenario holds them"
    r.Topogen.placed
    (List.length (Traffic.Scenario.flows r.Topogen.scenario))

(* The placement ceilings are real: no link and no ingress rotation of
   the generated scenario exceeds max_util (eqs 20 and 34-35). *)
let test_util_ceiling () =
  let spec = { Gen_spec.default with Gen_spec.flows = 80; max_util = 0.5 } in
  let r = Topogen.generate spec in
  let ctx = Analysis.Ctx.create r.Topogen.scenario in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Format.asprintf "%a under ceiling" Analysis.Conditions.pp_check c)
        true
        (c.Analysis.Conditions.utilization
        <= spec.Gen_spec.max_util +. 1e-9))
    (Analysis.Conditions.check_all ctx)

let test_spec_parsers () =
  List.iter
    (fun s ->
      match Gen_spec.family_of_string s with
      | Ok f ->
          Alcotest.(check string)
            (s ^ " round-trips") s
            (Gen_spec.family_to_string f)
      | Error e -> Alcotest.failf "%s does not parse: %s" s e)
    [ "mesh:4x4"; "mesh:25x20x2"; "fat-tree:4"; "rings:4x3" ];
  (match Gen_spec.mix_of_string "voip=3,mpeg=1,sensor=2" with
  | Ok m ->
      Alcotest.(check string)
        "mix round-trips" "voip=3,mpeg=1,sensor=2" (Gen_spec.mix_to_string m)
  | Error e -> Alcotest.failf "mix does not parse: %s" e);
  List.iter
    (fun s ->
      match Gen_spec.family_of_string s with
      | Ok _ -> Alcotest.failf "%s should not parse" s
      | Error _ -> ())
    [ "mesh:4"; "torus:4x4"; "fat-tree:x"; "rings:4" ]

let test_validate_rejects () =
  List.iter
    (fun (what, spec) ->
      match Gen_spec.validate spec with
      | Ok () -> Alcotest.failf "%s should be rejected" what
      | Error _ -> ())
    [
      ( "3 planes",
        {
          Gen_spec.default with
          Gen_spec.family = Gen_spec.Mesh { rows = 2; cols = 2; planes = 3 };
        } );
      ( "odd fat-tree",
        { Gen_spec.default with Gen_spec.family = Gen_spec.Fat_tree { k = 3 } }
      );
      ("empty mix", { Gen_spec.default with Gen_spec.mix = [] });
      ("locality 2", { Gen_spec.default with Gen_spec.locality = 2. });
      ("util 0", { Gen_spec.default with Gen_spec.max_util = 0. });
      ( "inverted band",
        { Gen_spec.default with Gen_spec.prio_lo = 5; prio_hi = 2 } );
    ]

let tests =
  [
    Alcotest.test_case "generated topologies are connected" `Quick
      test_connected;
    Alcotest.test_case "routes are host-to-host over real links" `Quick
      test_routes_valid;
    Alcotest.test_case "fixed seed is byte-deterministic" `Quick
      test_deterministic;
    Alcotest.test_case "seed changes the population" `Quick test_seed_matters;
    Alcotest.test_case "output is lint-clean at --deny warning" `Quick
      test_lint_clean;
    Alcotest.test_case "output reparses to the same population" `Quick
      test_roundtrip;
    Alcotest.test_case "default parameters place every flow" `Quick
      test_placement_fills;
    Alcotest.test_case "stage utilizations respect max-util" `Quick
      test_util_ceiling;
    Alcotest.test_case "family and mix strings round-trip" `Quick
      test_spec_parsers;
    Alcotest.test_case "validate rejects bad parameters" `Quick
      test_validate_rejects;
  ]
