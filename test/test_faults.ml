(* Fault model, simulator injection, and static survivability: fault
   schedules must validate against the topology, taint conservatively,
   leave untainted journeys inside the analytic bounds, and the survive
   report's rerouted flows must be schedulable when re-analyzed cold on
   their new routes. *)

open Gmf_util
module Fault = Gmf_faults.Fault
module Survive = Gmf_faults.Survive

(* ------------------------------------------------------------------ *)
(* Schedule construction and validation                               *)
(* ------------------------------------------------------------------ *)

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_make_validation () =
  Alcotest.(check bool) "empty is empty" true (Fault.is_empty Fault.empty);
  Alcotest.(check bool) "no events is empty" true
    (Fault.is_empty (Fault.make []));
  Alcotest.(check bool) "an event is not empty" false
    (Fault.is_empty (Fault.make [ Fault.Link_down ((0, 1), 0) ]));
  Alcotest.(check bool) "negative time rejected" true
    (raises_invalid (fun () -> Fault.make [ Fault.Link_down ((0, 1), -5) ]));
  Alcotest.(check bool) "negative stall duration rejected" true
    (raises_invalid (fun () ->
         Fault.make [ Fault.Switch_stall (4, 100, -1) ]));
  Alcotest.(check bool) "loss > 1 rejected" true
    (raises_invalid (fun () -> Fault.make [ Fault.Frame_loss 1.5 ]));
  Alcotest.(check bool) "negative loss rejected" true
    (raises_invalid (fun () -> Fault.make [ Fault.Frame_loss (-0.1) ]));
  let s = Fault.make [ Fault.Frame_loss 0.1; Fault.Frame_loss 0.3 ] in
  Alcotest.(check (float 1e-9)) "loss combines by max" 0.3
    (Fault.loss_probability s);
  Alcotest.(check (float 1e-9)) "no loss is 0" 0.
    (Fault.loss_probability Fault.empty)

let test_duplex_helpers () =
  let down = Fault.duplex_down ~a:3 ~b:7 ~at:500 in
  Alcotest.(check int) "two directions down" 2 (List.length down);
  Alcotest.(check bool) "both directions present" true
    (List.mem (Fault.Link_down ((3, 7), 500)) down
    && List.mem (Fault.Link_down ((7, 3), 500)) down);
  let up = Fault.duplex_up ~a:3 ~b:7 ~at:900 in
  Alcotest.(check bool) "both directions up" true
    (List.mem (Fault.Link_up ((3, 7), 900)) up
    && List.mem (Fault.Link_up ((7, 3), 900)) up)

let test_validate_topology () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let ok s = Result.is_ok (Fault.validate topo s) in
  Alcotest.(check bool) "existing link validates" true
    (ok (Fault.make [ Fault.Link_down ((hosts.(0), sw), 0) ]));
  Alcotest.(check bool) "missing link rejected" false
    (ok (Fault.make [ Fault.Link_down ((hosts.(0), hosts.(1)), 0) ]));
  Alcotest.(check bool) "stalling a switch validates" true
    (ok (Fault.make [ Fault.Switch_stall (sw, 0, 100) ]));
  Alcotest.(check bool) "stalling an endhost rejected" false
    (ok (Fault.make [ Fault.Switch_stall (hosts.(0), 0, 100) ]));
  Alcotest.(check bool) "loss needs no topology" true
    (ok (Fault.make [ Fault.Frame_loss 0.5 ]))

(* ------------------------------------------------------------------ *)
(* Fault windows and taint                                            *)
(* ------------------------------------------------------------------ *)

let test_windows () =
  let s =
    Fault.make
      [
        Fault.Link_down ((0, 4), 1_000);
        Fault.Link_up ((0, 4), 5_000);
        Fault.Switch_stall (4, 2_000, 500);
        Fault.Link_down ((1, 4), 8_000);
        Fault.Frame_loss 0.1;
      ]
  in
  let ws = Fault.windows s in
  Alcotest.(check int) "three windows (loss has none)" 3 (List.length ws);
  let find c = List.find (fun w -> w.Fault.w_component = c) ws in
  let closed = find (Fault.C_link (0, 4)) in
  Alcotest.(check int) "closed from" 1_000 closed.Fault.w_from;
  Alcotest.(check (option int)) "closed until" (Some 5_000)
    closed.Fault.w_until;
  let open_ended = find (Fault.C_link (1, 4)) in
  Alcotest.(check (option int)) "open-ended" None open_ended.Fault.w_until;
  let stall = find (Fault.C_switch 4) in
  Alcotest.(check (option int)) "stall until = at + duration" (Some 2_500)
    stall.Fault.w_until

let test_taints () =
  (* Two switches, two hosts each: the fault lives entirely on switch 1's
     side, so a packet that never leaves switch 0 is untouchable. *)
  let topo, hosts, sws =
    Workload.Topologies.line ~hosts_per_switch:2 ~switches:2 ()
  in
  let local = Network.Route.make topo [ hosts.(0).(0); sws.(0); hosts.(0).(1) ] in
  let far_link = (hosts.(1).(0), sws.(1)) in
  let closed =
    Fault.make
      [ Fault.Link_down (far_link, 1_000); Fault.Link_up (far_link, 5_000) ]
  in
  let touched =
    Network.Route.make topo
      [ hosts.(0).(0); sws.(0); sws.(1); hosts.(1).(0) ]
  in
  (* Settle margin: [1000, 5000] perturbs until 5000 + 4000 = 9000. *)
  Alcotest.(check bool) "inside the window" true
    (Fault.taints closed ~route:touched ~from:2_000 ~until:3_000);
  Alcotest.(check bool) "during the settle margin" true
    (Fault.taints closed ~route:touched ~from:9_000 ~until:9_500);
  Alcotest.(check bool) "after the settle margin" false
    (Fault.taints closed ~route:touched ~from:9_001 ~until:9_500);
  Alcotest.(check bool) "before the window" false
    (Fault.taints closed ~route:touched ~from:0 ~until:999);
  Alcotest.(check bool) "route avoiding both endpoints" false
    (Fault.taints closed ~route:local ~from:2_000 ~until:3_000);
  let forever = Fault.make [ Fault.Link_down (far_link, 1_000) ] in
  Alcotest.(check bool) "open-ended taints forever" true
    (Fault.taints forever ~route:touched ~from:1_000_000 ~until:2_000_000);
  let lossy = Fault.make [ Fault.Frame_loss 0.01 ] in
  Alcotest.(check bool) "any loss taints everything" true
    (Fault.taints lossy ~route:local ~from:0 ~until:1)

(* ------------------------------------------------------------------ *)
(* Simulator injection                                                *)
(* ------------------------------------------------------------------ *)

let single_flow_scenario () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 10)
          ~deadline:(Timeunit.ms 50) ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"solo" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  (Traffic.Scenario.make ~topo ~flows:[ flow ] (), hosts, sw)

let run_ms ?faults scenario ms =
  Sim.Netsim.run
    ~config:{ Sim.Sim_config.default with duration = Timeunit.ms ms }
    ?faults scenario

let test_sim_link_down_drop () =
  let scenario, hosts, sw = single_flow_scenario () in
  let faults =
    Fault.make ~policy:Fault.Drop
      [ Fault.Link_down ((hosts.(0), sw), Timeunit.ms 15) ]
  in
  let report = run_ms ~faults scenario 35 in
  (* Packets at 0 and 10 ms get through; 20 and 30 ms die at the dead
     first link. *)
  Alcotest.(check int) "4 released" 4 report.Sim.Netsim.packets_released;
  Alcotest.(check int) "2 completed" 2 report.Sim.Netsim.packets_completed;
  Alcotest.(check int) "2 fault drops" 2 report.Sim.Netsim.fault_drops;
  Alcotest.(check int) "queue drops are separate" 0
    report.Sim.Netsim.fragments_dropped;
  (* Pre-fault completions never overlapped the (open-ended) window. *)
  Alcotest.(check int) "untainted" 0 report.Sim.Netsim.tainted_completions

let test_sim_link_down_hold_recovers () =
  let scenario, hosts, sw = single_flow_scenario () in
  let faults =
    Fault.make
      (Fault.duplex_down ~a:hosts.(0) ~b:sw ~at:(Timeunit.ms 12)
      @ Fault.duplex_up ~a:hosts.(0) ~b:sw ~at:(Timeunit.ms 18))
  in
  let report = run_ms ~faults scenario 35 in
  Alcotest.(check int) "held frames are not lost" 0
    report.Sim.Netsim.fault_drops;
  Alcotest.(check int) "everything completes" 0
    (Sim.Collector.incomplete report.Sim.Netsim.collector);
  Alcotest.(check bool) "the held packet is tainted" true
    (report.Sim.Netsim.tainted_completions >= 1);
  Alcotest.(check int) "taint counter agrees"
    report.Sim.Netsim.tainted_completions
    (Sim.Collector.tainted_count report.Sim.Netsim.collector);
  (* The sim-vs-analysis cross-check survives the fault: journeys outside
     the fault window still respect the analytic bound, because tainted
     completions stay out of the response statistics. *)
  let bound =
    Experiments.Exp_common.worst_total (Analysis.Holistic.analyze scenario) 0
  in
  match Sim.Collector.max_response_flow report.Sim.Netsim.collector ~flow:0 with
  | None -> Alcotest.fail "no untainted journey survived"
  | Some worst ->
      Alcotest.(check bool)
        (Printf.sprintf "untainted max %d <= bound %d" worst bound)
        true (worst <= bound)

let test_sim_frame_loss () =
  let scenario, _, _ = single_flow_scenario () in
  let faults = Fault.make [ Fault.Frame_loss 1.0 ] in
  let report = run_ms ~faults scenario 35 in
  Alcotest.(check int) "nothing completes at p=1" 0
    report.Sim.Netsim.packets_completed;
  Alcotest.(check bool) "losses counted" true
    (report.Sim.Netsim.fault_drops >= report.Sim.Netsim.packets_released);
  (* Determinism: the loss stream is seeded from the sim seed. *)
  let again = run_ms ~faults scenario 35 in
  Alcotest.(check int) "deterministic" report.Sim.Netsim.fault_drops
    again.Sim.Netsim.fault_drops

let test_sim_switch_stall () =
  let scenario, _, sw = single_flow_scenario () in
  let faults =
    Fault.make [ Fault.Switch_stall (sw, Timeunit.ms 10, Timeunit.ms 5) ]
  in
  let report = run_ms ~faults scenario 35 in
  Alcotest.(check int) "stall loses nothing" 0 report.Sim.Netsim.fault_drops;
  Alcotest.(check int) "everything completes" 0
    (Sim.Collector.incomplete report.Sim.Netsim.collector);
  Alcotest.(check bool) "the delayed packet is tainted" true
    (report.Sim.Netsim.tainted_completions >= 1)

let test_sim_rejects_invalid_schedule () =
  let scenario, hosts, _ = single_flow_scenario () in
  let faults =
    Fault.make [ Fault.Link_down ((hosts.(0), hosts.(1)), 0) ]
  in
  Alcotest.(check bool) "validate gate" true
    (raises_invalid (fun () -> run_ms ~faults scenario 35))

(* ------------------------------------------------------------------ *)
(* Static survivability                                               *)
(* ------------------------------------------------------------------ *)

let test_survive_components () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let comps = Survive.components scenario in
  let links =
    List.filter (function Survive.Link _ -> true | _ -> false) comps
  in
  let switches =
    List.filter (function Survive.Switch _ -> true | _ -> false) comps
  in
  (* Figure 1: 8 undirected links, 3 software switches. *)
  Alcotest.(check int) "8 links" 8 (List.length links);
  Alcotest.(check int) "3 switches" 3 (List.length switches);
  List.iter
    (function
      | Survive.Link (a, b) ->
          Alcotest.(check bool) "undirected, small id first" true (a < b)
      | Survive.Switch _ -> ())
    comps

let test_survive_shed_order () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let flow ~id ~priority =
    Traffic.Flow.make ~id ~name:(Printf.sprintf "f%d" id)
      ~spec:(Workload.Voip.g711_spec ()) ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority
  in
  let flows = [ flow ~id:0 ~priority:3; flow ~id:1 ~priority:7;
                flow ~id:2 ~priority:3 ] in
  Alcotest.(check (list int))
    "lowest priority first, newest first within a tie" [ 2; 0; 1 ]
    (List.map (fun f -> f.Traffic.Flow.id) (Survive.shed_order flows))

(* The acceptance property: in every failure case, a flow the report says
   was rerouted must (a) avoid the failed components on its new route and
   (b) be schedulable when the surviving set is re-analyzed cold. *)
let test_survive_fig1_reroutes_check_cold () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let report = Survive.run ~k:1 scenario in
  Alcotest.(check bool) "base scenario is schedulable" true
    (Analysis.Holistic.is_schedulable report.Survive.base);
  Alcotest.(check int) "one case per component" 11
    (List.length report.Survive.cases);
  List.iter
    (fun (case : Survive.case_result) ->
      let name =
        String.concat "+"
          (List.map (Survive.component_name scenario) case.Survive.case)
      in
      let failed_nodes =
        List.concat_map
          (function Survive.Switch n -> [ n ] | Survive.Link _ -> [])
          case.Survive.case
      in
      let failed_links =
        List.concat_map
          (function
            | Survive.Link (a, b) -> [ (a, b); (b, a) ]
            | Survive.Switch _ -> [])
          case.Survive.case
      in
      let survivors =
        List.filter_map
          (fun (flow, fate) ->
            match fate with
            | Survive.Unaffected -> Some flow
            | Survive.Rerouted route ->
                List.iter
                  (fun hop ->
                    if List.mem hop failed_links then
                      Alcotest.failf "%s: reroute crosses the failed link"
                        name)
                  (Network.Route.hops route);
                List.iter
                  (fun n ->
                    if List.mem n failed_nodes then
                      Alcotest.failf "%s: reroute crosses the failed switch"
                        name)
                  (Network.Route.nodes route);
                Some (Analysis.Rerouting.with_route flow route)
            | Survive.Shed -> None)
          case.Survive.fates
      in
      match survivors with
      | [] -> ()
      | flows ->
          let switches =
            List.map
              (fun n -> (n, Traffic.Scenario.switch_model scenario n))
              (Traffic.Scenario.switch_nodes scenario)
          in
          let degraded =
            Traffic.Scenario.make ~switches
              ~topo:(Traffic.Scenario.topo scenario) ~flows ()
          in
          let cold = Analysis.Holistic.analyze degraded in
          Alcotest.(check bool)
            (name ^ ": surviving set is schedulable cold") true
            (Analysis.Holistic.is_schedulable cold))
    report.Survive.cases

let test_survive_matrix_consistent () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let report = Survive.run ~k:1 scenario in
  (* The matrix is the per-flow aggregate of the case fates. *)
  List.iter
    (fun (flow, verdict) ->
      let fates =
        List.map
          (fun c -> List.assq flow c.Survive.fates)
          report.Survive.cases
      in
      let shed_somewhere = List.mem Survive.Shed fates in
      let rerouted_somewhere =
        List.exists
          (function Survive.Rerouted _ -> true | _ -> false)
          fates
      in
      let expect =
        if shed_somewhere then Survive.Must_shed
        else if rerouted_somewhere then Survive.Survives_with_reroute
        else Survive.Survives
      in
      Alcotest.(check bool)
        (flow.Traffic.Flow.name ^ ": matrix matches fates") true
        (verdict = expect);
      Alcotest.(check bool)
        (flow.Traffic.Flow.name ^ ": shed set matches matrix")
        shed_somewhere
        (List.memq flow report.Survive.shed_set))
    report.Survive.matrix

let test_survive_k_bounds () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  Alcotest.(check bool) "negative k rejected" true
    (raises_invalid (fun () -> Survive.run ~k:(-1) scenario));
  let r0 = Survive.run ~k:0 scenario in
  Alcotest.(check int) "k=0 has no cases" 0 (List.length r0.Survive.cases);
  Alcotest.(check bool) "k=0 sheds nothing" true (r0.Survive.shed_set = [])

let tests =
  [
    Alcotest.test_case "schedule validation" `Quick test_make_validation;
    Alcotest.test_case "duplex helpers" `Quick test_duplex_helpers;
    Alcotest.test_case "validate against topology" `Quick
      test_validate_topology;
    Alcotest.test_case "fault windows" `Quick test_windows;
    Alcotest.test_case "taint is conservative" `Quick test_taints;
    Alcotest.test_case "sim: link down, drop policy" `Quick
      test_sim_link_down_drop;
    Alcotest.test_case "sim: link down, hold + recovery" `Quick
      test_sim_link_down_hold_recovers;
    Alcotest.test_case "sim: frame loss" `Quick test_sim_frame_loss;
    Alcotest.test_case "sim: switch stall" `Quick test_sim_switch_stall;
    Alcotest.test_case "sim: invalid schedule rejected" `Quick
      test_sim_rejects_invalid_schedule;
    Alcotest.test_case "survive: component enumeration" `Quick
      test_survive_components;
    Alcotest.test_case "survive: shed order" `Quick test_survive_shed_order;
    Alcotest.test_case "survive: fig1 reroutes re-check cold" `Slow
      test_survive_fig1_reroutes_check_cold;
    Alcotest.test_case "survive: matrix consistent with fates" `Slow
      test_survive_matrix_consistent;
    Alcotest.test_case "survive: k bounds" `Quick test_survive_k_bounds;
  ]
