(* Admission-control sessions: warm-started fixpoints must be
   observationally identical to cold batch analysis, traces must replay
   deterministically, and user-level mistakes must reject (GMF014/GMF015/
   lint) instead of raising. *)

module Session = Gmf_admctl.Session
module Replay = Gmf_admctl.Replay

let trace_of_string text =
  match Scenario_io.Admtrace.of_string text with
  | Ok t -> t
  | Error e -> Alcotest.failf "trace parse: %a" Scenario_io.Parse.pp_error e

let scenario_of_string text =
  match Scenario_io.Parse.scenario_of_string text with
  | Ok s -> s
  | Error e ->
      Alcotest.failf "scenario parse: %a" Scenario_io.Parse.pp_error e

(* One switch, four phones — small enough that every event converges. *)
let star_prologue =
  "node h0 endhost\nnode h1 endhost\nnode h2 endhost\nnode h3 endhost\n\
   node sw switch\n\
   duplex h0 sw rate=100M prop=2us\nduplex h1 sw rate=100M prop=2us\n\
   duplex h2 sw rate=100M prop=2us\nduplex h3 sw rate=100M prop=2us\n\
   switch sw ports=4 cpus=1 croute=2.7us csend=1us\n"

(* Two stars with no link between them: flows of one cluster cannot
   interfere with the other, so churn on one side warm-starts the other. *)
let clusters_prologue =
  "node a0 endhost\nnode a1 endhost\nnode b0 endhost\nnode b1 endhost\n\
   node swa switch\nnode swb switch\n\
   duplex a0 swa rate=100M\nduplex a1 swa rate=100M\n\
   duplex b0 swb rate=100M\nduplex b1 swb rate=100M\n\
   switch swa ports=2 cpus=1 croute=2.7us csend=1us\n\
   switch swb ports=2 cpus=1 croute=2.7us csend=1us\n"

let admit_block ?(prio = 5) ~name ~src ~dst () =
  Printf.sprintf
    "admit flow %s from=%s to=%s prio=%d encap=rtp\n\
    \  frame period=20ms deadline=150ms payload=160B\nend\n"
    name src dst prio

(* ------------------------------------------------------------------ *)
(* Session basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_replay_lifecycle () =
  let trace =
    trace_of_string
      (star_prologue
      ^ admit_block ~name:"c0" ~src:"h0" ~dst:"h1" ()
      ^ admit_block ~name:"c1" ~src:"h2" ~dst:"h3" ~prio:6 ()
      ^ "remove c0\nquery\n")
  in
  let { Replay.outcomes; session } = Replay.run trace in
  Alcotest.(check (list bool))
    "accept flags" [ true; true; true; true ]
    (List.map (fun (o : Session.outcome) -> o.Session.accepted) outcomes);
  Alcotest.(check (list int))
    "flow counts" [ 1; 2; 1; 1 ]
    (List.map (fun (o : Session.outcome) -> o.Session.flow_count) outcomes);
  Alcotest.(check int) "final flows" 1 (Session.flow_count session);
  Alcotest.(check (list string))
    "final names" [ "c1" ]
    (List.map (fun f -> f.Traffic.Flow.name) (Session.flows session));
  Alcotest.(check bool) "final verdict" true
    (Analysis.Holistic.is_schedulable (Session.report session));
  let s = Session.summary session in
  Alcotest.(check int) "events" 4 s.Session.events;
  Alcotest.(check int) "query runs no fixpoint" 0
    (List.nth outcomes 3).Session.rounds

let test_duplicate_id_rejects () =
  let scenario =
    scenario_of_string
      (star_prologue ^ "flow c0 from=h0 to=h1 prio=7\n"
     ^ "  frame period=20ms deadline=150ms payload=160B\nend\n")
  in
  let flow = List.hd (Traffic.Scenario.flows scenario) in
  let session =
    Session.create ~topo:(Traffic.Scenario.topo scenario) ()
  in
  let first = Session.apply session (Session.Admit flow) in
  Alcotest.(check bool) "first admit" true first.Session.accepted;
  (* Same id again (even under another parse) must reject, not raise. *)
  let dup = Session.apply session (Session.Admit flow) in
  Alcotest.(check bool) "duplicate rejected" false dup.Session.accepted;
  Alcotest.(check int) "no fixpoint ran" 0 dup.Session.rounds;
  Alcotest.(check (list string))
    "GMF014" [ "GMF014" ]
    (List.map (fun d -> d.Gmf_diag.code) dup.Session.diagnostics);
  Alcotest.(check int) "set untouched" 1 (Session.flow_count session)

let test_unknown_id_rejects () =
  let trace = trace_of_string star_prologue in
  let session =
    Session.create ~switches:trace.Scenario_io.Admtrace.switches
      ~topo:trace.Scenario_io.Admtrace.topo ()
  in
  let rm = Session.apply session (Session.Remove 9) in
  Alcotest.(check bool) "remove rejected" false rm.Session.accepted;
  Alcotest.(check (list string))
    "GMF015" [ "GMF015" ]
    (List.map (fun d -> d.Gmf_diag.code) rm.Session.diagnostics);
  let scenario =
    scenario_of_string
      (star_prologue ^ "flow ghost from=h0 to=h1 prio=7\n"
     ^ "  frame period=20ms deadline=150ms payload=160B\nend\n")
  in
  let ghost = List.hd (Traffic.Scenario.flows scenario) in
  let up = Session.apply session (Session.Update ghost) in
  Alcotest.(check bool) "update rejected" false up.Session.accepted;
  Alcotest.(check (list string))
    "GMF015 again" [ "GMF015" ]
    (List.map (fun d -> d.Gmf_diag.code) up.Session.diagnostics)

let test_lint_gate_rejects_duplicate_name () =
  let trace =
    trace_of_string
      (star_prologue
      ^ admit_block ~name:"c0" ~src:"h0" ~dst:"h1" ()
      ^ admit_block ~name:"c0" ~src:"h2" ~dst:"h3" ())
  in
  let { Replay.outcomes; session } = Replay.run trace in
  let dup = List.nth outcomes 1 in
  Alcotest.(check bool) "rejected" false dup.Session.accepted;
  Alcotest.(check int) "no fixpoint" 0 dup.Session.rounds;
  Alcotest.(check bool) "GMF001 present" true
    (List.exists
       (fun d -> d.Gmf_diag.code = "GMF001")
       dup.Session.diagnostics);
  Alcotest.(check int) "set untouched" 1 (Session.flow_count session)

(* ------------------------------------------------------------------ *)
(* Warm-start bookkeeping                                             *)
(* ------------------------------------------------------------------ *)

let test_start_kinds () =
  (* Disjoint clusters: removing cluster A's only flow leaves cluster B
     outside the interference closure, so the refresh starts warm.  On a
     shared star the closure swallows everything — cold reset. *)
  let clusters =
    trace_of_string
      (clusters_prologue
      ^ admit_block ~name:"fa" ~src:"a0" ~dst:"a1" ()
      ^ admit_block ~name:"fb" ~src:"b0" ~dst:"b1" ~prio:6 ()
      ^ "remove fa\n")
  in
  let { Replay.outcomes; _ } = Replay.run clusters in
  Alcotest.(check string) "clustered removal stays warm" "warm"
    (Format.asprintf "%a" Session.pp_start
       (List.nth outcomes 2).Session.start);
  let star =
    trace_of_string
      (star_prologue
      ^ admit_block ~name:"c0" ~src:"h0" ~dst:"h1" ()
      ^ admit_block ~name:"c1" ~src:"h2" ~dst:"h3" ~prio:6 ()
      ^ "remove c0\n")
  in
  let { Replay.outcomes; _ } = Replay.run star in
  Alcotest.(check string) "shared-switch removal resets cold" "cold"
    (Format.asprintf "%a" Session.pp_start
       (List.nth outcomes 2).Session.start);
  (* With warm starts disabled every fixpoint event is cold. *)
  let { Replay.outcomes; _ } = Replay.run ~warm:false star in
  List.iter
    (fun o ->
      if o.Session.rounds > 0 then
        Alcotest.(check string) "cold session" "cold"
          (Format.asprintf "%a" Session.pp_start o.Session.start))
    outcomes

(* ------------------------------------------------------------------ *)
(* Degraded mode: fail link / restore link                            *)
(* ------------------------------------------------------------------ *)

let triangle_prologue =
  "node h0 endhost\nnode h1 endhost\n\
   node s0 switch\nnode s1 switch\nnode s2 switch\n\
   duplex h0 s0 rate=100M\nduplex h1 s1 rate=100M\n\
   duplex s0 s1 rate=100M\nduplex s0 s2 rate=100M\nduplex s2 s1 rate=100M\n\
   switch s0 ports=3 cpus=1 croute=2.7us csend=1us\n\
   switch s1 ports=3 cpus=1 croute=2.7us csend=1us\n\
   switch s2 ports=2 cpus=1 croute=2.7us csend=1us\n"

let test_fail_and_restore_link () =
  let prefix =
    triangle_prologue
    ^ "admit flow f from=h0 to=h1 route=h0,s0,s1,h1 prio=5 encap=rtp\n\
      \  frame period=20ms deadline=150ms payload=160B\nend\n\
       fail link s0 s1\n"
  in
  (* Stop right after the fail: the outage must be on the books. *)
  let { Replay.session = degraded; _ } =
    Replay.run (trace_of_string prefix)
  in
  Alcotest.(check (list (pair int int)))
    "failed link recorded" [ (2, 3) ]
    (Session.failed_links degraded);
  let trace =
    trace_of_string
      (prefix
      ^ "admit flow g from=h0 to=h1 route=h0,s0,s1,h1 prio=4 encap=udp\n\
        \  frame period=20ms deadline=150ms payload=160B\nend\n\
         fail link s0 s1\n\
         restore link s2 s1\n\
         restore link s0 s1\n")
  in
  let { Replay.outcomes; session } = Replay.run trace in
  let nth = List.nth outcomes in
  (* #1 fail: the pinned flow is rerouted over s2 and stays admitted. *)
  let fail = nth 1 in
  Alcotest.(check bool) "fail accepted" true fail.Session.accepted;
  (match fail.Session.degradation with
  | Some { Session.rerouted = [ f ]; shed = [] } ->
      Alcotest.(check (list bool))
        "reroute avoids the failed link" [ false ]
        (List.map
           (fun (r : Traffic.Flow.t) ->
             List.exists
               (fun hop -> hop = (2, 3) || hop = (3, 2))
               (Network.Route.hops r.Traffic.Flow.route))
           [ f ])
  | _ -> Alcotest.fail "expected one rerouted flow, none shed");
  (* #2 admit over the failed link rejects with GMF016, no fixpoint. *)
  let late = nth 2 in
  Alcotest.(check bool) "admit over failure rejected" false
    late.Session.accepted;
  Alcotest.(check (list string))
    "GMF016" [ "GMF016" ]
    (List.map (fun d -> d.Gmf_diag.code) late.Session.diagnostics);
  Alcotest.(check int) "no fixpoint" 0 late.Session.rounds;
  (* #3 duplicate fail and #4 restore of a healthy link both reject. *)
  Alcotest.(check (list bool))
    "duplicate fail / bogus restore rejected" [ false; false ]
    [ (nth 3).Session.accepted; (nth 4).Session.accepted ];
  (* #5 restore succeeds without a fixpoint; the flow keeps its degraded
     route until re-admitted. *)
  let restore = nth 5 in
  Alcotest.(check bool) "restore accepted" true restore.Session.accepted;
  Alcotest.(check int) "restore runs no fixpoint" 0 restore.Session.rounds;
  Alcotest.(check (list (pair int int)))
    "no failed links left" []
    (Session.failed_links session);
  match Session.flows session with
  | [ f ] ->
      Alcotest.(check bool) "still on the detour via s2" true
        (Network.Route.mem f.Traffic.Flow.route 4)
  | flows -> Alcotest.failf "expected one flow, got %d" (List.length flows)

let test_summary_counters_match_metrics () =
  let reg = Gmf_obs.Metrics.default in
  Gmf_obs.Metrics.set_enabled reg true;
  Gmf_obs.Metrics.reset reg;
  Fun.protect
    ~finally:(fun () -> Gmf_obs.Metrics.set_enabled reg false)
    (fun () ->
      let trace =
        trace_of_string
          (star_prologue
          ^ admit_block ~name:"c0" ~src:"h0" ~dst:"h1" ()
          ^ admit_block ~name:"c1" ~src:"h2" ~dst:"h3" ~prio:6 ()
          ^ "remove c0\nquery\n")
      in
      let { Replay.session; _ } = Replay.run ~shadow:true trace in
      let s = Session.summary session in
      let counter name =
        Gmf_obs.Metrics.counter_value (Gmf_obs.Metrics.counter reg name)
      in
      Alcotest.(check int) "admctl.events" s.Session.events
        (counter "admctl.events");
      Alcotest.(check int) "admctl.warm_hits" s.Session.warm_hits
        (counter "admctl.warm_hits");
      Alcotest.(check int) "admctl.cold_resets" s.Session.cold_resets
        (counter "admctl.cold_resets");
      Alcotest.(check int) "admctl.rounds_saved" s.Session.rounds_saved
        (counter "admctl.rounds_saved");
      (* two admits and one remove run a fixpoint; the query does not *)
      Alcotest.(check int) "fixpoints = warm + cold" 3
        (s.Session.warm_hits + s.Session.cold_resets))

(* ------------------------------------------------------------------ *)
(* Warm == cold (the tentpole property)                               *)
(* ------------------------------------------------------------------ *)

let bounds_of report =
  List.map
    (fun res ->
      ( res.Analysis.Result_types.flow.Traffic.Flow.id,
        Array.to_list
          (Array.map
             (fun fr -> fr.Analysis.Result_types.total)
             res.Analysis.Result_types.frames) ))
    report.Analysis.Holistic.results

let verdict_kind = function
  | Analysis.Holistic.Schedulable -> "schedulable"
  | Analysis.Holistic.Deadline_miss _ -> "deadline-miss"
  | Analysis.Holistic.Analysis_failed _ -> "failed"
  | Analysis.Holistic.No_fixed_point _ -> "divergent"

(* Random traces over a switch triangle: interleaved admits (occasionally
   heavy enough to be rejected), removals, updates, queries and
   fail/restore of the switch-to-switch links.  The third switch s2 gives
   the cross-cluster flows an alternate path, so a [fail link s0 s1]
   exercises the reroute-and-warm-start machinery, not just shedding. *)
let gen_trace_text rng =
  let open Gmf_util in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "node h0 endhost\nnode h1 endhost\nnode h2 endhost\nnode h3 endhost\n\
     node s0 switch\nnode s1 switch\nnode s2 switch\n\
     duplex h0 s0 rate=100M\nduplex h1 s0 rate=100M\n\
     duplex h2 s1 rate=100M\nduplex h3 s1 rate=100M\n\
     duplex s0 s1 rate=100M\nduplex s0 s2 rate=100M\n\
     duplex s2 s1 rate=100M\n\
     switch s0 ports=4 cpus=1 croute=2.7us csend=1us\n\
     switch s1 ports=4 cpus=1 croute=2.7us csend=1us\n\
     switch s2 ports=2 cpus=1 croute=2.7us csend=1us\n";
  let hosts = [| "h0"; "h1"; "h2"; "h3" |] in
  let active = ref [] in
  let fresh = ref 0 in
  let flow_block keyword name =
    let src = Rng.pick rng hosts in
    let dst = ref (Rng.pick rng hosts) in
    while !dst = src do dst := Rng.pick rng hosts done;
    Buffer.add_string buf
      (Printf.sprintf "%s flow %s from=%s to=%s prio=%d encap=rtp\n" keyword
         name src !dst (Rng.int rng 8));
    for _ = 0 to Rng.int rng 2 do
      Buffer.add_string buf
        (Printf.sprintf
           "  frame period=%dms deadline=%dms jitter=%dus payload=%dB\n"
           (1 + Rng.int rng 10)
           (1 + Rng.int rng 30)
           (Rng.int rng 500)
           (60 + Rng.int rng 20000))
    done;
    Buffer.add_string buf "end\n"
  in
  (* Fault churn on the relay links.  Duplicate fails and restores of a
     healthy link are generated on purpose: the session must reject them
     (GMF016) without raising, and the shadow check still applies to the
     fixpoints the valid ones run. *)
  let relay_links = [| ("s0", "s1"); ("s0", "s2"); ("s2", "s1") |] in
  let failed = ref [] in
  let n_events = 4 + Rng.int rng 8 in
  for _ = 1 to n_events do
    match Rng.int rng 8 with
    | 0 | 1 | 2 ->
        let name = Printf.sprintf "f%d" !fresh in
        incr fresh;
        flow_block "admit" name;
        if not (List.mem name !active) then active := name :: !active
    | 3 when !active <> [] ->
        let name = List.nth !active (Rng.int rng (List.length !active)) in
        active := List.filter (fun n -> n <> name) !active;
        Buffer.add_string buf (Printf.sprintf "remove %s\n" name)
    | 4 when !active <> [] ->
        let name = List.nth !active (Rng.int rng (List.length !active)) in
        flow_block "update" name
    | 5 ->
        let (a, b) = Rng.pick rng relay_links in
        if not (List.mem (a, b) !failed) then failed := (a, b) :: !failed;
        Buffer.add_string buf (Printf.sprintf "fail link %s %s\n" a b)
    | 6 ->
        let (a, b) = Rng.pick rng relay_links in
        failed := List.filter (fun l -> l <> (a, b)) !failed;
        Buffer.add_string buf (Printf.sprintf "restore link %s %s\n" a b)
    | _ -> Buffer.add_string buf "query\n"
  done;
  Buffer.contents buf

let prop_warm_equals_cold =
  QCheck.Test.make ~name:"warm session == cold batch on random traces"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Gmf_util.Rng.create ~seed in
      let text = gen_trace_text rng in
      let trace = trace_of_string text in
      let { Replay.outcomes; session } = Replay.run ~shadow:true trace in
      (* 1. every warm fixpoint agreed with its cold shadow *)
      List.iter
        (fun o ->
          match o.Session.shadow with
          | Some { Session.equivalent = false; cold_rounds } ->
              QCheck.Test.fail_reportf
                "event #%d (%s): warm disagrees with cold (%d rounds)@\n%s"
                o.Session.seq o.Session.label cold_rounds text
          | _ -> ())
        outcomes;
      (* 2. the committed state equals a from-scratch analysis of the
         final admitted set *)
      let final = Session.flows session in
      if final = [] then true
      else begin
        let scenario =
          Traffic.Scenario.make ~switches:trace.Scenario_io.Admtrace.switches
            ~topo:trace.Scenario_io.Admtrace.topo ~flows:final ()
        in
        let cold = Analysis.Holistic.analyze scenario in
        let warm = Session.report session in
        if
          verdict_kind cold.Analysis.Holistic.verdict
          <> verdict_kind warm.Analysis.Holistic.verdict
        then
          QCheck.Test.fail_reportf "final verdicts differ: %s vs %s@\n%s"
            (verdict_kind warm.Analysis.Holistic.verdict)
            (verdict_kind cold.Analysis.Holistic.verdict)
            text
        else if bounds_of cold <> bounds_of warm then
          QCheck.Test.fail_reportf "final bounds differ@\n%s" text
        else true
      end)

let prop_trace_parser_total =
  QCheck.Test.make ~name:"admtrace parser never raises on garbage"
    ~count:300
    QCheck.(string_of_size (Gen.int_range 0 400))
    (fun text ->
      match Scenario_io.Admtrace.of_string text with
      | Ok _ -> true
      | Error e -> e.Scenario_io.Parse.line >= 0)

(* ------------------------------------------------------------------ *)
(* Trace parse errors (golden caret diagnostics)                      *)
(* ------------------------------------------------------------------ *)

let check_parse_error ~text ~rendered () =
  match Scenario_io.Admtrace.of_string text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      Alcotest.(check string)
        "rendering" rendered
        (Format.asprintf "%a" Scenario_io.Parse.pp_error e)

let test_parse_errors () =
  (* Topology after the first event: the prologue is frozen. *)
  check_parse_error
    ~text:
      (star_prologue
      ^ admit_block ~name:"c0" ~src:"h0" ~dst:"h1" ()
      ^ "node late endhost\n")
    ~rendered:
      "line 14: topology directives must precede the first event\n\
      \  node late endhost"
    ();
  (* Removing a name that is not active points a caret at the name. *)
  check_parse_error ~text:(star_prologue ^ "remove nobody\n")
    ~rendered:
      "line 11, column 8: remove of a flow that is not active: \"nobody\"\n\
      \  remove nobody\n\
      \         ^"
    ();
  (* The scenario keyword 'flow' is redirected to 'admit flow'. *)
  check_parse_error
    ~text:(star_prologue ^ "flow c0 from=h0 to=h1 prio=7\n")
    ~rendered:
      "line 11: admission traces admit flows with 'admit flow ...', not \
       'flow ...'\n\
      \  flow c0 from=h0 to=h1 prio=7"
    ();
  (* Unclosed admit block. *)
  check_parse_error
    ~text:(star_prologue ^ "admit flow c0 from=h0 to=h1 prio=7\n")
    ~rendered:"line 11: flow \"c0\" not closed by 'end'\n\
              \  admit flow c0 from=h0 to=h1 prio=7"
    ()

(* ------------------------------------------------------------------ *)
(* Analysis.Admission duplicate-id satellite                          *)
(* ------------------------------------------------------------------ *)

let test_admission_duplicate_id () =
  let scenario =
    scenario_of_string
      (star_prologue ^ "flow c0 from=h0 to=h1 prio=7\n"
     ^ "  frame period=20ms deadline=150ms payload=160B\nend\n")
  in
  let candidate = List.hd (Traffic.Scenario.flows scenario) in
  let decision = Analysis.Admission.admit scenario ~candidate in
  Alcotest.(check bool) "rejected" false decision.Analysis.Admission.admitted;
  Alcotest.(check int) "no fixpoint" 0
    decision.Analysis.Admission.report.Analysis.Holistic.rounds;
  Alcotest.(check (list string))
    "GMF014" [ "GMF014" ]
    (List.map
       (fun d -> d.Gmf_diag.code)
       decision.Analysis.Admission.diagnostics);
  (match decision.Analysis.Admission.report.Analysis.Holistic.verdict with
  | Analysis.Holistic.Analysis_failed [ _ ] -> ()
  | v ->
      Alcotest.failf "expected one synthetic failure, got %a"
        Analysis.Holistic.pp_verdict v);
  (* the raising variant keeps the historical behaviour *)
  match Analysis.Admission.admit_exn scenario ~candidate with
  | _ -> Alcotest.fail "admit_exn should raise on a duplicate id"
  | exception Invalid_argument _ -> ()

let tests =
  [
    Alcotest.test_case "replay lifecycle" `Quick test_replay_lifecycle;
    Alcotest.test_case "duplicate id rejects (GMF014)" `Quick
      test_duplicate_id_rejects;
    Alcotest.test_case "unknown id rejects (GMF015)" `Quick
      test_unknown_id_rejects;
    Alcotest.test_case "lint gate rejects duplicate name" `Quick
      test_lint_gate_rejects_duplicate_name;
    Alcotest.test_case "warm/cold start kinds" `Quick test_start_kinds;
    Alcotest.test_case "fail/restore link lifecycle" `Quick
      test_fail_and_restore_link;
    Alcotest.test_case "summary matches metrics counters" `Quick
      test_summary_counters_match_metrics;
    Alcotest.test_case "trace parse errors (caret goldens)" `Quick
      test_parse_errors;
    Alcotest.test_case "Admission.admit duplicate id" `Quick
      test_admission_duplicate_id;
    QCheck_alcotest.to_alcotest prop_warm_equals_cold;
    QCheck_alcotest.to_alcotest prop_trace_parser_total;
  ]
