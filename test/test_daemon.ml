(* Gmf_daemon: wire codec, journal durability, supervised workers,
   and the daemon's three robustness pillars driven end-to-end over a
   real Unix socket — transcript parity with in-process replay, kill -9
   crash recovery via journal replay, and explicit overload shedding.

   Daemon tests fork a real gmfnetd server process (Unix._exit in the
   child keeps the test runner's state out of it) and talk to it with
   Gmf_daemon.Client.  Everything runs under a per-process temp root. *)

module Jsonl = Scenario_io.Admtrace_jsonl
module Journal = Gmf_daemon.Journal
module Server = Gmf_daemon.Server
module Client = Gmf_daemon.Client
module Worker = Gmf_daemon.Worker
module Session = Gmf_admctl.Session
module Replay = Gmf_admctl.Replay
module Persistent = Gmf_exec.Persistent

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------------- scratch dirs and daemon lifecycle ----------------- *)

let tmp_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "gmfnetd-test-%d" (Unix.getpid ()))

let rec mkdirs dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Filename.concat tmp_root (string_of_int !n) in
    mkdirs d;
    d

let start_daemon cfg =
  match Unix.fork () with
  | 0 ->
      (try Server.run cfg with _ -> ());
      Unix._exit 0
  | pid ->
      (* A stale socket file can survive kill -9, so poll with a real
         ping, not file existence. *)
      let rec wait n =
        if n <= 0 then Alcotest.fail "gmfnetd did not come up"
        else
          let ok =
            match Client.connect cfg.Server.socket_path with
            | Error _ -> false
            | Ok c ->
                let r = Client.request c Jsonl.Ping in
                Client.close c;
                r = Ok Jsonl.Pong
          in
          if not ok then begin
            Unix.sleepf 0.02;
            wait (n - 1)
          end
      in
      wait 250;
      pid

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with _ -> ());
  ignore (Unix.waitpid [] pid)

let kill9_daemon pid =
  (try Unix.kill pid Sys.sigkill with _ -> ());
  ignore (Unix.waitpid [] pid)

(* ---------------- traces and in-process references ------------------ *)

(* Random churn over two clustered switches: admits (some heavy enough
   to be rejected), removals, updates, queries.  Deterministic per
   seed, so daemon and in-process replays see the same trace. *)
let gen_trace_text seed =
  let open Gmf_util in
  let rng = Rng.create ~seed in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "node h0 endhost\nnode h1 endhost\nnode h2 endhost\nnode h3 endhost\n\
     node s0 switch\nnode s1 switch\n\
     duplex h0 s0 rate=100M\nduplex h1 s0 rate=100M\n\
     duplex h2 s1 rate=100M\nduplex h3 s1 rate=100M\n\
     duplex s0 s1 rate=100M\n\
     switch s0 ports=3 cpus=1 croute=2.7us csend=1us\n\
     switch s1 ports=3 cpus=1 croute=2.7us csend=1us\n";
  let hosts = [| "h0"; "h1"; "h2"; "h3" |] in
  let active = ref [] in
  let fresh = ref 0 in
  let flow_block keyword name =
    let src = Rng.pick rng hosts in
    let dst = ref (Rng.pick rng hosts) in
    while !dst = src do
      dst := Rng.pick rng hosts
    done;
    Printf.bprintf buf "%s flow %s from=%s to=%s prio=%d encap=udp\n" keyword
      name src !dst (Rng.int rng 8);
    for _ = 0 to Rng.int rng 2 do
      Printf.bprintf buf
        "  frame period=%dms deadline=%dms jitter=%dus payload=%dB\n"
        (2 + Rng.int rng 10)
        (1 + Rng.int rng 40)
        (Rng.int rng 500)
        (60 + Rng.int rng 12000)
    done;
    Buffer.add_string buf "end\n"
  in
  let n_events = 4 + Rng.int rng 8 in
  for _ = 1 to n_events do
    match Rng.int rng 6 with
    | 0 | 1 | 2 ->
        let name = Printf.sprintf "f%d" !fresh in
        incr fresh;
        flow_block "admit" name;
        active := name :: !active
    | 3 when !active <> [] ->
        let name = List.nth !active (Rng.int rng (List.length !active)) in
        active := List.filter (fun n -> n <> name) !active;
        Printf.bprintf buf "remove %s\n" name
    | 4 when !active <> [] ->
        let name = List.nth !active (Rng.int rng (List.length !active)) in
        flow_block "update" name
    | _ -> Buffer.add_string buf "query\n"
  done;
  Buffer.contents buf

let parse_trace text =
  match Scenario_io.Admtrace.of_string text with
  | Ok t -> t
  | Error e ->
      Alcotest.fail
        (Format.asprintf "trace did not parse: %a" Scenario_io.Parse.pp_error e)

(* The uninterrupted in-process run: per-event (transcript line,
   session fingerprint after the event), final fingerprint, summary. *)
let reference text =
  let trace = parse_trace text in
  let session =
    Session.create ~switches:trace.Scenario_io.Admtrace.switches
      ~topo:trace.Scenario_io.Admtrace.topo ()
  in
  let steps =
    List.map
      (fun (_line, ev) ->
        let o = Session.apply session (Replay.session_event ev) in
        (Replay.outcome_line o, Session.fingerprint session))
      trace.Scenario_io.Admtrace.events
  in
  let summary =
    Format.asprintf "%a" Replay.pp_summary (Session.summary session)
  in
  (steps, Session.fingerprint session, summary)

(* ---------------- wire codec ---------------------------------------- *)

let test_codec_roundtrip () =
  let requests =
    [
      Jsonl.Open
        {
          session = "s-1.x";
          topology = "node a endhost\nnode b switch\n";
          verify = true;
          explain = false;
          cold = true;
          survivable = Some 2;
          throttle_s = 0.25;
        };
      Jsonl.Open
        {
          session = "d";
          topology = "";
          verify = false;
          explain = false;
          cold = false;
          survivable = None;
          throttle_s = 0.;
        };
      Jsonl.Event { text = "admit flow f0 from=a to=b prio=1 encap=udp\nend" };
      Jsonl.Event { text = "weird \"quotes\" \\ and \t control \x01 bytes" };
      Jsonl.Summary;
      Jsonl.Fingerprint;
      Jsonl.Ping;
      Jsonl.Close;
    ]
  in
  List.iter
    (fun r ->
      let line = Jsonl.encode_request r in
      Alcotest.(check bool)
        (Printf.sprintf "request round-trips: %s" line)
        true
        (Jsonl.decode_request line = Ok r))
    requests;
  let responses =
    [
      Jsonl.Opened { session = "s"; replayed = 7 };
      Jsonl.Outcome
        {
          seq = 3;
          label = "admit f0";
          accepted = false;
          text = "#03 admit f0 | rejected | ...\n     error[GMF001] dup";
        };
      Jsonl.Summary_is { text = "  events           8\n" };
      Jsonl.Fingerprint_is { digest = "abcd"; events = 4 };
      Jsonl.Pong;
      Jsonl.Closed;
      Jsonl.Rejected { code = Jsonl.code_overloaded; message = "queue full" };
    ]
  in
  List.iter
    (fun r ->
      let line = Jsonl.encode_response r in
      Alcotest.(check bool)
        (Printf.sprintf "response round-trips: %s" line)
        true
        (Jsonl.decode_response line = Ok r))
    responses

let test_codec_canonical_and_errors () =
  let open_line =
    Jsonl.encode_request
      (Jsonl.Open
         {
           session = "s";
           topology = "t";
           verify = false;
           explain = false;
           cold = false;
           survivable = None;
           throttle_s = 0.;
         })
  in
  (* Canonical form omits default-valued fields. *)
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and hl = String.length open_line in
        let rec go i =
          i + nl <= hl && (String.sub open_line i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s omitted from %s" needle open_line)
        false contains)
    [ "verify"; "explain"; "cold"; "survivable"; "throttle" ];
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" line)
        true
        (Result.is_error (Jsonl.decode_request line)))
    [ ""; "{"; "[1,2]"; "42"; {|{"op":"nope"}|}; {|{"op":"open"}|} ]

let test_json_parser () =
  let open Jsonl.Json in
  (match of_string {| {"a":[1,2.5,true,null],"b":"xé\n"} |} with
  | Ok (Obj [ ("a", Arr [ Int 1; Float 2.5; Bool true; Null ]); ("b", Str s) ])
    ->
      Alcotest.(check string) "utf8 escape decodes" "x\xc3\xa9\n" s
  | Ok v -> Alcotest.fail ("unexpected parse: " ^ to_string v)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (Result.is_error (of_string "{} x"));
  (* Printer/parser round-trip on an escaping-heavy value. *)
  let v =
    Obj [ ("k\"ey", Str "a\nb\tc\\d\x01"); ("n", Arr [ Int (-3); Float 0.5 ]) ]
  in
  Alcotest.(check bool) "print/parse round-trip" true
    (of_string (to_string v) = Ok v)

(* ---------------- journal -------------------------------------------- *)

let test_journal_names () =
  List.iter
    (fun (name, want) ->
      Alcotest.(check bool) (Printf.sprintf "valid_name %S" name) want
        (Journal.valid_name name))
    [
      ("ok-1.x_Y", true); ("a", true); ("", false); ("a/b", false);
      (".hidden", false); ("a b", false); (String.make 129 'a', false);
    ]

let test_journal_torn_tail () =
  let dir = fresh_dir () in
  let j, recovered = Journal.open_ ~dir ~session:"s" in
  Alcotest.(check (list string)) "fresh journal is empty" [] recovered;
  Journal.append j "alpha";
  Journal.append j "beta";
  let path = Journal.path j in
  Journal.close j;
  (* Simulate a crash mid-append: a trailing fragment without newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "torn-fragm";
  close_out oc;
  Alcotest.(check (list string))
    "load drops the torn tail" [ "alpha"; "beta" ]
    (Journal.load ~dir ~session:"s");
  let j2, recovered2 = Journal.open_ ~dir ~session:"s" in
  Alcotest.(check (list string))
    "open recovers complete lines" [ "alpha"; "beta" ] recovered2;
  Journal.append j2 "gamma";
  Alcotest.(check int) "entries counts recovered + appended" 3
    (Journal.entries j2);
  Journal.close j2;
  (* The torn fragment must not fuse with the post-recovery append. *)
  Alcotest.(check (list string))
    "append after recovery is clean" [ "alpha"; "beta"; "gamma" ]
    (Journal.load ~dir ~session:"s")

(* ---------------- persistent workers --------------------------------- *)

let test_persistent_worker () =
  let w =
    Persistent.spawn
      ~init:(fun () -> ref 0)
      ~handle:(fun st x ->
        if x = 13 then failwith "unlucky";
        if x = 99 then Unix._exit 3;
        st := !st + x;
        !st)
      ()
  in
  Alcotest.(check bool) "call" true (Persistent.call w 5 = Ok 5);
  Alcotest.(check bool) "state persists across calls" true
    (Persistent.call w 2 = Ok 7);
  Alcotest.(check bool) "ping" true (Persistent.ping w);
  (* A handler exception comes back as Error (Exn _), worker stays up. *)
  (match Persistent.call w 13 with
  | Error (Gmf_exec.Exn msg) ->
      Alcotest.(check bool) "exn payload" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected Error (Exn _)");
  Alcotest.(check bool) "worker survives handler exception" true
    (Persistent.call w 1 = Ok 8);
  (* A crash mid-request surfaces as Crashed and detaches the process. *)
  (match Persistent.call w 99 with
  | Error (Gmf_exec.Crashed _) -> ()
  | _ -> Alcotest.fail "expected Error (Crashed _)");
  Alcotest.(check bool) "dead after crash" false (Persistent.alive w);
  (* Respawn re-runs init from scratch. *)
  Persistent.respawn w;
  Alcotest.(check int) "respawn counted" 1 (Persistent.respawn_count w);
  Alcotest.(check bool) "fresh state after respawn" true
    (Persistent.call w 4 = Ok 4);
  Persistent.stop w

let test_persistent_deadline () =
  let w =
    Persistent.spawn
      ~init:(fun () -> ())
      ~handle:(fun () s ->
        Unix.sleepf s;
        s)
      ()
  in
  let t0 = Unix.gettimeofday () in
  (match Persistent.call ~deadline_s:0.2 w 10. with
  | Error Gmf_exec.Timed_out -> ()
  | _ -> Alcotest.fail "expected Timed_out");
  Alcotest.(check bool) "deadline killed promptly" true
    (Unix.gettimeofday () -. t0 < 5.);
  Alcotest.(check bool) "worker killed on deadline" false (Persistent.alive w)

let test_backoff () =
  let b = Persistent.Backoff.create ~base_s:1. ~max_s:8. () in
  Alcotest.(check bool) "fresh is ready" true
    (Persistent.Backoff.ready b ~now:0.);
  Persistent.Backoff.note_failure b ~now:0.;
  Alcotest.(check bool) "not ready inside window" false
    (Persistent.Backoff.ready b ~now:0.5);
  Alcotest.(check bool) "ready after base delay" true
    (Persistent.Backoff.ready b ~now:1.0);
  Persistent.Backoff.note_failure b ~now:10.;
  Alcotest.(check (float 1e-9)) "second failure doubles" 12.
    (Persistent.Backoff.next_try b);
  Persistent.Backoff.note_failure b ~now:20.;
  Alcotest.(check (float 1e-9)) "third failure doubles again" 24.
    (Persistent.Backoff.next_try b);
  Persistent.Backoff.note_failure b ~now:30.;
  Persistent.Backoff.note_failure b ~now:40.;
  Alcotest.(check (float 1e-9)) "delay caps at max_s" 48.
    (Persistent.Backoff.next_try b);
  Alcotest.(check int) "failures counted" 5 (Persistent.Backoff.failures b);
  Persistent.Backoff.note_success b;
  Alcotest.(check bool) "success resets" true
    (Persistent.Backoff.ready b ~now:40.);
  Alcotest.check_raises "base_s must be positive"
    (Invalid_argument "Gmf_exec.Persistent.Backoff.create") (fun () ->
      ignore (Persistent.Backoff.create ~base_s:0. ()))

(* ---------------- session workers ------------------------------------ *)

(* The freeze discipline: a topology directive smuggled into an event
   request must fail *before* mutating the worker's name/topology
   tables, so a Reject (which is never journaled) provably leaves the
   worker in step with the journal. *)
let test_worker_frozen_prologue () =
  let topology =
    "node a endhost\nnode b switch\nnode c endhost\n\
     duplex a b rate=100M\nduplex b c rate=100M\n"
  in
  let st = Worker.init ~opts:Worker.default_opts ~topology () in
  let admit name dst =
    Printf.sprintf
      "admit flow %s from=a to=%s\n\
      \  frame period=10ms deadline=10ms payload=100B\n\
       end"
      name dst
  in
  (match Worker.handle st (Worker.Event_text "node x endhost") with
  | Worker.Reject msg ->
      Alcotest.(check bool)
        (Printf.sprintf "frozen-prologue rejection: %s" msg)
        true
        (contains ~needle:"must precede" msg)
  | _ -> Alcotest.fail "expected Reject for a topology directive in an event");
  (* The rejected directive left no trace: "x" is still unknown. *)
  (match Worker.handle st (Worker.Event_text (admit "f0" "x")) with
  | Worker.Reject msg ->
      Alcotest.(check bool)
        (Printf.sprintf "name table untouched: %s" msg)
        true
        (contains ~needle:"unknown node" msg)
  | _ -> Alcotest.fail "expected Reject for an unknown node");
  (* And the worker is still good: a valid admit goes through. *)
  (match Worker.handle st (Worker.Event_text (admit "f0" "c")) with
  | Worker.Outcome o -> Alcotest.(check int) "first committed event" 1 o.seq
  | _ -> Alcotest.fail "expected Outcome for a valid admit");
  (* Comment-only text stays a clean reject, not a worker death. *)
  match Worker.handle st (Worker.Event_text "# nothing here\n\n") with
  | Worker.Reject _ -> ()
  | _ -> Alcotest.fail "expected Reject for comment-only text"

(* The tokenizer treats tabs as separators; event slicing must too. *)
let test_slice_tab_separated () =
  let text =
    "node a endhost\nnode b endhost\n\
     admit\tflow f from=a to=b\n\
    \  frame period=10ms deadline=10ms payload=100B\nend\n\
     remove\tf\n"
  in
  let prologue, chunks = Client.slice_trace text in
  Alcotest.(check bool) "prologue holds only topology" true
    (contains ~needle:"node b endhost" prologue
    && not (contains ~needle:"admit" prologue));
  Alcotest.(check int) "two events sliced" 2 (List.length chunks);
  match chunks with
  | [ a; r ] ->
      Alcotest.(check bool) "flow block chunk" true
        (contains ~needle:"admit\tflow f" a && contains ~needle:"end" a);
      Alcotest.(check bool) "remove chunk" true (contains ~needle:"remove" r)
  | _ -> Alcotest.fail "expected exactly two chunks"

(* ---------------- daemon end-to-end ---------------------------------- *)

let expected_output steps summary =
  String.concat "" (List.map (fun (line, _) -> line ^ "\n") steps)
  ^ "\nsummary:\n" ^ summary

let test_daemon_transcript_parity () =
  let dir = fresh_dir () in
  let cfg =
    {
      Server.default_config with
      socket_path = Filename.concat dir "d.sock";
      journal_dir = Filename.concat dir "journal";
    }
  in
  let text = gen_trace_text 7 in
  let steps, fp, summary = reference text in
  let pid = start_daemon cfg in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      (match
         Client.run_trace ~socket:cfg.Server.socket_path ~session:"parity" text
       with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check (list (pair string string))) "nothing rejected" []
            r.Client.rejected;
          Alcotest.(check string)
            "daemon output byte-identical to in-process replay"
            (expected_output steps summary)
            r.Client.output);
      match
        Client.fingerprint ~socket:cfg.Server.socket_path ~session:"parity"
      with
      | Error msg -> Alcotest.fail msg
      | Ok (digest, events) ->
          Alcotest.(check string) "fingerprint matches in-process" fp digest;
          Alcotest.(check int) "event count" (List.length steps) events)

(* The crash-safety property: kill -9 the daemon after a random number
   of committed events, restart it on the same journal, stream the rest
   of the trace — every transcript line, the fingerprint and the
   summary must equal the uninterrupted run's. *)
let prop_kill9_recovery =
  QCheck.Test.make ~name:"kill -9 mid-trace recovers byte-identical state"
    ~count:4
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let text = gen_trace_text seed in
      let steps, fp, summary = reference text in
      let prologue, chunks = Client.slice_trace text in
      let n = List.length chunks in
      if n < 2 then true
      else begin
        let kill_at = 1 + (seed mod (n - 1)) in
        let dir = fresh_dir () in
        let cfg =
          {
            Server.default_config with
            socket_path = Filename.concat dir "d.sock";
            journal_dir = Filename.concat dir "journal";
          }
        in
        let socket = cfg.Server.socket_path in
        let open_req =
          Jsonl.Open
            {
              session = "crashy";
              topology = prologue;
              verify = false;
              explain = false;
              cold = false;
              survivable = None;
              throttle_s = 0.;
            }
        in
        let send_events c lo hi =
          List.iteri
            (fun i chunk ->
              if i >= lo && i < hi then
                match Client.request c (Jsonl.Event { text = chunk }) with
                | Ok (Jsonl.Outcome o) ->
                    let want, _ = List.nth steps i in
                    if o.text <> want then
                      QCheck.Test.fail_reportf
                        "event %d transcript drifted:@\n%s@\nvs@\n%s" i o.text
                        want
                | Ok r ->
                    QCheck.Test.fail_reportf "event %d: unexpected %s" i
                      (Jsonl.encode_response r)
                | Error msg ->
                    QCheck.Test.fail_reportf "event %d: %s" i msg)
            chunks
        in
        (* Phase 1: commit [0, kill_at), then kill -9. *)
        let pid = start_daemon cfg in
        (match Client.connect socket with
        | Error msg ->
            kill9_daemon pid;
            QCheck.Test.fail_report msg
        | Ok c ->
            (match Client.request c open_req with
            | Ok (Jsonl.Opened { replayed = 0; _ }) -> ()
            | r ->
                kill9_daemon pid;
                QCheck.Test.fail_reportf "fresh open: %s"
                  (match r with
                  | Ok resp -> Jsonl.encode_response resp
                  | Error m -> m));
            send_events c 0 kill_at;
            Client.close c);
        kill9_daemon pid;
        (* Phase 2: restart on the same journal, finish the trace. *)
        let pid = start_daemon cfg in
        Fun.protect
          ~finally:(fun () -> stop_daemon pid)
          (fun () ->
            (match Client.connect socket with
            | Error msg -> QCheck.Test.fail_report msg
            | Ok c ->
                (match Client.request c open_req with
                | Ok (Jsonl.Opened { replayed; _ }) ->
                    if replayed <> kill_at then
                      QCheck.Test.fail_reportf
                        "expected %d journaled events, recovered %d" kill_at
                        replayed
                | r ->
                    QCheck.Test.fail_reportf "re-open: %s"
                      (match r with
                      | Ok resp -> Jsonl.encode_response resp
                      | Error m -> m));
                send_events c kill_at n;
                (match Client.request c Jsonl.Summary with
                | Ok (Jsonl.Summary_is { text }) ->
                    if text <> summary then
                      QCheck.Test.fail_reportf "summary drifted:@\n%s@\nvs@\n%s"
                        text summary
                | _ -> QCheck.Test.fail_report "summary request failed");
                Client.close c);
            match Client.fingerprint ~socket ~session:"crashy" with
            | Ok (digest, events) ->
                if digest <> fp || events <> n then
                  QCheck.Test.fail_reportf
                    "recovered fingerprint %s/%d, want %s/%d" digest events fp
                    n;
                true
            | Error msg -> QCheck.Test.fail_report msg)
      end)

(* Overload: a throttled worker, a queue capped at 2 and 8 pipelined
   events.  The daemon must answer all 8 — the first three with
   outcomes, the rest shed with explicit "overloaded" — and the
   committed state must be exactly the three answered events. *)
let test_daemon_shedding () =
  let dir = fresh_dir () in
  let cfg =
    {
      Server.default_config with
      socket_path = Filename.concat dir "d.sock";
      journal_dir = Filename.concat dir "journal";
      queue_cap = 2;
    }
  in
  let text = gen_trace_text 11 in
  let prologue, _ = Client.slice_trace text in
  let pid = start_daemon cfg in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      (match Client.connect cfg.Server.socket_path with
      | Error msg -> Alcotest.fail msg
      | Ok c ->
          (match
             Client.request c
               (Jsonl.Open
                  {
                    session = "busy";
                    topology = prologue;
                    verify = false;
                    explain = false;
                    cold = false;
                    survivable = None;
                    throttle_s = 0.3;
                  })
           with
          | Ok (Jsonl.Opened _) -> ()
          | _ -> Alcotest.fail "open failed");
          (* Pipeline 8 queries without reading a single response. *)
          for _ = 1 to 8 do
            match Client.send c (Jsonl.Event { text = "query" }) with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg
          done;
          let outcomes = ref 0 and shed = ref 0 in
          for _ = 1 to 8 do
            match Client.recv c with
            | Ok (Jsonl.Outcome _) -> incr outcomes
            | Ok (Jsonl.Rejected { code; _ })
              when code = Jsonl.code_overloaded ->
                incr shed
            | Ok r ->
                Alcotest.fail ("unexpected: " ^ Jsonl.encode_response r)
            | Error msg -> Alcotest.fail msg
          done;
          Client.close c;
          (* 1 in flight + 2 queued complete; 5 are shed explicitly. *)
          Alcotest.(check int) "completed events" 3 !outcomes;
          Alcotest.(check int) "explicitly shed" 5 !shed);
      (* The committed state is exactly the three answered events. *)
      match
        Client.fingerprint ~socket:cfg.Server.socket_path ~session:"busy"
      with
      | Ok (_digest, events) ->
          Alcotest.(check int) "journal holds only completed events" 3 events
      | Error msg -> Alcotest.fail msg)

(* SIGTERM drains: pipelined work in the queue is finished and answered
   before the daemon exits. *)
let test_daemon_drain () =
  let dir = fresh_dir () in
  let cfg =
    {
      Server.default_config with
      socket_path = Filename.concat dir "d.sock";
      journal_dir = Filename.concat dir "journal";
    }
  in
  let text = gen_trace_text 11 in
  let prologue, _ = Client.slice_trace text in
  let pid = start_daemon cfg in
  match Client.connect cfg.Server.socket_path with
  | Error msg ->
      stop_daemon pid;
      Alcotest.fail msg
  | Ok c ->
      (match
         Client.request c
           (Jsonl.Open
              {
                session = "draining";
                topology = prologue;
                verify = false;
                explain = false;
                cold = false;
                survivable = None;
                throttle_s = 0.2;
              })
       with
      | Ok (Jsonl.Opened _) -> ()
      | _ ->
          stop_daemon pid;
          Alcotest.fail "open failed");
      for _ = 1 to 3 do
        ignore (Client.send c (Jsonl.Event { text = "query" }))
      done;
      (* Let the daemon read all three requests, then ask it to stop. *)
      Unix.sleepf 0.1;
      Unix.kill pid Sys.sigterm;
      let outcomes = ref 0 in
      for _ = 1 to 3 do
        match Client.recv c with
        | Ok (Jsonl.Outcome _) -> incr outcomes
        | Ok r -> Alcotest.fail ("unexpected: " ^ Jsonl.encode_response r)
        | Error msg -> Alcotest.fail msg
      done;
      Client.close c;
      ignore (Unix.waitpid [] pid);
      Alcotest.(check int) "all queued events answered before exit" 3 !outcomes;
      Alcotest.(check bool) "socket unlinked on exit" false
        (Sys.file_exists cfg.Server.socket_path)

(* A client that pipelines requests without ever reading must not stall
   the event loop: its responses park in the daemon's per-connection
   output buffer (client fds are non-blocking) while other clients keep
   being served, and every parked response is delivered once the
   stalled client reads again. *)
let test_stalled_client_isolation () =
  let dir = fresh_dir () in
  let cfg =
    {
      Server.default_config with
      socket_path = Filename.concat dir "d.sock";
      journal_dir = Filename.concat dir "journal";
    }
  in
  let text = gen_trace_text 3 in
  let prologue, _ = Client.slice_trace text in
  let n = 3000 in
  let pid = start_daemon cfg in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      match Client.connect cfg.Server.socket_path with
      | Error msg -> Alcotest.fail msg
      | Ok a ->
          (match
             Client.request a
               (Jsonl.Open
                  {
                    session = "stall";
                    topology = prologue;
                    verify = false;
                    explain = false;
                    cold = false;
                    survivable = None;
                    throttle_s = 0.;
                  })
           with
          | Ok (Jsonl.Opened _) -> ()
          | _ -> Alcotest.fail "open failed");
          (* Enough responses to overflow the socket buffers several
             times over while we read none of them. *)
          for _ = 1 to n do
            match Client.send a (Jsonl.Event { text = "query" }) with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg
          done;
          (* The loop must still serve a second client promptly. *)
          let t0 = Unix.gettimeofday () in
          (match Client.connect cfg.Server.socket_path with
          | Error msg -> Alcotest.fail msg
          | Ok b ->
              Alcotest.(check bool) "ping answered while a is stalled" true
                (Client.request b Jsonl.Ping = Ok Jsonl.Pong);
              Client.close b);
          Alcotest.(check bool) "answered promptly, not after a's backlog"
            true
            (Unix.gettimeofday () -. t0 < 5.);
          (* Nothing was silently dropped: outcomes + explicit sheds
             account for every pipelined request. *)
          let outcomes = ref 0 and shed = ref 0 in
          for _ = 1 to n do
            match Client.recv a with
            | Ok (Jsonl.Outcome _) -> incr outcomes
            | Ok (Jsonl.Rejected { code; _ })
              when code = Jsonl.code_overloaded ->
                incr shed
            | Ok r -> Alcotest.fail ("unexpected: " ^ Jsonl.encode_response r)
            | Error msg -> Alcotest.fail msg
          done;
          Client.close a;
          Alcotest.(check int) "every pipelined request answered" n
            (!outcomes + !shed))

(* Journal replay is exempt from the per-request deadline: a session
   whose events replay slower than the client-facing latency bound must
   still recover instead of being deadline-killed mid-replay and
   restarted under backoff forever. *)
let test_replay_exempt_from_deadline () =
  let dir = fresh_dir () in
  let base =
    {
      Server.default_config with
      socket_path = Filename.concat dir "d.sock";
      journal_dir = Filename.concat dir "journal";
    }
  in
  let topology = "node a endhost\nnode b endhost\nduplex a b rate=100M\n" in
  (* Phase 1: no deadline; a throttled session commits two events that
     take ~0.3s each (the throttle is journaled with the open line, so
     replay pays it too). *)
  let pid = start_daemon base in
  (match Client.connect base.Server.socket_path with
  | Error msg ->
      kill9_daemon pid;
      Alcotest.fail msg
  | Ok c ->
      (match
         Client.request c
           (Jsonl.Open
              {
                session = "slow";
                topology;
                verify = false;
                explain = false;
                cold = false;
                survivable = None;
                throttle_s = 0.3;
              })
       with
      | Ok (Jsonl.Opened _) -> ()
      | _ ->
          kill9_daemon pid;
          Alcotest.fail "open failed");
      for i = 1 to 2 do
        match Client.request c (Jsonl.Event { text = "query" }) with
        | Ok (Jsonl.Outcome _) -> ()
        | _ ->
            kill9_daemon pid;
            Alcotest.fail (Printf.sprintf "query %d failed" i)
      done;
      Client.close c);
  kill9_daemon pid;
  (* Phase 2: restart with a per-request deadline shorter than a single
     replayed event.  Recovery must complete anyway. *)
  let pid = start_daemon { base with deadline_s = Some 0.1 } in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      match
        Client.fingerprint ~socket:base.Server.socket_path ~session:"slow"
      with
      | Ok (_digest, events) ->
          Alcotest.(check int) "journal replayed in full" 2 events
      | Error msg -> Alcotest.fail msg)

let tests =
  [
    Alcotest.test_case "codec: round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: canonical form and errors" `Quick
      test_codec_canonical_and_errors;
    Alcotest.test_case "codec: json parser" `Quick test_json_parser;
    Alcotest.test_case "journal: session names" `Quick test_journal_names;
    Alcotest.test_case "journal: torn tail recovery" `Quick
      test_journal_torn_tail;
    Alcotest.test_case "persistent: lifecycle" `Quick test_persistent_worker;
    Alcotest.test_case "persistent: deadline kill" `Quick
      test_persistent_deadline;
    Alcotest.test_case "persistent: backoff pacing" `Quick test_backoff;
    Alcotest.test_case "worker: frozen prologue keeps rejects pure" `Quick
      test_worker_frozen_prologue;
    Alcotest.test_case "client: tab-separated event keywords" `Quick
      test_slice_tab_separated;
    Alcotest.test_case "daemon: transcript parity" `Quick
      test_daemon_transcript_parity;
    QCheck_alcotest.to_alcotest prop_kill9_recovery;
    Alcotest.test_case "daemon: overload shedding" `Quick test_daemon_shedding;
    Alcotest.test_case "daemon: stalled client isolation" `Quick
      test_stalled_client_isolation;
    Alcotest.test_case "daemon: replay exempt from deadline" `Quick
      test_replay_exempt_from_deadline;
    Alcotest.test_case "daemon: SIGTERM drain" `Quick test_daemon_drain;
  ]
