(* Fuzzing the scenario parser: arbitrary text must produce Ok or a
   well-formed Error — never an exception. *)

let directives =
  [| "node"; "link"; "duplex"; "switch"; "flow"; "frame"; "end"; "#"; "" |]

let words_pool =
  [|
    "a"; "b"; "sw"; "endhost"; "switch"; "router"; "rate=10M"; "rate=0";
    "rate=xx"; "prop=1ms"; "prop=-1"; "from=a"; "to=b"; "prio=5"; "prio=99";
    "encap=rtp"; "encap=?"; "route=a,b"; "remark=a/b:3"; "remark=bad";
    "period=1ms"; "deadline=2ms"; "jitter=0"; "payload=100B"; "payload=-1";
    "ports=4"; "cpus=2"; "croute=1us"; "csend=1us"; "=="; "x=y=z"; "\t";
  |]

let gen_line rng =
  let open Gmf_util in
  let n = Rng.int rng 6 in
  let parts =
    List.init n (fun _ -> Rng.pick rng words_pool)
  in
  String.concat " " (Rng.pick rng directives :: parts)

let prop_parser_total =
  QCheck.Test.make ~name:"parser never raises on garbage" ~count:500
    QCheck.(pair (int_range 0 100_000) (int_range 0 30))
    (fun (seed, lines) ->
      let rng = Gmf_util.Rng.create ~seed in
      let text =
        String.concat "\n" (List.init lines (fun _ -> gen_line rng))
      in
      match Scenario_io.Parse.scenario_of_string text with
      | Ok _ -> true
      | Error e -> e.Scenario_io.Parse.line >= 0)

let prop_parser_total_binaryish =
  QCheck.Test.make ~name:"parser never raises on binary noise" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 400))
    (fun text ->
      match Scenario_io.Parse.scenario_of_string text with
      | Ok _ -> true
      | Error _ -> true)

let prop_valid_prefix_plus_garbage =
  (* A valid scenario followed by one garbage line errors on exactly that
     line. *)
  QCheck.Test.make ~name:"error points at the garbage line" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Gmf_util.Rng.create ~seed in
      let valid =
        "node a endhost\nnode b endhost\nlink a b rate=10M\n\
         flow f from=a to=b\n  frame period=1ms deadline=2ms payload=10B\nend"
      in
      let garbage = "blorp " ^ Gmf_util.Rng.pick rng words_pool in
      match Scenario_io.Parse.scenario_of_string (valid ^ "\n" ^ garbage) with
      | Ok _ -> false
      | Error e -> e.Scenario_io.Parse.line = 7)

(* ------------------------------------------------------------------ *)
(* Lint as a soundness gate: any scenario the linter accepts with zero  *)
(* errors must be analyzable and simulatable without raising.           *)
(* ------------------------------------------------------------------ *)

(* A structurally valid scenario with randomized parameters: a duplex
   chain of endhosts around 0..2 switches, 1..3 flows over shortest
   paths.  Parameters are drawn wide enough to trip lint errors (link
   overload, impossible deadlines) on some draws. *)
let gen_valid_text rng =
  let open Gmf_util in
  let nswitches = Rng.int rng 3 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "node h0 endhost\nnode h1 endhost\n";
  for i = 0 to nswitches - 1 do
    Buffer.add_string buf (Printf.sprintf "node s%d switch\n" i)
  done;
  let chain =
    "h0" :: List.init nswitches (Printf.sprintf "s%d") @ [ "h1" ]
  in
  let rate = Rng.pick rng [| "1M"; "10M"; "100M" |] in
  List.iteri
    (fun i n ->
      if i > 0 then
        Buffer.add_string buf
          (Printf.sprintf "duplex %s %s rate=%s\n"
             (List.nth chain (i - 1)) n rate))
    chain;
  for i = 0 to nswitches - 1 do
    if Rng.int rng 2 = 0 then
      Buffer.add_string buf
        (Printf.sprintf "switch s%d cpus=%d croute=%dus\n" i
           (1 + Rng.int rng 2) (1 + Rng.int rng 50))
  done;
  let nflows = 1 + Rng.int rng 3 in
  for i = 0 to nflows - 1 do
    let src, dst = if Rng.int rng 2 = 0 then ("h0", "h1") else ("h1", "h0") in
    Buffer.add_string buf
      (Printf.sprintf "flow f%d from=%s to=%s prio=%d\n" i src dst
         (Rng.int rng 8));
    for _ = 0 to Rng.int rng 2 do
      Buffer.add_string buf
        (Printf.sprintf
           "  frame period=%dms deadline=%dms jitter=%dus payload=%dB\n"
           (1 + Rng.int rng 10)
           (1 + Rng.int rng 20)
           (Rng.int rng 500)
           (20 + Rng.int rng 2000))
    done;
    Buffer.add_string buf "end\n"
  done;
  Buffer.contents buf

let prop_lint_clean_never_raises =
  QCheck.Test.make ~name:"lint-clean scenarios analyze and simulate" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Gmf_util.Rng.create ~seed in
      let text = gen_valid_text rng in
      match Scenario_io.Parse.scenario_of_string text with
      | Error _ -> true (* not this property's concern *)
      | Ok scenario ->
          let report = Gmf_lint.Lint.run scenario in
          if Gmf_lint.Lint.errors report <> [] then true
          else begin
            (* zero lint errors: neither the analysis nor the simulator
               may raise *)
            ignore (Analysis.Holistic.analyze scenario);
            ignore
              (Sim.Netsim.run
                 ~config:
                   {
                     Sim.Sim_config.default with
                     Sim.Sim_config.duration = Gmf_util.Timeunit.ms 20;
                   }
                 scenario);
            true
          end)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_parser_total_binaryish;
    QCheck_alcotest.to_alcotest prop_valid_prefix_plus_garbage;
    QCheck_alcotest.to_alcotest prop_lint_clean_never_raises;
  ]
