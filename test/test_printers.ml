(* Smoke tests of the pretty-printers and file-level round trips: printers
   feed error messages and reports, so they must not raise and must carry
   the load-bearing fields. *)
open Gmf_util

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let str pp v = Format.asprintf "%a" pp v

let test_timeunit_pp_negative () =
  (* Slack values are printed and can be negative. *)
  Alcotest.(check string) "negative ns" "-500ns" (Timeunit.to_string (-500));
  Alcotest.(check string) "negative ms" "-1.5ms"
    (Timeunit.to_string (-1_500_000))

let test_core_printers () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let flow = Traffic.Scenario.flow scenario 0 in
  Alcotest.(check bool) "flow pp has name" true
    (contains (str Traffic.Flow.pp flow) "video:0->3");
  Alcotest.(check bool) "spec pp has n" true
    (contains (str Gmf.Spec.pp flow.Traffic.Flow.spec) "n=9");
  Alcotest.(check bool) "route pp" true
    (contains (str Network.Route.pp flow.Traffic.Flow.route) "0->4->6->3");
  let link = Network.Topology.link_exn (Traffic.Scenario.topo scenario) ~src:0 ~dst:4 in
  Alcotest.(check bool) "link pp has rate" true
    (contains (str Network.Link.pp link) "10000000");
  let p = Traffic.Scenario.params scenario flow ~src:0 ~dst:4 in
  Alcotest.(check bool) "params pp has NSUM" true
    (contains (str Traffic.Link_params.pp p) "NSUM=94");
  let model = Traffic.Scenario.switch_model scenario 4 in
  Alcotest.(check bool) "switch pp has CIRC" true
    (contains (str Click.Switch_model.pp model) "CIRC=14.8us")

let test_analysis_printers () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let report = Analysis.Holistic.analyze scenario in
  Alcotest.(check bool) "report pp has verdict" true
    (contains (str Analysis.Holistic.pp report) "schedulable");
  Alcotest.(check bool) "config pp has variant" true
    (contains (str Analysis.Config.pp Analysis.Config.default) "repaired");
  Alcotest.(check bool) "tight config marked" true
    (contains (str Analysis.Config.pp Analysis.Config.tight) "tight-jitter");
  Alcotest.(check bool) "stage pp" true
    (contains (str Analysis.Stage.pp (Analysis.Stage.Egress (4, 6))) "out(4->6)");
  let ctx = Analysis.Ctx.create scenario in
  (match Analysis.Conditions.check_all ctx with
  | c :: _ ->
      Alcotest.(check bool) "condition pp has U" true
        (contains (str Analysis.Conditions.pp_check c) "U=")
  | [] -> Alcotest.fail "no conditions");
  (* Fixpoint outcomes *)
  Alcotest.(check bool) "converged pp" true
    (contains
       (str Analysis.Fixpoint.pp
          (Analysis.Fixpoint.Converged { value = 1000; iters = 1 }))
       "1us");
  Alcotest.(check bool) "diverged pp" true
    (contains (str Analysis.Fixpoint.pp (Analysis.Fixpoint.Diverged "boom")) "boom")

let test_sim_config_pp () =
  Alcotest.(check bool) "sim config pp" true
    (contains (str Sim.Sim_config.pp Sim.Sim_config.default) "seed=42")

let test_scenario_file_roundtrip () =
  let scenario = Workload.Scenarios.single_switch_voip () in
  let path = Filename.temp_file "gmfnet" ".gmfnet" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Scenario_io.Print.to_file path scenario;
      match Scenario_io.Parse.scenario_of_file path with
      | Error e ->
          Alcotest.failf "reparse failed: %a" Scenario_io.Parse.pp_error e
      | Ok parsed ->
          Alcotest.(check int) "same flows"
            (Traffic.Scenario.flow_count scenario)
            (Traffic.Scenario.flow_count parsed))

let test_missing_file_reports () =
  match Scenario_io.Parse.scenario_of_file "/nonexistent/nowhere.gmfnet" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> Alcotest.(check int) "line 0" 0 e.Scenario_io.Parse.line

let test_jitter_spread_semantics () =
  (* A fragmented packet with GJ > 0 under Spread: the last Ethernet frame
     is queued strictly inside [t, t + GJ) (paper Section 2.3). *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let gj = Timeunit.ms 2 in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 20) ~deadline:(Timeunit.ms 100)
          ~jitter:gj ~payload_bits:(8 * 5_000);
      ]
  in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"jittery" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ flow ] () in
  let sim =
    Sim.Netsim.run
      ~config:
        { Sim.Sim_config.default with duration = Timeunit.ms 50;
          trace_limit = 2 }
      scenario
  in
  List.iter
    (fun (j : Sim.Collector.journey) ->
      let find what =
        List.find_map
          (fun (t, w) -> if w = what then Some t else None)
          j.Sim.Collector.j_events
      in
      match (find "released at source", find "last Ethernet frame queued") with
      | Some released, Some last ->
          Alcotest.(check bool) "spread inside [t, t+GJ)" true
            (last > released && last < released + gj)
      | _ -> Alcotest.fail "missing journey events")
    (Sim.Collector.journeys sim.Sim.Netsim.collector)

let tests =
  [
    Alcotest.test_case "negative durations" `Quick test_timeunit_pp_negative;
    Alcotest.test_case "core printers" `Quick test_core_printers;
    Alcotest.test_case "analysis printers" `Quick test_analysis_printers;
    Alcotest.test_case "sim config printer" `Quick test_sim_config_pp;
    Alcotest.test_case "scenario file round trip" `Quick
      test_scenario_file_roundtrip;
    Alcotest.test_case "missing file" `Quick test_missing_file_reports;
    Alcotest.test_case "jitter spread semantics" `Quick
      test_jitter_spread_semantics;
  ]
