(* Delta fixpoint engine: incremental re-analysis must be observationally
   identical to a cold run — same schedulability, same per-frame bounds,
   identical survive matrices — while provably-untouched flows are never
   recomputed (their result records are carried over physically). *)

open Gmf_util
module Delta = Analysis.Delta
module Survive = Gmf_faults.Survive
module Session = Gmf_admctl.Session
module Replay = Gmf_admctl.Replay

let bounds_of (report : Analysis.Holistic.report) =
  List.map
    (fun res ->
      ( res.Analysis.Result_types.flow.Traffic.Flow.id,
        Array.map
          (fun fr -> fr.Analysis.Result_types.total)
          res.Analysis.Result_types.frames ))
    report.Analysis.Holistic.results

let schedulable_of v =
  match v with Analysis.Holistic.Schedulable -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Directed: untouched flows are carried over, not recomputed          *)
(* ------------------------------------------------------------------ *)

(* Two host clusters on a two-switch line; the clusters' flows stay
   inside their own switch, so editing one cluster must leave the
   other's results physically intact. *)
let two_cluster_scenario () =
  let topo, hosts, _sw =
    Workload.Topologies.line ~hosts_per_switch:3 ~switches:2 ()
  in
  let rng = Rng.create ~seed:7 in
  let pairs =
    [
      (hosts.(0).(0), hosts.(0).(1));
      (hosts.(0).(1), hosts.(0).(2));
      (hosts.(1).(0), hosts.(1).(1));
    ]
  in
  let flows = Workload.Random_gen.flows_between rng ~topo ~pairs () in
  Traffic.Scenario.make ~topo ~flows ()

let drop_flow scenario id =
  let switches =
    List.map
      (fun n -> (n, Traffic.Scenario.switch_model scenario n))
      (Traffic.Scenario.switch_nodes scenario)
  in
  Traffic.Scenario.make ~switches ~topo:(Traffic.Scenario.topo scenario)
    ~flows:
      (List.filter
         (fun (f : Traffic.Flow.t) -> f.Traffic.Flow.id <> id)
         (Traffic.Scenario.flows scenario))
    ()

let result_of (report : Analysis.Holistic.report) id =
  List.find
    (fun r -> r.Analysis.Result_types.flow.Traffic.Flow.id = id)
    report.Analysis.Holistic.results

let test_untouched_carried_over () =
  let scenario = two_cluster_scenario () in
  let base = Delta.compute_base scenario in
  Alcotest.(check bool) "base converged" true (Delta.base_ok base);
  (* Remove flow 0 (first cluster): flow 1 shares its cluster, flow 2
     lives on the other switch. *)
  let target = drop_flow scenario 0 in
  let d = Delta.analyze base target in
  Alcotest.(check bool) "flow 2 certified untouched" true
    (List.mem 2 d.Delta.d_untouched);
  Alcotest.(check bool) "flow 1 not certified" false
    (List.mem 1 d.Delta.d_untouched);
  Alcotest.(check bool) "untouched result record carried over physically"
    true
    (result_of (Delta.base_report base) 2 == result_of d.Delta.d_report 2);
  Alcotest.(check int) "stats closure" 1 d.Delta.d_stats.Delta.closure_flows;
  Alcotest.(check int) "stats skipped" 1 d.Delta.d_stats.Delta.skipped_flows;
  Alcotest.(check bool) "no fallback" false
    d.Delta.d_stats.Delta.cold_fallback;
  (* The merged report equals a cold analysis of the target. *)
  let cold = Analysis.Holistic.analyze target in
  Alcotest.(check bool) "bounds equal cold" true
    (bounds_of cold = bounds_of d.Delta.d_report);
  Alcotest.(check bool) "verdict class equals cold" true
    (schedulable_of cold.Analysis.Holistic.verdict
    = schedulable_of d.Delta.d_report.Analysis.Holistic.verdict)

let test_identity_edit_free () =
  let scenario = two_cluster_scenario () in
  let base = Delta.compute_base scenario in
  let d = Delta.analyze base scenario in
  Alcotest.(check int) "no closure" 0 d.Delta.d_stats.Delta.closure_flows;
  Alcotest.(check int) "no rounds" 0 d.Delta.d_stats.Delta.rounds;
  Alcotest.(check int) "everything untouched" 3
    (List.length d.Delta.d_untouched);
  Alcotest.(check bool) "report reused" true
    (Delta.base_report base == d.Delta.d_report)

let test_structure_change_falls_back () =
  let scenario = two_cluster_scenario () in
  let base = Delta.compute_base scenario in
  let other_topo, hosts, _ =
    Workload.Topologies.line ~hosts_per_switch:3 ~switches:3 ()
  in
  let rng = Rng.create ~seed:7 in
  let flows =
    Workload.Random_gen.flows_between rng ~topo:other_topo
      ~pairs:[ (hosts.(0).(0), hosts.(0).(1)) ]
      ()
  in
  let target = Traffic.Scenario.make ~topo:other_topo ~flows () in
  let d = Delta.analyze base target in
  Alcotest.(check bool) "cold fallback" true
    d.Delta.d_stats.Delta.cold_fallback;
  Alcotest.(check bool) "nothing certified" true (d.Delta.d_untouched = []);
  let cold = Analysis.Holistic.analyze target in
  Alcotest.(check bool) "fallback bounds equal cold" true
    (bounds_of cold = bounds_of d.Delta.d_report)

(* ------------------------------------------------------------------ *)
(* Survive sweeps: delta engine vs cold engine                         *)
(* ------------------------------------------------------------------ *)

let fates_key (c : Survive.case_result) =
  List.map
    (fun ((f : Traffic.Flow.t), fate) -> (f.Traffic.Flow.id, fate))
    c.Survive.fates

(* [fail] so the same comparison serves Alcotest and QCheck callers. *)
let check_sweeps_agree ~what ~fail (d : Survive.report) (c : Survive.report) =
  if List.length d.Survive.cases <> List.length c.Survive.cases then
    fail (Printf.sprintf "%s: case counts differ" what);
  List.iteri
    (fun i ((dc : Survive.case_result), (cc : Survive.case_result)) ->
      if dc.Survive.case <> cc.Survive.case then
        fail (Printf.sprintf "%s: case order differs at #%d" what i);
      if schedulable_of dc.Survive.verdict <> schedulable_of cc.Survive.verdict
      then fail (Printf.sprintf "%s: schedulability differs at #%d" what i);
      if fates_key dc <> fates_key cc then
        fail (Printf.sprintf "%s: fates differ at #%d" what i))
    (List.combine d.Survive.cases c.Survive.cases);
  (* Matrix and shed set are functions of the fates, but compare them
     directly too — they are what the golden files render. *)
  let matrix_key (r : Survive.report) =
    List.map
      (fun ((f : Traffic.Flow.t), v) -> (f.Traffic.Flow.id, v))
      r.Survive.matrix
  in
  let shed_key (r : Survive.report) =
    List.map (fun (f : Traffic.Flow.t) -> f.Traffic.Flow.id) r.Survive.shed_set
  in
  if matrix_key d <> matrix_key c then
    fail (Printf.sprintf "%s: matrices differ" what);
  if shed_key d <> shed_key c then
    fail (Printf.sprintf "%s: shed sets differ" what)

let prop_survive_delta_equals_cold =
  QCheck.Test.make ~name:"survive delta == cold on random scenarios"
    ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let scenario = Test_precheck.gen_scenario rng in
      Survive.clear_memo ();
      let d = Survive.run ~k:1 ~delta:true scenario in
      Survive.clear_memo ();
      let c = Survive.run ~k:1 ~delta:false scenario in
      check_sweeps_agree ~what:"k=1"
        ~fail:(fun msg -> QCheck.Test.fail_report msg)
        d c;
      true)

let test_survive_delta_equals_cold_k2 () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  Survive.clear_memo ();
  let d = Survive.run ~k:2 ~delta:true scenario in
  Survive.clear_memo ();
  let c = Survive.run ~k:2 ~delta:false scenario in
  check_sweeps_agree ~what:"k=2" ~fail:Alcotest.fail d c;
  match (d.Survive.delta_totals, c.Survive.delta_totals) with
  | Some totals, None ->
      Alcotest.(check bool) "delta certified untouched flows" true
        (totals.Survive.d_skipped > 0)
  | _ -> Alcotest.fail "delta_totals: expected Some under delta, None cold"

(* ------------------------------------------------------------------ *)
(* Admission churn: delta-driven session vs cold shadow                *)
(* ------------------------------------------------------------------ *)

let prop_churn_delta_sound =
  QCheck.Test.make ~name:"delta session == cold shadow on admtrace churn"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let text = Test_admctl.gen_trace_text rng in
      let trace = Test_admctl.trace_of_string text in
      let { Replay.outcomes; session } = Replay.run ~shadow:true trace in
      (* Every remove/update/fail now routes through Analysis.Delta; the
         cold shadow is the soundness oracle. *)
      List.iter
        (fun (o : Session.outcome) ->
          match o.Session.shadow with
          | Some { Session.equivalent = false; cold_rounds } ->
              QCheck.Test.fail_reportf
                "event #%d (%s): delta disagrees with cold shadow (%d \
                 rounds)@\n\
                 %s"
                o.Session.seq o.Session.label cold_rounds text
          | _ -> ())
        outcomes;
      (* The committed state doubles as a valid delta base: re-analyzing
         the committed set against itself is free and exact. *)
      (match Session.flows session with
      | [] -> ()
      | flows ->
          let scenario =
            Traffic.Scenario.make
              ~switches:trace.Scenario_io.Admtrace.switches
              ~topo:trace.Scenario_io.Admtrace.topo ~flows ()
          in
          let base = Delta.compute_base scenario in
          if Delta.base_ok base then begin
            let d = Delta.analyze base scenario in
            if d.Delta.d_stats.Delta.rounds <> 0 then
              QCheck.Test.fail_reportf "identity edit burned rounds@\n%s"
                text;
            if
              bounds_of (Session.report session) <> bounds_of d.Delta.d_report
            then
              QCheck.Test.fail_reportf
                "committed bounds differ from a fresh base@\n%s" text
          end);
      true)

(* ------------------------------------------------------------------ *)
(* Enumeration order and shed-order determinism                        *)
(* ------------------------------------------------------------------ *)

let rec binom n t =
  if t < 0 || t > n then 0
  else if t = 0 || t = n then 1
  else binom (n - 1) (t - 1) + binom (n - 1) t

let component_key c =
  match c with
  | Survive.Link (a, b) -> Printf.sprintf "L%d-%d" a b
  | Survive.Switch n -> Printf.sprintf "S%d" n

let test_gray_code_walk () =
  let comps = List.init 6 (fun i -> Survive.Link (i, i + 100)) in
  let sym_diff a b =
    List.length (List.filter (fun x -> not (List.mem x b)) a)
    + List.length (List.filter (fun x -> not (List.mem x a)) b)
  in
  List.iter
    (fun k ->
      let cases = Survive.failure_cases ~k comps in
      let expected =
        List.fold_left ( + ) 0 (List.init k (fun t -> binom 6 (t + 1)))
      in
      Alcotest.(check int)
        (Printf.sprintf "k=%d case count" k)
        expected (List.length cases);
      (* Unique, sizes ascending, and revolving-door adjacency: two
         consecutive same-size cases swap exactly one component. *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun case ->
          let key = String.concat "+" (List.map component_key case) in
          if Hashtbl.mem seen key then
            Alcotest.failf "k=%d: duplicate case %s" k key;
          Hashtbl.replace seen key ())
        cases;
      ignore
        (List.fold_left
           (fun prev case ->
             (match prev with
             | Some p when List.length p = List.length case ->
                 Alcotest.(check int)
                   (Printf.sprintf "k=%d adjacent swap" k)
                   2 (sym_diff p case)
             | Some p ->
                 Alcotest.(check bool)
                   (Printf.sprintf "k=%d sizes ascend" k)
                   true
                   (List.length p < List.length case)
             | None -> ());
             Some case)
           None cases))
    [ 1; 2; 3; 4 ];
  (* The size-1 class is the component list itself — k=1 sweeps (and
     their goldens) are order-stable under the Gray walk. *)
  Alcotest.(check bool) "k=1 order is the component order" true
    (Survive.failure_cases ~k:1 comps = List.map (fun c -> [ c ]) comps)

let test_shed_order_permutation_invariant () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  (* Force priority ties so the id tie-break actually decides. *)
  let flows =
    List.map
      (fun (f : Traffic.Flow.t) ->
        Traffic.Flow.make ~id:f.Traffic.Flow.id ~name:f.Traffic.Flow.name
          ~spec:f.Traffic.Flow.spec ~encap:f.Traffic.Flow.encap
          ~route:f.Traffic.Flow.route
          ~priority:(f.Traffic.Flow.id mod 2))
      (Traffic.Scenario.flows scenario)
  in
  let expected = Survive.shed_order flows in
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 10 do
    (* Deterministic shuffle: sort by a fresh random key each round. *)
    let keyed = List.map (fun f -> (Rng.int rng 1_000_000, f)) flows in
    let shuffled =
      List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) keyed)
    in
    Alcotest.(check bool) "same victims in the same order" true
      (Survive.shed_order shuffled = expected)
  done

let tests =
  [
    Alcotest.test_case "untouched flows carried over" `Quick
      test_untouched_carried_over;
    Alcotest.test_case "identity edit is free" `Quick test_identity_edit_free;
    Alcotest.test_case "structure change falls back cold" `Quick
      test_structure_change_falls_back;
    Alcotest.test_case "survive delta == cold at k=2 (fig1)" `Quick
      test_survive_delta_equals_cold_k2;
    Alcotest.test_case "gray-code failure walk" `Quick test_gray_code_walk;
    Alcotest.test_case "shed order permutation-invariant" `Quick
      test_shed_order_permutation_invariant;
    QCheck_alcotest.to_alcotest prop_survive_delta_equals_cold;
    QCheck_alcotest.to_alcotest prop_churn_delta_sound;
  ]
