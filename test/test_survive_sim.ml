open Gmf_util

(* Cross-check of the static survivability analysis against the
   fault-injecting simulator on the paper's Figure 1 network.

   For every single-failure case [Survive.run ~k:1] settles into a
   schedulable degraded set, the same component is failed transiently in
   a simulation run under the [Hold] policy (frames queued behind the
   downed link wait for recovery).  The collector excludes journeys
   whose lifetime overlapped the fault window plus its settle margin
   ([Gmf_faults.Fault.taints]); the assertion is that every journey that
   remains — i.e. one the fault could not have perturbed — still meets
   its analytic deadline.  A miss would falsify either the taint
   margin or the fault-free bounds. *)

let fault_at = Timeunit.ms 60
let fault_until = Timeunit.ms 90

let events_of_case case =
  List.concat_map
    (function
      | Gmf_faults.Survive.Link (a, b) ->
          Gmf_faults.Fault.duplex_down ~a ~b ~at:fault_at
          @ Gmf_faults.Fault.duplex_up ~a ~b ~at:fault_until
      | Gmf_faults.Survive.Switch n ->
          [ Gmf_faults.Fault.Switch_stall (n, fault_at, fault_until - fault_at) ])
    case

let check_untainted_deadlines ~label scenario (report : Sim.Netsim.report) =
  List.iter
    (fun (flow : Traffic.Flow.t) ->
      for frame = 0 to Traffic.Flow.n flow - 1 do
        match
          Sim.Collector.responses report.Sim.Netsim.collector
            ~flow:flow.Traffic.Flow.id ~frame
        with
        | None -> ()
        | Some stats ->
            let deadline =
              (Gmf.Spec.frame flow.Traffic.Flow.spec frame)
                .Gmf.Frame_spec.deadline
            in
            if Stats.max stats > deadline then
              Alcotest.failf
                "%s: untainted deadline miss: flow %s frame %d observed %s > %s"
                label flow.Traffic.Flow.name frame
                (Timeunit.to_string (Stats.max stats))
                (Timeunit.to_string deadline)
      done)
    (Traffic.Scenario.flows scenario)

let test_fig1_crosscheck () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let survive = Gmf_faults.Survive.run ~k:1 scenario in
  Alcotest.(check bool)
    "baseline schedulable" true
    (Analysis.Holistic.is_schedulable survive.Gmf_faults.Survive.base);
  let settled =
    List.filter
      (fun (c : Gmf_faults.Survive.case_result) ->
        c.Gmf_faults.Survive.verdict = Analysis.Holistic.Schedulable)
      survive.Gmf_faults.Survive.cases
  in
  (* Figure 1 has redundancy between the switches only; still, every
     failure case must settle (possibly by shedding) — an empty list here
     means the fixture changed under us. *)
  Alcotest.(check bool) "cases to cross-check" true (settled <> []);
  let config =
    {
      Sim.Sim_config.default with
      Sim.Sim_config.duration = Timeunit.ms 250;
    }
  in
  List.iter
    (fun (c : Gmf_faults.Survive.case_result) ->
      let label =
        String.concat " + "
          (List.map
             (Gmf_faults.Survive.component_name scenario)
             c.Gmf_faults.Survive.case)
      in
      let faults = Gmf_faults.Fault.make (events_of_case c.Gmf_faults.Survive.case) in
      let report = Sim.Netsim.run ~config ~faults scenario in
      Alcotest.(check bool)
        (label ^ ": packets completed")
        true
        (report.Sim.Netsim.packets_completed > 0);
      (* The transient window must have touched at least one journey —
         otherwise the check below is vacuous. *)
      Alcotest.(check bool)
        (label ^ ": fault window tainted some journeys")
        true
        (report.Sim.Netsim.tainted_completions > 0);
      check_untainted_deadlines ~label scenario report)
    settled

let tests =
  [
    Alcotest.test_case "fig1: untainted sim journeys meet deadlines (k=1)"
      `Slow test_fig1_crosscheck;
  ]
