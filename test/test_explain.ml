(* Gmf_explain: the attribution must reproduce the holistic bounds
   exactly (term-by-term, across scenarios and analysis variants),
   rejections must name their binding constraint and interferer, hints
   must actually admit when applied, and the convergence telemetry must
   mirror the round structure of the run that produced it. *)

module Attribution = Gmf_explain.Attribution
module Convergence = Gmf_explain.Convergence
module Hints = Gmf_explain.Hints
module Render = Gmf_explain.Render
module Json = Gmf_obs.Export.Json

let named_scenarios () =
  [
    ("fig1", Workload.Scenarios.fig1_videoconf ());
    ("voip", Workload.Scenarios.single_switch_voip ());
    ("chain", Workload.Scenarios.multihop_chain ());
    ("enterprise", Workload.Scenarios.enterprise ());
  ]

let configs =
  [
    ("repaired", Analysis.Config.default);
    ("faithful", Analysis.Config.faithful);
    ("tight", Analysis.Config.tight);
  ]

let has_bounds (report : Analysis.Holistic.report) =
  match report.Analysis.Holistic.verdict with
  | Analysis.Holistic.Schedulable | Analysis.Holistic.Deadline_miss _ -> true
  | _ -> false

(* A fig1 variant whose video flow misses its deadline: inflating only
   that flow's payloads raises its own bound past 150 ms while the
   cross-traffic stays schedulable. *)
let fig1_overloaded ?(factor = 2.0) () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  Traffic.Scenario.map_flows scenario ~f:(fun f ->
      if f.Traffic.Flow.id = Workload.Scenarios.video_flow_id then
        Traffic.Flow.scale_payloads f factor
      else f)

(* --- exactness -------------------------------------------------------- *)

let test_exact_attribution () =
  List.iter
    (fun (sname, scenario) ->
      List.iter
        (fun (cname, config) ->
          let attr, report = Attribution.analyze ~config scenario in
          if has_bounds report then begin
            List.iter
              (fun (af : Attribution.flow_attr) ->
                List.iter
                  (fun (fa : Attribution.frame_attr) ->
                    if not (Attribution.frame_exact fa) then
                      Alcotest.failf
                        "%s/%s: flow %d frame %d decomposition not exact"
                        sname cname af.Attribution.af_flow.Traffic.Flow.id
                        fa.Attribution.fa_frame)
                  af.Attribution.af_frames)
              attr.Attribution.flows;
            (* Per-frame totals must equal the holistic report's bounds. *)
            List.iter
              (fun (res : Analysis.Result_types.flow_result) ->
                let af =
                  List.find
                    (fun (af : Attribution.flow_attr) ->
                      af.Attribution.af_flow.Traffic.Flow.id
                      = res.Analysis.Result_types.flow.Traffic.Flow.id)
                    attr.Attribution.flows
                in
                Array.iteri
                  (fun k (fr : Analysis.Result_types.frame_result) ->
                    let fa = List.nth af.Attribution.af_frames k in
                    if fa.Attribution.fa_total <> fr.Analysis.Result_types.total
                    then
                      Alcotest.failf
                        "%s/%s: flow %d frame %d total %d <> report %d" sname
                        cname res.Analysis.Result_types.flow.Traffic.Flow.id k
                        fa.Attribution.fa_total fr.Analysis.Result_types.total)
                  res.Analysis.Result_types.frames)
              report.Analysis.Holistic.results
          end)
        configs)
    (named_scenarios ())

let test_exact_on_overload () =
  (* Deadline_miss reports are fixed points too — the decomposition must
     stay exact on the rejecting run the hints reason about. *)
  let attr, report = Attribution.analyze (fig1_overloaded ()) in
  (match report.Analysis.Holistic.verdict with
  | Analysis.Holistic.Deadline_miss _ -> ()
  | v ->
      Alcotest.failf "expected a deadline miss, got %s"
        (Format.asprintf "%a" Analysis.Holistic.pp_verdict v));
  List.iter
    (fun (af : Attribution.flow_attr) ->
      List.iter
        (fun fa ->
          Alcotest.(check bool) "exact under miss" true
            (Attribution.frame_exact fa))
        af.Attribution.af_frames)
    attr.Attribution.flows

(* --- rejection provenance --------------------------------------------- *)

let test_binding_rejection () =
  let attr, _report = Attribution.analyze (fig1_overloaded ()) in
  let s =
    match Attribution.summarize attr with
    | Some s -> s
    | None -> Alcotest.fail "summary missing on a miss"
  in
  Alcotest.(check bool) "worst frame has negative slack" true
    (s.Attribution.s_slack < 0);
  Alcotest.(check int) "the inflated video flow binds"
    Workload.Scenarios.video_flow_id s.Attribution.s_flow_id;
  Alcotest.(check bool) "binding hop named" true (s.Attribution.s_hop <> "-");
  (match s.Attribution.s_interferer with
  | Some (_, name, charge) ->
      Alcotest.(check bool) "interferer charge positive" true (charge > 0);
      Alcotest.(check bool) "interferer named" true (name <> "")
  | None -> Alcotest.fail "binding interferer missing");
  let text = Render.rejection attr in
  Alcotest.(check bool) "rejection names the violated constraint" true
    (let contains needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i =
         i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
       in
       go 0
     in
     contains "exceeds deadline" text && contains "interferer" text)

(* --- hints ------------------------------------------------------------ *)

let test_hints_admit_when_applied () =
  let scenario = fig1_overloaded () in
  let hints =
    Hints.for_flow scenario ~flow_id:Workload.Scenarios.video_flow_id ()
  in
  let scale =
    List.find_map
      (function Hints.Payload_scale s -> Some s | _ -> None)
      hints
  in
  match scale with
  | None -> Alcotest.fail "expected a payload-scale hint"
  | Some s ->
      Alcotest.(check bool) "scale in (0, 1)" true (s > 0. && s < 1.);
      let repaired =
        Traffic.Scenario.map_flows scenario ~f:(fun f ->
            if f.Traffic.Flow.id = Workload.Scenarios.video_flow_id then
              Traffic.Flow.scale_payloads f s
            else f)
      in
      let _, report = Attribution.analyze repaired in
      Alcotest.(check bool) "applying the hint admits" true
        (report.Analysis.Holistic.verdict = Analysis.Holistic.Schedulable)

let test_hints_unknown_flow () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  Alcotest.check_raises "unknown flow id"
    (Invalid_argument "Hints.for_flow: unknown flow id") (fun () ->
      ignore (Hints.for_flow scenario ~flow_id:999 ()))

(* --- convergence telemetry -------------------------------------------- *)

let test_convergence_record () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let (_, report), conv = Convergence.record (fun () -> Attribution.analyze scenario) in
  let rounds = conv.Convergence.cv_rounds in
  Alcotest.(check int) "one record per holistic round"
    report.Analysis.Holistic.rounds (List.length rounds);
  (* The run converged, so its last round saw no jitter movement. *)
  (match List.rev rounds with
  | last :: _ ->
      Alcotest.(check int) "final round moves nothing" 0
        last.Convergence.cv_moving;
      Alcotest.(check int) "final round max delta" 0
        last.Convergence.cv_max_delta
  | [] -> Alcotest.fail "no rounds recorded");
  List.iteri
    (fun i r ->
      Alcotest.(check int) "rounds numbered from 1" (i + 1)
        r.Convergence.cv_round;
      let sum_moving =
        List.length
          (List.filter (fun (_, d) -> d <> 0) r.Convergence.cv_deltas)
      in
      Alcotest.(check int) "moving counts nonzero deltas" sum_moving
        r.Convergence.cv_moving)
    rounds;
  List.iter
    (fun (_, stable) ->
      Alcotest.(check bool) "stabilization round within run" true
        (stable >= 0 && stable <= report.Analysis.Holistic.rounds))
    (Convergence.rounds_to_stabilize conv);
  (* Every JSONL line is a well-formed document. *)
  String.split_on_char '\n' (Convergence.to_jsonl conv)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Json.parse line with
         | Ok (Json.Obj fields) ->
             Alcotest.(check bool) "round field present" true
               (List.mem_assoc "round" fields)
         | Ok _ -> Alcotest.fail "JSONL line is not an object"
         | Error e -> Alcotest.failf "JSONL line unparseable: %s" e)

let test_convergence_lane_in_trace () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let (_, _report), conv =
    Convergence.record (fun () -> Attribution.analyze scenario)
  in
  let tracer = Gmf_obs.Tracer.default in
  let was = Gmf_obs.Tracer.enabled tracer in
  Gmf_obs.Tracer.set_enabled tracer true;
  Gmf_obs.Tracer.reset tracer;
  Convergence.emit_spans tracer conv;
  let spans = Gmf_obs.Tracer.spans tracer in
  let trace = Gmf_obs.Export.chrome_trace (Gmf_obs.Tracer.spans tracer) in
  Gmf_obs.Tracer.set_enabled tracer was;
  Alcotest.(check bool) "lane emitted one span per round" true
    (List.length spans >= List.length conv.Convergence.cv_rounds);
  match Json.parse trace with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome trace unparseable: %s" e

(* --- renderings ------------------------------------------------------- *)

let test_to_json_reproduces_bounds () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let attr, report = Attribution.analyze scenario in
  let doc =
    match Json.parse (Render.to_json attr) with
    | Ok v -> v
    | Error e -> Alcotest.failf "to_json unparseable: %s" e
  in
  (match Json.member "verdict" doc with
  | Some (Json.Str "schedulable") -> ()
  | _ -> Alcotest.fail "verdict field");
  (match Json.member "rounds" doc with
  | Some (Json.Num r) ->
      Alcotest.(check int) "rounds" report.Analysis.Holistic.rounds
        (int_of_float r)
  | _ -> Alcotest.fail "rounds field");
  let flows =
    match Json.member "flows" doc with
    | Some (Json.Arr fs) -> fs
    | _ -> Alcotest.fail "flows array"
  in
  Alcotest.(check int) "every flow rendered"
    (List.length attr.Attribution.flows)
    (List.length flows);
  (* Summed leaf terms reproduce each frame's holistic bound exactly:
     the "exact" flag is asserted per frame by the renderer, and the
     totals in the document match the report. *)
  List.iter
    (fun fv ->
      let frames =
        match Json.member "frames" fv with
        | Some (Json.Arr fr) -> fr
        | _ -> Alcotest.fail "frames array"
      in
      List.iter
        (fun frv ->
          match Json.member "exact" frv with
          | Some (Json.Bool true) -> ()
          | _ -> Alcotest.fail "frame not marked exact")
        frames)
    flows

(* --- session explain payloads ----------------------------------------- *)

let trace_of_string text =
  match Scenario_io.Admtrace.of_string text with
  | Ok t -> t
  | Error e -> Alcotest.failf "trace parse: %a" Scenario_io.Parse.pp_error e

let test_session_explain () =
  let trace =
    trace_of_string
      "node h0 endhost\nnode h1 endhost\nnode h2 endhost\nnode h3 endhost\n\
       node sw switch\n\
       duplex h0 sw rate=100M prop=2us\nduplex h1 sw rate=100M prop=2us\n\
       duplex h2 sw rate=100M prop=2us\nduplex h3 sw rate=100M prop=2us\n\
       switch sw ports=4 cpus=1 croute=2.7us csend=1us\n\
       admit flow c0 from=h0 to=h1 prio=5 encap=rtp\n\
      \  frame period=20ms deadline=150ms payload=160B\nend\n\
       admit flow c1 from=h2 to=h3 prio=6 encap=rtp\n\
      \  frame period=20ms deadline=150ms payload=160B\nend\n"
  in
  let { Gmf_admctl.Replay.outcomes; _ } =
    Gmf_admctl.Replay.run ~explain:true trace
  in
  List.iter
    (fun (o : Gmf_admctl.Session.outcome) ->
      match o.Gmf_admctl.Session.explain with
      | None -> Alcotest.fail "explain session outcome lacks a payload"
      | Some s ->
          Alcotest.(check bool) "admitted set has slack" true
            (s.Attribution.s_slack >= 0);
          let line = Gmf_admctl.Replay.outcome_line o in
          let contains needle hay =
            let nl = String.length needle and hl = String.length hay in
            let rec go i =
              i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "transcript carries a binding line" true
            (contains "binding:" line))
    outcomes;
  (* A plain session stays byte-identical: no explain payloads. *)
  let { Gmf_admctl.Replay.outcomes = plain; _ } = Gmf_admctl.Replay.run trace in
  List.iter
    (fun (o : Gmf_admctl.Session.outcome) ->
      Alcotest.(check bool) "plain session carries no payload" true
        (o.Gmf_admctl.Session.explain = None))
    plain

let tests =
  [
    Alcotest.test_case "attribution is exact across scenarios and variants"
      `Quick test_exact_attribution;
    Alcotest.test_case "attribution stays exact on a deadline miss" `Quick
      test_exact_on_overload;
    Alcotest.test_case "rejection names binding constraint and interferer"
      `Quick test_binding_rejection;
    Alcotest.test_case "payload-scale hint admits when applied" `Quick
      test_hints_admit_when_applied;
    Alcotest.test_case "hints reject unknown flow ids" `Quick
      test_hints_unknown_flow;
    Alcotest.test_case "convergence record mirrors round structure" `Quick
      test_convergence_record;
    Alcotest.test_case "convergence lane renders to valid chrome trace"
      `Quick test_convergence_lane_in_trace;
    Alcotest.test_case "to_json parses and reproduces the bounds" `Quick
      test_to_json_reproduces_bounds;
    Alcotest.test_case "session outcomes carry explain payloads" `Quick
      test_session_explain;
  ]
