open Gmf_util

(* ---------------- engine ---------------- *)

let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  Sim.Engine.schedule_at e ~at:30 (note "c");
  Sim.Engine.schedule_at e ~at:10 (note "a");
  Sim.Engine.schedule_at e ~at:20 (note "b");
  Sim.Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Sim.Engine.now e)

let test_engine_same_time_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> Sim.Engine.schedule_at e ~at:5 (fun () -> log := tag :: !log))
    [ "1"; "2"; "3" ];
  Sim.Engine.run e;
  Alcotest.(check (list string)) "fifo among equals" [ "1"; "2"; "3" ]
    (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule_at e ~at:10 (fun () ->
      log := "outer" :: !log;
      Sim.Engine.schedule_after e ~delay:5 (fun () -> log := "inner" :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "clock" 15 (Sim.Engine.now e)

let test_engine_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  List.iter
    (fun t -> Sim.Engine.schedule_at e ~at:t (fun () -> incr count))
    [ 1; 2; 3; 4 ];
  Sim.Engine.run ~until:2 e;
  Alcotest.(check int) "two ran" 2 !count;
  Alcotest.(check int) "two left" 2 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check int) "all ran" 4 !count

let test_engine_past_rejected () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule_at e ~at:10 (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
          Sim.Engine.schedule_at e ~at:5 (fun () -> ())));
  Sim.Engine.run e

(* ---------------- collector ---------------- *)

let dummy_flow () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  Traffic.Flow.make ~id:0 ~name:"f" ~spec:(Workload.Voip.g711_spec ())
    ~encap:Ethernet.Encap.Udp
    ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
    ~priority:5

let test_collector () =
  let c = Sim.Collector.create () in
  let flow = dummy_flow () in
  Sim.Collector.note_released c;
  Sim.Collector.note_released c;
  Sim.Collector.record c ~flow ~frame:0 ~released:100 ~completed:250;
  Alcotest.(check int) "released" 2 (Sim.Collector.released_count c);
  Alcotest.(check int) "completed" 1 (Sim.Collector.completed_count c);
  Alcotest.(check int) "incomplete" 1 (Sim.Collector.incomplete c);
  Alcotest.(check (option int)) "max response" (Some 150)
    (Sim.Collector.max_response c ~flow:0 ~frame:0);
  Alcotest.(check (option int)) "missing frame" None
    (Sim.Collector.max_response c ~flow:0 ~frame:1);
  Sim.Collector.record c ~flow ~frame:1 ~released:0 ~completed:400;
  Alcotest.(check (option int)) "flow max over frames" (Some 400)
    (Sim.Collector.max_response_flow c ~flow:0);
  Alcotest.(check (list int)) "flows seen" [ 0 ] (Sim.Collector.flows_seen c);
  Alcotest.check_raises "negative response"
    (Invalid_argument "Collector.record: completion before release") (fun () ->
      Sim.Collector.record c ~flow ~frame:0 ~released:10 ~completed:5)

let test_collector_journey_cap () =
  let c = Sim.Collector.create ~journey_cap:2 () in
  for seq = 0 to 4 do
    Sim.Collector.record_journey c ~flow:0 ~frame:0 ~seq
      ~events:[ (0, "released"); (100, "completed") ]
  done;
  Alcotest.(check int) "retained at cap" 2
    (List.length (Sim.Collector.journeys c));
  Alcotest.(check int) "all counted" 5 (Sim.Collector.journey_count c);
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Collector.create: negative journey cap") (fun () ->
      ignore (Sim.Collector.create ~journey_cap:(-1) ()))

(* ---------------- netsim ---------------- *)

(* Hand-traced timeline for one single-Ethernet-frame packet crossing one
   switch at 10 Mbit/s (derivation in the test source):
   tx 1.2304ms + CROUTE 2.7us + CSEND 1us + tx 1.2304ms = 2.4645 ms. *)
let expected_single = 1_230_400 + 2_700 + 1_000 + 1_230_400

let single_flow_scenario ?(payload_bytes = 1_472) ?(period = Timeunit.ms 10) ()
    =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period ~deadline:(Timeunit.ms 50) ~jitter:0
          ~payload_bits:(8 * payload_bytes);
      ]
  in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"solo" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  Traffic.Scenario.make ~topo ~flows:[ flow ] ()

let run_ms scenario ms =
  Sim.Netsim.run
    ~config:{ Sim.Sim_config.default with duration = Timeunit.ms ms }
    scenario

let test_netsim_single_packet_timeline () =
  let scenario = single_flow_scenario () in
  let report = run_ms scenario 35 in
  Alcotest.(check int) "4 packets released" 4 report.Sim.Netsim.packets_released;
  Alcotest.(check int) "all completed" 0
    (Sim.Collector.incomplete report.Sim.Netsim.collector);
  Alcotest.(check (option int)) "exact response" (Some expected_single)
    (Sim.Collector.max_response report.Sim.Netsim.collector ~flow:0 ~frame:0);
  (* Uncontended periodic flow: every instance sees the same response. *)
  let stats =
    Option.get
      (Sim.Collector.responses report.Sim.Netsim.collector ~flow:0 ~frame:0)
  in
  Alcotest.(check int) "min = max" (Stats.min stats) (Stats.max stats)

let test_netsim_fragmented_packet () =
  (* 2000-byte payload -> nbits = 16064 -> fragments of 12304 and 4688 wire
     bits.  Hand-traced completion: fragment 2 reaches the switch at
     1.6992 ms, is routed by 1.7019 ms, then waits for fragment 1's
     transmission (until 2.4645 ms) because the paper's card model commits
     one frame at a time; the egress task then moves it (1 us) and its
     468.8 us transmission ends at 2.9343 ms. *)
  let scenario = single_flow_scenario ~payload_bytes:2_000 () in
  let report = run_ms scenario 5 in
  Alcotest.(check (option int)) "exact fragmented response"
    (Some 2_934_300)
    (Sim.Collector.max_response report.Sim.Netsim.collector ~flow:0 ~frame:0)

let test_netsim_conservation () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let report = run_ms scenario 500 in
  Alcotest.(check int) "nothing stuck" 0
    (Sim.Collector.incomplete report.Sim.Netsim.collector);
  Alcotest.(check bool) "packets flowed" true
    (report.Sim.Netsim.packets_completed > 50);
  (* Six flows all completed something. *)
  Alcotest.(check (list int)) "all flows seen" [ 0; 1; 2; 3; 4; 5 ]
    (Sim.Collector.flows_seen report.Sim.Netsim.collector)

let test_netsim_deterministic () =
  let run () =
    let report = run_ms (Workload.Scenarios.fig1_videoconf ()) 200 in
    List.map
      (fun fid ->
        Sim.Collector.max_response_flow report.Sim.Netsim.collector ~flow:fid)
      (Sim.Collector.flows_seen report.Sim.Netsim.collector)
  in
  Alcotest.(check (list (option int))) "same seed, same run" (run ()) (run ())

let test_netsim_seed_changes_random_runs () =
  let run seed =
    let config =
      {
        Sim.Sim_config.default with
        duration = Timeunit.ms 300;
        seed;
        release = Sim.Sim_config.Random_slack 0.5;
        random_phasing = true;
      }
    in
    let report = Sim.Netsim.run ~config (Workload.Scenarios.fig1_videoconf ()) in
    report.Sim.Netsim.packets_released
  in
  (* Different seeds shift phases/slacks; released counts usually differ.
     At minimum the runs must both make progress. *)
  Alcotest.(check bool) "seeded runs progress" true
    (run 1 > 0 && run 2 > 0)

let test_netsim_priority_inversion_bounded () =
  (* One high-priority VoIP flow vs a low-priority bulk flow sharing the
     switch egress: the VoIP response must stay near its uncontended value
     plus at most one blocking frame. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:3 () in
  let voip =
    Traffic.Flow.make ~id:0 ~name:"voip" ~spec:(Workload.Voip.g711_spec ())
      ~encap:Ethernet.Encap.Rtp_udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(2) ])
      ~priority:7
  in
  let bulk_spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 4)
          ~deadline:(Timeunit.ms 100) ~jitter:0 ~payload_bits:(8 * 40_000);
      ]
  in
  let bulk =
    Traffic.Flow.make ~id:1 ~name:"bulk" ~spec:bulk_spec
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(1); sw; hosts.(2) ])
      ~priority:0
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ voip; bulk ] () in
  let report = run_ms scenario 500 in
  let voip_max =
    Option.get (Sim.Collector.max_response_flow report.Sim.Netsim.collector ~flow:0)
  in
  (* Uncontended: ~2 * 193.6us + task costs.  With priority queuing the
     whole 40 kB bulk packet (26 frames, ~32 ms) cannot get in the way;
     only one blocking frame (1.23 ms) plus queueing can. *)
  Alcotest.(check bool)
    (Printf.sprintf "voip shielded by 802.1p (max = %s)"
       (Timeunit.to_string voip_max))
    true
    (voip_max < Timeunit.ms 5)

let test_netsim_metrics () =
  (* With the default registry enabled, a run publishes event and queue
     telemetry. *)
  let reg = Gmf_obs.Metrics.default in
  Gmf_obs.Metrics.set_enabled reg true;
  Gmf_obs.Metrics.reset reg;
  Fun.protect
    ~finally:(fun () ->
      Gmf_obs.Metrics.set_enabled reg false;
      Gmf_obs.Metrics.reset reg)
    (fun () ->
      let report = run_ms (Workload.Scenarios.fig1_videoconf ()) 100 in
      Alcotest.(check bool) "events dispatched" true
        (Gmf_obs.Metrics.counter_value
           (Gmf_obs.Metrics.counter reg "sim.events.dispatched")
         > 0);
      Alcotest.(check int) "released matches report"
        report.Sim.Netsim.packets_released
        (Gmf_obs.Metrics.counter_value
           (Gmf_obs.Metrics.counter reg "sim.packets.released"));
      Alcotest.(check bool) "heap high-water" true
        (Gmf_obs.Metrics.gauge_value
           (Gmf_obs.Metrics.gauge reg "sim.heap.max_pending")
         >= 1.0);
      Alcotest.(check bool) "egress queue high-water" true
        (Gmf_obs.Metrics.gauge_value
           (Gmf_obs.Metrics.gauge reg "sim.queue.egress_high_water")
         >= 1.0);
      Alcotest.(check bool) "stride dispatches" true
        (Gmf_obs.Metrics.counter_value
           (Gmf_obs.Metrics.counter reg "stride.dispatches")
         > 0))

let tests =
  [
    Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine same-time fifo" `Quick
      test_engine_same_time_fifo;
    Alcotest.test_case "engine nested" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine until" `Quick test_engine_until;
    Alcotest.test_case "engine rejects past" `Quick test_engine_past_rejected;
    Alcotest.test_case "collector" `Quick test_collector;
    Alcotest.test_case "single packet timeline" `Quick
      test_netsim_single_packet_timeline;
    Alcotest.test_case "fragmented packet timeline" `Quick
      test_netsim_fragmented_packet;
    Alcotest.test_case "conservation on Figure 1" `Quick
      test_netsim_conservation;
    Alcotest.test_case "deterministic replay" `Quick test_netsim_deterministic;
    Alcotest.test_case "random seeds progress" `Quick
      test_netsim_seed_changes_random_runs;
    Alcotest.test_case "802.1p shields voip" `Quick
      test_netsim_priority_inversion_bounded;
  ]
