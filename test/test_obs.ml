(* Tests of the observability library: metrics registry, span tracer,
   exporters. *)
open Gmf_obs

(* ---------------- metrics registry ---------------- *)

let test_metrics_disabled_noop () =
  let reg = Metrics.create () in
  Alcotest.(check bool) "disabled by default" false (Metrics.enabled reg);
  let c = Metrics.counter reg "c" in
  let g = Metrics.gauge reg "g" in
  let h = Metrics.histogram reg "h" in
  Metrics.incr c;
  Metrics.incr ~by:10 c;
  Metrics.set_gauge g 3.0;
  Metrics.observe h 5;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Metrics.gauge_value g);
  let snap = Metrics.snapshot reg in
  let summary = List.assoc "h" snap.Metrics.histograms in
  Alcotest.(check int) "histogram untouched" 0 summary.Metrics.h_count

let test_metrics_counters_gauges () =
  let reg = Metrics.create ~enabled:true () in
  let c = Metrics.counter reg "events" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.counter_value c);
  (* Handles intern: same name yields the same cell. *)
  Metrics.incr (Metrics.counter reg "events");
  Alcotest.(check int) "interned handle" 43 (Metrics.counter_value c);
  let g = Metrics.gauge reg "depth" in
  Metrics.set_gauge g 7.0;
  Metrics.set_gauge g 3.0;
  Alcotest.(check (float 0.)) "gauge holds last" 3.0 (Metrics.gauge_value g);
  Alcotest.(check (float 0.)) "gauge tracks max" 7.0 (Metrics.gauge_max g)

let test_metrics_histogram_bucketing () =
  let reg = Metrics.create ~enabled:true () in
  let h = Metrics.histogram ~bounds:[| 10; 100; 1000 |] reg "lat" in
  List.iter (Metrics.observe h) [ 1; 10; 11; 100; 5_000; 7_000 ];
  let snap = Metrics.snapshot reg in
  let summary = List.assoc "lat" snap.Metrics.histograms in
  Alcotest.(check int) "count" 6 summary.Metrics.h_count;
  Alcotest.(check int) "sum" 12_122 summary.Metrics.h_sum;
  Alcotest.(check (option int)) "min" (Some 1) summary.Metrics.h_min;
  Alcotest.(check (option int)) "max" (Some 7_000) summary.Metrics.h_max;
  Alcotest.(check (list (pair (option int) int)))
    "buckets: <=10 holds 1 and 10; <=100 holds 11 and 100; overflow holds 2"
    [ (Some 10, 2); (Some 100, 2); (Some 1000, 0); (None, 2) ]
    summary.Metrics.h_buckets;
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Metrics.histogram: bounds not strictly increasing")
    (fun () -> ignore (Metrics.histogram ~bounds:[| 5; 5 |] reg "bad"));
  Alcotest.check_raises "empty bounds"
    (Invalid_argument "Metrics.histogram: empty bounds") (fun () ->
      ignore (Metrics.histogram ~bounds:[||] reg "bad"))

let test_metrics_reset_and_snapshot_order () =
  let reg = Metrics.create ~enabled:true () in
  Metrics.incr (Metrics.counter reg "zeta");
  Metrics.incr (Metrics.counter reg "alpha");
  Metrics.set_gauge (Metrics.gauge reg "g") 2.5;
  let snap = Metrics.snapshot reg in
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("alpha", 1); ("zeta", 1) ]
    snap.Metrics.counters;
  Metrics.reset reg;
  let c = Metrics.counter reg "zeta" in
  Alcotest.(check int) "reset zeroes but keeps handles" 0
    (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "handle live after reset" 1 (Metrics.counter_value c)

(* ---------------- tracer ---------------- *)

(* A deterministic clock: each reading advances by the next step. *)
let stepped_clock steps =
  let remaining = ref steps and now = ref 0 in
  fun () ->
    (match !remaining with
    | [] -> ()
    | s :: rest ->
        now := !now + s;
        remaining := rest);
    !now

let test_tracer_nesting () =
  let clock = stepped_clock [ 100; 10; 10; 10; 10 ] in
  let tr = Tracer.create ~enabled:true ~clock () in
  Tracer.enter tr "outer";
  Tracer.enter ~cat:"analysis" tr "inner";
  Tracer.exit tr;
  Tracer.exit tr;
  match Tracer.spans tr with
  | [ inner; outer ] ->
      (* Spans are recorded at [exit], so the inner span lands first. *)
      Alcotest.(check string) "inner name" "inner" inner.Tracer.name;
      Alcotest.(check string) "inner cat" "analysis" inner.Tracer.cat;
      Alcotest.(check int) "inner depth" 1 inner.Tracer.depth;
      Alcotest.(check int) "inner begin (re-based)" 10 inner.Tracer.begin_ns;
      Alcotest.(check int) "inner duration" 10 inner.Tracer.dur_ns;
      Alcotest.(check int) "outer depth" 0 outer.Tracer.depth;
      Alcotest.(check int) "outer begin" 0 outer.Tracer.begin_ns;
      Alcotest.(check int) "outer spans everything" 30 outer.Tracer.dur_ns
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_tracer_with_span_and_errors () =
  let tr = Tracer.create ~enabled:true ~clock:(stepped_clock [ 0; 1; 1 ]) () in
  let r = Tracer.with_span tr "work" (fun () -> 99) in
  Alcotest.(check int) "with_span returns" 99 r;
  Alcotest.(check int) "one span" 1 (List.length (Tracer.spans tr));
  (* The span closes even when the body raises. *)
  (try Tracer.with_span tr "boom" (fun () -> failwith "x") with _ -> ());
  Alcotest.(check int) "raised span recorded" 2 (List.length (Tracer.spans tr));
  Alcotest.check_raises "unbalanced exit"
    (Invalid_argument "Tracer.exit: no open span") (fun () -> Tracer.exit tr);
  (* Disabled tracer: everything is a no-op, including exit. *)
  let off = Tracer.create () in
  Tracer.enter off "ignored";
  Tracer.exit off;
  Tracer.exit off;
  Alcotest.(check int) "disabled records nothing" 0 (Tracer.recorded off)

let test_tracer_ring_and_aggregate () =
  let tr = Tracer.create ~enabled:true ~capacity:3 () in
  for i = 1 to 5 do
    Tracer.emit tr ~name:"tick" ~begin_ns:(i * 10) ~end_ns:((i * 10) + i)
  done;
  Alcotest.(check int) "recorded counts all" 5 (Tracer.recorded tr);
  Alcotest.(check int) "dropped = recorded - capacity" 2 (Tracer.dropped tr);
  let retained = Tracer.spans tr in
  Alcotest.(check (list int)) "ring keeps newest, oldest first"
    [ 30; 40; 50 ]
    (List.map (fun s -> s.Tracer.begin_ns) retained);
  (* Aggregates survive ring overwrite: durations 1+2+3+4+5 = 15. *)
  Alcotest.(check (list (triple string int int)))
    "aggregate over all recorded"
    [ ("tick", 5, 15) ]
    (Tracer.aggregate tr);
  Tracer.reset tr;
  Alcotest.(check int) "reset clears" 0 (Tracer.recorded tr);
  Alcotest.(check bool) "reset keeps enabled" true (Tracer.enabled tr)

let test_tracer_emit_validation () =
  let tr = Tracer.create ~enabled:true () in
  Alcotest.check_raises "backwards span"
    (Invalid_argument "Tracer.emit: span ends before it begins") (fun () ->
      Tracer.emit tr ~name:"bad" ~begin_ns:10 ~end_ns:5);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Tracer.create: non-positive capacity") (fun () ->
      ignore (Tracer.create ~capacity:0 ()))

(* ---------------- exporters ---------------- *)

let test_export_jsonl_roundtrip () =
  let span =
    {
      Tracer.name = "stage \"in\"\n4";
      cat = "analysis";
      tid = 3;
      begin_ns = 1_234;
      dur_ns = 567;
      depth = 2;
    }
  in
  (match Export.span_of_jsonl (Export.span_to_jsonl span) with
  | Ok parsed ->
      Alcotest.(check string) "name survives escaping" span.Tracer.name
        parsed.Tracer.name;
      Alcotest.(check bool) "full round-trip" true (parsed = span)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (match Export.span_of_jsonl "{\"name\":\"x\"" with
  | Ok _ -> Alcotest.fail "truncated line must not parse"
  | Error _ -> ());
  match Export.span_of_jsonl "not json" with
  | Ok _ -> Alcotest.fail "garbage must not parse"
  | Error _ -> ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_export_chrome_trace () =
  let tr = Tracer.create ~enabled:true () in
  Tracer.emit tr ~cat:"packet" ~tid:2 ~name:"video#0" ~begin_ns:1_000
    ~end_ns:3_500;
  let doc = Export.chrome_trace (Tracer.spans tr) in
  Alcotest.(check bool) "has traceEvents" true (contains doc "\"traceEvents\"");
  Alcotest.(check bool) "complete event" true (contains doc "\"ph\":\"X\"");
  (* 1000 ns -> 1.000 us, 2500 ns -> 2.500 us. *)
  Alcotest.(check bool) "ts in microseconds" true (contains doc "\"ts\":1.000");
  Alcotest.(check bool) "dur in microseconds" true
    (contains doc "\"dur\":2.500");
  Alcotest.(check bool) "tid preserved" true (contains doc "\"tid\":2")

let test_export_metrics_formats () =
  let reg = Metrics.create ~enabled:true () in
  Metrics.incr ~by:5 (Metrics.counter reg "sim.events");
  Metrics.set_gauge (Metrics.gauge reg "heap") 12.0;
  Metrics.observe (Metrics.histogram ~bounds:[| 2; 4 |] reg "iters") 3;
  let snap = Metrics.snapshot reg in
  let jsonl = Export.metrics_to_jsonl snap in
  Alcotest.(check bool) "counter line" true
    (contains jsonl "\"metric\":\"sim.events\"");
  Alcotest.(check bool) "counter kind" true
    (contains jsonl "\"kind\":\"counter\"");
  Alcotest.(check bool) "histogram buckets" true (contains jsonl "\"le\":2");
  Alcotest.(check bool) "overflow bucket" true (contains jsonl "\"le\":null");
  let tables = Export.metrics_tables snap in
  Alcotest.(check bool) "table mentions counter" true
    (contains tables "sim.events");
  Alcotest.(check bool) "table mentions histogram" true
    (contains tables "iters");
  Alcotest.(check string) "no metrics, no tables" ""
    (Export.metrics_tables (Metrics.snapshot (Metrics.create ())));
  let phases = Export.phase_table [ ("holistic.round", 4, 8_000) ] in
  Alcotest.(check bool) "phase table has name" true
    (contains phases "holistic.round");
  Alcotest.(check string) "no phases, no table" "" (Export.phase_table [])

let test_histogram_percentiles () =
  let reg = Metrics.create ~enabled:true () in
  let h = Metrics.histogram ~bounds:[| 10; 1_000 |] reg "lat" in
  for i = 100 downto 1 do
    Metrics.observe h i
  done;
  let summary = List.assoc "lat" (Metrics.snapshot reg).Metrics.histograms in
  Alcotest.(check (option int)) "p50 nearest-rank" (Some 50)
    summary.Metrics.h_p50;
  Alcotest.(check (option int)) "p95 nearest-rank" (Some 95)
    summary.Metrics.h_p95;
  let empty = Metrics.histogram ~bounds:[| 10 |] reg "never" in
  ignore empty;
  let summary = List.assoc "never" (Metrics.snapshot reg).Metrics.histograms in
  Alcotest.(check (option int)) "empty p50" None summary.Metrics.h_p50;
  Alcotest.(check (option int)) "empty p95" None summary.Metrics.h_p95

(* Absorbing a dump must reproduce the source registry exactly —
   including bucket counts and order statistics, which is why the dump
   carries raw samples, not summaries.  This is the property the
   Gmf_exec pool relies on for seq == pool telemetry. *)
let test_dump_absorb_equality () =
  let src = Metrics.create ~enabled:true () in
  Metrics.incr ~by:7 (Metrics.counter src "cases");
  Metrics.incr (Metrics.counter src "rounds");
  Metrics.set_gauge (Metrics.gauge src "depth") 9.0;
  Metrics.set_gauge (Metrics.gauge src "depth") 4.0;
  let h = Metrics.histogram ~bounds:[| 10; 100; 1_000 |] src "lat" in
  List.iter (Metrics.observe h) [ 250; 3; 99; 17; 4_000 ];
  let dst = Metrics.create ~enabled:true () in
  Metrics.absorb dst (Metrics.dump src);
  Alcotest.(check bool) "snapshots identical" true
    (Metrics.snapshot src = Metrics.snapshot dst);
  (* Absorbing into a registry with prior content accumulates. *)
  Metrics.absorb dst (Metrics.dump src);
  Alcotest.(check int) "counters add up" 14
    (Metrics.counter_value (Metrics.counter dst "cases"));
  let summary = List.assoc "lat" (Metrics.snapshot dst).Metrics.histograms in
  Alcotest.(check int) "histogram samples add up" 10 summary.Metrics.h_count

(* ---------------- generic JSON reader ---------------- *)

let test_json_parse () =
  let doc =
    "{\"a\": {\"b\": [1, 2.5, -3e2]}, \"s\": \"q\\\"\\u0041\\ud83d\\ude00\", \
     \"t\": true, \"n\": null}"
  in
  (match Export.Json.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
      (match Export.Json.member "s" v with
      | Some (Export.Json.Str s) ->
          (* A = A; the surrogate pair decodes to 4 UTF-8 bytes. *)
          Alcotest.(check string) "string escapes" "q\"A\xf0\x9f\x98\x80" s
      | _ -> Alcotest.fail "member s");
      Alcotest.(check (list (pair string (float 0.))))
        "number leaves with dotted paths"
        [ ("a.b.0", 1.); ("a.b.1", 2.5); ("a.b.2", -300.) ]
        (Export.Json.number_leaves v));
  (match Export.Json.parse "{\"a\":1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage must not parse"
  | Error _ -> ());
  match Export.Json.parse "{\"a\":}" with
  | Ok _ -> Alcotest.fail "missing value must not parse"
  | Error _ -> ()

(* ---------------- escaping fuzz ---------------- *)

(* Hostile span names: quotes, backslashes, control characters, raw
   UTF-8, printable noise.  [QCheck.string] draws from the full byte
   range, which covers all of them. *)
let prop_span_jsonl_roundtrip =
  QCheck.Test.make ~name:"span jsonl round-trip survives hostile names"
    ~count:500
    QCheck.(pair string string)
    (fun (name, cat) ->
      let span =
        { Tracer.name; cat; tid = 2; begin_ns = 40; dur_ns = 7; depth = 1 }
      in
      match Export.span_of_jsonl (Export.span_to_jsonl span) with
      | Ok parsed -> parsed = span
      | Error e ->
          QCheck.Test.fail_reportf "no parse for %S: %s" name e)

let prop_chrome_trace_valid_json =
  QCheck.Test.make ~name:"chrome_trace escapes into valid JSON" ~count:200
    QCheck.(small_list (pair string string))
    (fun names ->
      let tr = Tracer.create ~enabled:true () in
      List.iteri
        (fun i (name, cat) ->
          Tracer.emit tr ~cat ~tid:(i mod 3) ~name ~begin_ns:(i * 10)
            ~end_ns:((i * 10) + 5))
        names;
      match Export.Json.parse (Export.chrome_trace (Tracer.spans tr)) with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_reportf "invalid trace JSON: %s" e)

let tests =
  [
    Alcotest.test_case "metrics disabled no-op" `Quick
      test_metrics_disabled_noop;
    Alcotest.test_case "counters and gauges" `Quick
      test_metrics_counters_gauges;
    Alcotest.test_case "histogram bucketing" `Quick
      test_metrics_histogram_bucketing;
    Alcotest.test_case "reset and snapshot order" `Quick
      test_metrics_reset_and_snapshot_order;
    Alcotest.test_case "span nesting" `Quick test_tracer_nesting;
    Alcotest.test_case "with_span and errors" `Quick
      test_tracer_with_span_and_errors;
    Alcotest.test_case "ring buffer and aggregate" `Quick
      test_tracer_ring_and_aggregate;
    Alcotest.test_case "emit validation" `Quick test_tracer_emit_validation;
    Alcotest.test_case "jsonl round-trip" `Quick test_export_jsonl_roundtrip;
    Alcotest.test_case "chrome trace format" `Quick test_export_chrome_trace;
    Alcotest.test_case "metrics export formats" `Quick
      test_export_metrics_formats;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "dump/absorb equality" `Quick
      test_dump_absorb_equality;
    Alcotest.test_case "generic json reader" `Quick test_json_parse;
    QCheck_alcotest.to_alcotest prop_span_jsonl_roundtrip;
    QCheck_alcotest.to_alcotest prop_chrome_trace_valid_json;
  ]
