open Gmf_util

(* ---------------- units ---------------- *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let test_units_duration () =
  Alcotest.(check int) "ns" 250 (ok (Scenario_io.Units.duration "250ns"));
  Alcotest.(check int) "us fractional" 2_700
    (ok (Scenario_io.Units.duration "2.7us"));
  Alcotest.(check int) "ms" (Timeunit.ms 33)
    (ok (Scenario_io.Units.duration "33ms"));
  Alcotest.(check int) "s" (Timeunit.s 1) (ok (Scenario_io.Units.duration "1s"));
  Alcotest.(check int) "bare zero" 0 (ok (Scenario_io.Units.duration "0"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Scenario_io.Units.duration "fast"));
  Alcotest.(check bool) "negative rejected" true
    (Result.is_error (Scenario_io.Units.duration "-3ms"))

let test_units_rate () =
  Alcotest.(check int) "bare" 9_600 (ok (Scenario_io.Units.rate "9600"));
  Alcotest.(check int) "k" 64_000 (ok (Scenario_io.Units.rate "64k"));
  Alcotest.(check int) "M" 100_000_000 (ok (Scenario_io.Units.rate "100M"));
  Alcotest.(check int) "G" 1_000_000_000 (ok (Scenario_io.Units.rate "1G"));
  Alcotest.(check bool) "zero rejected" true
    (Result.is_error (Scenario_io.Units.rate "0"))

let test_units_size () =
  Alcotest.(check int) "bytes" 12_000 (ok (Scenario_io.Units.size_bits "1500B"));
  Alcotest.(check int) "bits" 100 (ok (Scenario_io.Units.size_bits "100b"));
  Alcotest.(check int) "bare = bits" 100 (ok (Scenario_io.Units.size_bits "100"))

let test_units_roundtrip () =
  List.iter
    (fun ns ->
      Alcotest.(check int)
        (Printf.sprintf "duration %d" ns)
        ns
        (ok (Scenario_io.Units.duration (Scenario_io.Units.print_duration ns))))
    [ 0; 1; 999; 1_000; 2_700; 14_800; Timeunit.ms 33; Timeunit.s 2 ];
  List.iter
    (fun bps ->
      Alcotest.(check int)
        (Printf.sprintf "rate %d" bps)
        bps
        (ok (Scenario_io.Units.rate (Scenario_io.Units.print_rate bps))))
    [ 9_600; 64_000; 10_000_000; 1_000_000_000 ];
  List.iter
    (fun bits ->
      Alcotest.(check int)
        (Printf.sprintf "size %d" bits)
        bits
        (ok
           (Scenario_io.Units.size_bits (Scenario_io.Units.print_size_bits bits))))
    [ 0; 7; 8; 12_000; 352_064 ]

(* ---------------- parsing ---------------- *)

let example_text =
  {|# two PCs behind one switch
node pc_a endhost
node pc_b endhost
node sw switch
duplex pc_a sw rate=100M prop=5us
duplex pc_b sw rate=100M prop=5us
switch sw ports=4 cpus=1 croute=2.7us csend=1us

flow video from=pc_a to=pc_b prio=5 encap=rtp
  frame period=33ms deadline=120ms jitter=1ms payload=30000B
  frame period=33ms deadline=120ms payload=6000B
end

flow voip from=pc_b to=pc_a route=pc_b,sw,pc_a prio=7 encap=rtp
  frame period=20ms deadline=150ms payload=160B
end
|}

let parse_ok text =
  match Scenario_io.Parse.scenario_of_string text with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse failed: %a" Scenario_io.Parse.pp_error e

let test_parse_example () =
  let s = parse_ok example_text in
  Alcotest.(check int) "two flows" 2 (Traffic.Scenario.flow_count s);
  let video = Traffic.Scenario.flow s 0 in
  Alcotest.(check string) "name" "video" video.Traffic.Flow.name;
  Alcotest.(check int) "frames" 2 (Traffic.Flow.n video);
  Alcotest.(check int) "priority" 5 video.Traffic.Flow.priority;
  Alcotest.(check bool) "encap rtp" true
    (Ethernet.Encap.equal video.Traffic.Flow.encap Ethernet.Encap.Rtp_udp);
  (* shortest-path routing was applied: pc_a -> sw -> pc_b *)
  Alcotest.(check int) "3-node route" 3
    (List.length (Network.Route.nodes video.Traffic.Flow.route));
  (* explicit switch model was picked up *)
  let sw_id = Traffic.Flow.destination video |> fun _ -> 2 in
  Alcotest.(check int) "CIRC from directive" (Timeunit.us_frac 14.8)
    (Traffic.Scenario.circ s sw_id);
  (* payload/jitter/prop parsed with units *)
  let frame0 = Gmf.Spec.frame video.Traffic.Flow.spec 0 in
  Alcotest.(check int) "payload bytes" (8 * 30_000)
    frame0.Gmf.Frame_spec.payload_bits;
  Alcotest.(check int) "jitter" (Timeunit.ms 1) frame0.Gmf.Frame_spec.jitter;
  let link = Network.Topology.link_exn (Traffic.Scenario.topo s) ~src:0 ~dst:2 in
  Alcotest.(check int) "prop" (Timeunit.us 5) link.Network.Link.prop

let check_error text fragment =
  match Scenario_io.Parse.scenario_of_string text with
  | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" fragment
  | Error e ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e.Scenario_io.Parse.message
           fragment)
        true
        (contains e.Scenario_io.Parse.message fragment)

let test_parse_errors () =
  check_error "blorp x" "unknown directive";
  check_error "node a endhost\nnode a endhost" "duplicate node";
  check_error "node a endhost\nlink a b rate=1M" "unknown node";
  check_error "node a endhost\nnode b endhost\nlink a b" "missing required";
  check_error "node a endhost\nnode b endhost\nlink a b rate=fast" "bad rate";
  check_error
    "node a endhost\nnode b endhost\nlink a b rate=1M\nflow f from=a to=b\nend"
    "no frames";
  check_error
    "node a endhost\nnode b endhost\nflow f from=a to=b\n\
     frame period=1ms deadline=1ms payload=1B\nend"
    "no path";
  check_error
    "node a endhost\nnode b endhost\nlink a b rate=1M\nflow f from=a to=b\n\
     frame period=1ms deadline=1ms payload=1B"
    "not closed";
  check_error "frame period=1ms deadline=1ms payload=1B" "outside a flow";
  check_error "end" "'end' without";
  check_error "node s switch\nswitch s ports=5 cpus=2" "evenly divide";
  check_error
    "node a endhost\nnode b endhost\nlink a b rate=1M\n\
     flow f from=a to=b prio=9\nframe period=1ms deadline=1ms payload=1B\nend"
    "prio"

let test_error_line_numbers () =
  match Scenario_io.Parse.scenario_of_string "node a endhost\n\nblorp" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check int) "line 3" 3 e.Scenario_io.Parse.line

let test_error_columns_and_caret () =
  (* The offending token is resolved into a 1-based column on the source
     line, and pp_error renders a caret snippet under it. *)
  (match Scenario_io.Parse.scenario_of_string "node a endhostX" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      Alcotest.(check (option int)) "column" (Some 8) e.Scenario_io.Parse.column;
      Alcotest.(check (option string))
        "source" (Some "node a endhostX") e.Scenario_io.Parse.source;
      Alcotest.(check string) "caret rendering"
        "line 1, column 8: unknown node kind \"endhostX\"\n\
        \  node a endhostX\n\
        \         ^"
        (Format.asprintf "%a" Scenario_io.Parse.pp_error e));
  (* A failure that cannot name a token still carries the source line but
     no column, and renders without a caret. *)
  (match
     Scenario_io.Parse.scenario_of_string
       "node a endhost\nnode b endhost\nlink a b"
   with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      Alcotest.(check (option int)) "no column" None e.Scenario_io.Parse.column;
      Alcotest.(check (option string))
        "source" (Some "link a b") e.Scenario_io.Parse.source;
      Alcotest.(check string) "no caret"
        "line 3: missing required argument rate=...\n  link a b"
        (Format.asprintf "%a" Scenario_io.Parse.pp_error e));
  (* Whole-file errors (line 0) have neither source nor column. *)
  match Scenario_io.Parse.scenario_of_file "/nonexistent/nowhere.gmfnet" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      Alcotest.(check (option string)) "no source" None e.Scenario_io.Parse.source;
      Alcotest.(check (option int)) "no column" None e.Scenario_io.Parse.column

(* ---------------- round trip ---------------- *)

let scenario_signature s =
  let flows =
    List.map
      (fun f ->
        ( f.Traffic.Flow.name,
          f.Traffic.Flow.priority,
          f.Traffic.Flow.encap,
          Network.Route.nodes f.Traffic.Flow.route,
          Array.to_list (Gmf.Spec.frames f.Traffic.Flow.spec) ))
      (Traffic.Scenario.flows s)
  in
  let links =
    List.map
      (fun (l : Network.Link.t) -> (l.src, l.dst, l.rate_bps, l.prop))
      (Network.Topology.links (Traffic.Scenario.topo s))
    |> List.sort compare
  in
  let switches =
    List.map
      (fun id ->
        let m = Traffic.Scenario.switch_model s id in
        ( id,
          m.Click.Switch_model.ninterfaces,
          m.Click.Switch_model.processors,
          m.Click.Switch_model.croute,
          m.Click.Switch_model.csend ))
      (Traffic.Scenario.switch_nodes s)
  in
  (flows, links, switches)

let test_roundtrip_named_scenarios () =
  List.iter
    (fun (name, scenario) ->
      let printed = Scenario_io.Print.to_string scenario in
      let reparsed = parse_ok printed in
      Alcotest.(check bool)
        (name ^ " round-trips")
        true
        (scenario_signature scenario = scenario_signature reparsed))
    [
      ("fig1", Workload.Scenarios.fig1_videoconf ());
      ("voip", Workload.Scenarios.single_switch_voip ());
      ("chain", Workload.Scenarios.multihop_chain ());
    ]

let prop_roundtrip_random =
  QCheck.Test.make ~name:"random scenarios round-trip" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let topo, hosts, _sw = Workload.Topologies.star ~hosts:4 () in
      let pairs = Workload.Random_gen.random_pairs rng ~hosts ~count:3 in
      let flows = Workload.Random_gen.flows_between rng ~topo ~pairs () in
      let scenario = Traffic.Scenario.make ~topo ~flows () in
      let printed = Scenario_io.Print.to_string scenario in
      match Scenario_io.Parse.scenario_of_string printed with
      | Error _ -> false
      | Ok reparsed ->
          scenario_signature scenario = scenario_signature reparsed)

let test_roundtrip_analysis_agrees () =
  (* The reparsed scenario must produce identical bounds. *)
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let reparsed = parse_ok (Scenario_io.Print.to_string scenario) in
  let totals s =
    (Analysis.Holistic.analyze s).Analysis.Holistic.results
    |> List.concat_map (fun r ->
           Array.to_list r.Analysis.Result_types.frames
           |> List.map (fun fr -> fr.Analysis.Result_types.total))
  in
  Alcotest.(check (list int)) "same bounds" (totals scenario) (totals reparsed)

(* ---------------- fault directives ---------------- *)

let fault_text =
  {|node a endhost
node b endhost
node sw switch
duplex a sw rate=100M
duplex b sw rate=100M
fault link a sw at=2ms until=8ms
fault switch sw stall 1ms at=5ms
flow f from=a to=b prio=7 encap=rtp
  frame period=20ms deadline=150ms payload=160B
end
|}

let test_fault_directives () =
  match Scenario_io.Parse.scenario_faults_of_string fault_text with
  | Error e -> Alcotest.failf "parse failed: %a" Scenario_io.Parse.pp_error e
  | Ok { Scenario_io.Parse.scenario; faults } ->
      Alcotest.(check int) "one flow" 1 (Traffic.Scenario.flow_count scenario);
      (* duplex down (2 events) + duplex up (2) + stall (1) *)
      Alcotest.(check int) "five events" 5
        (List.length faults.Gmf_faults.Fault.events);
      Alcotest.(check bool) "hold policy" true
        (faults.Gmf_faults.Fault.policy = Gmf_faults.Fault.Hold);
      Alcotest.(check bool) "validates against the topology" true
        (Gmf_faults.Fault.validate (Traffic.Scenario.topo scenario) faults
        = Ok ());
      Alcotest.(check bool) "stall carries the parsed times" true
        (List.exists
           (function
             | Gmf_faults.Fault.Switch_stall (_, at, d) ->
                 at = Timeunit.ms 5 && d = Timeunit.ms 1
             | _ -> false)
           faults.Gmf_faults.Fault.events);
      (* the schedule-blind entry point parses the same text fine *)
      let s = parse_ok fault_text in
      Alcotest.(check int) "scenario_of_string ignores faults" 1
        (Traffic.Scenario.flow_count s)

let test_fault_errors () =
  check_error "node a endhost\nfault link a b at=1ms" "unknown node";
  check_error
    "node a endhost\nnode b endhost\nfault link a b at=1ms"
    "no link between";
  check_error
    "node a endhost\nnode sw switch\nduplex a sw rate=1M\n\
     fault link a sw at=5ms until=2ms"
    "until must lie after";
  check_error
    "node a endhost\nnode sw switch\nduplex a sw rate=1M\n\
     fault switch a stall 1ms at=0"
    "not a switch";
  check_error "node sw switch\nfault sw down" "usage: fault";
  check_error
    "node a endhost\nnode sw switch\nduplex a sw rate=1M\nfault link a sw"
    "missing required";
  (* caret rendering points at the offending token *)
  match
    Scenario_io.Parse.scenario_faults_of_string
      "node a endhost\nnode b endhost\nfault link a b at=1ms"
  with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      Alcotest.(check int) "line" 3 e.Scenario_io.Parse.line;
      Alcotest.(check (option int))
        "column of the dangling endpoint" (Some 14) e.Scenario_io.Parse.column

let tests =
  [
    Alcotest.test_case "units: durations" `Quick test_units_duration;
    Alcotest.test_case "units: rates" `Quick test_units_rate;
    Alcotest.test_case "units: sizes" `Quick test_units_size;
    Alcotest.test_case "units: round-trip" `Quick test_units_roundtrip;
    Alcotest.test_case "parse example" `Quick test_parse_example;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "error columns and caret" `Quick
      test_error_columns_and_caret;
    Alcotest.test_case "named scenarios round-trip" `Quick
      test_roundtrip_named_scenarios;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    Alcotest.test_case "reparsed analysis agrees" `Quick
      test_roundtrip_analysis_agrees;
    Alcotest.test_case "fault directives" `Quick test_fault_directives;
    Alcotest.test_case "fault directive errors" `Quick test_fault_errors;
  ]
