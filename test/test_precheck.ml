(* Static pre-analysis: interference-graph decomposition, certificate
   soundness against the holistic analysis, and the per-component sharded
   driver reproducing the monolithic fixpoint exactly. *)

module P = Gmf_precheck.Precheck
module Ig = Gmf_precheck.Igraph
module St = Gmf_precheck.Static_tests

let parse text =
  match Scenario_io.Parse.scenario_of_string text with
  | Ok s -> s
  | Error e ->
      Alcotest.failf "scenario parse: %a" Scenario_io.Parse.pp_error e

let verdict_kind = function
  | Analysis.Holistic.Schedulable -> "schedulable"
  | Analysis.Holistic.Deadline_miss _ -> "deadline-miss"
  | Analysis.Holistic.Analysis_failed _ -> "failed"
  | Analysis.Holistic.No_fixed_point _ -> "divergent"

let bounds_of report =
  List.map
    (fun res ->
      ( res.Analysis.Result_types.flow.Traffic.Flow.id,
        Array.to_list
          (Array.map
             (fun fr -> fr.Analysis.Result_types.total)
             res.Analysis.Result_types.frames) ))
    report.Analysis.Holistic.results

(* ------------------------------------------------------------------ *)
(* Interference graph                                                 *)
(* ------------------------------------------------------------------ *)

(* Two disjoint stars: the h-cluster flows and the g-cluster flow cannot
   share a node, so they must land in different components. *)
let two_clusters =
  "node h0 endhost\nnode h1 endhost\nnode h2 endhost\nnode sa switch\n\
   node g0 endhost\nnode g1 endhost\nnode sb switch\n\
   duplex h0 sa rate=100M\nduplex h1 sa rate=100M\nduplex h2 sa rate=100M\n\
   duplex g0 sb rate=100M\nduplex g1 sb rate=100M\n\
   switch sa ports=3 cpus=1 croute=2.7us csend=1us\n\
   switch sb ports=2 cpus=1 croute=2.7us csend=1us\n\
   flow a from=h0 to=h1 prio=5 encap=rtp\n\
   \  frame period=10ms deadline=10ms jitter=0 payload=500B\nend\n\
   flow b from=h1 to=h2 prio=4 encap=rtp\n\
   \  frame period=10ms deadline=10ms jitter=0 payload=500B\nend\n\
   flow c from=g0 to=g1 prio=3 encap=rtp\n\
   \  frame period=10ms deadline=10ms jitter=0 payload=500B\nend\n"

let test_igraph_components () =
  let scenario = parse two_clusters in
  let g = Ig.build scenario in
  let st = Ig.stats g in
  Alcotest.(check int) "flows" 3 st.Ig.flows;
  Alcotest.(check int) "components" 2 st.Ig.components;
  Alcotest.(check int) "largest" 2 st.Ig.largest;
  Alcotest.(check int) "edges" 1 st.Ig.edges;
  Alcotest.(check int) "a and b together"
    (Ig.component_of g 0) (Ig.component_of g 1);
  Alcotest.(check bool) "c apart" false
    (Ig.component_of g 0 = Ig.component_of g 2);
  let comps = Ig.components g in
  Alcotest.(check (list (list int)))
    "members ascending"
    [ [ 0; 1 ]; [ 2 ] ]
    (List.map (fun c -> c.Ig.flow_ids) comps)

(* ------------------------------------------------------------------ *)
(* Consolidated inequalities                                          *)
(* ------------------------------------------------------------------ *)

(* Conditions, lint and precheck all read the same Static_tests
   inequalities: the per-stage utilizations reported by
   Analysis.Conditions must be exactly Static_tests.stage_utilization. *)
let test_conditions_consolidated () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let ctx = Analysis.Ctx.create scenario in
  let checks = Analysis.Conditions.check_all ctx in
  Alcotest.(check bool) "some checks" true (checks <> []);
  List.iter
    (fun (c : Analysis.Conditions.check) ->
      let flow = Traffic.Scenario.flow scenario c.Analysis.Conditions.flow_id in
      let u =
        St.stage_utilization scenario flow c.Analysis.Conditions.stage
      in
      Alcotest.(check (float 1e-12)) "same utilization" u
        c.Analysis.Conditions.utilization;
      Alcotest.(check bool) "same predicate" (u < 1.)
        c.Analysis.Conditions.satisfied)
    checks

(* ------------------------------------------------------------------ *)
(* Certificates and diagnostics                                       *)
(* ------------------------------------------------------------------ *)

(* 60 kB every 100 ms on a 100M link is harmless (~5 ms of transmission),
   but a 200 us deadline sits below the uncontended floor: statically
   infeasible via the demand floor, and provably rejected by the holistic
   analysis. *)
let infeasible_text =
  "node h0 endhost\nnode h1 endhost\nnode sw switch\n\
   duplex h0 sw rate=100M\nduplex h1 sw rate=100M\n\
   switch sw ports=2 cpus=1 croute=2.7us csend=1us\n\
   flow fat from=h0 to=h1 prio=5 encap=rtp\n\
   \  frame period=100ms deadline=200us jitter=0 payload=60000B\nend\n"

let test_infeasible_certificate () =
  let scenario = parse infeasible_text in
  let pre = P.run scenario in
  (match P.verdict_of pre 0 with
  | P.Infeasible cert ->
      Alcotest.(check bool) "negative slack" true (cert.P.slack < 0.)
  | v -> Alcotest.failf "expected infeasible, got %a" P.pp_verdict v);
  let diags = P.diagnostics pre in
  Alcotest.(check bool) "GMF018 fired" true
    (List.exists (fun d -> d.Gmf_diag.code = "GMF018") diags);
  (* Soundness on this instance: the holistic analysis rejects too, and
     so does admission (whether through lint or the precheck). *)
  let holistic = Analysis.Holistic.analyze scenario in
  Alcotest.(check bool) "holistic rejects" false
    (Analysis.Holistic.is_schedulable holistic);
  let d = Analysis.Admission.check scenario in
  Alcotest.(check bool) "admission rejects" false d.Analysis.Admission.admitted

let test_component_bound_warning () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let pre = P.run scenario in
  let diags = P.diagnostics ~max_component:1 pre in
  Alcotest.(check bool) "GMF019 fired" true
    (List.exists
       (fun d ->
         d.Gmf_diag.code = "GMF019"
         && d.Gmf_diag.severity = Gmf_diag.Warning)
       diags);
  Alcotest.(check bool) "default bound quiet" true
    (List.for_all (fun d -> d.Gmf_diag.code <> "GMF019") (P.diagnostics pre))

(* ------------------------------------------------------------------ *)
(* Certified flows skip the fixpoint                                  *)
(* ------------------------------------------------------------------ *)

let test_certified_admission_skips_fixpoint () =
  let scenario = Workload.Scenarios.single_switch_voip () in
  let pre = P.run scenario in
  Alcotest.(check int) "all flows certified"
    (Traffic.Scenario.flow_count scenario)
    (List.length (P.certified pre));
  let d = Analysis.Admission.check scenario in
  Alcotest.(check bool) "admitted" true d.Analysis.Admission.admitted;
  Alcotest.(check int) "no fixpoint rounds" 0
    d.Analysis.Admission.report.Analysis.Holistic.rounds;
  Alcotest.(check int) "one result per flow"
    (Traffic.Scenario.flow_count scenario)
    (List.length d.Analysis.Admission.report.Analysis.Holistic.results);
  (* The certified ceilings really bound the holistic fixed point. *)
  let holistic = Analysis.Holistic.analyze scenario in
  Alcotest.(check bool) "holistic agrees" true
    (Analysis.Holistic.is_schedulable holistic);
  List.iter
    (fun res ->
      let id = res.Analysis.Result_types.flow.Traffic.Flow.id in
      match P.verdict_of pre id with
      | P.Schedulable _ ->
          let ceiling =
            List.find
              (fun v -> v.P.flow_id = id)
              (P.certified pre)
          in
          let ceilings = Option.get ceiling.P.ceilings in
          Array.iteri
            (fun k fr ->
              Alcotest.(check bool)
                (Printf.sprintf "flow %d frame %d bounded" id k)
                true
                (fr.Analysis.Result_types.total <= ceilings.(k)))
            res.Analysis.Result_types.frames
      | _ -> Alcotest.fail "voip flow not certified")
    holistic.Analysis.Holistic.results

(* ------------------------------------------------------------------ *)
(* Randomized scenarios                                               *)
(* ------------------------------------------------------------------ *)

(* Host-local clusters on a switch chain, with an occasional cross-cluster
   flow merging components; an occasionally hostile profile (tight
   deadlines, fat payloads) produces infeasible flows too. *)
let gen_scenario rng =
  let open Gmf_util in
  let topo, hosts, _sw =
    Workload.Topologies.line ~hosts_per_switch:3 ~switches:3 ()
  in
  let pairs = ref [] in
  for s = 0 to 2 do
    for h = 0 to 1 do
      if Rng.int rng 3 > 0 then
        pairs := (hosts.(s).(h), hosts.(s).(h + 1)) :: !pairs
    done
  done;
  if Rng.int rng 3 = 0 then
    pairs := (hosts.(0).(0), hosts.(2).(2)) :: !pairs;
  if !pairs = [] then pairs := [ (hosts.(1).(0), hosts.(1).(1)) ];
  let profile =
    if Rng.int rng 4 = 0 then
      {
        Workload.Random_gen.default_profile with
        Workload.Random_gen.deadline_factor = (0.0005, 0.6);
        payload_bytes = (10_000, 60_000);
      }
    else Workload.Random_gen.default_profile
  in
  let flows =
    Workload.Random_gen.flows_between rng ~profile ~topo ~pairs:!pairs ()
  in
  Traffic.Scenario.make ~topo ~flows ()

(* The tentpole property: per-component fixpoints, merged, reproduce the
   monolithic analysis — same verdict, same rounds, same per-frame
   bounds.  (On Analysis_failed the monolithic run stops every component
   at the failing round, so only the verdict kind is compared.) *)
let prop_sharded_equals_monolithic =
  QCheck.Test.make ~name:"sharded union == monolithic on random scenarios"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Gmf_util.Rng.create ~seed in
      let scenario = gen_scenario rng in
      let mono = Analysis.Holistic.analyze scenario in
      let merged, _pre, stats =
        Analysis.Sharded.analyze ~skip_decided:false scenario
      in
      if stats.Analysis.Sharded.components_run < 1 then
        QCheck.Test.fail_report "no component ran";
      let mk = verdict_kind mono.Analysis.Holistic.verdict in
      if mk <> verdict_kind merged.Analysis.Holistic.verdict then
        QCheck.Test.fail_reportf "verdicts differ: %s vs %s" mk
          (verdict_kind merged.Analysis.Holistic.verdict);
      if mk <> "failed" then begin
        if mono.Analysis.Holistic.rounds <> merged.Analysis.Holistic.rounds
        then
          QCheck.Test.fail_reportf "rounds differ: %d vs %d"
            mono.Analysis.Holistic.rounds merged.Analysis.Holistic.rounds;
        if bounds_of mono <> bounds_of merged then
          QCheck.Test.fail_report "per-frame bounds differ"
      end;
      true)

(* Verdict soundness: an Infeasible certificate means the holistic
   analysis rejects; a fully certified scenario means it admits, with
   every per-frame bound below its certified ceiling. *)
let check_soundness ?config scenario =
  let pre = P.run ?config scenario in
  let holistic = Analysis.Holistic.analyze ?config scenario in
  let schedulable = Analysis.Holistic.is_schedulable holistic in
  if P.infeasible pre <> [] && schedulable then
    QCheck.Test.fail_reportf
      "infeasible certificate on a schedulable scenario: %a" P.pp_verdict
      (List.hd (P.infeasible pre)).P.verdict;
  if P.decided pre = List.length pre.P.verdicts && P.infeasible pre = []
  then begin
    if not schedulable then
      QCheck.Test.fail_reportf
        "fully certified scenario rejected by the holistic analysis (%s)"
        (verdict_kind holistic.Analysis.Holistic.verdict);
    List.iter
      (fun res ->
        let id = res.Analysis.Result_types.flow.Traffic.Flow.id in
        match P.verdict_of pre id with
        | P.Schedulable _ ->
            let v = List.find (fun v -> v.P.flow_id = id) (P.certified pre) in
            let ceilings = Option.get v.P.ceilings in
            Array.iteri
              (fun k fr ->
                if fr.Analysis.Result_types.total > ceilings.(k) then
                  QCheck.Test.fail_reportf
                    "flow %d frame %d: holistic %d above certified %d" id k
                    fr.Analysis.Result_types.total ceilings.(k))
              res.Analysis.Result_types.frames
        | _ -> ())
      holistic.Analysis.Holistic.results
  end;
  true

let prop_verdicts_sound =
  QCheck.Test.make ~name:"precheck verdicts sound on random scenarios"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Gmf_util.Rng.create ~seed in
      check_soundness (gen_scenario rng))

(* Same soundness over the randomized admission traces: whatever flow set
   a replayed session ends up committing, the precheck verdicts on it
   agree with a cold holistic run. *)
let prop_admtrace_sound =
  QCheck.Test.make ~name:"precheck verdicts sound on admtrace replays"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Gmf_util.Rng.create ~seed in
      let text = Test_admctl.gen_trace_text rng in
      let trace =
        match Scenario_io.Admtrace.of_string text with
        | Ok t -> t
        | Error e ->
            QCheck.Test.fail_reportf "trace parse: %s"
              (Format.asprintf "%a" Scenario_io.Parse.pp_error e)
      in
      let { Gmf_admctl.Replay.session; _ } = Gmf_admctl.Replay.run trace in
      match Gmf_admctl.Session.flows session with
      | [] -> true
      | flows ->
          check_soundness
            (Traffic.Scenario.make
               ~switches:trace.Scenario_io.Admtrace.switches
               ~topo:trace.Scenario_io.Admtrace.topo ~flows ()))

(* ------------------------------------------------------------------ *)
(* Example corpus                                                     *)
(* ------------------------------------------------------------------ *)

let test_example_corpus_sound () =
  let dir = "../examples/scenarios" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".gmfnet")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (files <> []);
  List.iter
    (fun file ->
      match Scenario_io.Parse.scenario_of_file (Filename.concat dir file) with
      | Error e -> Alcotest.failf "%s: %a" file Scenario_io.Parse.pp_error e
      | Ok scenario ->
          Alcotest.(check bool) (file ^ ": sound") true
            (check_soundness scenario);
          (* And the sharded union matches the monolithic run. *)
          let mono = Analysis.Holistic.analyze scenario in
          let merged, _, _ =
            Analysis.Sharded.analyze ~skip_decided:false scenario
          in
          Alcotest.(check string) (file ^ ": same verdict kind")
            (verdict_kind mono.Analysis.Holistic.verdict)
            (verdict_kind merged.Analysis.Holistic.verdict);
          if verdict_kind mono.Analysis.Holistic.verdict <> "failed" then begin
            Alcotest.(check int) (file ^ ": same rounds")
              mono.Analysis.Holistic.rounds merged.Analysis.Holistic.rounds;
            Alcotest.(check bool) (file ^ ": same bounds") true
              (bounds_of mono = bounds_of merged)
          end)
    files

(* Both variants: the certificates are variant-aware (Repaired rotation
   charges, the uncapped MX of repair R7), so soundness must hold under
   Faithful too. *)
let prop_verdicts_sound_faithful =
  QCheck.Test.make ~name:"precheck verdicts sound under Faithful" ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Gmf_util.Rng.create ~seed in
      check_soundness ~config:Analysis.Config.faithful (gen_scenario rng))

(* The report is backend-independent: certifying components inline, on a
   sequential Gmf_exec, and on a fork pool must be byte-identical. *)
let test_exec_backend_parity () =
  List.iter
    (fun scenario ->
      let inline = Gmf_precheck.Precheck.to_json
          (Gmf_precheck.Precheck.run scenario)
      in
      let seq =
        Gmf_precheck.Precheck.to_json
          (Gmf_precheck.Precheck.run ~exec:Gmf_exec.seq scenario)
      in
      let pooled =
        Gmf_precheck.Precheck.to_json
          (Gmf_precheck.Precheck.run ~exec:(Gmf_exec.of_jobs 2) scenario)
      in
      Alcotest.(check string) "seq backend = inline" inline seq;
      Alcotest.(check string) "pool backend = inline" inline pooled)
    [
      Workload.Scenarios.fig1_videoconf ();
      Workload.Scenarios.enterprise ();
    ]

let tests =
  [
    Alcotest.test_case "interference graph decomposes clusters" `Quick
      test_igraph_components;
    Alcotest.test_case "exec backends agree byte-for-byte" `Quick
      test_exec_backend_parity;
    Alcotest.test_case "conditions read the consolidated inequalities"
      `Quick test_conditions_consolidated;
    Alcotest.test_case "infeasible certificate + GMF018" `Quick
      test_infeasible_certificate;
    Alcotest.test_case "GMF019 component bound" `Quick
      test_component_bound_warning;
    Alcotest.test_case "certified admission skips the fixpoint" `Quick
      test_certified_admission_skips_fixpoint;
    Alcotest.test_case "example corpus: sound and shard-exact" `Slow
      test_example_corpus_sound;
    QCheck_alcotest.to_alcotest prop_sharded_equals_monolithic;
    QCheck_alcotest.to_alcotest prop_verdicts_sound;
    QCheck_alcotest.to_alcotest prop_verdicts_sound_faithful;
    QCheck_alcotest.to_alcotest prop_admtrace_sound;
  ]
