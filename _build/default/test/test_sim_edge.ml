(* Simulator edge configurations: multiprocessor switches, direct routes,
   routers as sources, and the switch-model sweep. *)
open Gmf_util

let test_direct_route_sim () =
  (* Source wired straight to destination: no switch is involved and the
     response is exactly the transmission time. *)
  let topo = Network.Topology.create () in
  let a = Network.Topology.add_node topo ~name:"a" ~kind:Network.Node.Endhost in
  let b = Network.Topology.add_node topo ~name:"b" ~kind:Network.Node.Endhost in
  Network.Topology.add_duplex_link topo ~a ~b ~rate_bps:10_000_000 ~prop:100;
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 10) ~deadline:(Timeunit.ms 50)
          ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"direct" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ a; b ])
      ~priority:5
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ flow ] () in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.ms 50 }
      scenario
  in
  Alcotest.(check (option int)) "tx + prop exactly" (Some 1_230_500)
    (Sim.Collector.max_response sim.Sim.Netsim.collector ~flow:0 ~frame:0);
  (* And the analysis agrees (single first-link stage). *)
  let report = Analysis.Holistic.analyze scenario in
  Alcotest.(check int) "analysis bound" 1_230_500
    (Experiments.Exp_common.worst_total report 0)

let multiproc_scenario () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:4 () in
  let model = Click.Switch_model.make ~ninterfaces:4 ~processors:2 () in
  let flows =
    List.init 2 (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "f%d" id)
          ~spec:
            (Gmf.Spec.make
               [
                 Gmf.Frame_spec.make ~period:(Timeunit.ms 10)
                   ~deadline:(Timeunit.ms 50) ~jitter:0
                   ~payload_bits:(8 * 1_472);
               ])
          ~encap:Ethernet.Encap.Udp
          ~route:
            (Network.Route.make topo [ hosts.(id); sw; hosts.(id + 2) ])
          ~priority:5)
  in
  Traffic.Scenario.make ~switches:[ (sw, model) ] ~topo ~flows ()

let test_multiprocessor_switch_sim () =
  let scenario = multiproc_scenario () in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.ms 100 }
      scenario
  in
  Alcotest.(check int) "all packets complete" 0
    (Sim.Collector.incomplete sim.Sim.Netsim.collector);
  (* Analysis bounds still dominate on the 2-CPU switch. *)
  let report = Analysis.Holistic.analyze scenario in
  Alcotest.(check bool) "schedulable" true
    (Analysis.Holistic.is_schedulable report);
  List.iter
    (fun fid ->
      let observed =
        Option.get
          (Sim.Collector.max_response_flow sim.Sim.Netsim.collector ~flow:fid)
      in
      let bound = Experiments.Exp_common.worst_total report fid in
      Alcotest.(check bool)
        (Printf.sprintf "flow %d: %s <= %s" fid
           (Timeunit.to_string observed)
           (Timeunit.to_string bound))
        true (observed <= bound))
    [ 0; 1 ]

let test_multiproc_faster_than_uniproc () =
  (* Same traffic, same switch, 2 CPUs vs 1: the analysis bound with two
     processors (CIRC halved) is never larger. *)
  let bound processors =
    let topo, hosts, sw = Workload.Topologies.star ~hosts:4 () in
    let model = Click.Switch_model.make ~ninterfaces:4 ~processors () in
    let flow =
      Traffic.Flow.make ~id:0 ~name:"f"
        ~spec:
          (Gmf.Spec.make
             [
               Gmf.Frame_spec.make ~period:(Timeunit.ms 10)
                 ~deadline:(Timeunit.ms 50) ~jitter:0
                 ~payload_bits:(8 * 1_472);
             ])
        ~encap:Ethernet.Encap.Udp
        ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
        ~priority:5
    in
    let scenario =
      Traffic.Scenario.make ~switches:[ (sw, model) ] ~topo ~flows:[ flow ] ()
    in
    Experiments.Exp_common.worst_total (Analysis.Holistic.analyze scenario) 0
  in
  Alcotest.(check bool) "2 CPUs never worse" true (bound 2 <= bound 1)

let test_router_source_sim () =
  (* Flow sourced at the IP router of the Figure 1 network (the paper's
     'IP-router may be a source node' case) flows end to end. *)
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.ms 200 }
      scenario
  in
  (* flow 5 is bulk:7->1, sourced at router node 7. *)
  Alcotest.(check bool) "router-sourced flow completed" true
    (Sim.Collector.max_response_flow sim.Sim.Netsim.collector ~flow:5 <> None)

let tests =
  [
    Alcotest.test_case "direct route" `Quick test_direct_route_sim;
    Alcotest.test_case "multiprocessor switch" `Quick
      test_multiprocessor_switch_sim;
    Alcotest.test_case "2 CPUs never worse" `Quick
      test_multiproc_faster_than_uniproc;
    Alcotest.test_case "router as source" `Quick test_router_source_sim;
  ]
