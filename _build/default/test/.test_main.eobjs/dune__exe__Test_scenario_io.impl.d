test/test_scenario_io.ml: Alcotest Analysis Array Click Ethernet Gmf Gmf_util List Network Printf QCheck QCheck_alcotest Result Rng Scenario_io String Timeunit Traffic Workload
