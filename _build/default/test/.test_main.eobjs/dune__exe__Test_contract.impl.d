test/test_contract.ml: Alcotest Array Gmf Gmf_util List QCheck QCheck_alcotest Rng Timeunit Workload
