test/test_report_io.ml: Alcotest Analysis Array Ethernet Experiments Filename List Network Printf Scenario_io String Traffic Workload
