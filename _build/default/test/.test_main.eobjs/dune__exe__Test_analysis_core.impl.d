test/test_analysis_core.ml: Alcotest Analysis Array Config Ctx Fixpoint Fun Gmf_util Jitter_state List Network Stage String Timeunit Traffic Workload
