test/test_heap.ml: Alcotest Gmf_util Heap List QCheck QCheck_alcotest
