test/test_rng.ml: Alcotest Array Gmf_util List Printf Rng
