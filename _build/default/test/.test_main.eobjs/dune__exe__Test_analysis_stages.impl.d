test/test_analysis_stages.ml: Alcotest Analysis Array Config Ctx Egress Ethernet First_hop Gmf Gmf_util Ingress List Network Printf Result_types Stage Timeunit Traffic Workload
