test/test_tight_jitter.ml: Alcotest Analysis Array Ethernet Experiments Gmf_util List Network Printf Sim Timeunit Traffic Workload
