test/test_ethernet.ml: Alcotest Constants Encap Ethernet Fragment List QCheck QCheck_alcotest
