test/test_pathfind.ml: Alcotest Array List Network Workload
