test/test_tablefmt.ml: Alcotest Gmf_util List String Tablefmt
