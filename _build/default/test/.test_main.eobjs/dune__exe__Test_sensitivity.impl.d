test/test_sensitivity.ml: Alcotest Analysis Array Click Ethernet Gmf Gmf_util Network Printf Timeunit Traffic Workload
