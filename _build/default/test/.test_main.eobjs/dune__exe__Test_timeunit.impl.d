test/test_timeunit.ml: Alcotest Gmf_util Timeunit
