test/test_busy_poll.ml: Alcotest Analysis Array Click Ethernet Gmf_util List Network Option Printf Sim Timeunit Traffic Workload
