test/test_sim.ml: Alcotest Array Ethernet Gmf Gmf_util List Network Option Printf Sim Stats Timeunit Traffic Workload
