test/test_traffic.ml: Alcotest Array Click Ethernet Gmf Gmf_util List Network Printf Timeunit Traffic Workload
