test/test_dbf.ml: Alcotest Array Gmf List Printf QCheck QCheck_alcotest
