test/test_stats.ml: Alcotest Gen Gmf_util List QCheck QCheck_alcotest Stats
