test/test_cpu_util.ml: Alcotest Ethernet Gmf_util List Network Printf Sim Timeunit Traffic Workload
