test/test_assignment.ml: Alcotest Analysis Array Ethernet Gmf Gmf_util List Network Printf Timeunit Traffic Workload
