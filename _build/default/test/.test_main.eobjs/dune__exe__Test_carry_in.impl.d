test/test_carry_in.ml: Alcotest Analysis Array Ethernet Gmf Gmf_util Network Option Printf Sim Timeunit Traffic Workload
