test/test_demand.ml: Alcotest Array Gmf Printf QCheck QCheck_alcotest
