test/test_analysis_props.ml: Alcotest Analysis Array Click Ethernet Experiments Gmf Gmf_util List Network QCheck QCheck_alcotest Timeunit Traffic Workload
