test/test_ring.ml: Alcotest Analysis Array Ethernet Experiments Gmf Gmf_util List Network Option Printf Sim Timeunit Traffic Workload
