test/test_baseline.ml: Alcotest Analysis Array Baseline Ethernet Gmf Gmf_util List Network Printf Timeunit Traffic Workload
