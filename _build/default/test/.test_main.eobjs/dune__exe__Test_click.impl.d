test/test_click.ml: Alcotest Click Gmf_util Stride Switch_model Timeunit
