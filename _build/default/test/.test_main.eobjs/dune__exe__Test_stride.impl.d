test/test_stride.ml: Alcotest Float Gen List QCheck QCheck_alcotest Scheduler Stride
