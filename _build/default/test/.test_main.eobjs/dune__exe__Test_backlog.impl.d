test/test_backlog.ml: Alcotest Analysis Array Ethernet Gmf Gmf_util List Network Printf Result Rng Sim Timeunit Traffic Workload
