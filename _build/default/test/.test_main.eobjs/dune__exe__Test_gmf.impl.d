test/test_gmf.ml: Alcotest Gmf Gmf_util Timeunit
