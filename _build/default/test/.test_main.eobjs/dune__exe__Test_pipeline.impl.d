test/test_pipeline.ml: Admission Alcotest Analysis Array Conditions Ctx Ethernet Gmf Gmf_util Holistic List Network Pipeline Printf Result_types Stage Timeunit Traffic Workload
