test/test_workload.ml: Alcotest Analysis Array Gmf Gmf_util List Network Rng Timeunit Traffic Workload
