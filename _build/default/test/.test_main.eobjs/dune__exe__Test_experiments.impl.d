test/test_experiments.ml: Alcotest Experiments Gmf_util List Option Printf Timeunit Workload
