test/test_printers.ml: Alcotest Analysis Array Click Ethernet Filename Format Fun Gmf Gmf_util List Network Scenario_io Sim String Sys Timeunit Traffic Workload
