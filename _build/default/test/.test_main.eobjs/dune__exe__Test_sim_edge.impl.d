test/test_sim_edge.ml: Alcotest Analysis Array Click Ethernet Experiments Gmf Gmf_util List Network Option Printf Sim Timeunit Traffic Workload
