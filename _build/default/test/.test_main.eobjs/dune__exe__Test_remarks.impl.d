test/test_remarks.ml: Alcotest Analysis Ethernet Gmf Gmf_util List Network Option Result Scenario_io Sim Timeunit Traffic
