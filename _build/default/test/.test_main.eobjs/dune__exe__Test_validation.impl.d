test/test_validation.ml: Alcotest Analysis Array Gmf_util Hashtbl List Printf Rng Sim Timeunit Traffic Workload
