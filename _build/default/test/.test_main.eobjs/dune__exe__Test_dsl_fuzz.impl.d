test/test_dsl_fuzz.ml: Gen Gmf_util List QCheck QCheck_alcotest Rng Scenario_io String
