test/test_finite_queues.ml: Alcotest Analysis Array Ethernet Gmf Gmf_util List Network Printf Sim Timeunit Traffic Workload
