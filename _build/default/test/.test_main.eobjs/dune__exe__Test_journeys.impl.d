test/test_journeys.ml: Alcotest Gmf_util Hashtbl List Sim String Timeunit Workload
