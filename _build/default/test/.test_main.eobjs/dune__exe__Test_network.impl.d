test/test_network.ml: Alcotest Array Gmf_util List Network Option Timeunit Workload
