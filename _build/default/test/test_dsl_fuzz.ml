(* Fuzzing the scenario parser: arbitrary text must produce Ok or a
   well-formed Error — never an exception. *)

let directives =
  [| "node"; "link"; "duplex"; "switch"; "flow"; "frame"; "end"; "#"; "" |]

let words_pool =
  [|
    "a"; "b"; "sw"; "endhost"; "switch"; "router"; "rate=10M"; "rate=0";
    "rate=xx"; "prop=1ms"; "prop=-1"; "from=a"; "to=b"; "prio=5"; "prio=99";
    "encap=rtp"; "encap=?"; "route=a,b"; "remark=a/b:3"; "remark=bad";
    "period=1ms"; "deadline=2ms"; "jitter=0"; "payload=100B"; "payload=-1";
    "ports=4"; "cpus=2"; "croute=1us"; "csend=1us"; "=="; "x=y=z"; "\t";
  |]

let gen_line rng =
  let open Gmf_util in
  let n = Rng.int rng 6 in
  let parts =
    List.init n (fun _ -> Rng.pick rng words_pool)
  in
  String.concat " " (Rng.pick rng directives :: parts)

let prop_parser_total =
  QCheck.Test.make ~name:"parser never raises on garbage" ~count:500
    QCheck.(pair (int_range 0 100_000) (int_range 0 30))
    (fun (seed, lines) ->
      let rng = Gmf_util.Rng.create ~seed in
      let text =
        String.concat "\n" (List.init lines (fun _ -> gen_line rng))
      in
      match Scenario_io.Parse.scenario_of_string text with
      | Ok _ -> true
      | Error e -> e.Scenario_io.Parse.line >= 0)

let prop_parser_total_binaryish =
  QCheck.Test.make ~name:"parser never raises on binary noise" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 400))
    (fun text ->
      match Scenario_io.Parse.scenario_of_string text with
      | Ok _ -> true
      | Error _ -> true)

let prop_valid_prefix_plus_garbage =
  (* A valid scenario followed by one garbage line errors on exactly that
     line. *)
  QCheck.Test.make ~name:"error points at the garbage line" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Gmf_util.Rng.create ~seed in
      let valid =
        "node a endhost\nnode b endhost\nlink a b rate=10M\n\
         flow f from=a to=b\n  frame period=1ms deadline=2ms payload=10B\nend"
      in
      let garbage = "blorp " ^ Gmf_util.Rng.pick rng words_pool in
      match Scenario_io.Parse.scenario_of_string (valid ^ "\n" ^ garbage) with
      | Ok _ -> false
      | Error e -> e.Scenario_io.Parse.line = 7)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_parser_total;
    QCheck_alcotest.to_alcotest prop_parser_total_binaryish;
    QCheck_alcotest.to_alcotest prop_valid_prefix_plus_garbage;
  ]
