(* CSV export of analysis reports + the committed scenario files. *)

let report () =
  Analysis.Holistic.analyze (Workload.Scenarios.fig1_videoconf ())

let lines text =
  String.split_on_char '\n' text |> List.filter (fun l -> l <> "")

let test_frame_csv_shape () =
  let csv = Analysis.Report_io.frame_csv (report ()) in
  let rows = lines csv in
  (* Header + (9+1+9+1+1+1) frames. *)
  Alcotest.(check int) "header + 22 rows" 23 (List.length rows);
  Alcotest.(check string) "header"
    "flow_id,flow_name,priority,frame,bound_ns,deadline_ns,slack_ns,meets"
    (List.hd rows);
  (* Every data row has 8 comma-separated fields, parseable numbers. *)
  List.iter
    (fun row ->
      let fields = String.split_on_char ',' row in
      Alcotest.(check int) "8 fields" 8 (List.length fields);
      List.iteri
        (fun i f ->
          if i <> 1 && i <> 7 then
            Alcotest.(check bool)
              (Printf.sprintf "numeric field %d (%s)" i f)
              true
              (int_of_string_opt f <> None))
        fields)
    (List.tl rows)

let test_stage_csv_shape () =
  let csv = Analysis.Report_io.stage_csv (report ()) in
  let rows = lines csv in
  (* 22 frames x 5 stages + header. *)
  Alcotest.(check int) "header + 110 rows" 111 (List.length rows);
  Alcotest.(check string) "header"
    "flow_id,flow_name,frame,stage,response_ns,busy_ns,q" (List.hd rows)

let test_csv_matches_report () =
  let report = report () in
  let csv = Analysis.Report_io.frame_csv report in
  (* Spot-check the video flow's frame 0 bound appears verbatim. *)
  let video = Experiments.Exp_common.flow_result report 0 in
  let bound =
    video.Analysis.Result_types.frames.(0).Analysis.Result_types.total
  in
  let expected = Printf.sprintf "0,video:0->3,5,0,%d," bound in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "bound row present" true (contains csv expected)

let test_verdict_line () =
  Alcotest.(check string) "verdict line" "verdict,schedulable,rounds,3"
    (Analysis.Report_io.verdict_line (report ()))

let test_sanitize () =
  (* Names with commas cannot corrupt the CSV. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"evil,name" ~spec:(Workload.Voip.g711_spec ())
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ flow ] () in
  let csv = Analysis.Report_io.frame_csv (Analysis.Holistic.analyze scenario) in
  List.iter
    (fun row ->
      Alcotest.(check int) "still 8 fields" 8
        (List.length (String.split_on_char ',' row)))
    (lines csv)

let test_committed_scenario_files_parse () =
  (* The .gmfnet files shipped in examples/scenarios must parse and match
     their in-code counterparts' analysis verdicts. *)
  List.iter
    (fun (file, scenario) ->
      let path = Filename.concat "../examples/scenarios" file in
      match Scenario_io.Parse.scenario_of_file path with
      | Error e ->
          Alcotest.failf "%s: %a" file Scenario_io.Parse.pp_error e
      | Ok parsed ->
          Alcotest.(check int)
            (file ^ ": same flow count")
            (Traffic.Scenario.flow_count scenario)
            (Traffic.Scenario.flow_count parsed);
          let bound s id = Experiments.Exp_common.worst_total (Analysis.Holistic.analyze s) id in
          Alcotest.(check int)
            (file ^ ": same flow-0 bound")
            (bound scenario 0) (bound parsed 0))
    [
      ("fig1.gmfnet", Workload.Scenarios.fig1_videoconf ());
      ("voip.gmfnet", Workload.Scenarios.single_switch_voip ());
      ("chain.gmfnet", Workload.Scenarios.multihop_chain ());
      ("enterprise.gmfnet", Workload.Scenarios.enterprise ());
    ]

let tests =
  [
    Alcotest.test_case "frame csv shape" `Quick test_frame_csv_shape;
    Alcotest.test_case "stage csv shape" `Quick test_stage_csv_shape;
    Alcotest.test_case "csv matches report" `Quick test_csv_matches_report;
    Alcotest.test_case "verdict line" `Quick test_verdict_line;
    Alcotest.test_case "comma sanitizing" `Quick test_sanitize;
    Alcotest.test_case "committed scenario files" `Quick
      test_committed_scenario_files_parse;
  ]
