(* Switch-CPU utilization accounting in the simulator. *)
open Gmf_util

let run_fig1 ?(rate_bps = 10_000_000) () =
  Sim.Netsim.run
    ~config:{ Sim.Sim_config.default with duration = Timeunit.ms 500 }
    (Workload.Scenarios.fig1_videoconf ~rate_bps ())

let test_reported_per_switch () =
  let report = run_fig1 () in
  let util = report.Sim.Netsim.cpu_utilization in
  Alcotest.(check (list int)) "switches 4,5,6 reported" [ 4; 5; 6 ]
    (List.map fst util);
  List.iter
    (fun (sw, u) ->
      Alcotest.(check bool)
        (Printf.sprintf "switch %d in [0,1] (u=%.6f)" sw u)
        true
        (u >= 0. && u <= 1.))
    util

let test_busy_switch_busier () =
  (* Switch 4 relays both video directions plus voip and bulk; switch 5
     only voip and bulk.  Its CPU must be busier. *)
  let report = run_fig1 () in
  let u sw = List.assoc sw report.Sim.Netsim.cpu_utilization in
  Alcotest.(check bool) "sw4 busier than sw5" true (u 4 > u 5);
  Alcotest.(check bool) "some real work happened" true (u 4 > 0.)

let test_more_traffic_more_cpu () =
  (* Same scenario at 100 Mbit/s: same packet count in the window, same CPU
     work, so utilization stays in the same ballpark; but doubling traffic
     (two video pairs vs one) increases switch 4's CPU time. *)
  let base = run_fig1 () in
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let topo = Traffic.Scenario.topo scenario in
  let clone =
    let video = Traffic.Scenario.flow scenario 0 in
    Traffic.Flow.make ~id:50 ~name:"video2" ~spec:video.Traffic.Flow.spec
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ 1; 4; 6; 3 ])
      ~priority:4
  in
  let doubled =
    Traffic.Scenario.make ~topo
      ~flows:(Traffic.Scenario.flows scenario @ [ clone ])
      ()
  in
  let heavier =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.ms 500 }
      doubled
  in
  let u report sw = List.assoc sw report.Sim.Netsim.cpu_utilization in
  Alcotest.(check bool) "more flows, more CPU at sw4" true
    (u heavier 4 > u base 4)

let test_cpu_far_below_saturation () =
  (* The paper's point: CROUTE+CSEND are microseconds while packets take
     milliseconds at 10 Mbit/s, so the switch CPU is nearly idle even on a
     loaded network. *)
  let report = run_fig1 () in
  List.iter
    (fun (sw, u) ->
      Alcotest.(check bool)
        (Printf.sprintf "switch %d below 10%% (u=%.4f)" sw u)
        true (u < 0.10))
    report.Sim.Netsim.cpu_utilization

let tests =
  [
    Alcotest.test_case "reported per switch" `Quick test_reported_per_switch;
    Alcotest.test_case "busy switch busier" `Quick test_busy_switch_busier;
    Alcotest.test_case "more traffic, more cpu" `Quick
      test_more_traffic_more_cpu;
    Alcotest.test_case "cpu far below saturation" `Quick
      test_cpu_far_below_saturation;
  ]
