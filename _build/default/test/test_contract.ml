(* GMF contract extraction from packet traces. *)
open Gmf_util

let simple_trace =
  (* Two cycle positions: big packet then small, nominal gaps 10/20 with
     some slack. *)
  [
    (0, 1_000); (12, 200); (30, 900); (40, 250); (62, 1_100); (72, 180);
  ]

let test_extraction () =
  let spec =
    Workload.Contract.of_trace ~cycle:2 ~deadline:(Timeunit.ms 1) simple_trace
  in
  Alcotest.(check int) "two positions" 2 (Gmf.Spec.n spec);
  let f0 = Gmf.Spec.frame spec 0 and f1 = Gmf.Spec.frame spec 1 in
  (* Gaps after position 0: 12, 10, 10 -> min 10.
     Gaps after position 1: 18, 22 -> min 18. *)
  Alcotest.(check int) "T0 = min separation" 10 f0.Gmf.Frame_spec.period;
  Alcotest.(check int) "T1 = min separation" 18 f1.Gmf.Frame_spec.period;
  (* Sizes: position 0 max 1100, position 1 max 250. *)
  Alcotest.(check int) "S0 = max size" 1_100 f0.Gmf.Frame_spec.payload_bits;
  Alcotest.(check int) "S1 = max size" 250 f1.Gmf.Frame_spec.payload_bits

let test_extraction_validation () =
  Alcotest.check_raises "cycle < 1"
    (Invalid_argument "Contract.of_trace: cycle < 1") (fun () ->
      ignore (Workload.Contract.of_trace ~cycle:0 ~deadline:1 simple_trace));
  Alcotest.check_raises "too short"
    (Invalid_argument
       "Contract.of_trace: need at least cycle+1 packets to observe every \
        separation") (fun () ->
      ignore (Workload.Contract.of_trace ~cycle:2 ~deadline:1 [ (0, 1) ]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Contract: instants must be strictly increasing")
    (fun () ->
      ignore
        (Workload.Contract.of_trace ~cycle:1 ~deadline:1 [ (5, 1); (5, 1) ]))

let test_respects () =
  let spec =
    Workload.Contract.of_trace ~cycle:2 ~deadline:(Timeunit.ms 1) simple_trace
  in
  Alcotest.(check bool) "extracted contract dominates its trace" true
    (Workload.Contract.respects spec simple_trace);
  (* A trace with a too-large packet violates. *)
  Alcotest.(check bool) "oversized packet violates" false
    (Workload.Contract.respects spec [ (0, 2_000); (10, 100) ]);
  (* A trace arriving too fast violates. *)
  Alcotest.(check bool) "early arrival violates" false
    (Workload.Contract.respects spec [ (0, 100); (5, 100) ])

let test_synthetic_trace_shape () =
  let rng = Rng.create ~seed:5 in
  let trace =
    Workload.Contract.synthetic_mpeg_trace rng ~packets:50 ()
  in
  Alcotest.(check int) "fifty packets" 50 (List.length trace);
  (* Instants strictly increase, gaps at least the base interval. *)
  let rec check = function
    | (t1, _) :: ((t2, _) :: _ as rest) ->
        Alcotest.(check bool) "gap >= 30ms" true (t2 - t1 >= Timeunit.ms 30);
        check rest
    | _ -> ()
  in
  check trace;
  (* I packets are the biggest. *)
  let sizes = List.map snd trace in
  let i_size = List.nth sizes 0 in
  Alcotest.(check bool) "I-packet at least nominal-25%" true
    (i_size >= 8 * 33_000)

let prop_extracted_contract_dominates =
  QCheck.Test.make ~name:"extracted contract dominates noisy traces"
    ~count:60
    QCheck.(pair (int_range 1 100_000) (int_range 12 60))
    (fun (seed, packets) ->
      let rng = Rng.create ~seed in
      let trace =
        Workload.Contract.synthetic_mpeg_trace rng ~packets ()
      in
      let spec =
        Workload.Contract.of_trace ~cycle:9 ~deadline:(Timeunit.ms 100) trace
      in
      Workload.Contract.respects spec trace)

let prop_contract_rbf_dominates_trace_demand =
  (* The contract's request-bound function (NX with unit costs) dominates
     the packet count of every window of the trace it was extracted from -
     the property that makes extracted contracts safe inputs to the
     multihop analysis. *)
  QCheck.Test.make ~name:"contract rbf dominates trace windows" ~count:40
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let trace =
        Workload.Contract.synthetic_mpeg_trace rng ~packets:40 ()
      in
      let spec =
        Workload.Contract.of_trace ~cycle:9 ~deadline:(Timeunit.ms 100) trace
      in
      let demand =
        Gmf.Demand.make
          ~costs:(Array.map (fun _ -> 1) (Gmf.Spec.periods spec))
          ~periods:(Gmf.Spec.periods spec)
      in
      let arr = Array.of_list trace in
      let m = Array.length arr in
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = i to m - 1 do
          let window = fst arr.(j) - fst arr.(i) in
          let count = j - i + 1 in
          if count > Gmf.Demand.bound demand ~capped:false window then
            ok := false
        done
      done;
      !ok)

let tests =
  [
    Alcotest.test_case "extraction" `Quick test_extraction;
    Alcotest.test_case "extraction validation" `Quick
      test_extraction_validation;
    Alcotest.test_case "respects" `Quick test_respects;
    Alcotest.test_case "synthetic trace shape" `Quick
      test_synthetic_trace_shape;
    QCheck_alcotest.to_alcotest prop_extracted_contract_dominates;
    QCheck_alcotest.to_alcotest prop_contract_rbf_dominates_trace_demand;
  ]
