(* Repair R8: own-flow carry-in at the per-frame busy period.

   Setting: a two-frame GMF flow alone on a 10 Mbit/s path, where frame 0's
   transmission time exceeds its period, so frame 1 always queues behind
   frame 0's tail.  Hand-computed first-hop values:

   - frame 0: payload 44 kB -> C0 = 36.5984 ms, T0 = 30 ms
   - frame 1: payload 8 kB  -> C1 =  6.6848 ms, T1 = 270 ms

   First hop of frame 1 with carry-in (l = 1):
     w = C0 (no competitors), R = w + C1 - T0 = 36.5984 + 6.6848 - 30
       = 13.2832 ms,
   whereas the paper's l = 0 case gives only C1 = 6.6848 ms — less than
   what the simulator actually observes. *)
open Gmf_util

let c0 = 36_598_400
let c1 = 6_684_800
let t0 = Timeunit.ms 30

let scenario () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:t0 ~deadline:(Timeunit.ms 400) ~jitter:0
          ~payload_bits:(8 * 44_000);
        Gmf.Frame_spec.make ~period:(Timeunit.ms 270)
          ~deadline:(Timeunit.ms 400) ~jitter:0 ~payload_bits:(8 * 8_000);
      ]
  in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"burst" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  Traffic.Scenario.make ~topo ~flows:[ flow ] ()

let first_hop_bound config =
  let scenario = scenario () in
  let ctx = Analysis.Ctx.create ~config scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  match Analysis.First_hop.analyze ctx ~flow ~frame:1 with
  | Ok r -> r.Analysis.Result_types.response
  | Error f -> Alcotest.failf "failed: %a" Analysis.Result_types.pp_failure f

let test_repaired_includes_carry_in () =
  Alcotest.(check int) "R = C0 + C1 - T0"
    (c0 + c1 - t0)
    (first_hop_bound Analysis.Config.default)

let test_faithful_misses_it () =
  Alcotest.(check int) "paper rule sees only C1" c1
    (first_hop_bound Analysis.Config.faithful)

let test_simulator_exceeds_faithful () =
  let scenario = scenario () in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 2 }
      scenario
  in
  let observed =
    Option.get
      (Sim.Collector.max_stage_span sim.Sim.Netsim.collector ~flow:0 ~frame:1
         ~stage:(Sim.Collector.S_first (1, 0)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "observed %s exceeds the paper's %s"
       (Timeunit.to_string observed) (Timeunit.to_string c1))
    true (observed > c1);
  Alcotest.(check bool) "repaired bound dominates" true
    (observed <= c0 + c1 - t0)

let test_no_carry_in_when_fits () =
  (* Shrink frame 0 below its period: the carry-in term vanishes and both
     variants agree on frame 1's bound. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:t0 ~deadline:(Timeunit.ms 400) ~jitter:0
          ~payload_bits:(8 * 20_000);
        Gmf.Frame_spec.make ~period:(Timeunit.ms 270)
          ~deadline:(Timeunit.ms 400) ~jitter:0 ~payload_bits:(8 * 8_000);
      ]
  in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"calm" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ flow ] () in
  let bound config =
    let ctx = Analysis.Ctx.create ~config scenario in
    match Analysis.First_hop.analyze ctx ~flow ~frame:1 with
    | Ok r -> r.Analysis.Result_types.response
    | Error f -> Alcotest.failf "failed: %a" Analysis.Result_types.pp_failure f
  in
  Alcotest.(check int) "variants agree without backlog"
    (bound Analysis.Config.faithful)
    (bound Analysis.Config.default)

let tests =
  [
    Alcotest.test_case "repaired includes carry-in (R8)" `Quick
      test_repaired_includes_carry_in;
    Alcotest.test_case "faithful misses it" `Quick test_faithful_misses_it;
    Alcotest.test_case "simulator exceeds faithful" `Quick
      test_simulator_exceeds_faithful;
    Alcotest.test_case "no carry-in when frames fit" `Quick
      test_no_carry_in_when_fits;
  ]
