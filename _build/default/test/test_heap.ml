open Gmf_util

let int_heap () = Heap.create ~cmp:compare ()

let test_empty () =
  let h = int_heap () in
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ]
    (Heap.to_sorted_list h);
  (* to_sorted_list must not consume the heap *)
  Alcotest.(check int) "still full" 7 (Heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Heap.pop h)

let test_fifo_ties () =
  (* Elements equal under cmp come out in insertion order. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) () in
  List.iter (Heap.push h) [ (1, "a"); (0, "x"); (1, "b"); (1, "c") ];
  let labels = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "fifo among equals" [ "x"; "a"; "b"; "c" ]
    labels

let test_interleaved () =
  let h = int_heap () in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check int) "pop 5" 5 (Heap.pop_exn h);
  Heap.push h 1;
  Heap.push h 20;
  Alcotest.(check int) "pop 1" 1 (Heap.pop_exn h);
  Alcotest.(check int) "pop 10" 10 (Heap.pop_exn h);
  Alcotest.(check int) "pop 20" 20 (Heap.pop_exn h);
  Alcotest.(check bool) "empty again" true (Heap.is_empty h)

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 7;
  Alcotest.(check int) "usable after clear" 7 (Heap.pop_exn h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_pop_monotone =
  QCheck.Test.make ~name:"successive pops are non-decreasing" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some x -> prev <= x && drain x
      in
      drain min_int)

let tests =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo among ties" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_pop_monotone;
  ]
