(* Stage analyses checked against values computed by hand from the paper's
   equations (see the derivations in the comments).

   Common setting: a star with one switch (degree 2 -> CIRC = 2 * 3.7us =
   7.4us), 10 Mbit/s links, zero propagation delay.  Flows carry a single
   GMF frame of 1472 bytes of UDP payload, so nbits = 11840 bits exactly:
   one maximal Ethernet frame, C = MFT = 1.2304 ms.  Period 10 ms, zero
   jitter, deadline 50 ms. *)
open Gmf_util
open Analysis

let c_frame = 1_230_400 (* = MFT at 10 Mbit/s *)
let circ = 7_400
let period = Timeunit.ms 10

let one_frame_spec () =
  Gmf.Spec.make
    [
      Gmf.Frame_spec.make ~period ~deadline:(Timeunit.ms 50) ~jitter:0
        ~payload_bits:(8 * 1_472);
    ]

(* [nflows] identical single-frame flows from host 0 to host 1 via the
   switch, priorities given per flow. *)
let star_scenario priorities =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let flows =
    List.mapi
      (fun id priority ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "f%d" id)
          ~spec:(one_frame_spec ()) ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
          ~priority)
      priorities
  in
  (Traffic.Scenario.make ~topo ~flows (), sw)

let get = function
  | Ok (r : Result_types.stage_response) -> r
  | Error f -> Alcotest.failf "stage failed: %a" Result_types.pp_failure f

let test_single_flow_first_hop () =
  let scenario, _ = star_scenario [ 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (First_hop.analyze ctx ~flow ~frame:0) in
  (* Alone on the link: R = C (eqs 16-19 with empty interference). *)
  Alcotest.(check int) "R = C" c_frame r.Result_types.response;
  Alcotest.(check int) "busy = C" c_frame r.Result_types.busy_len;
  Alcotest.(check int) "Q = 1" 1 r.Result_types.q_count

let test_single_flow_ingress () =
  let scenario, sw = star_scenario [ 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (Ingress.analyze ctx ~flow ~node:sw ~frame:0) in
  (* One Ethernet frame, one task rotation: R = CIRC (eq 25). *)
  Alcotest.(check int) "R = CIRC" circ r.Result_types.response

let test_single_flow_egress () =
  let scenario, sw = star_scenario [ 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (Egress.analyze ctx ~flow ~node:sw ~frame:0) in
  (* Repaired: w(0) = MFT + m*CIRC, R = w + C = 2*MFT + CIRC. *)
  Alcotest.(check int) "R = 2*MFT + CIRC"
    ((2 * c_frame) + circ)
    r.Result_types.response

let test_single_flow_egress_faithful () =
  let scenario, sw = star_scenario [ 5 ] in
  let ctx = Ctx.create ~config:Config.faithful scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (Egress.analyze ctx ~flow ~node:sw ~frame:0) in
  (* Faithful: no own-rotation charge, R = MFT + C = 2*MFT. *)
  Alcotest.(check int) "R = 2*MFT" (2 * c_frame) r.Result_types.response

let test_two_flow_first_hop () =
  let scenario, _ = star_scenario [ 5; 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (First_hop.analyze ctx ~flow ~frame:0) in
  (* The work-conserving first hop sees the competitor's frame ahead:
     w(0) = C_B, R = C_B + C_A = 2C. *)
  Alcotest.(check int) "R = 2C" (2 * c_frame) r.Result_types.response;
  (* Busy period covers both flows' frames. *)
  Alcotest.(check int) "busy = 2C" (2 * c_frame) r.Result_types.busy_len

let test_two_flow_first_hop_faithful_degenerates () =
  (* Under the paper's literal MXS clamp (eq 10), zero jitter makes the
     competitor invisible in w(q): the documented repair-R7 defect. *)
  let scenario, _ = star_scenario [ 5; 5 ] in
  let ctx = Ctx.create ~config:Config.faithful scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (First_hop.analyze ctx ~flow ~frame:0) in
  Alcotest.(check int) "faithful loses the competitor" c_frame
    r.Result_types.response

let test_two_flow_ingress () =
  let scenario, sw = star_scenario [ 5; 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (Ingress.analyze ctx ~flow ~node:sw ~frame:0) in
  (* Competitor's Ethernet frame takes one rotation, ours the next:
     R = 2 * CIRC. *)
  Alcotest.(check int) "R = 2*CIRC" (2 * circ) r.Result_types.response

let test_two_flow_egress_equal_priority () =
  let scenario, sw = star_scenario [ 5; 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (Egress.analyze ctx ~flow ~node:sw ~frame:0) in
  (* w(0) = MFT + CIRC + C_B + CIRC_B; R = w + C_A
         = MFT + 2C + 2*CIRC = 3*MFT + 2*CIRC. *)
  Alcotest.(check int) "R = 3*MFT + 2*CIRC"
    ((3 * c_frame) + (2 * circ))
    r.Result_types.response

let test_two_flow_egress_priority_shields () =
  (* Give the analyzed flow the higher priority: the competitor drops out of
     hep and only the MFT blocking term remains. *)
  let scenario, sw = star_scenario [ 6; 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let r = get (Egress.analyze ctx ~flow ~node:sw ~frame:0) in
  Alcotest.(check int) "R = 2*MFT + CIRC (blocking only)"
    ((2 * c_frame) + circ)
    r.Result_types.response;
  (* The lower-priority flow conversely suffers from the high one. *)
  let low = Traffic.Scenario.flow scenario 1 in
  let r_low = get (Egress.analyze ctx ~flow:low ~node:sw ~frame:0) in
  Alcotest.(check int) "lp flow sees hp interference"
    ((3 * c_frame) + (2 * circ))
    r_low.Result_types.response

let test_jitter_inflates_interference () =
  (* Give the competitor jitter at the egress stage: its extra term enlarges
     the interference window.  With extra = TSUM the competitor can hit the
     window twice. *)
  let scenario, sw = star_scenario [ 5; 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let competitor = Traffic.Scenario.flow scenario 1 in
  Ctx.set_jitter ctx competitor ~frame:0 ~stage:(Stage.Egress (sw, 2)) period;
  let r = get (Egress.analyze ctx ~flow ~node:sw ~frame:0) in
  let no_jitter_bound = (3 * c_frame) + (2 * circ) in
  Alcotest.(check bool) "bound grows with jitter" true
    (r.Result_types.response > no_jitter_bound)

let test_overload_diverges () =
  (* Three flows of period 3ms and C = 1.2304ms each: utilization > 1 on the
     shared first link; the busy period must not converge (eq 20). *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 3) ~deadline:(Timeunit.ms 50)
          ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let flows =
    List.init 3 (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "f%d" id)
          ~spec ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
          ~priority:5)
  in
  let scenario = Traffic.Scenario.make ~topo ~flows () in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  (match First_hop.analyze ctx ~flow ~frame:0 with
  | Ok _ -> Alcotest.fail "overloaded link must not converge"
  | Error f ->
      Alcotest.(check bool) "failure names the stage" true
        (f.Result_types.failed_stage = Some (Stage.First_link (hosts.(0), sw))));
  Alcotest.(check bool) "eq 20 violated" true
    (First_hop.utilization_condition ctx ~flow >= 1.

)

let test_utilization_conditions () =
  let scenario, sw = star_scenario [ 5; 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  let u_link = 2. *. (1_230_400. /. 10_000_000.) in
  Alcotest.(check (float 1e-6)) "first hop (eq 20)" u_link
    (First_hop.utilization_condition ctx ~flow);
  (* Ingress: 2 flows, 1 rotation per cycle each. *)
  Alcotest.(check (float 1e-6)) "ingress" (2. *. (7_400. /. 10_000_000.))
    (Ingress.utilization_condition ctx ~flow ~node:sw);
  Alcotest.(check (float 1e-6)) "egress (eqs 34-35)" u_link
    (Egress.utilization_condition ctx ~flow ~node:sw)

let test_frame_index_validation () =
  let scenario, sw = star_scenario [ 5 ] in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  Alcotest.check_raises "first hop"
    (Invalid_argument "First_hop.analyze: frame index out of range") (fun () ->
      ignore (First_hop.analyze ctx ~flow ~frame:1));
  Alcotest.check_raises "ingress off-route"
    (Invalid_argument "Ingress.analyze: node not on the flow's route")
    (fun () -> ignore (Ingress.analyze ctx ~flow ~node:99 ~frame:0));
  ignore sw

let tests =
  [
    Alcotest.test_case "single flow: first hop" `Quick
      test_single_flow_first_hop;
    Alcotest.test_case "single flow: ingress" `Quick test_single_flow_ingress;
    Alcotest.test_case "single flow: egress" `Quick test_single_flow_egress;
    Alcotest.test_case "single flow: egress (faithful)" `Quick
      test_single_flow_egress_faithful;
    Alcotest.test_case "two flows: first hop" `Quick test_two_flow_first_hop;
    Alcotest.test_case "faithful variant degenerates (R7)" `Quick
      test_two_flow_first_hop_faithful_degenerates;
    Alcotest.test_case "two flows: ingress" `Quick test_two_flow_ingress;
    Alcotest.test_case "two flows: egress equal prio" `Quick
      test_two_flow_egress_equal_priority;
    Alcotest.test_case "priority shields egress" `Quick
      test_two_flow_egress_priority_shields;
    Alcotest.test_case "jitter inflates interference" `Quick
      test_jitter_inflates_interference;
    Alcotest.test_case "overload diverges" `Quick test_overload_diverges;
    Alcotest.test_case "utilization conditions" `Quick
      test_utilization_conditions;
    Alcotest.test_case "index validation" `Quick test_frame_index_validation;
  ]
