(* Finite switch queues with drop accounting, validating the backlog bounds
   operationally: queues sized to the analytic bound never drop. *)
open Gmf_util

let converging_scenario () =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:3 ()
  in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 20) ~deadline:(Timeunit.ms 120)
          ~jitter:0 ~payload_bits:(8 * 50_000);
      ]
  in
  let flows =
    List.init 2 (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "burst%d" id)
          ~spec ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(id); sw; hosts.(2) ])
          ~priority:5)
  in
  Traffic.Scenario.make ~topo ~flows ()

let run_with_capacity scenario capacity =
  Sim.Netsim.run
    ~config:
      {
        Sim.Sim_config.default with
        duration = Timeunit.s 1;
        queue_capacity = capacity;
      }
    scenario

let test_unbounded_never_drops () =
  let report = run_with_capacity (converging_scenario ()) None in
  Alcotest.(check int) "no drops" 0 report.Sim.Netsim.fragments_dropped;
  Alcotest.(check int) "all packets complete" 0
    (Sim.Collector.incomplete report.Sim.Netsim.collector)

let test_bound_sized_queues_never_drop () =
  let scenario = converging_scenario () in
  let ctx = Analysis.Ctx.create scenario in
  let report = Analysis.Holistic.run ctx in
  let bound_frames =
    match Analysis.Backlog.egress_bounds ctx report with
    | Ok bounds ->
        List.fold_left
          (fun acc (b : Analysis.Backlog.queue_bound) ->
            max acc b.Analysis.Backlog.frames)
          0 bounds
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "bound positive" true (bound_frames > 0);
  let sim = run_with_capacity scenario (Some bound_frames) in
  Alcotest.(check int) "no drops at bound capacity" 0
    sim.Sim.Netsim.fragments_dropped

let test_undersized_queues_drop () =
  (* Two 50 kB packets (34 fragments each) converge; a 4-frame queue must
     overflow. *)
  let sim = run_with_capacity (converging_scenario ()) (Some 4) in
  Alcotest.(check bool) "drops occurred" true
    (sim.Sim.Netsim.fragments_dropped > 0);
  (* Dropped fragments leave packets incomplete. *)
  Alcotest.(check bool) "some packets incomplete" true
    (Sim.Collector.incomplete sim.Sim.Netsim.collector > 0)

let test_capacity_monotone () =
  (* More capacity never drops more. *)
  let scenario = converging_scenario () in
  let drops cap =
    (run_with_capacity scenario (Some cap)).Sim.Netsim.fragments_dropped
  in
  let d2 = drops 2 and d8 = drops 8 and d32 = drops 32 in
  Alcotest.(check bool)
    (Printf.sprintf "drops %d >= %d >= %d" d2 d8 d32)
    true
    (d2 >= d8 && d8 >= d32)

let tests =
  [
    Alcotest.test_case "unbounded never drops" `Quick
      test_unbounded_never_drops;
    Alcotest.test_case "bound-sized queues never drop" `Quick
      test_bound_sized_queues_never_drop;
    Alcotest.test_case "undersized queues drop" `Quick
      test_undersized_queues_drop;
    Alcotest.test_case "capacity monotone" `Quick test_capacity_monotone;
  ]
