open Gmf_util
open Click

let test_paper_circ () =
  (* Section 2.2: a 4-interface switch with the measured costs is serviced
     every 4 * (2.7 + 1.0) us = 14.8 us. *)
  let model = Switch_model.make ~ninterfaces:4 () in
  Alcotest.(check int) "CIRC = 14.8us" (Timeunit.us_frac 14.8)
    (Switch_model.circ model);
  Alcotest.(check int) "default croute" 2_700
    model.Switch_model.croute;
  Alcotest.(check int) "default csend" 1_000 model.Switch_model.csend

let test_multiprocessor_circ () =
  (* Conclusions: 48 ports on 16 processors -> 3 interfaces each ->
     CIRC = 3 * 3.7 us = 11.1 us. *)
  let model = Switch_model.make ~ninterfaces:48 ~processors:16 () in
  Alcotest.(check int) "interfaces per processor" 3
    (Switch_model.interfaces_per_processor model);
  Alcotest.(check int) "CIRC = 11.1us" (Timeunit.us_frac 11.1)
    (Switch_model.circ model)

let test_validation () =
  Alcotest.check_raises "no interfaces"
    (Invalid_argument "Switch_model.make: non-positive interface count")
    (fun () -> ignore (Switch_model.make ~ninterfaces:0 ()));
  Alcotest.check_raises "uneven division"
    (Invalid_argument
       "Switch_model.make: processors must evenly divide interfaces \
        (paper's multiprocessor construction)") (fun () ->
      ignore (Switch_model.make ~ninterfaces:5 ~processors:2 ()))

let test_scheduler_shape () =
  let model = Switch_model.make ~ninterfaces:4 ~processors:2 () in
  let sched = Switch_model.scheduler model in
  (* Two interfaces per processor, two tasks per interface. *)
  Alcotest.(check int) "4 tasks" 4 (Stride.Scheduler.task_count sched);
  Alcotest.(check int) "equal tickets" 1 (Stride.Scheduler.tickets sched 0)

let test_custom_costs () =
  let model =
    Switch_model.make ~croute:(Timeunit.us 5) ~csend:(Timeunit.us 2)
      ~ninterfaces:8 ()
  in
  Alcotest.(check int) "CIRC scales" (8 * Timeunit.us 7)
    (Switch_model.circ model)

let tests =
  [
    Alcotest.test_case "paper CIRC 14.8us" `Quick test_paper_circ;
    Alcotest.test_case "multiprocessor CIRC 11.1us" `Quick
      test_multiprocessor_circ;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "scheduler shape" `Quick test_scheduler_shape;
    Alcotest.test_case "custom costs" `Quick test_custom_costs;
  ]
