(* Backlog (buffer-sizing) bounds: Analysis.Backlog vs the simulator's
   queue high-water marks. *)
open Gmf_util

let analyzed scenario =
  let ctx = Analysis.Ctx.create scenario in
  let report = Analysis.Holistic.run ctx in
  (ctx, report)

let bounds_ok = function
  | Ok bounds -> bounds
  | Error msg -> Alcotest.failf "backlog bounds failed: %s" msg

let test_single_flow_bounds () =
  (* One single-Ethernet-frame flow through one switch: at most one frame of
     it can ever sit in each queue plus the next cycle's arrival within the
     jitter window - the bound must be small but at least 1. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 10) ~deadline:(Timeunit.ms 50)
          ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"solo" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ flow ] () in
  let ctx, report = analyzed scenario in
  let egress = bounds_ok (Analysis.Backlog.egress_bounds ctx report) in
  let ingress = bounds_ok (Analysis.Backlog.ingress_bounds ctx report) in
  Alcotest.(check int) "one egress queue" 1 (List.length egress);
  Alcotest.(check int) "one ingress fifo" 1 (List.length ingress);
  let e = List.hd egress in
  Alcotest.(check int) "egress bound = 1 frame" 1 e.Analysis.Backlog.frames;
  Alcotest.(check int) "bits = frames * max frame"
    (e.Analysis.Backlog.frames * 12_304)
    e.Analysis.Backlog.bits;
  Alcotest.(check int) "ingress bound = 1 frame" 1
    (List.hd ingress).Analysis.Backlog.frames

let test_bounds_require_schedulable () =
  (* Overloaded scenario: the analysis fails and backlog bounds refuse. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 2) ~deadline:(Timeunit.ms 50)
          ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let flows =
    List.init 2 (fun id ->
        Traffic.Flow.make ~id ~name:(Printf.sprintf "f%d" id) ~spec
          ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
          ~priority:5)
  in
  let scenario = Traffic.Scenario.make ~topo ~flows () in
  let ctx, report = analyzed scenario in
  Alcotest.(check bool) "egress bounds rejected" true
    (Result.is_error (Analysis.Backlog.egress_bounds ctx report));
  Alcotest.(check bool) "ingress bounds rejected" true
    (Result.is_error (Analysis.Backlog.ingress_bounds ctx report))

let check_domination name scenario =
  let ctx, report = analyzed scenario in
  if Analysis.Holistic.is_schedulable report then begin
    let sim =
      Sim.Netsim.run
        ~config:{ Sim.Sim_config.default with duration = Timeunit.s 1 }
        scenario
    in
    let check kind bounds observed_table =
      List.iter
        (fun (b : Analysis.Backlog.queue_bound) ->
          match
            List.assoc_opt
              (b.Analysis.Backlog.node, b.Analysis.Backlog.peer)
              observed_table
          with
          | None -> ()
          | Some observed ->
              if observed > b.Analysis.Backlog.frames then
                Alcotest.failf "%s %s queue %d<->%d: observed %d > bound %d"
                  name kind b.Analysis.Backlog.node b.Analysis.Backlog.peer
                  observed b.Analysis.Backlog.frames)
        bounds
    in
    check "egress"
      (bounds_ok (Analysis.Backlog.egress_bounds ctx report))
      sim.Sim.Netsim.egress_backlog;
    check "ingress"
      (bounds_ok (Analysis.Backlog.ingress_bounds ctx report))
      sim.Sim.Netsim.ingress_backlog
  end

let test_domination_fig1 () =
  check_domination "fig1" (Workload.Scenarios.fig1_videoconf ())

let test_domination_chain () =
  check_domination "chain" (Workload.Scenarios.multihop_chain ())

let test_domination_random () =
  for seed = 11 to 16 do
    let rng = Rng.create ~seed in
    let topo, hosts, _sw =
      Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:4 ()
    in
    let pairs = Workload.Random_gen.random_pairs rng ~hosts ~count:4 in
    let flows = Workload.Random_gen.flows_between rng ~topo ~pairs () in
    check_domination
      (Printf.sprintf "random-%d" seed)
      (Traffic.Scenario.make ~topo ~flows ())
  done

let test_sim_reports_queues () =
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.ms 300 }
      (Workload.Scenarios.fig1_videoconf ())
  in
  (* Each of the three switches reports its interfaces; occupancies are
     positive somewhere. *)
  Alcotest.(check bool) "egress marks present" true
    (List.length sim.Sim.Netsim.egress_backlog > 0);
  Alcotest.(check bool) "some queue was used" true
    (List.exists (fun (_, m) -> m > 0) sim.Sim.Netsim.egress_backlog);
  Alcotest.(check bool) "ingress marks present" true
    (List.length sim.Sim.Netsim.ingress_backlog > 0);
  (* Keys are (switch, neighbor) pairs with switch in {4,5,6}. *)
  List.iter
    (fun ((sw, _), _) ->
      Alcotest.(check bool) "key is a switch" true (sw >= 4 && sw <= 6))
    sim.Sim.Netsim.egress_backlog

let tests =
  [
    Alcotest.test_case "single flow bounds" `Quick test_single_flow_bounds;
    Alcotest.test_case "requires schedulable" `Quick
      test_bounds_require_schedulable;
    Alcotest.test_case "domination: fig1" `Slow test_domination_fig1;
    Alcotest.test_case "domination: chain" `Slow test_domination_chain;
    Alcotest.test_case "domination: random" `Slow test_domination_random;
    Alcotest.test_case "sim reports queues" `Quick test_sim_reports_queues;
  ]
