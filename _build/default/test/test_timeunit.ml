open Gmf_util

let check_int = Alcotest.(check int)

let test_constructors () =
  check_int "ns" 5 (Timeunit.ns 5);
  check_int "us" 5_000 (Timeunit.us 5);
  check_int "ms" 5_000_000 (Timeunit.ms 5);
  check_int "s" 5_000_000_000 (Timeunit.s 5);
  check_int "us_frac 2.7" 2_700 (Timeunit.us_frac 2.7);
  check_int "us_frac 1.0" 1_000 (Timeunit.us_frac 1.0);
  check_int "us_frac rounds" 1_234 (Timeunit.us_frac 1.2341)

let test_conversions () =
  Alcotest.(check (float 1e-9)) "to_us" 14.8 (Timeunit.to_us 14_800);
  Alcotest.(check (float 1e-9)) "to_ms" 270. (Timeunit.to_ms (Timeunit.ms 270));
  Alcotest.(check (float 1e-9)) "to_s" 1.5 (Timeunit.to_s 1_500_000_000)

let test_pp () =
  let check_pp expected t =
    Alcotest.(check string) expected expected (Timeunit.to_string t)
  in
  check_pp "999ns" 999;
  check_pp "1us" 1_000;
  check_pp "14.8us" 14_800;
  check_pp "270ms" (Timeunit.ms 270);
  check_pp "1.2304ms" 1_230_400;
  check_pp "2s" (Timeunit.s 2)

let test_cdiv_fdiv () =
  check_int "cdiv exact" 4 (Timeunit.cdiv 12 3);
  check_int "cdiv up" 5 (Timeunit.cdiv 13 3);
  check_int "cdiv zero" 0 (Timeunit.cdiv 0 3);
  check_int "fdiv exact" 4 (Timeunit.fdiv 12 3);
  check_int "fdiv down" 4 (Timeunit.fdiv 13 3);
  Alcotest.check_raises "cdiv by zero"
    (Invalid_argument "Timeunit.cdiv: non-positive divisor") (fun () ->
      ignore (Timeunit.cdiv 1 0));
  Alcotest.check_raises "cdiv negative"
    (Invalid_argument "Timeunit.cdiv: negative dividend") (fun () ->
      ignore (Timeunit.cdiv (-1) 2))

let test_tx_time () =
  (* 12304 bits at 10 Mbit/s = 1.2304 ms: the paper's MFT example. *)
  check_int "MFT at 10Mbps" 1_230_400
    (Timeunit.tx_time_ns ~bits:12_304 ~rate_bps:10_000_000);
  (* Rounded up, never down. *)
  check_int "rounds up" 2 (Timeunit.tx_time_ns ~bits:3 ~rate_bps:2_000_000_000);
  check_int "zero bits" 0 (Timeunit.tx_time_ns ~bits:0 ~rate_bps:10);
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Timeunit.tx_time_ns: non-positive rate") (fun () ->
      ignore (Timeunit.tx_time_ns ~bits:1 ~rate_bps:0))

let tests =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "pretty-printing" `Quick test_pp;
    Alcotest.test_case "cdiv/fdiv" `Quick test_cdiv_fdiv;
    Alcotest.test_case "tx_time" `Quick test_tx_time;
  ]
