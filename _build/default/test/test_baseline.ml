open Gmf_util

let test_convert_spec () =
  let spec = Workload.Mpeg.fig3_spec in
  let converted = Baseline.Sporadic.convert_spec spec in
  Alcotest.(check int) "single frame" 1 (Gmf.Spec.n converted);
  let f = Gmf.Spec.frame converted 0 in
  (* All periods equal 30ms here, so min = 30ms. *)
  Alcotest.(check int) "min period" (Timeunit.ms 30) f.Gmf.Frame_spec.period;
  (* Payload = max over frames = the I+P packet. *)
  Alcotest.(check int) "max payload" 352_000 f.Gmf.Frame_spec.payload_bits;
  Alcotest.(check int) "min deadline" (Timeunit.ms 150)
    f.Gmf.Frame_spec.deadline;
  Alcotest.(check int) "max jitter" (Timeunit.ms 1) f.Gmf.Frame_spec.jitter

let test_convert_skips_zero_periods () =
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:0 ~deadline:(Timeunit.ms 10) ~jitter:0
          ~payload_bits:100;
        Gmf.Frame_spec.make ~period:(Timeunit.ms 5) ~deadline:(Timeunit.ms 20)
          ~jitter:0 ~payload_bits:200;
      ]
  in
  let converted = Baseline.Sporadic.convert_spec spec in
  Alcotest.(check int) "smallest positive period" (Timeunit.ms 5)
    (Gmf.Spec.frame converted 0).Gmf.Frame_spec.period

let test_convert_flow_preserves_identity () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let flow = Traffic.Scenario.flow scenario Workload.Scenarios.video_flow_id in
  let converted = Baseline.Sporadic.convert_flow flow in
  Alcotest.(check int) "same id" flow.Traffic.Flow.id
    converted.Traffic.Flow.id;
  Alcotest.(check int) "same priority" flow.Traffic.Flow.priority
    converted.Traffic.Flow.priority;
  Alcotest.(check (list int)) "same route"
    (Network.Route.nodes flow.Traffic.Flow.route)
    (Network.Route.nodes converted.Traffic.Flow.route)

let test_baseline_is_more_pessimistic () =
  (* The sporadic abstraction inflates the MPEG flow's utilization
     (I+P-sized packet every 30 ms), so its bound must dominate the GMF
     bound wherever both converge. *)
  let scenario = Workload.Scenarios.fig1_videoconf ~rate_bps:100_000_000 () in
  let gmf_report = Analysis.Holistic.analyze scenario in
  let spor_report = Baseline.Sporadic.analyze scenario in
  Alcotest.(check bool) "gmf schedulable" true
    (Analysis.Holistic.is_schedulable gmf_report);
  Alcotest.(check bool) "sporadic schedulable at 100Mbps" true
    (Analysis.Holistic.is_schedulable spor_report);
  let worst report id =
    let res =
      List.find
        (fun r -> r.Analysis.Result_types.flow.Traffic.Flow.id = id)
        report.Analysis.Holistic.results
    in
    (Analysis.Result_types.worst_frame res).Analysis.Result_types.total
  in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d: sporadic >= gmf" id)
        true
        (worst spor_report id >= worst gmf_report id))
    [ 0; 1; 2; 3; 4; 5 ]

let test_baseline_utilization_inflation () =
  (* At 10 Mbit/s the sporadic video abstraction alone exceeds the link:
     I+P every 30ms = 36.6ms of transmission per 30ms.  The sporadic
     analysis must reject what the GMF analysis accepts: the paper's core
     motivation for using GMF. *)
  let scenario = Workload.Scenarios.fig1_videoconf () in
  Alcotest.(check bool) "gmf accepts" true
    (Analysis.Admission.check scenario).Analysis.Admission.admitted;
  Alcotest.(check bool) "sporadic rejects" false
    (Baseline.Sporadic.check scenario).Analysis.Admission.admitted

let test_greedy_admission_gap () =
  (* Greedy admission of identical medium-rate GMF flows: the GMF analysis
     admits at least as many as the sporadic baseline. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:4 () in
  let mk id =
    Traffic.Flow.make ~id
      ~name:(Printf.sprintf "v%d" id)
      ~spec:(Workload.Mpeg.spec ~sizes:{ Workload.Mpeg.fig3_sizes with
                                         i_plus_p_bytes = 20_000 }
               ~deadline:(Timeunit.ms 260) ())
      ~encap:Ethernet.Encap.Udp
      ~route:
        (Network.Route.make topo
           [ hosts.(id mod 2); sw; hosts.(2 + (id mod 2)) ])
      ~priority:5
  in
  let candidates = List.init 6 mk in
  let gmf_in, _ =
    Analysis.Admission.admit_greedily ~topo ~switches:[] candidates
  in
  let spor_in, _ =
    Baseline.Sporadic.admit_greedily ~topo ~switches:[] candidates
  in
  Alcotest.(check bool)
    (Printf.sprintf "gmf admits %d >= sporadic %d" (List.length gmf_in)
       (List.length spor_in))
    true
    (List.length gmf_in >= List.length spor_in)

let tests =
  [
    Alcotest.test_case "convert spec" `Quick test_convert_spec;
    Alcotest.test_case "zero periods skipped" `Quick
      test_convert_skips_zero_periods;
    Alcotest.test_case "flow identity preserved" `Quick
      test_convert_flow_preserves_identity;
    Alcotest.test_case "sporadic dominates gmf bounds" `Quick
      test_baseline_is_more_pessimistic;
    Alcotest.test_case "gmf admits what sporadic rejects" `Quick
      test_baseline_utilization_inflation;
    Alcotest.test_case "greedy admission gap" `Quick test_greedy_admission_gap;
  ]
