(* Demand-bound functions and the single-resource EDF test (the original
   GMF analysis of Baruah et al., the paper's reference [6]). *)

let example () =
  Gmf.Dbf.make ~costs:[| 3; 1; 2 |] ~periods:[| 10; 20; 30 |]
    ~deadlines:[| 5; 15; 25 |]

let test_dbf_hand_values () =
  let t = example () in
  let dbf = Gmf.Dbf.dbf t in
  Alcotest.(check int) "dbf(0)" 0 (dbf 0);
  Alcotest.(check int) "dbf(4): nothing due yet" 0 (dbf 4);
  Alcotest.(check int) "dbf(5): frame 0 alone" 3 (dbf 5);
  (* k1=0: releases at 0 (D=5,c=3) and 10 (D=25,c=1): both due by 25. *)
  Alcotest.(check int) "dbf(25)" 4 (dbf 25);
  (* k1=1: releases 0 (D=15), 20 (D=45), 50 (D=55): total 1+2+3 = 6;
     k1=0 gives 3+1+2 = 6 at 55 as well. *)
  Alcotest.(check int) "dbf(55)" 6 (dbf 55);
  (* k1=0 second cycle: release 60 with D=65 adds another 3. *)
  Alcotest.(check int) "dbf(65)" 9 (dbf 65);
  Alcotest.(check int) "negative dt" 0 (dbf (-1))

let test_dbf_of_spec () =
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:10 ~deadline:5 ~jitter:0 ~payload_bits:300;
        Gmf.Frame_spec.make ~period:20 ~deadline:15 ~jitter:0 ~payload_bits:100;
      ]
  in
  let t =
    Gmf.Dbf.of_spec spec ~cost_of:(fun f -> f.Gmf.Frame_spec.payload_bits / 100)
  in
  Alcotest.(check int) "dbf(5) from spec" 3 (Gmf.Dbf.dbf t 5);
  Alcotest.(check (float 1e-9)) "utilization" (4. /. 30.)
    (Gmf.Dbf.utilization t)

let test_deadline_events () =
  let t = example () in
  let events = Gmf.Dbf.deadline_events t ~horizon:60 in
  (* From k1=0: 5, 25, 55; k1=1: 15, 45; k1=2: 25, 35 (release 30, D 5).
     All distinct values <= 60, sorted. *)
  Alcotest.(check bool) "sorted" true (List.sort compare events = events);
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d present" expected)
        true (List.mem expected events))
    [ 5; 15; 25; 35; 45; 55 ];
  Alcotest.(check bool) "all within horizon" true
    (List.for_all (fun e -> e <= 60) events)

let test_edf_feasible () =
  (* Low utilization, loose deadlines: feasible. *)
  Alcotest.(check bool) "loose task feasible" true
    (Gmf.Dbf.edf_feasible ~horizon:200
       [ Gmf.Dbf.make ~costs:[| 2; 1 |] ~periods:[| 10; 10 |]
           ~deadlines:[| 10; 10 |] ]);
  (* Demand exceeding a deadline: infeasible even at low utilization. *)
  Alcotest.(check bool) "tight deadline infeasible" false
    (Gmf.Dbf.edf_feasible ~horizon:200
       [ Gmf.Dbf.make ~costs:[| 10 |] ~periods:[| 100 |] ~deadlines:[| 5 |] ]);
  (* Over-utilization short-circuits. *)
  Alcotest.(check bool) "overload infeasible" false
    (Gmf.Dbf.edf_feasible ~horizon:200
       [
         Gmf.Dbf.make ~costs:[| 6 |] ~periods:[| 10 |] ~deadlines:[| 10 |];
         Gmf.Dbf.make ~costs:[| 6 |] ~periods:[| 10 |] ~deadlines:[| 10 |];
       ]);
  (* Two tasks that exactly fill the resource with implicit deadlines. *)
  Alcotest.(check bool) "U=1 harmonic feasible" true
    (Gmf.Dbf.edf_feasible ~horizon:200
       [
         Gmf.Dbf.make ~costs:[| 5 |] ~periods:[| 10 |] ~deadlines:[| 10 |];
         Gmf.Dbf.make ~costs:[| 5 |] ~periods:[| 10 |] ~deadlines:[| 10 |];
       ]);
  Alcotest.check_raises "bad horizon"
    (Invalid_argument "Dbf.edf_feasible: non-positive horizon") (fun () ->
      ignore (Gmf.Dbf.edf_feasible ~horizon:0 []))

let arb_gmf_task =
  QCheck.make
    ~print:(fun (c, p, d) ->
      Printf.sprintf "c=%s p=%s d=%s"
        (QCheck.Print.(list int) (Array.to_list c))
        (QCheck.Print.(list int) (Array.to_list p))
        (QCheck.Print.(list int) (Array.to_list d)))
    QCheck.Gen.(
      int_range 1 5 >>= fun n ->
      let* costs = array_size (return n) (int_range 0 20) in
      let* periods = array_size (return n) (int_range 1 30) in
      let* deadlines = array_size (return n) (int_range 1 60) in
      return (costs, periods, deadlines))

let prop_dbf_monotone =
  QCheck.Test.make ~name:"dbf monotone" ~count:300
    QCheck.(triple arb_gmf_task (int_range 0 300) (int_range 0 100))
    (fun ((c, p, d), dt, extra) ->
      let t = Gmf.Dbf.make ~costs:c ~periods:p ~deadlines:d in
      Gmf.Dbf.dbf t dt <= Gmf.Dbf.dbf t (dt + extra))

let prop_dbf_below_rbf =
  QCheck.Test.make ~name:"dbf <= request bound (NX-style)" ~count:300
    QCheck.(pair arb_gmf_task (int_range 0 300))
    (fun ((c, p, d), dt) ->
      let t = Gmf.Dbf.make ~costs:c ~periods:p ~deadlines:d in
      let demand = Gmf.Demand.make ~costs:c ~periods:p in
      Gmf.Dbf.dbf t dt <= Gmf.Demand.bound demand ~capped:false dt)

let prop_dbf_cycle_growth =
  (* For dt past the largest deadline, every first-cycle job is due within
     dt + TSUM, so exactly one extra cycle's demand appears. *)
  QCheck.Test.make ~name:"dbf grows by CSUM per extra cycle" ~count:200
    QCheck.(pair arb_gmf_task (int_range 0 200))
    (fun ((c, p, d), dt) ->
      let t = Gmf.Dbf.make ~costs:c ~periods:p ~deadlines:d in
      let demand = Gmf.Demand.make ~costs:c ~periods:p in
      let tsum = Gmf.Demand.tsum demand in
      let csum = Gmf.Demand.cost_total demand in
      let dt = dt + Array.fold_left max 0 d in
      Gmf.Dbf.dbf t (dt + tsum) = Gmf.Dbf.dbf t dt + csum)

let tests =
  [
    Alcotest.test_case "dbf hand values" `Quick test_dbf_hand_values;
    Alcotest.test_case "dbf of spec" `Quick test_dbf_of_spec;
    Alcotest.test_case "deadline events" `Quick test_deadline_events;
    Alcotest.test_case "edf feasibility" `Quick test_edf_feasible;
    QCheck_alcotest.to_alcotest prop_dbf_monotone;
    QCheck_alcotest.to_alcotest prop_dbf_below_rbf;
    QCheck_alcotest.to_alcotest prop_dbf_cycle_growth;
  ]
