open Gmf_util

let test_render_alignment () =
  let t =
    Tablefmt.create
      ~columns:[ ("name", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "x"; "1" ];
  Tablefmt.add_row t [ "longer"; "22" ];
  let rendered = Tablefmt.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (match lines with
  | header :: rule :: row1 :: _ ->
      Alcotest.(check string) "header" "name   | value" header;
      Alcotest.(check string) "rule" "-------+------" rule;
      Alcotest.(check string) "row right-aligned" "x      |     1" row1
  | _ -> Alcotest.fail "unexpected shape");
  (* every line has equal width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_separator () =
  let t = Tablefmt.create ~columns:[ ("c", Tablefmt.Left) ] in
  Tablefmt.add_row t [ "a" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "b" ];
  let lines = String.split_on_char '\n' (Tablefmt.render t) in
  Alcotest.(check int) "5 lines" 5 (List.length lines)

let test_errors () =
  Alcotest.check_raises "no columns"
    (Invalid_argument "Tablefmt.create: no columns") (fun () ->
      ignore (Tablefmt.create ~columns:[]));
  let t = Tablefmt.create ~columns:[ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Tablefmt.add_row: wrong cell count") (fun () ->
      Tablefmt.add_row t [ "1"; "2" ])

let test_wide_cells () =
  let t =
    Tablefmt.create ~columns:[ ("a", Tablefmt.Right); ("b", Tablefmt.Left) ]
  in
  Tablefmt.add_row t [ "123456789"; "x" ];
  let first_line = List.hd (String.split_on_char '\n' (Tablefmt.render t)) in
  Alcotest.(check string) "header padded to cell width" "        a | b"
    first_line

let tests =
  [
    Alcotest.test_case "render + alignment" `Quick test_render_alignment;
    Alcotest.test_case "separator" `Quick test_separator;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "wide cells" `Quick test_wide_cells;
  ]
