(* Experiment drivers: check the registry wiring and the headline values
   each experiment's compute core produces (printing goes to the captured
   test log). *)
open Gmf_util

let test_registry () =
  Alcotest.(check int) "nineteen experiments" 19
    (List.length Experiments.Registry.all);
  (* Lookup is case-insensitive and total. *)
  Alcotest.(check bool) "find e4" true
    (Option.is_some (Experiments.Registry.find "e4"));
  Alcotest.(check bool) "find E10" true
    (Option.is_some (Experiments.Registry.find "E10"));
  Alcotest.(check bool) "unknown" true
    (Option.is_none (Experiments.Registry.find "E99"));
  (* Ids are unique. *)
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_e1_values () =
  let r = Experiments.E1_worked_example.compute () in
  Alcotest.(check int) "NSUM" 94 r.Experiments.E1_worked_example.nsum;
  Alcotest.(check int) "TSUM" (Timeunit.ms 270)
    r.Experiments.E1_worked_example.tsum;
  Alcotest.(check int) "MFT" 1_230_400 r.Experiments.E1_worked_example.mft;
  Alcotest.(check int) "CSUM" 110_019_200 r.Experiments.E1_worked_example.csum

let test_e3_sweep () =
  let rows = Experiments.E3_circ.sweep () in
  Alcotest.(check int) "six configurations" 6 (List.length rows);
  (* CIRC of the two headline configurations. *)
  let circ_of ports cpus =
    (List.find
       (fun r ->
         r.Experiments.E3_circ.ports = ports
         && r.Experiments.E3_circ.processors = cpus)
       rows)
      .Experiments.E3_circ.circ
  in
  Alcotest.(check int) "14.8us" 14_800 (circ_of 4 1);
  Alcotest.(check int) "11.1us" 11_100 (circ_of 48 16);
  (* Bounds grow with CIRC among the single-CPU rows. *)
  let single_cpu =
    List.filter (fun r -> r.Experiments.E3_circ.processors = 1) rows
    |> List.sort (fun a b ->
           compare a.Experiments.E3_circ.circ b.Experiments.E3_circ.circ)
  in
  let bounds =
    List.filter_map (fun r -> r.Experiments.E3_circ.video_bound) single_cpu
  in
  Alcotest.(check bool) "monotone in CIRC" true
    (List.sort compare bounds = bounds)

let test_e4_gap () =
  let points = Experiments.E4_admission.sweep ~max_flows:10 () in
  Alcotest.(check int) "ten points" 10 (List.length points);
  let last = List.nth points 9 in
  Alcotest.(check bool) "GMF admits more than sporadic" true
    (last.Experiments.E4_admission.gmf_admitted
     > last.Experiments.E4_admission.sporadic_admitted);
  (* Admission counts never exceed the offer and never decrease. *)
  let rec monotone prev = function
    | [] -> true
    | p :: rest ->
        p.Experiments.E4_admission.gmf_admitted >= prev
        && p.Experiments.E4_admission.gmf_admitted
           <= p.Experiments.E4_admission.offered
        && monotone p.Experiments.E4_admission.gmf_admitted rest
  in
  Alcotest.(check bool) "gmf counts monotone" true (monotone 0 points)

let test_e5_fig1_sound () =
  let row =
    Experiments.E5_validation.validate ~duration:(Timeunit.ms 400)
      ~name:"fig1" (Workload.Scenarios.fig1_videoconf ())
  in
  Alcotest.(check bool) "schedulable" true
    row.Experiments.E5_validation.schedulable;
  Alcotest.(check bool) "sound" true row.Experiments.E5_validation.sound;
  Alcotest.(check bool) "tightness in (0,1]" true
    (row.Experiments.E5_validation.tightness > 0.
     && row.Experiments.E5_validation.tightness <= 1.)

let test_e6_boundary () =
  let points = Experiments.E6_convergence.sweep () in
  (* Every point below utilization 1 is schedulable, every point above
     fails. *)
  List.iter
    (fun p ->
      if p.Experiments.E6_convergence.link_utilization < 1. then
        Alcotest.(check string)
          (Printf.sprintf "U=%.3f schedulable"
             p.Experiments.E6_convergence.link_utilization)
          "schedulable" p.Experiments.E6_convergence.verdict
      else
        Alcotest.(check bool)
          (Printf.sprintf "U=%.3f fails"
             p.Experiments.E6_convergence.link_utilization)
          true
          (p.Experiments.E6_convergence.verdict <> "schedulable"))
    points

let test_e8_variants () =
  let comparisons = Experiments.E8_ablation.fig1_comparison () in
  Alcotest.(check int) "six flows" 6 (List.length comparisons);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Experiments.E8_ablation.flow_name ^ ": repaired >= faithful")
        true
        (c.Experiments.E8_ablation.repaired
         >= c.Experiments.E8_ablation.faithful))
    comparisons

let test_e9_allocation () =
  let rows = Experiments.E9_stride.allocation_table ~steps:600 [ 3; 2; 1 ] in
  Alcotest.(check (list int)) "runs 300/200/100" [ 300; 200; 100 ]
    (List.map (fun r -> r.Experiments.E9_stride.runs) rows);
  let gap, circ = Experiments.E9_stride.max_service_gap_in_switch () in
  Alcotest.(check bool) "gap <= CIRC" true (gap <= circ)

let test_e10_monotone () =
  let rows = Experiments.E10_priorities.sweep () in
  Alcotest.(check int) "eight classes" 8 (List.length rows);
  let sorted =
    List.sort
      (fun a b ->
        compare a.Experiments.E10_priorities.priority
          b.Experiments.E10_priorities.priority)
      rows
  in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Experiments.E10_priorities.bound
        >= b.Experiments.E10_priorities.bound
        && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "bounds fall with priority" true (monotone sorted);
  (* Simulated observations never exceed their bounds. *)
  List.iter
    (fun r ->
      match r.Experiments.E10_priorities.observed with
      | None -> ()
      | Some o ->
          Alcotest.(check bool) "observed <= bound" true
            (o <= r.Experiments.E10_priorities.bound))
    rows

let test_e12_contract () =
  let s = Experiments.E12_contract.compute () in
  Alcotest.(check bool) "contract dominates traces" true
    s.Experiments.E12_contract.contract_respected;
  Alcotest.(check bool) "extracted flows admitted" true
    s.Experiments.E12_contract.extracted_admitted;
  (* The extraction is per-position, so it cannot be wildly more pessimistic
     than the nominal declaration; both settings here are schedulable and
     within the same order of magnitude. *)
  match
    (s.Experiments.E12_contract.extracted_bound,
     s.Experiments.E12_contract.nominal_bound)
  with
  | Some extracted, Some nominal ->
      Alcotest.(check bool) "bounds comparable" true
        (extracted < 2 * nominal && nominal < 2 * extracted)
  | _ -> Alcotest.fail "both settings should be schedulable"

let test_e13_sizing () =
  let a = Experiments.E13_sizing.compute () in
  (match a.Experiments.E13_sizing.min_rate_bps with
  | Some rate ->
      (* The 10 Mbit/s worked example is schedulable (E2), so the minimum
         uniform rate is at most 10 Mbit/s; a two-way video pair cannot fit
         below ~5 Mbit/s. *)
      Alcotest.(check bool)
        (Printf.sprintf "min rate %d sane" rate)
        true
        (rate > 2_000_000 && rate <= 10_000_000)
  | None -> Alcotest.fail "a feasible rate must exist");
  (match a.Experiments.E13_sizing.headroom_at_100m with
  | Some h -> Alcotest.(check bool) "headroom at 100M > 5x" true (h > 5.)
  | None -> Alcotest.fail "100M headroom must exist");
  match
    (a.Experiments.E13_sizing.headroom_at_10m,
     a.Experiments.E13_sizing.headroom_at_100m)
  with
  | Some h10, Some h100 ->
      Alcotest.(check bool) "more rate, more headroom" true (h100 > h10)
  | _ -> Alcotest.fail "headrooms must exist"

let test_e18_stage_validation () =
  let rows = Experiments.E18_stage_validation.rows () in
  Alcotest.(check int) "110 stage checks on fig1" 110 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s frame %d %s sound"
           r.Experiments.E18_stage_validation.flow_name
           r.Experiments.E18_stage_validation.frame
           r.Experiments.E18_stage_validation.stage)
        true r.Experiments.E18_stage_validation.sound)
    rows

let test_e19_campaign () =
  let s = Experiments.E19_fuzz_campaign.campaign ~count:8 ~seed:123 () in
  Alcotest.(check int) "eight scenarios" 8
    s.Experiments.E19_fuzz_campaign.scenarios;
  Alcotest.(check (list string)) "no violations" []
    s.Experiments.E19_fuzz_campaign.violations;
  Alcotest.(check bool) "tightness sane" true
    (s.Experiments.E19_fuzz_campaign.mean_tightness >= 0.
    && s.Experiments.E19_fuzz_campaign.mean_tightness <= 1.)

let test_run_all_prints () =
  (* E1/E2/E3/E9 print quickly; run them via the registry to cover the
     run-functions themselves (the heavy ones are covered above). *)
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | Some e -> e.Experiments.Registry.run ()
      | None -> Alcotest.failf "missing %s" id)
    [ "E1"; "E2"; "E3"; "E9" ]

let tests =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "E1 headline values" `Quick test_e1_values;
    Alcotest.test_case "E3 sweep" `Quick test_e3_sweep;
    Alcotest.test_case "E4 admission gap" `Slow test_e4_gap;
    Alcotest.test_case "E5 fig1 sound" `Slow test_e5_fig1_sound;
    Alcotest.test_case "E6 boundary" `Quick test_e6_boundary;
    Alcotest.test_case "E8 variants ordered" `Quick test_e8_variants;
    Alcotest.test_case "E9 allocation" `Quick test_e9_allocation;
    Alcotest.test_case "E10 monotone" `Slow test_e10_monotone;
    Alcotest.test_case "E12 contract pipeline" `Slow test_e12_contract;
    Alcotest.test_case "E13 sizing" `Slow test_e13_sizing;
    Alcotest.test_case "E18 stage validation" `Slow test_e18_stage_validation;
    Alcotest.test_case "E19 fuzz campaign" `Slow test_e19_campaign;
    Alcotest.test_case "experiment drivers print" `Slow test_run_all_prints;
  ]
