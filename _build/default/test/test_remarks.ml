(* Per-link 802.1p remarking: the paper's prio(tau, N1, N2) in eq (2) is a
   per-link function, so a flow's class may be rewritten at any switch. *)
open Gmf_util

(* Two flows crossing a two-switch chain host0 -> swA -> swB -> host1. *)
let chain_scenario ~flow0_remarks =
  let topo = Network.Topology.create () in
  let h0 = Network.Topology.add_node topo ~name:"h0" ~kind:Network.Node.Endhost in
  let h1 = Network.Topology.add_node topo ~name:"h1" ~kind:Network.Node.Endhost in
  let a = Network.Topology.add_node topo ~name:"swA" ~kind:Network.Node.Switch in
  let b = Network.Topology.add_node topo ~name:"swB" ~kind:Network.Node.Switch in
  let rate_bps = 10_000_000 in
  Network.Topology.add_duplex_link topo ~a:h0 ~b:a ~rate_bps ~prop:0;
  Network.Topology.add_duplex_link topo ~a ~b ~rate_bps ~prop:0;
  Network.Topology.add_duplex_link topo ~a:b ~b:h1 ~rate_bps ~prop:0;
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 20) ~deadline:(Timeunit.ms 100)
          ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let route = Network.Route.make topo [ h0; a; b; h1 ] in
  let flow0 =
    Traffic.Flow.with_remarks
      (Traffic.Flow.make ~id:0 ~name:"f0" ~spec ~encap:Ethernet.Encap.Udp
         ~route ~priority:3)
      flow0_remarks
  in
  let flow1 =
    Traffic.Flow.make ~id:1 ~name:"f1" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ h0; a; b; h1 ])
      ~priority:4
  in
  (Traffic.Scenario.make ~topo ~flows:[ flow0; flow1 ] (), (h0, a, b, h1))

let test_priority_lookup () =
  let scenario, (h0, a, b, h1) = chain_scenario ~flow0_remarks:[] in
  let flow0 = Traffic.Scenario.flow scenario 0 in
  Alcotest.(check int) "default everywhere" 3
    (Traffic.Flow.priority_on flow0 ~src:h0 ~dst:a);
  let remarked = Traffic.Flow.with_remarks flow0 [ ((a, b), 7) ] in
  Alcotest.(check int) "remarked hop" 7
    (Traffic.Flow.priority_on remarked ~src:a ~dst:b);
  Alcotest.(check int) "other hops keep default" 3
    (Traffic.Flow.priority_on remarked ~src:b ~dst:h1)

let test_remark_validation () =
  let scenario, (_, a, b, _) = chain_scenario ~flow0_remarks:[] in
  let flow0 = Traffic.Scenario.flow scenario 0 in
  Alcotest.check_raises "off-route hop"
    (Invalid_argument
       "Flow.with_remarks: remark on hop 9->8 not on the route") (fun () ->
      ignore (Traffic.Flow.with_remarks flow0 [ ((9, 8), 5) ]));
  Alcotest.check_raises "duplicate hop"
    (Invalid_argument "Flow.with_remarks: hop 2->3 remarked twice") (fun () ->
      ignore (Traffic.Flow.with_remarks flow0 [ ((a, b), 5); ((a, b), 6) ]));
  Alcotest.check_raises "bad priority"
    (Invalid_argument "Flow.make: priority outside the 802.1p range 0..7")
    (fun () -> ignore (Traffic.Flow.with_remarks flow0 [ ((a, b), 9) ]))

let test_hep_changes_per_link () =
  (* flow0 (default prio 3) is promoted to 7 on the middle hop only.  On
     that hop flow1 (prio 4) no longer outranks it; elsewhere it does. *)
  let scenario, (_, a, b, _) = chain_scenario ~flow0_remarks:[] in
  let flow0 = Traffic.Scenario.flow scenario 0 in
  let promoted = Traffic.Flow.with_remarks flow0 [ ((a, b), 7) ] in
  let scenario2 =
    Traffic.Scenario.make
      ~topo:(Traffic.Scenario.topo scenario)
      ~flows:[ promoted; Traffic.Scenario.flow scenario 1 ]
      ()
  in
  let promoted = Traffic.Scenario.flow scenario2 0 in
  let hep_at node =
    Traffic.Scenario.hep scenario2 promoted ~node
    |> List.map (fun f -> f.Traffic.Flow.id)
  in
  Alcotest.(check (list int)) "flow1 outranks on a->b? no" [] (hep_at a);
  Alcotest.(check (list int)) "flow1 outranks on b->h1" [ 1 ] (hep_at b);
  (* Conversely flow1 now sees flow0 as hep on the middle link. *)
  let flow1 = Traffic.Scenario.flow scenario2 1 in
  Alcotest.(check (list int)) "flow0 hep for flow1 at a" [ 0 ]
    (Traffic.Scenario.hep scenario2 flow1 ~node:a
    |> List.map (fun f -> f.Traffic.Flow.id))

let test_remark_lowers_bound () =
  (* Promoting flow0 on every switch hop must not increase (and here
     strictly decreases) its egress bounds. *)
  let base, (_, a, b, _) = chain_scenario ~flow0_remarks:[] in
  let promoted_scenario =
    let flow0 = Traffic.Scenario.flow base 0 in
    let h1 = Traffic.Flow.destination flow0 in
    Traffic.Scenario.make
      ~topo:(Traffic.Scenario.topo base)
      ~flows:
        [
          Traffic.Flow.with_remarks flow0 [ ((a, b), 7); ((b, h1), 7) ];
          Traffic.Scenario.flow base 1;
        ]
      ()
  in
  let bound scenario =
    let report = Analysis.Holistic.analyze scenario in
    match report.Analysis.Holistic.results with
    | r0 :: _ ->
        (Analysis.Result_types.worst_frame r0).Analysis.Result_types.total
    | [] -> Alcotest.fail "no results"
  in
  Alcotest.(check bool) "promotion shrinks the bound" true
    (bound promoted_scenario < bound base)

let test_sim_respects_remarks () =
  (* In simulation, a frame remarked to class 7 on the bottleneck hop jumps
     the queue of class-4 traffic there. *)
  let base, (_, a, b, _) = chain_scenario ~flow0_remarks:[] in
  let promote scenario =
    let flow0 = Traffic.Scenario.flow scenario 0 in
    let h1 = Traffic.Flow.destination flow0 in
    Traffic.Scenario.make
      ~topo:(Traffic.Scenario.topo scenario)
      ~flows:
        [
          Traffic.Flow.with_remarks flow0 [ ((a, b), 7); ((b, h1), 7) ];
          Traffic.Scenario.flow scenario 1;
        ]
      ()
  in
  let observe scenario =
    let sim =
      Sim.Netsim.run
        ~config:
          { Sim.Sim_config.default with
            duration = Timeunit.ms 500; jitter = Sim.Sim_config.Bunched }
        scenario
    in
    Option.value ~default:0
      (Sim.Collector.max_response_flow sim.Sim.Netsim.collector ~flow:0)
  in
  Alcotest.(check bool) "promoted flow not slower" true
    (observe (promote base) <= observe base)

let test_dsl_remark_roundtrip () =
  let text =
    {|node h0 endhost
node h1 endhost
node swA switch
node swB switch
duplex h0 swA rate=10M
duplex swA swB rate=10M
duplex swB h1 rate=10M
flow f from=h0 to=h1 prio=3 remark=swA/swB:7,swB/h1:6
  frame period=20ms deadline=100ms payload=1472B
end
|}
  in
  match Scenario_io.Parse.scenario_of_string text with
  | Error e -> Alcotest.failf "parse failed: %a" Scenario_io.Parse.pp_error e
  | Ok scenario -> (
      let flow = Traffic.Scenario.flow scenario 0 in
      Alcotest.(check int) "remark on middle hop" 7
        (Traffic.Flow.priority_on flow ~src:2 ~dst:3);
      Alcotest.(check int) "remark on last hop" 6
        (Traffic.Flow.priority_on flow ~src:3 ~dst:1);
      Alcotest.(check int) "default on first hop" 3
        (Traffic.Flow.priority_on flow ~src:0 ~dst:2);
      (* Round trip preserves the remarks. *)
      match
        Scenario_io.Parse.scenario_of_string
          (Scenario_io.Print.to_string scenario)
      with
      | Error e ->
          Alcotest.failf "reparse failed: %a" Scenario_io.Parse.pp_error e
      | Ok reparsed ->
          let flow' = Traffic.Scenario.flow reparsed 0 in
          Alcotest.(check (list (pair (pair int int) int)))
            "remarks preserved" flow.Traffic.Flow.remarks
            flow'.Traffic.Flow.remarks)

let test_dsl_remark_errors () =
  let bad text =
    Result.is_error (Scenario_io.Parse.scenario_of_string text)
  in
  Alcotest.(check bool) "malformed remark" true
    (bad
       "node a endhost\nnode b endhost\nlink a b rate=1M\n\
        flow f from=a to=b remark=nonsense\n\
        frame period=1ms deadline=1ms payload=1B\nend");
  Alcotest.(check bool) "off-route remark" true
    (bad
       "node a endhost\nnode b endhost\nnode c endhost\nlink a b rate=1M\n\
        link b c rate=1M\n\
        flow f from=a to=b remark=b/c:5\n\
        frame period=1ms deadline=1ms payload=1B\nend")

let tests =
  [
    Alcotest.test_case "priority_on lookup" `Quick test_priority_lookup;
    Alcotest.test_case "remark validation" `Quick test_remark_validation;
    Alcotest.test_case "hep changes per link" `Quick test_hep_changes_per_link;
    Alcotest.test_case "promotion lowers bound" `Quick test_remark_lowers_bound;
    Alcotest.test_case "simulator respects remarks" `Quick
      test_sim_respects_remarks;
    Alcotest.test_case "DSL remark round-trip" `Quick test_dsl_remark_roundtrip;
    Alcotest.test_case "DSL remark errors" `Quick test_dsl_remark_errors;
  ]
