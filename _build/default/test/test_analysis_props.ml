(* Property tests on the analysis as a whole: the response-time bound must
   react monotonically to every workload/platform parameter.  Violations of
   these properties are how analysis bugs usually surface. *)
open Gmf_util

(* A deterministic two-flow star scenario parameterized by everything the
   properties vary.  Flow 0 is the analyzed flow, flow 1 the competitor. *)
type params = {
  payload_scale : float;
  competitor_priority : int;
  croute_ns : int;
  rate_bps : int;
  jitter_ns : int;
}

let base_params =
  {
    payload_scale = 1.0;
    competitor_priority = 5;
    croute_ns = 2_700;
    rate_bps = 100_000_000;
    jitter_ns = 0;
  }

let scenario_of p =
  let topo, hosts, sw = Workload.Topologies.star ~rate_bps:p.rate_bps ~hosts:3 () in
  let model =
    Click.Switch_model.make ~croute:p.croute_ns ~csend:1_000 ~ninterfaces:3 ()
  in
  let payload scale base =
    max 8 (int_of_float (float_of_int base *. scale))
  in
  let spec scale jitter =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 30)
          ~deadline:(Timeunit.ms 400) ~jitter
          ~payload_bits:(payload scale (8 * 30_000));
        Gmf.Frame_spec.make ~period:(Timeunit.ms 30)
          ~deadline:(Timeunit.ms 400) ~jitter
          ~payload_bits:(payload scale (8 * 6_000));
      ]
  in
  let analyzed =
    Traffic.Flow.make ~id:0 ~name:"analyzed" ~spec:(spec p.payload_scale p.jitter_ns)
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(2) ])
      ~priority:4
  in
  let competitor =
    Traffic.Flow.make ~id:1 ~name:"competitor" ~spec:(spec 1.0 0)
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(1); sw; hosts.(2) ])
      ~priority:p.competitor_priority
  in
  Traffic.Scenario.make ~switches:[ (sw, model) ] ~topo
    ~flows:[ analyzed; competitor ] ()

let bound_of ?config p =
  let report = Analysis.Holistic.analyze ?config (scenario_of p) in
  match report.Analysis.Holistic.verdict with
  | Analysis.Holistic.Schedulable | Analysis.Holistic.Deadline_miss _ ->
      Some (Experiments.Exp_common.worst_total report 0)
  | _ -> None

let check_ordered name smaller larger =
  match (smaller, larger) with
  | Some a, Some b ->
      if a > b then
        QCheck.Test.fail_reportf "%s: %s should be <= %s" name
          (Timeunit.to_string a) (Timeunit.to_string b)
      else true
  | None, Some _ ->
      QCheck.Test.fail_reportf "%s: smaller diverged, larger did not" name
  | _ -> true (* larger diverged: vacuous *)

let prop_monotone_in_payload =
  QCheck.Test.make ~name:"bound monotone in payload size" ~count:25
    QCheck.(pair (float_range 0.2 2.0) (float_range 1.0 1.8))
    (fun (scale, grow) ->
      let small = bound_of { base_params with payload_scale = scale } in
      let large =
        bound_of { base_params with payload_scale = scale *. grow }
      in
      check_ordered "payload" small large)

let prop_monotone_in_competitor_priority =
  QCheck.Test.make ~name:"bound monotone in competitor priority" ~count:10
    QCheck.(pair (int_range 0 7) (int_range 0 7))
    (fun (p1, p2) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      check_ordered "competitor priority"
        (bound_of { base_params with competitor_priority = lo })
        (bound_of { base_params with competitor_priority = hi }))

let prop_monotone_in_circ =
  QCheck.Test.make ~name:"bound monotone in CROUTE" ~count:25
    QCheck.(pair (int_range 100 20_000) (int_range 0 20_000))
    (fun (croute, extra) ->
      check_ordered "croute"
        (bound_of { base_params with croute_ns = croute })
        (bound_of { base_params with croute_ns = croute + extra }))

let prop_antitone_in_rate =
  QCheck.Test.make ~name:"bound antitone in link rate" ~count:25
    QCheck.(pair (int_range 10_000_000 500_000_000) (float_range 1.0 8.0))
    (fun (rate, speedup) ->
      let faster = int_of_float (float_of_int rate *. speedup) in
      check_ordered "rate"
        (bound_of { base_params with rate_bps = faster })
        (bound_of { base_params with rate_bps = rate }))

let prop_monotone_in_jitter =
  QCheck.Test.make ~name:"bound monotone in source jitter" ~count:25
    QCheck.(pair (int_range 0 5_000_000) (int_range 0 5_000_000))
    (fun (j, extra) ->
      check_ordered "jitter"
        (bound_of { base_params with jitter_ns = j })
        (bound_of { base_params with jitter_ns = j + extra }))

let prop_repaired_dominates_faithful =
  QCheck.Test.make ~name:"repaired bounds dominate faithful" ~count:25
    QCheck.(pair (float_range 0.2 2.0) (int_range 0 2_000_000))
    (fun (scale, jitter) ->
      let p = { base_params with payload_scale = scale; jitter_ns = jitter } in
      check_ordered "variant"
        (bound_of ~config:Analysis.Config.faithful p)
        (bound_of p))

let test_added_flow_never_helps () =
  (* Admitting a third flow must not reduce the existing flows' bounds. *)
  let scenario = scenario_of base_params in
  let topo = Traffic.Scenario.topo scenario in
  let extra =
    Traffic.Flow.make ~id:2 ~name:"extra" ~spec:(Workload.Voip.g711_spec ())
      ~encap:Ethernet.Encap.Rtp_udp
      ~route:(Network.Route.make topo [ 1; 0; 3 ])
      ~priority:6
  in
  let with_extra =
    Traffic.Scenario.make ~topo
      ~flows:(Traffic.Scenario.flows scenario @ [ extra ])
      ()
  in
  let bounds s =
    let report = Analysis.Holistic.analyze s in
    List.filter_map
      (fun r ->
        if r.Analysis.Result_types.flow.Traffic.Flow.id <= 1 then
          Some
            (Analysis.Result_types.worst_frame r).Analysis.Result_types.total
        else None)
      report.Analysis.Holistic.results
  in
  List.iter2
    (fun before after ->
      Alcotest.(check bool) "no bound shrank" true (after >= before))
    (bounds scenario) (bounds with_extra)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_monotone_in_payload;
    QCheck_alcotest.to_alcotest prop_monotone_in_competitor_priority;
    QCheck_alcotest.to_alcotest prop_monotone_in_circ;
    QCheck_alcotest.to_alcotest prop_antitone_in_rate;
    QCheck_alcotest.to_alcotest prop_monotone_in_jitter;
    QCheck_alcotest.to_alcotest prop_repaired_dominates_faithful;
    Alcotest.test_case "added flow never helps" `Quick
      test_added_flow_never_helps;
  ]
