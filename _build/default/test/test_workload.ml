open Gmf_util

let test_mpeg_pattern () =
  let pattern = Workload.Mpeg.gop_pattern Workload.Mpeg.fig3_sizes in
  Alcotest.(check int) "nine packets" 9 (List.length pattern);
  (* Transmission order I+P B B P B B P B B (Figure 3). *)
  Alcotest.(check (list int)) "order"
    [ 352_000; 64_000; 64_000; 160_000; 64_000; 64_000; 160_000; 64_000;
      64_000 ]
    pattern

let test_mpeg_spec_defaults () =
  let spec = Workload.Mpeg.fig3_spec in
  Alcotest.(check int) "n = 9" 9 (Gmf.Spec.n spec);
  Alcotest.(check int) "TSUM = 270ms" (Timeunit.ms 270) (Gmf.Spec.tsum spec);
  Alcotest.(check int) "GJ = 1ms (Figure 4)" (Timeunit.ms 1)
    (Gmf.Spec.max_jitter spec);
  Alcotest.(check int) "period = 30ms" (Timeunit.ms 30)
    (Gmf.Spec.frame spec 0).Gmf.Frame_spec.period

let test_mpeg_scaled () =
  let spec = Workload.Mpeg.scaled_spec ~rate_scale:0.5 in
  Alcotest.(check int) "half I+P" (8 * 22_000)
    (Gmf.Spec.frame spec 0).Gmf.Frame_spec.payload_bits;
  (* Tiny scales never hit zero payload. *)
  let tiny = Workload.Mpeg.scaled_spec ~rate_scale:1e-9 in
  Alcotest.(check int) "floor of one byte" 8
    (Gmf.Spec.frame tiny 0).Gmf.Frame_spec.payload_bits;
  Alcotest.check_raises "non-positive scale"
    (Invalid_argument "Mpeg.scaled_spec: non-positive scale") (fun () ->
      ignore (Workload.Mpeg.scaled_spec ~rate_scale:0.))

let test_voip_g711 () =
  let spec = Workload.Voip.g711_spec () in
  Alcotest.(check int) "single frame" 1 (Gmf.Spec.n spec);
  let f = Gmf.Spec.frame spec 0 in
  Alcotest.(check int) "20ms period" (Timeunit.ms 20) f.Gmf.Frame_spec.period;
  Alcotest.(check int) "160 bytes" (8 * 160) f.Gmf.Frame_spec.payload_bits;
  Alcotest.(check int) "150ms deadline" (Timeunit.ms 150)
    f.Gmf.Frame_spec.deadline

let test_voip_talkspurt () =
  let spec = Workload.Voip.talkspurt_spec () in
  Alcotest.(check int) "20 packets" 20 (Gmf.Spec.n spec);
  (* 19 packets at 20ms + 1 packet at 20ms + 200ms silence. *)
  Alcotest.(check int) "TSUM includes silence"
    ((20 * Timeunit.ms 20) + Timeunit.ms 200)
    (Gmf.Spec.tsum spec);
  (* The silence sits on the last frame. *)
  Alcotest.(check int) "last period stretched"
    (Timeunit.ms 220)
    (Gmf.Spec.frame spec 19).Gmf.Frame_spec.period

let test_topologies_line () =
  let topo, hosts, sw =
    Workload.Topologies.line ~hosts_per_switch:2 ~switches:3 ()
  in
  Alcotest.(check int) "3 switches" 3 (Array.length sw);
  Alcotest.(check int) "9 nodes" 9 (Network.Topology.node_count topo);
  (* End-to-end path exists through the chain. *)
  (match
     Network.Topology.shortest_path topo ~src:hosts.(0).(0) ~dst:hosts.(2).(1)
   with
  | Some path -> Alcotest.(check int) "5 nodes on path" 5 (List.length path)
  | None -> Alcotest.fail "chain should be connected");
  (* Middle switch: two hosts + two switch neighbours. *)
  Alcotest.(check int) "middle degree" 4 (Network.Topology.degree topo sw.(1))

let test_random_gen_determinism () =
  let gen seed =
    let rng = Rng.create ~seed in
    let topo, hosts, _sw = Workload.Topologies.star ~hosts:4 () in
    let pairs = Workload.Random_gen.random_pairs rng ~hosts ~count:5 in
    Workload.Random_gen.flows_between rng ~topo ~pairs ()
  in
  let sig_of flows =
    List.map
      (fun f ->
        (f.Traffic.Flow.id, Traffic.Flow.n f, Traffic.Flow.tsum f,
         f.Traffic.Flow.priority))
      flows
  in
  Alcotest.(check bool) "same seed same flows" true
    (sig_of (gen 11) = sig_of (gen 11));
  Alcotest.(check bool) "different seeds differ" true
    (sig_of (gen 11) <> sig_of (gen 12))

let test_random_gen_profile_ranges () =
  let rng = Rng.create ~seed:42 in
  let profile = Workload.Random_gen.default_profile in
  for _ = 1 to 50 do
    let spec = Workload.Random_gen.spec rng profile in
    let n = Gmf.Spec.n spec in
    Alcotest.(check bool) "n in range" true (n >= 3 && n <= 9);
    Array.iter
      (fun (f : Gmf.Frame_spec.t) ->
        Alcotest.(check bool) "period in range" true
          (f.period >= Timeunit.ms 20 && f.period <= Timeunit.ms 40);
        Alcotest.(check bool) "payload in range" true
          (f.payload_bits >= 8_000 && f.payload_bits <= 240_000))
      (Gmf.Spec.frames spec)
  done

let test_random_pairs_distinct () =
  let rng = Rng.create ~seed:3 in
  let hosts = [| 10; 11; 12 |] in
  List.iter
    (fun (a, b) -> Alcotest.(check bool) "distinct endpoints" true (a <> b))
    (Workload.Random_gen.random_pairs rng ~hosts ~count:100)

let test_tree_topology () =
  let topo, hosts, access, core =
    Workload.Topologies.tree ~access_switches:3 ~hosts_per_access:2 ()
  in
  Alcotest.(check int) "nodes: 1 core + 3 access + 6 hosts" 10
    (Network.Topology.node_count topo);
  Alcotest.(check int) "core degree" 3 (Network.Topology.degree topo core);
  Array.iter
    (fun a ->
      Alcotest.(check int) "access degree" 3 (Network.Topology.degree topo a))
    access;
  (* Uplinks are 10x the access rate by default. *)
  let uplink = Network.Topology.link_exn topo ~src:access.(0) ~dst:core in
  let access_link =
    Network.Topology.link_exn topo ~src:hosts.(0).(0) ~dst:access.(0)
  in
  Alcotest.(check int) "uplink 10x"
    (10 * access_link.Network.Link.rate_bps)
    uplink.Network.Link.rate_bps

let test_enterprise_scenario () =
  let s = Workload.Scenarios.enterprise () in
  (* 3 access switches x 3 flows, minus the 3 flows the server would source
     at itself (only backup0 of switch 0 collides... the server is host
     (0,2), so exactly one flow is dropped). *)
  Alcotest.(check int) "eight flows" 8 (Traffic.Scenario.flow_count s);
  Alcotest.(check bool) "schedulable" true
    (Analysis.Holistic.is_schedulable (Analysis.Holistic.analyze s))

let test_scenarios_build_and_schedule () =
  let voip = Workload.Scenarios.single_switch_voip () in
  Alcotest.(check int) "4 calls" 4 (Traffic.Scenario.flow_count voip);
  Alcotest.(check bool) "voip schedulable" true
    (Analysis.Holistic.is_schedulable (Analysis.Holistic.analyze voip));
  let chain = Workload.Scenarios.multihop_chain () in
  Alcotest.(check int) "1 video + 4 voip" 5 (Traffic.Scenario.flow_count chain);
  Alcotest.(check bool) "chain schedulable" true
    (Analysis.Holistic.is_schedulable (Analysis.Holistic.analyze chain))

let test_fig2_route () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  Alcotest.(check (list int)) "Figure 2 route" [ 0; 4; 6; 3 ]
    (Network.Route.nodes (Workload.Scenarios.fig2_route scenario))

let tests =
  [
    Alcotest.test_case "mpeg gop pattern" `Quick test_mpeg_pattern;
    Alcotest.test_case "mpeg spec defaults" `Quick test_mpeg_spec_defaults;
    Alcotest.test_case "mpeg scaling" `Quick test_mpeg_scaled;
    Alcotest.test_case "voip g711" `Quick test_voip_g711;
    Alcotest.test_case "voip talkspurt" `Quick test_voip_talkspurt;
    Alcotest.test_case "line topology" `Quick test_topologies_line;
    Alcotest.test_case "random gen determinism" `Quick
      test_random_gen_determinism;
    Alcotest.test_case "random gen ranges" `Quick test_random_gen_profile_ranges;
    Alcotest.test_case "random pairs distinct" `Quick
      test_random_pairs_distinct;
    Alcotest.test_case "tree topology" `Quick test_tree_topology;
    Alcotest.test_case "enterprise scenario" `Quick test_enterprise_scenario;
    Alcotest.test_case "named scenarios schedulable" `Quick
      test_scenarios_build_and_schedule;
    Alcotest.test_case "Figure 2 route" `Quick test_fig2_route;
  ]
