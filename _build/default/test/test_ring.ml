(* Ring topology: two disjoint switch paths everywhere — rerouting's home
   ground, plus an end-to-end analysis/simulation check. *)
open Gmf_util

let test_ring_shape () =
  let topo, hosts, sw = Workload.Topologies.ring ~switches:5 () in
  Alcotest.(check int) "10 nodes" 10 (Network.Topology.node_count topo);
  Alcotest.(check int) "5 hosts" 5 (Array.length hosts);
  (* Each switch: one host + two ring neighbours. *)
  Array.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "switch %d degree" s)
        3
        (Network.Topology.degree topo s))
    sw;
  Alcotest.check_raises "too small"
    (Invalid_argument "Topologies.ring: need three switches") (fun () ->
      ignore (Workload.Topologies.ring ~switches:2 ()))

let test_two_disjoint_paths () =
  let topo, hosts, _sw = Workload.Topologies.ring ~switches:5 () in
  let routes =
    Network.Pathfind.all_routes topo ~src:hosts.(0) ~dst:hosts.(2)
  in
  Alcotest.(check int) "exactly two routes" 2 (List.length routes);
  (* Clockwise via sw0,sw1,sw2 (3 switches); counter-clockwise via
     sw0,sw4,sw3,sw2 (4 switches). *)
  let hop_counts =
    List.map Network.Route.hop_count routes |> List.sort compare
  in
  Alcotest.(check (list int)) "hop counts" [ 4; 5 ] hop_counts;
  (* The interiors are disjoint except the shared attachment switches. *)
  match List.map Network.Route.intermediate_switches routes with
  | [ a; b ] ->
      let shared = List.filter (fun n -> List.mem n b) a in
      Alcotest.(check int) "only the two endpoints' switches shared" 2
        (List.length shared)
  | _ -> Alcotest.fail "expected two routes"

let test_ring_rerouting_gain () =
  (* Two heavy flows between the same hosts: one per direction fits, both on
     one direction does not. *)
  let topo, hosts, _sw = Workload.Topologies.ring ~switches:4 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 20) ~deadline:(Timeunit.ms 100)
          ~jitter:0 ~payload_bits:(8 * 8_000);
      ]
  in
  let shortest =
    List.hd (Network.Pathfind.all_routes topo ~src:hosts.(0) ~dst:hosts.(2))
  in
  let mk id =
    Traffic.Flow.make ~id ~name:(Printf.sprintf "f%d" id) ~spec
      ~encap:Ethernet.Encap.Udp ~route:shortest ~priority:5
  in
  let candidates = [ mk 0; mk 1 ] in
  let fixed, _ =
    Analysis.Admission.admit_greedily ~topo ~switches:[] candidates
  in
  let rerouted, _ =
    Analysis.Rerouting.admit_greedily ~topo ~switches:[] candidates
  in
  Alcotest.(check int) "fixed admits one" 1 (List.length fixed);
  Alcotest.(check int) "rerouting admits both" 2 (List.length rerouted)

let test_ring_validation () =
  (* Traffic around the ring: analysis bounds dominate simulation. *)
  let topo, hosts, _sw =
    Workload.Topologies.ring ~rate_bps:100_000_000 ~switches:4 ()
  in
  let flows =
    List.init 4 (fun i ->
        let src = hosts.(i) and dst = hosts.((i + 1) mod 4) in
        match Network.Topology.shortest_path topo ~src ~dst with
        | Some path ->
            Traffic.Flow.make ~id:i
              ~name:(Printf.sprintf "hop%d" i)
              ~spec:(Workload.Mpeg.spec ~deadline:(Timeunit.ms 260) ())
              ~encap:Ethernet.Encap.Udp
              ~route:(Network.Route.make topo path)
              ~priority:5
        | None -> Alcotest.fail "ring should be connected")
  in
  let scenario = Traffic.Scenario.make ~topo ~flows () in
  let report = Analysis.Holistic.analyze scenario in
  Alcotest.(check bool) "schedulable" true
    (Analysis.Holistic.is_schedulable report);
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 1 }
      scenario
  in
  List.iter
    (fun fid ->
      let observed =
        Option.get
          (Sim.Collector.max_response_flow sim.Sim.Netsim.collector ~flow:fid)
      in
      Alcotest.(check bool)
        (Printf.sprintf "flow %d dominated" fid)
        true
        (observed <= Experiments.Exp_common.worst_total report fid))
    [ 0; 1; 2; 3 ]

let tests =
  [
    Alcotest.test_case "shape" `Quick test_ring_shape;
    Alcotest.test_case "two disjoint paths" `Quick test_two_disjoint_paths;
    Alcotest.test_case "rerouting gain" `Quick test_ring_rerouting_gain;
    Alcotest.test_case "ring validation" `Quick test_ring_validation;
  ]
