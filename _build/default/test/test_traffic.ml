open Gmf_util

let fig1 () = Workload.Scenarios.fig1_videoconf ()

let video scenario =
  Traffic.Scenario.flow scenario Workload.Scenarios.video_flow_id

let test_flow_basics () =
  let scenario = fig1 () in
  let flow = video scenario in
  Alcotest.(check int) "n = 9 (Figure 3)" 9 (Traffic.Flow.n flow);
  Alcotest.(check int) "TSUM = 270ms (eq 6 example)" (Timeunit.ms 270)
    (Traffic.Flow.tsum flow);
  Alcotest.(check int) "source" 0 (Traffic.Flow.source flow);
  Alcotest.(check int) "destination" 3 (Traffic.Flow.destination flow)

let test_flow_validation () =
  let scenario = fig1 () in
  let flow = video scenario in
  Alcotest.check_raises "priority range"
    (Invalid_argument "Flow.make: priority outside the 802.1p range 0..7")
    (fun () ->
      ignore
        (Traffic.Flow.make ~id:9 ~name:"bad" ~spec:flow.Traffic.Flow.spec
           ~encap:Ethernet.Encap.Udp ~route:flow.Traffic.Flow.route
           ~priority:8))

let test_flow_nbits () =
  let scenario = fig1 () in
  let flow = video scenario in
  (* Frame 0 is the I+P packet: 44000 bytes payload + 8 bytes UDP header. *)
  Alcotest.(check int) "I+P nbits" ((44_000 * 8) + 64) (Traffic.Flow.nbits flow 0);
  (* Cyclic indexing mirrors the spec. *)
  Alcotest.(check int) "frame 9 wraps to 0" (Traffic.Flow.nbits flow 0)
    (Traffic.Flow.nbits flow 9);
  Alcotest.(check int) "9 frames" 9 (Array.length (Traffic.Flow.nbits_all flow))

let test_link_params_fig4 () =
  (* The worked example of Section 3.1 / Figure 4: the Figure 3 stream on
     link(0,4) at 10 Mbit/s. *)
  let scenario = fig1 () in
  let flow = video scenario in
  let p = Traffic.Scenario.params scenario flow ~src:0 ~dst:4 in
  Alcotest.(check int) "NSUM = 94 (paper)" 94 (Traffic.Link_params.nsum p);
  Alcotest.(check int) "MFT = 1.2304ms (eq 1)" 1_230_400
    (Traffic.Link_params.mft p);
  (* CSUM consistency: NSUM * MFT bounds CSUM from above. *)
  let csum = Traffic.Link_params.csum p in
  Alcotest.(check bool) "CSUM <= NSUM*MFT" true
    (csum <= 94 * 1_230_400);
  (* I+P packet: 30 Ethernet frames; B packet: 6; P packet: 14. *)
  Alcotest.(check (array int)) "per-frame Ethernet frames"
    [| 30; 6; 6; 14; 6; 6; 14; 6; 6 |]
    p.Traffic.Link_params.eth_frames

let test_nsum_equals_fragment_count () =
  (* Eq (5)'s ceil(C/MFT) must agree with direct fragment counting. *)
  let scenario = fig1 () in
  List.iter
    (fun flow ->
      List.iter
        (fun (src, dst) ->
          let p = Traffic.Scenario.params scenario flow ~src ~dst in
          Array.iteri
            (fun k via_c ->
              let direct =
                Ethernet.Fragment.fragment_count
                  ~nbits:(Traffic.Flow.nbits flow k)
              in
              Alcotest.(check int)
                (Printf.sprintf "flow %d frame %d on %d->%d"
                   flow.Traffic.Flow.id k src dst)
                direct via_c)
            p.Traffic.Link_params.eth_frames)
        (Network.Route.hops flow.Traffic.Flow.route))
    (Traffic.Scenario.flows scenario)

let test_scenario_flows_on () =
  let scenario = fig1 () in
  let on_04 = Traffic.Scenario.flows_on scenario ~src:0 ~dst:4 in
  Alcotest.(check (list int)) "flows on 0->4" [ 0; 1 ]
    (List.map (fun f -> f.Traffic.Flow.id) on_04);
  let on_46 = Traffic.Scenario.flows_on scenario ~src:4 ~dst:6 in
  Alcotest.(check (list int)) "flows on 4->6" [ 0; 1 ]
    (List.map (fun f -> f.Traffic.Flow.id) on_46);
  Alcotest.(check (list int)) "flows on 6->4 (reverse pair)" [ 2; 3 ]
    (List.map
       (fun f -> f.Traffic.Flow.id)
       (Traffic.Scenario.flows_on scenario ~src:6 ~dst:4))

let test_hep_lp () =
  let scenario = fig1 () in
  let flow_video = video scenario in
  (* On link 4->6 the audio flow (prio 6) outranks video (prio 5). *)
  let hep = Traffic.Scenario.hep scenario flow_video ~node:4 in
  Alcotest.(check (list int)) "hep of video at 4" [ 1 ]
    (List.map (fun f -> f.Traffic.Flow.id) hep);
  Alcotest.(check (list int)) "lp of video at 4" []
    (List.map
       (fun f -> f.Traffic.Flow.id)
       (Traffic.Scenario.lp scenario flow_video ~node:4));
  (* And from the audio flow's perspective the video flow is lp. *)
  let audio = Traffic.Scenario.flow scenario 1 in
  Alcotest.(check (list int)) "hep of audio at 4" []
    (List.map (fun f -> f.Traffic.Flow.id)
       (Traffic.Scenario.hep scenario audio ~node:4));
  Alcotest.(check (list int)) "lp of audio at 4" [ 0 ]
    (List.map (fun f -> f.Traffic.Flow.id)
       (Traffic.Scenario.lp scenario audio ~node:4))

let test_equal_priority_is_hep () =
  (* Eq (2): equal priority counts as interfering. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:3 () in
  let spec = Workload.Voip.g711_spec () in
  let mk id src =
    Traffic.Flow.make ~id ~name:(Printf.sprintf "f%d" id) ~spec
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ src; sw; hosts.(2) ])
      ~priority:4
  in
  let f0 = mk 0 hosts.(0) and f1 = mk 1 hosts.(1) in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ f0; f1 ] () in
  Alcotest.(check (list int)) "equal prio interferes" [ 1 ]
    (List.map (fun f -> f.Traffic.Flow.id)
       (Traffic.Scenario.hep scenario f0 ~node:sw))

let test_scenario_validation () =
  let scenario = fig1 () in
  let flow = video scenario in
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Scenario.make: duplicate flow id 0") (fun () ->
      ignore
        (Traffic.Scenario.make
           ~topo:(Traffic.Scenario.topo scenario)
           ~flows:[ flow; flow ] ()));
  Alcotest.check_raises "unknown flow"
    (Invalid_argument "Scenario.flow: unknown id 42") (fun () ->
      ignore (Traffic.Scenario.flow scenario 42))

let test_default_switch_models () =
  let scenario = fig1 () in
  (* Switch 4 has degree 4, so its defaulted model yields the paper's
     CIRC = 14.8 us. *)
  Alcotest.(check int) "CIRC(4)" (Timeunit.us_frac 14.8)
    (Traffic.Scenario.circ scenario 4);
  Alcotest.(check (list int)) "switch nodes with models" [ 4; 5; 6 ]
    (Traffic.Scenario.switch_nodes scenario)

let test_explicit_switch_model_validation () =
  let scenario = fig1 () in
  let topo = Traffic.Scenario.topo scenario in
  let flows = Traffic.Scenario.flows scenario in
  Alcotest.check_raises "model on endhost"
    (Invalid_argument "Scenario.make: node 0 is not a switch") (fun () ->
      ignore
        (Traffic.Scenario.make
           ~switches:[ (0, Click.Switch_model.make ~ninterfaces:4 ()) ]
           ~topo ~flows ()));
  Alcotest.check_raises "too few ports"
    (Invalid_argument
       "Scenario.make: switch 4 has 4 links but model has 2 ports") (fun () ->
      ignore
        (Traffic.Scenario.make
           ~switches:[ (4, Click.Switch_model.make ~ninterfaces:2 ()) ]
           ~topo ~flows ()))

let test_scale_payloads () =
  let scenario = fig1 () in
  let flow = video scenario in
  let doubled = Traffic.Flow.scale_payloads flow 2.0 in
  Alcotest.(check int) "payload doubled"
    (2 * (Gmf.Spec.frame flow.Traffic.Flow.spec 0).Gmf.Frame_spec.payload_bits)
    (Gmf.Spec.frame doubled.Traffic.Flow.spec 0).Gmf.Frame_spec.payload_bits;
  Alcotest.(check int) "period kept" (Traffic.Flow.tsum flow)
    (Traffic.Flow.tsum doubled);
  (* Tiny scales never reach zero. *)
  let tiny = Traffic.Flow.scale_payloads flow 1e-9 in
  Alcotest.(check bool) "at least one bit" true
    ((Gmf.Spec.frame tiny.Traffic.Flow.spec 0).Gmf.Frame_spec.payload_bits >= 1);
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Flow.scale_payloads: non-positive factor") (fun () ->
      ignore (Traffic.Flow.scale_payloads flow 0.))

let test_map_flows () =
  let scenario = fig1 () in
  let promoted =
    Traffic.Scenario.map_flows scenario ~f:(fun f ->
        Traffic.Flow.make ~id:f.Traffic.Flow.id ~name:f.Traffic.Flow.name
          ~spec:f.Traffic.Flow.spec ~encap:f.Traffic.Flow.encap
          ~route:f.Traffic.Flow.route ~priority:7)
  in
  Alcotest.(check int) "same flow count"
    (Traffic.Scenario.flow_count scenario)
    (Traffic.Scenario.flow_count promoted);
  List.iter
    (fun f -> Alcotest.(check int) "all promoted" 7 f.Traffic.Flow.priority)
    (Traffic.Scenario.flows promoted);
  (* Switch models survive the rebuild. *)
  Alcotest.(check int) "CIRC preserved"
    (Traffic.Scenario.circ scenario 4)
    (Traffic.Scenario.circ promoted 4)

let test_link_utilization () =
  let scenario = fig1 () in
  let u = Traffic.Scenario.link_utilization scenario ~src:0 ~dst:4 in
  (* Video ~ 110ms/270ms plus a little audio. *)
  Alcotest.(check bool) "between 40% and 50%" true (u > 0.40 && u < 0.50);
  Alcotest.(check (float 1e-9)) "empty link" 0.
    (Traffic.Scenario.link_utilization scenario ~src:4 ~dst:5
     -. Traffic.Scenario.link_utilization scenario ~src:4 ~dst:5)

let tests =
  [
    Alcotest.test_case "flow basics" `Quick test_flow_basics;
    Alcotest.test_case "flow validation" `Quick test_flow_validation;
    Alcotest.test_case "flow nbits" `Quick test_flow_nbits;
    Alcotest.test_case "Figure 4 link params" `Quick test_link_params_fig4;
    Alcotest.test_case "NSUM = fragment count" `Quick
      test_nsum_equals_fragment_count;
    Alcotest.test_case "flows_on" `Quick test_scenario_flows_on;
    Alcotest.test_case "hep/lp (eqs 2-3)" `Quick test_hep_lp;
    Alcotest.test_case "equal priority interferes" `Quick
      test_equal_priority_is_hep;
    Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
    Alcotest.test_case "default switch models" `Quick
      test_default_switch_models;
    Alcotest.test_case "explicit model validation" `Quick
      test_explicit_switch_model_validation;
    Alcotest.test_case "scale payloads" `Quick test_scale_payloads;
    Alcotest.test_case "map flows" `Quick test_map_flows;
    Alcotest.test_case "link utilization" `Quick test_link_utilization;
  ]
