open Gmf_util

let filled xs =
  let s = Stats.create () in
  Stats.add_list s xs;
  s

let test_basic () =
  let s = filled [ 4; 1; 3; 2; 5 ] in
  Alcotest.(check int) "count" 5 (Stats.count s);
  Alcotest.(check int) "min" 1 (Stats.min s);
  Alcotest.(check int) "max" 5 (Stats.max s);
  Alcotest.(check int) "sum" 15 (Stats.sum s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.0) (Stats.stddev s)

let test_empty_raises () =
  let s = Stats.create () in
  Alcotest.(check int) "count 0" 0 (Stats.count s);
  Alcotest.check_raises "min" (Invalid_argument "Stats.min: empty accumulator")
    (fun () -> ignore (Stats.min s));
  Alcotest.check_raises "percentile"
    (Invalid_argument "Stats.percentile: empty accumulator") (fun () ->
      ignore (Stats.percentile s 50.))

let test_percentiles () =
  let s = filled (List.init 100 (fun i -> i + 1)) in
  Alcotest.(check int) "p50" 50 (Stats.percentile s 50.);
  Alcotest.(check int) "p90" 90 (Stats.percentile s 90.);
  Alcotest.(check int) "p100" 100 (Stats.percentile s 100.);
  Alcotest.(check int) "p0 clamps to first" 1 (Stats.percentile s 0.);
  Alcotest.(check int) "median" 50 (Stats.median s);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile s 101.))

let test_percentile_cache_invalidation () =
  let s = filled [ 10; 20; 30 ] in
  Alcotest.(check int) "p100 before" 30 (Stats.percentile s 100.);
  Stats.add s 40;
  Alcotest.(check int) "p100 after add" 40 (Stats.percentile s 100.)

let test_to_list_order () =
  let s = filled [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "insertion order" [ 3; 1; 2 ] (Stats.to_list s)

let test_histogram () =
  let s = filled [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  let buckets = Stats.histogram s ~buckets:2 in
  Alcotest.(check int) "two buckets" 2 (List.length buckets);
  let counts = List.map (fun (_, _, c) -> c) buckets in
  Alcotest.(check (list int)) "even split" [ 5; 5 ] counts;
  let total =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0
      (Stats.histogram s ~buckets:3)
  in
  Alcotest.(check int) "histogram conserves samples" 10 total

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean between min and max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) small_int)
    (fun xs ->
      let s = filled xs in
      let m = Stats.mean s in
      float_of_int (Stats.min s) <= m +. 1e-9
      && m <= float_of_int (Stats.max s) +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) small_int)
              (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p1, p2)) ->
      let s = filled xs in
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile s lo <= Stats.percentile s hi)

let tests =
  [
    Alcotest.test_case "basic moments" `Quick test_basic;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "cache invalidation" `Quick
      test_percentile_cache_invalidation;
    Alcotest.test_case "to_list order" `Quick test_to_list_order;
    Alcotest.test_case "histogram" `Quick test_histogram;
    QCheck_alcotest.to_alcotest prop_mean_between_min_max;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
  ]
