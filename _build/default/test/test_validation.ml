(* Soundness validation: for every scenario the analysis declares
   schedulable, the simulator's observed per-frame response times must never
   exceed the analytic per-frame bounds (experiment E5's property, run here
   at test scale). *)
open Gmf_util

let bound_table report =
  let table = Hashtbl.create 64 in
  List.iter
    (fun res ->
      Array.iter
        (fun (fr : Analysis.Result_types.frame_result) ->
          Hashtbl.replace table
            (res.Analysis.Result_types.flow.Traffic.Flow.id,
             fr.Analysis.Result_types.frame)
            fr.Analysis.Result_types.total)
        res.Analysis.Result_types.frames)
    report.Analysis.Holistic.results;
  table

let check_domination ~name scenario sim_config =
  let report = Analysis.Holistic.analyze scenario in
  if Analysis.Holistic.is_schedulable report then begin
    let bounds = bound_table report in
    let sim = Sim.Netsim.run ~config:sim_config scenario in
    Alcotest.(check int)
      (name ^ ": no packet stuck")
      0
      (Sim.Collector.incomplete sim.Sim.Netsim.collector);
    Hashtbl.iter
      (fun (flow_id, frame) bound ->
        match
          Sim.Collector.max_response sim.Sim.Netsim.collector ~flow:flow_id
            ~frame
        with
        | None -> ()
        | Some observed ->
            if observed > bound then
              Alcotest.failf
                "%s: flow %d frame %d observed %s exceeds bound %s" name
                flow_id frame
                (Timeunit.to_string observed)
                (Timeunit.to_string bound))
      bounds;
    true
  end
  else false

let sim_config ?(jitter = Sim.Sim_config.Spread) ?(seed = 42)
    ?(release = Sim.Sim_config.Periodic) ?(random_phasing = false) ms =
  {
    Sim.Sim_config.default with
    duration = Timeunit.ms ms;
    seed;
    release;
    jitter;
    random_phasing;
  }

let test_fig1_domination () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  Alcotest.(check bool) "fig1 schedulable" true
    (check_domination ~name:"fig1" scenario (sim_config 1_000))

let test_fig1_domination_jitter_modes () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  List.iter
    (fun (label, jitter) ->
      ignore
        (check_domination ~name:("fig1-" ^ label) scenario
           (sim_config ~jitter 500)))
    [
      ("spread", Sim.Sim_config.Spread);
      ("bunched", Sim.Sim_config.Bunched);
      ("random", Sim.Sim_config.Random);
    ]

let test_chain_domination () =
  let scenario = Workload.Scenarios.multihop_chain ~switches:5 () in
  Alcotest.(check bool) "chain schedulable" true
    (check_domination ~name:"chain" scenario (sim_config 1_000))

let test_enterprise_domination () =
  (* Heterogeneous link speeds (100M access, 1G uplinks): the scenario that
     exposed the NIC double-buffering bug in an earlier simulator version -
     kept as a regression trap. *)
  let scenario = Workload.Scenarios.enterprise () in
  Alcotest.(check bool) "enterprise schedulable" true
    (check_domination ~name:"enterprise" scenario (sim_config 2_000))

let test_voip_domination () =
  let scenario = Workload.Scenarios.single_switch_voip ~calls:6 () in
  Alcotest.(check bool) "voip schedulable" true
    (check_domination ~name:"voip" scenario (sim_config 1_000))

let test_random_scenarios_domination () =
  (* Random star scenarios across seeds; skip the unschedulable draws. *)
  let schedulable = ref 0 in
  for seed = 1 to 8 do
    let rng = Rng.create ~seed in
    let topo, hosts, _sw = Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:4 () in
    let pairs = Workload.Random_gen.random_pairs rng ~hosts ~count:4 in
    let flows = Workload.Random_gen.flows_between rng ~topo ~pairs () in
    let scenario = Traffic.Scenario.make ~topo ~flows () in
    List.iter
      (fun (label, phase) ->
        if
          check_domination
            ~name:(Printf.sprintf "random-%d-%s" seed label)
            scenario
            (sim_config ~seed ~random_phasing:phase 400)
        then incr schedulable)
      [ ("sync", false); ("phased", true) ]
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some random draws schedulable (%d)" !schedulable)
    true (!schedulable > 0)

let test_random_slack_domination () =
  (* Sources that underrun their contract must still respect the bounds. *)
  let scenario = Workload.Scenarios.fig1_videoconf () in
  ignore
    (check_domination ~name:"fig1-slack" scenario
       (sim_config ~release:(Sim.Sim_config.Random_slack 0.3) ~seed:7 800))

let tests =
  [
    Alcotest.test_case "figure 1 domination" `Slow test_fig1_domination;
    Alcotest.test_case "jitter modes domination" `Slow
      test_fig1_domination_jitter_modes;
    Alcotest.test_case "multihop chain domination" `Slow test_chain_domination;
    Alcotest.test_case "voip domination" `Slow test_voip_domination;
    Alcotest.test_case "enterprise domination" `Slow
      test_enterprise_domination;
    Alcotest.test_case "random scenarios domination" `Slow
      test_random_scenarios_domination;
    Alcotest.test_case "random slack domination" `Slow
      test_random_slack_domination;
  ]
