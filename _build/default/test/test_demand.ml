(* Tests of the request-bound functions MXS/MX/NXS/NX (paper eqs 4-13)
   against hand-computed values and a brute-force reference. *)

let demand () =
  Gmf.Demand.make ~costs:[| 3; 1; 2 |] ~periods:[| 10; 20; 30 |]

let test_totals () =
  let d = demand () in
  Alcotest.(check int) "n" 3 (Gmf.Demand.n d);
  Alcotest.(check int) "cost_total (eq 4/5)" 6 (Gmf.Demand.cost_total d);
  Alcotest.(check int) "tsum (eq 6)" 60 (Gmf.Demand.tsum d);
  Alcotest.(check (float 1e-9)) "utilization" 0.1 (Gmf.Demand.utilization d)

let test_windows () =
  let d = demand () in
  let cost k1 len = Gmf.Demand.window_cost d ~k1 ~len in
  let span k1 len = Gmf.Demand.window_span d ~k1 ~len in
  Alcotest.(check int) "cost empty" 0 (cost 0 0);
  Alcotest.(check int) "cost single" 3 (cost 0 1);
  Alcotest.(check int) "cost pair" 4 (cost 0 2);
  Alcotest.(check int) "cost wraps" 5 (cost 2 2);
  Alcotest.(check int) "cost beyond a cycle" 9 (cost 0 4);
  Alcotest.(check int) "cost two cycles" 12 (cost 1 6);
  Alcotest.(check int) "span single" 0 (span 0 1);
  Alcotest.(check int) "span pair (eq 9 is one period short)" 10 (span 0 2);
  Alcotest.(check int) "span wraps" 30 (span 2 2);
  Alcotest.(check int) "span full cycle" 60 (span 0 4);
  Alcotest.(check int) "k1 reduced mod n" (cost 0 2) (cost 3 2)

let test_small_uncapped () =
  (* NXS, eq (12). *)
  let d = demand () in
  let nxs dt = Gmf.Demand.small d ~capped:false dt in
  Alcotest.(check int) "dt=0: best single frame" 3 (nxs 0);
  Alcotest.(check int) "dt=10: window [3;1]" 4 (nxs 10);
  Alcotest.(check int) "dt=30: window [3;1;2]" 6 (nxs 30);
  Alcotest.(check int) "dt=59: still one cycle max" 6 (nxs 59);
  Alcotest.(check int) "negative dt" 0 (nxs (-5))

let test_small_capped () =
  (* MXS, eq (10): candidates clamped to the interval length. *)
  let d = demand () in
  let mxs dt = Gmf.Demand.small d ~capped:true dt in
  Alcotest.(check int) "dt=0 clamps to 0" 0 (mxs 0);
  Alcotest.(check int) "dt=2 clamps single frame" 2 (mxs 2);
  Alcotest.(check int) "dt=3 full single frame" 3 (mxs 3);
  Alcotest.(check int) "dt=10 window [3;1]" 4 (mxs 10);
  Alcotest.(check int) "dt=30 whole cycle" 6 (mxs 30)

let test_bound () =
  let d = demand () in
  let nx dt = Gmf.Demand.bound d ~capped:false dt in
  let mx dt = Gmf.Demand.bound d ~capped:true dt in
  (* Eq (13): a closed window of one cycle can hold n+1 releases. *)
  Alcotest.(check int) "NX(TSUM)" 9 (nx 60);
  Alcotest.(check int) "NX(TSUM+10)" 10 (nx 70);
  Alcotest.(check int) "NX(2 TSUM)" 15 (nx 120);
  (* Eq (11). *)
  Alcotest.(check int) "MX(TSUM)" 6 (mx 60);
  Alcotest.(check int) "MX(TSUM+10)" 10 (mx 70);
  Alcotest.(check int) "MX(0)" 0 (mx 0)

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Demand.make: empty cycle")
    (fun () -> ignore (Gmf.Demand.make ~costs:[||] ~periods:[||]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Demand.make: costs/periods length mismatch") (fun () ->
      ignore (Gmf.Demand.make ~costs:[| 1 |] ~periods:[| 1; 2 |]));
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Demand.make: negative cost") (fun () ->
      ignore (Gmf.Demand.make ~costs:[| -1 |] ~periods:[| 1 |]));
  Alcotest.check_raises "zero cycle"
    (Invalid_argument "Demand.make: zero cycle length") (fun () ->
      ignore (Gmf.Demand.make ~costs:[| 1 |] ~periods:[| 0 |]))

(* Brute-force reference: enumerate windows directly from the arrays. *)
let brute_small ~costs ~periods ~capped dt =
  let n = Array.length costs in
  let best = ref 0 in
  for k1 = 0 to n - 1 do
    for len = 1 to n do
      let span = ref 0 and cost = ref 0 in
      for j = 0 to len - 1 do
        cost := !cost + costs.((k1 + j) mod n);
        if j < len - 1 then span := !span + periods.((k1 + j) mod n)
      done;
      if !span <= dt then begin
        let c = if capped then min dt !cost else !cost in
        if c > !best then best := c
      end
    done
  done;
  !best

let arb_cycle =
  QCheck.make
    ~print:(fun (c, p) ->
      Printf.sprintf "costs=%s periods=%s"
        (QCheck.Print.(list int) (Array.to_list c))
        (QCheck.Print.(list int) (Array.to_list p)))
    QCheck.Gen.(
      int_range 1 6 >>= fun n ->
      let* costs = array_size (return n) (int_range 0 50) in
      let* periods = array_size (return n) (int_range 0 40) in
      (* ensure a positive cycle *)
      let periods =
        if Array.fold_left ( + ) 0 periods = 0 then (
          periods.(0) <- 1;
          periods)
        else periods
      in
      return (costs, periods))

let prop_small_matches_bruteforce =
  QCheck.Test.make ~name:"small matches brute force" ~count:500
    QCheck.(pair arb_cycle (int_range 0 200))
    (fun ((costs, periods), dt) ->
      let d = Gmf.Demand.make ~costs ~periods in
      Gmf.Demand.small d ~capped:false dt
      = brute_small ~costs ~periods ~capped:false dt
      && Gmf.Demand.small d ~capped:true dt
         = brute_small ~costs ~periods ~capped:true dt)

let prop_bound_monotone =
  QCheck.Test.make ~name:"bound monotone in dt" ~count:500
    QCheck.(triple arb_cycle (int_range 0 500) (int_range 0 100))
    (fun ((costs, periods), dt, extra) ->
      let d = Gmf.Demand.make ~costs ~periods in
      Gmf.Demand.bound d ~capped:false dt
      <= Gmf.Demand.bound d ~capped:false (dt + extra)
      && Gmf.Demand.bound d ~capped:true dt
         <= Gmf.Demand.bound d ~capped:true (dt + extra))

let prop_bound_floor =
  QCheck.Test.make ~name:"bound >= whole-cycle demand" ~count:500
    QCheck.(pair arb_cycle (int_range 0 1_000))
    (fun ((costs, periods), dt) ->
      let d = Gmf.Demand.make ~costs ~periods in
      let floor_cycles = dt / Gmf.Demand.tsum d * Gmf.Demand.cost_total d in
      Gmf.Demand.bound d ~capped:false dt >= floor_cycles
      && Gmf.Demand.bound d ~capped:true dt >= floor_cycles)

let prop_window_additive =
  QCheck.Test.make ~name:"window_cost splits additively" ~count:500
    QCheck.(triple arb_cycle (int_range 0 5) (pair (int_range 0 8) (int_range 0 8)))
    (fun ((costs, periods), k1, (l1, l2)) ->
      let d = Gmf.Demand.make ~costs ~periods in
      Gmf.Demand.window_cost d ~k1 ~len:(l1 + l2)
      = Gmf.Demand.window_cost d ~k1 ~len:l1
        + Gmf.Demand.window_cost d ~k1:(k1 + l1) ~len:l2)

let prop_capped_below_uncapped =
  QCheck.Test.make ~name:"MXS <= NXS-style window cost and <= dt" ~count:500
    QCheck.(pair arb_cycle (int_range 0 300))
    (fun ((costs, periods), dt) ->
      let d = Gmf.Demand.make ~costs ~periods in
      let capped = Gmf.Demand.small d ~capped:true dt in
      capped <= Gmf.Demand.small d ~capped:false dt && capped <= dt)

(* Ground truth: explicitly enumerate the densest release sequence (every
   frame exactly its period after the predecessor) from every cyclic start,
   and check that the demand of every closed release-to-release window is
   covered by the uncapped bound - and that the bound is achieved by some
   window (it is a max over exactly these windows). *)
let prop_bound_covers_dense_releases =
  QCheck.Test.make ~name:"NX covers every dense release window" ~count:200
    arb_cycle
    (fun (costs, periods) ->
      let d = Gmf.Demand.make ~costs ~periods in
      let n = Array.length costs in
      let cycles = 3 in
      let ok = ref true in
      for k1 = 0 to n - 1 do
        (* releases.(i) = arrival instant of the i-th job of the sequence
           starting at frame k1. *)
        let total = cycles * n in
        let release = Array.make total 0 in
        for i = 1 to total - 1 do
          release.(i) <- release.(i - 1) + periods.((k1 + i - 1) mod n)
        done;
        for i = 0 to total - 1 do
          for j = i to total - 1 do
            let window = release.(j) - release.(i) in
            let demand = ref 0 in
            for m = i to j do
              demand := !demand + costs.((k1 + m) mod n)
            done;
            if !demand > Gmf.Demand.bound d ~capped:false window then
              ok := false
          done
        done
      done;
      !ok)

let prop_small_achieved_by_some_window =
  QCheck.Test.make ~name:"NXS value is achieved by a dense window" ~count:200
    QCheck.(pair arb_cycle (int_range 0 100))
    (fun ((costs, periods), dt) ->
      let d = Gmf.Demand.make ~costs ~periods in
      let dt = dt mod max 1 (Gmf.Demand.tsum d) in
      let target = Gmf.Demand.small d ~capped:false dt in
      (* Search the window space directly. *)
      let n = Array.length costs in
      let found = ref (target = 0) in
      for k1 = 0 to n - 1 do
        for len = 1 to n do
          let span = ref 0 and cost = ref 0 in
          for j = 0 to len - 1 do
            cost := !cost + costs.((k1 + j) mod n);
            if j < len - 1 then span := !span + periods.((k1 + j) mod n)
          done;
          if !span <= dt && !cost = target then found := true
        done
      done;
      !found)

let tests =
  [
    Alcotest.test_case "totals" `Quick test_totals;
    Alcotest.test_case "windows (eqs 7-9)" `Quick test_windows;
    Alcotest.test_case "NXS (eq 12)" `Quick test_small_uncapped;
    Alcotest.test_case "MXS (eq 10)" `Quick test_small_capped;
    Alcotest.test_case "MX/NX (eqs 11/13)" `Quick test_bound;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_small_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_bound_monotone;
    QCheck_alcotest.to_alcotest prop_bound_floor;
    QCheck_alcotest.to_alcotest prop_window_additive;
    QCheck_alcotest.to_alcotest prop_capped_below_uncapped;
    QCheck_alcotest.to_alcotest prop_bound_covers_dense_releases;
    QCheck_alcotest.to_alcotest prop_small_achieved_by_some_window;
  ]
