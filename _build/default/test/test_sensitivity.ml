(* Sensitivity (capacity-planning) searches. *)
open Gmf_util

let build_star ~rate_bps ~scale ~circ_scale =
  let topo, hosts, sw = Workload.Topologies.star ~rate_bps ~hosts:2 () in
  let croute =
    max 0
      (int_of_float
         (circ_scale *. float_of_int Click.Switch_model.default_croute))
  in
  let csend =
    max 0
      (int_of_float
         (circ_scale *. float_of_int Click.Switch_model.default_csend))
  in
  let model = Click.Switch_model.make ~croute ~csend ~ninterfaces:2 () in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"video"
      ~spec:
        (Workload.Mpeg.spec
           ~sizes:
             {
               Workload.Mpeg.i_plus_p_bytes =
                 max 1 (int_of_float (44_000. *. scale));
               p_bytes = max 1 (int_of_float (20_000. *. scale));
               b_bytes = max 1 (int_of_float (8_000. *. scale));
             }
           ~deadline:(Timeunit.ms 150) ())
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  Traffic.Scenario.make ~switches:[ (sw, model) ] ~topo ~flows:[ flow ] ()

let test_min_link_rate () =
  let build ~rate_bps = build_star ~rate_bps ~scale:1.0 ~circ_scale:1.0 in
  match Analysis.Sensitivity.min_link_rate ~build () with
  | None -> Alcotest.fail "10 Gbit/s must suffice"
  | Some rate ->
      (* The Figure 3 stream is schedulable at 10 Mbit/s (E2) but its I+P
         frame cannot meet 150 ms at, say, 2 Mbit/s. *)
      Alcotest.(check bool)
        (Printf.sprintf "min rate %d plausible" rate)
        true
        (rate > 2_000_000 && rate <= 10_000_000);
      (* The found rate works; 70%% of it does not. *)
      let ok r =
        Analysis.Holistic.is_schedulable
          (Analysis.Holistic.analyze (build ~rate_bps:r))
      in
      Alcotest.(check bool) "found rate schedulable" true (ok rate);
      Alcotest.(check bool) "well below it unschedulable" false
        (ok (rate * 7 / 10))

let test_max_payload_scale () =
  let build ~scale = build_star ~rate_bps:100_000_000 ~scale ~circ_scale:1.0 in
  match Analysis.Sensitivity.max_payload_scale ~build () with
  | None -> Alcotest.fail "base scale must work"
  | Some scale ->
      Alcotest.(check bool)
        (Printf.sprintf "scale %.2f in a sane range" scale)
        true
        (scale > 1.0 && scale < 64.);
      let ok s =
        Analysis.Holistic.is_schedulable
          (Analysis.Holistic.analyze (build ~scale:s))
      in
      Alcotest.(check bool) "found scale schedulable" true (ok scale);
      Alcotest.(check bool) "140% of it unschedulable" false (ok (scale *. 1.4))

let test_max_circ () =
  let build ~circ_scale =
    build_star ~rate_bps:100_000_000 ~scale:1.0 ~circ_scale
  in
  match Analysis.Sensitivity.max_circ ~build () with
  | None -> Alcotest.fail "the measured costs must work"
  | Some scale ->
      Alcotest.(check bool)
        (Printf.sprintf "CPU slack %.1fx" scale)
        true (scale >= 1.0)

let test_impossible_reports_none () =
  (* A deadline below one frame's transmission time at any allowed rate. *)
  let build ~rate_bps =
    let topo, hosts, sw = Workload.Topologies.star ~rate_bps ~hosts:2 () in
    let spec =
      Gmf.Spec.make
        [
          Gmf.Frame_spec.make ~period:(Timeunit.ms 10)
            ~deadline:(Timeunit.ns 10) ~jitter:0 ~payload_bits:(8 * 1_472);
        ]
    in
    let flow =
      Traffic.Flow.make ~id:0 ~name:"f" ~spec ~encap:Ethernet.Encap.Udp
        ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
        ~priority:5
    in
    Traffic.Scenario.make ~topo ~flows:[ flow ] ()
  in
  Alcotest.(check bool) "impossible -> None" true
    (Analysis.Sensitivity.min_link_rate ~build () = None)

let test_bad_range () =
  Alcotest.check_raises "bad range"
    (Invalid_argument "Sensitivity.min_link_rate: bad range") (fun () ->
      ignore
        (Analysis.Sensitivity.min_link_rate ~lo:10 ~hi:5
           ~build:(fun ~rate_bps ->
             build_star ~rate_bps ~scale:1.0 ~circ_scale:1.0)
           ()))

let tests =
  [
    Alcotest.test_case "min link rate" `Slow test_min_link_rate;
    Alcotest.test_case "max payload scale" `Slow test_max_payload_scale;
    Alcotest.test_case "max circ scale" `Slow test_max_circ;
    Alcotest.test_case "impossible -> None" `Quick test_impossible_reports_none;
    Alcotest.test_case "bad range" `Quick test_bad_range;
  ]
