(* Packet-journey tracing. *)
open Gmf_util

let run ~trace_limit =
  Sim.Netsim.run
    ~config:
      { Sim.Sim_config.default with duration = Timeunit.ms 100; trace_limit }
    (Workload.Scenarios.fig1_videoconf ())

let test_off_by_default () =
  let report = run ~trace_limit:0 in
  Alcotest.(check int) "no journeys" 0
    (List.length (Sim.Collector.journeys report.Sim.Netsim.collector))

let test_limit_respected () =
  let report = run ~trace_limit:3 in
  Alcotest.(check int) "exactly three" 3
    (List.length (Sim.Collector.journeys report.Sim.Netsim.collector))

let test_journey_contents () =
  List.iter
    (fun (j : Sim.Collector.journey) ->
      let events = j.Sim.Collector.j_events in
      Alcotest.(check bool) "at least release + completion" true
        (List.length events >= 2);
      (* Chronological. *)
      let times = List.map fst events in
      Alcotest.(check bool) "sorted" true (List.sort compare times = times);
      (* First event is the release, last is the completion. *)
      (match (events, List.rev events) with
      | (t0, _) :: _, (t_end, what_end) :: _ ->
          Alcotest.(check int) "starts at release 0-ish" 0 (min 0 t0);
          Alcotest.(check bool) "ends at destination" true
            (what_end = "all Ethernet frames at destination");
          Alcotest.(check bool) "positive span" true (t_end > t0)
      | _ -> Alcotest.fail "empty journey");
      (* A 3-hop route traverses two switches: two 'into switch' and two
         'into priority queue' events. *)
      let count needle =
        List.length
          (List.filter
             (fun (_, what) ->
               String.length what >= String.length needle
               && String.sub what 0 (String.length needle) = needle)
             events)
      in
      Alcotest.(check int) "two switch arrivals" 2 (count "last frame into switch");
      Alcotest.(check int) "two priority enqueues" 2
        (count "last frame into priority queue"))
    (Sim.Collector.journeys (run ~trace_limit:5).Sim.Netsim.collector)

let test_seq_numbers_advance () =
  let report = run ~trace_limit:20 in
  (* Among traced journeys of the same (flow, frame), seq strictly
     increases with completion order. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (j : Sim.Collector.journey) ->
      let key = (j.Sim.Collector.j_flow, j.Sim.Collector.j_frame) in
      (match Hashtbl.find_opt tbl key with
      | Some prev ->
          Alcotest.(check bool) "seq increases" true (j.Sim.Collector.j_seq > prev)
      | None -> ());
      Hashtbl.replace tbl key j.Sim.Collector.j_seq)
    (Sim.Collector.journeys report.Sim.Netsim.collector)

let tests =
  [
    Alcotest.test_case "off by default" `Quick test_off_by_default;
    Alcotest.test_case "limit respected" `Quick test_limit_respected;
    Alcotest.test_case "journey contents" `Quick test_journey_contents;
    Alcotest.test_case "seq numbers advance" `Quick test_seq_numbers_advance;
  ]
