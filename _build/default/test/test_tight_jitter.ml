(* Tight jitter propagation (Config.tight_jitter). *)
open Gmf_util

let test_config_presets () =
  Alcotest.(check bool) "default is paper rule" false
    Analysis.Config.default.Analysis.Config.tight_jitter;
  Alcotest.(check bool) "tight preset" true
    Analysis.Config.tight.Analysis.Config.tight_jitter

let bound ?config scenario flow_id =
  Experiments.Exp_common.worst_total
    (Analysis.Holistic.analyze ?config scenario)
    flow_id

let test_never_looser () =
  (* Tight jitter can only shrink interference, so per-flow bounds never
     grow.  Check on every named scenario. *)
  List.iter
    (fun (name, scenario) ->
      List.iter
        (fun flow ->
          let id = flow.Traffic.Flow.id in
          let paper = bound scenario id in
          let tight = bound ~config:Analysis.Config.tight scenario id in
          Alcotest.(check bool)
            (Printf.sprintf "%s flow %d: tight <= paper" name id)
            true (tight <= paper))
        (Traffic.Scenario.flows scenario))
    [
      ("fig1", Workload.Scenarios.fig1_videoconf ());
      ("voip", Workload.Scenarios.single_switch_voip ());
      ("chain", Workload.Scenarios.multihop_chain ());
    ]

let test_uncontended_flow_unchanged () =
  (* A flow alone in the network has no interferers, so the tight rule
     changes nothing at all. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"solo" ~spec:Workload.Mpeg.fig3_spec
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ flow ] () in
  Alcotest.(check int) "identical bound" (bound scenario 0)
    (bound ~config:Analysis.Config.tight scenario 0)

let test_e17_reduction_and_soundness () =
  let rows = Experiments.E17_tight_jitter.rows () in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Experiments.E17_tight_jitter.label ^ " tight <= paper")
        true
        (r.Experiments.E17_tight_jitter.tight_bound
         <= r.Experiments.E17_tight_jitter.paper_bound);
      Alcotest.(check bool)
        (r.Experiments.E17_tight_jitter.label ^ " sound")
        true r.Experiments.E17_tight_jitter.sound)
    rows;
  (* The deep-merge rows actually gain something. *)
  let deep = List.nth rows 4 in
  Alcotest.(check bool) "deep merge gains" true
    (deep.Experiments.E17_tight_jitter.tight_bound
     < deep.Experiments.E17_tight_jitter.paper_bound)

let test_tight_validation_against_sim () =
  (* Full per-(flow, frame) domination under the tight rule on fig1. *)
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let report = Analysis.Holistic.analyze ~config:Analysis.Config.tight scenario in
  Alcotest.(check bool) "schedulable" true
    (Analysis.Holistic.is_schedulable report);
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 1 }
      scenario
  in
  List.iter
    (fun res ->
      let id = res.Analysis.Result_types.flow.Traffic.Flow.id in
      Array.iter
        (fun (fr : Analysis.Result_types.frame_result) ->
          match
            Sim.Collector.max_response sim.Sim.Netsim.collector ~flow:id
              ~frame:fr.Analysis.Result_types.frame
          with
          | None -> ()
          | Some observed ->
              Alcotest.(check bool)
                (Printf.sprintf "flow %d frame %d" id
                   fr.Analysis.Result_types.frame)
                true
                (observed <= fr.Analysis.Result_types.total))
        res.Analysis.Result_types.frames)
    report.Analysis.Holistic.results

let tests =
  [
    Alcotest.test_case "config presets" `Quick test_config_presets;
    Alcotest.test_case "never looser" `Slow test_never_looser;
    Alcotest.test_case "uncontended unchanged" `Quick
      test_uncontended_flow_unchanged;
    Alcotest.test_case "E17 reduction + soundness" `Slow
      test_e17_reduction_and_soundness;
    Alcotest.test_case "tight bounds dominate sim" `Slow
      test_tight_validation_against_sim;
  ]
