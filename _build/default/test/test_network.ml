open Gmf_util

let build_example () = Workload.Topologies.example ()

let test_node_kinds () =
  let open Network.Node in
  Alcotest.(check string) "endhost" "endhost" (kind_to_string Endhost);
  Alcotest.(check string) "switch" "switch" (kind_to_string Switch);
  Alcotest.(check string) "router" "router" (kind_to_string Router);
  let n = { id = 0; name = "x"; kind = Switch } in
  Alcotest.(check bool) "switch is switch" true (is_switch n);
  Alcotest.(check bool) "switch cannot terminate" false (may_terminate_flow n);
  let h = { n with kind = Endhost } and r = { n with kind = Router } in
  Alcotest.(check bool) "endhost terminates" true (may_terminate_flow h);
  Alcotest.(check bool) "router terminates" true (may_terminate_flow r)

let test_link () =
  let link = Network.Link.make ~src:0 ~dst:1 ~rate_bps:10_000_000 ~prop:50 in
  Alcotest.(check int) "mft" 1_230_400 (Network.Link.mft link);
  Alcotest.(check int) "tx of full frame" 1_230_400
    (Network.Link.tx_time link ~nbits:11_840);
  Alcotest.check_raises "self loop" (Invalid_argument "Link.make: self-loop")
    (fun () -> ignore (Network.Link.make ~src:1 ~dst:1 ~rate_bps:1 ~prop:0));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Link.make: non-positive rate") (fun () ->
      ignore (Network.Link.make ~src:0 ~dst:1 ~rate_bps:0 ~prop:0))

let test_topology_build () =
  let net = build_example () in
  let topo = net.Workload.Topologies.topo in
  Alcotest.(check int) "8 nodes" 8 (Network.Topology.node_count topo);
  Alcotest.(check int) "16 directed links (8 duplex)" 16
    (List.length (Network.Topology.links topo));
  (* Figure 5: switch 4 has four interfaces. *)
  Alcotest.(check int) "switch 4 degree" 4
    (Network.Topology.degree topo net.Workload.Topologies.switches.(0));
  Alcotest.(check bool) "link 0->4 exists" true
    (Option.is_some (Network.Topology.find_link topo ~src:0 ~dst:4));
  Alcotest.(check bool) "no link 0->3" true
    (Option.is_none (Network.Topology.find_link topo ~src:0 ~dst:3));
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Topology.node: unknown node 99") (fun () ->
      ignore (Network.Topology.node topo 99))

let test_topology_duplicate_link () =
  let topo = Network.Topology.create () in
  let a = Network.Topology.add_node topo ~name:"a" ~kind:Network.Node.Endhost in
  let b = Network.Topology.add_node topo ~name:"b" ~kind:Network.Node.Switch in
  Network.Topology.add_link topo ~src:a ~dst:b ~rate_bps:10 ~prop:0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology.add_link: duplicate link 0->1") (fun () ->
      Network.Topology.add_link topo ~src:a ~dst:b ~rate_bps:10 ~prop:0)

let test_shortest_path () =
  let net = build_example () in
  let topo = net.Workload.Topologies.topo in
  let h = net.Workload.Topologies.endhosts in
  (* Figure 2's route is a shortest path. *)
  (match Network.Topology.shortest_path topo ~src:h.(0) ~dst:h.(3) with
  | Some path -> Alcotest.(check (list int)) "0->3 via 4,6" [ 0; 4; 6; 3 ] path
  | None -> Alcotest.fail "no path");
  (* Endhosts do not relay: no path may pass through an endhost. *)
  (match Network.Topology.shortest_path topo ~src:h.(0) ~dst:h.(1) with
  | Some path ->
      Alcotest.(check (list int)) "0->1 via switch only" [ 0; 4; 1 ] path
  | None -> Alcotest.fail "no path");
  (* Disconnected case. *)
  let lonely = Network.Topology.add_node topo ~name:"lonely"
      ~kind:Network.Node.Endhost in
  Alcotest.(check bool) "unreachable" true
    (Option.is_none (Network.Topology.shortest_path topo ~src:h.(0) ~dst:lonely))

let test_route_validation () =
  let net = build_example () in
  let topo = net.Workload.Topologies.topo in
  let ok = Network.Route.make topo [ 0; 4; 6; 3 ] in
  Alcotest.(check int) "source" 0 (Network.Route.source ok);
  Alcotest.(check int) "destination" 3 (Network.Route.destination ok);
  Alcotest.(check int) "hops" 3 (Network.Route.hop_count ok);
  Alcotest.check_raises "too short"
    (Invalid_argument "Route.make: fewer than two nodes") (fun () ->
      ignore (Network.Route.make topo [ 0 ]));
  Alcotest.check_raises "missing link"
    (Invalid_argument "Route.make: missing link 0->6") (fun () ->
      ignore (Network.Route.make topo [ 0; 6; 3 ]));
  Alcotest.check_raises "switch endpoint"
    (Invalid_argument "Route.make: source must be an endhost or router")
    (fun () -> ignore (Network.Route.make topo [ 4; 6; 3 ]));
  (* An endhost as destination is fine even when directly behind a switch. *)
  ignore (Network.Route.make topo [ 0; 4; 1 ]);
  (* But an endhost strictly inside a route is rejected. *)
  let chain = Network.Topology.create () in
  let a = Network.Topology.add_node chain ~name:"a" ~kind:Network.Node.Endhost in
  let b = Network.Topology.add_node chain ~name:"b" ~kind:Network.Node.Endhost in
  let c = Network.Topology.add_node chain ~name:"c" ~kind:Network.Node.Endhost in
  Network.Topology.add_duplex_link chain ~a ~b ~rate_bps:10 ~prop:0;
  Network.Topology.add_duplex_link chain ~a:b ~b:c ~rate_bps:10 ~prop:0;
  Alcotest.check_raises "endhost intermediate"
    (Invalid_argument "Route.make: intermediate node 1 is not a switch")
    (fun () -> ignore (Network.Route.make chain [ a; b; c ]));
  Alcotest.check_raises "repeated node"
    (Invalid_argument "Route.make: node 4 repeated") (fun () ->
      ignore (Network.Route.make topo [ 0; 4; 5; 4; 1 ]))

let test_route_navigation () =
  let net = build_example () in
  let topo = net.Workload.Topologies.topo in
  let route = Network.Route.make topo [ 0; 4; 6; 3 ] in
  Alcotest.(check int) "succ of source" 4 (Network.Route.succ route 0);
  Alcotest.(check int) "succ of 4" 6 (Network.Route.succ route 4);
  Alcotest.(check int) "prec of 6" 4 (Network.Route.prec route 6);
  Alcotest.(check int) "prec of destination" 6 (Network.Route.prec route 3);
  Alcotest.(check (list int)) "intermediates" [ 4; 6 ]
    (Network.Route.intermediate_switches route);
  Alcotest.(check bool) "mem" true (Network.Route.mem route 6);
  Alcotest.(check bool) "not mem" false (Network.Route.mem route 5);
  Alcotest.(check (list (pair int int))) "hops" [ (0, 4); (4, 6); (6, 3) ]
    (Network.Route.hops route);
  Alcotest.(check int) "3 links" 3 (List.length (Network.Route.links route topo));
  Alcotest.check_raises "succ of destination"
    (Invalid_argument "Route.succ: destination has no successor") (fun () ->
      ignore (Network.Route.succ route 3));
  Alcotest.check_raises "prec of source"
    (Invalid_argument "Route.prec: source has no predecessor") (fun () ->
      ignore (Network.Route.prec route 0));
  Alcotest.check_raises "not on route"
    (Invalid_argument "Route: node 5 not on route") (fun () ->
      ignore (Network.Route.succ route 5))

let test_direct_route () =
  (* Source directly linked to destination: legal, no switches. *)
  let topo = Network.Topology.create () in
  let a = Network.Topology.add_node topo ~name:"a" ~kind:Network.Node.Endhost in
  let b = Network.Topology.add_node topo ~name:"b" ~kind:Network.Node.Endhost in
  Network.Topology.add_duplex_link topo ~a ~b ~rate_bps:10_000_000 ~prop:0;
  let route = Network.Route.make topo [ a; b ] in
  Alcotest.(check (list int)) "no intermediates" []
    (Network.Route.intermediate_switches route);
  Alcotest.(check int) "one hop" 1 (Network.Route.hop_count route)

let test_link_prop_units () =
  (* Propagation delays are plain nanoseconds. *)
  let link =
    Network.Link.make ~src:0 ~dst:1 ~rate_bps:1_000_000_000
      ~prop:(Timeunit.us 5)
  in
  Alcotest.(check int) "prop stored" 5_000 link.Network.Link.prop

let tests =
  [
    Alcotest.test_case "node kinds" `Quick test_node_kinds;
    Alcotest.test_case "link" `Quick test_link;
    Alcotest.test_case "topology build" `Quick test_topology_build;
    Alcotest.test_case "duplicate link" `Quick test_topology_duplicate_link;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "route validation" `Quick test_route_validation;
    Alcotest.test_case "route navigation" `Quick test_route_navigation;
    Alcotest.test_case "direct route" `Quick test_direct_route;
    Alcotest.test_case "propagation units" `Quick test_link_prop_units;
  ]
