open Gmf_util

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1_000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: non-positive bound") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1_000 do
    let x = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done;
  Alcotest.(check int) "singleton range" 9 (Rng.int_in rng 9 9);
  Alcotest.check_raises "empty range"
    (Invalid_argument "Rng.int_in: empty range") (fun () ->
      ignore (Rng.int_in rng 2 1))

let test_float () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1_000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0. && x < 2.5)
  done

let test_split_independence () =
  let parent = Rng.create ~seed:6 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  Alcotest.(check bool) "children differ" true
    (Rng.next_int64 child1 <> Rng.next_int64 child2)

let test_pick_shuffle () =
  let rng = Rng.create ~seed:8 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    let picked = Rng.pick rng arr in
    Alcotest.(check bool) "pick is member" true
      (Array.exists (fun x -> x = picked) arr)
  done;
  let shuffled = Array.copy arr in
  Rng.shuffle rng shuffled;
  Alcotest.(check (list int)) "shuffle is a permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list shuffled))

let test_exponential () =
  let rng = Rng.create ~seed:9 in
  let n = 10_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential rng ~mean:3.0 in
    Alcotest.(check bool) "non-negative" true (x >= 0.);
    acc := !acc +. x
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 3.0" true (mean > 2.7 && mean < 3.3)

let test_uniformity () =
  (* Rough chi-square-free sanity check on bucket counts. *)
  let rng = Rng.create ~seed:10 in
  let buckets = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced" i)
        true
        (c > (n / 10) - 500 && c < (n / 10) + 500))
    buckets

let tests =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in;
    Alcotest.test_case "float bounds" `Quick test_float;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "pick/shuffle" `Quick test_pick_shuffle;
    Alcotest.test_case "exponential mean" `Quick test_exponential;
    Alcotest.test_case "uniformity" `Quick test_uniformity;
  ]
