(* Adversarial busy-poll CPU model: idle tasks burn their quantum, matching
   the analysis' CIRC worst case. *)
open Gmf_util

let scenario () = Workload.Scenarios.fig1_videoconf ()

let run ~busy_poll scenario =
  Sim.Netsim.run
    ~config:
      { Sim.Sim_config.default with duration = Timeunit.ms 500; busy_poll }
    scenario

let test_busy_poll_slower () =
  let s = scenario () in
  let idle = run ~busy_poll:false s in
  let busy = run ~busy_poll:true s in
  (* Everything still completes... *)
  Alcotest.(check int) "no stuck packets" 0
    (Sim.Collector.incomplete busy.Sim.Netsim.collector);
  (* ...but responses only get worse, never better. *)
  List.iter
    (fun fid ->
      let m report =
        Option.get
          (Sim.Collector.max_response_flow report.Sim.Netsim.collector
             ~flow:fid)
      in
      Alcotest.(check bool)
        (Printf.sprintf "flow %d: busy-poll >= idle-skip" fid)
        true
        (m busy >= m idle))
    (Sim.Collector.flows_seen idle.Sim.Netsim.collector)

let test_busy_poll_cpu_hotter () =
  let s = scenario () in
  let idle = run ~busy_poll:false s in
  let busy = run ~busy_poll:true s in
  List.iter
    (fun (sw, u_busy) ->
      let u_idle = List.assoc sw idle.Sim.Netsim.cpu_utilization in
      Alcotest.(check bool)
        (Printf.sprintf "switch %d hotter under busy-poll" sw)
        true (u_busy >= u_idle))
    busy.Sim.Netsim.cpu_utilization

let test_busy_poll_still_dominated () =
  (* The analysis assumes the busy-poll worst case, so its bounds must still
     dominate the adversarial simulator. *)
  let s = scenario () in
  let report = Analysis.Holistic.analyze s in
  let sim = run ~busy_poll:true s in
  List.iter
    (fun res ->
      let fid = res.Analysis.Result_types.flow.Traffic.Flow.id in
      Array.iter
        (fun (fr : Analysis.Result_types.frame_result) ->
          match
            Sim.Collector.max_response sim.Sim.Netsim.collector ~flow:fid
              ~frame:fr.Analysis.Result_types.frame
          with
          | None -> ()
          | Some observed ->
              Alcotest.(check bool)
                (Printf.sprintf "flow %d frame %d dominated" fid
                   fr.Analysis.Result_types.frame)
                true
                (observed <= fr.Analysis.Result_types.total))
        res.Analysis.Result_types.frames)
    report.Analysis.Holistic.results

let test_ingress_latency_approaches_circ () =
  (* One packet through an otherwise idle 4-port switch: with busy-poll its
     single Ethernet frame can wait up to a full rotation at the ingress
     task but never longer than CIRC + CROUTE. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:4 () in
  let model = Click.Switch_model.make ~ninterfaces:4 () in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"probe"
      ~spec:(Workload.Voip.g711_spec ()) ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  let scenario =
    Traffic.Scenario.make ~switches:[ (sw, model) ] ~topo ~flows:[ flow ] ()
  in
  let sim = run ~busy_poll:true scenario in
  match
    Sim.Collector.max_stage_span sim.Sim.Netsim.collector ~flow:0 ~frame:0
      ~stage:(Sim.Collector.S_in sw)
  with
  | None -> Alcotest.fail "no ingress span recorded"
  | Some span ->
      let circ = Click.Switch_model.circ model in
      Alcotest.(check bool)
        (Printf.sprintf "span %s within CIRC + CROUTE"
           (Timeunit.to_string span))
        true
        (span <= circ + 2_700);
      (* And the rotation really costs something: more than just CROUTE. *)
      Alcotest.(check bool) "rotation delay visible" true (span > 2_700)

let tests =
  [
    Alcotest.test_case "busy-poll slower" `Quick test_busy_poll_slower;
    Alcotest.test_case "busy-poll cpu hotter" `Quick test_busy_poll_cpu_hotter;
    Alcotest.test_case "still dominated" `Slow test_busy_poll_still_dominated;
    Alcotest.test_case "ingress approaches CIRC" `Quick
      test_ingress_latency_approaches_circ;
  ]
