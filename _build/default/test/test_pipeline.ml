(* Pipeline (Figure 6) and holistic iteration (Section 3.5) tests. *)
open Gmf_util
open Analysis

let c_frame = 1_230_400
let circ = 7_400

let one_frame_spec ?(jitter = 0) () =
  Gmf.Spec.make
    [
      Gmf.Frame_spec.make ~period:(Timeunit.ms 10) ~deadline:(Timeunit.ms 50)
        ~jitter ~payload_bits:(8 * 1_472);
    ]

let single_flow_scenario ?(jitter = 0) () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"solo"
      ~spec:(one_frame_spec ~jitter ())
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  (Traffic.Scenario.make ~topo ~flows:[ flow ] (), sw)

let test_pipeline_sums_stages () =
  let scenario, sw = single_flow_scenario () in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  match Pipeline.analyze_frame ctx ~flow ~frame:0 with
  | Error f -> Alcotest.failf "pipeline failed: %a" Result_types.pp_failure f
  | Ok fr ->
      Alcotest.(check int) "three stages" 3
        (List.length fr.Result_types.stages);
      (* first hop C + ingress CIRC + egress (2*MFT + CIRC). *)
      let expected = c_frame + circ + ((2 * c_frame) + circ) in
      Alcotest.(check int) "total = sum of stages" expected
        fr.Result_types.total;
      Alcotest.(check int) "deadline carried" (Timeunit.ms 50)
        fr.Result_types.deadline;
      (* Jitters were recorded at each stage boundary (JSUM accumulation):
         first link = GJ = 0, ingress = +first-hop R, egress = +ingress R. *)
      Alcotest.(check int) "jitter at ingress stage" c_frame
        (Ctx.get_jitter ctx flow ~frame:0 ~stage:(Stage.Ingress sw));
      Alcotest.(check int) "jitter at egress stage" (c_frame + circ)
        (Ctx.get_jitter ctx flow ~frame:0 ~stage:(Stage.Egress (sw, 2)))

let test_pipeline_source_jitter_counts () =
  let gj = Timeunit.ms 2 in
  let scenario, _ = single_flow_scenario ~jitter:gj () in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario 0 in
  match Pipeline.analyze_frame ctx ~flow ~frame:0 with
  | Error f -> Alcotest.failf "pipeline failed: %a" Result_types.pp_failure f
  | Ok fr ->
      (* Figure 6 line 3: RSUM starts at GJ. *)
      let expected = gj + c_frame + circ + ((2 * c_frame) + circ) in
      Alcotest.(check int) "total includes source jitter" expected
        fr.Result_types.total

let test_pipeline_direct_route () =
  (* Repair R5: a route without switches still gets a first-hop bound. *)
  let topo = Network.Topology.create () in
  let a = Network.Topology.add_node topo ~name:"a" ~kind:Network.Node.Endhost in
  let b = Network.Topology.add_node topo ~name:"b" ~kind:Network.Node.Endhost in
  Network.Topology.add_duplex_link topo ~a ~b ~rate_bps:10_000_000 ~prop:0;
  let flow =
    Traffic.Flow.make ~id:0 ~name:"direct" ~spec:(one_frame_spec ())
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ a; b ])
      ~priority:5
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ flow ] () in
  let ctx = Ctx.create scenario in
  match Pipeline.analyze_frame ctx ~flow ~frame:0 with
  | Error f -> Alcotest.failf "pipeline failed: %a" Result_types.pp_failure f
  | Ok fr ->
      Alcotest.(check int) "one stage" 1 (List.length fr.Result_types.stages);
      Alcotest.(check int) "R = C" c_frame fr.Result_types.total

let test_pipeline_all_frames () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let ctx = Ctx.create scenario in
  let flow = Traffic.Scenario.flow scenario Workload.Scenarios.video_flow_id in
  match Pipeline.analyze_flow ctx ~flow with
  | Error f -> Alcotest.failf "pipeline failed: %a" Result_types.pp_failure f
  | Ok res ->
      Alcotest.(check int) "nine frames" 9 (Array.length res.Result_types.frames);
      (* The big I+P frame must have the largest bound of the cycle. *)
      let totals =
        Array.map (fun fr -> fr.Result_types.total) res.Result_types.frames
      in
      Alcotest.(check int) "I+P frame is worst" totals.(0)
        (Array.fold_left max 0 totals);
      (* Frame 1 directly follows the I+P packet, whose 36.6 ms transmission
         exceeds its 30 ms period: the own-flow carry-in (repair R8) makes
         its bound strictly larger than the other B frames'. *)
      Alcotest.(check bool) "frame 1 carries I+P backlog" true
        (totals.(1) > totals.(2));
      (* B frames whose predecessors fit their periods are identical. *)
      Alcotest.(check int) "B frames equal (2,5)" totals.(2) totals.(5);
      Alcotest.(check int) "B frames equal (5,8)" totals.(5) totals.(8);
      Alcotest.(check int) "B frames equal (4,7)" totals.(4) totals.(7);
      Alcotest.(check int) "P frames equal (3,6)" totals.(3) totals.(6)

let test_holistic_fig1 () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let report = Holistic.analyze scenario in
  Alcotest.(check bool) "schedulable" true (Holistic.is_schedulable report);
  Alcotest.(check bool) "needed more than one round" true (report.rounds > 1);
  Alcotest.(check int) "all six flows analyzed" 6
    (List.length report.Holistic.results)

let test_holistic_monotone_rounds () =
  (* Re-running on the same context must be stable (fixed point reached):
     two runs give identical response-time bounds. *)
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let totals report =
    List.concat_map
      (fun r ->
        Array.to_list r.Result_types.frames
        |> List.map (fun fr -> fr.Result_types.total))
      report.Holistic.results
  in
  let r1 = Holistic.analyze scenario in
  let r2 = Holistic.analyze scenario in
  Alcotest.(check (list int)) "deterministic" (totals r1) (totals r2)

let test_holistic_deadline_miss () =
  (* Tighten every deadline below any feasible bound: verdict flips. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 10) ~deadline:(Timeunit.ms 1)
          ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let flow =
    Traffic.Flow.make ~id:0 ~name:"tight" ~spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  let scenario = Traffic.Scenario.make ~topo ~flows:[ flow ] () in
  let report = Holistic.analyze scenario in
  (match report.Holistic.verdict with
  | Holistic.Deadline_miss misses ->
      Alcotest.(check int) "one miss" 1 (List.length misses)
  | v -> Alcotest.failf "expected deadline miss, got %a" Holistic.pp_verdict v);
  Alcotest.(check bool) "not schedulable" false (Holistic.is_schedulable report)

let test_holistic_overload () =
  (* Utilization > 1: the analysis must fail rather than report bounds. *)
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 2) ~deadline:(Timeunit.ms 50)
          ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let flows =
    List.init 2 (fun id ->
        Traffic.Flow.make ~id ~name:(Printf.sprintf "f%d" id) ~spec
          ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
          ~priority:5)
  in
  let scenario = Traffic.Scenario.make ~topo ~flows () in
  let report = Holistic.analyze scenario in
  match report.Holistic.verdict with
  | Holistic.Analysis_failed _ | Holistic.No_fixed_point _ -> ()
  | v -> Alcotest.failf "expected failure, got %a" Holistic.pp_verdict v

let test_conditions () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let ctx = Ctx.create scenario in
  let checks = Conditions.check_all ctx in
  (* 6 flows x 5 stages (every route is 3 hops) = 30 checks. *)
  Alcotest.(check int) "30 stage checks" 30 (List.length checks);
  Alcotest.(check bool) "all satisfied" true (Conditions.all_satisfied checks);
  match Conditions.worst checks with
  | None -> Alcotest.fail "no worst check"
  | Some worst ->
      Alcotest.(check bool) "worst below 1" true (worst.Conditions.utilization < 1.);
      Alcotest.(check bool) "worst above 40%" true
        (worst.Conditions.utilization > 0.4)

let test_admission_check_and_admit () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let base = Admission.check scenario in
  Alcotest.(check bool) "base set admitted" true base.Admission.admitted;
  (* An extra small VoIP flow fits. *)
  let topo = Traffic.Scenario.topo scenario in
  let ok_flow =
    Traffic.Flow.make ~id:100 ~name:"extra-voip"
      ~spec:(Workload.Voip.g711_spec ()) ~encap:Ethernet.Encap.Rtp_udp
      ~route:(Network.Route.make topo [ 1; 4; 5; 2 ])
      ~priority:6
  in
  Alcotest.(check bool) "small flow admitted" true
    (Admission.admit scenario ~candidate:ok_flow).Admission.admitted;
  (* A second full-rate video stream on the loaded path does not fit at
     10 Mbit/s. *)
  let fat_flow =
    Traffic.Flow.make ~id:101 ~name:"extra-video"
      ~spec:Workload.Mpeg.fig3_spec ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ 1; 4; 6; 3 ])
      ~priority:5
  in
  Alcotest.(check bool) "fat flow rejected" false
    (Admission.admit scenario ~candidate:fat_flow).Admission.admitted;
  (* And admission does not mutate the original scenario. *)
  Alcotest.(check int) "scenario unchanged" 6
    (Traffic.Scenario.flow_count scenario)

let test_admit_greedily () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:4 () in
  let mk id =
    Traffic.Flow.make ~id
      ~name:(Printf.sprintf "v%d" id)
      ~spec:(Workload.Mpeg.spec ~deadline:(Timeunit.ms 250) ())
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
      ~priority:5
  in
  (* Each Figure-3 stream is ~41% of the 10 Mbit/s link: two fit at most. *)
  let candidates = List.init 4 mk in
  let admitted, rejected =
    Admission.admit_greedily ~topo ~switches:[] candidates
  in
  Alcotest.(check int) "conservation" 4
    (List.length admitted + List.length rejected);
  Alcotest.(check bool) "some admitted" true (List.length admitted >= 1);
  Alcotest.(check bool) "not all admitted" true (List.length admitted < 4)

let tests =
  [
    Alcotest.test_case "pipeline sums stages" `Quick test_pipeline_sums_stages;
    Alcotest.test_case "source jitter counts" `Quick
      test_pipeline_source_jitter_counts;
    Alcotest.test_case "direct route (R5)" `Quick test_pipeline_direct_route;
    Alcotest.test_case "all frames of Figure 3" `Quick test_pipeline_all_frames;
    Alcotest.test_case "holistic on Figure 1" `Quick test_holistic_fig1;
    Alcotest.test_case "holistic deterministic" `Quick
      test_holistic_monotone_rounds;
    Alcotest.test_case "deadline miss verdict" `Quick
      test_holistic_deadline_miss;
    Alcotest.test_case "overload verdict" `Quick test_holistic_overload;
    Alcotest.test_case "conditions (eqs 20/34/35)" `Quick test_conditions;
    Alcotest.test_case "admission check/admit" `Quick
      test_admission_check_and_admit;
    Alcotest.test_case "greedy admission" `Quick test_admit_greedily;
  ]
