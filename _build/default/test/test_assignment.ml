(* Priority assignment policies and rerouting admission. *)
open Gmf_util

let mixed_workload () =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:4 ()
  in
  let route i = Network.Route.make topo [ hosts.(i); sw; hosts.(3) ] in
  let voip =
    Traffic.Flow.make ~id:0 ~name:"voip"
      ~spec:(Workload.Voip.g711_spec ~deadline:(Timeunit.ms 12) ())
      ~encap:Ethernet.Encap.Rtp_udp ~route:(route 0) ~priority:0
  in
  let video =
    Traffic.Flow.make ~id:1 ~name:"video"
      ~spec:
        (Workload.Mpeg.spec
           ~sizes:
             { Workload.Mpeg.i_plus_p_bytes = 22_000; p_bytes = 10_000;
               b_bytes = 4_000 }
           ~deadline:(Timeunit.ms 60) ())
      ~encap:Ethernet.Encap.Udp ~route:(route 1) ~priority:0
  in
  let bulk =
    Traffic.Flow.make ~id:2 ~name:"bulk"
      ~spec:
        (Gmf.Spec.make
           [
             Gmf.Frame_spec.make ~period:(Timeunit.ms 25)
               ~deadline:(Timeunit.ms 200) ~jitter:0
               ~payload_bits:(8 * 120_000);
           ])
      ~encap:Ethernet.Encap.Udp ~route:(route 2) ~priority:0
  in
  (topo, [ voip; video; bulk ])

let priorities flows =
  List.map (fun f -> (f.Traffic.Flow.id, f.Traffic.Flow.priority)) flows
  |> List.sort compare

let test_deadline_monotonic_order () =
  let _, flows = mixed_workload () in
  let assigned =
    Analysis.Priority_assign.assign Analysis.Priority_assign.Deadline_monotonic
      flows
  in
  let prio id = List.assoc id (priorities assigned) in
  (* voip (12ms) > video (60ms) > bulk (200ms). *)
  Alcotest.(check bool) "voip highest" true (prio 0 > prio 1);
  Alcotest.(check bool) "video above bulk" true (prio 1 > prio 2)

let test_two_levels () =
  let _, flows = mixed_workload () in
  let assigned =
    Analysis.Priority_assign.assign ~levels:2
      Analysis.Priority_assign.Deadline_monotonic flows
  in
  let classes =
    List.sort_uniq compare
      (List.map (fun f -> f.Traffic.Flow.priority) assigned)
  in
  Alcotest.(check bool) "at most two classes" true (List.length classes <= 2);
  List.iter
    (fun c ->
      Alcotest.(check bool) "classes are 0 or 7" true (c = 0 || c = 7))
    classes

let test_uniform () =
  let _, flows = mixed_workload () in
  let assigned =
    Analysis.Priority_assign.assign (Analysis.Priority_assign.Uniform 3) flows
  in
  List.iter
    (fun f -> Alcotest.(check int) "all class 3" 3 f.Traffic.Flow.priority)
    assigned

let test_assignment_preserves_everything_else () =
  let _, flows = mixed_workload () in
  let assigned =
    Analysis.Priority_assign.assign Analysis.Priority_assign.Rate_monotonic
      flows
  in
  List.iter2
    (fun before after ->
      Alcotest.(check int) "same id" before.Traffic.Flow.id
        after.Traffic.Flow.id;
      Alcotest.(check string) "same name" before.Traffic.Flow.name
        after.Traffic.Flow.name;
      Alcotest.(check bool) "same spec" true
        (Gmf.Spec.equal before.Traffic.Flow.spec after.Traffic.Flow.spec))
    flows assigned

let test_exhaustive_beats_policies () =
  let topo, flows = mixed_workload () in
  match
    Analysis.Priority_assign.best_exhaustive ~topo ~switches:[] flows
  with
  | None -> Alcotest.fail "some assignment must be schedulable"
  | Some (best_flows, best_bound) ->
      Alcotest.(check int) "same flow count" (List.length flows)
        (List.length best_flows);
      (* No policy does better than the exhaustive optimum. *)
      List.iter
        (fun policy ->
          let assigned = Analysis.Priority_assign.assign policy flows in
          let report =
            Analysis.Holistic.analyze
              (Traffic.Scenario.make ~topo ~flows:assigned ())
          in
          if Analysis.Holistic.is_schedulable report then begin
            let worst =
              List.fold_left
                (fun acc r ->
                  max acc
                    (Analysis.Result_types.worst_frame r).Analysis
                      .Result_types.total)
                0 report.Analysis.Holistic.results
            in
            Alcotest.(check bool) "optimum is optimal" true
              (best_bound <= worst)
          end)
        [
          Analysis.Priority_assign.Deadline_monotonic;
          Analysis.Priority_assign.Rate_monotonic;
          Analysis.Priority_assign.Lightest_first;
        ]

let test_levels_validation () =
  let _, flows = mixed_workload () in
  Alcotest.check_raises "levels too big"
    (Invalid_argument "Priority_assign.assign: levels outside 1..8") (fun () ->
      ignore
        (Analysis.Priority_assign.assign ~levels:9
           Analysis.Priority_assign.Deadline_monotonic flows))

(* ---------------- rerouting ---------------- *)

(* A diamond: two disjoint switch paths between the hosts, the second with
   more hops. *)
let diamond () =
  let topo = Network.Topology.create () in
  let a = Network.Topology.add_node topo ~name:"a" ~kind:Network.Node.Endhost in
  let b = Network.Topology.add_node topo ~name:"b" ~kind:Network.Node.Endhost in
  let s1 = Network.Topology.add_node topo ~name:"s1" ~kind:Network.Node.Switch in
  let s2 = Network.Topology.add_node topo ~name:"s2" ~kind:Network.Node.Switch in
  let s3 = Network.Topology.add_node topo ~name:"s3" ~kind:Network.Node.Switch in
  let rate_bps = 10_000_000 in
  Network.Topology.add_duplex_link topo ~a ~b:s1 ~rate_bps ~prop:0;
  Network.Topology.add_duplex_link topo ~a:s1 ~b ~rate_bps ~prop:0;
  Network.Topology.add_duplex_link topo ~a ~b:s2 ~rate_bps ~prop:0;
  Network.Topology.add_duplex_link topo ~a:s2 ~b:s3 ~rate_bps ~prop:0;
  Network.Topology.add_duplex_link topo ~a:s3 ~b ~rate_bps ~prop:0;
  (topo, a, b, s1)

let heavy_flow topo a b s1 id =
  (* ~49% of a 10 Mbit/s link each: two cannot share a path. *)
  Traffic.Flow.make ~id
    ~name:(Printf.sprintf "heavy%d" id)
    ~spec:
      (Gmf.Spec.make
         [
           Gmf.Frame_spec.make ~period:(Timeunit.ms 20)
             ~deadline:(Timeunit.ms 60) ~jitter:0 ~payload_bits:(8 * 12_000);
         ])
    ~encap:Ethernet.Encap.Udp
    ~route:(Network.Route.make topo [ a; s1; b ])
    ~priority:5

let test_rerouting_admits_on_detour () =
  let topo, a, b, s1 = diamond () in
  let f0 = heavy_flow topo a b s1 0 in
  let f1 = heavy_flow topo a b s1 1 in
  let base = Traffic.Scenario.make ~topo ~flows:[ f0 ] () in
  (* Fixed-route admission of the second heavy flow on the same path
     fails... *)
  Alcotest.(check bool) "fixed rejects" false
    (Analysis.Admission.admit base ~candidate:f1).Analysis.Admission.admitted;
  (* ...but rerouting finds the detour via s2/s3. *)
  let decision = Analysis.Rerouting.admit base ~candidate:f1 in
  Alcotest.(check bool) "rerouting admits" true
    decision.Analysis.Rerouting.admitted;
  (match decision.Analysis.Rerouting.route with
  | Some route ->
      Alcotest.(check bool) "on the detour" true
        (List.length (Network.Route.nodes route) = 4)
  | None -> Alcotest.fail "expected a route");
  Alcotest.(check bool) "took more than one attempt" true
    (decision.Analysis.Rerouting.attempts > 1)

let test_rerouting_prefers_own_route () =
  let topo, a, b, s1 = diamond () in
  let f0 = heavy_flow topo a b s1 0 in
  let empty = Traffic.Scenario.make ~topo ~flows:[] () in
  let decision = Analysis.Rerouting.admit empty ~candidate:f0 in
  Alcotest.(check bool) "admitted" true decision.Analysis.Rerouting.admitted;
  Alcotest.(check int) "first attempt" 1 decision.Analysis.Rerouting.attempts;
  match decision.Analysis.Rerouting.route with
  | Some route ->
      Alcotest.(check (list int)) "kept its own route" [ a; s1; b ]
        (Network.Route.nodes route)
  | None -> Alcotest.fail "expected a route"

let test_rerouting_greedy_beats_fixed () =
  let topo, a, b, s1 = diamond () in
  let candidates = List.init 3 (heavy_flow topo a b s1) in
  let fixed, _ = Analysis.Admission.admit_greedily ~topo ~switches:[] candidates in
  let rerouted, _ =
    Analysis.Rerouting.admit_greedily ~topo ~switches:[] candidates
  in
  Alcotest.(check int) "fixed admits 1" 1 (List.length fixed);
  Alcotest.(check int) "rerouting admits 2" 2 (List.length rerouted)

let tests =
  [
    Alcotest.test_case "deadline-monotonic order" `Quick
      test_deadline_monotonic_order;
    Alcotest.test_case "two levels" `Quick test_two_levels;
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "assignment preserves flows" `Quick
      test_assignment_preserves_everything_else;
    Alcotest.test_case "exhaustive is optimal" `Slow
      test_exhaustive_beats_policies;
    Alcotest.test_case "levels validation" `Quick test_levels_validation;
    Alcotest.test_case "rerouting: detour" `Quick test_rerouting_admits_on_detour;
    Alcotest.test_case "rerouting: own route first" `Quick
      test_rerouting_prefers_own_route;
    Alcotest.test_case "rerouting: greedy beats fixed" `Quick
      test_rerouting_greedy_beats_fixed;
  ]
