open Stride

let test_round_robin_order () =
  (* All tickets equal: stride scheduling collapses to round-robin, the
     configuration the paper assumes (Section 2.2). *)
  let s = Scheduler.round_robin ~ntasks:4 in
  let order = List.init 12 (fun _ -> Scheduler.select s) in
  Alcotest.(check (list int)) "cyclic order"
    [ 0; 1; 2; 3; 0; 1; 2; 3; 0; 1; 2; 3 ]
    order

let test_ticket_proportionality () =
  (* A ticket=2 task runs twice as often as a ticket=1 task (the paper's
     example). *)
  let s = Scheduler.create () in
  let heavy = Scheduler.add_task s ~tickets:2 in
  let light = Scheduler.add_task s ~tickets:1 in
  for _ = 1 to 300 do
    ignore (Scheduler.select s)
  done;
  Alcotest.(check int) "2:1 ratio" (2 * Scheduler.run_count s light)
    (Scheduler.run_count s heavy)

let test_three_way_ratio () =
  (* The 3:2:1 allocation from the Waldspurger-Weihl paper. *)
  let s = Scheduler.create () in
  let a = Scheduler.add_task s ~tickets:3 in
  let b = Scheduler.add_task s ~tickets:2 in
  let c = Scheduler.add_task s ~tickets:1 in
  for _ = 1 to 600 do
    ignore (Scheduler.select s)
  done;
  Alcotest.(check int) "a ran 300" 300 (Scheduler.run_count s a);
  Alcotest.(check int) "b ran 200" 200 (Scheduler.run_count s b);
  Alcotest.(check int) "c ran 100" 100 (Scheduler.run_count s c)

let test_pass_accounting () =
  let s = Scheduler.create () in
  let t = Scheduler.add_task s ~tickets:4 in
  let stride = Scheduler.stride_of s t in
  Alcotest.(check int) "stride = stride1/tickets" (Scheduler.stride1 / 4) stride;
  Alcotest.(check int) "initial pass = stride" stride (Scheduler.pass_of s t);
  ignore (Scheduler.select s);
  Alcotest.(check int) "pass advances by stride" (2 * stride)
    (Scheduler.pass_of s t)

let test_peek_vs_select () =
  let s = Scheduler.round_robin ~ntasks:2 in
  let p = Scheduler.peek s in
  Alcotest.(check int) "peek does not charge" p (Scheduler.peek s);
  Alcotest.(check int) "select returns peeked" p (Scheduler.select s);
  Alcotest.(check bool) "next differs" true (Scheduler.peek s <> p)

let test_reset () =
  let s = Scheduler.round_robin ~ntasks:3 in
  for _ = 1 to 7 do
    ignore (Scheduler.select s)
  done;
  Scheduler.reset s;
  Alcotest.(check int) "runs cleared" 0 (Scheduler.run_count s 0);
  Alcotest.(check int) "order restarts at 0" 0 (Scheduler.select s)

let test_validation () =
  let s = Scheduler.create () in
  Alcotest.check_raises "zero tickets"
    (Invalid_argument "Scheduler.add_task: non-positive tickets") (fun () ->
      ignore (Scheduler.add_task s ~tickets:0));
  Alcotest.check_raises "select with no tasks"
    (Invalid_argument "Scheduler.select: no tasks") (fun () ->
      ignore (Scheduler.select s));
  Alcotest.check_raises "empty round robin"
    (Invalid_argument "Scheduler.round_robin: no tasks") (fun () ->
      ignore (Scheduler.round_robin ~ntasks:0))

let prop_relative_error_bounded =
  (* Basic stride scheduling's absolute throughput error for any single task
     is O(n_tasks) quanta (Waldspurger & Weihl 1995, Section 3.3); with a
     single competing task it is at most one quantum. *)
  QCheck.Test.make ~name:"per-task allocation error bounded" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 5) (int_range 1 8))
        (int_range 1 400))
    (fun (tickets, steps) ->
      let tickets = List.map (fun t -> max 1 (min 8 t)) tickets in
      let s = Scheduler.create () in
      let ids = List.map (fun t -> (Scheduler.add_task s ~tickets:t, t)) tickets in
      let total = List.fold_left (fun acc t -> acc + t) 0 tickets in
      let bound = float_of_int (List.length tickets) in
      for _ = 1 to steps do
        ignore (Scheduler.select s)
      done;
      List.for_all
        (fun (id, t) ->
          let expected = float_of_int (steps * t) /. float_of_int total in
          let got = float_of_int (Scheduler.run_count s id) in
          Float.abs (got -. expected) <= bound +. 1e-9)
        ids)

let tests =
  [
    Alcotest.test_case "round-robin collapse" `Quick test_round_robin_order;
    Alcotest.test_case "2:1 tickets" `Quick test_ticket_proportionality;
    Alcotest.test_case "3:2:1 tickets" `Quick test_three_way_ratio;
    Alcotest.test_case "pass accounting" `Quick test_pass_accounting;
    Alcotest.test_case "peek vs select" `Quick test_peek_vs_select;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_relative_error_bounded;
  ]
