open Gmf_util

let frame ?(period = Timeunit.ms 30) ?(deadline = Timeunit.ms 100)
    ?(jitter = 0) ?(payload_bits = 8_000) () =
  Gmf.Frame_spec.make ~period ~deadline ~jitter ~payload_bits

let test_frame_spec_validation () =
  ignore (frame ());
  ignore (frame ~period:0 ());
  Alcotest.check_raises "negative period"
    (Invalid_argument "Frame_spec.make: negative period") (fun () ->
      ignore (frame ~period:(-1) ()));
  Alcotest.check_raises "zero deadline"
    (Invalid_argument "Frame_spec.make: non-positive deadline") (fun () ->
      ignore (frame ~deadline:0 ()));
  Alcotest.check_raises "negative jitter"
    (Invalid_argument "Frame_spec.make: negative jitter") (fun () ->
      ignore (frame ~jitter:(-1) ()));
  Alcotest.check_raises "negative payload"
    (Invalid_argument "Frame_spec.make: negative payload") (fun () ->
      ignore (frame ~payload_bits:(-1) ()))

let test_spec_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Spec.make: empty frame list")
    (fun () -> ignore (Gmf.Spec.make []));
  Alcotest.check_raises "zero cycle"
    (Invalid_argument "Spec.make: zero-length cycle (TSUM = 0)") (fun () ->
      ignore (Gmf.Spec.make [ frame ~period:0 () ]))

let three_frame_spec () =
  Gmf.Spec.make
    [
      frame ~period:(Timeunit.ms 10) ~jitter:(Timeunit.ms 1)
        ~payload_bits:1_000 ();
      frame ~period:(Timeunit.ms 20) ~jitter:(Timeunit.ms 2)
        ~payload_bits:2_000 ();
      frame ~period:(Timeunit.ms 30) ~jitter:0 ~payload_bits:3_000 ();
    ]

let test_spec_accessors () =
  let spec = three_frame_spec () in
  Alcotest.(check int) "n" 3 (Gmf.Spec.n spec);
  Alcotest.(check int) "tsum" (Timeunit.ms 60) (Gmf.Spec.tsum spec);
  Alcotest.(check int) "max_jitter" (Timeunit.ms 2) (Gmf.Spec.max_jitter spec);
  Alcotest.(check int) "min_period" (Timeunit.ms 10) (Gmf.Spec.min_period spec);
  Alcotest.(check (array int)) "periods"
    [| Timeunit.ms 10; Timeunit.ms 20; Timeunit.ms 30 |]
    (Gmf.Spec.periods spec);
  Alcotest.(check (array int)) "payloads" [| 1_000; 2_000; 3_000 |]
    (Gmf.Spec.payloads spec);
  (* Cyclic indexing. *)
  Alcotest.(check int) "frame 4 = frame 1" 2_000
    (Gmf.Spec.frame spec 4).Gmf.Frame_spec.payload_bits;
  Alcotest.check_raises "negative index"
    (Invalid_argument "Spec.frame: negative index") (fun () ->
      ignore (Gmf.Spec.frame spec (-1)))

let test_rotate () =
  let spec = three_frame_spec () in
  let rotated = Gmf.Spec.rotate spec 1 in
  Alcotest.(check int) "same tsum" (Gmf.Spec.tsum spec) (Gmf.Spec.tsum rotated);
  Alcotest.(check int) "frame 0 of rotation" 2_000
    (Gmf.Spec.frame rotated 0).Gmf.Frame_spec.payload_bits;
  Alcotest.(check bool) "rotate n = identity" true
    (Gmf.Spec.equal spec (Gmf.Spec.rotate spec 3))

let tests =
  [
    Alcotest.test_case "frame validation" `Quick test_frame_spec_validation;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "spec accessors" `Quick test_spec_accessors;
    Alcotest.test_case "rotation" `Quick test_rotate;
  ]
