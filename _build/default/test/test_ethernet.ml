open Ethernet

let test_constants () =
  (* Values stated explicitly in the paper, Section 3.1. *)
  Alcotest.(check int) "overhead = 304 bits" 304 Constants.eth_overhead_bits;
  Alcotest.(check int) "max frame = 12304 bits" 12_304
    Constants.eth_max_frame_bits;
  Alcotest.(check int) "frag data = 11840 bits" 11_840
    Constants.frag_data_bits;
  Alcotest.(check int) "ip header = 160 bits" 160 Constants.ip_header_bits;
  Alcotest.(check int) "udp header = 64 bits" 64 Constants.udp_header_bits;
  Alcotest.(check int) "rtp budget = 128 bits" 128 Constants.rtp_header_bits;
  Alcotest.(check int) "min frame = 672 bits" 672 Constants.eth_min_frame_bits

let test_encap_nbits () =
  (* nbits = ceil(S/8)*8 + 8*8 for UDP (paper eq in 3.1). *)
  Alcotest.(check int) "udp exact bytes" (800 + 64)
    (Encap.nbits Encap.Udp ~payload_bits:800);
  Alcotest.(check int) "udp rounds to bytes" (808 + 64)
    (Encap.nbits Encap.Udp ~payload_bits:801);
  Alcotest.(check int) "rtp adds 16 bytes" (800 + 64 + 128)
    (Encap.nbits Encap.Rtp_udp ~payload_bits:800);
  Alcotest.(check int) "zero payload still has headers" 64
    (Encap.nbits Encap.Udp ~payload_bits:0);
  Alcotest.check_raises "negative payload"
    (Invalid_argument "Encap.nbits: negative payload") (fun () ->
      ignore (Encap.nbits Encap.Udp ~payload_bits:(-1)))

let test_encap_header_bits () =
  Alcotest.(check int) "udp" 64 (Encap.header_bits Encap.Udp);
  Alcotest.(check int) "rtp/udp" 192 (Encap.header_bits Encap.Rtp_udp);
  Alcotest.(check bool) "equal" true (Encap.equal Encap.Udp Encap.Udp);
  Alcotest.(check bool) "not equal" false (Encap.equal Encap.Udp Encap.Rtp_udp)

let test_fragment_count () =
  Alcotest.(check int) "one bit -> one frame" 1 (Fragment.fragment_count ~nbits:1);
  Alcotest.(check int) "exactly full" 1 (Fragment.fragment_count ~nbits:11_840);
  Alcotest.(check int) "one over" 2 (Fragment.fragment_count ~nbits:11_841);
  Alcotest.(check int) "three full" 3
    (Fragment.fragment_count ~nbits:(3 * 11_840));
  Alcotest.check_raises "zero size"
    (Invalid_argument "Fragment.fragment_count: non-positive datagram size")
    (fun () -> ignore (Fragment.fragment_count ~nbits:0))

let test_fragment_wire_bits () =
  (* Full fragment costs the max frame. *)
  Alcotest.(check (list int)) "single full" [ 12_304 ]
    (Fragment.fragment_wire_bits ~nbits:11_840);
  (* Trailing fragment: data + IP header + overhead. *)
  Alcotest.(check (list int)) "full + trailer"
    [ 12_304; 1_000 + 160 + 304 ]
    (Fragment.fragment_wire_bits ~nbits:(11_840 + 1_000));
  (* Tiny trailing fragment padded to the Ethernet minimum. *)
  Alcotest.(check (list int)) "min-size trailer" [ 12_304; 672 ]
    (Fragment.fragment_wire_bits ~nbits:(11_840 + 8));
  (* Tiny datagram alone also padded. *)
  Alcotest.(check (list int)) "tiny datagram" [ 672 ]
    (Fragment.fragment_wire_bits ~nbits:64)

let test_mft () =
  (* Eq (1) at the worked example's 10 Mbit/s. *)
  Alcotest.(check int) "10 Mbit/s" 1_230_400 (Fragment.mft ~rate_bps:10_000_000);
  Alcotest.(check int) "100 Mbit/s" 123_040
    (Fragment.mft ~rate_bps:100_000_000);
  Alcotest.(check int) "1 Gbit/s" 12_304
    (Fragment.mft ~rate_bps:1_000_000_000)

let test_tx_time () =
  let rate_bps = 10_000_000 in
  (* One full frame = MFT. *)
  Alcotest.(check int) "full frame" 1_230_400
    (Fragment.tx_time ~nbits:11_840 ~rate_bps);
  (* Sum of per-fragment times. *)
  let per_frag = Fragment.fragment_tx_times ~nbits:20_000 ~rate_bps in
  Alcotest.(check int) "two fragments" 2 (List.length per_frag);
  Alcotest.(check int) "sum matches"
    (List.fold_left ( + ) 0 per_frag)
    (Fragment.tx_time ~nbits:20_000 ~rate_bps)

let prop_wire_total_vs_count =
  QCheck.Test.make ~name:"wire bits consistent with fragment count" ~count:500
    QCheck.(int_range 1 200_000)
    (fun nbits ->
      let frags = Fragment.fragment_wire_bits ~nbits in
      List.length frags = Fragment.fragment_count ~nbits
      && List.for_all
           (fun b ->
             b >= Ethernet.Constants.eth_min_frame_bits
             && b <= Ethernet.Constants.eth_max_frame_bits)
           frags)

let prop_wire_monotone =
  QCheck.Test.make ~name:"total wire bits monotone in datagram size"
    ~count:500
    QCheck.(pair (int_range 1 100_000) (int_range 0 100_000))
    (fun (nbits, extra) ->
      Fragment.total_wire_bits ~nbits
      <= Fragment.total_wire_bits ~nbits:(nbits + extra))

let prop_last_fragment_not_larger =
  QCheck.Test.make ~name:"every fragment except trailer is maximal" ~count:500
    QCheck.(int_range 1 300_000)
    (fun nbits ->
      match List.rev (Fragment.fragment_wire_bits ~nbits) with
      | [] -> false
      | _last :: firsts ->
          List.for_all (fun b -> b = Ethernet.Constants.eth_max_frame_bits) firsts)

let tests =
  [
    Alcotest.test_case "wire constants" `Quick test_constants;
    Alcotest.test_case "encap nbits" `Quick test_encap_nbits;
    Alcotest.test_case "encap headers" `Quick test_encap_header_bits;
    Alcotest.test_case "fragment count" `Quick test_fragment_count;
    Alcotest.test_case "fragment wire bits" `Quick test_fragment_wire_bits;
    Alcotest.test_case "MFT (eq 1)" `Quick test_mft;
    Alcotest.test_case "tx time" `Quick test_tx_time;
    QCheck_alcotest.to_alcotest prop_wire_total_vs_count;
    QCheck_alcotest.to_alcotest prop_wire_monotone;
    QCheck_alcotest.to_alcotest prop_last_fragment_not_larger;
  ]
