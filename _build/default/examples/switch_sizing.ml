(* Switch sizing with the Conclusions' multiprocessor construction.

   The paper observes that CIRC(N) - the time until a switch task is served
   again - "heavily influences the delay", and proposes assigning
   NINTERFACES/m interfaces to each of m processors.  This example plays
   hardware architect: given a port count and a link speed, find the
   smallest processor count whose CIRC keeps the egress task ahead of the
   link (CIRC < MFT) and quantify the delay impact on a reference workload.

   Run with:  dune exec examples/switch_sizing.exe *)

open Gmf_util

let divisors n = List.filter (fun m -> n mod m = 0) (List.init n succ)

let () =
  let ports = 48 in
  Printf.printf
    "sizing a %d-port software switch (CROUTE=2.7us, CSEND=1us per task)\n\n"
    ports;
  Printf.printf "%6s %12s %30s\n" "CPUs" "CIRC" "keeps a 1 Gbit/s link busy?";
  let mft_1g = Ethernet.Fragment.mft ~rate_bps:1_000_000_000 in
  List.iter
    (fun m ->
      let model = Click.Switch_model.make ~ninterfaces:ports ~processors:m () in
      let circ = Click.Switch_model.circ model in
      Printf.printf "%6d %12s %30s\n" m
        (Timeunit.to_string circ)
        (if circ < mft_1g then "yes (CIRC < MFT = 12.304us)" else "no"))
    (divisors ports);

  (* The paper's pick: 16 processors -> CIRC = 11.1us. *)
  let paper_pick = Click.Switch_model.make ~ninterfaces:ports ~processors:16 () in
  Printf.printf "\npaper's configuration: %s\n"
    (Format.asprintf "%a" Click.Switch_model.pp paper_pick);

  (* Delay impact: the Figure 1 workload with every switch replaced by a
     given model, at 1 Gbit/s. *)
  Printf.printf
    "\nvideo worst-case bound on the Figure 1 workload at 1 Gbit/s:\n";
  List.iter
    (fun m ->
      let model = Click.Switch_model.make ~ninterfaces:ports ~processors:m () in
      let base = Workload.Scenarios.fig1_videoconf ~rate_bps:1_000_000_000 () in
      let scenario =
        Traffic.Scenario.make
          ~switches:
            (List.map
               (fun n -> (n, model))
               (Traffic.Scenario.switch_nodes base))
          ~topo:(Traffic.Scenario.topo base)
          ~flows:(Traffic.Scenario.flows base)
          ()
      in
      let report = Analysis.Holistic.analyze scenario in
      let bound =
        if Analysis.Holistic.is_schedulable report then
          let video =
            List.find
              (fun r ->
                r.Analysis.Result_types.flow.Traffic.Flow.id
                = Workload.Scenarios.video_flow_id)
              report.Analysis.Holistic.results
          in
          Timeunit.to_string
            (Analysis.Result_types.worst_frame video).Analysis.Result_types.total
        else "unschedulable"
      in
      Printf.printf "  %2d CPUs (CIRC %8s): %s\n" m
        (Timeunit.to_string (Click.Switch_model.circ model))
        bound)
    [ 1; 2; 4; 8; 16; 48 ]
