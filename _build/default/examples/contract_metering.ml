(* Contract metering: from packet capture to admission decision.

   The analysis needs flows described in the GMF model, but an operator
   usually starts from a packet capture.  This example meters a noisy
   MPEG-like source, extracts the tightest GMF contract the capture
   respects, sanity-checks the contract against the original capture and
   against a single-resource EDF test, and finally runs the multihop
   admission controller on it.

   Run with:  dune exec examples/contract_metering.exe *)

open Gmf_util

let () =
  (* 1. Meter: 120 packets of a noisy MPEG source (9-packet GOP, ~30 ms
        cadence with up to 5 ms of extra spacing, sizes +/- 25%). *)
  let rng = Rng.create ~seed:7 in
  let trace = Workload.Contract.synthetic_mpeg_trace rng ~packets:120 () in
  Printf.printf "metered %d packets spanning %s\n" (List.length trace)
    (Timeunit.to_string (fst (List.nth trace (List.length trace - 1))));

  (* 2. Extract the tightest GMF contract with the encoder's GOP length. *)
  let spec =
    Workload.Contract.of_trace ~cycle:9 ~deadline:(Timeunit.ms 150) trace
  in
  Format.printf "extracted contract: %a@." Gmf.Spec.pp spec;
  Printf.printf "contract dominates the capture: %b\n"
    (Workload.Contract.respects spec trace);

  (* 3. Source-side sanity check: if the source node scheduled its own
        packets by deadline on a dedicated 100 Mbit/s uplink, would the
        contract be feasible there?  (Single-resource EDF test from the
        original GMF paper.) *)
  let uplink_cost (f : Gmf.Frame_spec.t) =
    Ethernet.Fragment.tx_time
      ~nbits:(Ethernet.Encap.nbits Ethernet.Encap.Udp
                ~payload_bits:f.payload_bits)
      ~rate_bps:100_000_000
  in
  let dbf_task = Gmf.Dbf.of_spec spec ~cost_of:uplink_cost in
  Printf.printf "uplink utilization %.4f; EDF-feasible on the uplink: %b\n"
    (Gmf.Dbf.utilization dbf_task)
    (Gmf.Dbf.edf_feasible ~horizon:(Timeunit.s 2) [ dbf_task ]);

  (* 4. Admission: the extracted flow plus an existing VoIP call through
        one switch. *)
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:3 ()
  in
  let camera =
    Traffic.Flow.make ~id:0 ~name:"metered-camera" ~spec
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(2) ])
      ~priority:5
  in
  let call =
    Traffic.Flow.make ~id:1 ~name:"call" ~spec:(Workload.Voip.g711_spec ())
      ~encap:Ethernet.Encap.Rtp_udp
      ~route:(Network.Route.make topo [ hosts.(1); sw; hosts.(2) ])
      ~priority:7
  in
  let base = Traffic.Scenario.make ~topo ~flows:[ call ] () in
  let decision = Analysis.Admission.admit base ~candidate:camera in
  Printf.printf "admission of the metered camera flow: %s\n"
    (if decision.Analysis.Admission.admitted then "ACCEPTED" else "REJECTED");
  List.iter
    (fun res ->
      let worst = Analysis.Result_types.worst_frame res in
      Printf.printf "  %-16s R <= %-12s D = %s\n"
        res.Analysis.Result_types.flow.Traffic.Flow.name
        (Timeunit.to_string worst.Analysis.Result_types.total)
        (Timeunit.to_string worst.Analysis.Result_types.deadline))
    decision.Analysis.Admission.report.Analysis.Holistic.results
