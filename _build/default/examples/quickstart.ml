(* Quickstart: describe a flow in the generalized multiframe model, bound
   its end-to-end response time through one software Ethernet switch, and
   cross-check the bound against the discrete-event simulator.

   Run with:  dune exec examples/quickstart.exe *)

open Gmf_util

let () =
  (* 1. A network: two PCs connected by one software Ethernet switch over
        100 Mbit/s links with 5 us propagation delay each. *)
  let topo = Network.Topology.create () in
  let pc_a = Network.Topology.add_node topo ~name:"pc-a" ~kind:Network.Node.Endhost in
  let pc_b = Network.Topology.add_node topo ~name:"pc-b" ~kind:Network.Node.Endhost in
  let sw = Network.Topology.add_node topo ~name:"switch" ~kind:Network.Node.Switch in
  let rate_bps = 100_000_000 and prop = Timeunit.us 5 in
  Network.Topology.add_duplex_link topo ~a:pc_a ~b:sw ~rate_bps ~prop;
  Network.Topology.add_duplex_link topo ~a:pc_b ~b:sw ~rate_bps ~prop;

  (* 2. A GMF flow: a small video stream sending a 30 kB key frame then two
        6 kB delta frames, every 33 ms each, all due within 120 ms. *)
  let frame payload_bytes =
    Gmf.Frame_spec.make ~period:(Timeunit.ms 33) ~deadline:(Timeunit.ms 120)
      ~jitter:(Timeunit.ms 1) ~payload_bits:(8 * payload_bytes)
  in
  let spec = Gmf.Spec.make [ frame 30_000; frame 6_000; frame 6_000 ] in
  let video =
    Traffic.Flow.make ~id:0 ~name:"video" ~spec ~encap:Ethernet.Encap.Rtp_udp
      ~route:(Network.Route.make topo [ pc_a; sw; pc_b ])
      ~priority:5
  in

  (* 3. A competing VoIP flow sharing the switch egress at higher priority. *)
  let voip =
    Traffic.Flow.make ~id:1 ~name:"voip" ~spec:(Workload.Voip.g711_spec ())
      ~encap:Ethernet.Encap.Rtp_udp
      ~route:(Network.Route.make topo [ pc_a; sw; pc_b ])
      ~priority:7
  in

  let scenario = Traffic.Scenario.make ~topo ~flows:[ video; voip ] () in

  (* 4. Analysis: holistic response-time bounds. *)
  let report = Analysis.Holistic.analyze scenario in
  Format.printf "verdict: %a@." Analysis.Holistic.pp_verdict
    report.Analysis.Holistic.verdict;
  List.iter
    (fun res ->
      let worst = Analysis.Result_types.worst_frame res in
      Printf.printf "  %-6s worst-case end-to-end bound %-10s (deadline %s)\n"
        res.Analysis.Result_types.flow.Traffic.Flow.name
        (Timeunit.to_string worst.Analysis.Result_types.total)
        (Timeunit.to_string worst.Analysis.Result_types.deadline))
    report.Analysis.Holistic.results;

  (* 5. Simulation: observe actual worst responses over 2 s of traffic. *)
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 2 }
      scenario
  in
  List.iter
    (fun flow ->
      match
        Sim.Collector.max_response_flow sim.Sim.Netsim.collector
          ~flow:flow.Traffic.Flow.id
      with
      | Some observed ->
          Printf.printf "  %-6s worst observed in simulation %s\n"
            flow.Traffic.Flow.name
            (Timeunit.to_string observed)
      | None -> ())
    (Traffic.Scenario.flows scenario)
