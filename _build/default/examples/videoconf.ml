(* Video conferencing on the paper's example network (Figures 1-3).

   Walks the exact setting of the paper: the Figure 1 topology, the Figure 3
   MPEG stream on the Figure 2 route, competing audio/VoIP/bulk flows — then
   acts as the network operator's admission controller when a new
   conference call asks to join.

   Run with:  dune exec examples/videoconf.exe *)

open Gmf_util

let () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  Format.printf "%a@." Traffic.Scenario.pp scenario;

  (* The operator's first question: does the current flow set meet all
     deadlines? *)
  let report = Analysis.Holistic.analyze scenario in
  Format.printf "current flow set: %a@." Analysis.Holistic.pp_verdict
    report.Analysis.Holistic.verdict;
  List.iter
    (fun res ->
      let worst = Analysis.Result_types.worst_frame res in
      Printf.printf "  %-12s R <= %-12s D = %s\n"
        res.Analysis.Result_types.flow.Traffic.Flow.name
        (Timeunit.to_string worst.Analysis.Result_types.total)
        (Timeunit.to_string worst.Analysis.Result_types.deadline))
    report.Analysis.Holistic.results;

  (* A new conference call between endhosts 1 and 2 asks to join: one video
     flow and one audio flow, as in Section 2.1.  Test them one by one, as
     an admission controller would. *)
  let topo = Traffic.Scenario.topo scenario in
  let new_audio =
    Traffic.Flow.make ~id:10 ~name:"audio:1->2"
      ~spec:(Workload.Voip.g711_spec ()) ~encap:Ethernet.Encap.Rtp_udp
      ~route:(Network.Route.make topo [ 1; 4; 5; 2 ])
      ~priority:6
  in
  let new_video =
    Traffic.Flow.make ~id:11 ~name:"video:1->2" ~spec:Workload.Mpeg.fig3_spec
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo [ 1; 4; 5; 2 ])
      ~priority:5
  in
  let try_admit label candidate =
    let decision = Analysis.Admission.admit scenario ~candidate in
    Printf.printf "admit %-12s -> %s\n" label
      (if decision.Analysis.Admission.admitted then "ACCEPTED" else "REJECTED")
  in
  try_admit "audio call" new_audio;
  try_admit "video call" new_video;

  (* The full conference (audio + video together). *)
  let both =
    Traffic.Scenario.make ~topo
      ~flows:(Traffic.Scenario.flows scenario @ [ new_audio; new_video ])
      ()
  in
  let decision = Analysis.Admission.check both in
  Printf.printf "admit full conference (audio+video) -> %s\n"
    (if decision.Analysis.Admission.admitted then "ACCEPTED" else "REJECTED");

  (* If the 10 Mbit/s edge cannot carry a second conference, a 100 Mbit/s
     upgrade can - re-run the same question on faster links. *)
  let upgraded_base = Workload.Scenarios.fig1_videoconf ~rate_bps:100_000_000 () in
  let utopo = Traffic.Scenario.topo upgraded_base in
  let re_route flow =
    Traffic.Flow.make ~id:flow.Traffic.Flow.id ~name:flow.Traffic.Flow.name
      ~spec:flow.Traffic.Flow.spec ~encap:flow.Traffic.Flow.encap
      ~route:
        (Network.Route.make utopo
           (Network.Route.nodes flow.Traffic.Flow.route))
      ~priority:flow.Traffic.Flow.priority
  in
  let upgraded =
    Traffic.Scenario.make ~topo:utopo
      ~flows:
        (Traffic.Scenario.flows upgraded_base
        @ [ re_route new_audio; re_route new_video ])
      ()
  in
  let decision = Analysis.Admission.check upgraded in
  Printf.printf "same conference after 100 Mbit/s upgrade -> %s\n"
    (if decision.Analysis.Admission.admitted then "ACCEPTED" else "REJECTED")
