examples/quickstart.mli:
