examples/switch_sizing.mli:
