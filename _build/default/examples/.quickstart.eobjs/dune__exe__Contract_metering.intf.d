examples/contract_metering.mli:
