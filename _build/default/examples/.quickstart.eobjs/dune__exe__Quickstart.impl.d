examples/quickstart.ml: Analysis Ethernet Format Gmf Gmf_util List Network Printf Sim Timeunit Traffic Workload
