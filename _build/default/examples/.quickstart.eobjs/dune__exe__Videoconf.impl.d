examples/videoconf.ml: Analysis Ethernet Format Gmf_util List Network Printf Timeunit Traffic Workload
