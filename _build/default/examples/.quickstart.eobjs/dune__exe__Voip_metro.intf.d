examples/voip_metro.mli:
