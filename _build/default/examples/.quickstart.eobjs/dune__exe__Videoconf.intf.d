examples/videoconf.mli:
