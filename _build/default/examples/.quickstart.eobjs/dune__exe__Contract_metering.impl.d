examples/contract_metering.ml: Analysis Array Ethernet Format Gmf Gmf_util List Network Printf Rng Timeunit Traffic Workload
