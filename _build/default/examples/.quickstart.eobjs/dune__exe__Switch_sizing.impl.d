examples/switch_sizing.ml: Analysis Click Ethernet Format Gmf_util List Printf Timeunit Traffic Workload
