examples/voip_metro.ml: Analysis Array Ethernet Fun Gmf Gmf_util List Network Option Printf Sim Timeunit Traffic Workload
