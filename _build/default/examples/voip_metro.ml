(* Voice-over-IP across a metropolitan access chain - the setting that
   motivates the paper's introduction (the Region Skane incident: VoIP used
   in medical care suffering uncontrolled network delays).

   A hospital's calls traverse a chain of software Ethernet switches shared
   with bulk data transfers.  The operator must (a) give each call a
   150 ms guarantee, (b) find how many simultaneous calls the chain
   supports, and (c) show that 802.1p priorities - not luck - protect the
   calls from the bulk traffic.

   Run with:  dune exec examples/voip_metro.exe *)

open Gmf_util

let switches = 4
let rate_bps = 100_000_000

let build_scenario ~calls =
  let topo, hosts, sw =
    Workload.Topologies.line ~rate_bps ~hosts_per_switch:3 ~switches ()
  in
  let last = switches - 1 in
  (* Every call runs end to end across the whole chain. *)
  let call id =
    Traffic.Flow.make ~id
      ~name:(Printf.sprintf "call%d" id)
      ~spec:(Workload.Voip.g711_spec ())
      ~encap:Ethernet.Encap.Rtp_udp
      ~route:
        (Network.Route.make topo
           ((hosts.(0).(0) :: Array.to_list sw) @ [ hosts.(last).(0) ]))
      ~priority:7
  in
  (* Bulk backup traffic crosses every inter-switch link at low priority:
     1 MB-per-100ms file transfer bursts. *)
  let bulk_spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 100)
          ~deadline:(Timeunit.ms 500) ~jitter:(Timeunit.ms 5)
          ~payload_bits:(8 * 500_000);
      ]
  in
  (* Two bulk sources per segment: their combined inflow exceeds the trunk
     link, so the egress queue towards the next switch actually builds up
     and the 802.1p scheduling decision matters. *)
  let bulk id src_sw src_host =
    Traffic.Flow.make ~id
      ~name:(Printf.sprintf "backup%d_%d" src_sw src_host)
      ~spec:bulk_spec ~encap:Ethernet.Encap.Udp
      ~route:
        (Network.Route.make topo
           [ hosts.(src_sw).(src_host); sw.(src_sw); sw.(src_sw + 1);
             hosts.(src_sw + 1).(src_host) ])
      ~priority:0
  in
  let calls_flows = List.init calls call in
  let bulk_flows =
    List.concat_map
      (fun s -> [ bulk (100_000 + (2 * s)) s 1; bulk (100_001 + (2 * s)) s 2 ])
      (List.init (switches - 1) Fun.id)
  in
  Traffic.Scenario.make ~topo ~flows:(calls_flows @ bulk_flows) ()

let () =
  (* (a) one call among the bulk transfers. *)
  let scenario = build_scenario ~calls:1 in
  let report = Analysis.Holistic.analyze scenario in
  let call0 =
    List.find
      (fun r -> r.Analysis.Result_types.flow.Traffic.Flow.id = 0)
      report.Analysis.Holistic.results
  in
  let worst = Analysis.Result_types.worst_frame call0 in
  Printf.printf
    "one call across %d switches with bulk cross traffic:\n\
    \  guaranteed delay <= %s (target 150ms) -> %s\n"
    switches
    (Timeunit.to_string worst.Analysis.Result_types.total)
    (if Analysis.Result_types.meets_deadline worst then "guarantee holds"
     else "guarantee FAILS");

  (* (b) capacity search: largest call count that stays schedulable. *)
  let rec capacity calls =
    if calls > 512 then calls - 1
    else if
      Analysis.Holistic.is_schedulable
        (Analysis.Holistic.analyze (build_scenario ~calls))
    then capacity (calls * 2)
    else begin
      (* binary refine between calls/2 (ok) and calls (too many) *)
      let rec refine lo hi =
        if hi - lo <= 1 then lo
        else
          let mid = (lo + hi) / 2 in
          if
            Analysis.Holistic.is_schedulable
              (Analysis.Holistic.analyze (build_scenario ~calls:mid))
          then refine mid hi
          else refine lo mid
      in
      refine (calls / 2) calls
    end
  in
  let max_calls = capacity 1 in
  Printf.printf "capacity with guarantees: %d simultaneous calls\n" max_calls;

  (* (c) the guarantee is due to 802.1p, and the simulator agrees: observe
     a call's delay with priorities on, then with the call demoted to the
     bulk class. *)
  let observe scenario =
    let sim =
      Sim.Netsim.run
        ~config:{ Sim.Sim_config.default with duration = Timeunit.s 2 }
        scenario
    in
    Option.value ~default:0
      (Sim.Collector.max_response_flow sim.Sim.Netsim.collector ~flow:0)
  in
  let prioritized = observe (build_scenario ~calls:1) in
  let demoted =
    let base = build_scenario ~calls:1 in
    let topo = Traffic.Scenario.topo base in
    let flows =
      List.map
        (fun f ->
          if f.Traffic.Flow.id = 0 then
            Traffic.Flow.make ~id:0 ~name:f.Traffic.Flow.name
              ~spec:f.Traffic.Flow.spec ~encap:f.Traffic.Flow.encap
              ~route:
                (Network.Route.make topo (Network.Route.nodes f.Traffic.Flow.route))
              ~priority:0
          else f)
        (Traffic.Scenario.flows base)
    in
    observe (Traffic.Scenario.make ~topo ~flows ())
  in
  Printf.printf
    "simulated worst call delay: %s with 802.1p priority, %s without\n"
    (Timeunit.to_string prioritized)
    (Timeunit.to_string demoted)
