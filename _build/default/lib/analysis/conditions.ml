type check = {
  flow_id : Traffic.Flow.id;
  flow_name : string;
  stage : Stage.t;
  utilization : float;
  satisfied : bool;
}

let make_check flow stage utilization =
  {
    flow_id = flow.Traffic.Flow.id;
    flow_name = flow.Traffic.Flow.name;
    stage;
    utilization;
    satisfied = utilization < 1.0;
  }

let check_flow ctx ~flow =
  let condition stage =
    let utilization =
      match stage with
      | Stage.First_link _ -> First_hop.utilization_condition ctx ~flow
      | Stage.Ingress node -> Ingress.utilization_condition ctx ~flow ~node
      | Stage.Egress (node, _) -> Egress.utilization_condition ctx ~flow ~node
    in
    make_check flow stage utilization
  in
  List.map condition (Stage.stages_of_route flow.Traffic.Flow.route)

let check_all ctx =
  Traffic.Scenario.flows (Ctx.scenario ctx)
  |> List.concat_map (fun flow -> check_flow ctx ~flow)

let all_satisfied checks = List.for_all (fun c -> c.satisfied) checks

let worst = function
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc c -> if c.utilization > acc.utilization then c else acc)
           first rest)

let pp_check fmt c =
  Format.fprintf fmt "%s at %a: U=%.4f %s" c.flow_name Stage.pp c.stage
    c.utilization
    (if c.satisfied then "ok" else "VIOLATED")
