(** First-hop analysis (paper Section 3.2, eqs 14–20).

    The source node is an IP endhost or router whose queuing discipline the
    network operator does not control, so the only assumption is that it is
    work-conserving.  Consequently {e every} flow sharing the first link
    interferes regardless of priority:

    - busy period (eqs 14–15):
      [t = sum over j in flows(S, succ) of MX(tau_j, t + extra_j)],
      seeded with the frame's own transmission time (repair R1);
    - queuing time of the qth instance (eqs 16–17):
      [w(q) = q*CSUM_i + sum over j <> i of MX(tau_j, w(q) + extra_j)];
    - response (eqs 18–19):
      [R = max_q (w(q) - q*TSUM_i + C_i^k) + prop(S, succ)]. *)

val analyze :
  Ctx.t ->
  flow:Traffic.Flow.t ->
  frame:int ->
  (Result_types.stage_response, Result_types.failure) result
(** [analyze ctx ~flow ~frame] bounds the first-hop response of GMF frame
    [frame].  Raises [Invalid_argument] if [frame] is out of range. *)

val utilization_condition : Ctx.t -> flow:Traffic.Flow.t -> float
(** Left side of eq (20): total utilization of the first link by all flows
    crossing it.  The analysis is guaranteed to converge when this is
    strictly below 1. *)
