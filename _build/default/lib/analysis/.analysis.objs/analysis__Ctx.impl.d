lib/analysis/ctx.ml: Array Config Gmf Hashtbl Jitter_state List Network Stage Traffic
