lib/analysis/report_io.mli: Holistic
