lib/analysis/admission.mli: Click Config Holistic Network Traffic
