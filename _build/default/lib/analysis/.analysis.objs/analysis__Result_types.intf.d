lib/analysis/result_types.mli: Format Gmf_util Stage Traffic
