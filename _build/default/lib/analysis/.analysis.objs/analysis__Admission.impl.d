lib/analysis/admission.ml: Holistic List Traffic
