lib/analysis/pipeline.mli: Ctx Result_types Traffic
