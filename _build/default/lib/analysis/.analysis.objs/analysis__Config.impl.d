lib/analysis/config.ml: Format Gmf_util Timeunit
