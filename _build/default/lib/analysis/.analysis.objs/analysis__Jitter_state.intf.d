lib/analysis/jitter_state.mli: Gmf_util Stage Traffic
