lib/analysis/conditions.ml: Ctx Egress First_hop Format Ingress List Stage Traffic
