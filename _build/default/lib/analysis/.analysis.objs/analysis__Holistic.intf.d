lib/analysis/holistic.mli: Config Ctx Format Result_types Traffic
