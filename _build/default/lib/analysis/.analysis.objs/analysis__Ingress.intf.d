lib/analysis/ingress.mli: Ctx Network Result_types Traffic
