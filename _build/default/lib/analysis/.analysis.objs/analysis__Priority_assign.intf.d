lib/analysis/priority_assign.mli: Click Config Gmf_util Network Traffic
