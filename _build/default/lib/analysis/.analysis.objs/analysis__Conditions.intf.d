lib/analysis/conditions.mli: Ctx Format Stage Traffic
