lib/analysis/egress.mli: Ctx Network Result_types Traffic
