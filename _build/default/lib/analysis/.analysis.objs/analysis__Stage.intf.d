lib/analysis/stage.mli: Format Network
