lib/analysis/ingress.ml: Array Config Ctx Gmf List Network Stage Stage_common Traffic
