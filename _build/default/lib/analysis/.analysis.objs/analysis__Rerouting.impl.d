lib/analysis/rerouting.ml: Holistic List Network Traffic
