lib/analysis/stage_common.mli: Ctx Gmf_util Result_types Stage Traffic
