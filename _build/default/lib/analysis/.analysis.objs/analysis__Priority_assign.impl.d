lib/analysis/priority_assign.ml: Array Ethernet Gmf Holistic List Result_types Traffic
