lib/analysis/fixpoint.ml: Format Gmf_util Printf Timeunit
