lib/analysis/first_hop.mli: Ctx Result_types Traffic
