lib/analysis/result_types.ml: Array Format Gmf_util List Stage Timeunit Traffic
