lib/analysis/first_hop.ml: Array Ctx Gmf List Network Stage Stage_common Traffic
