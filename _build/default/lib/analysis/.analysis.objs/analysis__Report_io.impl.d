lib/analysis/report_io.ml: Array Buffer Format Holistic List Printf Result_types Stage String Traffic
