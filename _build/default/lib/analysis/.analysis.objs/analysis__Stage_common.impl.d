lib/analysis/stage_common.ml: Array Config Ctx Fixpoint Gmf_util Printf Result_types Timeunit Traffic
