lib/analysis/config.mli: Format Gmf_util
