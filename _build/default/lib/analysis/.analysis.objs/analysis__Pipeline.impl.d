lib/analysis/pipeline.ml: Array Click Config Ctx Egress First_hop Gmf Ingress List Network Option Result_types Stage Traffic
