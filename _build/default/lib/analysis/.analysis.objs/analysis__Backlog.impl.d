lib/analysis/backlog.ml: Array Ctx Ethernet Format Holistic List Network Result_types Stage Traffic
