lib/analysis/sensitivity.ml: Holistic
