lib/analysis/stage.ml: Format Hashtbl List Network Stdlib
