lib/analysis/fixpoint.mli: Format Gmf_util
