lib/analysis/backlog.mli: Ctx Format Holistic Network
