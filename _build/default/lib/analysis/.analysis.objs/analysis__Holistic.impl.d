lib/analysis/holistic.ml: Array Config Ctx Format Gmf_util Jitter_state List Pipeline Result_types Traffic
