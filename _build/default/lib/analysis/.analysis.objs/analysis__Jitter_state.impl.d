lib/analysis/jitter_state.ml: Gmf_util Hashtbl Option Stage Timeunit Traffic
