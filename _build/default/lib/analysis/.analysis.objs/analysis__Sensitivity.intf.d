lib/analysis/sensitivity.mli: Config Traffic
