lib/analysis/ctx.mli: Config Gmf_util Jitter_state Network Stage Traffic
