lib/analysis/rerouting.mli: Click Config Holistic Network Traffic
