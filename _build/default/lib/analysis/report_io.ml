let sanitize name =
  String.map (fun c -> if c = ',' || c = '\n' then '_' else c) name

let frame_csv report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "flow_id,flow_name,priority,frame,bound_ns,deadline_ns,slack_ns,meets\n";
  List.iter
    (fun res ->
      let flow = res.Result_types.flow in
      Array.iter
        (fun (fr : Result_types.frame_result) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%s,%d,%d,%d,%d,%d,%b\n" flow.Traffic.Flow.id
               (sanitize flow.Traffic.Flow.name)
               flow.Traffic.Flow.priority fr.Result_types.frame
               fr.Result_types.total fr.Result_types.deadline
               (Result_types.slack fr)
               (Result_types.meets_deadline fr)))
        res.Result_types.frames)
    report.Holistic.results;
  Buffer.contents buf

let stage_csv report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "flow_id,flow_name,frame,stage,response_ns,busy_ns,q\n";
  List.iter
    (fun res ->
      let flow = res.Result_types.flow in
      Array.iter
        (fun (fr : Result_types.frame_result) ->
          List.iter
            (fun (sr : Result_types.stage_response) ->
              Buffer.add_string buf
                (Printf.sprintf "%d,%s,%d,%s,%d,%d,%d\n" flow.Traffic.Flow.id
                   (sanitize flow.Traffic.Flow.name)
                   fr.Result_types.frame
                   (Format.asprintf "%a" Stage.pp sr.Result_types.stage)
                   sr.Result_types.response sr.Result_types.busy_len
                   sr.Result_types.q_count))
            fr.Result_types.stages)
        res.Result_types.frames)
    report.Holistic.results;
  Buffer.contents buf

let verdict_line report =
  Format.asprintf "verdict,%a,rounds,%d" Holistic.pp_verdict
    report.Holistic.verdict report.Holistic.rounds
