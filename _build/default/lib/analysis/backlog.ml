type queue_bound = {
  node : Network.Node.id;
  peer : Network.Node.id;
  frames : int;
  bits : int;
}

let pp_queue_bound fmt b =
  Format.fprintf fmt "queue(%d<->%d): <=%d frames (%d bits)" b.node b.peer
    b.frames b.bits

(* Worst per-flow stage response at [stage] across the flow's frames, read
   from the holistic report. *)
let stage_response report flow stage =
  let result =
    List.find_opt
      (fun r -> r.Result_types.flow.Traffic.Flow.id = flow.Traffic.Flow.id)
      report.Holistic.results
  in
  match result with
  | None -> None
  | Some r ->
      Array.to_list r.Result_types.frames
      |> List.concat_map (fun fr -> fr.Result_types.stages)
      |> List.filter_map (fun (sr : Result_types.stage_response) ->
             if Stage.equal sr.Result_types.stage stage then
               Some sr.Result_types.response
             else None)
      |> function
      | [] -> None
      | responses -> Some (List.fold_left max 0 responses)

let schedulable_or_error report =
  match report.Holistic.verdict with
  | Holistic.Schedulable | Holistic.Deadline_miss _ -> Ok ()
  | v ->
      Error
        (Format.asprintf
           "backlog bounds need converged response times, but the analysis \
            reported: %a"
           Holistic.pp_verdict v)

(* Generic: for every (switch, peer, stage, counting link) triple gather the
   flows and sum their NX over residence + jitter. *)
let bounds_for ctx report ~queues =
  match schedulable_or_error report with
  | Error _ as e -> e
  | Ok () ->
      let scenario = Ctx.scenario ctx in
      Ok
        (List.map
           (fun (node, peer, stage, (count_src, count_dst)) ->
             let flows =
               Traffic.Scenario.flows_on scenario ~src:count_src
                 ~dst:count_dst
             in
             let frames =
               List.fold_left
                 (fun acc flow ->
                   match stage_response report flow stage with
                   | None -> acc
                   | Some residence ->
                       let extra = Ctx.extra ctx flow ~stage in
                       acc
                       + Ctx.nx ctx flow ~src:count_src ~dst:count_dst
                           ~dt:(residence + extra))
                 0 flows
             in
             {
               node;
               peer;
               frames;
               bits = frames * Ethernet.Constants.eth_max_frame_bits;
             })
           queues)

let dedup_queues keys =
  List.sort_uniq compare keys

let egress_bounds ctx report =
  let scenario = Ctx.scenario ctx in
  let queues =
    Traffic.Scenario.flows scenario
    |> List.concat_map (fun flow ->
           Network.Route.intermediate_switches flow.Traffic.Flow.route
           |> List.map (fun n ->
                  (n, Network.Route.succ flow.Traffic.Flow.route n)))
    |> dedup_queues
    |> List.map (fun (n, d) -> (n, d, Stage.Egress (n, d), (n, d)))
  in
  bounds_for ctx report ~queues

let ingress_bounds ctx report =
  let scenario = Ctx.scenario ctx in
  let queues =
    Traffic.Scenario.flows scenario
    |> List.concat_map (fun flow ->
           Network.Route.intermediate_switches flow.Traffic.Flow.route
           |> List.map (fun n ->
                  (n, Network.Route.prec flow.Traffic.Flow.route n)))
    |> dedup_queues
    |> List.map (fun (n, p) -> (n, p, Stage.Ingress n, (p, n)))
  in
  bounds_for ctx report ~queues
