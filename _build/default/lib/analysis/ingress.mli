(** Ingress-stage analysis: reception at a switch until enqueueing in the
    outgoing priority queue (paper Section 3.3, eqs 21–27).

    Inside switch [N] one round-robin-scheduled software task serves the NIC
    FIFO of the interface towards prec(tau_i, N); it is serviced once every
    CIRC(N) and moves one Ethernet frame per service.  The NIC FIFO is
    priority-blind, so every flow arriving over the same incoming link
    interferes; interference is counted in Ethernet frames via NX
    (eqs 12–13) and each frame costs one CIRC(N) rotation:

    - busy period (eqs 21–22):
      [t = (sum over j in flows(prec, N) of NX(tau_j, t + extra_j)) * CIRC];
    - queuing time (eqs 23–24, Faithful):
      [w(q) = q*CIRC + (sum over j <> i of NX(tau_j, w(q)+extra_j)) * CIRC];
      the Repaired variant charges the analyzed flow's own Ethernet frames,
      [w(q) = (q*NSUM_i + m_i^k - 1)*CIRC + interference] (repair R2);
    - response (eqs 25–26): [R = max_q (w(q) - q*TSUM_i + CIRC)]. *)

val analyze :
  Ctx.t ->
  flow:Traffic.Flow.t ->
  node:Network.Node.id ->
  frame:int ->
  (Result_types.stage_response, Result_types.failure) result
(** [analyze ctx ~flow ~node ~frame] bounds the ingress response at switch
    [node].  Raises [Invalid_argument] if [frame] is out of range or [node]
    is not an intermediate switch of the flow's route. *)

val utilization_condition :
  Ctx.t -> flow:Traffic.Flow.t -> node:Network.Node.id -> float
(** Analogue of eq (20) for the ingress task: sum over flows of the incoming
    link of [NSUM_j * CIRC(N) / TSUM_j].  Below 1, the task keeps up. *)
