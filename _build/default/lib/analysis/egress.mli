(** Egress-stage analysis: from the priority queue of a switch until
    reception at the next node (paper Section 3.4, eqs 28–35).

    The output queue is static-priority (IEEE 802.1p) at Ethernet-frame
    granularity, so the interference set is hep(tau_i, N) — flows of equal
    or higher priority on the same output link (eq 2).  Two additional
    effects are modeled:

    - {b blocking}: one maximal lower-priority Ethernet frame may already be
      in transmission — the MFT term seeding eq (28) and opening eqs
      (30)–(31);
    - {b stride-scheduling granularity}: the send task only moves a frame to
      the NIC once per CIRC(N) rotation, so every interfering Ethernet frame
      additionally costs one CIRC(N) — the NX * CIRC terms of eqs (29) and
      (31).

    Recurrences:
    - busy period (eqs 28–29):
      [t = MFT + sum over hep+self of MX(tau_j, t+extra_j)
           + (sum over hep+self of NX(tau_j, t+extra_j)) * CIRC];
    - queuing time (eqs 30–31):
      [w(q) = MFT + q*CSUM_i + sum over hep of MX(...) + NX(...)*CIRC];
      the Repaired variant adds the flow's own rotations,
      [(q*NSUM_i + m_i^k) * CIRC] (repair R2);
    - response (eqs 32–33):
      [R = max_q (w(q) - q*TSUM_i + C_i^k) + prop(N, succ)]. *)

val analyze :
  Ctx.t ->
  flow:Traffic.Flow.t ->
  node:Network.Node.id ->
  frame:int ->
  (Result_types.stage_response, Result_types.failure) result
(** [analyze ctx ~flow ~node ~frame] bounds the egress response at switch
    [node] towards succ(tau_i, node).  Raises [Invalid_argument] if [frame]
    is out of range or [node] is not an intermediate switch of the route. *)

val utilization_condition :
  Ctx.t -> flow:Traffic.Flow.t -> node:Network.Node.id -> float
(** Left side of eqs (34)–(35): utilization of the output link by
    hep(tau_i, node) plus the flow itself.  The analysis cannot converge
    when this reaches 1 (eq 34) and may converge below it (eq 35). *)
