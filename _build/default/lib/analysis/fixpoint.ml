open Gmf_util

type outcome = Converged of Timeunit.ns | Diverged of string

let iterate ~f ~seed ~max_iters ~horizon =
  if max_iters <= 0 then invalid_arg "Fixpoint.iterate: non-positive cap";
  if seed < 0 then invalid_arg "Fixpoint.iterate: negative seed";
  let rec go t iters =
    if t > horizon then
      Diverged
        (Printf.sprintf "exceeded horizon (%s)" (Timeunit.to_string horizon))
    else if iters >= max_iters then
      Diverged (Printf.sprintf "no fixed point after %d iterations" max_iters)
    else begin
      let t' = f t in
      if t' = t then Converged t else go t' (iters + 1)
    end
  in
  go seed 0

let map o g = match o with Converged t -> Converged (g t) | d -> d

let pp fmt = function
  | Converged t -> Format.fprintf fmt "converged(%a)" Timeunit.pp t
  | Diverged msg -> Format.fprintf fmt "diverged(%s)" msg
