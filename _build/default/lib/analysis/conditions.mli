(** Convergence / feasibility conditions (eqs 20, 34–35 and the ingress
    analogue), evaluated per stage of every flow.

    These are reporting helpers: the fixed points themselves are guarded by
    iteration caps, but the conditions explain {e why} an analysis diverged
    and power experiment E6. *)

type check = {
  flow_id : Traffic.Flow.id;
  flow_name : string;
  stage : Stage.t;
  utilization : float;
      (** Interfering utilization at the stage, including the flow itself:
          eq (20) for first links, eqs (34)–(35) for egress queues, and
          the NSUM*CIRC/TSUM analogue for ingress tasks. *)
  satisfied : bool;  (** [utilization < 1]. *)
}

val check_flow : Ctx.t -> flow:Traffic.Flow.t -> check list
(** Conditions for every stage of one flow's route. *)

val check_all : Ctx.t -> check list
(** Conditions for every stage of every flow. *)

val all_satisfied : check list -> bool

val worst : check list -> check option
(** The check with the highest utilization. *)

val pp_check : Format.formatter -> check -> unit
