(** Machinery shared by the three stage analyses: the busy-period → Q →
    per-instance-queuing-time → max-response scan that eqs (14)–(19),
    (21)–(26) and (28)–(33) all instantiate.

    On top of the paper's scan over cycle instances [q], the [Repaired]
    variant also scans the busy-period start position [l] = number of the
    analyzed flow's own frames released (at minimum separation) before the
    analyzed instance — repair R8, closing the own-flow carry-in soundness
    hole of the paper's equations (see the implementation comment and
    experiment E18).  Under [Faithful], [l] is always 0 as the paper
    writes it. *)

val run :
  ctx:Ctx.t ->
  stage:Stage.t ->
  flow:Traffic.Flow.t ->
  frame:int ->
  busy_seed:Gmf_util.Timeunit.ns ->
  busy_step:(Gmf_util.Timeunit.ns -> Gmf_util.Timeunit.ns) ->
  w_base:(q:int -> l:int -> Gmf_util.Timeunit.ns) ->
  w_step:(q:int -> l:int -> Gmf_util.Timeunit.ns -> Gmf_util.Timeunit.ns) ->
  finish:(q:int -> l:int -> w:Gmf_util.Timeunit.ns -> Gmf_util.Timeunit.ns) ->
  (Result_types.stage_response, Result_types.failure) result
(** [run] executes the scheme:

    + iterate [busy_step] from [busy_seed] to the busy-period length [t];
    + [Q = max 1 (ceil (t / TSUM_i))], capped by the configuration;
    + for every (q, l) pair, iterate [w_step ~q ~l] from [w_base ~q ~l]
      to [w(q,l)];
    + the stage response is [max over (q,l) of finish ~q ~l ~w].

    Any divergence is reported as a [failure] naming the stage. *)

val window_before : int array -> k:int -> len:int -> int
(** [window_before arr ~k ~len] sums, cyclically, the [len] entries of
    [arr] preceding index [k] — the demand (or minimum separation) of the
    analyzed frame's [len] own predecessors.  0 when [len = 0]. *)
