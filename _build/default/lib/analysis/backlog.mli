(** Buffer-requirement bounds — a corollary of the response-time analysis
    that a switch designer needs for memory sizing (the paper's Figure 5
    queues are implicitly assumed unbounded; this module tells you how much
    memory makes that assumption safe).

    For the egress priority queue of link (N, d): every Ethernet frame of
    flow j resides in the queue at most W_j, flow j's egress-stage response
    bound there (residence ends no later than reception at d).  Frames of
    flow j present simultaneously are therefore bounded by the arrivals in
    a window of length W_j + extra_j, i.e. NX_j (eq 13).  Summing over the
    flows of the link bounds the queue occupancy at any instant.  The
    ingress NIC FIFO of a switch is bounded the same way using the
    ingress-stage response times.

    Bounds are computed from a completed holistic report, so they inherit
    its fixed-point jitters.  They are upper bounds on the simulator's
    observed occupancy (tested in [test/test_backlog.ml], exercised by
    experiment E11). *)

type queue_bound = {
  node : Network.Node.id;  (** The switch owning the queue. *)
  peer : Network.Node.id;
      (** Link peer: destination for egress queues, predecessor for ingress
          FIFOs. *)
  frames : int;  (** Maximum simultaneous Ethernet frames. *)
  bits : int;
      (** Conservative memory bound: [frames] maximal Ethernet frames. *)
}

val egress_bounds :
  Ctx.t -> Holistic.report -> (queue_bound list, string) result
(** One bound per egress priority queue used by some flow.  [Error] if the
    report is not from a schedulable analysis (bounds need valid response
    times). *)

val ingress_bounds :
  Ctx.t -> Holistic.report -> (queue_bound list, string) result
(** One bound per switch ingress FIFO used by some flow. *)

val pp_queue_bound : Format.formatter -> queue_bound -> unit
