(** Machine-readable export of analysis results.

    Operators feed bounds into dashboards and provisioning scripts; CSV is
    the lowest-friction interchange.  One row per (flow, frame) with the
    per-stage responses flattened into a stage column. *)

val frame_csv : Holistic.report -> string
(** Header
    [flow_id,flow_name,priority,frame,bound_ns,deadline_ns,slack_ns,meets]
    then one row per (flow, frame), flows in id order.  Fields containing
    commas are never produced (names are caller-controlled; commas in
    names are replaced by [_]). *)

val stage_csv : Holistic.report -> string
(** Header [flow_id,flow_name,frame,stage,response_ns,busy_ns,q] then one
    row per (flow, frame, stage) in pipeline order. *)

val verdict_line : Holistic.report -> string
(** One-line machine summary: [verdict,<verdict>,rounds,<n>]. *)
