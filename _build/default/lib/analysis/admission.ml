type decision = { admitted : bool; report : Holistic.report }

let check ?config scenario =
  let report = Holistic.analyze ?config scenario in
  { admitted = Holistic.is_schedulable report; report }

let rebuild scenario extra_flows =
  Traffic.Scenario.make ~topo:(Traffic.Scenario.topo scenario)
    ~flows:(Traffic.Scenario.flows scenario @ extra_flows)
    ()

let admit ?config scenario ~candidate =
  check ?config (rebuild scenario [ candidate ])

let admit_greedily ?config ~topo ~switches candidates =
  let try_set flows =
    let scenario = Traffic.Scenario.make ~switches ~topo ~flows () in
    (check ?config scenario).admitted
  in
  let rec go accepted rejected = function
    | [] -> (List.rev accepted, List.rev rejected)
    | candidate :: rest ->
        let attempt = List.rev (candidate :: accepted) in
        if try_set attempt then go (candidate :: accepted) rejected rest
        else go accepted (candidate :: rejected) rest
  in
  go [] [] candidates
