lib/traffic/scenario.ml: Array Click Flow Format Hashtbl Link_params List Network Printf
