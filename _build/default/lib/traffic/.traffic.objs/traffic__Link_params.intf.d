lib/traffic/link_params.mli: Flow Format Gmf Gmf_util Network
