lib/traffic/scenario.mli: Click Flow Format Gmf_util Link_params Network
