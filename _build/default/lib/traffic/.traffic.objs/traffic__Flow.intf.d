lib/traffic/flow.mli: Ethernet Format Gmf Gmf_util Network
