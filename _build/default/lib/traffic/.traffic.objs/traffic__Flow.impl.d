lib/traffic/flow.ml: Array Ethernet Float Format Gmf Hashtbl List Network Printf
