lib/traffic/link_params.ml: Array Flow Format Gmf Gmf_util Network Timeunit
