type id = int

type t = {
  id : id;
  name : string;
  spec : Gmf.Spec.t;
  encap : Ethernet.Encap.t;
  route : Network.Route.t;
  priority : int;
  remarks : ((Network.Node.id * Network.Node.id) * int) list;
}

let check_priority p =
  if p < 0 || p > 7 then
    invalid_arg "Flow.make: priority outside the 802.1p range 0..7"

let make ~id ~name ~spec ~encap ~route ~priority =
  if id < 0 then invalid_arg "Flow.make: negative id";
  check_priority priority;
  { id; name; spec; encap; route; priority; remarks = [] }

let with_remarks t remarks =
  let hops = Network.Route.hops t.route in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (hop, p) ->
      check_priority p;
      if not (List.mem hop hops) then
        invalid_arg
          (Printf.sprintf
             "Flow.with_remarks: remark on hop %d->%d not on the route"
             (fst hop) (snd hop));
      if Hashtbl.mem seen hop then
        invalid_arg
          (Printf.sprintf "Flow.with_remarks: hop %d->%d remarked twice"
             (fst hop) (snd hop));
      Hashtbl.replace seen hop ())
    remarks;
  { t with remarks }

let scale_payloads t factor =
  if factor <= 0. then invalid_arg "Flow.scale_payloads: non-positive factor";
  let scale (f : Gmf.Frame_spec.t) =
    Gmf.Frame_spec.make ~period:f.period ~deadline:f.deadline ~jitter:f.jitter
      ~payload_bits:
        (max 1 (int_of_float (Float.round (float_of_int f.payload_bits *. factor))))
  in
  let spec =
    Gmf.Spec.make (List.map scale (Array.to_list (Gmf.Spec.frames t.spec)))
  in
  { t with spec }

let priority_on t ~src ~dst =
  match List.assoc_opt (src, dst) t.remarks with
  | Some p -> p
  | None -> t.priority

let n t = Gmf.Spec.n t.spec
let tsum t = Gmf.Spec.tsum t.spec

let nbits t k =
  let frame = Gmf.Spec.frame t.spec k in
  Ethernet.Encap.nbits t.encap ~payload_bits:frame.Gmf.Frame_spec.payload_bits

let nbits_all t = Array.init (n t) (fun k -> nbits t k)

let source t = Network.Route.source t.route
let destination t = Network.Route.destination t.route

let equal_priority_or_higher ~than ~src ~dst t =
  priority_on t ~src ~dst >= priority_on than ~src ~dst

let pp fmt t =
  Format.fprintf fmt "flow%d(%s, prio=%d, %a, route=%a, n=%d)" t.id t.name
    t.priority Ethernet.Encap.pp t.encap Network.Route.pp t.route (n t)
