(** A flow: GMF traffic specification + encapsulation + route + priority
    (paper Sections 2.1 and 2.3).

    Priorities are the IEEE 802.1p class of the flow's Ethernet frames:
    an integer where a {e larger} value means {e higher} priority (as in
    802.1p itself, where 7 outranks 0).  The analysis only compares
    priorities of flows sharing a link.

    The paper's priority function is per link — prio(tau_i, N1, N2) in
    eq (2) — because a network operator may remark the 802.1p class at any
    switch.  A flow therefore carries a default [priority] plus optional
    per-hop [remarks]. *)

type id = int

type t = private {
  id : id;
  name : string;
  spec : Gmf.Spec.t;
  encap : Ethernet.Encap.t;
  route : Network.Route.t;
  priority : int;
  remarks : ((Network.Node.id * Network.Node.id) * int) list;
      (** Per-hop 802.1p overrides, keyed by (link src, link dst). *)
}

val make :
  id:id ->
  name:string ->
  spec:Gmf.Spec.t ->
  encap:Ethernet.Encap.t ->
  route:Network.Route.t ->
  priority:int ->
  t
(** Builds a flow with no remarks (every hop uses [priority]).
    Raises [Invalid_argument] if [id < 0] or the priority is outside 0..7
    (the 802.1p code-point range). *)

val with_remarks :
  t -> ((Network.Node.id * Network.Node.id) * int) list -> t
(** [with_remarks flow remarks] installs per-hop 802.1p overrides.
    Raises [Invalid_argument] if any priority is outside 0..7, a remark
    names a hop that is not on the route, or a hop is remarked twice. *)

val scale_payloads : t -> float -> t
(** [scale_payloads flow factor] multiplies every frame's payload by
    [factor] (at least one bit each), keeping everything else — used by
    capacity-planning sweeps.  Raises [Invalid_argument] if
    [factor <= 0]. *)

val priority_on :
  t -> src:Network.Node.id -> dst:Network.Node.id -> int
(** prio(tau, src, dst): the remark for that hop if present, otherwise the
    default priority. *)

val n : t -> int
(** Number of GMF frames in the flow's cycle. *)

val tsum : t -> Gmf_util.Timeunit.ns

val nbits : t -> int -> int
(** [nbits flow k] is the datagram size above IP of GMF frame [k mod n]
    (eq in Section 3.1: payload rounded to bytes + transport headers). *)

val nbits_all : t -> int array
(** [nbits] for every frame of the cycle. *)

val source : t -> Network.Node.id
val destination : t -> Network.Node.id

val equal_priority_or_higher :
  than:t -> src:Network.Node.id -> dst:Network.Node.id -> t -> bool
(** [equal_priority_or_higher ~than:i ~src ~dst j] is
    [prio(j, src, dst) >= prio(i, src, dst)] — the comparison inside the
    paper's hep set (eq 2), evaluated on the shared link. *)

val pp : Format.formatter -> t -> unit
