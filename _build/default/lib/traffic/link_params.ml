open Gmf_util

type t = {
  flow : Flow.t;
  link : Network.Link.t;
  c : Timeunit.ns array;
  eth_frames : int array;
}

let make ~flow ~link =
  let nbits = Flow.nbits_all flow in
  let c = Array.map (fun bits -> Network.Link.tx_time link ~nbits:bits) nbits in
  let mft_ns = Network.Link.mft link in
  (* Eq (5): number of Ethernet frames of GMF frame k as ceil(C / MFT). *)
  let eth_frames = Array.map (fun ci -> Timeunit.cdiv ci mft_ns) c in
  { flow; link; c; eth_frames }

let csum t = Array.fold_left ( + ) 0 t.c
let nsum t = Array.fold_left ( + ) 0 t.eth_frames
let mft t = Network.Link.mft t.link

let time_demand t =
  Gmf.Demand.make ~costs:t.c ~periods:(Gmf.Spec.periods t.flow.Flow.spec)

let count_demand t =
  Gmf.Demand.make ~costs:t.eth_frames
    ~periods:(Gmf.Spec.periods t.flow.Flow.spec)

let utilization t = float_of_int (csum t) /. float_of_int (Flow.tsum t.flow)

let pp fmt t =
  Format.fprintf fmt
    "@[<hov 2>params(%s on %a): CSUM=%a NSUM=%d TSUM=%a util=%.4f@]"
    t.flow.Flow.name Network.Link.pp t.link Timeunit.pp (csum t) (nsum t)
    Timeunit.pp (Flow.tsum t.flow) (utilization t)
