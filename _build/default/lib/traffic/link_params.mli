(** Per-(flow, link) derived parameters (paper Section 3.1, Figure 4).

    Given a flow and one link of its route, this module derives the values
    the analysis consumes: the transmission time C_i^k of every GMF frame,
    the Ethernet-frame count of every GMF frame, CSUM/NSUM over the cycle,
    and the {!Gmf.Demand} tables behind MX/MXS (link time) and NX/NXS
    (frame counts). *)

type t = private {
  flow : Flow.t;
  link : Network.Link.t;
  c : Gmf_util.Timeunit.ns array;  (** C_i^k, per GMF frame. *)
  eth_frames : int array;  (** Ethernet frames per GMF frame. *)
}

val make : flow:Flow.t -> link:Network.Link.t -> t
(** Derives all per-frame values.  The link need not be on the flow's route
    (the first-hop analysis of an IP-router source uses the incoming link of
    the router, which the operator models explicitly). *)

val csum : t -> Gmf_util.Timeunit.ns
(** CSUM (eq 4): total link time of one cycle. *)

val nsum : t -> int
(** NSUM (eq 5): total Ethernet frames of one cycle.  Computed as the paper
    does, as [sum_k ceil(C_i^k / MFT)]; {!Ethernet.Fragment.fragment_count}
    yields the same value (tested). *)

val mft : t -> Gmf_util.Timeunit.ns
(** The link's Maximum-Frame-Transmission-Time (eq 1). *)

val time_demand : t -> Gmf.Demand.t
(** Demand tables with per-frame cost C_i^k — evaluate with
    [Gmf.Demand.bound ~capped:true] to get MX (eq 11). *)

val count_demand : t -> Gmf.Demand.t
(** Demand tables with per-frame cost = Ethernet-frame count — evaluate with
    [Gmf.Demand.bound ~capped:false] to get NX (eq 13). *)

val utilization : t -> float
(** CSUM / TSUM of this flow on this link (a term of eq 20). *)

val pp : Format.formatter -> t -> unit
