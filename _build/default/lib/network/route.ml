type t = { nodes : Node.id array }

let make topo node_list =
  let nodes = Array.of_list node_list in
  let len = Array.length nodes in
  if len < 2 then invalid_arg "Route.make: fewer than two nodes";
  let seen = Hashtbl.create len in
  Array.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Route.make: node %d repeated" n);
      Hashtbl.replace seen n ())
    nodes;
  let endpoint_ok n = Node.may_terminate_flow (Topology.node topo n) in
  if not (endpoint_ok nodes.(0)) then
    invalid_arg "Route.make: source must be an endhost or router";
  if not (endpoint_ok nodes.(len - 1)) then
    invalid_arg "Route.make: destination must be an endhost or router";
  for i = 1 to len - 2 do
    if not (Node.is_switch (Topology.node topo nodes.(i))) then
      invalid_arg
        (Printf.sprintf "Route.make: intermediate node %d is not a switch"
           nodes.(i))
  done;
  for i = 0 to len - 2 do
    match Topology.find_link topo ~src:nodes.(i) ~dst:nodes.(i + 1) with
    | Some _ -> ()
    | None ->
        invalid_arg
          (Printf.sprintf "Route.make: missing link %d->%d" nodes.(i)
             nodes.(i + 1))
  done;
  { nodes }

let source t = t.nodes.(0)
let destination t = t.nodes.(Array.length t.nodes - 1)
let nodes t = Array.to_list t.nodes

let hops t =
  List.init
    (Array.length t.nodes - 1)
    (fun i -> (t.nodes.(i), t.nodes.(i + 1)))

let hop_count t = Array.length t.nodes - 1

let index_of t n =
  let rec find i =
    if i >= Array.length t.nodes then
      invalid_arg (Printf.sprintf "Route: node %d not on route" n)
    else if t.nodes.(i) = n then i
    else find (i + 1)
  in
  find 0

let succ t n =
  let i = index_of t n in
  if i = Array.length t.nodes - 1 then
    invalid_arg "Route.succ: destination has no successor";
  t.nodes.(i + 1)

let prec t n =
  let i = index_of t n in
  if i = 0 then invalid_arg "Route.prec: source has no predecessor";
  t.nodes.(i - 1)

let mem t n = Array.exists (fun x -> x = n) t.nodes

let intermediate_switches t =
  let len = Array.length t.nodes in
  List.init (len - 2) (fun i -> t.nodes.(i + 1))

let links t topo =
  List.map (fun (src, dst) -> Topology.link_exn topo ~src ~dst) (hops t)

let pp fmt t =
  Array.iteri
    (fun i n ->
      if i > 0 then Format.pp_print_string fmt "->";
      Format.pp_print_int fmt n)
    t.nodes
