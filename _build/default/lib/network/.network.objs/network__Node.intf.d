lib/network/node.mli: Format
