lib/network/link.ml: Ethernet Format Gmf_util Node Timeunit
