lib/network/link.mli: Format Gmf_util Node
