lib/network/pathfind.mli: Node Route Topology
