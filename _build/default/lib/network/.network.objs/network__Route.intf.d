lib/network/route.mli: Format Link Node Topology
