lib/network/topology.ml: Array Format Hashtbl Link List Node Option Printf Queue
