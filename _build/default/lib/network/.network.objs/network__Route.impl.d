lib/network/route.ml: Array Format Hashtbl List Node Printf Topology
