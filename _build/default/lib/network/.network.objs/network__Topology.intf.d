lib/network/topology.mli: Format Gmf_util Link Node
