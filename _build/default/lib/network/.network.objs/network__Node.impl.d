lib/network/node.ml: Format
