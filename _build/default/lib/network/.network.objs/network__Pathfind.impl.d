lib/network/pathfind.ml: Link List Node Route Topology
