(** Network nodes (paper Section 2.1, Figure 1).

    Three node kinds exist: IP endhosts (PCs running the applications),
    software-implemented Ethernet switches, and IP routers connecting the
    analyzed network to the outside.  Flows start and end at endhosts or
    routers and are relayed only by switches. *)

type id = int
(** Dense non-negative node identifier, assigned by {!Topology.add_node}. *)

type kind = Endhost | Switch | Router

type t = { id : id; name : string; kind : kind }

val kind_to_string : kind -> string

val pp_kind : Format.formatter -> kind -> unit

val pp : Format.formatter -> t -> unit
(** e.g. ["node3(name,endhost)"]. *)

val is_switch : t -> bool

val may_terminate_flow : t -> bool
(** True for endhosts and routers: the node kinds that can be the source or
    destination of a flow. *)
