type t = {
  mutable nodes : Node.t array; (* dense by id; length = count *)
  mutable node_count : int;
  links : (Node.id * Node.id, Link.t) Hashtbl.t;
  mutable link_order : Link.t list; (* reversed insertion order *)
  out_edges : (Node.id, Node.id list) Hashtbl.t; (* reversed insertion order *)
}

let create () =
  {
    nodes = [||];
    node_count = 0;
    links = Hashtbl.create 64;
    link_order = [];
    out_edges = Hashtbl.create 64;
  }

let add_node t ~name ~kind =
  let id = t.node_count in
  let node = { Node.id; name; kind } in
  let cap = Array.length t.nodes in
  if id = cap then begin
    let grown = Array.make (max 8 (2 * cap)) node in
    Array.blit t.nodes 0 grown 0 cap;
    t.nodes <- grown
  end;
  t.nodes.(id) <- node;
  t.node_count <- id + 1;
  id

let check_node t id name =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "%s: unknown node %d" name id)

let node t id =
  check_node t id "Topology.node";
  t.nodes.(id)

let node_count t = t.node_count

let nodes t = List.init t.node_count (fun i -> t.nodes.(i))

let add_link t ~src ~dst ~rate_bps ~prop =
  check_node t src "Topology.add_link";
  check_node t dst "Topology.add_link";
  if Hashtbl.mem t.links (src, dst) then
    invalid_arg
      (Printf.sprintf "Topology.add_link: duplicate link %d->%d" src dst);
  let link = Link.make ~src ~dst ~rate_bps ~prop in
  Hashtbl.replace t.links (src, dst) link;
  t.link_order <- link :: t.link_order;
  let outs = Option.value ~default:[] (Hashtbl.find_opt t.out_edges src) in
  Hashtbl.replace t.out_edges src (dst :: outs)

let add_duplex_link t ~a ~b ~rate_bps ~prop =
  add_link t ~src:a ~dst:b ~rate_bps ~prop;
  add_link t ~src:b ~dst:a ~rate_bps ~prop

let find_link t ~src ~dst = Hashtbl.find_opt t.links (src, dst)

let link_exn t ~src ~dst =
  match find_link t ~src ~dst with
  | Some l -> l
  | None ->
      invalid_arg (Printf.sprintf "Topology.link_exn: no link %d->%d" src dst)

let links t = List.rev t.link_order

let out_neighbors t id =
  check_node t id "Topology.out_neighbors";
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.out_edges id))

let degree t id = List.length (out_neighbors t id)

let shortest_path t ~src ~dst =
  check_node t src "Topology.shortest_path";
  check_node t dst "Topology.shortest_path";
  (* BFS where only switches may be traversed; source and destination are
     exempt from the switch requirement. *)
  let parent = Array.make t.node_count (-1) in
  let visited = Array.make t.node_count false in
  visited.(src) <- true;
  let queue = Queue.create () in
  Queue.add src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let expandable = u = src || Node.is_switch t.nodes.(u) in
    if expandable then
      List.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            parent.(v) <- u;
            if v = dst then found := true else Queue.add v queue
          end)
        (out_neighbors t u)
  done;
  if not !found && src <> dst then None
  else begin
    let rec build v acc =
      if v = src then src :: acc else build parent.(v) (v :: acc)
    in
    Some (build dst [])
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>topology: %d nodes, %d links@," t.node_count
    (Hashtbl.length t.links);
  List.iter (fun n -> Format.fprintf fmt "  %a@," Node.pp n) (nodes t);
  List.iter (fun l -> Format.fprintf fmt "  %a@," Link.pp l) (links t);
  Format.fprintf fmt "@]"
