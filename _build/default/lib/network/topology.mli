(** The network graph: nodes plus directed links.

    Mutable builder with pure lookups; built once per scenario, then shared
    by the analysis and the simulator. *)

type t

val create : unit -> t

val add_node : t -> name:string -> kind:Node.kind -> Node.id
(** Registers a node and returns its dense id (0, 1, 2, ...). *)

val add_link :
  t ->
  src:Node.id ->
  dst:Node.id ->
  rate_bps:int ->
  prop:Gmf_util.Timeunit.ns ->
  unit
(** Installs a directed link.  Raises [Invalid_argument] if either endpoint
    is unknown or the link already exists. *)

val add_duplex_link :
  t ->
  a:Node.id ->
  b:Node.id ->
  rate_bps:int ->
  prop:Gmf_util.Timeunit.ns ->
  unit
(** Installs both directions with the same rate and propagation delay. *)

val node_count : t -> int

val node : t -> Node.id -> Node.t
(** Raises [Invalid_argument] on an unknown id. *)

val nodes : t -> Node.t list
(** All nodes, in id order. *)

val find_link : t -> src:Node.id -> dst:Node.id -> Link.t option

val link_exn : t -> src:Node.id -> dst:Node.id -> Link.t
(** Raises [Invalid_argument] when there is no such link. *)

val links : t -> Link.t list
(** All directed links, in insertion order. *)

val out_neighbors : t -> Node.id -> Node.id list
(** Destinations of the links leaving the node, in insertion order. *)

val degree : t -> Node.id -> int
(** Number of distinct neighbors (counting a duplex link once) — the
    NINTERFACES(N) of the paper for a switch node. *)

val shortest_path : t -> src:Node.id -> dst:Node.id -> Node.id list option
(** Fewest-hops path (BFS) from [src] to [dst] using only switch nodes as
    intermediates, or [None] if unreachable.  Convenience for scenario
    construction; routes may also be specified explicitly. *)

val pp : Format.formatter -> t -> unit
