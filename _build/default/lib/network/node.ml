type id = int
type kind = Endhost | Switch | Router
type t = { id : id; name : string; kind : kind }

let kind_to_string = function
  | Endhost -> "endhost"
  | Switch -> "switch"
  | Router -> "router"

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

let pp fmt t =
  Format.fprintf fmt "node%d(%s,%a)" t.id t.name pp_kind t.kind

let is_switch t = t.kind = Switch

let may_terminate_flow t =
  match t.kind with Endhost | Router -> true | Switch -> false
