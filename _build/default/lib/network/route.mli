(** Pre-specified routes (paper Section 2.1, Figure 2).

    A route is the node sequence a flow's packets traverse.  The paper
    requires: the source and destination are endhosts or routers, every
    intermediate node is an Ethernet switch, and consecutive nodes are
    directly linked. *)

type t

val make : Topology.t -> Node.id list -> t
(** [make topo nodes] validates [nodes] as a route over [topo].
    Raises [Invalid_argument] when the route has fewer than two nodes,
    repeats a node, misses a link, has a switch endpoint, or has a
    non-switch intermediate. *)

val source : t -> Node.id
val destination : t -> Node.id

val nodes : t -> Node.id list
(** The full node sequence, source first. *)

val hops : t -> (Node.id * Node.id) list
(** Consecutive (src, dst) pairs along the route. *)

val hop_count : t -> int
(** Number of links traversed. *)

val succ : t -> Node.id -> Node.id
(** [succ t n] is the node after [n] on the route — the paper's
    succ(tau, N).  Raises [Invalid_argument] if [n] is not on the route or
    is the destination. *)

val prec : t -> Node.id -> Node.id
(** [prec t n] is the node before [n] — the paper's prec(tau, N).
    Raises [Invalid_argument] if [n] is not on the route or is the
    source. *)

val mem : t -> Node.id -> bool

val intermediate_switches : t -> Node.id list
(** The switch nodes strictly between source and destination, in order. *)

val links : t -> Topology.t -> Link.t list
(** The link objects along the route (the topology must be the one the
    route was validated against). *)

val pp : Format.formatter -> t -> unit
(** e.g. ["0->4->6->3"]. *)
