(** Directed point-to-point links (paper Section 2.1).

    [linkspeed(N1,N2)] is the bit rate and [prop(N1,N2)] the propagation
    delay.  Links are directed because the analysis treats each output queue
    separately; {!Topology.add_duplex_link} installs both directions. *)

type t = private {
  src : Node.id;
  dst : Node.id;
  rate_bps : int;
  prop : Gmf_util.Timeunit.ns;
}

val make :
  src:Node.id -> dst:Node.id -> rate_bps:int -> prop:Gmf_util.Timeunit.ns -> t
(** Raises [Invalid_argument] if [rate_bps <= 0], [prop < 0], or
    [src = dst]. *)

val mft : t -> Gmf_util.Timeunit.ns
(** Maximum-Frame-Transmission-Time of this link (eq 1). *)

val tx_time : t -> nbits:int -> Gmf_util.Timeunit.ns
(** Transmission time of a whole datagram of [nbits] data bits over this
    link (the C_i^k of Section 3.1). *)

val pp : Format.formatter -> t -> unit
