open Gmf_util

type t = { src : Node.id; dst : Node.id; rate_bps : int; prop : Timeunit.ns }

let make ~src ~dst ~rate_bps ~prop =
  if rate_bps <= 0 then invalid_arg "Link.make: non-positive rate";
  if prop < 0 then invalid_arg "Link.make: negative propagation delay";
  if src = dst then invalid_arg "Link.make: self-loop";
  { src; dst; rate_bps; prop }

let mft t = Ethernet.Fragment.mft ~rate_bps:t.rate_bps

let tx_time t ~nbits = Ethernet.Fragment.tx_time ~nbits ~rate_bps:t.rate_bps

let pp fmt t =
  Format.fprintf fmt "link(%d->%d, %d bps, prop=%a)" t.src t.dst t.rate_bps
    Timeunit.pp t.prop
