(** Stride scheduling (Waldspurger & Weihl, 1995), as used by Click to
    schedule the software tasks inside an Ethernet switch (paper
    Section 2.2).

    Each task has a static [tickets] allocation.  Its [stride] is a large
    constant divided by its tickets; its [pass] counter starts at its stride
    and advances by its stride each time the task runs.  The dispatcher
    always selects the task with the least pass, breaking ties by task index
    (which makes the all-tickets-equal configuration collapse to exact
    round-robin — the Click default the paper assumes). *)

val stride1 : int
(** The large constant from which strides are derived (2^20, as in the
    original paper's implementation). *)

type task_id = int
(** Dense identifier returned by {!add_task}. *)

type t

val create : unit -> t

val add_task : t -> tickets:int -> task_id
(** Registers a task.  Raises [Invalid_argument] if [tickets <= 0] or
    [tickets > stride1]. *)

val task_count : t -> int

val tickets : t -> task_id -> int

val stride_of : t -> task_id -> int
(** [stride1 / tickets], the per-run pass increment. *)

val pass_of : t -> task_id -> int
(** Current pass value (monotonically increasing). *)

val select : t -> task_id
(** [select t] returns the task that runs next (least pass, ties by lowest
    id) and charges it one quantum (pass += stride).  Raises
    [Invalid_argument] when no task is registered. *)

val peek : t -> task_id
(** Like {!select} but without charging. *)

val run_count : t -> task_id -> int
(** How many times the task has been selected so far. *)

val reset : t -> unit
(** Resets all pass counters to their strides and all run counts to zero. *)

val round_robin : ntasks:int -> t
(** [round_robin ~ntasks] is a scheduler with [ntasks] tasks of one ticket
    each — the configuration used throughout the paper's analysis. *)
