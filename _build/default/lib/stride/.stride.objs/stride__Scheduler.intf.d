lib/stride/scheduler.mli:
