lib/stride/scheduler.ml: Array Printf
