open Gmf_util

type t = {
  n : int;
  costs : int array;
  periods : Timeunit.ns array;
  cost_prefix : int array; (* cost_prefix.(i) = sum of costs.(0..i-1), i <= 2n *)
  span_prefix : int array; (* span_prefix.(i) = sum of periods.(0..i-1), i <= 2n *)
  cost_total : int;
  tsum : Timeunit.ns;
}

let make ~costs ~periods =
  let n = Array.length costs in
  if n = 0 then invalid_arg "Demand.make: empty cycle";
  if Array.length periods <> n then
    invalid_arg "Demand.make: costs/periods length mismatch";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Demand.make: negative cost")
    costs;
  Array.iter
    (fun p -> if p < 0 then invalid_arg "Demand.make: negative period")
    periods;
  (* Prefix sums over two unrolled cycles let any window of up to n frames
     starting anywhere be summed in O(1). *)
  let prefix arr =
    let p = Array.make ((2 * n) + 1) 0 in
    for i = 0 to (2 * n) - 1 do
      p.(i + 1) <- p.(i) + arr.(i mod n)
    done;
    p
  in
  let cost_prefix = prefix costs in
  let span_prefix = prefix periods in
  let cost_total = cost_prefix.(n) in
  let tsum = span_prefix.(n) in
  if tsum <= 0 then invalid_arg "Demand.make: zero cycle length";
  { n; costs = Array.copy costs; periods = Array.copy periods;
    cost_prefix; span_prefix; cost_total; tsum }

let n t = t.n
let cost_total t = t.cost_total
let tsum t = t.tsum

(* Cost of [len] frames starting at [k1]: wraps whole cycles analytically and
   reads the remainder from the unrolled prefix table. *)
let window_cost t ~k1 ~len =
  if k1 < 0 then invalid_arg "Demand.window_cost: negative k1";
  if len < 0 then invalid_arg "Demand.window_cost: negative len";
  let k1 = k1 mod t.n in
  let cycles = len / t.n and rest = len mod t.n in
  (cycles * t.cost_total) + t.cost_prefix.(k1 + rest) - t.cost_prefix.(k1)

let window_span t ~k1 ~len =
  if k1 < 0 then invalid_arg "Demand.window_span: negative k1";
  if len < 0 then invalid_arg "Demand.window_span: negative len";
  if len <= 1 then 0
  else begin
    let k1 = k1 mod t.n in
    let m = len - 1 in
    let cycles = m / t.n and rest = m mod t.n in
    (cycles * t.tsum) + t.span_prefix.(k1 + rest) - t.span_prefix.(k1)
  end

let small t ~capped dt =
  if dt < 0 then 0
  else begin
    let best = ref 0 in
    for k1 = 0 to t.n - 1 do
      for len = 1 to t.n do
        if window_span t ~k1 ~len <= dt then begin
          let cost = window_cost t ~k1 ~len in
          let cost = if capped then min dt cost else cost in
          if cost > !best then best := cost
        end
      done
    done;
    !best
  end

let bound t ~capped dt =
  if dt < 0 then 0
  else begin
    let cycles = dt / t.tsum in
    let rest = dt - (cycles * t.tsum) in
    (cycles * t.cost_total) + small t ~capped rest
  end

let utilization t = float_of_int t.cost_total /. float_of_int t.tsum
