(** Demand-bound functions and the EDF feasibility test for GMF tasks on a
    single preemptive resource — the original analysis of Baruah, Chen,
    Gorinsky & Mok ("Generalized multiframe tasks", Real-Time Systems 17,
    1999), the paper's reference [6].

    The multihop analysis of this library never needs EDF, but the
    single-resource test is the natural sanity baseline for GMF parameter
    choices (and for validating a source node that schedules its own
    packets by deadline), so it ships as part of the GMF substrate.

    [dbf t] is the largest total demand of jobs that have both their
    arrival and their absolute deadline inside any interval of length [t],
    over all release sequences permitted by the GMF contract (densest
    releases, every cyclic starting frame). *)

type t

val make :
  costs:int array ->
  periods:Gmf_util.Timeunit.ns array ->
  deadlines:Gmf_util.Timeunit.ns array ->
  t
(** Same validation rules as {!Demand.make}; deadlines must be positive. *)

val of_spec : Spec.t -> cost_of:(Frame_spec.t -> int) -> t
(** Convenience: derive costs from a spec (e.g. transmission times via a
    link, or execution times). *)

val dbf : t -> Gmf_util.Timeunit.ns -> int
(** [dbf t dt] for [dt >= 0]; 0 for negative [dt].  Takes
    O(n * (dt / TSUM + n)) time. *)

val utilization : t -> float
(** CSUM / TSUM — [dbf t / t] converges to this as [t] grows. *)

val deadline_events : t -> horizon:Gmf_util.Timeunit.ns -> Gmf_util.Timeunit.ns list
(** All distinct interval lengths at which this task's [dbf] can step,
    up to [horizon]: the points an exact EDF test must check. *)

val edf_feasible : horizon:Gmf_util.Timeunit.ns -> t list -> bool
(** [edf_feasible ~horizon tasks] checks [sum_j dbf_j(t) <= t] at every
    deadline event up to [horizon].  With [horizon] at least
    [max deadline + TSUM_total / (1 - U)] this is exact for [U < 1]
    (standard busy-period argument); it returns [false] immediately when
    total utilization exceeds 1.  Raises [Invalid_argument] if
    [horizon <= 0]. *)
