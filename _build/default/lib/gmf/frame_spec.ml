open Gmf_util

type t = {
  period : Timeunit.ns;
  deadline : Timeunit.ns;
  jitter : Timeunit.ns;
  payload_bits : int;
}

let make ~period ~deadline ~jitter ~payload_bits =
  if period < 0 then invalid_arg "Frame_spec.make: negative period";
  if deadline <= 0 then invalid_arg "Frame_spec.make: non-positive deadline";
  if jitter < 0 then invalid_arg "Frame_spec.make: negative jitter";
  if payload_bits < 0 then invalid_arg "Frame_spec.make: negative payload";
  { period; deadline; jitter; payload_bits }

let equal a b =
  a.period = b.period && a.deadline = b.deadline && a.jitter = b.jitter
  && a.payload_bits = b.payload_bits

let pp fmt t =
  Format.fprintf fmt "{T=%a; D=%a; GJ=%a; S=%db}" Timeunit.pp t.period
    Timeunit.pp t.deadline Timeunit.pp t.jitter t.payload_bits
