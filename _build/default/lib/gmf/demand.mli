(** Request-bound functions of a GMF flow over one resource
    (paper eqs (4)–(13)).

    The analysis needs, for a flow j and a resource (a link or a switch
    task), an upper bound on how much of the resource the flow can demand in
    any interval of length [t].  Demand is measured in an abstract integer
    unit: link time in nanoseconds for MX/MXS (per-frame cost = C_j^k), or
    Ethernet-frame counts for NX/NXS (per-frame cost = ceil(C_j^k / MFT)).

    Window notation (eqs 7–9): a window is [len] consecutive frames of the
    cyclic spec starting at frame [k1].  Its cost is the sum of the [len]
    per-frame costs; its span is the sum of the first [len − 1] periods
    (arrival of first to arrival of last). *)

type t
(** Precomputed demand tables for one (flow, resource) pair. *)

val make : costs:int array -> periods:Gmf_util.Timeunit.ns array -> t
(** [make ~costs ~periods] precomputes the window tables.  The arrays must
    have equal positive length, the costs must be non-negative, the periods
    non-negative with a positive sum.  Raises [Invalid_argument]
    otherwise. *)

val n : t -> int
(** Cycle length. *)

val cost_total : t -> int
(** CSUM/NSUM over the whole cycle (eqs 4–5): sum of all per-frame costs. *)

val tsum : t -> Gmf_util.Timeunit.ns
(** Cycle length in time (eq 6). *)

val window_cost : t -> k1:int -> len:int -> int
(** CSUM_j(k1, len) of eq (7)/(8): cost of [len] consecutive frames starting
    at frame [k1 mod n].  [len] may exceed [n] (wraps around the cycle).
    Raises [Invalid_argument] if [k1 < 0] or [len < 0]. *)

val window_span : t -> k1:int -> len:int -> Gmf_util.Timeunit.ns
(** TSUM_j(k1, len) of eq (9): minimum time from the arrival of the window's
    first frame to the arrival of its last frame ([len − 1] periods; 0 when
    [len <= 1]). *)

val small : t -> capped:bool -> Gmf_util.Timeunit.ns -> int
(** [small t ~capped dt] is MXS (when [capped = true], eq 10) or NXS (when
    [capped = false], eq 12): the maximum window cost over windows of
    1..n frames whose span is at most [dt].  When [capped], each candidate is
    clamped to [min dt cost] — a flow cannot occupy a link longer than the
    interval itself.  Defined here for any [dt >= 0] (the paper restricts to
    0 < dt < TSUM, which is how {!bound} calls it); negative [dt] yields 0. *)

val bound : t -> capped:bool -> Gmf_util.Timeunit.ns -> int
(** [bound t ~capped dt] is MX (eq 11, [capped = true]) or NX (eq 13,
    [capped = false]):
    [floor(dt/TSUM) * cost_total + small (dt mod TSUM)].
    Total demand bound for any interval of length [dt >= 0];
    negative [dt] yields 0. *)

val utilization : t -> float
(** [cost_total / tsum] as a float — the left side of the convergence
    conditions (eqs 20, 34–35) contributed by this flow. *)
