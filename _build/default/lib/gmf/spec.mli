(** A generalized multiframe specification: the cyclic tuple of frames of one
    flow (paper Section 2.3).

    The spec is the traffic description at the source node; it knows nothing
    about routes or link speeds.  Per-link transmission costs are derived by
    the [traffic] library. *)

type t

val make : Frame_spec.t list -> t
(** [make frames] builds a spec from the cyclic frame list (frame 0 first).
    Raises [Invalid_argument] if the list is empty or if the cycle length
    [TSUM = sum of periods] is zero (the analysis divides by TSUM). *)

val n : t -> int
(** Number of frames in the cycle (the paper's n_i). *)

val frame : t -> int -> Frame_spec.t
(** [frame t k] is frame [k mod n t]; any non-negative [k] is accepted so
    callers can walk the cycle without reducing indices themselves.
    Raises [Invalid_argument] if [k < 0]. *)

val frames : t -> Frame_spec.t array
(** A fresh copy of the frame cycle. *)

val tsum : t -> Gmf_util.Timeunit.ns
(** TSUM_i (eq 6): the minimum cycle length, the sum of all periods. *)

val periods : t -> Gmf_util.Timeunit.ns array
(** Per-frame periods T_i^k, as a fresh array. *)

val deadlines : t -> Gmf_util.Timeunit.ns array
(** Per-frame end-to-end deadlines D_i^k. *)

val jitters : t -> Gmf_util.Timeunit.ns array
(** Per-frame source jitters GJ_i^k. *)

val payloads : t -> int array
(** Per-frame payload sizes S_i^k in bits. *)

val max_jitter : t -> Gmf_util.Timeunit.ns
(** [max_jitter t] is max_k GJ_i^k — the paper's [extra] term for a flow at
    its source. *)

val min_deadline : t -> Gmf_util.Timeunit.ns
(** Smallest relative deadline across frames (used by the sporadic
    baseline). *)

val min_period : t -> Gmf_util.Timeunit.ns
(** Smallest per-frame period (used by the sporadic baseline).  Note that a
    single period may be 0; the baseline guards against that. *)

val rotate : t -> int -> t
(** [rotate t k] is the same cyclic spec starting at frame [k] — useful for
    tests of cycle-invariance.  Raises [Invalid_argument] if [k < 0]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
