lib/gmf/dbf.ml: Array Demand Gmf_util List Spec Timeunit
