lib/gmf/frame_spec.mli: Format Gmf_util
