lib/gmf/frame_spec.ml: Format Gmf_util Timeunit
