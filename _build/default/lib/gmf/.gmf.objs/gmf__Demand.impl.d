lib/gmf/demand.ml: Array Gmf_util Timeunit
