lib/gmf/spec.ml: Array Format Frame_spec Gmf_util Timeunit
