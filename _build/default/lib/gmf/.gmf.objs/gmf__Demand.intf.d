lib/gmf/demand.mli: Gmf_util
