lib/gmf/spec.mli: Format Frame_spec Gmf_util
