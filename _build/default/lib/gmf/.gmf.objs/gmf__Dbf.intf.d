lib/gmf/dbf.mli: Frame_spec Gmf_util Spec
