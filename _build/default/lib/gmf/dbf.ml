open Gmf_util

type t = {
  demand : Demand.t; (* reuses the validated window machinery *)
  deadlines : Timeunit.ns array;
  n : int;
}

let make ~costs ~periods ~deadlines =
  let demand = Demand.make ~costs ~periods in
  if Array.length deadlines <> Array.length costs then
    invalid_arg "Dbf.make: costs/deadlines length mismatch";
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Dbf.make: non-positive deadline")
    deadlines;
  { demand; deadlines = Array.copy deadlines; n = Array.length costs }

let of_spec spec ~cost_of =
  let frames = Spec.frames spec in
  make
    ~costs:(Array.map cost_of frames)
    ~periods:(Spec.periods spec) ~deadlines:(Spec.deadlines spec)

let utilization t = Demand.utilization t.demand

(* Demand of the densest release sequence starting at frame [k1], counting
   jobs whose absolute deadline is at most [dt].  Walks job by job; whole
   cycles beyond the first are folded analytically. *)
let dbf_from t ~k1 dt =
  let tsum = Demand.tsum t.demand in
  let csum = Demand.cost_total t.demand in
  (* Any job released at or after [dt] has its deadline beyond [dt]; jobs
     of full cycles completely inside [dt - max_deadline] are all counted.
     Keep it simple: walk at most (dt / tsum + 2) cycles. *)
  let max_cycles = (dt / tsum) + 2 in
  let rec walk i acc =
    if i >= max_cycles * t.n then acc
    else begin
      let release = Demand.window_span t.demand ~k1 ~len:(i + 1) in
      if release > dt then acc
      else begin
        let frame = (k1 + i) mod t.n in
        let deadline = release + t.deadlines.(frame) in
        let cost = Demand.window_cost t.demand ~k1:(k1 + i) ~len:1 in
        let acc = if deadline <= dt then acc + cost else acc in
        walk (i + 1) acc
      end
    end
  in
  (* walk covers everything up to max_cycles; beyond that every cycle is
     fully contained, contributing csum each - handled by the cap since
     window_span grows by tsum per cycle. *)
  ignore csum;
  walk 0 0

let dbf t dt =
  if dt < 0 then 0
  else begin
    let best = ref 0 in
    for k1 = 0 to t.n - 1 do
      let d = dbf_from t ~k1 dt in
      if d > !best then best := d
    done;
    !best
  end

let deadline_events t ~horizon =
  let events = ref [] in
  for k1 = 0 to t.n - 1 do
    let rec walk i =
      let release = Demand.window_span t.demand ~k1 ~len:(i + 1) in
      if release <= horizon then begin
        let frame = (k1 + i) mod t.n in
        let deadline = release + t.deadlines.(frame) in
        if deadline <= horizon then events := deadline :: !events;
        walk (i + 1)
      end
    in
    walk 0
  done;
  List.sort_uniq compare !events

let edf_feasible ~horizon tasks =
  if horizon <= 0 then invalid_arg "Dbf.edf_feasible: non-positive horizon";
  let total_u = List.fold_left (fun acc t -> acc +. utilization t) 0. tasks in
  if total_u > 1. then false
  else begin
    let events =
      List.concat_map (fun t -> deadline_events t ~horizon) tasks
      |> List.sort_uniq compare
    in
    List.for_all
      (fun dt -> List.fold_left (fun acc t -> acc + dbf t dt) 0 tasks <= dt)
      events
  end
