open Gmf_util

type t = { frames : Frame_spec.t array; tsum : Timeunit.ns }

let make frames =
  if frames = [] then invalid_arg "Spec.make: empty frame list";
  let frames = Array.of_list frames in
  let tsum =
    Array.fold_left (fun acc (f : Frame_spec.t) -> acc + f.period) 0 frames
  in
  if tsum <= 0 then invalid_arg "Spec.make: zero-length cycle (TSUM = 0)";
  { frames; tsum }

let n t = Array.length t.frames

let frame t k =
  if k < 0 then invalid_arg "Spec.frame: negative index";
  t.frames.(k mod Array.length t.frames)

let frames t = Array.copy t.frames
let tsum t = t.tsum

let map_field f t = Array.map f t.frames

let periods t = map_field (fun (f : Frame_spec.t) -> f.period) t
let deadlines t = map_field (fun (f : Frame_spec.t) -> f.deadline) t
let jitters t = map_field (fun (f : Frame_spec.t) -> f.jitter) t
let payloads t = map_field (fun (f : Frame_spec.t) -> f.payload_bits) t

let fold_max f t =
  Array.fold_left (fun acc fr -> max acc (f fr)) min_int t.frames

let fold_min f t =
  Array.fold_left (fun acc fr -> min acc (f fr)) max_int t.frames

let max_jitter t = fold_max (fun (f : Frame_spec.t) -> f.jitter) t
let min_deadline t = fold_min (fun (f : Frame_spec.t) -> f.deadline) t
let min_period t = fold_min (fun (f : Frame_spec.t) -> f.period) t

let rotate t k =
  if k < 0 then invalid_arg "Spec.rotate: negative rotation";
  let len = Array.length t.frames in
  let k = k mod len in
  let rotated = Array.init len (fun i -> t.frames.((i + k) mod len)) in
  { frames = rotated; tsum = t.tsum }

let equal a b =
  Array.length a.frames = Array.length b.frames
  && Array.for_all2 Frame_spec.equal a.frames b.frames

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>GMF(n=%d, TSUM=%a)[" (n t) Timeunit.pp t.tsum;
  Array.iteri
    (fun i f ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Frame_spec.pp fmt f)
    t.frames;
  Format.fprintf fmt "]@]"
