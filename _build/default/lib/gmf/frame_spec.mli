(** One frame of a generalized multiframe (GMF) flow (paper Section 2.3).

    A GMF flow cycles through [n_i] frames; frame [k] is described by four
    scalars, one element from each of the tuples T_i, D_i, GJ_i, S_i:

    - [period]: T_i^k, the minimum separation between the arrival of frame
      [k] and frame [k+1] at the source;
    - [deadline]: D_i^k, the relative end-to-end deadline of frame [k];
    - [jitter]: GJ_i^k, the generalized jitter at the source — all Ethernet
      frames of the packet are released within [\[t, t + GJ_i^k)] of its
      arrival [t];
    - [payload_bits]: S_i^k, the application payload of the UDP packet. *)

type t = private {
  period : Gmf_util.Timeunit.ns;
  deadline : Gmf_util.Timeunit.ns;
  jitter : Gmf_util.Timeunit.ns;
  payload_bits : int;
}

val make :
  period:Gmf_util.Timeunit.ns ->
  deadline:Gmf_util.Timeunit.ns ->
  jitter:Gmf_util.Timeunit.ns ->
  payload_bits:int ->
  t
(** [make ~period ~deadline ~jitter ~payload_bits] validates and builds a
    frame.  Raises [Invalid_argument] if [period < 0], [deadline <= 0],
    [jitter < 0], or [payload_bits < 0].  (A zero period is legal in the GMF
    model — two frames may arrive simultaneously — as long as the whole
    cycle has positive length; {!Spec.make} checks that.) *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** e.g. [{T=30ms; D=100ms; GJ=1ms; S=352000b}]. *)
