lib/ethernet/constants.ml:
