lib/ethernet/constants.mli:
