lib/ethernet/encap.ml: Constants Format Gmf_util
