lib/ethernet/fragment.ml: Constants Gmf_util List Timeunit
