lib/ethernet/encap.mli: Format
