lib/ethernet/fragment.mli: Gmf_util
