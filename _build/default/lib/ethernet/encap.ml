type t = Udp | Rtp_udp

let pp fmt = function
  | Udp -> Format.pp_print_string fmt "UDP"
  | Rtp_udp -> Format.pp_print_string fmt "RTP/UDP"

let equal a b =
  match (a, b) with
  | Udp, Udp | Rtp_udp, Rtp_udp -> true
  | Udp, Rtp_udp | Rtp_udp, Udp -> false

let header_bits = function
  | Udp -> Constants.udp_header_bits
  | Rtp_udp -> Constants.udp_header_bits + Constants.rtp_header_bits

let nbits encap ~payload_bits =
  if payload_bits < 0 then invalid_arg "Encap.nbits: negative payload";
  let whole_bytes = 8 * Gmf_util.Timeunit.cdiv payload_bits 8 in
  whole_bytes + header_bits encap
