(** IP fragmentation of a UDP datagram into Ethernet frames and the
    resulting link-time costs (paper Section 3.1, eq 1 and the transmission
    time C of frame k of flow i).

    A datagram of [nbits] data bits (see {!Encap.nbits}) fragments into
    [ceil (nbits / 11840)] Ethernet frames: every fragment except possibly
    the last carries the full 1480 bytes of data; every fragment carries its
    own 20-byte IP header and the 304-bit Ethernet overhead, and is padded
    up to the 64-byte Ethernet minimum if needed.  This reconstructs the
    OCR-damaged formula of the paper (repair R3 in DESIGN.md); for datagrams
    that are a multiple of 11840 bits it agrees with the unambiguous branch
    of the paper's formula. *)

val fragment_count : nbits:int -> int
(** Number of Ethernet frames the datagram becomes.  A datagram always
    produces at least one frame (even a 0-payload datagram still carries the
    transport header).  Raises [Invalid_argument] if [nbits <= 0]. *)

val fragment_wire_bits : nbits:int -> int list
(** On-wire cost in bits of each fragment, in transmission order.  Full
    fragments cost {!Constants.eth_max_frame_bits}; the trailing fragment
    costs its data + IP header + Ethernet overhead, at least
    {!Constants.eth_min_frame_bits}. *)

val total_wire_bits : nbits:int -> int
(** Sum of {!fragment_wire_bits}. *)

val mft : rate_bps:int -> Gmf_util.Timeunit.ns
(** [mft ~rate_bps] is the Maximum-Frame-Transmission-Time of eq (1):
    the time a maximum-size Ethernet frame occupies a link of the given
    bit rate. *)

val tx_time : nbits:int -> rate_bps:int -> Gmf_util.Timeunit.ns
(** [tx_time ~nbits ~rate_bps] is the total link time of the datagram:
    the sum of the per-fragment transmission times (each rounded up to a
    whole nanosecond).  This is the C_i^k of the paper for one link, and is
    exactly the time the discrete-event simulator charges. *)

val fragment_tx_times : nbits:int -> rate_bps:int -> Gmf_util.Timeunit.ns list
(** Per-fragment transmission times, in order; sums to {!tx_time}. *)
