open Gmf_util

let check_nbits name nbits =
  if nbits <= 0 then invalid_arg (name ^ ": non-positive datagram size")

let fragment_count ~nbits =
  check_nbits "Fragment.fragment_count" nbits;
  Timeunit.cdiv nbits Constants.frag_data_bits

let trailing_wire_bits data_bits =
  let unpadded =
    data_bits + Constants.ip_header_bits + Constants.eth_overhead_bits
  in
  max unpadded Constants.eth_min_frame_bits

let fragment_wire_bits ~nbits =
  check_nbits "Fragment.fragment_wire_bits" nbits;
  let full = Timeunit.fdiv nbits Constants.frag_data_bits in
  let rem = nbits - (full * Constants.frag_data_bits) in
  let fulls = List.init full (fun _ -> Constants.eth_max_frame_bits) in
  if rem = 0 then fulls else fulls @ [ trailing_wire_bits rem ]

let total_wire_bits ~nbits =
  List.fold_left ( + ) 0 (fragment_wire_bits ~nbits)

let mft ~rate_bps =
  Timeunit.tx_time_ns ~bits:Constants.eth_max_frame_bits ~rate_bps

let fragment_tx_times ~nbits ~rate_bps =
  List.map
    (fun bits -> Timeunit.tx_time_ns ~bits ~rate_bps)
    (fragment_wire_bits ~nbits)

let tx_time ~nbits ~rate_bps =
  List.fold_left ( + ) 0 (fragment_tx_times ~nbits ~rate_bps)
