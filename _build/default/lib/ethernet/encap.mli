(** Datagram encapsulation math (paper Section 3.1).

    A GMF frame carries [S] bits of application payload.  Before it reaches
    the wire it is wrapped in transport headers; the paper gives two cases
    and we follow them exactly:

    - plain UDP:  [nbits = ceil(S/8)*8 + 8*8]
    - RTP/UDP:    [nbits = ceil(S/8)*8 + 16*8 + 8*8]

    [nbits] is the number of bits above the IP layer ("data bits"); the
    20-byte IP header is accounted per Ethernet fragment by {!Fragment}. *)

type t = Udp | Rtp_udp
(** Encapsulation used by a flow. *)

val pp : Format.formatter -> t -> unit
(** Human-readable name, ["UDP"] or ["RTP/UDP"]. *)

val equal : t -> t -> bool

val header_bits : t -> int
(** Transport header budget added once per datagram (UDP: 64 bits;
    RTP/UDP: 192 bits). *)

val nbits : t -> payload_bits:int -> int
(** [nbits encap ~payload_bits] is the datagram size above IP: the payload
    rounded up to whole bytes plus {!header_bits}.
    Raises [Invalid_argument] if [payload_bits < 0]. *)
