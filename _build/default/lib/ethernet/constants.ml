let bits_of_bytes b = 8 * b

let eth_header_bits = bits_of_bytes 14
let eth_crc_bits = bits_of_bytes 4
let eth_preamble_bits = bits_of_bytes 8
let eth_ifg_bits = bits_of_bytes 12

let eth_overhead_bits =
  eth_header_bits + eth_crc_bits + eth_preamble_bits + eth_ifg_bits

let eth_mtu_bits = bits_of_bytes 1500
let eth_max_frame_bits = eth_mtu_bits + eth_overhead_bits
let eth_min_payload_bits = bits_of_bytes 46
let eth_min_frame_bits = eth_min_payload_bits + eth_overhead_bits
let ip_header_bits = bits_of_bytes 20
let udp_header_bits = bits_of_bytes 8
let rtp_header_bits = bits_of_bytes 16
let frag_data_bits = eth_mtu_bits - ip_header_bits
let priority_levels_min = 2
let priority_levels_max = 8
