(** Wire-format constants of IEEE 802.3 Ethernet as used by the paper
    (Section 3.1).

    All sizes are in bits.  The paper counts the inter-frame gap and the
    preamble as part of a frame's cost on the wire, because they occupy link
    time exactly like payload bits do. *)

val eth_header_bits : int
(** 14-byte Ethernet MAC header (destination, source, EtherType). *)

val eth_crc_bits : int
(** 4-byte frame check sequence. *)

val eth_preamble_bits : int
(** 8-byte preamble + start-frame delimiter. *)

val eth_ifg_bits : int
(** 12-byte inter-frame gap. *)

val eth_overhead_bits : int
(** Total per-frame overhead: header + CRC + preamble/SFD + IFG = 304 bits. *)

val eth_mtu_bits : int
(** Maximum Ethernet payload (1500 bytes = 12000 bits). *)

val eth_max_frame_bits : int
(** Maximum on-wire frame cost: MTU + overhead = 12304 bits.  This is the
    numerator of the paper's MFT (eq 1). *)

val eth_min_payload_bits : int
(** Minimum Ethernet payload (46 bytes); shorter payloads are padded. *)

val eth_min_frame_bits : int
(** Minimum on-wire frame cost: 46-byte payload + overhead = 672 bits. *)

val ip_header_bits : int
(** 20-byte IPv4 header, present in every fragment. *)

val udp_header_bits : int
(** 8-byte UDP header, present once per datagram. *)

val rtp_header_bits : int
(** RTP header, present once per datagram when RTP encapsulation is used.
    The paper budgets 16 bytes for it. *)

val frag_data_bits : int
(** Data capacity of one Ethernet frame above the IP layer:
    MTU − IP header = 1480 bytes = 11840 bits. *)

val priority_levels_min : int
(** Fewest 802.1p priority levels found in commodity switches (paper: 2). *)

val priority_levels_max : int
(** Most 802.1p priority levels (paper: 8; 802.1p itself defines 8). *)
