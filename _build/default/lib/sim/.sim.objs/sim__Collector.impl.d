lib/sim/collector.ml: Gmf_util Hashtbl List Network Option Stats Timeunit Traffic
