lib/sim/engine.ml: Gmf_util Heap Timeunit
