lib/sim/netsim.mli: Collector Gmf_util Network Sim_config Traffic
