lib/sim/collector.mli: Gmf_util Network Traffic
