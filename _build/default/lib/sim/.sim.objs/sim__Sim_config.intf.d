lib/sim/sim_config.mli: Format Gmf_util
