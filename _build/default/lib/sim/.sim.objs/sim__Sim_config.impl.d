lib/sim/sim_config.ml: Format Gmf_util Printf Timeunit
