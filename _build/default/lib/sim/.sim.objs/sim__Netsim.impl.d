lib/sim/netsim.ml: Array Click Collector Engine Ethernet Gmf Gmf_util Hashtbl List Network Option Printf Queue Rng Sim_config Stride Timeunit Traffic
