lib/sim/engine.mli: Gmf_util
