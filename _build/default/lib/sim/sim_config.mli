(** Simulation run parameters. *)

type release_pattern =
  | Periodic
      (** Every frame arrives exactly its period after the previous one —
          the densest arrival sequence the GMF contract allows, used by the
          validation experiments. *)
  | Random_slack of float
      (** Exponential extra spacing with the given mean, expressed as a
          fraction of the frame's period.  Models sources that underrun
          their contract. *)

type jitter_pattern =
  | Spread
      (** The [m] Ethernet frames of a packet are released at
          [t + f * GJ / m] for [f = 0..m-1] — spanning almost the whole
          allowed window. *)
  | Bunched  (** All Ethernet frames released at the arrival instant. *)
  | Random  (** Uniform offsets in [\[0, GJ)], sorted, first forced to 0. *)

type t = {
  duration : Gmf_util.Timeunit.ns;
      (** Sources release packets during [\[0, duration)]; the run then
          drains in-flight packets. *)
  seed : int;  (** Master seed; every flow derives its own stream. *)
  release : release_pattern;
  jitter : jitter_pattern;
  random_phasing : bool;
      (** When true each flow starts at a random offset within its cycle;
          when false all flows release frame 0 at time 0 (a synchronized
          critical-instant-like start). *)
  queue_capacity : int option;
      (** Capacity, in Ethernet frames, of every switch queue (each ingress
          NIC FIFO and each output priority-queue set).  [None] = unbounded
          (the paper's Figure 5 assumption).  With a finite capacity,
          arrivals to a full queue are dropped and counted — used to
          validate the [Analysis.Backlog] bounds operationally: sizing
          queues to the analytic bound must yield zero drops. *)
  busy_poll : bool;
      (** Switch-CPU model for idle tasks.  [false] (default): an idle task
          yields instantly, so a rotation over idle tasks is free — an
          optimistic but valid refinement.  [true]: every selected task
          consumes its full CROUTE/CSEND even without work, which is
          exactly the worst case behind the analysis' CIRC(N) constant —
          the adversarial setting for tightness measurements.  (The CPU
          still parks after one fully idle rotation and is woken by the
          next arrival.) *)
  trace_limit : int;
      (** Record the full boundary-event journey of the first [trace_limit]
          completed packets (0 = off).  Read them back with
          [Collector.journeys]. *)
}

val default : t
(** 1 s, seed 42, periodic, spread jitter, synchronized start, unbounded
    queues. *)

val pp : Format.formatter -> t -> unit
