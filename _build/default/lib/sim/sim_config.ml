open Gmf_util

type release_pattern = Periodic | Random_slack of float

type jitter_pattern = Spread | Bunched | Random

type t = {
  duration : Timeunit.ns;
  seed : int;
  release : release_pattern;
  jitter : jitter_pattern;
  random_phasing : bool;
  queue_capacity : int option;
  busy_poll : bool;
  trace_limit : int;
}

let default =
  {
    duration = Timeunit.s 1;
    seed = 42;
    release = Periodic;
    jitter = Spread;
    random_phasing = false;
    queue_capacity = None;
    busy_poll = false;
    trace_limit = 0;
  }

let release_to_string = function
  | Periodic -> "periodic"
  | Random_slack f -> Printf.sprintf "random-slack(%.2f)" f

let jitter_to_string = function
  | Spread -> "spread"
  | Bunched -> "bunched"
  | Random -> "random"

let pp fmt t =
  Format.fprintf fmt "sim(%a, seed=%d, %s, jitter=%s, phasing=%s)" Timeunit.pp
    t.duration t.seed
    (release_to_string t.release)
    (jitter_to_string t.jitter)
    (if t.random_phasing then "random" else "synchronized")
