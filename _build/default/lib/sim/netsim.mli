(** Discrete-event model of the whole network of Figure 5: GMF traffic
    sources, work-conserving source output queues, links with transmission
    and propagation delay, and software-implemented Ethernet switches whose
    CPU runs the per-interface ingress/egress tasks under stride (round-
    robin) scheduling.

    The model matches the analysis assumptions except where the analysis is
    deliberately pessimistic (an idle task costs the simulator nothing while
    the analysis charges a full CIRC rotation), so for any scenario and any
    run the observed response times must stay at or below the analytic
    bounds — the soundness check of experiment E5. *)

type report = {
  collector : Collector.t;
  sim_end : Gmf_util.Timeunit.ns;  (** Time of the last processed event. *)
  packets_released : int;
  packets_completed : int;
  fragments_dropped : int;
      (** Ethernet frames discarded at full switch queues — always 0 under
          the default unbounded queues; see
          [Sim_config.t.queue_capacity]. *)
  cpu_utilization : (Network.Node.id * float) list;
      (** Per switch: the busiest processor's cumulative task-execution
          time as a fraction of the simulated span — an operational
          counterpart of the ingress-task utilization condition. *)
  egress_backlog : ((Network.Node.id * Network.Node.id) * int) list;
      (** High-water marks of every switch output priority queue, keyed by
          (switch, next hop) and measured in Ethernet frames — compared
          against [Analysis.Backlog.egress_bounds] by experiment E11. *)
  ingress_backlog : ((Network.Node.id * Network.Node.id) * int) list;
      (** High-water marks of every switch ingress NIC FIFO, keyed by
          (switch, sending neighbour). *)
}

val run : ?config:Sim_config.t -> Traffic.Scenario.t -> report
(** [run ?config scenario] simulates the scenario for
    [config.duration] of traffic generation, drains in-flight packets, and
    returns the collected response times.

    Raises [Invalid_argument] if a flow's route uses a link absent from the
    topology (scenarios built through [Traffic.Scenario.make] cannot
    trigger this). *)
