lib/scenario_io/print.mli: Traffic
