lib/scenario_io/units.mli: Gmf_util
