lib/scenario_io/units.ml: Float List Option Printf String
