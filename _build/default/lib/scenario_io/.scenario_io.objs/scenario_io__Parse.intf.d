lib/scenario_io/parse.mli: Format Traffic
