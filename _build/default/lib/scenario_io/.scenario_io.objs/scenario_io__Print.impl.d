lib/scenario_io/print.ml: Array Buffer Click Ethernet Gmf List Network Out_channel Printf String Traffic Units
