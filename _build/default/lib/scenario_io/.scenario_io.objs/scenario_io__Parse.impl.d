lib/scenario_io/parse.ml: Click Ethernet Format Gmf Hashtbl In_channel List Network Option Printf String Traffic Units
