(** Printer for the scenario description language.

    [to_string scenario] renders a description that {!Parse.scenario_of_string}
    parses back into a structurally identical scenario (round-trip tested).
    Directed links are printed individually ([link] lines, never [duplex]),
    routes are always explicit, and every switch with a model gets a
    [switch] directive, so nothing depends on defaulting rules. *)

val to_string : Traffic.Scenario.t -> string

val to_file : string -> Traffic.Scenario.t -> unit
(** [to_file path scenario] writes {!to_string} to [path]. *)
