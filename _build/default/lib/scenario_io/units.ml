let split_suffix str suffixes =
  (* Longest matching suffix wins ("ms" before "s"). *)
  let by_length (a, _) (b, _) =
    compare (String.length b) (String.length a)
  in
  let rec find = function
    | [] -> (str, None)
    | (suffix, scale) :: rest ->
        let n = String.length str and m = String.length suffix in
        if n > m && String.sub str (n - m) m = suffix then
          (String.sub str 0 (n - m), Some scale)
        else find rest
  in
  find (List.sort by_length suffixes)

let number text =
  match float_of_string_opt (String.trim text) with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "not a number: %S" text)

let duration str =
  let text, scale =
    split_suffix str
      [ ("ns", 1.); ("us", 1e3); ("ms", 1e6); ("s", 1e9) ]
  in
  match number text with
  | Error _ -> Error (Printf.sprintf "bad duration %S (want e.g. 2.7us)" str)
  | Ok value ->
      let scale = Option.value ~default:1. scale in
      let ns = Float.round (value *. scale) in
      if ns < 0. then Error (Printf.sprintf "negative duration %S" str)
      else Ok (int_of_float ns)

let rate str =
  let text, scale = split_suffix str [ ("k", 1e3); ("M", 1e6); ("G", 1e9) ] in
  match number text with
  | Error _ -> Error (Printf.sprintf "bad rate %S (want e.g. 100M)" str)
  | Ok value ->
      let scale = Option.value ~default:1. scale in
      let bps = Float.round (value *. scale) in
      if bps <= 0. then Error (Printf.sprintf "non-positive rate %S" str)
      else Ok (int_of_float bps)

let size_bits str =
  let text, scale = split_suffix str [ ("B", 8.); ("b", 1.) ] in
  match number text with
  | Error _ -> Error (Printf.sprintf "bad size %S (want e.g. 1500B)" str)
  | Ok value ->
      let scale = Option.value ~default:1. scale in
      let bits = Float.round (value *. scale) in
      if bits < 0. then Error (Printf.sprintf "negative size %S" str)
      else Ok (int_of_float bits)

let print_duration ns =
  if ns = 0 then "0"
  else if ns mod 1_000_000_000 = 0 then
    Printf.sprintf "%ds" (ns / 1_000_000_000)
  else if ns mod 1_000_000 = 0 then Printf.sprintf "%dms" (ns / 1_000_000)
  else if ns mod 1_000 = 0 then Printf.sprintf "%dus" (ns / 1_000)
  else Printf.sprintf "%dns" ns

let print_rate bps =
  if bps mod 1_000_000_000 = 0 then Printf.sprintf "%dG" (bps / 1_000_000_000)
  else if bps mod 1_000_000 = 0 then Printf.sprintf "%dM" (bps / 1_000_000)
  else if bps mod 1_000 = 0 then Printf.sprintf "%dk" (bps / 1_000)
  else string_of_int bps

let print_size_bits bits =
  if bits <> 0 && bits mod 8 = 0 then Printf.sprintf "%dB" (bits / 8)
  else Printf.sprintf "%db" bits
