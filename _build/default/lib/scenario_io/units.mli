(** Unit-suffixed literal parsing for the scenario description language.

    - durations: ["250ns"], ["2.7us"], ["33ms"], ["1s"], or a bare ["0"];
    - bit rates: ["10M"], ["100M"], ["1G"], ["9600"], ["64k"] (bits/s);
    - data sizes: ["1500B"] (bytes) or ["12000b"] (bits).

    All parsers are total: they return [Error message] rather than raise. *)

val duration : string -> (Gmf_util.Timeunit.ns, string) result
(** Fractional values are rounded to the nearest nanosecond. *)

val rate : string -> (int, string) result
(** Suffix k/M/G multiplies by 10^3/10^6/10^9.  Must be positive. *)

val size_bits : string -> (int, string) result
(** ["B"] suffix = bytes, ["b"] or none = bits.  Must be non-negative. *)

val print_duration : Gmf_util.Timeunit.ns -> string
(** Canonical rendering accepted back by {!duration}. *)

val print_rate : int -> string
(** Canonical rendering accepted back by {!rate}. *)

val print_size_bits : int -> string
(** Canonical rendering accepted back by {!size_bits}. *)
