lib/baseline/sporadic.mli: Analysis Click Gmf Network Traffic
