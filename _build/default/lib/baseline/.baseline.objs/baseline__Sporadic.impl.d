lib/baseline/sporadic.ml: Analysis Array Gmf List Traffic
