(** Sporadic-model baseline: the analysis the paper improves upon.

    Classical holistic schedulability analysis (Tindell & Clark, which the
    paper cites as the state of the art) characterizes each flow as a
    sporadic task: a {e single} worst-case packet re-released at the
    {e smallest} inter-arrival distance.  A GMF flow is collapsed to

    - payload = max_k S_i^k,
    - period = min_k T_i^k  (positive entries only — a GMF cycle may
      contain zero separations, which a sporadic model cannot express at
      all; those collapse to the smallest positive separation),
    - deadline = min_k D_i^k,
    - jitter = max_k GJ_i^k,

    and analyzed with exactly the same multihop pipeline.  The baseline is
    sound but pessimistic: experiment E4 measures how many fewer flows it
    admits than the GMF analysis. *)

val convert_spec : Gmf.Spec.t -> Gmf.Spec.t
(** The degenerate one-frame spec described above.
    Raises [Invalid_argument] if the spec has no positive period (cannot
    happen for specs accepted by [Gmf.Spec.make]). *)

val convert_flow : Traffic.Flow.t -> Traffic.Flow.t
(** Same flow with the converted spec. *)

val convert_scenario : Traffic.Scenario.t -> Traffic.Scenario.t
(** Every flow converted; topology and switch models shared. *)

val analyze :
  ?config:Analysis.Config.t -> Traffic.Scenario.t -> Analysis.Holistic.report
(** Holistic analysis of the converted scenario. *)

val check : ?config:Analysis.Config.t -> Traffic.Scenario.t ->
  Analysis.Admission.decision
(** Admission check under the sporadic model. *)

val admit_greedily :
  ?config:Analysis.Config.t ->
  topo:Network.Topology.t ->
  switches:(Network.Node.id * Click.Switch_model.t) list ->
  Traffic.Flow.t list ->
  Traffic.Flow.t list * Traffic.Flow.t list
(** Greedy admission (as [Analysis.Admission.admit_greedily]) but deciding
    with the sporadic-model analysis.  Returns the {e original} flows
    partitioned into (admitted, rejected). *)
