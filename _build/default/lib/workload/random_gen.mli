(** Random GMF workload generation for the admission, validation and scaling
    experiments (E4–E7).

    Generation is fully deterministic from the given RNG, so every
    experiment row can be reproduced from its printed seed. *)

type profile = {
  n_frames : int * int;  (** Inclusive range of cycle lengths n_i. *)
  period : Gmf_util.Timeunit.ns * Gmf_util.Timeunit.ns;
      (** Range of per-frame periods. *)
  payload_bytes : int * int;  (** Range of per-frame payloads. *)
  jitter : Gmf_util.Timeunit.ns * Gmf_util.Timeunit.ns;
  deadline_factor : float * float;
      (** Deadline = factor * TSUM of the generated spec. *)
  priorities : int * int;  (** 802.1p priority range. *)
}

val default_profile : profile
(** Video-like flows: 3–9 frames, 20–40 ms periods, 1–30 kB payloads,
    0–2 ms jitter, deadlines 0.5–1.5 TSUM, priorities 0–7. *)

val spec : Gmf_util.Rng.t -> profile -> Gmf.Spec.t
(** One random GMF spec drawn from the profile. *)

val flows_between :
  Gmf_util.Rng.t ->
  ?profile:profile ->
  ?encap:Ethernet.Encap.t ->
  topo:Network.Topology.t ->
  pairs:(Network.Node.id * Network.Node.id) list ->
  unit ->
  Traffic.Flow.t list
(** One random flow per (source, destination) pair, routed on the
    fewest-hop path.  Flow ids are 0, 1, 2, ... in pair order.  Raises
    [Invalid_argument] when a pair is not connected. *)

val random_pairs :
  Gmf_util.Rng.t ->
  hosts:Network.Node.id array ->
  count:int ->
  (Network.Node.id * Network.Node.id) list
(** [count] random ordered pairs of distinct hosts. *)

val random_topology :
  Gmf_util.Rng.t ->
  ?rate_bps:int ->
  switches:int ->
  hosts:int ->
  unit ->
  Network.Topology.t * Network.Node.id array
(** A random connected switch fabric: a random spanning tree over
    [switches] switches (plus a few extra cross links for path diversity),
    with [hosts] endhosts attached to random switches.  Returns (topology,
    host ids).  Raises [Invalid_argument] if [switches < 1] or
    [hosts < 2]. *)
