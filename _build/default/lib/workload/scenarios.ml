open Gmf_util

let video_flow_id = 0

let mbit100 = 100_000_000

let fig1_videoconf ?(rate_bps = 10_000_000) () =
  let net = Topologies.example ~rate_bps () in
  let h = net.Topologies.endhosts and s = net.Topologies.switches in
  let route nodes = Network.Route.make net.Topologies.topo nodes in
  let flow id name spec encap nodes priority =
    Traffic.Flow.make ~id ~name ~spec ~encap ~route:(route nodes) ~priority
  in
  let video = Mpeg.fig3_spec in
  let audio = Voip.g711_spec () in
  let bulk =
    Voip.spec ~period:(Timeunit.ms 20) ~payload_bytes:4_000
      ~deadline:(Timeunit.ms 200) ()
  in
  let flows =
    [
      flow video_flow_id "video:0->3" video Ethernet.Encap.Udp
        [ h.(0); s.(0); s.(2); h.(3) ] 5;
      flow 1 "audio:0->3" audio Ethernet.Encap.Rtp_udp
        [ h.(0); s.(0); s.(2); h.(3) ] 6;
      flow 2 "video:3->0" video Ethernet.Encap.Udp
        [ h.(3); s.(2); s.(0); h.(0) ] 5;
      flow 3 "audio:3->0" audio Ethernet.Encap.Rtp_udp
        [ h.(3); s.(2); s.(0); h.(0) ] 6;
      flow 4 "voip:1->2" audio Ethernet.Encap.Rtp_udp
        [ h.(1); s.(0); s.(1); h.(2) ] 7;
      flow 5 "bulk:7->1" bulk Ethernet.Encap.Udp
        [ net.Topologies.router; s.(1); s.(0); h.(1) ] 0;
    ]
  in
  Traffic.Scenario.make ~topo:net.Topologies.topo ~flows ()

let fig2_route scenario =
  (Traffic.Scenario.flow scenario video_flow_id).Traffic.Flow.route

let single_switch_voip ?(calls = 4) ?(rate_bps = mbit100) () =
  if calls < 1 then invalid_arg "Scenarios.single_switch_voip: need a call";
  let topo, hosts, sw = Topologies.star ~rate_bps ~hosts:(2 * calls) () in
  let flows =
    List.init calls (fun i ->
        Traffic.Flow.make ~id:i
          ~name:(Printf.sprintf "call%d" i)
          ~spec:(Voip.g711_spec ()) ~encap:Ethernet.Encap.Rtp_udp
          ~route:
            (Network.Route.make topo [ hosts.(2 * i); sw; hosts.((2 * i) + 1) ])
          ~priority:(7 - (i mod 2)))
  in
  Traffic.Scenario.make ~topo ~flows ()

let multihop_chain ?(switches = 4) ?(rate_bps = mbit100) () =
  if switches < 2 then invalid_arg "Scenarios.multihop_chain: need 2 switches";
  let topo, hosts, sw =
    Topologies.line ~rate_bps ~hosts_per_switch:2 ~switches ()
  in
  let last = switches - 1 in
  let video_route =
    (hosts.(0).(0) :: Array.to_list sw) @ [ hosts.(last).(0) ]
  in
  let video =
    Traffic.Flow.make ~id:0 ~name:"video:end-to-end"
      ~spec:(Mpeg.spec ~deadline:(Timeunit.ms 200) ())
      ~encap:Ethernet.Encap.Udp
      ~route:(Network.Route.make topo video_route)
      ~priority:5
  in
  (* One VoIP flow per inter-switch link plus one on the final access link,
     so every hop of the video flow sees higher-priority cross traffic. *)
  let cross_inter =
    List.init (switches - 1) (fun i ->
        Traffic.Flow.make ~id:(1 + i)
          ~name:(Printf.sprintf "voip:sw%d->sw%d" i (i + 1))
          ~spec:(Voip.g711_spec ()) ~encap:Ethernet.Encap.Rtp_udp
          ~route:
            (Network.Route.make topo
               [ hosts.(i).(1); sw.(i); sw.(i + 1); hosts.(i + 1).(1) ])
          ~priority:7)
  in
  let cross_last =
    Traffic.Flow.make ~id:switches ~name:"voip:last-hop"
      ~spec:(Voip.g711_spec ()) ~encap:Ethernet.Encap.Rtp_udp
      ~route:(Network.Route.make topo [ hosts.(last).(1); sw.(last); hosts.(last).(0) ])
      ~priority:7
  in
  Traffic.Scenario.make ~topo ~flows:(video :: cross_last :: cross_inter) ()

let enterprise ?(access_switches = 3) ?(rate_bps = mbit100) () =
  let topo, hosts, access, core =
    Topologies.tree ~rate_bps ~access_switches ~hosts_per_access:3 ()
  in
  (* The shared server sits on its own access switch port 0 of switch 0's
     third host; give it a dedicated access switch instead: reuse host
     (0, 2) as the server. *)
  let server = hosts.(0).(2) in
  let to_server a h =
    let src = hosts.(a).(h) in
    if a = 0 then [ src; access.(0); server ]
    else [ src; access.(a); core; access.(0); server ]
  in
  (* The server cannot source a flow to itself: skip any flow whose source
     host is the server (only host (0, 2) qualifies). *)
  let maybe id name spec encap a h priority =
    if hosts.(a).(h) = server then []
    else
      [
        Traffic.Flow.make ~id ~name ~spec ~encap
          ~route:(Network.Route.make topo (to_server a h))
          ~priority;
      ]
  in
  let backup_spec =
    Voip.spec ~period:(Timeunit.ms 50) ~payload_bytes:60_000
      ~deadline:(Timeunit.ms 500) ()
  in
  let flows =
    List.concat
      (List.concat
         (List.init access_switches (fun a ->
              [
                maybe (3 * a)
                  (Printf.sprintf "voip%d" a)
                  (Voip.g711_spec ()) Ethernet.Encap.Rtp_udp a 0 7;
                maybe
                  ((3 * a) + 1)
                  (Printf.sprintf "video%d" a)
                  (Mpeg.spec ~deadline:(Timeunit.ms 200) ())
                  Ethernet.Encap.Udp a 1 5;
                maybe
                  ((3 * a) + 2)
                  (Printf.sprintf "backup%d" a)
                  backup_spec Ethernet.Encap.Udp a 2 0;
              ])))
  in
  Traffic.Scenario.make ~topo ~flows ()
