lib/workload/mpeg.mli: Gmf Gmf_util
