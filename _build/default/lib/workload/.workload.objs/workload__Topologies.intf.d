lib/workload/topologies.mli: Gmf_util Network
