lib/workload/contract.ml: Array Gmf Gmf_util List Rng Timeunit
