lib/workload/contract.mli: Gmf Gmf_util
