lib/workload/voip.ml: Gmf Gmf_util List Timeunit
