lib/workload/random_gen.ml: Array Ethernet Gmf Gmf_util List Network Printf Rng Timeunit Traffic
