lib/workload/mpeg.ml: Float Gmf Gmf_util List Timeunit
