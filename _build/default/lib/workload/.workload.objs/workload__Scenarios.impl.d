lib/workload/scenarios.ml: Array Ethernet Gmf_util List Mpeg Network Printf Timeunit Topologies Traffic Voip
