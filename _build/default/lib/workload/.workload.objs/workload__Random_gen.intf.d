lib/workload/random_gen.mli: Ethernet Gmf Gmf_util Network Traffic
