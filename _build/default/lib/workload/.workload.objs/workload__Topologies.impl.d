lib/workload/topologies.ml: Array Network Option Printf
