lib/workload/voip.mli: Gmf Gmf_util
