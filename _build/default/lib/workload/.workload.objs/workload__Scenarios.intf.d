lib/workload/scenarios.mli: Network Traffic
