open Gmf_util

type sizes = { i_plus_p_bytes : int; p_bytes : int; b_bytes : int }

let fig3_sizes = { i_plus_p_bytes = 44_000; p_bytes = 20_000; b_bytes = 8_000 }

let gop_pattern sizes =
  let ip = 8 * sizes.i_plus_p_bytes in
  let p = 8 * sizes.p_bytes in
  let b = 8 * sizes.b_bytes in
  [ ip; b; b; p; b; b; p; b; b ]

let spec ?(sizes = fig3_sizes) ?(frame_interval = Timeunit.ms 30)
    ?(jitter = Timeunit.ms 1) ?(deadline = Timeunit.ms 150) () =
  gop_pattern sizes
  |> List.map (fun payload_bits ->
         Gmf.Frame_spec.make ~period:frame_interval ~deadline ~jitter
           ~payload_bits)
  |> Gmf.Spec.make

let fig3_spec = spec ()

let scaled_spec ~rate_scale =
  if rate_scale <= 0. then invalid_arg "Mpeg.scaled_spec: non-positive scale";
  let scale bytes =
    max 1 (int_of_float (Float.round (float_of_int bytes *. rate_scale)))
  in
  let sizes =
    {
      i_plus_p_bytes = scale fig3_sizes.i_plus_p_bytes;
      p_bytes = scale fig3_sizes.p_bytes;
      b_bytes = scale fig3_sizes.b_bytes;
    }
  in
  spec ~sizes ()
