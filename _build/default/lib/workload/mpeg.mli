(** MPEG video traffic in the GMF model (paper Figure 3 and Figure 4).

    The paper's running example is a movie that repeats the 9-frame group of
    pictures IBBPBBPBB, transmitted in the order [I+P, B, B, P, B, B, P, B,
    B] (B frames are differences against both neighbouring reference frames,
    so the reference following a B must be sent first) with one UDP packet
    per MPEG frame every 30 ms.

    The exact payload sizes behind Figure 4 are not recoverable from the
    paper text (repair R4 in DESIGN.md); {!fig3_spec} uses sizes chosen so
    that the two values the text does state are matched exactly on a
    10 Mbit/s link: NSUM = 94 Ethernet frames per cycle and TSUM = 270 ms. *)

type sizes = {
  i_plus_p_bytes : int;  (** Payload of the leading I+P packet. *)
  p_bytes : int;  (** Payload of a P packet. *)
  b_bytes : int;  (** Payload of a B packet. *)
}

val fig3_sizes : sizes
(** I+P = 44000, P = 20000, B = 8000 bytes: reproduces NSUM = 94 with UDP
    encapsulation. *)

val gop_pattern : sizes -> int list
(** Payloads in bits of the 9 packets in transmission order
    [I+P, B, B, P, B, B, P, B, B]. *)

val spec :
  ?sizes:sizes ->
  ?frame_interval:Gmf_util.Timeunit.ns ->
  ?jitter:Gmf_util.Timeunit.ns ->
  ?deadline:Gmf_util.Timeunit.ns ->
  unit ->
  Gmf.Spec.t
(** [spec ()] is the GMF spec of the Figure 3 stream: 9 frames, 30 ms
    inter-arrival, 1 ms generalized jitter (the value Figure 4 assumes) and
    a 150 ms end-to-end deadline unless overridden. *)

val fig3_spec : Gmf.Spec.t
(** [spec ()] with all defaults. *)

val scaled_spec : rate_scale:float -> Gmf.Spec.t
(** A Figure-3-shaped stream with payloads scaled by [rate_scale] (at least
    one byte per packet) — used to build workload mixes of varying load.
    Raises [Invalid_argument] if [rate_scale <= 0]. *)
