(** Voice-over-IP traffic — the application motivating the paper's
    introduction (Section 1).

    A VoIP stream is constant-bit-rate: one RTP/UDP packet per voice frame.
    In the GMF model that is the degenerate single-frame cycle. *)

val g711_spec :
  ?deadline:Gmf_util.Timeunit.ns -> ?jitter:Gmf_util.Timeunit.ns -> unit ->
  Gmf.Spec.t
(** G.711 at the common 20 ms packetization: 160 bytes of payload every
    20 ms.  Default deadline 150 ms (the ITU-T one-way target for
    interactive speech), default jitter 0. *)

val spec :
  period:Gmf_util.Timeunit.ns ->
  payload_bytes:int ->
  deadline:Gmf_util.Timeunit.ns ->
  ?jitter:Gmf_util.Timeunit.ns ->
  unit ->
  Gmf.Spec.t
(** Arbitrary CBR stream: one packet of [payload_bytes] every [period]. *)

val talkspurt_spec :
  ?talk_packets:int ->
  ?silence:Gmf_util.Timeunit.ns ->
  ?period:Gmf_util.Timeunit.ns ->
  ?payload_bytes:int ->
  ?deadline:Gmf_util.Timeunit.ns ->
  unit ->
  Gmf.Spec.t
(** A VoIP source with silence suppression, where GMF pays off: a cycle of
    [talk_packets] voice packets followed by one packet whose period is
    stretched by [silence] (the minimum silence gap).  Default: 20 packets
    of 160 bytes every 20 ms, then at least 200 ms of silence. *)
