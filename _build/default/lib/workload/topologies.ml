type example_net = {
  topo : Network.Topology.t;
  endhosts : Network.Node.id array;
  switches : Network.Node.id array;
  router : Network.Node.id;
}

let mbit10 = 10_000_000

let example ?(rate_bps = mbit10) ?(prop = 0) () =
  let topo = Network.Topology.create () in
  let host i =
    Network.Topology.add_node topo
      ~name:(Printf.sprintf "host%d" i)
      ~kind:Network.Node.Endhost
  in
  let endhosts = Array.init 4 host in
  let switch i =
    Network.Topology.add_node topo
      ~name:(Printf.sprintf "sw%d" (i + 4))
      ~kind:Network.Node.Switch
  in
  let switches = Array.init 3 switch in
  let router =
    Network.Topology.add_node topo ~name:"router7" ~kind:Network.Node.Router
  in
  let connect a b = Network.Topology.add_duplex_link topo ~a ~b ~rate_bps ~prop in
  (* Switch 4: endhosts 0, 1 and switches 5, 6 (Figure 5's four ports). *)
  connect endhosts.(0) switches.(0);
  connect endhosts.(1) switches.(0);
  connect switches.(0) switches.(1);
  connect switches.(0) switches.(2);
  (* Switch 5: endhost 2, router 7 and switch 6. *)
  connect endhosts.(2) switches.(1);
  connect router switches.(1);
  connect switches.(1) switches.(2);
  (* Switch 6: endhost 3. *)
  connect endhosts.(3) switches.(2);
  { topo; endhosts; switches; router }

let line ?(rate_bps = mbit10) ?(prop = 0) ~hosts_per_switch ~switches () =
  if switches < 1 then invalid_arg "Topologies.line: need a switch";
  if hosts_per_switch < 1 then invalid_arg "Topologies.line: need hosts";
  let topo = Network.Topology.create () in
  let switch_ids =
    Array.init switches (fun s ->
        Network.Topology.add_node topo
          ~name:(Printf.sprintf "sw%d" s)
          ~kind:Network.Node.Switch)
  in
  let hosts =
    Array.init switches (fun s ->
        Array.init hosts_per_switch (fun h ->
            let id =
              Network.Topology.add_node topo
                ~name:(Printf.sprintf "h%d_%d" s h)
                ~kind:Network.Node.Endhost
            in
            Network.Topology.add_duplex_link topo ~a:id ~b:switch_ids.(s)
              ~rate_bps ~prop;
            id))
  in
  for s = 0 to switches - 2 do
    Network.Topology.add_duplex_link topo ~a:switch_ids.(s)
      ~b:switch_ids.(s + 1) ~rate_bps ~prop
  done;
  (topo, hosts, switch_ids)

let star ?(rate_bps = mbit10) ?(prop = 0) ~hosts () =
  if hosts < 2 then invalid_arg "Topologies.star: need two hosts";
  let topo = Network.Topology.create () in
  let sw =
    Network.Topology.add_node topo ~name:"sw" ~kind:Network.Node.Switch
  in
  let host_ids =
    Array.init hosts (fun h ->
        let id =
          Network.Topology.add_node topo
            ~name:(Printf.sprintf "h%d" h)
            ~kind:Network.Node.Endhost
        in
        Network.Topology.add_duplex_link topo ~a:id ~b:sw ~rate_bps ~prop;
        id)
  in
  (topo, host_ids, sw)

let ring ?(rate_bps = mbit10) ?(prop = 0) ~switches () =
  if switches < 3 then invalid_arg "Topologies.ring: need three switches";
  let topo = Network.Topology.create () in
  let sw =
    Array.init switches (fun i ->
        Network.Topology.add_node topo
          ~name:(Printf.sprintf "sw%d" i)
          ~kind:Network.Node.Switch)
  in
  let hosts =
    Array.init switches (fun i ->
        let id =
          Network.Topology.add_node topo
            ~name:(Printf.sprintf "h%d" i)
            ~kind:Network.Node.Endhost
        in
        Network.Topology.add_duplex_link topo ~a:id ~b:sw.(i) ~rate_bps ~prop;
        id)
  in
  for i = 0 to switches - 1 do
    Network.Topology.add_duplex_link topo ~a:sw.(i)
      ~b:sw.((i + 1) mod switches)
      ~rate_bps ~prop
  done;
  (topo, hosts, sw)

let tree ?(rate_bps = mbit10) ?uplink_bps ?(prop = 0) ~access_switches
    ~hosts_per_access () =
  if access_switches < 1 then invalid_arg "Topologies.tree: need a switch";
  if hosts_per_access < 1 then invalid_arg "Topologies.tree: need hosts";
  let uplink_bps = Option.value ~default:(10 * rate_bps) uplink_bps in
  let topo = Network.Topology.create () in
  let core =
    Network.Topology.add_node topo ~name:"core" ~kind:Network.Node.Switch
  in
  let access =
    Array.init access_switches (fun a ->
        let id =
          Network.Topology.add_node topo
            ~name:(Printf.sprintf "acc%d" a)
            ~kind:Network.Node.Switch
        in
        Network.Topology.add_duplex_link topo ~a:id ~b:core
          ~rate_bps:uplink_bps ~prop;
        id)
  in
  let hosts =
    Array.init access_switches (fun a ->
        Array.init hosts_per_access (fun h ->
            let id =
              Network.Topology.add_node topo
                ~name:(Printf.sprintf "h%d_%d" a h)
                ~kind:Network.Node.Endhost
            in
            Network.Topology.add_duplex_link topo ~a:id ~b:access.(a)
              ~rate_bps ~prop;
            id))
  in
  (topo, hosts, access, core)
