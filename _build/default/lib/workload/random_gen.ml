open Gmf_util

type profile = {
  n_frames : int * int;
  period : Timeunit.ns * Timeunit.ns;
  payload_bytes : int * int;
  jitter : Timeunit.ns * Timeunit.ns;
  deadline_factor : float * float;
  priorities : int * int;
}

let default_profile =
  {
    n_frames = (3, 9);
    period = (Timeunit.ms 20, Timeunit.ms 40);
    payload_bytes = (1_000, 30_000);
    jitter = (0, Timeunit.ms 2);
    deadline_factor = (0.5, 1.5);
    priorities = (0, 7);
  }

let range rng (lo, hi) = Rng.int_in rng lo hi

let float_range rng (lo, hi) = lo +. Rng.float rng (hi -. lo)

let spec rng profile =
  let n = range rng profile.n_frames in
  let periods = Array.init n (fun _ -> range rng profile.period) in
  let tsum = Array.fold_left ( + ) 0 periods in
  let factor = float_range rng profile.deadline_factor in
  let deadline = max 1 (int_of_float (factor *. float_of_int tsum)) in
  List.init n (fun k ->
      Gmf.Frame_spec.make ~period:periods.(k) ~deadline
        ~jitter:(range rng profile.jitter)
        ~payload_bits:(8 * range rng profile.payload_bytes))
  |> Gmf.Spec.make

let flows_between rng ?(profile = default_profile)
    ?(encap = Ethernet.Encap.Udp) ~topo ~pairs () =
  List.mapi
    (fun id (src, dst) ->
      match Network.Topology.shortest_path topo ~src ~dst with
      | None ->
          invalid_arg
            (Printf.sprintf "Random_gen.flows_between: no path %d->%d" src dst)
      | Some path ->
          Traffic.Flow.make ~id
            ~name:(Printf.sprintf "rnd%d" id)
            ~spec:(spec rng profile) ~encap
            ~route:(Network.Route.make topo path)
            ~priority:(range rng profile.priorities))
    pairs

let random_pairs rng ~hosts ~count =
  if Array.length hosts < 2 then
    invalid_arg "Random_gen.random_pairs: need two hosts";
  List.init count (fun _ ->
      let src = Rng.pick rng hosts in
      let rec pick_dst () =
        let dst = Rng.pick rng hosts in
        if dst = src then pick_dst () else dst
      in
      (src, pick_dst ()))

let random_topology rng ?(rate_bps = 100_000_000) ~switches ~hosts () =
  if switches < 1 then invalid_arg "Random_gen.random_topology: no switches";
  if hosts < 2 then invalid_arg "Random_gen.random_topology: need two hosts";
  let topo = Network.Topology.create () in
  let sw =
    Array.init switches (fun i ->
        Network.Topology.add_node topo
          ~name:(Printf.sprintf "sw%d" i)
          ~kind:Network.Node.Switch)
  in
  (* Random spanning tree: attach switch i to a random earlier switch. *)
  for i = 1 to switches - 1 do
    let parent = sw.(Rng.int rng i) in
    Network.Topology.add_duplex_link topo ~a:sw.(i) ~b:parent ~rate_bps
      ~prop:0
  done;
  (* A few extra cross links for path diversity (skip duplicates). *)
  let extra = max 0 (switches / 3) in
  for _ = 1 to extra do
    let a = Rng.pick rng sw and b = Rng.pick rng sw in
    if a <> b && Network.Topology.find_link topo ~src:a ~dst:b = None then
      Network.Topology.add_duplex_link topo ~a ~b ~rate_bps ~prop:0
  done;
  let host_ids =
    Array.init hosts (fun h ->
        let id =
          Network.Topology.add_node topo
            ~name:(Printf.sprintf "h%d" h)
            ~kind:Network.Node.Endhost
        in
        Network.Topology.add_duplex_link topo ~a:id ~b:(Rng.pick rng sw)
          ~rate_bps ~prop:0;
        id)
  in
  (topo, host_ids)
