(** Topology builders: the paper's example network plus parametric shapes
    for the scaling and admission experiments. *)

type example_net = {
  topo : Network.Topology.t;
  endhosts : Network.Node.id array;  (** Nodes 0..3 of Figure 1. *)
  switches : Network.Node.id array;  (** Nodes 4..6 of Figure 1. *)
  router : Network.Node.id;  (** Node 7 of Figure 1. *)
}

val example :
  ?rate_bps:int -> ?prop:Gmf_util.Timeunit.ns -> unit -> example_net
(** The network of Figure 1: endhosts 0–3, software switches 4–6, IP router
    7.  Connectivity reconstructed from Figures 1, 2 and 5: switch 4 links
    to endhosts 0 and 1 and to switches 5 and 6 (the four interfaces shown
    in Figure 5); switch 5 links to endhost 2, router 7 and switches 4 and
    6; switch 6 links to endhost 3 and switches 4 and 5.  The route of
    Figure 2 (0 -> 4 -> 6 -> 3) exists.  Default link speed is the worked
    example's 10 Mbit/s, default propagation 0. *)

val line :
  ?rate_bps:int ->
  ?prop:Gmf_util.Timeunit.ns ->
  hosts_per_switch:int ->
  switches:int ->
  unit ->
  Network.Topology.t * Network.Node.id array array * Network.Node.id array
(** [line ~hosts_per_switch ~switches ()] is a chain of switches, each with
    its own endhosts.  Returns (topology, hosts.(s).(h), switch ids).
    Used by the multihop scaling experiment. *)

val star :
  ?rate_bps:int ->
  ?prop:Gmf_util.Timeunit.ns ->
  hosts:int ->
  unit ->
  Network.Topology.t * Network.Node.id array * Network.Node.id
(** A single switch with [hosts] endhosts — the smallest setting exercising
    all three analysis stages. *)

val ring :
  ?rate_bps:int ->
  ?prop:Gmf_util.Timeunit.ns ->
  switches:int ->
  unit ->
  Network.Topology.t * Network.Node.id array * Network.Node.id array
(** [ring ~switches ()] is a cycle of switches (at least 3), each with one
    endhost.  Returns (topology, hosts, switch ids).  Every host pair has
    two disjoint switch paths (clockwise and counter-clockwise) — the
    canonical rerouting setting. *)

val tree :
  ?rate_bps:int ->
  ?uplink_bps:int ->
  ?prop:Gmf_util.Timeunit.ns ->
  access_switches:int ->
  hosts_per_access:int ->
  unit ->
  Network.Topology.t * Network.Node.id array array * Network.Node.id array
  * Network.Node.id
(** [tree ~access_switches ~hosts_per_access ()] is the classic enterprise
    edge: a core switch, [access_switches] access switches hanging off it
    (uplinks at [uplink_bps], default 10x the access rate), and
    [hosts_per_access] endhosts per access switch.  Returns
    (topology, hosts.(a).(h), access switch ids, core switch id). *)
