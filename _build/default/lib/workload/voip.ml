open Gmf_util

let spec ~period ~payload_bytes ~deadline ?(jitter = 0) () =
  Gmf.Spec.make
    [
      Gmf.Frame_spec.make ~period ~deadline ~jitter
        ~payload_bits:(8 * payload_bytes);
    ]

let g711_spec ?(deadline = Timeunit.ms 150) ?(jitter = 0) () =
  spec ~period:(Timeunit.ms 20) ~payload_bytes:160 ~deadline ~jitter ()

let talkspurt_spec ?(talk_packets = 20) ?(silence = Timeunit.ms 200)
    ?(period = Timeunit.ms 20) ?(payload_bytes = 160)
    ?(deadline = Timeunit.ms 150) () =
  if talk_packets < 1 then
    invalid_arg "Voip.talkspurt_spec: need at least one talk packet";
  let talk k =
    let p = if k = talk_packets - 1 then period + silence else period in
    Gmf.Frame_spec.make ~period:p ~deadline ~jitter:0
      ~payload_bits:(8 * payload_bytes)
  in
  Gmf.Spec.make (List.init talk_packets talk)
