(** GMF contract extraction from packet traces.

    The paper assumes flows arrive already described in the GMF model; in
    practice an operator meters a source (or reads an encoder's settings)
    and must derive the tuples T_i, S_i from observations.  This module
    extracts, from a packet trace with a known cycle length (e.g. the GOP
    length of an MPEG encoder), the tightest GMF contract that the trace
    respects:

    - T_k = the smallest observed separation between a packet at cycle
      position k and its successor;
    - S_k = the largest observed payload at position k;
    - GJ_k = a caller-supplied bound (packet traces carry no sub-packet
      release information).

    The extracted contract {e dominates} the trace: replaying the trace
    against the contract violates neither the minimum-separation nor the
    maximum-size constraints (tested, including against the contract's
    request-bound functions). *)

type trace = (Gmf_util.Timeunit.ns * int) list
(** (arrival instant, payload bits), strictly increasing instants. *)

val of_trace :
  cycle:int ->
  deadline:Gmf_util.Timeunit.ns ->
  ?jitter:Gmf_util.Timeunit.ns ->
  trace ->
  Gmf.Spec.t
(** [of_trace ~cycle ~deadline trace] extracts the contract.  The first
    trace entry is cycle position 0.  Raises [Invalid_argument] when
    [cycle < 1], the trace has fewer than [cycle + 1] packets (every
    position needs at least one observed separation), instants are not
    strictly increasing, or a payload is negative. *)

val respects : Gmf.Spec.t -> trace -> bool
(** [respects spec trace] checks the trace against the contract: position
    [k] payloads at most S_k and separations at least T_k.  (The first
    packet is position 0.) *)

val synthetic_mpeg_trace :
  Gmf_util.Rng.t ->
  ?gop:int ->
  ?base_interval:Gmf_util.Timeunit.ns ->
  ?interval_noise:Gmf_util.Timeunit.ns ->
  packets:int ->
  unit ->
  trace
(** A noisy MPEG-like trace for tests and demos: GOP pattern of [gop]
    packets (default 9, I-sized first), nominal [base_interval] (default
    30 ms) plus uniform positive noise up to [interval_noise] (default
    5 ms), payload sizes varying ±25% around the Figure 3 sizes. *)
