(** Named, ready-to-run scenarios used by the CLI, the examples and the
    experiments. *)

val fig1_videoconf : ?rate_bps:int -> unit -> Traffic.Scenario.t
(** The paper's running example: the Figure 1 network with

    - the Figure 3 MPEG video flow on the Figure 2 route (0 -> 4 -> 6 -> 3)
      at priority 5, with its G.711 audio companion at priority 6 (a video
      conferencing process is "associated with two flows: one for video and
      one for audio", Section 2.1);
    - a reverse video+audio pair from endhost 3 to endhost 0;
    - a VoIP call from endhost 1 to endhost 2 (via 4 and 5) at priority 7;
    - a best-effort-like bulk UDP flow from router 7 to endhost 1 at
      priority 0.

    Default link speed is the worked example's 10 Mbit/s. *)

val fig2_route : Traffic.Scenario.t -> Network.Route.t
(** The 0 -> 4 -> 6 -> 3 route inside {!fig1_videoconf}'s topology. *)

val video_flow_id : Traffic.Flow.id
(** Id of the Figure 2/3 video flow inside {!fig1_videoconf} (= 0). *)

val single_switch_voip :
  ?calls:int -> ?rate_bps:int -> unit -> Traffic.Scenario.t
(** [calls] independent G.711 calls crossing one switch — the "VoIP in
    medical care" setting of the introduction.  Call [i] runs from host
    [2i] to host [2i+1] at priority 7 minus [i mod 2] (two 802.1p classes).
    Default 4 calls at 100 Mbit/s. *)

val multihop_chain :
  ?switches:int -> ?rate_bps:int -> unit -> Traffic.Scenario.t
(** One MPEG flow traversing a chain of [switches] switches end to end,
    with a VoIP cross-flow injected at every switch.  Exercises jitter
    accumulation over many hops.  Default 4 switches at 100 Mbit/s. *)

val enterprise :
  ?access_switches:int -> ?rate_bps:int -> unit -> Traffic.Scenario.t
(** An enterprise edge on a {!Topologies.tree}: per access switch, one
    VoIP call and one video stream to a server behind the core, plus one
    low-priority bulk backup crossing the core.  Default 3 access switches
    at 100 Mbit/s access / 1 Gbit/s uplinks. *)
