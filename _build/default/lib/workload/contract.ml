open Gmf_util

type trace = (Timeunit.ns * int) list

let check_trace trace =
  let rec go = function
    | (t1, s1) :: ((t2, _) :: _ as rest) ->
        if s1 < 0 then invalid_arg "Contract: negative payload";
        if t2 <= t1 then
          invalid_arg "Contract: instants must be strictly increasing";
        go rest
    | [ (_, s) ] -> if s < 0 then invalid_arg "Contract: negative payload"
    | [] -> ()
  in
  go trace

let of_trace ~cycle ~deadline ?(jitter = 0) trace =
  if cycle < 1 then invalid_arg "Contract.of_trace: cycle < 1";
  check_trace trace;
  if List.length trace < cycle + 1 then
    invalid_arg
      "Contract.of_trace: need at least cycle+1 packets to observe every \
       separation";
  let min_sep = Array.make cycle max_int in
  let max_size = Array.make cycle 0 in
  let rec scan index = function
    | (t1, s1) :: ((t2, _) :: _ as rest) ->
        let k = index mod cycle in
        if t2 - t1 < min_sep.(k) then min_sep.(k) <- t2 - t1;
        if s1 > max_size.(k) then max_size.(k) <- s1;
        scan (index + 1) rest
    | [ (_, s1) ] ->
        let k = index mod cycle in
        if s1 > max_size.(k) then max_size.(k) <- s1
    | [] -> ()
  in
  scan 0 trace;
  List.init cycle (fun k ->
      Gmf.Frame_spec.make ~period:min_sep.(k) ~deadline ~jitter
        ~payload_bits:max_size.(k))
  |> Gmf.Spec.make

let respects spec trace =
  check_trace trace;
  let n = Gmf.Spec.n spec in
  let rec go index = function
    | (t1, s1) :: ((t2, _) :: _ as rest) ->
        let f = Gmf.Spec.frame spec (index mod n) in
        s1 <= f.Gmf.Frame_spec.payload_bits
        && t2 - t1 >= f.Gmf.Frame_spec.period
        && go (index + 1) rest
    | [ (_, s1) ] ->
        let f = Gmf.Spec.frame spec (index mod n) in
        s1 <= f.Gmf.Frame_spec.payload_bits
    | [] -> true
  in
  go 0 trace

let synthetic_mpeg_trace rng ?(gop = 9) ?(base_interval = Timeunit.ms 30)
    ?(interval_noise = Timeunit.ms 5) ~packets () =
  if packets < 1 then invalid_arg "Contract.synthetic_mpeg_trace: no packets";
  if gop < 1 then invalid_arg "Contract.synthetic_mpeg_trace: bad gop";
  let nominal k =
    if k = 0 then 8 * 44_000
    else if k mod 3 = 0 then 8 * 20_000
    else 8 * 8_000
  in
  let size k =
    let base = nominal (k mod gop) in
    (* +/- 25% uniform *)
    let delta = Rng.int_in rng (-base / 4) (base / 4) in
    max 8 (base + delta)
  in
  let rec build index time acc =
    if index >= packets then List.rev acc
    else begin
      let gap =
        base_interval
        + if interval_noise > 0 then Rng.int rng interval_noise else 0
      in
      build (index + 1) (time + gap) ((time, size index) :: acc)
    end
  in
  build 0 0 []
