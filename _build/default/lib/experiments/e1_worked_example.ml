open Gmf_util

type result = {
  csum : Timeunit.ns;
  nsum : int;
  tsum : Timeunit.ns;
  mft : Timeunit.ns;
}

let params () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let flow = Traffic.Scenario.flow scenario Workload.Scenarios.video_flow_id in
  (flow, Traffic.Scenario.params scenario flow ~src:0 ~dst:4)

let compute () =
  let flow, p = params () in
  {
    csum = Traffic.Link_params.csum p;
    nsum = Traffic.Link_params.nsum p;
    tsum = Traffic.Flow.tsum flow;
    mft = Traffic.Link_params.mft p;
  }

let frame_label k =
  match k with
  | 0 -> "I+P"
  | 3 | 6 -> "P"
  | _ -> "B"

let run () =
  Exp_common.section
    "E1: worked example (Figures 3-4, Section 3.1) - MPEG stream on \
     link(0,4) at 10 Mbit/s";
  let flow, p = params () in
  let spec = flow.Traffic.Flow.spec in
  let table =
    Tablefmt.create
      ~columns:
        [
          ("k", Tablefmt.Right); ("type", Tablefmt.Left);
          ("S (payload b)", Tablefmt.Right); ("nbits", Tablefmt.Right);
          ("eth frames", Tablefmt.Right); ("C on link(0,4)", Tablefmt.Right);
          ("T", Tablefmt.Right); ("GJ", Tablefmt.Right);
        ]
  in
  for k = 0 to Gmf.Spec.n spec - 1 do
    let f = Gmf.Spec.frame spec k in
    Tablefmt.add_row table
      [
        string_of_int k; frame_label k;
        string_of_int f.Gmf.Frame_spec.payload_bits;
        string_of_int (Traffic.Flow.nbits flow k);
        string_of_int p.Traffic.Link_params.eth_frames.(k);
        Timeunit.to_string p.Traffic.Link_params.c.(k);
        Timeunit.to_string f.Gmf.Frame_spec.period;
        Timeunit.to_string f.Gmf.Frame_spec.jitter;
      ]
  done;
  Tablefmt.print table;
  let r = compute () in
  print_newline ();
  Exp_common.check_line ~label:"NSUM (eq 5, Ethernet frames per cycle)"
    ~expected:"94" ~got:(string_of_int r.nsum);
  Exp_common.check_line ~label:"TSUM (eq 6, cycle length)" ~expected:"270ms"
    ~got:(Timeunit.to_string r.tsum);
  Exp_common.check_line ~label:"MFT (eq 1)" ~expected:"1.2304ms"
    ~got:(Timeunit.to_string r.mft);
  Exp_common.kv "CSUM (eq 4; paper digits OCR-damaged, repair R4)"
    (Timeunit.to_string r.csum);
  Exp_common.kv "link utilization CSUM/TSUM"
    (Printf.sprintf "%.4f" (Traffic.Link_params.utilization p))
