open Gmf_util

type row = {
  ports : int;
  processors : int;
  circ : Timeunit.ns;
  video_bound : Timeunit.ns option;
}

let configurations = [ (4, 1); (8, 1); (16, 1); (32, 1); (48, 16); (48, 1) ]

let scenario_with_model model =
  let base = Workload.Scenarios.fig1_videoconf () in
  let topo = Traffic.Scenario.topo base in
  let switches =
    List.map (fun n -> (n, model)) (Traffic.Scenario.switch_nodes base)
  in
  Traffic.Scenario.make ~switches ~topo ~flows:(Traffic.Scenario.flows base) ()

let sweep () =
  List.map
    (fun (ports, processors) ->
      let model = Click.Switch_model.make ~ninterfaces:ports ~processors () in
      let report = Analysis.Holistic.analyze (scenario_with_model model) in
      let video_bound =
        if Analysis.Holistic.is_schedulable report then
          Some (Exp_common.worst_total report Workload.Scenarios.video_flow_id)
        else None
      in
      { ports; processors; circ = Click.Switch_model.circ model; video_bound })
    configurations

let run () =
  Exp_common.section
    "E3: CIRC sensitivity (Section 2.2 + Conclusions) - Figure 1 scenario";
  (* The two headline constants. *)
  let circ_of p m =
    Click.Switch_model.circ (Click.Switch_model.make ~ninterfaces:p ~processors:m ())
  in
  Exp_common.check_line ~label:"CIRC, 4 ports / 1 CPU (Section 2.2)"
    ~expected:"14.8us"
    ~got:(Timeunit.to_string (circ_of 4 1));
  Exp_common.check_line ~label:"CIRC, 48 ports / 16 CPUs (Conclusions)"
    ~expected:"11.1us"
    ~got:(Timeunit.to_string (circ_of 48 16));
  (* Conclusions: such a switch 'can comfortably deal with 1 Gbit/s links':
     a maximal Ethernet frame occupies a 1 Gbit/s link longer than one task
     rotation, so the egress task keeps the link busy. *)
  let mft_1g = Ethernet.Fragment.mft ~rate_bps:1_000_000_000 in
  Exp_common.kv "MFT at 1 Gbit/s" (Timeunit.to_string mft_1g);
  Exp_common.kv "CIRC(48,16) < MFT(1Gb/s)?"
    (if circ_of 48 16 < mft_1g then "yes (claim reproduced)" else "NO");
  print_newline ();
  let table =
    Tablefmt.create
      ~columns:
        [
          ("ports", Tablefmt.Right); ("CPUs", Tablefmt.Right);
          ("CIRC", Tablefmt.Right); ("video worst R", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row table
        [
          string_of_int r.ports; string_of_int r.processors;
          Timeunit.to_string r.circ;
          (match r.video_bound with
          | Some b -> Timeunit.to_string b
          | None -> "unschedulable");
        ])
    (sweep ());
  Tablefmt.print table;
  print_endline
    "  (bounds grow with CIRC; the multiprocessor 48-port switch matches the\n\
    \   4-port single-CPU switch, as the Conclusions argue)"
