open Gmf_util

type allocation_row = {
  tickets : int;
  runs : int;
  expected : float;
  error : float;
}

let allocation_table ~steps tickets =
  let s = Stride.Scheduler.create () in
  let ids = List.map (fun t -> (Stride.Scheduler.add_task s ~tickets:t, t)) tickets in
  let total = List.fold_left ( + ) 0 tickets in
  for _ = 1 to steps do
    ignore (Stride.Scheduler.select s)
  done;
  List.map
    (fun (id, t) ->
      let runs = Stride.Scheduler.run_count s id in
      let expected = float_of_int (steps * t) /. float_of_int total in
      { tickets = t; runs; expected; error = float_of_int runs -. expected })
    ids

(* Virtual-clock walk of a fully/partially loaded switch CPU: every selected
   task with work costs its full CROUTE/CSEND; idle tasks yield for free
   (Click's idle poll is negligible).  The paper's claim: any task is
   serviced at least once per CIRC(N). *)
let max_service_gap_in_switch () =
  let model = Click.Switch_model.make ~ninterfaces:4 () in
  let sched = Click.Switch_model.scheduler model in
  let ntasks = Stride.Scheduler.task_count sched in
  let rng = Rng.create ~seed:99 in
  let clock = ref 0 in
  let last_service = Array.make ntasks 0 in
  let worst_gap = ref 0 in
  for _ = 1 to 100_000 do
    let id = Stride.Scheduler.select sched in
    (* Even-indexed tasks are ingress (CROUTE), odd are egress (CSEND). *)
    let cost =
      if id mod 2 = 0 then model.Click.Switch_model.croute
      else model.Click.Switch_model.csend
    in
    (* 70% of selections find work; the others poll for free. *)
    let busy = Rng.int rng 10 < 7 in
    if busy then begin
      clock := !clock + cost;
      let gap = !clock - last_service.(id) in
      if gap > !worst_gap then worst_gap := gap;
      last_service.(id) <- !clock
    end
    else last_service.(id) <- !clock
  done;
  (!worst_gap, Click.Switch_model.circ model)

let run () =
  Exp_common.section "E9: stride scheduling (Section 2.2, [8])";
  print_endline "3:2:1 ticket allocation after 600 quanta:";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("tickets", Tablefmt.Right); ("services", Tablefmt.Right);
          ("expected", Tablefmt.Right); ("error", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row table
        [
          string_of_int r.tickets; string_of_int r.runs;
          Printf.sprintf "%.1f" r.expected; Printf.sprintf "%+.1f" r.error;
        ])
    (allocation_table ~steps:600 [ 3; 2; 1 ]);
  Tablefmt.print table;
  print_newline ();
  (* Round-robin collapse. *)
  let rr = Stride.Scheduler.round_robin ~ntasks:4 in
  let order = List.init 8 (fun _ -> Stride.Scheduler.select rr) in
  Exp_common.kv "ticket=1 dispatch order (Click default)"
    (String.concat " " (List.map string_of_int order));
  Exp_common.check_line ~label:"collapses to round-robin"
    ~expected:"0 1 2 3 0 1 2 3"
    ~got:(String.concat " " (List.map string_of_int order));
  print_newline ();
  let gap, circ = max_service_gap_in_switch () in
  Exp_common.kv "worst task-service gap (loaded 4-port switch)"
    (Timeunit.to_string gap);
  Exp_common.kv "analytic CIRC bound (Section 2.2)" (Timeunit.to_string circ);
  Exp_common.kv "gap <= CIRC" (if gap <= circ then "yes" else "NO")
