(** E16 — software-implemented vs hardware switches (extension).

    The paper's subject is the extra delay a {e software} switch adds: the
    per-frame CROUTE/CSEND processing and the CIRC task-rotation
    granularity.  Setting both task costs to zero turns the model into an
    idealized store-and-forward hardware switch with 802.1p queues, so the
    same analysis and simulator quantify the software penalty exactly. *)

type comparison = {
  scenario : string;
  software_bound : Gmf_util.Timeunit.ns;
  hardware_bound : Gmf_util.Timeunit.ns;
  software_observed : Gmf_util.Timeunit.ns;
  hardware_observed : Gmf_util.Timeunit.ns;
}

val compare_on : name:string -> rate_bps:int -> comparison
(** The Figure 1 video flow under both switch models at the given link
    speed. *)

val run : unit -> unit
