(** E19 — randomized mass validation campaign (extension).

    The single strongest piece of evidence for the whole stack: generate
    many random scenarios (random switch fabrics, random GMF flows on
    shortest paths), analyze each under both variants, simulate every
    schedulable one under dense arrivals, and check per-(flow, frame)
    domination.  Reports aggregate statistics; any violation is listed.

    All randomness is seeded, so the campaign is reproducible. *)

type summary = {
  scenarios : int;
  schedulable : int;
  violations : string list;  (** Human-readable descriptions; empty = sound. *)
  mean_tightness : float;  (** Mean over schedulable scenarios. *)
  faithful_smaller : int;
      (** Scenarios where the paper-literal variant produced a smaller
          (i.e. potentially unsound) bound than the repaired one. *)
}

val campaign : ?count:int -> ?seed:int -> unit -> summary
(** Default 30 scenarios from master seed 7. *)

val run : unit -> unit
