(** E3 — sensitivity to CIRC(N), the task-service rotation time
    (Section 2.2 and the multiprocessor discussion in the Conclusions).

    Sweeps switch configurations (port count x processors) on the Figure 1
    scenario and reports the video flow's end-to-end bound, reproducing the
    paper's two headline CIRC values (4 ports / 1 CPU -> 14.8 us;
    48 ports / 16 CPUs -> 11.1 us) and the Conclusions' claim that the
    16-processor switch keeps up with 1 Gbit/s links (CIRC < MFT). *)

type row = {
  ports : int;
  processors : int;
  circ : Gmf_util.Timeunit.ns;
  video_bound : Gmf_util.Timeunit.ns option;
      (** None when the configuration is unschedulable. *)
}

val sweep : unit -> row list

val run : unit -> unit
