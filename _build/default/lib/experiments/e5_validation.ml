open Gmf_util

type row = {
  name : string;
  schedulable : bool;
  sound : bool;
  worst_bound : Timeunit.ns;
  worst_observed : Timeunit.ns;
  tightness : float;
}

let validate ?(duration = Timeunit.s 2) ?(busy_poll = false) ~name scenario =
  let report = Analysis.Holistic.analyze scenario in
  if not (Analysis.Holistic.is_schedulable report) then
    {
      name;
      schedulable = false;
      sound = true;
      worst_bound = 0;
      worst_observed = 0;
      tightness = 0.;
    }
  else begin
    let sim =
      Sim.Netsim.run
        ~config:{ Sim.Sim_config.default with duration; busy_poll }
        scenario
    in
    let sound = ref true in
    let worst_bound = ref 0 in
    let worst_observed = ref 0 in
    let tightness = ref 0. in
    List.iter
      (fun res ->
        let flow_id = res.Analysis.Result_types.flow.Traffic.Flow.id in
        Array.iter
          (fun (fr : Analysis.Result_types.frame_result) ->
            let bound = fr.Analysis.Result_types.total in
            worst_bound := max !worst_bound bound;
            match
              Sim.Collector.max_response sim.Sim.Netsim.collector
                ~flow:flow_id ~frame:fr.Analysis.Result_types.frame
            with
            | None -> ()
            | Some observed ->
                worst_observed := max !worst_observed observed;
                if observed > bound then sound := false;
                let t = float_of_int observed /. float_of_int bound in
                if t > !tightness then tightness := t)
          res.Analysis.Result_types.frames)
      report.Analysis.Holistic.results;
    {
      name;
      schedulable = true;
      sound = !sound;
      worst_bound = !worst_bound;
      worst_observed = !worst_observed;
      tightness = !tightness;
    }
  end

let random_star seed =
  let rng = Rng.create ~seed in
  let topo, hosts, _sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:4 ()
  in
  let pairs = Workload.Random_gen.random_pairs rng ~hosts ~count:4 in
  let flows = Workload.Random_gen.flows_between rng ~topo ~pairs () in
  Traffic.Scenario.make ~topo ~flows ()

let rows () =
  [
    validate ~name:"fig1-videoconf" (Workload.Scenarios.fig1_videoconf ());
    validate ~name:"fig1 (busy-poll cpu)" ~busy_poll:true
      (Workload.Scenarios.fig1_videoconf ());
    validate ~name:"voip-star" (Workload.Scenarios.single_switch_voip ());
    validate ~name:"multihop-chain" (Workload.Scenarios.multihop_chain ());
    validate ~name:"enterprise-tree" (Workload.Scenarios.enterprise ());
  ]
  @ List.map
      (fun seed -> validate ~name:(Printf.sprintf "random-%d" seed)
          (random_star seed))
      [ 1; 2; 3; 4; 5 ]

let run () =
  Exp_common.section
    "E5: soundness validation - simulator observations vs analytic bounds";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("scenario", Tablefmt.Left); ("schedulable", Tablefmt.Left);
          ("worst bound", Tablefmt.Right); ("worst observed", Tablefmt.Right);
          ("tightness", Tablefmt.Right); ("sound", Tablefmt.Left);
        ]
  in
  let all_sound = ref true in
  List.iter
    (fun r ->
      if not r.sound then all_sound := false;
      Tablefmt.add_row table
        [
          r.name;
          (if r.schedulable then "yes" else "no (skipped)");
          (if r.schedulable then Timeunit.to_string r.worst_bound else "-");
          (if r.schedulable then Timeunit.to_string r.worst_observed else "-");
          (if r.schedulable then Printf.sprintf "%.3f" r.tightness else "-");
          (if r.sound then "yes" else "VIOLATED");
        ])
    (rows ());
  Tablefmt.print table;
  Exp_common.kv "all bounds dominate observations"
    (if !all_sound then "yes" else "NO - soundness violation!")
