open Gmf_util

let report () =
  Analysis.Holistic.analyze (Workload.Scenarios.fig1_videoconf ())

let stage_columns stages =
  List.map
    (fun (sr : Analysis.Result_types.stage_response) ->
      Format.asprintf "%a" Analysis.Stage.pp sr.Analysis.Result_types.stage)
    stages

let run () =
  Exp_common.section
    "E2: end-to-end bounds on the Figure 1 network (algorithm of Figure 6)";
  let r = report () in
  Exp_common.kv "verdict" (Exp_common.verdict_string r);
  Exp_common.kv "holistic rounds" (string_of_int r.Analysis.Holistic.rounds);
  print_newline ();
  (* Per-stage breakdown of the video flow (route of Figure 2). *)
  let video = Exp_common.flow_result r Workload.Scenarios.video_flow_id in
  let sample = video.Analysis.Result_types.frames.(0) in
  let columns =
    [ ("frame", Tablefmt.Right) ]
    @ List.map
        (fun c -> (c, Tablefmt.Right))
        (stage_columns sample.Analysis.Result_types.stages)
    @ [ ("R (total)", Tablefmt.Right); ("D", Tablefmt.Right);
        ("slack", Tablefmt.Right) ]
  in
  let table = Tablefmt.create ~columns in
  Array.iter
    (fun (fr : Analysis.Result_types.frame_result) ->
      Tablefmt.add_row table
        ([ string_of_int fr.Analysis.Result_types.frame ]
        @ List.map
            (fun (sr : Analysis.Result_types.stage_response) ->
              Timeunit.to_string sr.Analysis.Result_types.response)
            fr.Analysis.Result_types.stages
        @ [
            Timeunit.to_string fr.Analysis.Result_types.total;
            Timeunit.to_string fr.Analysis.Result_types.deadline;
            Timeunit.to_string (Analysis.Result_types.slack fr);
          ]))
    video.Analysis.Result_types.frames;
  print_endline "video flow 0->4->6->3 (Figure 2), per GMF frame:";
  Tablefmt.print table;
  print_newline ();
  (* Summary over all flows. *)
  let summary =
    Tablefmt.create
      ~columns:
        [
          ("flow", Tablefmt.Left); ("prio", Tablefmt.Right);
          ("worst R", Tablefmt.Right); ("D", Tablefmt.Right);
          ("meets", Tablefmt.Left);
        ]
  in
  List.iter
    (fun res ->
      let worst = Analysis.Result_types.worst_frame res in
      Tablefmt.add_row summary
        [
          res.Analysis.Result_types.flow.Traffic.Flow.name;
          string_of_int res.Analysis.Result_types.flow.Traffic.Flow.priority;
          Timeunit.to_string worst.Analysis.Result_types.total;
          Timeunit.to_string worst.Analysis.Result_types.deadline;
          (if Analysis.Result_types.meets_deadline worst then "yes" else "NO");
        ])
    r.Analysis.Holistic.results;
  print_endline "all flows, worst frame:";
  Tablefmt.print summary
