type entry = { id : string; description : string; run : unit -> unit }

let all =
  [
    { id = "E1";
      description =
        "Worked example: Figure 3 MPEG stream on link(0,4) (CSUM/NSUM/TSUM/MFT)";
      run = E1_worked_example.run };
    { id = "E2";
      description =
        "End-to-end bounds on the Figure 1 network (Figure 6 pipeline)";
      run = E2_pipeline.run };
    { id = "E3";
      description = "CIRC sensitivity and multiprocessor switches (Conclusions)";
      run = E3_circ.run };
    { id = "E4";
      description = "Admission ratio: GMF analysis vs sporadic baseline";
      run = E4_admission.run };
    { id = "E5";
      description = "Soundness validation: simulator vs analytic bounds";
      run = E5_validation.run };
    { id = "E6";
      description = "Convergence boundary of the fixed points (eqs 20/34-35)";
      run = E6_convergence.run };
    { id = "E7";
      description = "Analysis cost scaling (flows / hops / cycle length)";
      run = E7_scaling.run };
    { id = "E8";
      description = "Ablation: paper-literal vs repaired equations";
      run = E8_ablation.run };
    { id = "E9";
      description = "Stride-scheduler characterization (Section 2.2)";
      run = E9_stride.run };
    { id = "E10";
      description = "802.1p priority differentiation (2-8 levels)";
      run = E10_priorities.run };
    { id = "E11";
      description =
        "Switch buffer sizing: backlog bounds vs simulated high-water marks";
      run = E11_backlog.run };
    { id = "E12";
      description = "GMF contract extraction from metered packet traces";
      run = E12_contract.run };
    { id = "E13";
      description = "Capacity planning: searches on the schedulability frontier";
      run = E13_sizing.run };
    { id = "E14";
      description = "802.1p priority-assignment policies vs the optimum";
      run = E14_priority_assignment.run };
    { id = "E15";
      description = "Admission with rerouting vs fixed routes";
      run = E15_rerouting.run };
    { id = "E16";
      description = "Software vs idealized hardware switches";
      run = E16_hardware.run };
    { id = "E17";
      description = "Tight jitter propagation vs the paper's full-R rule";
      run = E17_tight_jitter.run };
    { id = "E18";
      description = "Stage-level validation: per-stage residences vs bounds";
      run = E18_stage_validation.run };
    { id = "E19";
      description = "Randomized mass validation campaign";
      run = E19_fuzz_campaign.run };
  ]

let find id =
  let target = String.uppercase_ascii id in
  List.find_opt (fun e -> e.id = target) all

let run_all () = List.iter (fun e -> e.run ()) all
