(** E10 — IEEE 802.1p priority differentiation (Section 1 items ii-iii:
    2-8 priority levels in commodity switches).

    Eight identical video-like flows, one per 802.1p class, share a single
    switch egress queue.  The analysis' egress stage is the only
    priority-sensitive stage (first hop and ingress are priority-blind), so
    the bounds must decrease monotonically with the class; the simulator
    must agree.  The experiment also collapses the eight classes onto the
    2-level configuration the paper says cheap switches offer. *)

type row = {
  priority : int;
  bound : Gmf_util.Timeunit.ns;
  observed : Gmf_util.Timeunit.ns option;
}

val sweep : ?levels:int -> unit -> row list
(** [sweep ~levels ()] maps the eight flows onto [levels] 802.1p classes
    (flows keep their rank order; classes are spread over 0..7).
    Default 8. *)

val run : unit -> unit
