let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let kv key value = Printf.printf "  %-32s %s\n" (key ^ ":") value

let check_line ~label ~expected ~got =
  Printf.printf "  %-40s paper=%-14s measured=%-14s %s\n" label expected got
    (if expected = got then "ok" else "MISMATCH")

let flow_result report id =
  List.find
    (fun r -> r.Analysis.Result_types.flow.Traffic.Flow.id = id)
    report.Analysis.Holistic.results

let worst_total report id =
  (Analysis.Result_types.worst_frame (flow_result report id))
    .Analysis.Result_types.total

let verdict_string report =
  Format.asprintf "%a" Analysis.Holistic.pp_verdict
    report.Analysis.Holistic.verdict

let ratio a b =
  if b = 0 then "n/a" else Printf.sprintf "%.2f" (float_of_int a /. float_of_int b)
