(** E15 — admission with rerouting (extension; see Analysis.Rerouting and
    Network.Pathfind).

    The Figure 1 network has two disjoint switch paths between endhosts 0
    and 3 (via switch 6 directly, or via switches 5 and 6).  Fixed-route
    admission saturates the direct path and starts rejecting; rerouting
    admission places the overflow on the longer path.  The experiment
    offers identical video flows one by one and compares admitted counts. *)

type point = {
  offered : int;
  fixed_admitted : int;
  rerouted_admitted : int;
}

val sweep : ?max_flows:int -> unit -> point list

val run : unit -> unit
