open Gmf_util

type summary = {
  scenarios : int;
  schedulable : int;
  violations : string list;
  mean_tightness : float;
  faithful_smaller : int;
}

let random_scenario rng =
  let switches = Rng.int_in rng 1 5 in
  let hosts = Rng.int_in rng 3 6 in
  let topo, host_ids =
    Workload.Random_gen.random_topology rng ~switches ~hosts ()
  in
  let pairs =
    Workload.Random_gen.random_pairs rng ~hosts:host_ids
      ~count:(Rng.int_in rng 2 5)
  in
  let flows = Workload.Random_gen.flows_between rng ~topo ~pairs () in
  Traffic.Scenario.make ~topo ~flows ()

let check_one ~index rng =
  let scenario = random_scenario rng in
  let repaired = Analysis.Holistic.analyze scenario in
  let faithful =
    Analysis.Holistic.analyze ~config:Analysis.Config.faithful scenario
  in
  let faithful_smaller =
    match (Analysis.Holistic.is_schedulable repaired,
           Analysis.Holistic.is_schedulable faithful) with
    | true, true ->
        List.exists
          (fun res ->
            let id = res.Analysis.Result_types.flow.Traffic.Flow.id in
            Exp_common.worst_total faithful id
            < Exp_common.worst_total repaired id)
          repaired.Analysis.Holistic.results
    | _ -> false
  in
  if not (Analysis.Holistic.is_schedulable repaired) then
    (`Unschedulable, faithful_smaller, [])
  else begin
    let sim =
      Sim.Netsim.run
        ~config:
          { Sim.Sim_config.default with
            duration = Timeunit.ms 500; seed = index }
        scenario
    in
    let violations = ref [] in
    let tightness = ref 0. in
    List.iter
      (fun res ->
        let id = res.Analysis.Result_types.flow.Traffic.Flow.id in
        Array.iter
          (fun (fr : Analysis.Result_types.frame_result) ->
            match
              Sim.Collector.max_response sim.Sim.Netsim.collector ~flow:id
                ~frame:fr.Analysis.Result_types.frame
            with
            | None -> ()
            | Some observed ->
                let bound = fr.Analysis.Result_types.total in
                if observed > bound then
                  violations :=
                    Printf.sprintf
                      "scenario %d flow %d frame %d: observed %s > bound %s"
                      index id fr.Analysis.Result_types.frame
                      (Timeunit.to_string observed)
                      (Timeunit.to_string bound)
                    :: !violations;
                let t = float_of_int observed /. float_of_int bound in
                if t > !tightness then tightness := t)
          res.Analysis.Result_types.frames)
      repaired.Analysis.Holistic.results;
    (`Schedulable !tightness, faithful_smaller, !violations)
  end

let campaign ?(count = 30) ?(seed = 7) () =
  let master = Rng.create ~seed in
  let schedulable = ref 0 in
  let violations = ref [] in
  let tightness_sum = ref 0. in
  let faithful_smaller = ref 0 in
  for index = 1 to count do
    let rng = Rng.split master in
    let status, fs, v = check_one ~index rng in
    if fs then incr faithful_smaller;
    violations := v @ !violations;
    match status with
    | `Schedulable t ->
        incr schedulable;
        tightness_sum := !tightness_sum +. t
    | `Unschedulable -> ()
  done;
  {
    scenarios = count;
    schedulable = !schedulable;
    violations = List.rev !violations;
    mean_tightness =
      (if !schedulable = 0 then 0.
       else !tightness_sum /. float_of_int !schedulable);
    faithful_smaller = !faithful_smaller;
  }

let run () =
  Exp_common.section
    "E19: randomized mass validation (random fabrics x random GMF flows)";
  let s = campaign () in
  Exp_common.kv "scenarios generated" (string_of_int s.scenarios);
  Exp_common.kv "schedulable (and simulated)" (string_of_int s.schedulable);
  Exp_common.kv "mean worst-pair tightness"
    (Printf.sprintf "%.3f" s.mean_tightness);
  Exp_common.kv "scenarios where paper-literal bound is below repaired"
    (string_of_int s.faithful_smaller);
  (match s.violations with
  | [] -> Exp_common.kv "domination violations" "0 (all bounds sound)"
  | vs ->
      Exp_common.kv "domination violations" (string_of_int (List.length vs));
      List.iter (fun v -> print_endline ("  " ^ v)) vs);
  print_endline
    "  (every seeded draw re-checks the full stack: topology validation,\n\
    \   routing, the three stage analyses with R8 carry-in, the holistic\n\
    \   fixed point, and the discrete-event switch model)"
