(** E17 — tight jitter propagation (extension; see Config.tight_jitter).

    The paper grows the downstream generalized jitter by the full stage
    response time (Figure 6); classical holistic analysis grows it only by
    the response-time variability R − R_min.  The experiment measures the
    bound reduction on the Figure 1 scenario and on multihop chains of
    increasing length (the gain compounds per hop), and re-validates the
    tightened bounds against the simulator. *)

type row = {
  label : string;
  paper_bound : Gmf_util.Timeunit.ns;
  tight_bound : Gmf_util.Timeunit.ns;
  observed : Gmf_util.Timeunit.ns;
  sound : bool;  (** observed <= tight bound *)
}

val rows : unit -> row list

val run : unit -> unit
