(** E5 — soundness validation: analytic bounds vs simulated worst cases.

    For every scenario the analysis declares schedulable, the discrete-event
    simulator (which implements exactly the Figure 5 switch model) is run
    under dense periodic arrivals, and the largest observed response of
    every (flow, frame) pair is compared against its analytic bound.  The
    bound must dominate every observation; the tightness column reports
    observed/bound for the worst pair. *)

type row = {
  name : string;
  schedulable : bool;
  sound : bool;  (** Every observation at or below its bound. *)
  worst_bound : Gmf_util.Timeunit.ns;
  worst_observed : Gmf_util.Timeunit.ns;
  tightness : float;  (** max over pairs of observed/bound, 0 when idle. *)
}

val validate :
  ?duration:Gmf_util.Timeunit.ns ->
  ?busy_poll:bool ->
  name:string ->
  Traffic.Scenario.t ->
  row
(** Analyze + simulate one scenario; [busy_poll] selects the adversarial
    switch-CPU model (idle tasks burn their quantum). *)

val rows : unit -> row list
(** The standard E5 suite: Figure 1 (with both CPU models), VoIP star,
    multihop chain, and five seeded random scenarios. *)

val run : unit -> unit
