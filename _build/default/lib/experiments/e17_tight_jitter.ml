open Gmf_util

type row = {
  label : string;
  paper_bound : Timeunit.ns;
  tight_bound : Timeunit.ns;
  observed : Timeunit.ns;
  sound : bool;
}

let row_for ~label ~flow_id scenario =
  let bound config =
    Exp_common.worst_total (Analysis.Holistic.analyze ~config scenario) flow_id
  in
  let paper_bound = bound Analysis.Config.default in
  let tight_bound = bound Analysis.Config.tight in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 1 }
      scenario
  in
  let observed =
    Option.value ~default:0
      (Sim.Collector.max_response_flow sim.Sim.Netsim.collector ~flow:flow_id)
  in
  { label; paper_bound; tight_bound; observed;
    sound = observed <= tight_bound }

(* Where the rule matters: two flows that each cross [depth] private
   switches before merging on one shared egress link.  Under the paper's
   rule the competitor arrives at the merge with jitter equal to its whole
   accumulated response time, inflating the interference window there; the
   tight rule only carries the accumulated queueing variability. *)
let merge_scenario ~depth =
  let rate_bps = 10_000_000 in
  let topo = Network.Topology.create () in
  let host name = Network.Topology.add_node topo ~name ~kind:Network.Node.Endhost in
  let switch name = Network.Topology.add_node topo ~name ~kind:Network.Node.Switch in
  let a = host "srcA" and b = host "srcB" and d = host "dst" in
  let chain prefix =
    Array.init depth (fun i -> switch (Printf.sprintf "%s%d" prefix i))
  in
  let sa = chain "a" and sb = chain "b" in
  let merge = switch "merge" in
  let connect x y = Network.Topology.add_duplex_link topo ~a:x ~b:y ~rate_bps ~prop:0 in
  let wire src chain =
    connect src chain.(0);
    Array.iteri
      (fun i sw -> if i + 1 < depth then connect sw chain.(i + 1))
      chain;
    connect chain.(depth - 1) merge
  in
  wire a sa;
  wire b sb;
  connect merge d;
  (* Dense single-frame traffic: one maximal Ethernet frame every 5 ms
     (C = 1.23 ms at 10 Mbit/s), so a few milliseconds of inflated jitter
     already pull extra competitor frames into the interference window. *)
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 5)
          ~deadline:(Timeunit.ms 400) ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let route src chain =
    Network.Route.make topo ((src :: Array.to_list chain) @ [ merge; d ])
  in
  let flows =
    [
      Traffic.Flow.make ~id:0 ~name:"A" ~spec ~encap:Ethernet.Encap.Udp
        ~route:(route a sa) ~priority:5;
      Traffic.Flow.make ~id:1 ~name:"B" ~spec ~encap:Ethernet.Encap.Udp
        ~route:(route b sb) ~priority:5;
    ]
  in
  Traffic.Scenario.make ~topo ~flows ()

let rows () =
  row_for ~label:"fig1 (video)" ~flow_id:Workload.Scenarios.video_flow_id
    (Workload.Scenarios.fig1_videoconf ())
  :: List.map
       (fun depth ->
         row_for
           ~label:(Printf.sprintf "merge after %d private switches" depth)
           ~flow_id:0 (merge_scenario ~depth))
       [ 1; 2; 4; 8 ]

let run () =
  Exp_common.section
    "E17: tight jitter propagation (R - R_min) vs the paper's full-R rule";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("scenario", Tablefmt.Left); ("paper bound", Tablefmt.Right);
          ("tight bound", Tablefmt.Right); ("reduction", Tablefmt.Right);
          ("sim worst", Tablefmt.Right); ("sound", Tablefmt.Left);
        ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row table
        [
          r.label;
          Timeunit.to_string r.paper_bound;
          Timeunit.to_string r.tight_bound;
          Printf.sprintf "%.1f%%"
            (100.
            *. float_of_int (r.paper_bound - r.tight_bound)
            /. float_of_int (max 1 r.paper_bound));
          Timeunit.to_string r.observed;
          (if r.sound then "yes" else "VIOLATED");
        ])
    (rows ());
  Tablefmt.print table;
  print_endline
    "  (the rule only helps where interferers accumulate jitter before a\n\
    \   shared resource - flows merging after private chains gain 11-14%\n\
    \   here, while fig1's single-hop interferers gain nothing; the\n\
    \   end-to-end RSUM is untouched, only propagated jitter shrinks)"
