(** E8 — ablation of the documented repairs (DESIGN.md R1/R2/R7):
    paper-literal [Faithful] equations vs the [Repaired] variant.

    Two comparisons:

    - on the Figure 1 scenario (non-zero source jitter), the two variants
      differ moderately — the repairs only add own-Ethernet-frame rotation
      charges and critical-instant interference;
    - on a zero-jitter two-flow scenario, the Faithful equations lose the
      competing flow entirely (MX(0) = 0, repair R7) and produce a bound
      the simulator immediately exceeds — demonstrating why the repair is
      needed for soundness. *)

type comparison = {
  flow_name : string;
  faithful : Gmf_util.Timeunit.ns;
  repaired : Gmf_util.Timeunit.ns;
}

val fig1_comparison : unit -> comparison list

val zero_jitter_demo : unit ->
  comparison * Gmf_util.Timeunit.ns (* observed in simulation *)

val run : unit -> unit
