open Gmf_util

type row = {
  priority : int;
  bound : Timeunit.ns;
  observed : Timeunit.ns option;
}

let n_flows = 8

(* Map rank r (0 = lowest) onto one of [levels] classes spread over 0..7,
   e.g. levels=2 -> classes 0 and 7. *)
let class_of_rank ~levels rank =
  let bucket = rank * levels / n_flows in
  if levels = 1 then 0 else bucket * 7 / (levels - 1)

let scenario ~levels =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:(n_flows + 1) ()
  in
  let flows =
    List.init n_flows (fun rank ->
        Traffic.Flow.make ~id:rank
          ~name:(Printf.sprintf "rank%d" rank)
          ~spec:
            (Workload.Mpeg.spec
               ~sizes:
                 {
                   Workload.Mpeg.i_plus_p_bytes = 11_000;
                   p_bytes = 5_000;
                   b_bytes = 2_000;
                 }
               ~deadline:(Timeunit.ms 260) ())
          ~encap:Ethernet.Encap.Udp
          ~route:
            (Network.Route.make topo [ hosts.(rank); sw; hosts.(n_flows) ])
          ~priority:(class_of_rank ~levels rank)
          )
    |> List.rev
  in
  Traffic.Scenario.make ~topo ~flows ()

let sweep ?(levels = 8) () =
  let scenario = scenario ~levels in
  let report = Analysis.Holistic.analyze scenario in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 2 }
      scenario
  in
  List.map
    (fun flow ->
      let id = flow.Traffic.Flow.id in
      {
        priority = flow.Traffic.Flow.priority;
        bound = Exp_common.worst_total report id;
        observed = Sim.Collector.max_response_flow sim.Sim.Netsim.collector ~flow:id;
      })
    (Traffic.Scenario.flows scenario)

let print_rows rows =
  let table =
    Tablefmt.create
      ~columns:
        [
          ("rank", Tablefmt.Right); ("802.1p class", Tablefmt.Right);
          ("analytic bound", Tablefmt.Right); ("sim worst", Tablefmt.Right);
        ]
  in
  List.iteri
    (fun rank r ->
      Tablefmt.add_row table
        [
          string_of_int rank; string_of_int r.priority;
          Timeunit.to_string r.bound;
          (match r.observed with
          | Some o -> Timeunit.to_string o
          | None -> "-");
        ])
    rows;
  Tablefmt.print table

let run () =
  Exp_common.section
    "E10: 802.1p priority differentiation on a shared egress queue";
  print_endline "8 priority levels (one class per flow):";
  let rows8 = sweep () in
  print_rows rows8;
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) -> a.bound >= b.bound && check rest
      | _ -> true
    in
    (* rows are in flow id order = rank order (low prio first after rev?) *)
    check (List.sort (fun a b -> compare a.priority b.priority) rows8)
  in
  Exp_common.kv "bounds monotone in priority"
    (if monotone then "yes (lower class => larger bound)" else "NO");
  print_newline ();
  print_endline "2 priority levels (cheap-switch configuration, Section 1):";
  print_rows (sweep ~levels:2 ())
