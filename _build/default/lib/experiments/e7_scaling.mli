(** E7 — analysis cost scaling.

    An admission controller must answer quickly, so this experiment measures
    the holistic analysis' CPU time as the workload grows along three axes:
    number of flows sharing one switch, route length (switch count), and GMF
    cycle length n_i.  Wall-clock-free: uses processor time via [Sys.time].
    Bechamel benches of the same closures live in [bench/main.ml]. *)

type row = { label : string; parameter : int; seconds : float }

val flows_axis : unit -> row list
val hops_axis : unit -> row list
val frames_axis : unit -> row list

val run : unit -> unit
