lib/experiments/e8_ablation.ml: Analysis Array Ethernet Exp_common Gmf Gmf_util List Network Option Printf Sim Tablefmt Timeunit Traffic Workload
