lib/experiments/e17_tight_jitter.ml: Analysis Array Ethernet Exp_common Gmf Gmf_util List Network Option Printf Sim Tablefmt Timeunit Traffic Workload
