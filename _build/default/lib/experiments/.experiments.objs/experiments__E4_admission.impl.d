lib/experiments/e4_admission.ml: Analysis Array Baseline Ethernet Exp_common Gmf_util List Network Printf Tablefmt Timeunit Traffic Workload
