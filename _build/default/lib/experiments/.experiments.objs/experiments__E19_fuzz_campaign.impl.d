lib/experiments/e19_fuzz_campaign.ml: Analysis Array Exp_common Gmf_util List Printf Rng Sim Timeunit Traffic Workload
