lib/experiments/e14_priority_assignment.mli: Gmf_util
