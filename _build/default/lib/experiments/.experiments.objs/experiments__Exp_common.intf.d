lib/experiments/exp_common.mli: Analysis Gmf_util Traffic
