lib/experiments/e13_sizing.mli:
