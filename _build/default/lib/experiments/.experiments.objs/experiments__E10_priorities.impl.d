lib/experiments/e10_priorities.ml: Analysis Array Ethernet Exp_common Gmf_util List Network Printf Sim Tablefmt Timeunit Traffic Workload
