lib/experiments/e5_validation.ml: Analysis Array Exp_common Gmf_util List Printf Rng Sim Tablefmt Timeunit Traffic Workload
