lib/experiments/registry.mli:
