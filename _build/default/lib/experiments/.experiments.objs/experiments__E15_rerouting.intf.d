lib/experiments/e15_rerouting.mli:
