lib/experiments/e11_backlog.mli: Network
