lib/experiments/e6_convergence.mli: Gmf_util
