lib/experiments/e14_priority_assignment.ml: Analysis Array Ethernet Exp_common Gmf Gmf_util List Network Tablefmt Timeunit Traffic Workload
