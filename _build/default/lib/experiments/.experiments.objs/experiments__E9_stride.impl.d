lib/experiments/e9_stride.ml: Array Click Exp_common Gmf_util List Printf Rng Stride String Tablefmt Timeunit
