lib/experiments/e2_pipeline.mli: Analysis
