lib/experiments/e2_pipeline.ml: Analysis Array Exp_common Format Gmf_util List Tablefmt Timeunit Traffic Workload
