lib/experiments/e11_backlog.ml: Analysis Array Ethernet Exp_common Gmf Gmf_util List Network Printf Sim Tablefmt Timeunit Traffic Workload
