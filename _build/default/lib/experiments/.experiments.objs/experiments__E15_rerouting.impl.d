lib/experiments/e15_rerouting.ml: Analysis Array Ethernet Exp_common Gmf_util List Network Printf Tablefmt Timeunit Traffic Workload
