lib/experiments/e7_scaling.mli:
