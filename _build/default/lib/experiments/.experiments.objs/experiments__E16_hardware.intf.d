lib/experiments/e16_hardware.mli: Gmf_util
