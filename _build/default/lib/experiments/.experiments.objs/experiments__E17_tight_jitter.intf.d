lib/experiments/e17_tight_jitter.mli: Gmf_util
