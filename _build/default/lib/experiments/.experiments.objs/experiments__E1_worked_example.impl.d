lib/experiments/e1_worked_example.ml: Array Exp_common Gmf Gmf_util Printf Tablefmt Timeunit Traffic Workload
