lib/experiments/e4_admission.mli:
