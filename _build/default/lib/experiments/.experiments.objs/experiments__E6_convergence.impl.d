lib/experiments/e6_convergence.ml: Analysis Array Ethernet Exp_common Gmf Gmf_util List Network Printf Tablefmt Timeunit Traffic Workload
