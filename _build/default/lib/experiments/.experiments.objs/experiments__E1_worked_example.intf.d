lib/experiments/e1_worked_example.mli: Gmf_util
