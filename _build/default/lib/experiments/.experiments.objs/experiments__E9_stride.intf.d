lib/experiments/e9_stride.mli: Gmf_util
