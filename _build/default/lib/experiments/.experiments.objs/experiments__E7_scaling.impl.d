lib/experiments/e7_scaling.ml: Analysis Array Ethernet Exp_common Gmf Gmf_util List Network Printf Sys Tablefmt Timeunit Traffic Workload
