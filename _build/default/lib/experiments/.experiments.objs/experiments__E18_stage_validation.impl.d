lib/experiments/e18_stage_validation.ml: Analysis Array Exp_common Format Gmf_util Hashtbl List Printf Sim Tablefmt Timeunit Traffic Workload
