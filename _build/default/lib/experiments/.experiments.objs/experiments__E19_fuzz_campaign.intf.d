lib/experiments/e19_fuzz_campaign.mli:
