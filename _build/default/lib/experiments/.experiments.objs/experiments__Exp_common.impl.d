lib/experiments/exp_common.ml: Analysis Format List Printf String Traffic
