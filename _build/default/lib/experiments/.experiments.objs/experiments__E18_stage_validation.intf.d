lib/experiments/e18_stage_validation.mli: Gmf_util Traffic
