lib/experiments/e12_contract.ml: Analysis Array Ethernet Exp_common Gmf_util List Network Printf Rng Timeunit Traffic Workload
