lib/experiments/e5_validation.mli: Gmf_util Traffic
