lib/experiments/e8_ablation.mli: Gmf_util
