lib/experiments/e16_hardware.ml: Analysis Click Exp_common Gmf_util List Option Printf Sim Tablefmt Timeunit Traffic Workload
