lib/experiments/e10_priorities.mli: Gmf_util
