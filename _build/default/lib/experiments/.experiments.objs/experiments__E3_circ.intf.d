lib/experiments/e3_circ.mli: Gmf_util
