lib/experiments/e13_sizing.ml: Analysis Array Click Ethernet Exp_common List Network Printf Traffic Workload
