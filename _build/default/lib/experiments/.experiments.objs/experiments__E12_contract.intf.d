lib/experiments/e12_contract.mli: Gmf_util
