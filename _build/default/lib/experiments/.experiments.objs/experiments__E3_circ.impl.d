lib/experiments/e3_circ.ml: Analysis Click Ethernet Exp_common Gmf_util List Tablefmt Timeunit Traffic Workload
