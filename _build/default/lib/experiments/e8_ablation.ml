open Gmf_util

type comparison = {
  flow_name : string;
  faithful : Timeunit.ns;
  repaired : Timeunit.ns;
}

let fig1_comparison () =
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let rep_f = Analysis.Holistic.analyze ~config:Analysis.Config.faithful scenario in
  let rep_r = Analysis.Holistic.analyze scenario in
  List.map
    (fun flow ->
      let id = flow.Traffic.Flow.id in
      {
        flow_name = flow.Traffic.Flow.name;
        faithful = Exp_common.worst_total rep_f id;
        repaired = Exp_common.worst_total rep_r id;
      })
    (Traffic.Scenario.flows scenario)

let zero_jitter_scenario () =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 10) ~deadline:(Timeunit.ms 50)
          ~jitter:0 ~payload_bits:(8 * 1_472);
      ]
  in
  let flows =
    List.init 2 (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "f%d" id)
          ~spec ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
          ~priority:5)
  in
  Traffic.Scenario.make ~topo ~flows ()

let zero_jitter_demo () =
  let scenario = zero_jitter_scenario () in
  let rep_f = Analysis.Holistic.analyze ~config:Analysis.Config.faithful scenario in
  let rep_r = Analysis.Holistic.analyze scenario in
  let comparison =
    {
      flow_name = "f0 (zero jitter, shared source)";
      faithful = Exp_common.worst_total rep_f 0;
      repaired = Exp_common.worst_total rep_r 0;
    }
  in
  (* Simulate with synchronized bunched releases: both flows' packets land
     in the source queue at the same instants. *)
  let sim =
    Sim.Netsim.run
      ~config:
        {
          Sim.Sim_config.default with
          duration = Timeunit.ms 500;
          jitter = Sim.Sim_config.Bunched;
        }
      scenario
  in
  let observed =
    Option.value ~default:0
      (Sim.Collector.max_response_flow sim.Sim.Netsim.collector ~flow:0)
  in
  (comparison, observed)

let carry_in_demo () =
  (* The Figure 3 stream's frame 1 queues behind the oversized I+P packet
     (repair R8): per-frame comparison on fig1. *)
  let scenario = Workload.Scenarios.fig1_videoconf () in
  let bound config frame =
    let report = Analysis.Holistic.analyze ~config scenario in
    let res = Exp_common.flow_result report Workload.Scenarios.video_flow_id in
    res.Analysis.Result_types.frames.(frame).Analysis.Result_types.total
  in
  (bound Analysis.Config.faithful 1, bound Analysis.Config.default 1)

let run () =
  Exp_common.section
    "E8: ablation - paper-literal (Faithful) vs Repaired equations";
  print_endline "Figure 1 scenario (source jitter 1 ms on video):";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("flow", Tablefmt.Left); ("faithful R", Tablefmt.Right);
          ("repaired R", Tablefmt.Right); ("repaired/faithful", Tablefmt.Right);
        ]
  in
  List.iter
    (fun c ->
      Tablefmt.add_row table
        [
          c.flow_name;
          Timeunit.to_string c.faithful;
          Timeunit.to_string c.repaired;
          Exp_common.ratio c.repaired c.faithful;
        ])
    (fig1_comparison ());
  Tablefmt.print table;
  print_newline ();
  print_endline
    "zero-jitter stress (two synchronized flows, one source queue):";
  let c, observed = zero_jitter_demo () in
  Exp_common.kv "faithful bound (eqs 10/17 literal)"
    (Timeunit.to_string c.faithful);
  Exp_common.kv "repaired bound (R7)" (Timeunit.to_string c.repaired);
  Exp_common.kv "simulator worst observed" (Timeunit.to_string observed);
  Exp_common.kv "faithful sound here?"
    (if observed > c.faithful then
       "NO - observation exceeds it (the defect repair R7 fixes)"
     else "yes");
  Exp_common.kv "repaired sound here?"
    (if observed > c.repaired then "NO" else "yes");
  print_newline ();
  print_endline "own-flow carry-in on fig1's video frame 1 (repair R8):";
  let faithful_f1, repaired_f1 = carry_in_demo () in
  Exp_common.kv "paper-literal bound" (Timeunit.to_string faithful_f1);
  Exp_common.kv "repaired bound (includes I+P backlog)"
    (Timeunit.to_string repaired_f1);
  Exp_common.kv "why it matters"
    "the simulator observes ~12.8ms at the first hop alone, above the \
     literal first-hop bound (see E18)" 
