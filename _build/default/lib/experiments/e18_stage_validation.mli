(** E18 — stage-level soundness validation (extension).

    E5 validates end-to-end bounds; this experiment drills into the
    decomposition itself: for every (flow, frame, stage) triple of the
    Figure 1 scenario, the simulator's largest observed residence in that
    stage is compared against the stage's analytic response bound from the
    Figure 6 pipeline.  Every stage bound must dominate — a much stronger
    check, since end-to-end slack cannot hide a per-stage violation. *)

type row = {
  flow_name : string;
  frame : int;
  stage : string;
  bound : Gmf_util.Timeunit.ns;
  observed : Gmf_util.Timeunit.ns option;
  sound : bool;
}

val rows : ?scenario:Traffic.Scenario.t -> unit -> row list
(** Default scenario: Figure 1. *)

val run : unit -> unit
