open Gmf_util

type point = {
  offered : int;
  offered_utilization : float;
  gmf_admitted : int;
  sporadic_admitted : int;
}

let rate_bps = 100_000_000

let candidate topo hosts sw id =
  Traffic.Flow.make ~id
    ~name:(Printf.sprintf "video%d" id)
    ~spec:
      (Workload.Mpeg.spec
         ~sizes:
           {
             Workload.Mpeg.i_plus_p_bytes = 88_000;
             p_bytes = 40_000;
             b_bytes = 16_000;
           }
         ~deadline:(Timeunit.ms 260) ())
    ~encap:Ethernet.Encap.Udp
    ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
    ~priority:5

let sweep ?(max_flows = 14) () =
  let topo, hosts, sw = Workload.Topologies.star ~rate_bps ~hosts:2 () in
  let candidates = List.init max_flows (candidate topo hosts sw) in
  let flow0 = List.hd candidates in
  let u1 =
    Traffic.Link_params.utilization
      (Traffic.Link_params.make ~flow:flow0
         ~link:(Network.Topology.link_exn topo ~src:hosts.(0) ~dst:sw))
  in
  List.init max_flows (fun i ->
      let offered = i + 1 in
      let prefix = List.filteri (fun j _ -> j < offered) candidates in
      let gmf_in, _ =
        Analysis.Admission.admit_greedily ~topo ~switches:[] prefix
      in
      let spor_in, _ =
        Baseline.Sporadic.admit_greedily ~topo ~switches:[] prefix
      in
      {
        offered;
        offered_utilization = float_of_int offered *. u1;
        gmf_admitted = List.length gmf_in;
        sporadic_admitted = List.length spor_in;
      })

let run () =
  Exp_common.section
    "E4: admission ratio - GMF analysis vs sporadic baseline (100 Mbit/s \
     bottleneck)";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("offered", Tablefmt.Right); ("offered U", Tablefmt.Right);
          ("GMF admitted", Tablefmt.Right);
          ("sporadic admitted", Tablefmt.Right);
          ("GMF ratio", Tablefmt.Right); ("sporadic ratio", Tablefmt.Right);
        ]
  in
  let points = sweep () in
  List.iter
    (fun p ->
      Tablefmt.add_row table
        [
          string_of_int p.offered;
          Printf.sprintf "%.2f" p.offered_utilization;
          string_of_int p.gmf_admitted;
          string_of_int p.sporadic_admitted;
          Exp_common.ratio p.gmf_admitted p.offered;
          Exp_common.ratio p.sporadic_admitted p.offered;
        ])
    points;
  Tablefmt.print table;
  let last = List.nth points (List.length points - 1) in
  Exp_common.kv "GMF admits x more flows at saturation"
    (Exp_common.ratio last.gmf_admitted last.sporadic_admitted)
