(** Helpers shared by the experiment drivers (E1-E10). *)

val section : string -> unit
(** Print an underlined section header. *)

val kv : string -> string -> unit
(** Print an aligned "key: value" line. *)

val check_line : label:string -> expected:string -> got:string -> unit
(** Print a paper-vs-measured comparison line ending in [ok] or [MISMATCH]. *)

val worst_total :
  Analysis.Holistic.report -> Traffic.Flow.id -> Gmf_util.Timeunit.ns
(** Worst end-to-end bound of one flow in a holistic report.
    Raises [Not_found] if the flow is absent. *)

val flow_result :
  Analysis.Holistic.report -> Traffic.Flow.id -> Analysis.Result_types.flow_result
(** The per-flow result record.  Raises [Not_found] if absent. *)

val verdict_string : Analysis.Holistic.report -> string

val ratio : int -> int -> string
(** [ratio a b] renders [a /. b] with two decimals ("n/a" when [b = 0]). *)
