(** E13 — capacity planning on the schedulability frontier (extension; see
    Analysis.Sensitivity).

    Answers, for the Figure 1 workload, the questions an operator asks
    after "is it schedulable?": the slowest uniform link speed that still
    meets every deadline, the traffic growth headroom at 10 and
    100 Mbit/s, and how much slower the switch CPU could be. *)

type answers = {
  min_rate_bps : int option;
  headroom_at_10m : float option;
  headroom_at_100m : float option;
  cpu_slack : float option;
}

val compute : unit -> answers

val run : unit -> unit
