(** E12 — GMF contract extraction from metered traffic (extension; see
    Workload.Contract).

    The paper assumes GMF parameters are given.  This experiment plays the
    operator who only has packet traces: two noisy MPEG-like sources are
    metered, the tightest GMF contract is extracted from each trace, the
    extracted flows are run through the admission controller, and the
    resulting bounds are compared against flows declared with the encoder's
    nominal settings. *)

type summary = {
  trace_packets : int;
  contract_respected : bool;
  extracted_admitted : bool;
  extracted_bound : Gmf_util.Timeunit.ns option;
  nominal_bound : Gmf_util.Timeunit.ns option;
}

val compute : ?seed:int -> unit -> summary

val run : unit -> unit
