open Gmf_util

type row = {
  policy : string;
  levels : int;
  schedulable : bool;
  worst_bound : Timeunit.ns option;
  voip_bound : Timeunit.ns option;
}

(* Mixed workload sharing one 100 Mbit/s egress: two VoIP calls (tight
   deadlines), one video stream, one heavy bulk flow (loose deadline). *)
let workload () =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:5 ()
  in
  let route i = Network.Route.make topo [ hosts.(i); sw; hosts.(4) ] in
  let bulk_spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 25)
          ~deadline:(Timeunit.ms 200) ~jitter:0 ~payload_bits:(8 * 120_000);
      ]
  in
  let flows =
    [
      Traffic.Flow.make ~id:0 ~name:"voip0"
        ~spec:(Workload.Voip.g711_spec ~deadline:(Timeunit.ms 12) ())
        ~encap:Ethernet.Encap.Rtp_udp ~route:(route 0) ~priority:0;
      Traffic.Flow.make ~id:1 ~name:"voip1"
        ~spec:(Workload.Voip.g711_spec ~deadline:(Timeunit.ms 12) ())
        ~encap:Ethernet.Encap.Rtp_udp ~route:(route 1) ~priority:0;
      Traffic.Flow.make ~id:2 ~name:"video"
        ~spec:
          (Workload.Mpeg.spec
             ~sizes:
               { Workload.Mpeg.i_plus_p_bytes = 22_000; p_bytes = 10_000;
                 b_bytes = 4_000 }
             ~deadline:(Timeunit.ms 60) ())
        ~encap:Ethernet.Encap.Udp ~route:(route 2) ~priority:0;
      Traffic.Flow.make ~id:3 ~name:"bulk" ~spec:bulk_spec
        ~encap:Ethernet.Encap.Udp ~route:(route 3) ~priority:0;
    ]
  in
  (topo, flows)

let analyze_with topo flows =
  let scenario = Traffic.Scenario.make ~topo ~flows () in
  let report = Analysis.Holistic.analyze scenario in
  if Analysis.Holistic.is_schedulable report then
    let worst =
      List.fold_left
        (fun acc res ->
          max acc
            (Analysis.Result_types.worst_frame res).Analysis.Result_types
              .total)
        0 report.Analysis.Holistic.results
    in
    let voip =
      (Analysis.Result_types.worst_frame (Exp_common.flow_result report 0))
        .Analysis.Result_types.total
    in
    (true, Some worst, Some voip)
  else (false, None, None)

let policies =
  [
    ("uniform", Analysis.Priority_assign.Uniform 0);
    ("rate-monotonic", Analysis.Priority_assign.Rate_monotonic);
    ("deadline-monotonic", Analysis.Priority_assign.Deadline_monotonic);
    ("lightest-first", Analysis.Priority_assign.Lightest_first);
  ]

let rows () =
  let topo, flows = workload () in
  let policy_rows =
    List.concat_map
      (fun levels ->
        List.map
          (fun (name, policy) ->
            let assigned = Analysis.Priority_assign.assign ~levels policy flows in
            let schedulable, worst_bound, voip_bound =
              analyze_with topo assigned
            in
            { policy = name; levels; schedulable; worst_bound; voip_bound })
          policies)
      [ 2; 8 ]
  in
  let optimal =
    match
      Analysis.Priority_assign.best_exhaustive ~levels:8 ~topo ~switches:[]
        flows
    with
    | Some (assigned, _) ->
        let schedulable, worst_bound, voip_bound = analyze_with topo assigned in
        [ { policy = "exhaustive-optimal"; levels = 8; schedulable;
            worst_bound; voip_bound } ]
    | None ->
        [ { policy = "exhaustive-optimal"; levels = 8; schedulable = false;
            worst_bound = None; voip_bound = None } ]
  in
  policy_rows @ optimal

let run () =
  Exp_common.section
    "E14: 802.1p priority-assignment policies on a mixed workload";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("policy", Tablefmt.Left); ("levels", Tablefmt.Right);
          ("schedulable", Tablefmt.Left); ("worst bound", Tablefmt.Right);
          ("voip bound", Tablefmt.Right);
        ]
  in
  List.iter
    (fun r ->
      let show = function
        | Some b -> Timeunit.to_string b
        | None -> "-"
      in
      Tablefmt.add_row table
        [
          r.policy; string_of_int r.levels;
          (if r.schedulable then "yes" else "NO");
          show r.worst_bound; show r.voip_bound;
        ])
    (rows ());
  Tablefmt.print table;
  print_endline
    "  (without differentiation the 12 ms VoIP deadline is hostage to the\n\
    \   bulk flow; every differentiating policy recovers schedulability -\n\
    \   even with just 2 classes, the 'cheap 802.1p switch' case of\n\
    \   Section 1 - and lands within ~10% of the exhaustive optimum)"
