(** E6 — convergence boundary of the fixed-point analysis
    (eqs 20 and 34–35).

    Two identical flows share one path through a switch; shrinking their
    period drives the shared-link utilization towards and past 1.  The
    experiment reports the eq-20/34-35 utilizations, the holistic verdict,
    the rounds needed, and the video bound — showing the bound blowing up
    as U -> 1 and the analysis refusing to converge past it. *)

type point = {
  period : Gmf_util.Timeunit.ns;
  link_utilization : float;  (** eq 20 / eqs 34-35 term. *)
  verdict : string;
  rounds : int;
  bound : Gmf_util.Timeunit.ns option;
}

val sweep : unit -> point list

val run : unit -> unit
