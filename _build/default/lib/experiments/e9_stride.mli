(** E9 — stride-scheduler characterization (Section 2.2, citing
    Waldspurger & Weihl).

    Reproduces the defining behaviours the analysis relies on:

    - proportional service: a 3:2:1 ticket allocation yields 3:2:1 service
      counts with per-task error bounded by the task count;
    - the all-tickets-equal configuration (Click's default, the paper's
      assumption) degenerates to exact round-robin, which is what makes
      CIRC(N) = NINTERFACES x (CROUTE + CSEND) the worst-case service
      interval;
    - inside the simulated switch, two consecutive services of the same
      task are never further apart than CIRC(N). *)

type allocation_row = {
  tickets : int;
  runs : int;
  expected : float;
  error : float;
}

val allocation_table : steps:int -> int list -> allocation_row list
(** Service counts after [steps] quanta for the given ticket vector. *)

val max_service_gap_in_switch : unit -> Gmf_util.Timeunit.ns * Gmf_util.Timeunit.ns
(** (worst observed gap between ingress-task services in a simulated loaded
    switch, the analytic CIRC bound). *)

val run : unit -> unit
