
type answers = {
  min_rate_bps : int option;
  headroom_at_10m : float option;
  headroom_at_100m : float option;
  cpu_slack : float option;
}

(* A Figure-1-like workload parameterized by link rate, traffic scale and
   switch-CPU scale. *)
let build ?(rate_bps = 10_000_000) ?(scale = 1.0) ?(circ_scale = 1.0) () =
  let net = Workload.Topologies.example ~rate_bps () in
  let topo = net.Workload.Topologies.topo in
  let h = net.Workload.Topologies.endhosts
  and s = net.Workload.Topologies.switches in
  let video_spec = Workload.Mpeg.scaled_spec ~rate_scale:scale in
  let audio = Workload.Voip.g711_spec () in
  let route nodes = Network.Route.make topo nodes in
  let flows =
    [
      Traffic.Flow.make ~id:0 ~name:"video:0->3" ~spec:video_spec
        ~encap:Ethernet.Encap.Udp
        ~route:(route [ h.(0); s.(0); s.(2); h.(3) ])
        ~priority:5;
      Traffic.Flow.make ~id:1 ~name:"audio:0->3" ~spec:audio
        ~encap:Ethernet.Encap.Rtp_udp
        ~route:(route [ h.(0); s.(0); s.(2); h.(3) ])
        ~priority:6;
      Traffic.Flow.make ~id:2 ~name:"video:3->0" ~spec:video_spec
        ~encap:Ethernet.Encap.Udp
        ~route:(route [ h.(3); s.(2); s.(0); h.(0) ])
        ~priority:5;
    ]
  in
  let scale_cost c = max 0 (int_of_float (circ_scale *. float_of_int c)) in
  let model degree =
    Click.Switch_model.make
      ~croute:(scale_cost Click.Switch_model.default_croute)
      ~csend:(scale_cost Click.Switch_model.default_csend)
      ~ninterfaces:degree ()
  in
  let switches =
    List.map
      (fun sw -> (sw, model (max 1 (Network.Topology.degree topo sw))))
      (Array.to_list s)
  in
  Traffic.Scenario.make ~switches ~topo ~flows ()

let compute () =
  {
    min_rate_bps =
      Analysis.Sensitivity.min_link_rate
        ~build:(fun ~rate_bps -> build ~rate_bps ())
        ();
    headroom_at_10m =
      Analysis.Sensitivity.max_payload_scale
        ~build:(fun ~scale -> build ~scale ())
        ();
    headroom_at_100m =
      Analysis.Sensitivity.max_payload_scale
        ~build:(fun ~scale -> build ~rate_bps:100_000_000 ~scale ())
        ();
    cpu_slack =
      Analysis.Sensitivity.max_circ
        ~build:(fun ~circ_scale -> build ~rate_bps:100_000_000 ~circ_scale ())
        ();
  }

let run () =
  Exp_common.section
    "E13: capacity planning - searches on the schedulability frontier";
  let a = compute () in
  Exp_common.kv "slowest uniform link speed meeting all deadlines"
    (match a.min_rate_bps with
    | Some r -> Printf.sprintf "%.2f Mbit/s" (float_of_int r /. 1e6)
    | None -> "none within 10 Gbit/s");
  let show_scale = function
    | Some s -> Printf.sprintf "%.2fx the Figure 3 stream" s
    | None -> "none"
  in
  Exp_common.kv "traffic headroom at 10 Mbit/s" (show_scale a.headroom_at_10m);
  Exp_common.kv "traffic headroom at 100 Mbit/s"
    (show_scale a.headroom_at_100m);
  Exp_common.kv "tolerable switch-CPU slowdown"
    (match a.cpu_slack with
    | Some s -> Printf.sprintf "%.1fx the measured CROUTE/CSEND" s
    | None -> "none");
  print_endline
    "  (the paper's Conclusions note that CIRC 'heavily influences the\n\
    \   delay'; the CPU-slack row quantifies exactly how heavily for this\n\
    \   workload)"
