open Gmf_util

type summary = {
  trace_packets : int;
  contract_respected : bool;
  extracted_admitted : bool;
  extracted_bound : Timeunit.ns option;
  nominal_bound : Timeunit.ns option;
}

let deadline = Timeunit.ms 150

let scenario_with specs =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:4 ()
  in
  let flows =
    List.mapi
      (fun id spec ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "cam%d" id)
          ~spec ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(id); sw; hosts.(3) ])
          ~priority:5)
      specs
  in
  Traffic.Scenario.make ~topo ~flows ()

let bound_of scenario =
  let report = Analysis.Holistic.analyze scenario in
  if Analysis.Holistic.is_schedulable report then
    Some
      (List.fold_left
         (fun acc res ->
           max acc
             (Analysis.Result_types.worst_frame res).Analysis.Result_types
               .total)
         0 report.Analysis.Holistic.results)
  else None

let compute ?(seed = 2008) () =
  let rng = Rng.create ~seed in
  let traces =
    List.init 2 (fun _ ->
        Workload.Contract.synthetic_mpeg_trace (Rng.split rng) ~packets:120 ())
  in
  let extracted =
    List.map
      (fun trace -> Workload.Contract.of_trace ~cycle:9 ~deadline trace)
      traces
  in
  let respected =
    List.for_all2 Workload.Contract.respects extracted traces
  in
  let extracted_scenario = scenario_with extracted in
  (* "Nominal" declarations: the encoder's configured sizes (the noisy
     traces go up to 25% above them), same 30 ms cadence. *)
  let nominal =
    List.init 2 (fun _ ->
        Workload.Mpeg.spec
          ~sizes:
            {
              Workload.Mpeg.i_plus_p_bytes = 55_000;
              p_bytes = 25_000;
              b_bytes = 10_000;
            }
          ~frame_interval:(Timeunit.ms 30) ~jitter:0 ~deadline ())
  in
  {
    trace_packets = List.fold_left (fun acc t -> acc + List.length t) 0 traces;
    contract_respected = respected;
    extracted_admitted = bound_of extracted_scenario <> None;
    extracted_bound = bound_of extracted_scenario;
    nominal_bound = bound_of (scenario_with nominal);
  }

let run () =
  Exp_common.section
    "E12: GMF contract extraction from metered packet traces";
  let s = compute () in
  Exp_common.kv "metered packets" (string_of_int s.trace_packets);
  Exp_common.kv "extracted contracts dominate their traces"
    (if s.contract_respected then "yes" else "NO");
  Exp_common.kv "extracted flows admitted"
    (if s.extracted_admitted then "yes" else "no");
  let show = function
    | Some b -> Timeunit.to_string b
    | None -> "unschedulable"
  in
  Exp_common.kv "worst bound, extracted contracts" (show s.extracted_bound);
  Exp_common.kv "worst bound, nominal +25% declarations"
    (show s.nominal_bound);
  print_endline
    "  (metering recovers per-position sizes, so the B/P frames keep their\n\
    \   small contracts; a single worst-case declaration would have to use\n\
    \   I-frame sizes everywhere - the sporadic pessimism of E4 again)"
