open Gmf_util

type point = { offered : int; fixed_admitted : int; rerouted_admitted : int }

(* Identical medium-rate video flows 0 -> 3, default route via switch 4
   then 6 (the Figure 2 route). *)
let candidates net count =
  let topo = net.Workload.Topologies.topo in
  let h = net.Workload.Topologies.endhosts
  and s = net.Workload.Topologies.switches in
  List.init count (fun id ->
      Traffic.Flow.make ~id
        ~name:(Printf.sprintf "video%d" id)
        ~spec:
          (Workload.Mpeg.spec
             ~sizes:
               { Workload.Mpeg.i_plus_p_bytes = 88_000; p_bytes = 40_000;
                 b_bytes = 16_000 }
             ~deadline:(Timeunit.ms 260) ())
        ~encap:Ethernet.Encap.Udp
        ~route:(Network.Route.make topo [ h.(0); s.(0); s.(2); h.(3) ])
        ~priority:5)

let sweep ?(max_flows = 12) () =
  let net = Workload.Topologies.example ~rate_bps:100_000_000 () in
  let topo = net.Workload.Topologies.topo in
  let all = candidates net max_flows in
  List.init max_flows (fun i ->
      let offered = i + 1 in
      let prefix = List.filteri (fun j _ -> j < offered) all in
      let fixed, _ =
        Analysis.Admission.admit_greedily ~topo ~switches:[] prefix
      in
      let rerouted, _ =
        Analysis.Rerouting.admit_greedily ~topo ~switches:[] prefix
      in
      {
        offered;
        fixed_admitted = List.length fixed;
        rerouted_admitted = List.length rerouted;
      })

let run () =
  Exp_common.section
    "E15: admission with rerouting on the Figure 1 network (100 Mbit/s)";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("offered", Tablefmt.Right); ("fixed-route admits", Tablefmt.Right);
          ("rerouting admits", Tablefmt.Right);
        ]
  in
  let points = sweep () in
  List.iter
    (fun p ->
      Tablefmt.add_row table
        [
          string_of_int p.offered; string_of_int p.fixed_admitted;
          string_of_int p.rerouted_admitted;
        ])
    points;
  Tablefmt.print table;
  let last = List.nth points (List.length points - 1) in
  Exp_common.kv "rerouting gain at saturation"
    (Printf.sprintf "%d extra flows"
       (last.rerouted_admitted - last.fixed_admitted));
  print_endline
    "  (the 0->4->5->6->3 detour absorbs the overflow once the Figure 2\n\
    \   route saturates; the paper's pre-specified routes leave this gain\n\
    \   to the operator)"
