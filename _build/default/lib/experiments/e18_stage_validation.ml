open Gmf_util

type row = {
  flow_name : string;
  frame : int;
  stage : string;
  bound : Timeunit.ns;
  observed : Timeunit.ns option;
  sound : bool;
}

let sim_stage_of = function
  | Analysis.Stage.First_link (s, d) -> Sim.Collector.S_first (s, d)
  | Analysis.Stage.Ingress n -> Sim.Collector.S_in n
  | Analysis.Stage.Egress (n, d) -> Sim.Collector.S_out (n, d)

let rows ?(scenario = Workload.Scenarios.fig1_videoconf ()) () =
  let report = Analysis.Holistic.analyze scenario in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 2 }
      scenario
  in
  List.concat_map
    (fun res ->
      let flow = res.Analysis.Result_types.flow in
      Array.to_list res.Analysis.Result_types.frames
      |> List.concat_map (fun (fr : Analysis.Result_types.frame_result) ->
             List.map
               (fun (sr : Analysis.Result_types.stage_response) ->
                 let observed =
                   Sim.Collector.max_stage_span sim.Sim.Netsim.collector
                     ~flow:flow.Traffic.Flow.id
                     ~frame:fr.Analysis.Result_types.frame
                     ~stage:(sim_stage_of sr.Analysis.Result_types.stage)
                 in
                 {
                   flow_name = flow.Traffic.Flow.name;
                   frame = fr.Analysis.Result_types.frame;
                   stage =
                     Format.asprintf "%a" Analysis.Stage.pp
                       sr.Analysis.Result_types.stage;
                   bound = sr.Analysis.Result_types.response;
                   observed;
                   sound =
                     (match observed with
                     | None -> true
                     | Some o -> o <= sr.Analysis.Result_types.response);
                 })
               fr.Analysis.Result_types.stages))
    report.Analysis.Holistic.results

let run () =
  Exp_common.section
    "E18: stage-level validation - per-stage residences vs per-stage bounds \
     (Figure 1)";
  let all = rows () in
  let violations = List.filter (fun r -> not r.sound) all in
  (* The full table has |flows| x |frames| x |stages| rows; print the worst
     (tightest) stage per flow plus a summary. *)
  let table =
    Tablefmt.create
      ~columns:
        [
          ("flow", Tablefmt.Left); ("frame", Tablefmt.Right);
          ("stage", Tablefmt.Left); ("bound", Tablefmt.Right);
          ("observed", Tablefmt.Right); ("tightness", Tablefmt.Right);
        ]
  in
  let tightness r =
    match r.observed with
    | Some o when r.bound > 0 -> float_of_int o /. float_of_int r.bound
    | _ -> 0.
  in
  let by_flow = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt by_flow r.flow_name with
      | Some best when tightness best >= tightness r -> ()
      | _ -> Hashtbl.replace by_flow r.flow_name r)
    all;
  Hashtbl.fold (fun _ r acc -> r :: acc) by_flow []
  |> List.sort (fun a b -> compare a.flow_name b.flow_name)
  |> List.iter (fun r ->
         Tablefmt.add_row table
           [
             r.flow_name; string_of_int r.frame; r.stage;
             Timeunit.to_string r.bound;
             (match r.observed with
             | Some o -> Timeunit.to_string o
             | None -> "-");
             Printf.sprintf "%.3f" (tightness r);
           ]);
  print_endline "tightest stage per flow:";
  Tablefmt.print table;
  Exp_common.kv "stage checks performed" (string_of_int (List.length all));
  Exp_common.kv "violations"
    (if violations = [] then "0 (every stage bound dominates)"
     else string_of_int (List.length violations) ^ " - UNSOUND")
