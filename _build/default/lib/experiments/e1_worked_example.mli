(** E1 — the worked example of Section 3.1 / Figures 3 and 4.

    Regenerates, for the Figure 3 MPEG stream on link(0,4) at 10 Mbit/s:
    the per-frame transmission times C_i^k, the Ethernet-frame counts,
    CSUM (eq 4), NSUM (eq 5), TSUM (eq 6) and MFT (eq 1), and checks the
    two values the paper text states (NSUM = 94, TSUM = 270 ms) plus
    MFT = 1.2304 ms. *)

type result = {
  csum : Gmf_util.Timeunit.ns;
  nsum : int;
  tsum : Gmf_util.Timeunit.ns;
  mft : Gmf_util.Timeunit.ns;
}

val compute : unit -> result
(** The derived values, without printing. *)

val run : unit -> unit
(** Print the full Figure-4-style table and the paper-vs-measured checks. *)
