open Gmf_util

type row = {
  scenario : string;
  kind : [ `Egress | `Ingress ];
  node : Network.Node.id;
  peer : Network.Node.id;
  bound_frames : int;
  observed_frames : int option;
}

let rows_for name scenario =
  let ctx = Analysis.Ctx.create scenario in
  let report = Analysis.Holistic.run ctx in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 2 }
      scenario
  in
  let observed table key = List.assoc_opt key table in
  let rows_of kind bounds table =
    List.map
      (fun (b : Analysis.Backlog.queue_bound) ->
        {
          scenario = name;
          kind;
          node = b.Analysis.Backlog.node;
          peer = b.Analysis.Backlog.peer;
          bound_frames = b.Analysis.Backlog.frames;
          observed_frames =
            observed table (b.Analysis.Backlog.node, b.Analysis.Backlog.peer);
        })
      bounds
  in
  match
    ( Analysis.Backlog.egress_bounds ctx report,
      Analysis.Backlog.ingress_bounds ctx report )
  with
  | Ok egress, Ok ingress ->
      rows_of `Egress egress sim.Sim.Netsim.egress_backlog
      @ rows_of `Ingress ingress sim.Sim.Netsim.ingress_backlog
  | Error msg, _ | _, Error msg -> failwith (name ^ ": " ^ msg)

(* Two large-packet flows converging on one egress link: their synchronized
   bursts pile up in the priority queue, so the observed high-water mark is
   well above one frame. *)
let converging_scenario () =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:3 ()
  in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period:(Timeunit.ms 20)
          ~deadline:(Timeunit.ms 120) ~jitter:0 ~payload_bits:(8 * 50_000);
      ]
  in
  let flows =
    List.init 2 (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "burst%d" id)
          ~spec ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(id); sw; hosts.(2) ])
          ~priority:5)
  in
  Traffic.Scenario.make ~topo ~flows ()

let rows () =
  rows_for "fig1" (Workload.Scenarios.fig1_videoconf ())
  @ rows_for "chain" (Workload.Scenarios.multihop_chain ())
  @ rows_for "converging" (converging_scenario ())

let run () =
  Exp_common.section
    "E11: switch buffer sizing - analytic backlog bounds vs simulated \
     high-water marks";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("scenario", Tablefmt.Left); ("queue", Tablefmt.Left);
          ("bound (frames)", Tablefmt.Right);
          ("observed (frames)", Tablefmt.Right); ("sound", Tablefmt.Left);
        ]
  in
  let all_sound = ref true in
  List.iter
    (fun r ->
      let sound =
        match r.observed_frames with
        | None -> true
        | Some o -> o <= r.bound_frames
      in
      if not sound then all_sound := false;
      Tablefmt.add_row table
        [
          r.scenario;
          Printf.sprintf "%s %d%s%d"
            (match r.kind with `Egress -> "out" | `Ingress -> "in")
            r.node
            (match r.kind with `Egress -> "->" | `Ingress -> "<-")
            r.peer;
          string_of_int r.bound_frames;
          (match r.observed_frames with
          | Some o -> string_of_int o
          | None -> "-");
          (if sound then "yes" else "VIOLATED");
        ])
    (rows ());
  Tablefmt.print table;
  Exp_common.kv "all queue bounds dominate observations"
    (if !all_sound then "yes" else "NO");
  Exp_common.kv "use"
    "size each switch queue to 'bound * 1538 B' and the unbounded-queue \
     assumption of Figure 5 is safe"
