(** E4 — admission-controller comparison: GMF analysis vs the sporadic-model
    baseline (Section 3.5's admission controller; the gain of the GMF model
    is the paper's motivation for adopting it).

    Identical video-like GMF flows are offered one by one on a fixed path
    through one switch; both admission controllers run greedily.  The GMF
    analysis knows only one I-sized packet per cycle exists, while the
    sporadic abstraction must assume every packet is I-sized, so it
    saturates far earlier. *)

type point = {
  offered : int;  (** Number of flows offered so far. *)
  offered_utilization : float;  (** Bottleneck-link utilization offered. *)
  gmf_admitted : int;
  sporadic_admitted : int;
}

val sweep : ?max_flows:int -> unit -> point list

val run : unit -> unit
