(** E2 — end-to-end response-time bounds on the example network
    (Figures 1, 2 and 6).

    Runs the holistic analysis on the Figure 1 scenario and prints, for the
    Figure 2 video flow, the per-frame per-stage breakdown produced by the
    Figure 6 algorithm, plus a worst-case summary for every flow. *)

val report : unit -> Analysis.Holistic.report
(** The holistic analysis of the Figure 1 scenario. *)

val run : unit -> unit
