(** Experiment registry: maps experiment ids (E1..E10) to their drivers.
    Used by the [gmfnet experiment] CLI command and the test suite. *)

type entry = { id : string; description : string; run : unit -> unit }

val all : entry list
(** Every experiment, in id order. *)

val find : string -> entry option
(** Case-insensitive lookup by id ("e4" matches "E4"). *)

val run_all : unit -> unit
(** Run every experiment in order. *)
