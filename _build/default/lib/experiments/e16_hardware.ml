open Gmf_util

type comparison = {
  scenario : string;
  software_bound : Timeunit.ns;
  hardware_bound : Timeunit.ns;
  software_observed : Timeunit.ns;
  hardware_observed : Timeunit.ns;
}

let with_model base model =
  Traffic.Scenario.make
    ~switches:
      (List.map (fun n -> (n, model)) (Traffic.Scenario.switch_nodes base))
    ~topo:(Traffic.Scenario.topo base)
    ~flows:(Traffic.Scenario.flows base)
    ()

let video_results scenario =
  let report = Analysis.Holistic.analyze scenario in
  let bound =
    Exp_common.worst_total report Workload.Scenarios.video_flow_id
  in
  let sim =
    Sim.Netsim.run
      ~config:{ Sim.Sim_config.default with duration = Timeunit.s 1 }
      scenario
  in
  let observed =
    Option.value ~default:0
      (Sim.Collector.max_response_flow sim.Sim.Netsim.collector
         ~flow:Workload.Scenarios.video_flow_id)
  in
  (bound, observed)

let compare_on ~name ~rate_bps =
  let base = Workload.Scenarios.fig1_videoconf ~rate_bps () in
  let software = Click.Switch_model.make ~ninterfaces:4 () in
  let hardware =
    Click.Switch_model.make ~croute:0 ~csend:0 ~ninterfaces:4 ()
  in
  let software_bound, software_observed =
    video_results (with_model base software)
  in
  let hardware_bound, hardware_observed =
    video_results (with_model base hardware)
  in
  { scenario = name; software_bound; hardware_bound; software_observed;
    hardware_observed }

let run () =
  Exp_common.section
    "E16: software vs idealized hardware switches (video flow of Figure 1)";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("links", Tablefmt.Left); ("model", Tablefmt.Left);
          ("analytic bound", Tablefmt.Right); ("sim worst", Tablefmt.Right);
        ]
  in
  let penalties =
    List.map
      (fun (name, rate_bps) ->
        let c = compare_on ~name ~rate_bps in
        Tablefmt.add_row table
          [
            c.scenario; "software (Click)";
            Timeunit.to_string c.software_bound;
            Timeunit.to_string c.software_observed;
          ];
        Tablefmt.add_row table
          [
            c.scenario; "hardware (ideal)";
            Timeunit.to_string c.hardware_bound;
            Timeunit.to_string c.hardware_observed;
          ];
        (c.scenario, c.software_bound - c.hardware_bound))
      [ ("10M", 10_000_000); ("100M", 100_000_000); ("1G", 1_000_000_000) ]
  in
  Tablefmt.print table;
  List.iter
    (fun (name, penalty) ->
      Exp_common.kv
        (Printf.sprintf "software penalty on the bound at %s" name)
        (Timeunit.to_string penalty))
    penalties;
  print_endline
    "  (the absolute software penalty is nearly constant, so its share of\n\
    \   the bound grows from ~2% at 10 Mbit/s to ~46% at 1 Gbit/s - the\n\
    \   regime in which the Conclusions call for multiprocessor switches)"
