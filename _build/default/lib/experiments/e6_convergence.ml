open Gmf_util

type point = {
  period : Timeunit.ns;
  link_utilization : float;
  verdict : string;
  rounds : int;
  bound : Timeunit.ns option;
}

let periods_ms = [ 20.0; 10.0; 5.0; 4.0; 3.0; 2.8; 2.6; 2.5; 2.4; 2.2 ]

let scenario_for period =
  let topo, hosts, sw = Workload.Topologies.star ~hosts:2 () in
  let spec =
    Gmf.Spec.make
      [
        Gmf.Frame_spec.make ~period ~deadline:(Timeunit.ms 100) ~jitter:0
          ~payload_bits:(8 * 1_472);
      ]
  in
  let flows =
    List.init 2 (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "f%d" id)
          ~spec ~encap:Ethernet.Encap.Udp
          ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
          ~priority:5)
  in
  Traffic.Scenario.make ~topo ~flows ()

let sweep () =
  List.map
    (fun ms ->
      let period = int_of_float (ms *. 1e6) in
      let scenario = scenario_for period in
      let link_utilization =
        Traffic.Scenario.link_utilization scenario ~src:1 ~dst:0
      in
      let report = Analysis.Holistic.analyze scenario in
      let bound =
        if Analysis.Holistic.is_schedulable report then
          Some (Exp_common.worst_total report 0)
        else None
      in
      {
        period;
        link_utilization;
        verdict = Exp_common.verdict_string report;
        rounds = report.Analysis.Holistic.rounds;
        bound;
      })
    periods_ms

let run () =
  Exp_common.section
    "E6: convergence boundary (eqs 20/34-35) - two flows, shrinking period \
     at 10 Mbit/s";
  let table =
    Tablefmt.create
      ~columns:
        [
          ("period", Tablefmt.Right); ("U (eq 20)", Tablefmt.Right);
          ("rounds", Tablefmt.Right); ("worst R", Tablefmt.Right);
          ("verdict", Tablefmt.Left);
        ]
  in
  List.iter
    (fun p ->
      Tablefmt.add_row table
        [
          Timeunit.to_string p.period;
          Printf.sprintf "%.3f" p.link_utilization;
          string_of_int p.rounds;
          (match p.bound with Some b -> Timeunit.to_string b | None -> "-");
          p.verdict;
        ])
    (sweep ());
  Tablefmt.print table;
  print_endline
    "  (eq 20: below U = 1 the fixed points converge and the bound grows\n\
    \   sharply as U -> 1; at or past U = 1 the analysis reports failure,\n\
    \   matching eq 34)"
