(** E11 — switch buffer sizing (extension; see Analysis.Backlog).

    The paper's Figure 5 queues are implicitly unbounded.  This experiment
    derives, from the completed response-time analysis, how many Ethernet
    frames each switch queue can ever hold, and validates the bound against
    the simulator's observed high-water marks on the Figure 1 scenario and
    the multihop chain. *)

type row = {
  scenario : string;
  kind : [ `Egress | `Ingress ];
  node : Network.Node.id;
  peer : Network.Node.id;
  bound_frames : int;
  observed_frames : int option;
}

val rows : unit -> row list

val run : unit -> unit
