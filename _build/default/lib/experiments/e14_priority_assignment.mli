(** E14 — 802.1p priority-assignment policies (extension; see
    Analysis.Priority_assign).

    The paper takes priorities as given; the operator must choose them.
    A mixed workload (VoIP, video, bulk) is assigned classes by each
    policy at 2 and at 8 levels; the resulting verdicts and worst bounds
    are compared, including against the exhaustive optimum. *)

type row = {
  policy : string;
  levels : int;
  schedulable : bool;
  worst_bound : Gmf_util.Timeunit.ns option;
  voip_bound : Gmf_util.Timeunit.ns option;
}

val rows : unit -> row list

val run : unit -> unit
