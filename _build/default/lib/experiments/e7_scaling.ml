open Gmf_util

type row = { label : string; parameter : int; seconds : float }

let time_it f =
  (* Median of three runs, in CPU seconds. *)
  let once () =
    let t0 = Sys.time () in
    ignore (f ());
    Sys.time () -. t0
  in
  let samples = List.sort compare [ once (); once (); once () ] in
  List.nth samples 1

let star_with_flows count =
  let topo, hosts, sw =
    Workload.Topologies.star ~rate_bps:1_000_000_000 ~hosts:(2 * count) ()
  in
  let flows =
    List.init count (fun id ->
        Traffic.Flow.make ~id
          ~name:(Printf.sprintf "v%d" id)
          ~spec:(Workload.Mpeg.spec ~deadline:(Timeunit.ms 260) ())
          ~encap:Ethernet.Encap.Udp
          ~route:
            (Network.Route.make topo [ hosts.(2 * id); sw; hosts.((2 * id) + 1) ])
          ~priority:(id mod 8))
  in
  Traffic.Scenario.make ~topo ~flows ()

let flows_axis () =
  List.map
    (fun count ->
      let scenario = star_with_flows count in
      {
        label = "flows";
        parameter = count;
        seconds = time_it (fun () -> Analysis.Holistic.analyze scenario);
      })
    [ 2; 4; 8; 16; 32 ]

let hops_axis () =
  List.map
    (fun switches ->
      let scenario =
        Workload.Scenarios.multihop_chain ~switches
          ~rate_bps:1_000_000_000 ()
      in
      {
        label = "switches";
        parameter = switches;
        seconds = time_it (fun () -> Analysis.Holistic.analyze scenario);
      })
    [ 2; 4; 8; 16 ]

let chain_spec n =
  (* A GMF cycle of n frames alternating large and small packets. *)
  Gmf.Spec.make
    (List.init n (fun k ->
         Gmf.Frame_spec.make ~period:(Timeunit.ms 30)
           ~deadline:(Timeunit.ms (30 * n))
           ~jitter:(Timeunit.ms 1)
           ~payload_bits:(if k mod 3 = 0 then 8 * 44_000 else 8 * 8_000)))

let frames_axis () =
  List.map
    (fun n ->
      let topo, hosts, sw =
        Workload.Topologies.star ~rate_bps:100_000_000 ~hosts:2 ()
      in
      let flows =
        List.init 2 (fun id ->
            Traffic.Flow.make ~id
              ~name:(Printf.sprintf "f%d" id)
              ~spec:(chain_spec n) ~encap:Ethernet.Encap.Udp
              ~route:(Network.Route.make topo [ hosts.(0); sw; hosts.(1) ])
              ~priority:5)
      in
      let scenario = Traffic.Scenario.make ~topo ~flows () in
      {
        label = "n_frames";
        parameter = n;
        seconds = time_it (fun () -> Analysis.Holistic.analyze scenario);
      })
    [ 3; 9; 18; 36 ]

let print_axis title rows =
  print_endline title;
  let table =
    Tablefmt.create
      ~columns:
        [ ("parameter", Tablefmt.Right); ("analysis CPU time", Tablefmt.Right) ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row table
        [ string_of_int r.parameter; Printf.sprintf "%.4fs" r.seconds ])
    rows;
  Tablefmt.print table;
  print_newline ()

let run () =
  Exp_common.section "E7: analysis cost scaling (admission-control latency)";
  print_axis "flows sharing one switch:" (flows_axis ());
  print_axis "switches on the route (multihop chain):" (hops_axis ());
  print_axis "GMF frames per cycle (n_i):" (frames_axis ())
