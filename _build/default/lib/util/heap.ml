(* Each pushed element carries a monotonically increasing sequence number so
   that elements equal under the user ordering come out in insertion order. *)

type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0; next_seq = 0 }

let length h = h.size
let is_empty h = h.size = 0

let entry_cmp h a b =
  let c = h.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let dummy = h.data.(0) in
    let data = Array.make (max 8 (2 * cap)) dummy in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_cmp h h.data.(l) h.data.(!smallest) < 0 then
    smallest := l;
  if r < h.size && entry_cmp h h.data.(r) h.data.(!smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  let e = { value = x; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 8 e else grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0).value

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    (* Release the slot so the GC can reclaim the element. *)
    if h.size < Array.length h.data then h.data.(h.size) <- top;
    Some top.value
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.size <- 0;
  h.data <- [||]

let to_sorted_list h =
  let copy =
    {
      cmp = h.cmp;
      data = Array.sub h.data 0 (Array.length h.data);
      size = h.size;
      next_seq = h.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
