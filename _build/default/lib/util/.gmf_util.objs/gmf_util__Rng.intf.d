lib/util/rng.mli:
