lib/util/tablefmt.mli:
