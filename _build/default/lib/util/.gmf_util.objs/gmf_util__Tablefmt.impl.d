lib/util/tablefmt.ml: Array List String
