lib/util/timeunit.ml: Float Format Printf Stdlib String
