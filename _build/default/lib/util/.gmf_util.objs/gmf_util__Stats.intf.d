lib/util/stats.mli:
