lib/util/timeunit.mli: Format
