lib/util/heap.mli:
