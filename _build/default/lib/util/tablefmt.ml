type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ~columns =
  if columns = [] then invalid_arg "Tablefmt.create: no columns";
  {
    headers = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let add_row t cells =
  if List.length cells <> Array.length t.aligns then
    invalid_arg "Tablefmt.add_row: wrong cell count";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let ncols = Array.length t.aligns in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) t.rows;
  let pad i c =
    let w = widths.(i) in
    let n = w - String.length c in
    match t.aligns.(i) with
    | Left -> c ^ String.make n ' '
    | Right -> String.make n ' ' ^ c
  in
  let rule =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "-+-"
  in
  let line cells = String.concat " | " (List.mapi pad cells) in
  let body =
    List.rev_map
      (function Cells c -> line c | Separator -> rule)
      t.rows
  in
  String.concat "\n" (line t.headers :: rule :: body)

let print t =
  print_string (render t);
  print_newline ()
