type ns = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000
let us_frac x = int_of_float (Float.round (x *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_s t = float_of_int t /. 1_000_000_000.

(* Trim trailing zeros of a fixed-point rendering so that e.g. 14.800 prints
   as 14.8 and 270.000 prints as 270. *)
let trim_frac str =
  if String.contains str '.' then begin
    let n = ref (String.length str) in
    while !n > 0 && str.[!n - 1] = '0' do
      decr n
    done;
    if !n > 0 && str.[!n - 1] = '.' then decr n;
    String.sub str 0 !n
  end
  else str

let pp fmt t =
  let abs = Stdlib.abs t in
  if abs < 1_000 then Format.fprintf fmt "%dns" t
  else if abs < 1_000_000 then
    Format.fprintf fmt "%sus" (trim_frac (Printf.sprintf "%.3f" (to_us t)))
  else if abs < 1_000_000_000 then
    Format.fprintf fmt "%sms" (trim_frac (Printf.sprintf "%.6f" (to_ms t)))
  else Format.fprintf fmt "%ss" (trim_frac (Printf.sprintf "%.9f" (to_s t)))

let to_string t = Format.asprintf "%a" pp t

let check_div name a b =
  if b <= 0 then invalid_arg (name ^ ": non-positive divisor");
  if a < 0 then invalid_arg (name ^ ": negative dividend")

let cdiv a b =
  check_div "Timeunit.cdiv" a b;
  (a + b - 1) / b

let fdiv a b =
  check_div "Timeunit.fdiv" a b;
  a / b

let tx_time_ns ~bits ~rate_bps =
  if rate_bps <= 0 then invalid_arg "Timeunit.tx_time_ns: non-positive rate";
  if bits < 0 then invalid_arg "Timeunit.tx_time_ns: negative size";
  cdiv (bits * 1_000_000_000) rate_bps
