(** Small descriptive-statistics toolkit for experiment reporting.

    Works on integer samples (nanosecond response times, frame counts) and
    keeps every sample, so exact order statistics are available.  The sample
    counts in this project are small (at most a few million), so retention is
    cheap and avoids streaming-quantile approximation error in the
    paper-vs-measured tables. *)

type t

val create : unit -> t
(** [create ()] is an empty accumulator. *)

val add : t -> int -> unit
(** [add t x] records one sample. *)

val add_list : t -> int list -> unit
(** [add_list t xs] records every sample of [xs]. *)

val count : t -> int
(** Number of samples recorded. *)

val min : t -> int
(** Smallest sample. Raises [Invalid_argument] when empty. *)

val max : t -> int
(** Largest sample. Raises [Invalid_argument] when empty. *)

val sum : t -> int
(** Sum of all samples. *)

val mean : t -> float
(** Arithmetic mean. Raises [Invalid_argument] when empty. *)

val stddev : t -> float
(** Population standard deviation. Raises [Invalid_argument] when empty. *)

val percentile : t -> float -> int
(** [percentile t p] is the nearest-rank [p]-th percentile, [0 <= p <= 100].
    Raises [Invalid_argument] when empty or [p] out of range. *)

val median : t -> int
(** [median t] is [percentile t 50.]. *)

val to_list : t -> int list
(** All samples in insertion order. *)

val histogram : t -> buckets:int -> (int * int * int) list
(** [histogram t ~buckets] partitions [\[min, max\]] into [buckets]
    equal-width buckets and returns [(lo, hi, count)] per bucket.
    Raises [Invalid_argument] when empty or [buckets <= 0]. *)
