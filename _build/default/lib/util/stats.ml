type t = {
  mutable samples : int list; (* reversed insertion order *)
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
  mutable sorted : int array option; (* cache, invalidated by add *)
}

let create () =
  { samples = []; count = 0; sum = 0; min = max_int; max = min_int;
    sorted = None }

let add t x =
  t.samples <- x :: t.samples;
  t.count <- t.count + 1;
  t.sum <- t.sum + x;
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.sorted <- None

let add_list t xs = List.iter (add t) xs

let count t = t.count
let sum t = t.sum

let require_nonempty name t =
  if t.count = 0 then invalid_arg (name ^ ": empty accumulator")

let min t =
  require_nonempty "Stats.min" t;
  t.min

let max t =
  require_nonempty "Stats.max" t;
  t.max

let mean t =
  require_nonempty "Stats.mean" t;
  float_of_int t.sum /. float_of_int t.count

let stddev t =
  require_nonempty "Stats.stddev" t;
  let m = mean t in
  let acc = ref 0. in
  List.iter
    (fun x ->
      let d = float_of_int x -. m in
      acc := !acc +. (d *. d))
    t.samples;
  sqrt (!acc /. float_of_int t.count)

let sorted t =
  match t.sorted with
  | Some arr -> arr
  | None ->
      let arr = Array.of_list t.samples in
      Array.sort compare arr;
      t.sorted <- Some arr;
      arr

let percentile t p =
  require_nonempty "Stats.percentile" t;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let arr = sorted t in
  let n = Array.length arr in
  (* Nearest-rank definition: smallest value such that at least p% of the
     samples are <= it. *)
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
  arr.(idx)

let median t = percentile t 50.

let to_list t = List.rev t.samples

let histogram t ~buckets =
  require_nonempty "Stats.histogram" t;
  if buckets <= 0 then invalid_arg "Stats.histogram: non-positive buckets";
  let lo = t.min and hi = t.max in
  let span = Stdlib.max 1 (hi - lo + 1) in
  let width = (span + buckets - 1) / buckets in
  let counts = Array.make buckets 0 in
  List.iter
    (fun x ->
      let b = Stdlib.min (buckets - 1) ((x - lo) / width) in
      counts.(b) <- counts.(b) + 1)
    t.samples;
  List.init buckets (fun b ->
      let b_lo = lo + (b * width) in
      (b_lo, b_lo + width - 1, counts.(b)))
