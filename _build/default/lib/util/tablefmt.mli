(** Plain-text table rendering for experiment output.

    Every experiment in [EXPERIMENTS.md] prints its paper-vs-measured rows
    through this module so the benches, the CLI and the examples all produce
    the same aligned format. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] is an empty table with the given header cells and
    per-column alignment.  Raises [Invalid_argument] on an empty column
    list. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Raises [Invalid_argument] if the cell
    count differs from the column count. *)

val add_separator : t -> unit
(** [add_separator t] inserts a horizontal rule between the rows added so far
    and those added later. *)

val render : t -> string
(** [render t] is the table as a multi-line string (no trailing newline). *)

val print : t -> unit
(** [print t] writes [render t] and a newline to standard output. *)
