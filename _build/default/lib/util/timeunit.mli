(** Integer-nanosecond time arithmetic.

    All durations and instants in this project are represented as integer
    nanoseconds ([ns = int]).  Using integers (rather than floats) makes the
    busy-period fixed-point iterations of the schedulability analysis converge
    exactly, with no epsilon comparisons.  OCaml's 63-bit native integers give
    a range of about 146 years in nanoseconds, far beyond any busy period or
    hyperperiod handled here. *)

type ns = int
(** A duration or instant, in nanoseconds.  Always non-negative in this
    project unless documented otherwise. *)

val ns : int -> ns
(** [ns x] is [x] nanoseconds (identity; documents intent at call sites). *)

val us : int -> ns
(** [us x] is [x] microseconds as nanoseconds. *)

val ms : int -> ns
(** [ms x] is [x] milliseconds as nanoseconds. *)

val s : int -> ns
(** [s x] is [x] seconds as nanoseconds. *)

val us_frac : float -> ns
(** [us_frac x] is [x] microseconds rounded to the nearest nanosecond.
    Used for measured constants such as the 2.7 us CROUTE of the paper. *)

val to_us : ns -> float
(** [to_us t] is [t] expressed in microseconds. *)

val to_ms : ns -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_s : ns -> float
(** [to_s t] is [t] expressed in seconds. *)

val pp : Format.formatter -> ns -> unit
(** [pp fmt t] prints [t] with an auto-selected unit (ns, us, ms or s),
    e.g. ["14.8us"], ["270ms"]. *)

val to_string : ns -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is [ceil (a / b)] on non-negative integers.
    Raises [Invalid_argument] if [b <= 0] or [a < 0]. *)

val fdiv : int -> int -> int
(** [fdiv a b] is [floor (a / b)] on non-negative integers.
    Raises [Invalid_argument] if [b <= 0] or [a < 0]. *)

val tx_time_ns : bits:int -> rate_bps:int -> ns
(** [tx_time_ns ~bits ~rate_bps] is the time needed to transmit [bits] bits
    on a link of [rate_bps] bits per second, rounded up to a whole
    nanosecond (rounding up keeps response-time bounds sound).
    Raises [Invalid_argument] on non-positive rate or negative size. *)
