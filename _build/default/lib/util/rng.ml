type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Keep 62 bits so the value fits OCaml's native int.  The modulo bias is
     < 2^-40 for any bound below 2^22 and irrelevant for the workload-
     generation uses here. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: non-positive mean";
  let u = ref (float t 1.0) in
  if !u = 0. then u := epsilon_float;
  -.mean *. log !u
