(** Deterministic pseudo-random number generator (splitmix64).

    The workload generators and the simulator use this instead of
    [Stdlib.Random] so that every experiment is reproducible from a seed
    printed in its output, independent of the OCaml runtime version. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each flow / node its own stream. *)

val next_int64 : t -> int64
(** [next_int64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element. [arr] must be non-empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution (used for
    randomized slack in workload generation). [mean] must be positive. *)
