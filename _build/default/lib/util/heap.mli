(** Array-backed binary min-heap.

    Used as the event queue of the discrete-event simulator and by the stride
    scheduler's dispatch queue.  The ordering is given at creation time; ties
    are broken by insertion order (FIFO among equals), which the simulator
    relies on for deterministic replay. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (minimum first).
    Elements comparing equal under [cmp] are dequeued in insertion order. *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. Amortized O(log n). *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. O(log n). *)

val pop_exn : 'a t -> 'a
(** [pop_exn h] is [pop h]; raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit
(** [clear h] removes all elements. *)

val to_sorted_list : 'a t -> 'a list
(** [to_sorted_list h] drains a copy of [h] in ascending order; [h] itself is
    unchanged.  Intended for tests and debugging. *)
