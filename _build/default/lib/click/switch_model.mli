(** Cost model of a Click software-implemented Ethernet switch
    (paper Sections 2.1–2.2, Figure 5, and the multiprocessor discussion in
    the Conclusions).

    Per interface there are two software tasks: an ingress task (NIC FIFO →
    priority queue, cost CROUTE) and an egress task (priority queue → NIC
    FIFO, cost CSEND).  The CPU runs all tasks under stride scheduling with
    equal tickets (round-robin), so each task is serviced once every

      CIRC(N) = (NINTERFACES(N) / m) * (CROUTE(N) + CSEND(N))

    where [m] is the number of processors (Conclusions; [m = 1] in the body
    of the paper).  With the paper's measured CROUTE = 2.7 us and
    CSEND = 1.0 us, a 4-port single-CPU switch has CIRC = 14.8 us and a
    48-port 16-CPU switch has CIRC = 11.1 us. *)

type t = private {
  ninterfaces : int;
  croute : Gmf_util.Timeunit.ns;
  csend : Gmf_util.Timeunit.ns;
  processors : int;
}

val default_croute : Gmf_util.Timeunit.ns
(** 2.7 us — the paper's measured dequeue-classify-enqueue cost. *)

val default_csend : Gmf_util.Timeunit.ns
(** 1.0 us — the paper's measured priority-queue-to-NIC cost. *)

val make :
  ?croute:Gmf_util.Timeunit.ns ->
  ?csend:Gmf_util.Timeunit.ns ->
  ?processors:int ->
  ninterfaces:int ->
  unit ->
  t
(** Raises [Invalid_argument] if [ninterfaces <= 0], costs are negative,
    [processors <= 0], or [processors] does not divide [ninterfaces]
    (the paper's multiprocessor construction requires even division). *)

val circ : t -> Gmf_util.Timeunit.ns
(** CIRC(N): worst-case time between two consecutive services of any task
    on this switch. *)

val interfaces_per_processor : t -> int

val scheduler : t -> Stride.Scheduler.t
(** A fresh round-robin stride scheduler over the 2×(interfaces per
    processor) tasks handled by one processor of this switch, ingress tasks
    first.  Used by the simulator. *)

val pp : Format.formatter -> t -> unit
