open Gmf_util

type t = {
  ninterfaces : int;
  croute : Timeunit.ns;
  csend : Timeunit.ns;
  processors : int;
}

let default_croute = Timeunit.us_frac 2.7
let default_csend = Timeunit.us_frac 1.0

let make ?(croute = default_croute) ?(csend = default_csend) ?(processors = 1)
    ~ninterfaces () =
  if ninterfaces <= 0 then
    invalid_arg "Switch_model.make: non-positive interface count";
  if croute < 0 || csend < 0 then
    invalid_arg "Switch_model.make: negative task cost";
  if processors <= 0 then
    invalid_arg "Switch_model.make: non-positive processor count";
  if ninterfaces mod processors <> 0 then
    invalid_arg
      "Switch_model.make: processors must evenly divide interfaces \
       (paper's multiprocessor construction)";
  { ninterfaces; croute; csend; processors }

let interfaces_per_processor t = t.ninterfaces / t.processors

let circ t = interfaces_per_processor t * (t.croute + t.csend)

let scheduler t =
  Stride.Scheduler.round_robin ~ntasks:(2 * interfaces_per_processor t)

let pp fmt t =
  Format.fprintf fmt
    "switch(%d ports, %d cpu%s, CROUTE=%a, CSEND=%a, CIRC=%a)" t.ninterfaces
    t.processors
    (if t.processors = 1 then "" else "s")
    Timeunit.pp t.croute Timeunit.pp t.csend Timeunit.pp (circ t)
