lib/click/switch_model.ml: Format Gmf_util Stride Timeunit
