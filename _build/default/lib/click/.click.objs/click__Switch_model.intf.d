lib/click/switch_model.mli: Format Gmf_util Stride
