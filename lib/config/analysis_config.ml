open Gmf_util

type variant = Faithful | Repaired

type t = {
  variant : variant;
  tight_jitter : bool;
  max_busy_iters : int;
  max_q : int;
  horizon : Timeunit.ns;
  max_holistic_rounds : int;
}

let default =
  {
    variant = Repaired;
    tight_jitter = false;
    max_busy_iters = 10_000;
    max_q = 4_096;
    horizon = Timeunit.s 100;
    max_holistic_rounds = 64;
  }

let faithful = { default with variant = Faithful }
let tight = { default with tight_jitter = true }

let variant_to_string = function
  | Faithful -> "faithful"
  | Repaired -> "repaired"

let pp fmt t =
  Format.fprintf fmt
    "config(%s%s, busy_iters<=%d, Q<=%d, horizon=%a, rounds<=%d)"
    (variant_to_string t.variant)
    (if t.tight_jitter then ", tight-jitter" else "")
    t.max_busy_iters t.max_q Timeunit.pp t.horizon t.max_holistic_rounds
