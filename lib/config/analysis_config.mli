(** Knobs of the schedulability analysis.

    Lives below [Analysis] so that static passes ([Gmf_lint]) can inspect
    the configuration without depending on the analyzer itself; [Analysis.Config]
    re-exports this module unchanged.

    The [variant] selects between the paper's literal equations and the
    repaired ones documented in DESIGN.md (repair R2):

    - [Faithful]: the ingress/egress stages charge the analyzed flow one
      task rotation per cycle ([q * CIRC]) as written in eqs (23)–(25) and
      (30)–(32), even when a GMF frame fragments into several Ethernet
      frames.
    - [Repaired]: each own Ethernet frame is charged one rotation
      ([q * NSUM_i * CIRC] per cycle plus [m_i^k * CIRC] for the packet
      under analysis), which dominates the Faithful bound and is the sound
      choice when packets exceed one Ethernet frame.  [Repaired] also drops
      the [min(t, .)] clamp of MXS (eq 10) in favour of the classical
      request-bound reading (repair R7): under the paper's clamp, MX(0) = 0
      and the queuing-time recurrences accept w = 0 as a fixed point when
      all jitters are zero, losing all interference.

    Both variants seed busy-period iterations with the frame's own demand
    (repair R1) — the paper's zero seed makes the recurrences degenerate
    when all jitters are zero. *)

type variant = Faithful | Repaired

type t = {
  variant : variant;
  tight_jitter : bool;
      (** Jitter-propagation rule along the pipeline (Figure 6 lines
          10/15/19).  [false] (the paper): the next stage's generalized
          jitter grows by the full stage response time R.  [true]: it grows
          by the response-time {e variability} R − R_min, where R_min is a
          lower bound on every packet's stage response (its own
          transmission + propagation on link stages, its own task rotations
          at ingress) — the classical tightening of holistic analysis
          (Tindell & Clark).  End-to-end bounds (RSUM) are unaffected;
          only the interference other flows see shrinks. *)
  max_busy_iters : int;
      (** Fixed-point iteration cap per busy period / per w(q). *)
  max_q : int;  (** Cap on the number of cycle instances examined (Q). *)
  horizon : Gmf_util.Timeunit.ns;
      (** Busy periods and queuing delays beyond this length are treated as
          divergence (unschedulable). *)
  max_holistic_rounds : int;
      (** Cap on the outer jitter-propagation fixed point. *)
}

val default : t
(** [Repaired] variant, 10^4 busy iterations, Q cap 4096, 100 s horizon,
    64 holistic rounds. *)

val faithful : t
(** [default] with [variant = Faithful]. *)

val tight : t
(** [default] with [tight_jitter = true]. *)

val variant_to_string : variant -> string

val pp : Format.formatter -> t -> unit
