(** Wire codec for [gmfnetd]: the [.admtrace] event grammar framed as
    JSONL (one JSON object per line, both directions).

    An {!request.Event} carries one admtrace event {e verbatim} — a
    single directive like [remove cam], or a whole flow block through
    its [end] with embedded newlines.  The daemon feeds the text to
    {!Parse.Admtrace.Incremental}, so the wire protocol shares the batch
    grammar and its stateful name/id resolution instead of duplicating
    them; rendered transcripts come back byte-identical to
    [gmfnet session] output.

    Encoding is canonical and deterministic: [encode_request] of a
    decoded line is the normal form the daemon's write-ahead journal
    stores and replays. *)

(** Minimal JSON values, parser and printer — enough for the protocol
    (and for tests to poke at raw lines).  No external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering, keys in listed order, strings escaped. *)

  val of_string : string -> (t, string) result
  (** Strict parse of one complete JSON value (trailing garbage is an
      error).  [\uXXXX] escapes decode to UTF-8. *)

  val member : string -> t -> t option
  (** Field of an [Obj]; [None] on a missing key or a non-object. *)
end

type request =
  | Open of {
      session : string;
          (** Session name — also the journal file name, so restricted
              by the daemon to [A-Za-z0-9._-]. *)
      topology : string;
          (** The admtrace topology prologue, verbatim
              ([node]/[link]/[duplex]/[switch] lines). *)
      verify : bool;  (** Shadow mode, as [gmfnet session --verify]. *)
      explain : bool;
      cold : bool;
      survivable : int option;
          (** Arm the survivable-admission gate on every admit. *)
      throttle_s : float;
          (** Minimum seconds the worker spends per event — a pacing
              knob for overload tests and benchmarks; [0.] (the
              default) in production. *)
    }
  | Event of { text : string }
      (** One admtrace event, verbatim (a directive, or a flow block
          through its [end]). *)
  | Summary  (** Render the session summary block. *)
  | Fingerprint  (** Digest of the observable session state. *)
  | Ping
  | Close

type response =
  | Opened of { session : string; replayed : int }
      (** [replayed] journal events were re-applied to recover state. *)
  | Outcome of { seq : int; label : string; accepted : bool; text : string }
      (** [text] is the rendered transcript block
          ({!Gmf_admctl.Replay.outcome_line} format, possibly
          multi-line). *)
  | Summary_is of { text : string }
  | Fingerprint_is of { digest : string; events : int }
  | Pong
  | Closed
  | Rejected of { code : string; message : string }
      (** An explicit refusal; the session state did not change.  See
          the [code_*] values. *)

val code_overloaded : string
(** Bounded queue full — shed, never silently dropped. *)

val code_parse : string
(** The event text failed the admtrace grammar. *)

val code_crashed : string
(** The session worker died processing the event; it was not committed
    and the worker is being respawned + journal-replayed. *)

val code_deadline : string
(** The per-request deadline expired; the worker was killed, the event
    not committed. *)

val code_proto : string
(** Malformed protocol line or an operation out of order. *)

val code_shutdown : string
(** The daemon is draining after SIGTERM. *)

val encode_request : request -> string
(** One JSON line, no trailing newline.  Canonical: default-valued
    fields are omitted. *)

val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
