(* Wire codec for gmfnetd: the .admtrace event grammar framed as JSONL.

   One JSON object per line in both directions.  The payload of an
   [Event] request is admtrace source text verbatim (a single directive,
   or a whole flow block through its [end]); the daemon feeds it to
   {!Parse.Admtrace.Incremental}, so the wire protocol inherits the
   batch grammar — and its name/id resolution — without a second
   parser.  Everything here is deterministic: encoding the decode of a
   line reproduces the canonical form the journal stores. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec to_buf buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        (* %.12g round-trips every value the protocol carries (seconds
           with sub-millisecond resolution) without trailing noise. *)
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | Str s ->
        Buffer.add_char buf '"';
        add_escaped buf s;
        Buffer.add_char buf '"'
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            to_buf buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            add_escaped buf k;
            Buffer.add_string buf "\":";
            to_buf buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 128 in
    to_buf buf v;
    Buffer.contents buf

  exception Bad of string

  let of_string text =
    let n = String.length text in
    let pos = ref 0 in
    let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
    let skip_ws () =
      while
        !pos < n
        && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && text.[!pos] = c then incr pos
      else bad "expected %c at offset %d" c !pos
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let string_body () =
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then bad "unterminated string";
        let c = text.[!pos] in
        incr pos;
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          if !pos >= n then bad "unterminated escape";
          let e = text.[!pos] in
          incr pos;
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then bad "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> bad "bad \\u escape %S" hex
              in
              add_utf8 buf code
          | c -> bad "unknown escape \\%c" c);
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let number_start = function
      | '-' | '0' .. '9' -> true
      | _ -> false
    in
    let number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char text.[!pos] do incr pos done;
      let lit = String.sub text start (!pos - start) in
      let has_frac =
        String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit
      in
      if has_frac then
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> bad "bad number %S" lit
      else
        match int_of_string_opt lit with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt lit with
            | Some f -> Float f
            | None -> bad "bad number %S" lit)
    in
    let literal word v =
      if !pos + String.length word <= n
         && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else bad "bad literal at offset %d" !pos
    in
    let rec value () =
      skip_ws ();
      if !pos >= n then bad "unexpected end of input";
      match text.[!pos] with
      | '"' ->
          incr pos;
          Str (string_body ())
      | '{' ->
          incr pos;
          skip_ws ();
          if !pos < n && text.[!pos] = '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              expect '"';
              let k = string_body () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              if !pos < n && text.[!pos] = ',' then begin
                incr pos;
                members ((k, v) :: acc)
              end
              else begin
                expect '}';
                Obj (List.rev ((k, v) :: acc))
              end
            in
            members []
          end
      | '[' ->
          incr pos;
          skip_ws ();
          if !pos < n && text.[!pos] = ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let rec elements acc =
              let v = value () in
              skip_ws ();
              if !pos < n && text.[!pos] = ',' then begin
                incr pos;
                elements (v :: acc)
              end
              else begin
                expect ']';
                Arr (List.rev (v :: acc))
              end
            in
            elements []
          end
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | c when number_start c -> number ()
      | c -> bad "unexpected character %C at offset %d" c !pos
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then bad "trailing garbage at offset %d" !pos;
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type request =
  | Open of {
      session : string;
      topology : string;  (* admtrace topology prologue, verbatim *)
      verify : bool;  (* shadow mode, as [gmfnet session --verify] *)
      explain : bool;
      cold : bool;
      survivable : int option;
      throttle_s : float;
          (* minimum seconds the worker spends per event; a pacing knob
             for overload tests and benchmarks, 0 in production *)
    }
  | Event of { text : string }  (* one admtrace event, verbatim *)
  | Summary
  | Fingerprint
  | Ping
  | Close

type response =
  | Opened of { session : string; replayed : int }
  | Outcome of { seq : int; label : string; accepted : bool; text : string }
  | Summary_is of { text : string }
  | Fingerprint_is of { digest : string; events : int }
  | Pong
  | Closed
  | Rejected of { code : string; message : string }

(* Reject codes the daemon uses; fixed here so clients can match on
   them without string-guessing. *)
let code_overloaded = "overloaded"
let code_parse = "parse"
let code_crashed = "crashed"
let code_deadline = "deadline"
let code_proto = "proto"
let code_shutdown = "shutdown"

let encode_request req =
  let open Json in
  let obj =
    match req with
    | Open { session; topology; verify; explain; cold; survivable; throttle_s }
      ->
        [ ("op", Str "open"); ("session", Str session);
          ("topology", Str topology) ]
        @ (if verify then [ ("verify", Bool true) ] else [])
        @ (if explain then [ ("explain", Bool true) ] else [])
        @ (if cold then [ ("cold", Bool true) ] else [])
        @ (match survivable with
          | Some k -> [ ("survivable", Int k) ]
          | None -> [])
        @
        if throttle_s > 0. then [ ("throttle_s", Float throttle_s) ] else []
    | Event { text } -> [ ("op", Str "event"); ("text", Str text) ]
    | Summary -> [ ("op", Str "summary") ]
    | Fingerprint -> [ ("op", Str "fingerprint") ]
    | Ping -> [ ("op", Str "ping") ]
    | Close -> [ ("op", Str "close") ]
  in
  Json.to_string (Obj obj)

let str_field ?default j key =
  match Json.member key j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" key))

let bool_field j key =
  match Json.member key j with
  | Some (Json.Bool b) -> Ok b
  | None -> Ok false
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)

let int_field ?default j key =
  match Json.member key j with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" key))

let float_field j key ~default =
  match Json.member key j with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | None -> Ok default
  | Some _ -> Error (Printf.sprintf "field %S must be a number" key)

let ( let* ) = Result.bind

let decode_request line =
  let* j = Json.of_string line in
  let* op = str_field j "op" in
  match op with
  | "open" ->
      let* session = str_field j "session" in
      let* topology = str_field j "topology" in
      let* verify = bool_field j "verify" in
      let* explain = bool_field j "explain" in
      let* cold = bool_field j "cold" in
      let* survivable =
        match Json.member "survivable" j with
        | Some (Json.Int k) -> Ok (Some k)
        | None -> Ok None
        | Some _ -> Error "field \"survivable\" must be an integer"
      in
      let* throttle_s = float_field j "throttle_s" ~default:0. in
      Ok (Open { session; topology; verify; explain; cold; survivable;
                 throttle_s })
  | "event" ->
      let* text = str_field j "text" in
      Ok (Event { text })
  | "summary" -> Ok Summary
  | "fingerprint" -> Ok Fingerprint
  | "ping" -> Ok Ping
  | "close" -> Ok Close
  | op -> Error (Printf.sprintf "unknown op %S" op)

let encode_response resp =
  let open Json in
  let obj =
    match resp with
    | Opened { session; replayed } ->
        [ ("ok", Str "opened"); ("session", Str session);
          ("replayed", Int replayed) ]
    | Outcome { seq; label; accepted; text } ->
        [ ("ok", Str "outcome"); ("seq", Int seq); ("label", Str label);
          ("accepted", Bool accepted); ("text", Str text) ]
    | Summary_is { text } -> [ ("ok", Str "summary"); ("text", Str text) ]
    | Fingerprint_is { digest; events } ->
        [ ("ok", Str "fingerprint"); ("digest", Str digest);
          ("events", Int events) ]
    | Pong -> [ ("ok", Str "pong") ]
    | Closed -> [ ("ok", Str "closed") ]
    | Rejected { code; message } ->
        [ ("error", Str code); ("message", Str message) ]
  in
  Json.to_string (Obj obj)

let decode_response line =
  let* j = Json.of_string line in
  match Json.member "error" j with
  | Some (Json.Str code) ->
      let* message = str_field ~default:"" j "message" in
      Ok (Rejected { code; message })
  | Some _ -> Error "field \"error\" must be a string"
  | None -> (
      let* ok = str_field j "ok" in
      match ok with
      | "opened" ->
          let* session = str_field j "session" in
          let* replayed = int_field ~default:0 j "replayed" in
          Ok (Opened { session; replayed })
      | "outcome" ->
          let* seq = int_field j "seq" in
          let* label = str_field j "label" in
          let* accepted = bool_field j "accepted" in
          let* text = str_field j "text" in
          Ok (Outcome { seq; label; accepted; text })
      | "summary" ->
          let* text = str_field j "text" in
          Ok (Summary_is { text })
      | "fingerprint" ->
          let* digest = str_field j "digest" in
          let* events = int_field ~default:0 j "events" in
          Ok (Fingerprint_is { digest; events })
      | "pong" -> Ok Pong
      | "closed" -> Ok Closed
      | ok -> Error (Printf.sprintf "unknown ok kind %S" ok))
