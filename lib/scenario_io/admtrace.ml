include Parse.Admtrace
