type error = {
  line : int;
  column : int option;
  source : string option;
  message : string;
}

let pp_error fmt e =
  (match e.column with
  | Some c -> Format.fprintf fmt "line %d, column %d: %s" e.line c e.message
  | None -> Format.fprintf fmt "line %d: %s" e.line e.message);
  match e.source with
  | None -> ()
  | Some src -> (
      Format.fprintf fmt "@.  %s" src;
      match e.column with
      | Some c when c >= 1 -> Format.fprintf fmt "@.  %s^" (String.make (c - 1) ' ')
      | _ -> ())

(* The raising path carries the offending token (when the failing site
   knows one); the driver resolves it against the source line into a
   column and attaches the line itself. *)
exception Fail of { line : int; token : string option; message : string }

let fail ?token line fmt =
  Printf.ksprintf (fun message -> raise (Fail { line; token; message })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizing                                                         *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let words line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun w -> w <> "")

(* key=value arguments after the positional words *)
let parse_kvs lineno tokens =
  List.map
    (fun token ->
      match String.index_opt token '=' with
      | Some i ->
          ( String.sub token 0 i,
            String.sub token (i + 1) (String.length token - i - 1) )
      | None -> fail ~token lineno "expected key=value, got %S" token)
    tokens

let lookup kvs key = List.assoc_opt key kvs

let require lineno kvs key =
  match lookup kvs key with
  | Some v -> v
  | None -> fail lineno "missing required argument %s=..." key

let reject_unknown lineno kvs allowed =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then fail ~token:k lineno "unknown argument %S" k)
    kvs

let unit_arg lineno parse what value =
  match parse value with
  | Ok v -> v
  | Error msg -> fail ~token:value lineno "%s: %s" what msg

(* ------------------------------------------------------------------ *)
(* Parser state                                                       *)
(* ------------------------------------------------------------------ *)

type pending_flow = {
  f_line : int;
  f_name : string;
  f_from : string;
  f_to : string;
  f_route : string list option;
  f_prio : int;
  f_encap : Ethernet.Encap.t;
  f_remarks : (string * string * int) list; (* (src, dst, priority) *)
  mutable f_frames : Gmf.Frame_spec.t list; (* reversed *)
}

type state = {
  topo : Network.Topology.t;
  names : (string, Network.Node.id) Hashtbl.t;
  mutable switches : (Network.Node.id * Click.Switch_model.t) list;
  mutable flows : Traffic.Flow.t list; (* reversed *)
  mutable next_flow_id : int;
  mutable current : pending_flow option;
  mutable faults : Gmf_faults.Fault.event list; (* reversed *)
}

let node_id st lineno name =
  match Hashtbl.find_opt st.names name with
  | Some id -> id
  | None -> fail ~token:name lineno "unknown node %S" name

(* ------------------------------------------------------------------ *)
(* Directives                                                         *)
(* ------------------------------------------------------------------ *)

let directive_node st lineno = function
  | [ name; kind ] ->
      if Hashtbl.mem st.names name then
        fail ~token:name lineno "duplicate node %S" name;
      let kind =
        match kind with
        | "endhost" -> Network.Node.Endhost
        | "switch" -> Network.Node.Switch
        | "router" -> Network.Node.Router
        | other -> fail ~token:other lineno "unknown node kind %S" other
      in
      Hashtbl.replace st.names name
        (Network.Topology.add_node st.topo ~name ~kind)
  | _ -> fail lineno "usage: node <name> endhost|switch|router"

let link_args st lineno src dst rest =
  let kvs = parse_kvs lineno rest in
  reject_unknown lineno kvs [ "rate"; "prop" ];
  let rate = unit_arg lineno Units.rate "rate" (require lineno kvs "rate") in
  let prop =
    match lookup kvs "prop" with
    | Some v -> unit_arg lineno Units.duration "prop" v
    | None -> 0
  in
  (node_id st lineno src, node_id st lineno dst, rate, prop)

let directive_link st lineno = function
  | src :: dst :: rest ->
      let src, dst, rate_bps, prop = link_args st lineno src dst rest in
      (try Network.Topology.add_link st.topo ~src ~dst ~rate_bps ~prop
       with Invalid_argument msg -> fail lineno "%s" msg)
  | _ -> fail lineno "usage: link <src> <dst> rate=<rate> [prop=<duration>]"

let directive_duplex st lineno = function
  | a :: b :: rest ->
      let a, b, rate_bps, prop = link_args st lineno a b rest in
      (try Network.Topology.add_duplex_link st.topo ~a ~b ~rate_bps ~prop
       with Invalid_argument msg -> fail lineno "%s" msg)
  | _ -> fail lineno "usage: duplex <a> <b> rate=<rate> [prop=<duration>]"

let directive_switch st lineno = function
  | name :: rest ->
      let id = node_id st lineno name in
      let kvs = parse_kvs lineno rest in
      reject_unknown lineno kvs [ "ports"; "cpus"; "croute"; "csend" ];
      let int_arg key default =
        match lookup kvs key with
        | None -> default
        | Some v -> (
            match int_of_string_opt v with
            | Some i -> i
            | None -> fail ~token:v lineno "bad integer for %s: %S" key v)
      in
      let ports = int_arg "ports" (max 1 (Network.Topology.degree st.topo id)) in
      let cpus = int_arg "cpus" 1 in
      let croute =
        match lookup kvs "croute" with
        | Some v -> unit_arg lineno Units.duration "croute" v
        | None -> Click.Switch_model.default_croute
      in
      let csend =
        match lookup kvs "csend" with
        | Some v -> unit_arg lineno Units.duration "csend" v
        | None -> Click.Switch_model.default_csend
      in
      let model =
        try
          Click.Switch_model.make ~croute ~csend ~processors:cpus
            ~ninterfaces:ports ()
        with Invalid_argument msg -> fail lineno "%s" msg
      in
      if List.mem_assoc id st.switches then
        fail ~token:name lineno "duplicate switch directive for %S" name;
      st.switches <- (id, model) :: st.switches
  | [] -> fail lineno "usage: switch <name> [ports=..] [cpus=..] ..."

let directive_flow st lineno = function
  | name :: rest ->
      if st.current <> None then fail lineno "flow block not closed by 'end'";
      let kvs = parse_kvs lineno rest in
      reject_unknown lineno kvs
        [ "from"; "to"; "route"; "prio"; "encap"; "remark" ];
      let prio =
        match lookup kvs "prio" with
        | None -> 0
        | Some v -> (
            match int_of_string_opt v with
            | Some p when p >= 0 && p <= 7 -> p
            | _ -> fail ~token:v lineno "prio must be 0..7, got %S" v)
      in
      let encap =
        match lookup kvs "encap" with
        | None | Some "udp" -> Ethernet.Encap.Udp
        | Some "rtp" -> Ethernet.Encap.Rtp_udp
        | Some other ->
            fail ~token:other lineno "unknown encap %S (udp|rtp)" other
      in
      let route =
        Option.map (String.split_on_char ',') (lookup kvs "route")
      in
      (* remark=<src>/<dst>:<prio>[,<src>/<dst>:<prio>...] *)
      let remarks =
        match lookup kvs "remark" with
        | None -> []
        | Some text ->
            String.split_on_char ',' text
            |> List.map (fun item ->
                   match String.split_on_char ':' item with
                   | [ hop; prio_text ] -> (
                       match
                         (String.split_on_char '/' hop,
                          int_of_string_opt prio_text)
                       with
                       | [ src; dst ], Some p -> (src, dst, p)
                       | _ ->
                           fail ~token:item lineno
                             "bad remark %S (want src/dst:prio)" item)
                   | _ ->
                       fail ~token:item lineno "bad remark %S (want src/dst:prio)" item)
      in
      st.current <-
        Some
          {
            f_line = lineno;
            f_name = name;
            f_from = require lineno kvs "from";
            f_to = require lineno kvs "to";
            f_route = route;
            f_prio = prio;
            f_encap = encap;
            f_remarks = remarks;
            f_frames = [];
          }
  | [] -> fail lineno "usage: flow <name> from=<node> to=<node> ..."

let directive_frame st lineno rest =
  match st.current with
  | None -> fail lineno "'frame' outside a flow block"
  | Some flow ->
      let kvs = parse_kvs lineno rest in
      reject_unknown lineno kvs [ "period"; "deadline"; "jitter"; "payload" ];
      let dur key = unit_arg lineno Units.duration key (require lineno kvs key) in
      let jitter =
        match lookup kvs "jitter" with
        | Some v -> unit_arg lineno Units.duration "jitter" v
        | None -> 0
      in
      let payload_bits =
        unit_arg lineno Units.size_bits "payload" (require lineno kvs "payload")
      in
      let frame =
        try
          Gmf.Frame_spec.make ~period:(dur "period") ~deadline:(dur "deadline")
            ~jitter ~payload_bits
        with Invalid_argument msg -> fail lineno "%s" msg
      in
      flow.f_frames <- frame :: flow.f_frames

(* fault link <a> <b> at=<t> [until=<t>]     — the duplex pair goes down
   fault switch <s> stall <duration> at=<t>  — stride rotation pauses
   Injected by [gmfnet simulate]; the static analysis commands ignore
   the schedule (they have their own failure enumeration, [survive]). *)
let directive_fault st lineno = function
  | "link" :: a :: b :: rest ->
      let kvs = parse_kvs lineno rest in
      reject_unknown lineno kvs [ "at"; "until" ];
      let at = unit_arg lineno Units.duration "at" (require lineno kvs "at") in
      let ia = node_id st lineno a and ib = node_id st lineno b in
      if
        Network.Topology.find_link st.topo ~src:ia ~dst:ib = None
        && Network.Topology.find_link st.topo ~src:ib ~dst:ia = None
      then fail ~token:b lineno "no link between %S and %S" a b;
      let down = Gmf_faults.Fault.duplex_down ~a:ia ~b:ib ~at in
      let up =
        match lookup kvs "until" with
        | None -> []
        | Some v ->
            let until = unit_arg lineno Units.duration "until" v in
            if until <= at then
              fail ~token:v lineno
                "until must lie after at (%s is not after at)" v;
            Gmf_faults.Fault.duplex_up ~a:ia ~b:ib ~at:until
      in
      st.faults <- List.rev_append (down @ up) st.faults
  | "switch" :: name :: "stall" :: duration :: rest ->
      let kvs = parse_kvs lineno rest in
      reject_unknown lineno kvs [ "at" ];
      let at = unit_arg lineno Units.duration "at" (require lineno kvs "at") in
      let duration = unit_arg lineno Units.duration "stall" duration in
      let id = node_id st lineno name in
      if not (Network.Node.is_switch (Network.Topology.node st.topo id)) then
        fail ~token:name lineno "fault switch: %S is not a switch" name;
      st.faults <-
        Gmf_faults.Fault.Switch_stall (id, at, duration) :: st.faults
  | _ ->
      fail lineno
        "usage: fault link <a> <b> at=<time> [until=<time>]  |  fault \
         switch <name> stall <duration> at=<time>"

let finish_flow st lineno =
  match st.current with
  | None -> fail lineno "'end' without a flow block"
  | Some flow ->
      st.current <- None;
      if flow.f_frames = [] then
        fail flow.f_line "flow %S has no frames" flow.f_name;
      let src = node_id st flow.f_line flow.f_from in
      let dst = node_id st flow.f_line flow.f_to in
      let route_nodes =
        match flow.f_route with
        | Some names -> List.map (node_id st flow.f_line) names
        | None -> (
            match Network.Topology.shortest_path st.topo ~src ~dst with
            | Some path -> path
            | None ->
                fail flow.f_line "no path from %S to %S" flow.f_from flow.f_to)
      in
      if route_nodes = [] || List.hd route_nodes <> src then
        fail flow.f_line "route of %S must start at from=%S" flow.f_name
          flow.f_from;
      let spec =
        try Gmf.Spec.make (List.rev flow.f_frames)
        with Invalid_argument msg -> fail flow.f_line "%s" msg
      in
      let remarks =
        List.map
          (fun (src, dst, p) ->
            ((node_id st flow.f_line src, node_id st flow.f_line dst), p))
          flow.f_remarks
      in
      let traffic_flow =
        try
          Traffic.Flow.with_remarks
            (Traffic.Flow.make ~id:st.next_flow_id ~name:flow.f_name ~spec
               ~encap:flow.f_encap
               ~route:(Network.Route.make st.topo route_nodes)
               ~priority:flow.f_prio)
            remarks
        with Invalid_argument msg -> fail flow.f_line "%s" msg
      in
      st.next_flow_id <- st.next_flow_id + 1;
      st.flows <- traffic_flow :: st.flows

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

(* First occurrence of [token] in [src] (whole-word-ish: tokens come from
   whitespace splitting, so plain substring search is faithful enough). *)
let find_column src token =
  let ns = String.length src and nt = String.length token in
  if nt = 0 || nt > ns then None
  else
    let rec go i =
      if i + nt > ns then None
      else if String.sub src i nt = token then Some (i + 1)
      else go (i + 1)
    in
    go 0

let enrich lines ~line ~token message =
  let source =
    if line >= 1 && line <= Array.length lines then Some lines.(line - 1)
    else None
  in
  let column =
    match (source, token) with
    | Some src, Some tok -> find_column src tok
    | _ -> None
  in
  { line; column; source; message }

type with_faults = {
  scenario : Traffic.Scenario.t;
  faults : Gmf_faults.Fault.schedule;
}

let scenario_faults_of_string text =
  let st =
    {
      topo = Network.Topology.create ();
      names = Hashtbl.create 32;
      switches = [];
      flows = [];
      next_flow_id = 0;
      current = None;
      faults = [];
    }
  in
  let lines = Array.of_list (String.split_on_char '\n' text) in
  try
    Array.iteri
      (fun index raw ->
        let lineno = index + 1 in
        match words (strip_comment raw) with
        | [] -> ()
        | "node" :: rest -> directive_node st lineno rest
        | "link" :: rest -> directive_link st lineno rest
        | "duplex" :: rest -> directive_duplex st lineno rest
        | "switch" :: rest -> directive_switch st lineno rest
        | "fault" :: rest -> directive_fault st lineno rest
        | "flow" :: rest -> directive_flow st lineno rest
        | "frame" :: rest -> directive_frame st lineno rest
        | [ "end" ] -> finish_flow st lineno
        | keyword :: _ -> fail ~token:keyword lineno "unknown directive %S" keyword)
      lines;
    (match st.current with
    | Some flow -> fail flow.f_line "flow %S not closed by 'end'" flow.f_name
    | None -> ());
    match
      ( Traffic.Scenario.make ~switches:(List.rev st.switches) ~topo:st.topo
          ~flows:(List.rev st.flows) (),
        Gmf_faults.Fault.make (List.rev st.faults) )
    with
    | scenario, faults -> Ok { scenario; faults }
    | exception Invalid_argument msg ->
        Error { line = 0; column = None; source = None; message = msg }
  with Fail { line; token; message } -> Error (enrich lines ~line ~token message)

let scenario_of_string text =
  Result.map (fun r -> r.scenario) (scenario_faults_of_string text)

let scenario_faults_of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> scenario_faults_of_string text
  | exception Sys_error msg ->
      Error { line = 0; column = None; source = None; message = msg }

let scenario_of_file path =
  Result.map (fun r -> r.scenario) (scenario_faults_of_file path)

(* ------------------------------------------------------------------ *)
(* Admission traces                                                   *)
(* ------------------------------------------------------------------ *)

module Admtrace = struct
  type event =
    | Admit of Traffic.Flow.t
    | Remove of Traffic.Flow.id * string
    | Update of Traffic.Flow.t
    | Query
    | Fail_link of (Network.Node.id * Network.Node.id) * (string * string)
    | Restore_link of (Network.Node.id * Network.Node.id) * (string * string)

  type t = {
    topo : Network.Topology.t;
    switches : (Network.Node.id * Click.Switch_model.t) list;
    events : (int * event) list;
  }

  (* Same flow, different id — [update] re-uses the id of the flow it
     replaces so the session recognizes it. *)
  let reid flow id =
    Traffic.Flow.with_remarks
      (Traffic.Flow.make ~id ~name:flow.Traffic.Flow.name
         ~spec:flow.Traffic.Flow.spec ~encap:flow.Traffic.Flow.encap
         ~route:flow.Traffic.Flow.route
         ~priority:flow.Traffic.Flow.priority)
      flow.Traffic.Flow.remarks

  type pending_kind = Padmit | Pupdate of Traffic.Flow.id

  (* Streaming form of the trace parser: the same grammar, fed one
     source line at a time.  [of_string] below is a thin driver over it;
     [gmfnetd] session workers feed it directly from JSONL frames, so
     daemon traffic and batch replay share one state machine (fresh flow
     ids in admission order, the optimistic name -> id table, the
     frozen-prologue rule) by construction. *)
  module Incremental = struct
    type inc = {
      ist : state;
      (* The statically-assumed active set (name -> id): the parser
         assumes every admit succeeds; the session is authoritative at
         replay time, so an event resolved against a flow the session
         rejected simply earns a runtime rejection (GMF015) instead of a
         parse error. *)
      active : (string, Traffic.Flow.id) Hashtbl.t;
      mutable pending : pending_kind;
      mutable frozen : bool;
      mutable lineno : int;
      mutable fresh : (int * event) list;  (* completed, reversed *)
    }

    type t = inc

    let create () =
      {
        ist =
          {
            topo = Network.Topology.create ();
            names = Hashtbl.create 32;
            switches = [];
            flows = [];
            next_flow_id = 0;
            current = None;
            faults = [];
          };
        active = Hashtbl.create 16;
        pending = Padmit;
        frozen = false;
        lineno = 0;
        fresh = [];
      }

    let topology inc = inc.ist.topo
    let switches inc = List.rev inc.ist.switches
    let in_flow_block inc = inc.ist.current <> None
    let line inc = inc.lineno
    let freeze inc = inc.frozen <- true

    (* One source line; raises [Fail] on a grammar error. *)
    let feed_exn inc raw =
      inc.lineno <- inc.lineno + 1;
      let lineno = inc.lineno in
      let st = inc.ist in
      let topo_directive directive rest =
        if inc.frozen then
          fail lineno "topology directives must precede the first event";
        directive st lineno rest
      in
      let in_block () =
        if st.current <> None then fail lineno "flow block not closed by 'end'"
      in
      match words (strip_comment raw) with
      | [] -> ()
      | "node" :: rest -> topo_directive directive_node rest
      | "link" :: rest -> topo_directive directive_link rest
      | "duplex" :: rest -> topo_directive directive_duplex rest
      | "switch" :: rest -> topo_directive directive_switch rest
      | "admit" :: "flow" :: rest ->
          inc.frozen <- true;
          in_block ();
          inc.pending <- Padmit;
          directive_flow st lineno rest
      | "update" :: "flow" :: (name :: _ as rest) ->
          inc.frozen <- true;
          in_block ();
          (match Hashtbl.find_opt inc.active name with
          | None ->
              fail ~token:name lineno
                "update of a flow that is not active: %S" name
          | Some id -> inc.pending <- Pupdate id);
          directive_flow st lineno rest
      | "admit" :: _ -> fail lineno "usage: admit flow <name> ..."
      | "update" :: _ -> fail lineno "usage: update flow <name> ..."
      | "frame" :: rest -> directive_frame st lineno rest
      | [ "end" ] ->
          let start_line =
            match st.current with
            | Some flow -> flow.f_line
            | None -> lineno
          in
          finish_flow st lineno;
          let flow =
            match st.flows with
            | flow :: rest ->
                st.flows <- rest;
                flow
            | [] -> fail lineno "internal error: no finished flow"
          in
          (match inc.pending with
          | Padmit ->
              (* First admit wins the name: a duplicate admit is
                 destined for a lint rejection (GMF001), so the name
                 keeps referring to the flow already in place. *)
              if not (Hashtbl.mem inc.active flow.Traffic.Flow.name) then
                Hashtbl.replace inc.active flow.Traffic.Flow.name
                  flow.Traffic.Flow.id;
              inc.fresh <- (start_line, Admit flow) :: inc.fresh
          | Pupdate id ->
              let flow = reid flow id in
              Hashtbl.replace inc.active flow.Traffic.Flow.name id;
              inc.fresh <- (start_line, Update flow) :: inc.fresh)
      | [ "remove"; name ] ->
          inc.frozen <- true;
          in_block ();
          (match Hashtbl.find_opt inc.active name with
          | None ->
              fail ~token:name lineno
                "remove of a flow that is not active: %S" name
          | Some id ->
              Hashtbl.remove inc.active name;
              inc.fresh <- (lineno, Remove (id, name)) :: inc.fresh)
      | "remove" :: _ -> fail lineno "usage: remove <flow-name>"
      | [ "query" ] ->
          inc.frozen <- true;
          in_block ();
          inc.fresh <- (lineno, Query) :: inc.fresh
      | "query" :: _ -> fail lineno "usage: query"
      | [ ("fail" | "restore") as verb; "link"; a; b ] ->
          inc.frozen <- true;
          in_block ();
          let ia = node_id st lineno a in
          let ib = node_id st lineno b in
          (* Either direction will do: sessions fail/restore the
             duplex pair.  Whether the link is currently up or down is
             the session's business (GMF016 at replay time). *)
          if
            Network.Topology.find_link st.topo ~src:ia ~dst:ib = None
            && Network.Topology.find_link st.topo ~src:ib ~dst:ia = None
          then fail ~token:b lineno "no link between %S and %S" a b;
          let event =
            if verb = "fail" then Fail_link ((ia, ib), (a, b))
            else Restore_link ((ia, ib), (a, b))
          in
          inc.fresh <- (lineno, event) :: inc.fresh
      | ("fail" | "restore") :: _ ->
          fail lineno "usage: fail|restore link <node> <node>"
      | "flow" :: _ ->
          fail lineno
            "admission traces admit flows with 'admit flow ...', not \
             'flow ...'"
      | keyword :: _ ->
          fail ~token:keyword lineno "unknown directive %S" keyword

    let check_closed_exn inc =
      match inc.ist.current with
      | Some flow ->
          fail flow.f_line "flow %S not closed by 'end'" flow.f_name
      | None -> ()

    let drain inc =
      let events = List.rev inc.fresh in
      inc.fresh <- [];
      events

    (* [enrich] against a single raw line: errors report the global line
       number of this feed but carry the offending line itself. *)
    let enrich_one raw ~line ~token message =
      let column = Option.bind token (find_column raw) in
      { line; column; source = Some raw; message }

    let feed inc raw =
      match feed_exn inc raw with
      | () -> Ok (drain inc)
      | exception Fail { line; token; message } ->
          Error (enrich_one raw ~line ~token message)

    let feed_text inc text =
      let lines = String.split_on_char '\n' text in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | raw :: rest -> (
            match feed inc raw with
            | Ok events -> go (List.rev_append events acc) rest
            | Error _ as e -> e)
      in
      go [] lines
  end

  let of_string text =
    let inc = Incremental.create () in
    let lines = Array.of_list (String.split_on_char '\n' text) in
    try
      Array.iter (Incremental.feed_exn inc) lines;
      Incremental.check_closed_exn inc;
      Ok
        {
          topo = Incremental.topology inc;
          switches = Incremental.switches inc;
          events = Incremental.drain inc;
        }
    with Fail { line; token; message } ->
      Error (enrich lines ~line ~token message)

  let of_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> of_string text
    | exception Sys_error msg ->
        Error { line = 0; column = None; source = None; message = msg }
end
