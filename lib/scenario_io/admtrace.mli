(** Top-level alias of {!Parse.Admtrace}, so admission-trace consumers can
    write [Scenario_io.Admtrace] without knowing the parser shares its
    machinery (tokenizer, flow blocks, caret diagnostics) with the
    scenario grammar. *)

type event = Parse.Admtrace.event =
  | Admit of Traffic.Flow.t
  | Remove of Traffic.Flow.id * string
  | Update of Traffic.Flow.t
  | Query
  | Fail_link of (Network.Node.id * Network.Node.id) * (string * string)
  | Restore_link of (Network.Node.id * Network.Node.id) * (string * string)

type t = Parse.Admtrace.t = {
  topo : Network.Topology.t;
  switches : (Network.Node.id * Click.Switch_model.t) list;
  events : (int * event) list;
}

val of_string : string -> (t, Parse.error) result
val of_file : string -> (t, Parse.error) result

module Incremental = Parse.Admtrace.Incremental
(** The streaming line-at-a-time form of the same parser; see
    {!Parse.Admtrace.Incremental}. *)
