(** Parser for the plain-text scenario description language.

    Grammar (one directive per line, [#] starts a comment, blank lines
    ignored):

    {v
    node <name> endhost|switch|router
    link <src> <dst> rate=<rate> [prop=<duration>]       # directed
    duplex <a> <b> rate=<rate> [prop=<duration>]         # both directions
    switch <name> [ports=<int>] [cpus=<int>]
                  [croute=<duration>] [csend=<duration>]
    fault link <a> <b> at=<time> [until=<time>]          # duplex outage
    fault switch <name> stall <duration> at=<time>       # CPU hiccup
    flow <name> from=<node> to=<node> [route=<n1>,<n2>,...]
                [prio=<0..7>] [encap=udp|rtp]
      frame period=<duration> deadline=<duration>
            [jitter=<duration>] payload=<size>
      ... more frames ...
    end
    v}

    A [flow] block runs until [end]; it needs at least one [frame].  When
    [route] is omitted the fewest-hops path is used.  A [switch] directive
    is optional per switch node (defaults: ports = node degree, 1 CPU, the
    paper's measured task costs).

    [fault] directives describe an injectable fault schedule
    ({!Gmf_faults.Fault}) alongside the scenario: [fault link] takes both
    directions of an existing duplex pair down at [at] (back up at
    [until] when given, which must lie after [at]); [fault switch] pauses
    the named switch's task rotation for [stall] starting at [at].  Nodes
    and links must be declared before a [fault] names them.  Only
    simulation consumes the schedule ([gmfnet simulate], via
    {!scenario_faults_of_file}); the analysis entry points parse and
    discard it — static what-if analysis enumerates failures itself
    ([gmfnet survive]). *)

type error = {
  line : int;  (** 1-based; 0 for whole-file problems. *)
  column : int option;
      (** 1-based position of the offending token on [source], when the
          failing site could name one. *)
  source : string option;  (** The offending source line, verbatim. *)
  message : string;
}

val scenario_of_string : string -> (Traffic.Scenario.t, error) result

val scenario_of_file : string -> (Traffic.Scenario.t, error) result
(** Reads the file; an unreadable file reports on line 0. *)

type with_faults = {
  scenario : Traffic.Scenario.t;
  faults : Gmf_faults.Fault.schedule;
      (** The [fault] directives, in file order, with the default [Hold]
          policy; {!Gmf_faults.Fault.empty}-equivalent when the file has
          none. *)
}

val scenario_faults_of_string : string -> (with_faults, error) result

val scenario_faults_of_file : string -> (with_faults, error) result
(** Like {!scenario_of_file}, additionally returning the fault schedule
    the [fault] directives describe. *)

val pp_error : Format.formatter -> error -> unit
(** Compiler-style rendering: the position and message on the first
    line, then (when known) the source line and a caret under the
    offending column:
    {v
    line 2, column 11: unknown node kind "endhostX"
      node a endhostX
               ^
    v} *)

(** Parser for [.admtrace] admission-event traces — the replay input of
    [Gmf_admctl] sessions.

    A trace is a {e topology prologue} (the [node]/[link]/[duplex]/[switch]
    directives of the scenario grammar, no [flow] blocks) followed by a
    sequence of events:

    {v
    admit flow <name> from=.. to=.. [route=..] [prio=..] [encap=..]
      frame period=.. deadline=.. [jitter=..] payload=..
      ...
    end
    remove <name>
    update flow <name> ...   # flow block, closed by 'end'
    query
    fail link <a> <b>
    restore link <a> <b>
    v}

    [admit flow] blocks use the exact [flow] grammar of scenario files and
    receive a fresh flow id in admission order.  [remove]/[update] name a
    flow the parser statically assumes active (admitted earlier, not yet
    removed); [update] keeps the id of the flow it replaces.  Topology
    directives after the first event, and [remove]/[update] of a name that
    was never admitted, are parse errors with the same caret rendering as
    scenario files.  [fail link]/[restore link] name two adjacent nodes of
    the prologue topology (either direction of a duplex pair); the session
    degrades or recovers the flows routed over the pair, see
    [Gmf_admctl.Session].  The parser is optimistic — whether an admit
    actually succeeded is only known at replay time, so a [remove] of a
    flow the session rejected parses fine and earns a runtime rejection
    instead; likewise failing an already-failed link is a runtime
    rejection (GMF016), not a parse error. *)
module Admtrace : sig
  type event =
    | Admit of Traffic.Flow.t
    | Remove of Traffic.Flow.id * string
        (** Resolved id plus the trace-level name, for rendering. *)
    | Update of Traffic.Flow.t
    | Query
    | Fail_link of (Network.Node.id * Network.Node.id) * (string * string)
        (** The resolved node pair plus the trace-level names, for
            rendering.  The session takes {e both} directions of the pair
            down. *)
    | Restore_link of (Network.Node.id * Network.Node.id) * (string * string)

  type t = {
    topo : Network.Topology.t;
    switches : (Network.Node.id * Click.Switch_model.t) list;
    events : (int * event) list;
        (** In trace order, each with the 1-based line of the directive
            (for a flow block: of its [admit]/[update] line). *)
  }

  val of_string : string -> (t, error) result

  val of_file : string -> (t, error) result
  (** Reads the file; an unreadable file reports on line 0. *)

  (** Streaming form of the same parser, fed one source line at a time —
      the state machine behind {!of_string}, exported for [gmfnetd]
      session workers that receive trace text incrementally over JSONL.
      Sharing it guarantees daemon traffic resolves names, assigns flow
      ids and enforces the frozen-prologue rule byte-identically to
      batch replay. *)
  module Incremental : sig
    type t

    val create : unit -> t

    val feed : t -> string -> ((int * event) list, error) result
    (** Feed one source line (without its newline).  Returns the events
        this line completed — usually none or one; the [end] of a flow
        block completes its [admit]/[update].  Errors carry the global
        (1-based) line number of the feed and the offending line as
        [source].  After an error the parser state is unspecified;
        callers should discard it. *)

    val feed_text : t -> string -> ((int * event) list, error) result
    (** Split on newlines and {!feed} each line; the concatenated fresh
        events, or the first error. *)

    val topology : t -> Network.Topology.t
    (** The prologue topology accumulated so far.  Shared, not copied:
        it keeps growing while prologue lines are fed. *)

    val switches : t -> (Network.Node.id * Click.Switch_model.t) list

    val in_flow_block : t -> bool
    (** Whether a [flow] block is open (an [end] is still owed) — a
        message boundary falling inside a block is a framing error for
        protocol callers. *)

    val line : t -> int
    (** Global 1-based number of the last line fed; 0 initially. *)

    val freeze : t -> unit
    (** End the topology prologue now, as if an event had already been
        fed: subsequent [node]/[link]/[duplex]/[switch] directives are
        rejected — and rejected {e before} touching the topology or
        name tables, unlike an unfrozen parser which mutates first and
        only errors on a later line.  [gmfnetd] workers freeze right
        after the prologue so a stray topology directive inside an
        event request is a provably state-preserving parse error. *)
  end
end
