(** Parser for the plain-text scenario description language.

    Grammar (one directive per line, [#] starts a comment, blank lines
    ignored):

    {v
    node <name> endhost|switch|router
    link <src> <dst> rate=<rate> [prop=<duration>]       # directed
    duplex <a> <b> rate=<rate> [prop=<duration>]         # both directions
    switch <name> [ports=<int>] [cpus=<int>]
                  [croute=<duration>] [csend=<duration>]
    flow <name> from=<node> to=<node> [route=<n1>,<n2>,...]
                [prio=<0..7>] [encap=udp|rtp]
      frame period=<duration> deadline=<duration>
            [jitter=<duration>] payload=<size>
      ... more frames ...
    end
    v}

    A [flow] block runs until [end]; it needs at least one [frame].  When
    [route] is omitted the fewest-hops path is used.  A [switch] directive
    is optional per switch node (defaults: ports = node degree, 1 CPU, the
    paper's measured task costs). *)

type error = {
  line : int;  (** 1-based; 0 for whole-file problems. *)
  column : int option;
      (** 1-based position of the offending token on [source], when the
          failing site could name one. *)
  source : string option;  (** The offending source line, verbatim. *)
  message : string;
}

val scenario_of_string : string -> (Traffic.Scenario.t, error) result

val scenario_of_file : string -> (Traffic.Scenario.t, error) result
(** Reads the file; an unreadable file reports on line 0. *)

val pp_error : Format.formatter -> error -> unit
(** Compiler-style rendering: the position and message on the first
    line, then (when known) the source line and a caret under the
    offending column:
    {v
    line 2, column 11: unknown node kind "endhostX"
      node a endhostX
               ^
    v} *)
