let convert_spec spec =
  let frames = Gmf.Spec.frames spec in
  let positive_periods =
    Array.to_list frames
    |> List.filter_map (fun (f : Gmf.Frame_spec.t) ->
           if f.period > 0 then Some f.period else None)
  in
  let period =
    match positive_periods with
    | [] -> invalid_arg "Sporadic.convert_spec: no positive period"
    | p :: rest -> List.fold_left min p rest
  in
  let fold f init = Array.fold_left f init frames in
  let payload =
    fold (fun acc (fr : Gmf.Frame_spec.t) -> max acc fr.payload_bits) 0
  in
  let deadline = Gmf.Spec.min_deadline spec in
  let jitter = Gmf.Spec.max_jitter spec in
  Gmf.Spec.make
    [ Gmf.Frame_spec.make ~period ~deadline ~jitter ~payload_bits:payload ]

let convert_flow flow =
  Traffic.Flow.with_remarks
    (Traffic.Flow.make ~id:flow.Traffic.Flow.id ~name:flow.Traffic.Flow.name
       ~spec:(convert_spec flow.Traffic.Flow.spec)
       ~encap:flow.Traffic.Flow.encap ~route:flow.Traffic.Flow.route
       ~priority:flow.Traffic.Flow.priority)
    flow.Traffic.Flow.remarks

let switch_models scenario =
  Traffic.Scenario.switch_nodes scenario
  |> List.map (fun n -> (n, Traffic.Scenario.switch_model scenario n))

let convert_scenario scenario =
  Traffic.Scenario.make
    ~switches:(switch_models scenario)
    ~topo:(Traffic.Scenario.topo scenario)
    ~flows:(List.map convert_flow (Traffic.Scenario.flows scenario))
    ()

let analyze ?config scenario =
  Analysis.Holistic.analyze ?config (convert_scenario scenario)

let check ?config scenario =
  let report = analyze ?config scenario in
  { Analysis.Admission.admitted = Analysis.Holistic.is_schedulable report;
    report; diagnostics = [] }

let admit_greedily ?config ~topo ~switches candidates =
  let decide flows =
    let scenario =
      Traffic.Scenario.make ~switches ~topo
        ~flows:(List.map convert_flow flows)
        ()
    in
    Analysis.Holistic.is_schedulable (Analysis.Holistic.analyze ?config scenario)
  in
  let rec go accepted rejected = function
    | [] -> (List.rev accepted, List.rev rejected)
    | candidate :: rest ->
        if decide (List.rev (candidate :: accepted)) then
          go (candidate :: accepted) rejected rest
        else go accepted (candidate :: rejected) rest
  in
  go [] [] candidates
