let stride1 = 1 lsl 20

type task_id = int

type task = {
  tickets : int;
  stride : int;
  mutable pass : int;
  mutable runs : int;
}

type t = { mutable tasks : task array; mutable count : int }

let create () = { tasks = [||]; count = 0 }

let add_task t ~tickets =
  if tickets <= 0 then invalid_arg "Scheduler.add_task: non-positive tickets";
  if tickets > stride1 then invalid_arg "Scheduler.add_task: tickets too large";
  let stride = stride1 / tickets in
  let task = { tickets; stride; pass = stride; runs = 0 } in
  let cap = Array.length t.tasks in
  if t.count = cap then begin
    let grown = Array.make (max 8 (2 * cap)) task in
    Array.blit t.tasks 0 grown 0 cap;
    t.tasks <- grown
  end;
  t.tasks.(t.count) <- task;
  t.count <- t.count + 1;
  t.count - 1

let task_count t = t.count

let check t id name =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "%s: unknown task %d" name id)

let tickets t id =
  check t id "Scheduler.tickets";
  t.tasks.(id).tickets

let stride_of t id =
  check t id "Scheduler.stride_of";
  t.tasks.(id).stride

let pass_of t id =
  check t id "Scheduler.pass_of";
  t.tasks.(id).pass

(* One process-wide dispatch counter across every scheduler instance: the
   simulator's switches each own a scheduler, and the interesting figure is
   total task dispatches per run. *)
let m_dispatches =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "stride.dispatches"

let least_pass t =
  if t.count = 0 then invalid_arg "Scheduler.select: no tasks";
  let best = ref 0 in
  for i = 1 to t.count - 1 do
    if t.tasks.(i).pass < t.tasks.(!best).pass then best := i
  done;
  !best

let peek t = least_pass t

let select t =
  let id = least_pass t in
  let task = t.tasks.(id) in
  task.pass <- task.pass + task.stride;
  task.runs <- task.runs + 1;
  Gmf_obs.Metrics.incr m_dispatches;
  id

let run_count t id =
  check t id "Scheduler.run_count";
  t.tasks.(id).runs

let reset t =
  for i = 0 to t.count - 1 do
    let task = t.tasks.(i) in
    task.pass <- task.stride;
    task.runs <- 0
  done

let round_robin ~ntasks =
  if ntasks <= 0 then invalid_arg "Scheduler.round_robin: no tasks";
  let t = create () in
  for _ = 1 to ntasks do
    ignore (add_task t ~tickets:1)
  done;
  t
