type component =
  | Link of Network.Node.id * Network.Node.id
  | Switch of Network.Node.id

type fate = Unaffected | Rerouted of Network.Route.t | Shed

type delta = {
  d_closure : int;
  d_skipped : int;
  d_saved : int;
  d_fallbacks : int;
  d_warm : int;
}

type case_result = {
  case : component list;
  fates : (Traffic.Flow.t * fate) list;
  verdict : Analysis.Holistic.verdict;
  rounds : int;
  delta : delta option;
}

type flow_verdict = Survives | Survives_with_reroute | Must_shed

type report = {
  k : int;
  base : Analysis.Holistic.report;
  cases : case_result list;
  matrix : (Traffic.Flow.t * flow_verdict) list;
  shed_set : Traffic.Flow.t list;
  delta_totals : delta option;
}

let m_cases = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "survive.cases"

let m_rerouted =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "faults.flows_rerouted"

let m_shed =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "faults.flows_shed"

let components scenario =
  let topo = Traffic.Scenario.topo scenario in
  let seen = Hashtbl.create 16 in
  let links =
    List.filter_map
      (fun (l : Network.Link.t) ->
        let a = min l.Network.Link.src l.Network.Link.dst
        and b = max l.Network.Link.src l.Network.Link.dst in
        if Hashtbl.mem seen (a, b) then None
        else begin
          Hashtbl.replace seen (a, b) ();
          Some (Link (a, b))
        end)
      (Network.Topology.links topo)
  in
  let switches =
    List.filter_map
      (fun (n : Network.Node.t) ->
        if Network.Node.is_switch n then Some (Switch n.Network.Node.id)
        else None)
      (Network.Topology.nodes topo)
  in
  links @ switches

let component_name scenario component =
  let topo = Traffic.Scenario.topo scenario in
  let name id = (Network.Topology.node topo id).Network.Node.name in
  match component with
  | Link (a, b) -> Printf.sprintf "link %s<->%s" (name a) (name b)
  | Switch n -> Printf.sprintf "switch %s" (name n)

let verdict_string = function
  | Analysis.Holistic.Schedulable -> "schedulable"
  | Analysis.Holistic.Deadline_miss _ -> "deadline-miss"
  | Analysis.Holistic.Analysis_failed _ -> "analysis-failed"
  | Analysis.Holistic.No_fixed_point _ -> "no-fixed-point"

(* All subsets of [comps] of size 1..k, smallest size first.  Within a
   size class the subsets walk in revolving-door Gray order: consecutive
   cases differ by swapping exactly one component in and one out, so
   adjacent failure cases share most of their degraded flow set and the
   delta engine's closures (and the shared case memo behind it) stay
   small along the walk.  Each subset lists its components in [comps]
   order, and the size-1 class is exactly [comps] — the k=1 case order
   (and its golden) is unchanged from the naive enumeration. *)
let failure_cases ~k comps =
  let arr = Array.of_list comps in
  let n = Array.length arr in
  (* Revolving-door: R(n,t) = R(n-1,t) ++ reverse(R(n-1,t-1)) * {n-1}.
     The last of R(n-1,t) and the first of the reversed block differ by
     one swap, as do neighbours inside each block (induction). *)
  let rec revolving n t =
    if t = 0 then [ [] ]
    else if t > n then []
    else if t = n then [ List.init n Fun.id ]
    else
      revolving (n - 1) t
      @ List.map
          (fun c -> c @ [ n - 1 ])
          (List.rev (revolving (n - 1) (t - 1)))
  in
  List.concat_map
    (fun size ->
      List.map (List.map (Array.get arr)) (revolving n (size + 1)))
    (List.init k Fun.id)

(* The directed links and nodes a failure case takes out. *)
let failed_parts topo case =
  let incident n =
    List.filter_map
      (fun (l : Network.Link.t) ->
        if l.Network.Link.src = n || l.Network.Link.dst = n then
          Some (l.Network.Link.src, l.Network.Link.dst)
        else None)
      (Network.Topology.links topo)
  in
  List.fold_left
    (fun (links, nodes) -> function
      | Link (a, b) -> ((a, b) :: (b, a) :: links, nodes)
      | Switch n -> (incident n @ links, n :: nodes))
    ([], []) case

let route_hit route ~avoid_links ~avoid_nodes =
  List.exists (fun hop -> List.mem hop avoid_links) (Network.Route.hops route)
  || List.exists (fun n -> Network.Route.mem route n) avoid_nodes

(* Lowest 802.1p priority first; ties shed the most recently admitted
   (highest id) flow first.  The comparator is total (flow ids are
   unique), and [stable_sort] pins the permutation even if that ever
   stops holding — the delta walk and a cold enumeration may present
   survivors in different arrangements, and both must pick identical
   victims.  Shared with Gmf_admctl's degraded mode. *)
let shed_order flows =
  List.stable_sort
    (fun (a : Traffic.Flow.t) (b : Traffic.Flow.t) ->
      match compare a.Traffic.Flow.priority b.Traffic.Flow.priority with
      | 0 -> compare b.Traffic.Flow.id a.Traffic.Flow.id
      | c -> c)
    flows

let switch_models scenario =
  Traffic.Scenario.switch_nodes scenario
  |> List.map (fun n -> (n, Traffic.Scenario.switch_model scenario n))

(* Pure per-case evaluation: no counter bumps here — under a [Pool]
   executor this runs in a worker process whose registry increments are
   lost, so [run] derives the counters from the collected results. *)
let analyze_case ~config ~max_routes scenario case =
  Gmf_obs.Tracer.with_span Gmf_obs.Tracer.default ~cat:"faults" "survive.case"
    (fun () ->
      let topo = Traffic.Scenario.topo scenario in
      let switches = switch_models scenario in
      let avoid_links, avoid_nodes = failed_parts topo case in
      let flows = Traffic.Scenario.flows scenario in
      (* One route cache per case: flows sharing endpoints under the same
         failure resolve to one enumeration. *)
      let pcache = Network.Pathfind.Cache.create topo in
      (* Phase 1: reroute every flow the failure touches, or shed it when
         no alternate route survives the failure. *)
      let placed =
        List.map
          (fun (f : Traffic.Flow.t) ->
            let route = f.Traffic.Flow.route in
            if not (route_hit route ~avoid_links ~avoid_nodes) then
              (f, Unaffected, Some f)
            else
              let candidates =
                Network.Pathfind.Cache.k_shortest ~k:max_routes ~avoid_links
                  ~avoid_nodes pcache
                  ~src:(Network.Route.source route)
                  ~dst:(Network.Route.destination route)
              in
              match candidates with
              | [] -> (f, Shed, None)
              | alt :: _ ->
                  let moved = Analysis.Rerouting.with_route f alt in
                  (f, Rerouted alt, Some moved))
          flows
      in
      (* Phase 2: greedy shedding until the degraded set is schedulable.
         A lint error (e.g. a rerouted flow saturating a link, GMF201)
         sheds without spending fixpoint rounds. *)
      let rec settle survivors shed rounds =
        let scenario' =
          Traffic.Scenario.make ~switches ~topo ~flows:survivors ()
        in
        let lint_errors =
          Gmf_lint.Lint.errors (Gmf_lint.Lint.run ~config scenario')
        in
        let report, rounds =
          if lint_errors <> [] then
            ( {
                Analysis.Holistic.verdict =
                  Analysis.Holistic.Analysis_failed
                    (List.map Analysis.Admission.failure_of_diag lint_errors);
                rounds = 0;
                results = [];
              },
              rounds )
          else
            (* Precheck-guided and per-component, through the shared case
               memo: two failure cases that shed down to the same remainder
               set — or merely share an untouched interference component —
               reuse the earlier fixpoints, and statically decided flows
               never enter one. *)
            let r, _pre, _stats = Analysis.Sharded.analyze ~config scenario' in
            (r, rounds + r.Analysis.Holistic.rounds)
        in
        if Analysis.Holistic.is_schedulable report then (report, shed, rounds)
        else
          match shed_order survivors with
          | [] -> (report, shed, rounds)
          | victim :: _ ->
              settle
                (List.filter
                   (fun (f : Traffic.Flow.t) ->
                     f.Traffic.Flow.id <> victim.Traffic.Flow.id)
                   survivors)
                (victim.Traffic.Flow.id :: shed)
                rounds
      in
      let survivors = List.filter_map (fun (_, _, s) -> s) placed in
      let report, shed_ids, rounds = settle survivors [] 0 in
      let fates =
        List.map
          (fun ((f : Traffic.Flow.t), fate, _) ->
            if List.mem f.Traffic.Flow.id shed_ids then (f, Shed)
            else (f, fate))
          placed
      in
      {
        case;
        fates;
        verdict = report.Analysis.Holistic.verdict;
        rounds;
        delta = None;
      })

(* Delta twin of [analyze_case]: same reroute phase and greedy shed
   loop, but every settle attempt re-analyzes only the interference
   closure of the case's edit against the shared fault-free base
   ({!Analysis.Delta.analyze}, lint gate included).  Per-attempt delta
   stats are summed into the case result — under a [Pool] executor the
   worker's registry increments are lost, so the embedded copy is the
   one the report (and its JSON) aggregates deterministically. *)
let analyze_case_delta ~config:_ ~max_routes dbase scenario case =
  Gmf_obs.Tracer.with_span Gmf_obs.Tracer.default ~cat:"faults" "survive.case"
    (fun () ->
      let topo = Traffic.Scenario.topo scenario in
      let switches = switch_models scenario in
      let avoid_links, avoid_nodes = failed_parts topo case in
      let flows = Traffic.Scenario.flows scenario in
      let pcache = Network.Pathfind.Cache.create topo in
      let placed =
        List.map
          (fun (f : Traffic.Flow.t) ->
            let route = f.Traffic.Flow.route in
            if not (route_hit route ~avoid_links ~avoid_nodes) then
              (f, Unaffected, Some f)
            else
              let candidates =
                Network.Pathfind.Cache.k_shortest ~k:max_routes ~avoid_links
                  ~avoid_nodes pcache
                  ~src:(Network.Route.source route)
                  ~dst:(Network.Route.destination route)
              in
              match candidates with
              | [] -> (f, Shed, None)
              | alt :: _ ->
                  let moved = Analysis.Rerouting.with_route f alt in
                  (f, Rerouted alt, Some moved))
          flows
      in
      let acc =
        ref { d_closure = 0; d_skipped = 0; d_saved = 0; d_fallbacks = 0;
              d_warm = 0 }
      in
      let rec settle survivors shed rounds =
        let scenario' =
          Traffic.Scenario.make ~switches ~topo ~flows:survivors ()
        in
        let d =
          Analysis.Delta.analyze ~lint:true ~precheck:true dbase scenario'
        in
        let s = d.Analysis.Delta.d_stats in
        acc :=
          {
            d_closure = !acc.d_closure + s.Analysis.Delta.closure_flows;
            d_skipped = !acc.d_skipped + s.Analysis.Delta.skipped_flows;
            d_saved = !acc.d_saved + s.Analysis.Delta.rounds_saved;
            d_fallbacks =
              (!acc.d_fallbacks
              + if s.Analysis.Delta.cold_fallback then 1 else 0);
            d_warm =
              (!acc.d_warm + if s.Analysis.Delta.warm_seeded then 1 else 0);
          };
        let report = d.Analysis.Delta.d_report in
        let rounds = rounds + report.Analysis.Holistic.rounds in
        if Analysis.Holistic.is_schedulable report then (report, shed, rounds)
        else
          match shed_order survivors with
          | [] -> (report, shed, rounds)
          | victim :: _ ->
              settle
                (List.filter
                   (fun (f : Traffic.Flow.t) ->
                     f.Traffic.Flow.id <> victim.Traffic.Flow.id)
                   survivors)
                (victim.Traffic.Flow.id :: shed)
                rounds
      in
      let survivors = List.filter_map (fun (_, _, s) -> s) placed in
      let report, shed_ids, rounds = settle survivors [] 0 in
      let fates =
        List.map
          (fun ((f : Traffic.Flow.t), fate, _) ->
            if List.mem f.Traffic.Flow.id shed_ids then (f, Shed)
            else (f, fate))
          placed
      in
      {
        case;
        fates;
        verdict = report.Analysis.Holistic.verdict;
        rounds;
        delta = Some !acc;
      })

(* A case the exec layer failed to evaluate (timeout, worker crash) is
   reported conservatively: analysis-failed verdict, every flow shed. *)
let failed_case_result scenario err case =
  {
    case;
    fates =
      List.map
        (fun (f : Traffic.Flow.t) -> (f, Shed))
        (Traffic.Scenario.flows scenario);
    verdict =
      Analysis.Holistic.Analysis_failed
        [
          {
            Analysis.Result_types.flow_id = -1;
            frame = 0;
            failed_stage = None;
            reason = "exec: " ^ Gmf_exec.error_to_string err;
          };
        ];
    rounds = 0;
    delta = None;
  }

(* Case results memoized across runs: repeated sweeps over the same
   scenario (bench comparisons, per-candidate admission gates that share
   failure cases) reuse whole case evaluations.  The key pins everything
   a result depends on: the engine (delta and cold report different
   rounds), the base scenario + config ({!Analysis.Case.digest}), the
   route budget, and the failed components. *)
let case_memo : case_result Gmf_exec.Memo.t = Gmf_exec.Memo.create ()

let clear_memo () = Gmf_exec.Memo.clear case_memo

let case_key ~engine ~base_digest ~max_routes case =
  let comp = function
    | Link (a, b) -> Printf.sprintf "L%d-%d" a b
    | Switch n -> Printf.sprintf "S%d" n
  in
  Printf.sprintf "survive|%s|%s|%d|%s" engine base_digest max_routes
    (String.concat "+" (List.map comp case))

let delta_zero =
  { d_closure = 0; d_skipped = 0; d_saved = 0; d_fallbacks = 0; d_warm = 0 }

let delta_add a b =
  {
    d_closure = a.d_closure + b.d_closure;
    d_skipped = a.d_skipped + b.d_skipped;
    d_saved = a.d_saved + b.d_saved;
    d_fallbacks = a.d_fallbacks + b.d_fallbacks;
    d_warm = a.d_warm + b.d_warm;
  }

let run ?exec ?(config = Analysis.Config.default) ?(k = 1) ?(max_routes = 4)
    ?(delta = true) ?domain scenario =
  if k < 0 then invalid_arg "Survive.run: k < 0";
  (* One base fixpoint shared by every case of the sweep.  A base the
     delta engine cannot certify against (non-converged) demotes the
     whole sweep to the cold engine rather than falling back per case. *)
  let dbase =
    if delta then
      let b = Analysis.Delta.compute_base ~config scenario in
      if Analysis.Delta.base_ok b then Some b else None
    else None
  in
  let base =
    match dbase with
    | Some b -> Analysis.Delta.base_report b
    | None -> Analysis.Case.analyze ~config scenario
  in
  let comps = match domain with Some d -> d | None -> components scenario in
  let case_list = failure_cases ~k comps in
  Gmf_obs.Metrics.incr ~by:(List.length case_list) m_cases;
  let engine = match dbase with Some _ -> "delta" | None -> "cold" in
  let base_digest = Analysis.Case.digest ~config scenario in
  let f =
    match dbase with
    | Some b -> analyze_case_delta ~config ~max_routes b scenario
    | None -> analyze_case ~config ~max_routes scenario
  in
  (* A memo hit may come from an earlier run on a byte-identical but
     physically distinct scenario value; rebind its fates to this run's
     flow records so [fates] stays keyed by the scenario's own flows
     (callers use physical equality against [Scenario.flows]). *)
  let flow_by_id = Hashtbl.create 64 in
  List.iter
    (fun (f : Traffic.Flow.t) -> Hashtbl.replace flow_by_id f.Traffic.Flow.id f)
    (Traffic.Scenario.flows scenario);
  let rebind c =
    {
      c with
      fates =
        List.map
          (fun ((f : Traffic.Flow.t), fate) ->
            match Hashtbl.find_opt flow_by_id f.Traffic.Flow.id with
            | Some f' -> (f', fate)
            | None -> (f, fate))
          c.fates;
    }
  in
  let cases =
    Gmf_exec.map_cases ?exec ~memo:case_memo
      ~key:(case_key ~engine ~base_digest ~max_routes)
      ~f case_list
    |> List.map2
         (fun case -> function
           | Ok r -> rebind r
           | Error e -> failed_case_result scenario e case)
         case_list
  in
  (* Counters derived from the collected fates: correct under both
     backends (worker-side increments never reach this process). *)
  List.iter
    (fun c ->
      List.iter
        (fun (_, fate) ->
          match fate with
          | Rerouted _ -> Gmf_obs.Metrics.incr m_rerouted
          | Shed -> Gmf_obs.Metrics.incr m_shed
          | Unaffected -> ())
        c.fates)
    cases;
  let verdict_of (f : Traffic.Flow.t) =
    let fate_in case_result =
      List.assoc_opt f.Traffic.Flow.id
        (List.map
           (fun ((g : Traffic.Flow.t), fate) -> (g.Traffic.Flow.id, fate))
           case_result.fates)
    in
    let fates = List.filter_map fate_in cases in
    if List.exists (fun fate -> fate = Shed) fates then Must_shed
    else if
      List.exists (function Rerouted _ -> true | _ -> false) fates
    then Survives_with_reroute
    else Survives
  in
  let matrix =
    List.map (fun f -> (f, verdict_of f)) (Traffic.Scenario.flows scenario)
  in
  let shed_set =
    List.filter_map
      (fun (f, v) -> if v = Must_shed then Some f else None)
      matrix
  in
  let delta_totals =
    match dbase with
    | None -> None
    | Some _ ->
        Some
          (List.fold_left
             (fun acc c ->
               match c.delta with Some d -> delta_add acc d | None -> acc)
             delta_zero cases)
  in
  { k; base; cases; matrix; shed_set; delta_totals }

(* ------------------------------------------------------------------ *)
(* Survivable-admission gate                                           *)
(* ------------------------------------------------------------------ *)

let admission_gate ?exec ?config ?(k = 1) ?max_routes
    ~(candidate : Traffic.Flow.t) scenario =
  let report = run ?exec ?config ~k ?max_routes scenario in
  let verdict =
    List.find_map
      (fun ((f : Traffic.Flow.t), v) ->
        if f.Traffic.Flow.id = candidate.Traffic.Flow.id then Some v
        else None)
      report.matrix
  in
  match verdict with
  | Some Must_shed ->
      let shed_cases =
        List.filter
          (fun c ->
            List.exists
              (fun ((f : Traffic.Flow.t), fate) ->
                f.Traffic.Flow.id = candidate.Traffic.Flow.id && fate = Shed)
              c.fates)
          report.cases
      in
      let witness =
        match shed_cases with
        | c :: _ ->
            String.concat " + " (List.map (component_name scenario) c.case)
        | [] -> "unknown case"
      in
      [
        Gmf_diag.error ~code:"GMF017"
          ~subject:
            (Gmf_diag.Flow
               {
                 id = candidate.Traffic.Flow.id;
                 name = candidate.Traffic.Flow.name;
               })
          ~suggestion:
            "add an alternate route (extra link) for the flow, raise its \
             priority, or admit without the survivability gate"
          "flow %S is shed in %d of %d <=%d-failure case(s) (first: %s)"
          candidate.Traffic.Flow.name (List.length shed_cases)
          (List.length report.cases) k witness;
      ]
  | Some Survives | Some Survives_with_reroute | None -> []

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let fate_string = function
  | Unaffected -> "unaffected"
  | Rerouted _ -> "rerouted"
  | Shed -> "shed"

let flow_verdict_string = function
  | Survives -> "survives"
  | Survives_with_reroute -> "survives-with-reroute"
  | Must_shed -> "must-shed"

let case_name scenario case =
  String.concat " + " (List.map (component_name scenario) case)

let pp_report scenario fmt r =
  let count pred fates = List.length (List.filter (fun (_, f) -> pred f) fates) in
  Format.fprintf fmt "baseline: %s (%d rounds), %d flows, k=%d, %d cases@\n"
    (verdict_string r.base.Analysis.Holistic.verdict)
    r.base.Analysis.Holistic.rounds
    (List.length (Traffic.Scenario.flows scenario))
    r.k (List.length r.cases);
  (match r.delta_totals with
  | None -> ()
  | Some d ->
      Format.fprintf fmt
        "delta: closure=%d skipped=%d rounds-saved=%d warm=%d fallbacks=%d@\n"
        d.d_closure d.d_skipped d.d_saved d.d_warm d.d_fallbacks);
  List.iter
    (fun c ->
      Format.fprintf fmt "  %-28s %-15s rounds=%-3d rerouted=%d shed=%d@\n"
        (case_name scenario c.case) (verdict_string c.verdict) c.rounds
        (count (function Rerouted _ -> true | _ -> false) c.fates)
        (count (fun f -> f = Shed) c.fates))
    r.cases;
  Format.fprintf fmt "per-flow verdicts:@\n";
  List.iter
    (fun ((f : Traffic.Flow.t), v) ->
      Format.fprintf fmt "  %-12s %s@\n" f.Traffic.Flow.name
        (flow_verdict_string v))
    r.matrix;
  match r.shed_set with
  | [] -> Format.fprintf fmt "shed set: (empty)@\n"
  | shed ->
      Format.fprintf fmt "shed set: %s@\n"
        (String.concat ", "
           (List.map
              (fun (f : Traffic.Flow.t) ->
                Printf.sprintf "%s (prio %d)" f.Traffic.Flow.name
                  f.Traffic.Flow.priority)
              shed))

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json scenario r =
  let buf = Buffer.create 1024 in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"k\": %d,\n" r.k);
  add
    (Printf.sprintf "  \"base\": %s,\n"
       (str (verdict_string r.base.Analysis.Holistic.verdict)));
  (match r.delta_totals with
  | None -> add "  \"delta\": null,\n"
  | Some d ->
      add
        (Printf.sprintf
           "  \"delta\": {\"closure_flows\": %d, \"flows_skipped\": %d, \
            \"rounds_saved\": %d, \"warm_seeded\": %d, \"cold_fallbacks\": \
            %d},\n"
           d.d_closure d.d_skipped d.d_saved d.d_warm d.d_fallbacks));
  add "  \"cases\": [\n";
  let case_json c =
    let fate_json ((f : Traffic.Flow.t), fate) =
      let route_field =
        match fate with
        | Rerouted route ->
            Printf.sprintf ", \"route\": %s"
              (str (Format.asprintf "%a" Network.Route.pp route))
        | Unaffected | Shed -> ""
      in
      Printf.sprintf "{\"flow\": %s, \"fate\": %s%s}"
        (str f.Traffic.Flow.name)
        (str (fate_string fate))
        route_field
    in
    Printf.sprintf
      "    {\"failed\": [%s], \"verdict\": %s, \"rounds\": %d,\n\
      \     \"flows\": [%s]}"
      (String.concat ", "
         (List.map (fun comp -> str (component_name scenario comp)) c.case))
      (str (verdict_string c.verdict))
      c.rounds
      (String.concat ", " (List.map fate_json c.fates))
  in
  add (String.concat ",\n" (List.map case_json r.cases));
  add "\n  ],\n";
  add "  \"matrix\": [\n";
  add
    (String.concat ",\n"
       (List.map
          (fun ((f : Traffic.Flow.t), v) ->
            Printf.sprintf "    {\"flow\": %s, \"verdict\": %s}"
              (str f.Traffic.Flow.name)
              (str (flow_verdict_string v)))
          r.matrix));
  add "\n  ],\n";
  add
    (Printf.sprintf "  \"shed\": [%s]\n"
       (String.concat ", "
          (List.map
             (fun (f : Traffic.Flow.t) -> str f.Traffic.Flow.name)
             r.shed_set)));
  add "}\n";
  Buffer.contents buf
