(** Declarative fault model for software-switched networks.

    The paper's analysis assumes the topology it admitted against stays
    up; this module names the ways it does not.  A {!schedule} is a plain
    value consumed by three independent clients:

    - {!Sim.Netsim} injects it into a simulation run (downed links stop
      transmitting, stalled switches pause their stride rotation, frames
      are lost at random),
    - {!Survive} enumerates failure cases statically and re-analyzes each,
    - [Gmf_admctl] sessions replay [fail link]/[restore link] trace
      events.

    Links are identified by their directed [(src, dst)] node pair — the
    key {!Network.Topology} itself uses; {!duplex_down}/{!duplex_up} cover
    the common both-directions case. *)

type link_id = Network.Node.id * Network.Node.id
(** A directed link, as (source node, destination node). *)

type event =
  | Link_down of link_id * Gmf_util.Timeunit.ns
      (** The link stops transmitting at the given time. *)
  | Link_up of link_id * Gmf_util.Timeunit.ns
      (** The link resumes.  Without a matching [Link_up], a downed link
          stays down for the rest of the run. *)
  | Switch_stall of Network.Node.id * Gmf_util.Timeunit.ns * Gmf_util.Timeunit.ns
      (** [Switch_stall (node, at, duration)]: every processor of the
          switch pauses its CIRC(N) task rotation during
          [\[at, at + duration)] — added stride-service latency, e.g. a
          management-plane hiccup on the software switch's CPU. *)
  | Frame_loss of float
      (** Each delivered Ethernet frame is dropped independently with
          this probability, for the whole run.  Several [Frame_loss]
          events combine by taking the maximum. *)

type policy =
  | Hold  (** Frames queued behind a downed link wait for [Link_up]. *)
  | Drop  (** Frames queued behind (or arriving at) a downed link are
              discarded and counted as fault drops. *)

type schedule = {
  events : event list;
  policy : policy;  (** What happens to frames caught behind a downed
                        link. *)
}

val empty : schedule
(** No events, [Hold] policy — simulating with [empty] is exactly the
    fault-free run. *)

val is_empty : schedule -> bool

val make : ?policy:policy -> event list -> schedule
(** [make events] is a schedule with the given events ([Hold] policy by
    default).  Raises [Invalid_argument] on a negative time or duration,
    or a frame-loss probability outside [\[0, 1\]]. *)

val duplex_down : a:Network.Node.id -> b:Network.Node.id -> at:Gmf_util.Timeunit.ns -> event list
(** Both directions of a duplex link going down. *)

val duplex_up : a:Network.Node.id -> b:Network.Node.id -> at:Gmf_util.Timeunit.ns -> event list

val loss_probability : schedule -> float
(** The largest [Frame_loss] probability, [0.] when none. *)

val validate : Network.Topology.t -> schedule -> (unit, string) result
(** Checks every named link and switch exists in the topology (and that
    stalled nodes are switches).  The simulator refuses invalid
    schedules. *)

(** {1 Fault windows}

    The time spans during which a component was (or may still be)
    perturbed — used to {e taint} simulated journeys so sim-vs-analysis
    cross-checks only assert bounds on journeys the faults could not have
    touched. *)

type component =
  | C_link of link_id
  | C_switch of Network.Node.id

type window = {
  w_component : component;
  w_from : Gmf_util.Timeunit.ns;
  w_until : Gmf_util.Timeunit.ns option;
      (** [None]: the component never recovered. *)
}

val windows : schedule -> window list
(** One window per [Link_down]..[Link_up] pair (or open-ended when the
    link never comes back) and per [Switch_stall].  [Frame_loss] has no
    window — a positive loss probability taints {e every} journey, see
    {!taints}. *)

val taints :
  schedule ->
  route:Network.Route.t ->
  from:Gmf_util.Timeunit.ns ->
  until:Gmf_util.Timeunit.ns ->
  bool
(** Whether a packet that lived during [\[from, until\]] on [route] may
    have been perturbed by the schedule.  Deliberately conservative:

    - any positive {!loss_probability} taints everything;
    - a link window touches every route visiting {e either} endpoint of
      the link (backlog behind a dead port delays the whole interface,
      not just the flows crossing that direction);
    - a switch window touches every route visiting the node;
    - a {e closed} window is extended by its own duration as a settle
      margin — frames held during the outage drain as a burst after
      recovery and can perturb innocent flows for a while.  Open-ended
      windows taint until the end of the run. *)

val pp_event :
  names:(Network.Node.id -> string) -> Format.formatter -> event -> unit
(** e.g. ["link a->b down at 2ms"]. *)
