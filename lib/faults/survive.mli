(** Static k-failure survivability analysis.

    Enumerates every combination of at most [k] failed components — an
    undirected link (both directions die together) or a whole switch —
    and asks, per failure case: which admitted flows keep their route,
    which must be rerouted around the failure
    ({!Network.Pathfind.k_shortest} avoiding the failed component), and
    which must be shed for the rest to stay schedulable.

    By default each case is evaluated {e incrementally} against one
    shared fault-free base fixpoint ({!Analysis.Delta}): only the
    interference closure of the case's edit (rerouted and shed flows) is
    re-analyzed, every other flow carries its base bounds over, and the
    enumeration walks same-size failure sets in revolving-door Gray
    order so consecutive cases share most of their degraded sets.  With
    [~delta:false] — or when the fault-free base does not converge —
    each case re-runs the sharded analysis cold on the degraded flow
    set.  Both engines produce identical fates, matrices and shed sets
    (the delta report certifies untouched flows exactly); per-case
    [rounds] naturally differ.

    When the verdict is not schedulable, flows are shed greedily in
    priority order (lowest 802.1p priority first, ties broken by higher
    flow id — the most recently admitted flow goes first) until the
    remainder is schedulable.  A case whose degraded scenario fails the
    {!Gmf_lint} error gate (e.g. a rerouted flow saturates a link,
    GMF201) sheds without burning fixpoint rounds.

    Telemetry: each case bumps [survive.cases] and runs under a
    [survive.case] span; reroutes and sheds bump [faults.flows_rerouted]
    and [faults.flows_shed].  Delta statistics are additionally embedded
    in every case result (and summed in [report.delta_totals]) because
    registry increments made inside [Pool] workers never reach the
    parent — the embedded copies keep the report, its JSON and the
    [delta.*] counters deterministic across backends. *)

type component =
  | Link of Network.Node.id * Network.Node.id
      (** Undirected: stored with the smaller id first; both directions
          fail together. *)
  | Switch of Network.Node.id
      (** The switch and every link touching it fail. *)

type fate =
  | Unaffected  (** The flow's route avoids the failed components. *)
  | Rerouted of Network.Route.t
      (** Moved to the given route, and the case is schedulable with it
          (unless the flow was later shed — shed wins). *)
  | Shed
      (** No alternate route exists, or shedding it was required to keep
          the rest schedulable. *)

type delta = {
  d_closure : int;
      (** Flows the incremental fixpoints actually re-ran over, summed
          across the case's settle attempts. *)
  d_skipped : int;  (** Flows certified untouched, summed likewise. *)
  d_saved : int;  (** Sum of per-attempt [rounds_saved] estimates. *)
  d_fallbacks : int;  (** Attempts that fell back to a cold analysis. *)
  d_warm : int;  (** Pure-growth attempts warm-seeded from the base. *)
}
(** Delta-engine statistics (see {!Analysis.Delta.stats}). *)

type case_result = {
  case : component list;  (** The failed components, 1 to [k] of them. *)
  fates : (Traffic.Flow.t * fate) list;  (** In scenario flow order. *)
  verdict : Analysis.Holistic.verdict;
      (** Of the surviving set, after any shedding. *)
  rounds : int;  (** Holistic rounds spent on this case, all attempts. *)
  delta : delta option;
      (** Per-case delta statistics; [None] under the cold engine. *)
}

type flow_verdict =
  | Survives  (** Keeps its own route in every failure case. *)
  | Survives_with_reroute  (** Rerouted somewhere, never shed. *)
  | Must_shed  (** Shed in at least one failure case. *)

type report = {
  k : int;
  base : Analysis.Holistic.report;  (** The fault-free analysis. *)
  cases : case_result list;
      (** Smallest failure sets first, then by component order. *)
  matrix : (Traffic.Flow.t * flow_verdict) list;
      (** Per-flow aggregate over all cases, in scenario flow order. *)
  shed_set : Traffic.Flow.t list;
      (** Flows shed in at least one case — what the operator stands to
          lose under any [<= k]-failure, with the greedy shed policy. *)
  delta_totals : delta option;
      (** Sum of every case's delta statistics; [None] when the sweep
          ran the cold engine. *)
}

val shed_order : Traffic.Flow.t list -> Traffic.Flow.t list
(** The shed policy, shared with [Gmf_admctl]'s degraded mode: shed the
    lowest 802.1p priority first, ties broken towards the higher flow id
    (the most recently admitted flow goes first). *)

val components : Traffic.Scenario.t -> component list
(** The failure domain: every undirected link (in first-appearance
    order), then every switch node. *)

val failure_cases : k:int -> component list -> component list list
(** Every subset of 1..k components, smallest size first; within a size
    class the subsets walk in revolving-door Gray order (consecutive
    cases swap exactly one component), each subset listing its
    components in input order.  The size-1 class is the input list
    itself.  This is the exact case order {!run} evaluates. *)

val run :
  ?exec:Gmf_exec.t ->
  ?config:Analysis.Config.t ->
  ?k:int ->
  ?max_routes:int ->
  ?delta:bool ->
  ?domain:component list ->
  Traffic.Scenario.t ->
  report
(** [run scenario] analyzes every failure case of at most [k] (default 1)
    components, trying up to [max_routes] (default 4) alternate routes
    per affected flow.  Cases are independent and evaluated through
    [exec] (default {!Gmf_exec.seq}); results are identical for every
    backend.  A case the executor fails to evaluate (per-case timeout,
    worker crash) is reported conservatively: analysis-failed verdict
    with an ["exec: ..."] reason and every flow shed.  Raises
    [Invalid_argument] when [k < 0].

    [delta] (default [true]) selects the incremental engine: one
    fault-free base fixpoint is computed up front and every case
    re-analyzes only its edit's interference closure against it.  Pass
    [~delta:false] to force the cold per-case engine (the soundness
    oracle the tests compare against).  [domain] restricts the failure
    enumeration to the given components (default: every component of
    {!components}) — bench sweeps use it to bound k>=2 case counts.

    Case evaluations are memoized process-wide, keyed by engine, base
    scenario digest, route budget and failed component set; {!clear_memo}
    resets the table (timing loops must call it between runs). *)

val clear_memo : unit -> unit
(** Drop every memoized case evaluation. *)

val admission_gate :
  ?exec:Gmf_exec.t ->
  ?config:Analysis.Config.t ->
  ?k:int ->
  ?max_routes:int ->
  candidate:Traffic.Flow.t ->
  Traffic.Scenario.t ->
  Gmf_diag.t list
(** Survivable-admission gate: runs {!run} on [scenario] (which must
    already include [candidate]) and returns a single [GMF017] error
    when [candidate]'s matrix verdict is {!Must_shed} — i.e. admitting
    it would leave it shed under some [<= k]-component failure — citing
    the first witnessing failure case.  Returns [[]] when the candidate
    survives every case (with or without reroute).  Intended as the
    [?gate] argument of [Analysis.Admission.admit] and the
    [?survivable] mode of [Gmf_admctl.Session]. *)

val component_name : Traffic.Scenario.t -> component -> string
(** e.g. ["link a<->b"], ["switch sw0"]. *)

val verdict_string : Analysis.Holistic.verdict -> string
(** ["schedulable"], ["deadline-miss"], ["analysis-failed"],
    ["no-fixed-point"] — constructor only, stable for goldens. *)

val pp_report : Traffic.Scenario.t -> Format.formatter -> report -> unit
(** Human-readable: one line per case, then the per-flow matrix and the
    shed set. *)

val to_json : Traffic.Scenario.t -> report -> string
(** Deterministic indented JSON (flows and components by name), suitable
    for golden files. *)
