open Gmf_util

type link_id = Network.Node.id * Network.Node.id

type event =
  | Link_down of link_id * Timeunit.ns
  | Link_up of link_id * Timeunit.ns
  | Switch_stall of Network.Node.id * Timeunit.ns * Timeunit.ns
  | Frame_loss of float

type policy = Hold | Drop

type schedule = { events : event list; policy : policy }

let empty = { events = []; policy = Hold }
let is_empty s = s.events = []

let check_event = function
  | Link_down (_, at) | Link_up (_, at) ->
      if at < 0 then invalid_arg "Fault.make: negative event time"
  | Switch_stall (_, at, duration) ->
      if at < 0 then invalid_arg "Fault.make: negative event time";
      if duration <= 0 then
        invalid_arg "Fault.make: non-positive stall duration"
  | Frame_loss p ->
      if not (p >= 0. && p <= 1.) then
        invalid_arg "Fault.make: frame-loss probability outside [0, 1]"

let make ?(policy = Hold) events =
  List.iter check_event events;
  { events; policy }

let duplex_down ~a ~b ~at = [ Link_down ((a, b), at); Link_down ((b, a), at) ]
let duplex_up ~a ~b ~at = [ Link_up ((a, b), at); Link_up ((b, a), at) ]

let loss_probability s =
  List.fold_left
    (fun acc -> function Frame_loss p -> Float.max acc p | _ -> acc)
    0. s.events

let validate topo s =
  let check = function
    | Link_down ((src, dst), _) | Link_up ((src, dst), _) -> begin
        match Network.Topology.find_link topo ~src ~dst with
        | Some _ -> Ok ()
        | None ->
            Error (Printf.sprintf "fault names unknown link %d->%d" src dst)
      end
    | Switch_stall (node, _, _) -> begin
        match Network.Topology.node topo node with
        | n when Network.Node.is_switch n -> Ok ()
        | n ->
            Error
              (Printf.sprintf "stall of %S, which is not a switch"
                 n.Network.Node.name)
        | exception Invalid_argument _ ->
            Error (Printf.sprintf "stall of unknown node %d" node)
      end
    | Frame_loss _ -> Ok ()
  in
  List.fold_left
    (fun acc ev -> match acc with Error _ -> acc | Ok () -> check ev)
    (Ok ()) s.events

(* ------------------------------------------------------------------ *)
(* Fault windows                                                      *)
(* ------------------------------------------------------------------ *)

type component = C_link of link_id | C_switch of Network.Node.id

type window = {
  w_component : component;
  w_from : Timeunit.ns;
  w_until : Timeunit.ns option;
}

let windows s =
  (* Pair each link's downs with its ups, both in time order. *)
  let downs = Hashtbl.create 8 and ups = Hashtbl.create 8 in
  let push tbl key at =
    Hashtbl.replace tbl key (at :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  let stalls = ref [] in
  List.iter
    (function
      | Link_down (l, at) -> push downs l at
      | Link_up (l, at) -> push ups l at
      | Switch_stall (node, at, duration) ->
          stalls :=
            { w_component = C_switch node; w_from = at;
              w_until = Some (at + duration) }
            :: !stalls
      | Frame_loss _ -> ())
    s.events;
  let link_windows =
    Hashtbl.fold
      (fun l down_times acc ->
        let down_times = List.sort compare down_times in
        let up_times =
          List.sort compare (Option.value ~default:[] (Hashtbl.find_opt ups l))
        in
        let rec pair downs ups acc =
          match downs with
          | [] -> acc
          | d :: drest -> (
              match List.filter (fun u -> u >= d) ups with
              | [] ->
                  { w_component = C_link l; w_from = d; w_until = None }
                  :: acc
              | u :: _ ->
                  pair drest
                    (List.filter (fun u' -> u' > u) ups)
                    ({ w_component = C_link l; w_from = d; w_until = Some u }
                    :: acc))
        in
        pair down_times up_times acc)
      downs []
  in
  List.sort compare (link_windows @ !stalls)

let window_touches route = function
  | C_link (a, b) -> Network.Route.mem route a || Network.Route.mem route b
  | C_switch n -> Network.Route.mem route n

let taints s ~route ~from ~until =
  loss_probability s > 0.
  || List.exists
       (fun w ->
         window_touches route w.w_component
         && w.w_from <= until
         &&
         match w.w_until with
         | None -> true
         | Some w_until ->
             (* Settle margin: a closed outage of length d may keep
                perturbing (burst drain) for about d after recovery. *)
             w_until + (w_until - w.w_from) >= from)
       (windows s)

let pp_event ~names fmt = function
  | Link_down ((a, b), at) ->
      Format.fprintf fmt "link %s->%s down at %s" (names a) (names b)
        (Timeunit.to_string at)
  | Link_up ((a, b), at) ->
      Format.fprintf fmt "link %s->%s up at %s" (names a) (names b)
        (Timeunit.to_string at)
  | Switch_stall (n, at, duration) ->
      Format.fprintf fmt "switch %s stalled for %s at %s" (names n)
        (Timeunit.to_string duration) (Timeunit.to_string at)
  | Frame_loss p -> Format.fprintf fmt "frame loss p=%g" p
