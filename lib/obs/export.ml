open Gmf_util

(* ---------------- JSON encoding ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_jsonl (s : Tracer.span) =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"tid\":%d,\"begin_ns\":%d,\"dur_ns\":%d,\"depth\":%d}"
    (json_escape s.Tracer.name) (json_escape s.Tracer.cat) s.Tracer.tid
    s.Tracer.begin_ns s.Tracer.dur_ns s.Tracer.depth

let spans_to_jsonl spans =
  String.concat "" (List.map (fun s -> span_to_jsonl s ^ "\n") spans)

(* ---------------- JSON-lines parsing (spans) ---------------- *)

(* Minimal recursive-descent parser for the flat objects produced above:
   string and integer values only.  Written in the same hand-rolled style
   as [Scenario_io.Parse] — no JSON library in the dependency cone. *)

type json_field = Fstr of string | Fint of int

exception Parse_error of string

let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      Stdlib.incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then Stdlib.incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> Stdlib.incr pos
        | '\\' ->
            if !pos + 1 >= n then fail "dangling escape";
            (match line.[!pos + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'u' ->
                if !pos + 5 >= n then fail "truncated \\u escape";
                let code =
                  try int_of_string ("0x" ^ String.sub line (!pos + 2) 4)
                  with _ -> fail "bad \\u escape"
                in
                if code > 0xff then fail "non-latin \\u escape"
                else Buffer.add_char buf (Char.chr code);
                pos := !pos + 4
            | c -> fail (Printf.sprintf "unknown escape '\\%c'" c));
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            Stdlib.incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then Stdlib.incr pos;
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      Stdlib.incr pos
    done;
    if !pos = start then fail "expected integer";
    int_of_string (String.sub line start (!pos - start))
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then Stdlib.incr pos
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let value =
        if peek () = Some '"' then Fstr (parse_string ())
        else Fint (parse_int ())
      in
      fields := (key, value) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
          Stdlib.incr pos;
          members ()
      | Some '}' -> Stdlib.incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let span_of_jsonl line =
  match parse_flat_object line with
  | exception Parse_error msg -> Error msg
  | fields ->
      let str key =
        match List.assoc_opt key fields with
        | Some (Fstr s) -> Ok s
        | Some (Fint _) -> Error (Printf.sprintf "field %S: expected string" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let int key =
        match List.assoc_opt key fields with
        | Some (Fint i) -> Ok i
        | Some (Fstr _) ->
            Error (Printf.sprintf "field %S: expected integer" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let ( let* ) = Result.bind in
      let* name = str "name" in
      let* cat = str "cat" in
      let* tid = int "tid" in
      let* begin_ns = int "begin_ns" in
      let* dur_ns = int "dur_ns" in
      let* depth = int "depth" in
      Ok { Tracer.name; cat; tid; begin_ns; dur_ns; depth }

(* ---------------- metrics JSON-lines ---------------- *)

let metrics_to_jsonl (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"counter\",\"value\":%d}\n"
           (json_escape name) value))
    snap.Metrics.counters;
  List.iter
    (fun (name, last, max_v) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"metric\":\"%s\",\"kind\":\"gauge\",\"value\":%g,\"max\":%g}\n"
           (json_escape name) last
           (if max_v = neg_infinity then last else max_v)))
    snap.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      let buckets =
        h.Metrics.h_buckets
        |> List.map (fun (upper, count) ->
               match upper with
               | Some u -> Printf.sprintf "{\"le\":%d,\"count\":%d}" u count
               | None -> Printf.sprintf "{\"le\":null,\"count\":%d}" count)
        |> String.concat ","
      in
      let opt_int = function
        | Some v -> string_of_int v
        | None -> "null"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"metric\":\"%s\",\"kind\":\"histogram\",\"count\":%d,\"sum\":%d,\"p50\":%s,\"p95\":%s,\"buckets\":[%s]}\n"
           (json_escape name) h.Metrics.h_count h.Metrics.h_sum
           (opt_int h.Metrics.h_p50) (opt_int h.Metrics.h_p95) buckets))
    snap.Metrics.histograms;
  Buffer.contents buf

(* ---------------- Chrome trace_event ---------------- *)

let chrome_trace spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (s : Tracer.span) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
           (json_escape s.Tracer.name) (json_escape s.Tracer.cat) s.Tracer.tid
           (float_of_int s.Tracer.begin_ns /. 1e3)
           (float_of_int s.Tracer.dur_ns /. 1e3)))
    spans;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* ---------------- plain-text tables ---------------- *)

let bucket_cells h =
  h.Metrics.h_buckets
  |> List.filter_map (fun (upper, count) ->
         if count = 0 then None
         else
           Some
             (match upper with
             | Some u -> Printf.sprintf "<=%d:%d" u count
             | None -> Printf.sprintf ">:%d" count))
  |> String.concat " "

let metrics_tables (snap : Metrics.snapshot) =
  let parts = ref [] in
  if snap.Metrics.histograms <> [] then begin
    let table =
      Tablefmt.create
        ~columns:
          [
            ("histogram", Tablefmt.Left); ("count", Tablefmt.Right);
            ("mean", Tablefmt.Right); ("p50", Tablefmt.Right);
            ("p95", Tablefmt.Right); ("max", Tablefmt.Right);
            ("buckets", Tablefmt.Left);
          ]
    in
    let opt_int = function Some v -> string_of_int v | None -> "-" in
    List.iter
      (fun (name, h) ->
        Tablefmt.add_row table
          [
            name;
            string_of_int h.Metrics.h_count;
            (match h.Metrics.h_mean with
            | Some m -> Printf.sprintf "%.1f" m
            | None -> "-");
            opt_int h.Metrics.h_p50;
            opt_int h.Metrics.h_p95;
            opt_int h.Metrics.h_max;
            bucket_cells h;
          ])
      snap.Metrics.histograms;
    parts := Tablefmt.render table :: !parts
  end;
  if snap.Metrics.gauges <> [] then begin
    let table =
      Tablefmt.create
        ~columns:
          [
            ("gauge", Tablefmt.Left); ("value", Tablefmt.Right);
            ("max", Tablefmt.Right);
          ]
    in
    List.iter
      (fun (name, last, max_v) ->
        Tablefmt.add_row table
          [
            name;
            Printf.sprintf "%g" last;
            (if max_v = neg_infinity then "-" else Printf.sprintf "%g" max_v);
          ])
      snap.Metrics.gauges;
    parts := Tablefmt.render table :: !parts
  end;
  if snap.Metrics.counters <> [] then begin
    let table =
      Tablefmt.create
        ~columns:[ ("counter", Tablefmt.Left); ("value", Tablefmt.Right) ]
    in
    List.iter
      (fun (name, value) ->
        Tablefmt.add_row table [ name; string_of_int value ])
      snap.Metrics.counters;
    parts := Tablefmt.render table :: !parts
  end;
  String.concat "\n\n" !parts

let phase_table rows =
  if rows = [] then ""
  else begin
    let table =
      Tablefmt.create
        ~columns:
          [
            ("phase", Tablefmt.Left); ("calls", Tablefmt.Right);
            ("total", Tablefmt.Right); ("mean", Tablefmt.Right);
          ]
    in
    List.iter
      (fun (name, count, total_ns) ->
        Tablefmt.add_row table
          [
            name; string_of_int count; Timeunit.to_string total_ns;
            Timeunit.to_string (if count = 0 then 0 else total_ns / count);
          ])
      rows;
    Tablefmt.render table
  end

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* ---------------- generic JSON values ---------------- *)

module Json = struct
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of value list
    | Obj of (string * value) list

  exception Fail of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Fail (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n'
          || s.[!pos] = '\r')
      do
        Stdlib.incr pos
      done
    in
    let literal word v =
      let k = String.length word in
      if !pos + k <= n && String.sub s !pos k = word then begin
        pos := !pos + k;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let add_utf8 buf code =
      (* Standard UTF-8 encoding of one scalar value. *)
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
      end
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let code =
        try int_of_string ("0x" ^ String.sub s !pos 4)
        with _ -> fail "bad \\u escape"
      in
      pos := !pos + 4;
      code
    in
    let parse_string () =
      if peek () <> Some '"' then fail "expected string";
      Stdlib.incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> Stdlib.incr pos
          | '\\' ->
              Stdlib.incr pos;
              if !pos >= n then fail "dangling escape";
              let c = s.[!pos] in
              Stdlib.incr pos;
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let code = hex4 () in
                  if code >= 0xd800 && code <= 0xdbff then begin
                    (* High surrogate: must pair with a following \uDC00-. *)
                    if
                      !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let low = hex4 () in
                      if low < 0xdc00 || low > 0xdfff then
                        fail "unpaired surrogate"
                      else
                        add_utf8 buf
                          (0x10000
                          + ((code - 0xd800) lsl 10)
                          + (low - 0xdc00))
                    end
                    else fail "unpaired surrogate"
                  end
                  else if code >= 0xdc00 && code <= 0xdfff then
                    fail "unpaired surrogate"
                  else add_utf8 buf code
              | c -> fail (Printf.sprintf "unknown escape '\\%c'" c));
              go ()
          | c ->
              Buffer.add_char buf c;
              Stdlib.incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do
        Stdlib.incr pos
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          Stdlib.incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            Stdlib.incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              if peek () <> Some ':' then fail "expected ':'";
              Stdlib.incr pos;
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  Stdlib.incr pos;
                  members ((key, v) :: acc)
              | Some '}' ->
                  Stdlib.incr pos;
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          Stdlib.incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            Stdlib.incr pos;
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  Stdlib.incr pos;
                  elements (v :: acc)
              | Some ']' ->
                  Stdlib.incr pos;
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Fail msg -> Error msg

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

  let number_leaves v =
    (* Flattens nested objects/arrays into dotted paths; arrays index by
       position.  Only numeric leaves are kept — the shape bench baselines
       need for field-by-field regression diffing. *)
    let acc = ref [] in
    let rec go path = function
      | Num f -> acc := (path, f) :: !acc
      | Obj kvs ->
          List.iter
            (fun (k, v) ->
              go (if path = "" then k else path ^ "." ^ k) v)
            kvs
      | Arr vs ->
          List.iteri (fun i v -> go (Printf.sprintf "%s.%d" path i) v) vs
      | Null | Bool _ | Str _ -> ()
    in
    go "" v;
    List.rev !acc
end
