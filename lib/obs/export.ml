open Gmf_util

(* ---------------- JSON encoding ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_jsonl (s : Tracer.span) =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"tid\":%d,\"begin_ns\":%d,\"dur_ns\":%d,\"depth\":%d}"
    (json_escape s.Tracer.name) (json_escape s.Tracer.cat) s.Tracer.tid
    s.Tracer.begin_ns s.Tracer.dur_ns s.Tracer.depth

let spans_to_jsonl spans =
  String.concat "" (List.map (fun s -> span_to_jsonl s ^ "\n") spans)

(* ---------------- JSON-lines parsing (spans) ---------------- *)

(* Minimal recursive-descent parser for the flat objects produced above:
   string and integer values only.  Written in the same hand-rolled style
   as [Scenario_io.Parse] — no JSON library in the dependency cone. *)

type json_field = Fstr of string | Fint of int

exception Parse_error of string

let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      Stdlib.incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then Stdlib.incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> Stdlib.incr pos
        | '\\' ->
            if !pos + 1 >= n then fail "dangling escape";
            (match line.[!pos + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'u' ->
                if !pos + 5 >= n then fail "truncated \\u escape";
                let code =
                  try int_of_string ("0x" ^ String.sub line (!pos + 2) 4)
                  with _ -> fail "bad \\u escape"
                in
                if code > 0xff then fail "non-latin \\u escape"
                else Buffer.add_char buf (Char.chr code);
                pos := !pos + 4
            | c -> fail (Printf.sprintf "unknown escape '\\%c'" c));
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            Stdlib.incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then Stdlib.incr pos;
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      Stdlib.incr pos
    done;
    if !pos = start then fail "expected integer";
    int_of_string (String.sub line start (!pos - start))
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then Stdlib.incr pos
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let value =
        if peek () = Some '"' then Fstr (parse_string ())
        else Fint (parse_int ())
      in
      fields := (key, value) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
          Stdlib.incr pos;
          members ()
      | Some '}' -> Stdlib.incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let span_of_jsonl line =
  match parse_flat_object line with
  | exception Parse_error msg -> Error msg
  | fields ->
      let str key =
        match List.assoc_opt key fields with
        | Some (Fstr s) -> Ok s
        | Some (Fint _) -> Error (Printf.sprintf "field %S: expected string" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let int key =
        match List.assoc_opt key fields with
        | Some (Fint i) -> Ok i
        | Some (Fstr _) ->
            Error (Printf.sprintf "field %S: expected integer" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let ( let* ) = Result.bind in
      let* name = str "name" in
      let* cat = str "cat" in
      let* tid = int "tid" in
      let* begin_ns = int "begin_ns" in
      let* dur_ns = int "dur_ns" in
      let* depth = int "depth" in
      Ok { Tracer.name; cat; tid; begin_ns; dur_ns; depth }

(* ---------------- metrics JSON-lines ---------------- *)

let metrics_to_jsonl (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"counter\",\"value\":%d}\n"
           (json_escape name) value))
    snap.Metrics.counters;
  List.iter
    (fun (name, last, max_v) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"metric\":\"%s\",\"kind\":\"gauge\",\"value\":%g,\"max\":%g}\n"
           (json_escape name) last
           (if max_v = neg_infinity then last else max_v)))
    snap.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      let buckets =
        h.Metrics.h_buckets
        |> List.map (fun (upper, count) ->
               match upper with
               | Some u -> Printf.sprintf "{\"le\":%d,\"count\":%d}" u count
               | None -> Printf.sprintf "{\"le\":null,\"count\":%d}" count)
        |> String.concat ","
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"metric\":\"%s\",\"kind\":\"histogram\",\"count\":%d,\"sum\":%d,\"buckets\":[%s]}\n"
           (json_escape name) h.Metrics.h_count h.Metrics.h_sum buckets))
    snap.Metrics.histograms;
  Buffer.contents buf

(* ---------------- Chrome trace_event ---------------- *)

let chrome_trace spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (s : Tracer.span) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
           (json_escape s.Tracer.name) (json_escape s.Tracer.cat) s.Tracer.tid
           (float_of_int s.Tracer.begin_ns /. 1e3)
           (float_of_int s.Tracer.dur_ns /. 1e3)))
    spans;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* ---------------- plain-text tables ---------------- *)

let bucket_cells h =
  h.Metrics.h_buckets
  |> List.filter_map (fun (upper, count) ->
         if count = 0 then None
         else
           Some
             (match upper with
             | Some u -> Printf.sprintf "<=%d:%d" u count
             | None -> Printf.sprintf ">:%d" count))
  |> String.concat " "

let metrics_tables (snap : Metrics.snapshot) =
  let parts = ref [] in
  if snap.Metrics.histograms <> [] then begin
    let table =
      Tablefmt.create
        ~columns:
          [
            ("histogram", Tablefmt.Left); ("count", Tablefmt.Right);
            ("mean", Tablefmt.Right); ("max", Tablefmt.Right);
            ("buckets", Tablefmt.Left);
          ]
    in
    List.iter
      (fun (name, h) ->
        Tablefmt.add_row table
          [
            name;
            string_of_int h.Metrics.h_count;
            (match h.Metrics.h_mean with
            | Some m -> Printf.sprintf "%.1f" m
            | None -> "-");
            (match h.Metrics.h_max with
            | Some m -> string_of_int m
            | None -> "-");
            bucket_cells h;
          ])
      snap.Metrics.histograms;
    parts := Tablefmt.render table :: !parts
  end;
  if snap.Metrics.gauges <> [] then begin
    let table =
      Tablefmt.create
        ~columns:
          [
            ("gauge", Tablefmt.Left); ("value", Tablefmt.Right);
            ("max", Tablefmt.Right);
          ]
    in
    List.iter
      (fun (name, last, max_v) ->
        Tablefmt.add_row table
          [
            name;
            Printf.sprintf "%g" last;
            (if max_v = neg_infinity then "-" else Printf.sprintf "%g" max_v);
          ])
      snap.Metrics.gauges;
    parts := Tablefmt.render table :: !parts
  end;
  if snap.Metrics.counters <> [] then begin
    let table =
      Tablefmt.create
        ~columns:[ ("counter", Tablefmt.Left); ("value", Tablefmt.Right) ]
    in
    List.iter
      (fun (name, value) ->
        Tablefmt.add_row table [ name; string_of_int value ])
      snap.Metrics.counters;
    parts := Tablefmt.render table :: !parts
  end;
  String.concat "\n\n" !parts

let phase_table rows =
  if rows = [] then ""
  else begin
    let table =
      Tablefmt.create
        ~columns:
          [
            ("phase", Tablefmt.Left); ("calls", Tablefmt.Right);
            ("total", Tablefmt.Right); ("mean", Tablefmt.Right);
          ]
    in
    List.iter
      (fun (name, count, total_ns) ->
        Tablefmt.add_row table
          [
            name; string_of_int count; Timeunit.to_string total_ns;
            Timeunit.to_string (if count = 0 then 0 else total_ns / count);
          ])
      rows;
    Tablefmt.render table
  end

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
