(** Named-metric registry: counters, gauges and fixed-bucket histograms.

    A registry starts {e disabled}: every recording operation is then a
    single load-and-branch, so instrumentation can stay compiled into the
    hot paths (fixpoint iterations, simulator event dispatch) at no
    measurable cost.  Enabling the registry — the CLI's [--metrics] flag,
    [gmfnet profile], or a test — turns the same call sites into live
    recorders.

    Handles are interned by name: registering the same name twice returns
    the same handle, so independent modules can contribute to one metric
    without coordination. *)

type t
(** A registry. *)

val create : ?enabled:bool -> unit -> t
(** [create ()] is a fresh registry, disabled unless [enabled:true]. *)

val default : t
(** The process-wide registry every built-in instrumentation hook records
    into.  Disabled at start-up. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val reset : t -> unit
(** [reset t] zeroes every metric but keeps the registrations (and the
    enabled flag) intact. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** [counter t name] registers (or retrieves) the counter [name]. *)

val incr : ?by:int -> counter -> unit
(** Adds [by] (default 1) when the owning registry is enabled; no-op
    otherwise. *)

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge

val set_gauge : gauge -> float -> unit
(** Records the current value (and tracks the maximum ever set) when the
    owning registry is enabled. *)

val add_gauge : gauge -> float -> unit
(** Adjusts the current value by a (possibly negative) delta when the
    owning registry is enabled — the natural recorder for level-style
    gauges such as queue depths, where callers see increments and
    decrements rather than absolute readings.  Tracks the maximum like
    {!set_gauge}. *)

val gauge_value : gauge -> float
(** Last value set; [0.] if never set. *)

val gauge_max : gauge -> float
(** Largest value ever set; [neg_infinity] if never set. *)

(** {1 Histograms} *)

type histogram

val default_bounds : int array
(** Powers of two up to 1024 — suited to iteration and round counts. *)

val histogram : ?bounds:int array -> t -> string -> histogram
(** [histogram t name] registers a histogram whose buckets are
    [(-inf, bounds.(0)], (bounds.(0), bounds.(1)], ..., (bounds.(n-1), +inf)].
    [bounds] must be strictly increasing ([Invalid_argument] otherwise); it
    is ignored when [name] already exists.  Exact sample statistics
    (count/sum/min/max/mean) are kept alongside the bucket counts via
    {!Gmf_util.Stats}. *)

val observe : histogram -> int -> unit
(** Records one sample when the owning registry is enabled. *)

(** {1 Snapshots} *)

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int option;  (** [None] when no sample was recorded. *)
  h_max : int option;
  h_mean : float option;
  h_p50 : int option;  (** Nearest-rank median; [None] when empty. *)
  h_p95 : int option;  (** Nearest-rank 95th percentile; [None] when empty. *)
  h_buckets : (int option * int) list;
      (** [(upper_bound, count)] per bucket; [None] is the +inf bucket. *)
}

type snapshot = {
  counters : (string * int) list;  (** Sorted by name. *)
  gauges : (string * float * float) list;  (** [(name, last, max)], sorted. *)
  histograms : (string * hist_summary) list;  (** Sorted by name. *)
}

val snapshot : t -> snapshot
(** A consistent copy of every registered metric, for rendering or export.
    Metrics that never recorded anything are included (zero-valued). *)

(** {1 Cross-process transfer}

    Pool workers ({!Gmf_exec}) record into their own process; a {!dump} is a
    marshal-safe value (strings, ints, floats — no closures, no shared
    mutable state) that carries everything back to the parent.  Unlike
    {!snapshot} it keeps raw histogram samples, so {!absorb} replays them
    and the merged registry is indistinguishable from having recorded
    in-process — bucket counts {e and} percentiles included. *)

type dump

val dump : t -> dump
(** Everything currently recorded in [t], as a self-contained value. *)

val absorb : t -> dump -> unit
(** Replays [dump] into [t]: counters add, gauges re-set (max first, then
    last; never-set gauges are skipped), histogram samples re-observe.
    Recording is still gated on [t] being enabled. *)
