(** Exporters for {!Metrics} snapshots and {!Tracer} spans.

    Three formats:

    + {e JSON-lines} — one object per line, greppable and streamable;
      spans round-trip through {!span_of_jsonl};
    + {e Chrome trace_event} — a single JSON document with complete
      ("ph":"X") events that [chrome://tracing] and Perfetto open directly;
    + plain-text tables via {!Gmf_util.Tablefmt}, for terminal output. *)

val json_escape : string -> string
(** JSON string-body escaping as used by every emitter here: quotes,
    backslashes and control characters escaped; raw UTF-8 bytes pass
    through.  Shared so other layers' hand-rolled JSON (explain reports,
    session JSONL) escapes identically. *)

val span_to_jsonl : Tracer.span -> string
(** One span as a single-line JSON object (no trailing newline). *)

val spans_to_jsonl : Tracer.span list -> string
(** Newline-terminated concatenation of {!span_to_jsonl} lines. *)

val span_of_jsonl : string -> (Tracer.span, string) result
(** Parses one {!span_to_jsonl} line back (field order-independent).
    [Error] describes the first offending token. *)

val metrics_to_jsonl : Metrics.snapshot -> string
(** One metric per line: [{"metric":NAME,"kind":"counter"|"gauge"|
    "histogram", ...}]. *)

val chrome_trace : Tracer.span list -> string
(** The spans as a Chrome [trace_event] JSON document (timestamps in
    microseconds, [pid] 1, [tid] from the span). *)

val metrics_tables : Metrics.snapshot -> string
(** Counter, gauge and histogram tables rendered with
    {!Gmf_util.Tablefmt}; empty string when the snapshot holds no
    metrics.  Histogram buckets print as ["<=N:count"] runs with empty
    buckets elided. *)

val phase_table : (string * int * int) list -> string
(** Renders {!Tracer.aggregate} rows as a wall-clock-per-phase table
    (span name, calls, total, mean); empty string on no rows. *)

val write_file : path:string -> string -> unit
(** Writes (truncating) the string to [path]. *)

(** Minimal generic JSON reader — enough to validate this module's own
    output and to diff [BENCH_*.json] reports, with no JSON library in the
    dependency cone.  Accepts any RFC 8259 document (objects, arrays,
    numbers as floats, [\u] escapes including surrogate pairs, decoded to
    UTF-8 bytes). *)
module Json : sig
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of value list
    | Obj of (string * value) list

  val parse : string -> (value, string) result
  (** Parses one complete document; [Error] locates the first offense. *)

  val member : string -> value -> value option
  (** Object field lookup; [None] on missing key or non-object. *)

  val number_leaves : value -> (string * float) list
  (** Every numeric leaf as [(dotted.path, value)], document order; array
      elements are indexed by position. *)
end
