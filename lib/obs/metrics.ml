open Gmf_util

(* Every handle caches the registry's [enabled] ref so a recording call is
   one load and one branch when observability is off — the property the
   BENCH_* acceptance bound (< 2% on e2:holistic-fig1) depends on. *)

type counter = { c_enabled : bool ref; mutable c_value : int }

type gauge = {
  g_enabled : bool ref;
  mutable g_value : float;
  mutable g_max : float;
}

type histogram = {
  h_enabled : bool ref;
  h_bounds : int array;
  h_counts : int array; (* length = Array.length h_bounds + 1 *)
  mutable h_stats : Stats.t;
}

type t = {
  on : bool ref;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create ?(enabled = false) () =
  {
    on = ref enabled;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    histograms = Hashtbl.create 32;
  }

let default = create ()

let enabled t = !(t.on)
let set_enabled t v = t.on := v

let reset t =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) t.counters;
  Hashtbl.iter
    (fun _ g ->
      g.g_value <- 0.;
      g.g_max <- neg_infinity)
    t.gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_stats <- Stats.create ())
    t.histograms

let intern table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace table name v;
      v

(* ---------------- counters ---------------- *)

let counter t name =
  intern t.counters name (fun () -> { c_enabled = t.on; c_value = 0 })

let incr ?(by = 1) c =
  if !(c.c_enabled) then c.c_value <- c.c_value + by

let counter_value c = c.c_value

(* ---------------- gauges ---------------- *)

let gauge t name =
  intern t.gauges name (fun () ->
      { g_enabled = t.on; g_value = 0.; g_max = neg_infinity })

let set_gauge g v =
  if !(g.g_enabled) then begin
    g.g_value <- v;
    if v > g.g_max then g.g_max <- v
  end

let add_gauge g delta =
  if !(g.g_enabled) then begin
    let v = g.g_value +. delta in
    g.g_value <- v;
    if v > g.g_max then g.g_max <- v
  end

let gauge_value g = g.g_value
let gauge_max g = g.g_max

(* ---------------- histograms ---------------- *)

let default_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let check_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds not strictly increasing"
  done

let histogram ?(bounds = default_bounds) t name =
  check_bounds bounds;
  intern t.histograms name (fun () ->
      {
        h_enabled = t.on;
        h_bounds = Array.copy bounds;
        h_counts = Array.make (Array.length bounds + 1) 0;
        h_stats = Stats.create ();
      })

(* First bucket whose upper bound is >= x; the overflow bucket otherwise.
   Bucket arrays are tiny (~10 entries), so a linear scan beats binary
   search in practice. *)
let bucket_of h x =
  let n = Array.length h.h_bounds in
  let rec find i = if i >= n || x <= h.h_bounds.(i) then i else find (i + 1) in
  find 0

let observe h x =
  if !(h.h_enabled) then begin
    let b = bucket_of h x in
    h.h_counts.(b) <- h.h_counts.(b) + 1;
    Stats.add h.h_stats x
  end

(* ---------------- snapshots ---------------- *)

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int option;
  h_max : int option;
  h_mean : float option;
  h_p50 : int option;
  h_p95 : int option;
  h_buckets : (int option * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float * float) list;
  histograms : (string * hist_summary) list;
}

let sorted_bindings table f =
  Hashtbl.fold (fun name v acc -> f name v :: acc) table []
  |> List.sort compare

let summarize h =
  let stats = h.h_stats in
  let empty = Stats.count stats = 0 in
  {
    h_count = Stats.count stats;
    h_sum = Stats.sum stats;
    h_min = (if empty then None else Some (Stats.min stats));
    h_max = (if empty then None else Some (Stats.max stats));
    h_mean = (if empty then None else Some (Stats.mean stats));
    h_p50 = (if empty then None else Some (Stats.percentile stats 50.));
    h_p95 = (if empty then None else Some (Stats.percentile stats 95.));
    h_buckets =
      List.init
        (Array.length h.h_counts)
        (fun i ->
          let upper =
            if i < Array.length h.h_bounds then Some h.h_bounds.(i) else None
          in
          (upper, h.h_counts.(i)));
  }

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters (fun name c -> (name, c.c_value));
    gauges =
      sorted_bindings t.gauges (fun name g -> (name, g.g_value, g.g_max));
    histograms =
      sorted_bindings t.histograms (fun name h -> (name, summarize h));
  }

(* ---------------- cross-process transfer ---------------- *)

(* A [dump] carries histogram *samples* (not bucket summaries), so absorbing
   it replays every observation into the receiving registry: bucket counts
   and order statistics (p50/p95) come out identical to recording in-process,
   which the seq==pool metrics-equality guarantee depends on. *)

type dump = {
  d_counters : (string * int) list;
  d_gauges : (string * float * float) list; (* (name, last, max) *)
  d_histograms : (string * int array * int list) list;
      (* (name, bounds, samples in insertion order) *)
}

let dump (t : t) =
  {
    d_counters = sorted_bindings t.counters (fun name c -> (name, c.c_value));
    d_gauges =
      sorted_bindings t.gauges (fun name g -> (name, g.g_value, g.g_max));
    d_histograms =
      sorted_bindings t.histograms (fun name h ->
          (name, Array.copy h.h_bounds, Stats.to_list h.h_stats));
  }

let absorb t (d : dump) =
  List.iter
    (fun (name, v) -> if v <> 0 then incr ~by:v (counter t name))
    d.d_counters;
  List.iter
    (fun (name, last, max_v) ->
      (* A gauge that was never set carries (0., neg_infinity): skip it so
         absorbing does not fabricate a zero reading. *)
      if max_v > neg_infinity then begin
        let g = gauge t name in
        set_gauge g max_v;
        set_gauge g last
      end)
    d.d_gauges;
  List.iter
    (fun (name, bounds, samples) ->
      match samples with
      | [] -> ()
      | _ ->
          let h = histogram ~bounds t name in
          List.iter (observe h) samples)
    d.d_histograms
