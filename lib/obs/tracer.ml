type span = {
  name : string;
  cat : string;
  tid : int;
  begin_ns : int;
  dur_ns : int;
  depth : int;
}

type open_span = { o_name : string; o_cat : string; o_begin : int }

type t = {
  on : bool ref;
  clock : unit -> int;
  mutable epoch : int option; (* first clock reading after create/reset *)
  mutable last : int; (* monotonic clamp *)
  mutable stack : open_span list;
  ring : span option array;
  mutable next : int; (* ring write index *)
  mutable total : int; (* spans ever recorded *)
  agg : (string, int ref * int ref) Hashtbl.t; (* name -> count, total ns *)
}

let wall_clock () = int_of_float (Unix.gettimeofday () *. 1e9)

let create ?(enabled = false) ?(capacity = 65536) ?(clock = wall_clock) () =
  if capacity <= 0 then invalid_arg "Tracer.create: non-positive capacity";
  {
    on = ref enabled;
    clock;
    epoch = None;
    last = 0;
    stack = [];
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    agg = Hashtbl.create 32;
  }

let default = create ()

let enabled t = !(t.on)
let set_enabled t v = t.on := v

let now t =
  let abs = t.clock () in
  let epoch =
    match t.epoch with
    | Some e -> e
    | None ->
        t.epoch <- Some abs;
        abs
  in
  let rel = abs - epoch in
  let rel = if rel > t.last then rel else t.last in
  t.last <- rel;
  rel

let record t span =
  t.ring.(t.next) <- Some span;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1;
  let count, total_ns =
    match Hashtbl.find_opt t.agg span.name with
    | Some cell -> cell
    | None ->
        let cell = (ref 0, ref 0) in
        Hashtbl.replace t.agg span.name cell;
        cell
  in
  Stdlib.incr count;
  total_ns := !total_ns + span.dur_ns

let enter ?(cat = "span") t name =
  if !(t.on) then
    t.stack <- { o_name = name; o_cat = cat; o_begin = now t } :: t.stack

let exit t =
  if !(t.on) then
    match t.stack with
    | [] -> invalid_arg "Tracer.exit: no open span"
    | o :: rest ->
        t.stack <- rest;
        record t
          {
            name = o.o_name;
            cat = o.o_cat;
            tid = 0;
            begin_ns = o.o_begin;
            dur_ns = now t - o.o_begin;
            depth = List.length rest;
          }

let with_span ?cat t name f =
  if not !(t.on) then f ()
  else begin
    enter ?cat t name;
    Fun.protect ~finally:(fun () -> exit t) f
  end

let emit ?(cat = "span") ?(tid = 0) t ~name ~begin_ns ~end_ns =
  if !(t.on) then begin
    if end_ns < begin_ns then invalid_arg "Tracer.emit: span ends before it begins";
    record t
      { name; cat; tid; begin_ns; dur_ns = end_ns - begin_ns; depth = 0 }
  end

let spans t =
  let cap = Array.length t.ring in
  let stored = min t.total cap in
  let first = if t.total <= cap then 0 else t.next in
  List.init stored (fun i ->
      match t.ring.((first + i) mod cap) with
      | Some s -> s
      | None -> assert false)

let recorded t = t.total
let dropped t = t.total - min t.total (Array.length t.ring)

let aggregate t =
  Hashtbl.fold
    (fun name (count, total_ns) acc -> (name, !count, !total_ns) :: acc)
    t.agg []
  |> List.sort compare

let reset t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0;
  t.stack <- [];
  t.epoch <- None;
  t.last <- 0;
  Hashtbl.reset t.agg
