(** Nestable begin/end span tracing with a bounded ring buffer.

    Two recording modes share one buffer:

    + {!enter}/{!exit} (or {!with_span}) measure {e wall-clock} spans with
      the tracer's monotonic clock — used around analysis phases;
    + {!emit} records a span whose endpoints the caller already knows —
      used by the simulator to turn packet lifetimes and stage residences
      (in {e simulated} nanoseconds) into trace events.

    The ring keeps the most recent [capacity] spans; older ones are
    overwritten but still feed the per-name {!aggregate} totals, so
    wall-clock-per-phase reporting never depends on buffer retention.

    Like {!Metrics}, a disabled tracer reduces every call to a
    load-and-branch. *)

type span = {
  name : string;
  cat : string;  (** Trace-viewer category, e.g. ["analysis"] or ["packet"]. *)
  tid : int;  (** Trace-viewer lane; 0 for wall-clock spans. *)
  begin_ns : int;  (** Nanoseconds since the tracer's epoch (or sim time). *)
  dur_ns : int;
  depth : int;  (** Nesting depth at [enter] time; 0 for {!emit}. *)
}

type t

val create : ?enabled:bool -> ?capacity:int -> ?clock:(unit -> int) -> unit -> t
(** [create ()] is a disabled tracer with a 65536-span ring.  [clock] (for
    tests) supplies absolute nanoseconds; readings are re-based to the
    first one and clamped monotonically non-decreasing.  The default clock
    is the wall clock.  Raises [Invalid_argument] if [capacity <= 0]. *)

val default : t
(** The process-wide tracer the built-in instrumentation records into. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Toggle only while no span is open: disabling between {!enter} and
    {!exit} orphans the open span. *)

val enter : ?cat:string -> t -> string -> unit
(** Opens a nested span ([cat] defaults to ["span"]). *)

val exit : t -> unit
(** Closes the innermost open span and records it.  Raises
    [Invalid_argument] when enabled with no open span; no-op when
    disabled. *)

val with_span : ?cat:string -> t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span, closing it even if [f]
    raises. *)

val emit :
  ?cat:string -> ?tid:int -> t -> name:string -> begin_ns:int ->
  end_ns:int -> unit
(** Records a pre-measured span verbatim (no monotonic re-basing — the
    caller owns the time domain).  Raises [Invalid_argument] if
    [end_ns < begin_ns]. *)

val spans : t -> span list
(** Retained spans, oldest first. *)

val recorded : t -> int
(** Spans ever recorded, including those the ring has overwritten. *)

val dropped : t -> int
(** [recorded t - List.length (spans t)]. *)

val aggregate : t -> (string * int * int) list
(** Per-name [(name, count, total_dur_ns)] over {e all} recorded spans
    (dropped ones included), sorted by name. *)

val reset : t -> unit
(** Clears spans, aggregates and the open-span stack; re-bases the epoch
    at the next reading.  Keeps the enabled flag. *)
