type result = {
  outcomes : Session.outcome list;
  session : Session.t;
}

let session_event = function
  | Scenario_io.Admtrace.Admit flow -> Session.Admit flow
  | Scenario_io.Admtrace.Remove (id, _) -> Session.Remove id
  | Scenario_io.Admtrace.Update flow -> Session.Update flow
  | Scenario_io.Admtrace.Query -> Session.Query
  | Scenario_io.Admtrace.Fail_link ((a, b), _) -> Session.Fail_link (a, b)
  | Scenario_io.Admtrace.Restore_link ((a, b), _) ->
      Session.Restore_link (a, b)

let run ?config ?warm ?shadow ?explain ?survivable ?exec
    ?(on_outcome = fun _ -> ()) (trace : Scenario_io.Admtrace.t) =
  let session =
    Session.create ?config ?warm ?shadow ?explain ?survivable ?exec
      ~switches:trace.switches ~topo:trace.topo ()
  in
  let outcomes =
    List.map
      (fun (_line, ev) ->
        let outcome = Session.apply session (session_event ev) in
        on_outcome outcome;
        outcome)
      trace.events
  in
  { outcomes; session }

(* ------------------------------------------------------------------ *)
(* Text rendering                                                     *)
(* ------------------------------------------------------------------ *)

let shadow_string = function
  | None -> ""
  | Some { Session.cold_rounds; equivalent } ->
      Printf.sprintf " shadow=%s cold_rounds=%d"
        (if equivalent then "ok" else "MISMATCH")
        cold_rounds

(* Only fault events carry a degradation; non-fault outcomes render
   byte-identically to pre-fault transcripts. *)
let degradation_string = function
  | None -> ""
  | Some { Session.rerouted; shed } ->
      let names flows =
        String.concat ","
          (List.map (fun (f : Traffic.Flow.t) -> f.Traffic.Flow.name) flows)
      in
      let part label = function
        | [] -> ""
        | flows -> Printf.sprintf " %s=%s" label (names flows)
      in
      Printf.sprintf " rerouted=%d shed=%d%s%s" (List.length rerouted)
        (List.length shed)
        (part "moved" rerouted)
        (part "lost" shed)

(* Explain sessions only; outcomes of plain sessions carry [None] and
   render byte-identically to pre-explain transcripts. *)
let explain_lines = function
  | None -> []
  | Some (s : Gmf_explain.Attribution.summary) ->
      let binding =
        if s.Gmf_explain.Attribution.s_slack < 0 then
          Printf.sprintf
            "     binding: flow %d (%s) frame %d bound %dns exceeds \
             deadline %dns at %s"
            s.Gmf_explain.Attribution.s_flow_id
            s.Gmf_explain.Attribution.s_flow
            s.Gmf_explain.Attribution.s_frame
            s.Gmf_explain.Attribution.s_total
            s.Gmf_explain.Attribution.s_deadline
            s.Gmf_explain.Attribution.s_hop
        else
          Printf.sprintf
            "     binding: flow %d (%s) frame %d slack=%dns at %s"
            s.Gmf_explain.Attribution.s_flow_id
            s.Gmf_explain.Attribution.s_flow
            s.Gmf_explain.Attribution.s_frame
            s.Gmf_explain.Attribution.s_slack
            s.Gmf_explain.Attribution.s_hop
      in
      let interferer =
        match s.Gmf_explain.Attribution.s_interferer with
        | None -> []
        | Some (id, name, charge) ->
            [
              Printf.sprintf
                "     interferer: flow %d (%s) charges %dns" id name charge;
            ]
      in
      binding :: interferer

let outcome_line (o : Session.outcome) =
  let head =
    Printf.sprintf "#%02d %s | %s | %s | rounds=%d start=%s flows=%d%s%s"
      o.Session.seq o.Session.label
      (if o.Session.accepted then "accepted" else "rejected")
      (Format.asprintf "%a" Analysis.Holistic.pp_verdict o.Session.verdict)
      o.Session.rounds
      (Format.asprintf "%a" Session.pp_start o.Session.start)
      o.Session.flow_count
      (shadow_string o.Session.shadow)
      (degradation_string o.Session.degradation)
  in
  (* Hints (e.g. GMF004 on yet-unused links of a young session) would
     drown the transcript; they stay visible in the JSON count. *)
  String.concat "\n"
    ((head
     :: List.map
          (fun d -> "     " ^ Gmf_diag.to_string d)
          (Gmf_diag.at_least Gmf_diag.Warning o.Session.diagnostics))
    @ explain_lines o.Session.explain)

let transcript outcomes =
  String.concat "" (List.map (fun o -> outcome_line o ^ "\n") outcomes)

let mismatches outcomes =
  List.length
    (List.filter
       (fun o ->
         match o.Session.shadow with
         | Some { Session.equivalent = false; _ } -> true
         | _ -> false)
       outcomes)

let pp_summary fmt (s : Session.summary) =
  let kv key value = Format.fprintf fmt "  %-16s %d@\n" (key ^ ":") value in
  kv "events" s.Session.events;
  kv "admitted" s.Session.admitted;
  kv "rejected" s.Session.rejected;
  kv "warm hits" s.Session.warm_hits;
  kv "cold resets" s.Session.cold_resets;
  kv "rounds total" s.Session.rounds_total;
  kv "rounds saved" s.Session.rounds_saved;
  kv "flows admitted" s.Session.flow_count

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                     *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_object fields =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           match v with
           | `S s -> Printf.sprintf "\"%s\":\"%s\"" k (json_escape s)
           | `I i -> Printf.sprintf "\"%s\":%d" k i
           | `B b -> Printf.sprintf "\"%s\":%b" k b)
         fields)
  ^ "}"

let outcome_jsonl (o : Session.outcome) =
  let fields =
    [
      ("seq", `I o.Session.seq);
      ("event", `S o.Session.label);
      ("accepted", `B o.Session.accepted);
      ( "verdict",
        `S
          (Format.asprintf "%a" Analysis.Holistic.pp_verdict
             o.Session.verdict) );
      ("rounds", `I o.Session.rounds);
      ("start", `S (Format.asprintf "%a" Session.pp_start o.Session.start));
      ("flows", `I o.Session.flow_count);
      ("diagnostics", `I (List.length o.Session.diagnostics));
    ]
    @ (match o.Session.shadow with
      | None -> []
      | Some { Session.cold_rounds; equivalent } ->
          [ ("cold_rounds", `I cold_rounds); ("equivalent", `B equivalent) ])
    @ (match o.Session.degradation with
      | None -> []
      | Some { Session.rerouted; shed } ->
          [
            ("rerouted", `I (List.length rerouted));
            ("shed", `I (List.length shed));
          ])
    @
    match o.Session.explain with
    | None -> []
    | Some s ->
        [
          ("worst_flow", `S s.Gmf_explain.Attribution.s_flow);
          ("worst_frame", `I s.Gmf_explain.Attribution.s_frame);
          ("worst_total_ns", `I s.Gmf_explain.Attribution.s_total);
          ("worst_deadline_ns", `I s.Gmf_explain.Attribution.s_deadline);
          ("worst_slack_ns", `I s.Gmf_explain.Attribution.s_slack);
          ("binding_hop", `S s.Gmf_explain.Attribution.s_hop);
        ]
        @ (match s.Gmf_explain.Attribution.s_interferer with
          | None -> []
          | Some (id, name, charge) ->
              [
                ("binding_interferer", `S name);
                ("binding_interferer_id", `I id);
                ("binding_interferer_ns", `I charge);
              ])
  in
  json_object fields
