type event =
  | Admit of Traffic.Flow.t
  | Remove of Traffic.Flow.id
  | Update of Traffic.Flow.t
  | Query

type start_kind = Warm | Cold | Skipped

type shadow_result = { cold_rounds : int; equivalent : bool }

type outcome = {
  seq : int;
  label : string;
  accepted : bool;
  verdict : Analysis.Holistic.verdict;
  rounds : int;
  start : start_kind;
  flow_count : int;
  diagnostics : Gmf_diag.t list;
  shadow : shadow_result option;
}

type summary = {
  events : int;
  admitted : int;
  rejected : int;
  warm_hits : int;
  cold_resets : int;
  rounds_total : int;
  rounds_saved : int;
  flow_count : int;
}

type t = {
  config : Analysis.Config.t;
  topo : Network.Topology.t;
  switches : (Network.Node.id * Click.Switch_model.t) list;
  warm : bool;
  shadow : bool;
  mutable flows : Traffic.Flow.t list; (* id-ascending *)
  mutable state : Analysis.Jitter_state.t;
  mutable converged : bool;
  mutable report : Analysis.Holistic.report;
  mutable seq : int;
  mutable s_admitted : int;
  mutable s_rejected : int;
  mutable s_warm : int;
  mutable s_cold : int;
  mutable s_rounds : int;
  mutable s_saved : int;
}

let m_events = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "admctl.events"

let m_warm_hits =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "admctl.warm_hits"

let m_cold_resets =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "admctl.cold_resets"

let m_rounds_saved =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "admctl.rounds_saved"

let empty_report =
  {
    Analysis.Holistic.verdict = Analysis.Holistic.Schedulable;
    rounds = 0;
    results = [];
  }

let create ?(config = Analysis.Config.default) ?(warm = true)
    ?(shadow = false) ?(switches = []) ~topo () =
  {
    config;
    topo;
    switches;
    warm;
    shadow;
    flows = [];
    state = Analysis.Jitter_state.create ();
    converged = true;
    report = empty_report;
    seq = 0;
    s_admitted = 0;
    s_rejected = 0;
    s_warm = 0;
    s_cold = 0;
    s_rounds = 0;
    s_saved = 0;
  }

let flows t = t.flows
let flow_count t = List.length t.flows
let report t = t.report

let summary t =
  {
    events = t.seq;
    admitted = t.s_admitted;
    rejected = t.s_rejected;
    warm_hits = t.s_warm;
    cold_resets = t.s_cold;
    rounds_total = t.s_rounds;
    rounds_saved = t.s_saved;
    flow_count = flow_count t;
  }

let pp_start fmt = function
  | Warm -> Format.pp_print_string fmt "warm"
  | Cold -> Format.pp_print_string fmt "cold"
  | Skipped -> Format.pp_print_string fmt "-"

let scenario_of t flows =
  Traffic.Scenario.make ~switches:t.switches ~topo:t.topo ~flows ()

let insert_sorted flows flow =
  List.sort
    (fun a b -> compare a.Traffic.Flow.id b.Traffic.Flow.id)
    (flow :: flows)

let find_flow t id = List.find_opt (fun f -> f.Traffic.Flow.id = id) t.flows

(* ------------------------------------------------------------------ *)
(* Interference closure                                               *)
(* ------------------------------------------------------------------ *)

(* Over-approximation of "can interfere": two flows whose routes share a
   node meet in some stage analysis (same first/egress link, or the same
   switch CPU at ingress).  Flows outside the transitive closure of the
   departed flow keep a fixpoint that is provably unchanged, so their
   converged jitters stay valid as a warm start. *)
let routes_share_node a b =
  List.exists
    (fun n -> Network.Route.mem b.Traffic.Flow.route n)
    (Network.Route.nodes a.Traffic.Flow.route)

(* Ids of [flows] transitively reachable from [seed] by node sharing;
   always contains [seed]'s id. *)
let interference_closure ~seed flows =
  let closure = Hashtbl.create 16 in
  Hashtbl.replace closure seed.Traffic.Flow.id ();
  let frontier = ref [ seed ] in
  while !frontier <> [] do
    let grown =
      List.filter
        (fun f ->
          (not (Hashtbl.mem closure f.Traffic.Flow.id))
          && List.exists (routes_share_node f) !frontier)
        flows
    in
    List.iter (fun f -> Hashtbl.replace closure f.Traffic.Flow.id ()) grown;
    frontier := grown
  done;
  closure

(* ------------------------------------------------------------------ *)
(* Report comparison (shadow mode)                                    *)
(* ------------------------------------------------------------------ *)

let converged_verdict = function
  | Analysis.Holistic.Schedulable | Analysis.Holistic.Deadline_miss _ -> true
  | Analysis.Holistic.Analysis_failed _ | Analysis.Holistic.No_fixed_point _
    ->
      false

let same_verdict_kind a b =
  match (a, b) with
  | Analysis.Holistic.Schedulable, Analysis.Holistic.Schedulable
  | Analysis.Holistic.Deadline_miss _, Analysis.Holistic.Deadline_miss _
  | Analysis.Holistic.Analysis_failed _, Analysis.Holistic.Analysis_failed _
  | Analysis.Holistic.No_fixed_point _, Analysis.Holistic.No_fixed_point _ ->
      true
  | _ -> false

let bounds_of report =
  List.map
    (fun res ->
      ( res.Analysis.Result_types.flow.Traffic.Flow.id,
        Array.map
          (fun fr -> fr.Analysis.Result_types.total)
          res.Analysis.Result_types.frames ))
    report.Analysis.Holistic.results

let reports_equivalent a b =
  same_verdict_kind a.Analysis.Holistic.verdict b.Analysis.Holistic.verdict
  && (not
        (converged_verdict a.Analysis.Holistic.verdict
        && converged_verdict b.Analysis.Holistic.verdict)
     || bounds_of a = bounds_of b)

(* ------------------------------------------------------------------ *)
(* Event processing                                                   *)
(* ------------------------------------------------------------------ *)

let failure_of_diag = Analysis.Admission.failure_of_diag

let mk_outcome t ~label ~accepted ~verdict ~rounds ~start ~diagnostics
    ~shadow =
  if accepted then t.s_admitted <- t.s_admitted + 1
  else t.s_rejected <- t.s_rejected + 1;
  {
    seq = t.seq;
    label;
    accepted;
    verdict;
    rounds;
    start;
    flow_count = flow_count t;
    diagnostics;
    shadow;
  }

let reject_diag t ~label diag =
  mk_outcome t ~label ~accepted:false
    ~verdict:(Analysis.Holistic.Analysis_failed [ failure_of_diag diag ])
    ~rounds:0 ~start:Skipped ~diagnostics:[ diag ] ~shadow:None

let duplicate_diag flow existing =
  Gmf_diag.error ~code:"GMF014"
    ~subject:
      (Gmf_diag.Flow
         { id = flow.Traffic.Flow.id; name = flow.Traffic.Flow.name })
    ~suggestion:"allocate an unused id for the candidate"
    "candidate id %d is already admitted (flow %S)" flow.Traffic.Flow.id
    existing.Traffic.Flow.name

let unknown_diag ~what id =
  Gmf_diag.error ~code:"GMF015" ~subject:Gmf_diag.Scenario
    ~suggestion:"admit the flow first" "%s of flow id %d: not admitted" what
    id

(* One fixpoint run on [scenario], warm-started from [init] when the
   session allows it.  Returns the report, the converged jitter state and
   the bookkeeping of how it started. *)
let run_fixpoint t scenario ~init =
  let init = if t.warm && t.converged then init else None in
  let ctx = Analysis.Ctx.create ~config:t.config scenario in
  let start, report =
    match init with
    | Some state ->
        t.s_warm <- t.s_warm + 1;
        Gmf_obs.Metrics.incr m_warm_hits;
        (Warm, Analysis.Holistic.run_from ctx ~init:state)
    | None ->
        t.s_cold <- t.s_cold + 1;
        Gmf_obs.Metrics.incr m_cold_resets;
        (Cold, Analysis.Holistic.run ctx)
  in
  t.s_rounds <- t.s_rounds + report.Analysis.Holistic.rounds;
  let shadow =
    if not t.shadow then None
    else
      let cold = Analysis.Holistic.analyze ~config:t.config scenario in
      let saved =
        max 0 (cold.Analysis.Holistic.rounds - report.Analysis.Holistic.rounds)
      in
      t.s_saved <- t.s_saved + saved;
      Gmf_obs.Metrics.incr ~by:saved m_rounds_saved;
      Some
        {
          cold_rounds = cold.Analysis.Holistic.rounds;
          equivalent = reports_equivalent report cold;
        }
  in
  (report, Analysis.Ctx.snapshot ctx, start, shadow)

let commit t ~flows ~state ~report =
  t.flows <- flows;
  t.state <- state;
  t.converged <- converged_verdict report.Analysis.Holistic.verdict;
  t.report <- report

(* Admit and update share the accept-or-rollback shape; [init] is the
   warm-start state appropriate to the event, [commit_on_reject] is true
   for removals only (handled separately). *)
let try_set t ~label ~flows ~init =
  let scenario = scenario_of t flows in
  let lint = Gmf_lint.Lint.run ~config:t.config scenario in
  match Gmf_lint.Lint.errors lint with
  | _ :: _ as errors ->
      mk_outcome t ~label ~accepted:false
        ~verdict:
          (Analysis.Holistic.Analysis_failed
             (List.map failure_of_diag errors))
        ~rounds:0 ~start:Skipped
        ~diagnostics:lint.Gmf_lint.Lint.diagnostics ~shadow:None
  | [] ->
      let report, state, start, shadow = run_fixpoint t scenario ~init in
      let accepted = Analysis.Holistic.is_schedulable report in
      if accepted then commit t ~flows ~state ~report;
      mk_outcome t ~label ~accepted
        ~verdict:report.Analysis.Holistic.verdict
        ~rounds:report.Analysis.Holistic.rounds ~start
        ~diagnostics:lint.Gmf_lint.Lint.diagnostics ~shadow

let apply_admit t flow =
  let label = "admit " ^ flow.Traffic.Flow.name in
  match find_flow t flow.Traffic.Flow.id with
  | Some existing -> reject_diag t ~label (duplicate_diag flow existing)
  | None ->
      try_set t ~label
        ~flows:(insert_sorted t.flows flow)
        ~init:(Some t.state)

let apply_remove t id =
  match find_flow t id with
  | None ->
      reject_diag t
        ~label:(Printf.sprintf "remove #%d" id)
        (unknown_diag ~what:"remove" id)
  | Some victim ->
      let label = "remove " ^ victim.Traffic.Flow.name in
      let remaining =
        List.filter (fun f -> f.Traffic.Flow.id <> id) t.flows
      in
      let closure = interference_closure ~seed:victim remaining in
      let keep fid = not (Hashtbl.mem closure fid) in
      let init =
        if List.exists (fun f -> keep f.Traffic.Flow.id) remaining then
          Some (Analysis.Jitter_state.filter_flows t.state ~keep)
        else None
      in
      let scenario = scenario_of t remaining in
      let report, state, start, shadow = run_fixpoint t scenario ~init in
      (* The departure happens regardless of the refreshed verdict. *)
      commit t ~flows:remaining ~state ~report;
      mk_outcome t ~label ~accepted:true
        ~verdict:report.Analysis.Holistic.verdict
        ~rounds:report.Analysis.Holistic.rounds ~start ~diagnostics:[]
        ~shadow

let apply_update t flow =
  let label = "update " ^ flow.Traffic.Flow.name in
  match find_flow t flow.Traffic.Flow.id with
  | None ->
      reject_diag t ~label (unknown_diag ~what:"update" flow.Traffic.Flow.id)
  | Some old ->
      let rest =
        List.filter
          (fun f -> f.Traffic.Flow.id <> flow.Traffic.Flow.id)
          t.flows
      in
      (* Invalidate everything the old parameters may have inflated; the
         replacement flow starts from source jitters either way. *)
      let closure = interference_closure ~seed:old rest in
      let keep fid = not (Hashtbl.mem closure fid) in
      let init =
        if List.exists (fun f -> keep f.Traffic.Flow.id) rest then
          Some (Analysis.Jitter_state.filter_flows t.state ~keep)
        else None
      in
      try_set t ~label ~flows:(insert_sorted rest flow) ~init

let apply_query t =
  mk_outcome t ~label:"query"
    ~accepted:(Analysis.Holistic.is_schedulable t.report)
    ~verdict:t.report.Analysis.Holistic.verdict ~rounds:0 ~start:Skipped
    ~diagnostics:[] ~shadow:None

let span_name = function
  | Admit _ -> "admctl.admit"
  | Remove _ -> "admctl.remove"
  | Update _ -> "admctl.update"
  | Query -> "admctl.query"

let apply t event =
  t.seq <- t.seq + 1;
  Gmf_obs.Metrics.incr m_events;
  Gmf_obs.Tracer.with_span Gmf_obs.Tracer.default ~cat:"admctl"
    (span_name event) (fun () ->
      match event with
      | Admit flow -> apply_admit t flow
      | Remove id -> apply_remove t id
      | Update flow -> apply_update t flow
      | Query -> apply_query t)
